#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench/bench_util.h"
#include "src/core/executor.h"
#include "src/core/pipeline.h"
#include "src/obs/metrics_export.h"
#include "src/stream/stream_pipeline.h"
#include "src/stream/stream_stage.h"

namespace tsdm {
namespace {

// Golden tests: the exporter formats are the scrape/ingest surface of the
// system, so they are pinned exactly, mirroring pipeline_report_test.cc.
// Inputs are hand-built with fixed latencies; single-valued histograms
// clamp quantiles to the exact observation, keeping every string
// deterministic.

StageReport MakeStage(const std::string& name, size_t index, Status status,
                      double seconds, int attempts = 1) {
  StageReport sr;
  sr.name = name;
  sr.index = index;
  sr.status = std::move(status);
  sr.seconds = seconds;
  sr.attempts = attempts;
  return sr;
}

StageMetricsRegistry MakeRegistry() {
  StageMetricsRegistry registry;
  StageMetrics& clean = registry.ForStage("governance/clean");
  clean.invocations = 2;
  clean.latency.Add(0.002);
  clean.latency.Add(0.002);
  StageMetrics& impute = registry.ForStage("governance/impute");
  impute.invocations = 1;
  impute.failures = 1;
  impute.latency.Add(0.004);
  return registry;
}

TEST(MetricsExporterTest, GoldenRegistryJson) {
  EXPECT_EQ(
      MetricsExporter::RegistryToJson(MakeRegistry()),
      "{\"schema_version\":1,\"stages\":{"
      "\"governance/clean\":{\"invocations\":2,\"failures\":0,\"retries\":0,"
      "\"latency\":{\"count\":2,\"mean_s\":0.002,\"p50_s\":0.002,"
      "\"p95_s\":0.002,\"p99_s\":0.002,\"min_s\":0.002,\"max_s\":0.002}},"
      "\"governance/impute\":{\"invocations\":1,\"failures\":1,\"retries\":0,"
      "\"latency\":{\"count\":1,\"mean_s\":0.004,\"p50_s\":0.004,"
      "\"p95_s\":0.004,\"p99_s\":0.004,\"min_s\":0.004,\"max_s\":0.004}}}}");
}

TEST(MetricsExporterTest, GoldenRegistryPrometheus) {
  EXPECT_EQ(
      MetricsExporter::RegistryToPrometheus(MakeRegistry()),
      "# HELP tsdm_stage_invocations_total Stage attempts including "
      "retries.\n"
      "# TYPE tsdm_stage_invocations_total counter\n"
      "tsdm_stage_invocations_total{stage=\"governance/clean\"} 2\n"
      "tsdm_stage_invocations_total{stage=\"governance/impute\"} 1\n"
      "# HELP tsdm_stage_failures_total Stage attempts returning non-OK.\n"
      "# TYPE tsdm_stage_failures_total counter\n"
      "tsdm_stage_failures_total{stage=\"governance/clean\"} 0\n"
      "tsdm_stage_failures_total{stage=\"governance/impute\"} 1\n"
      "# HELP tsdm_stage_retries_total Re-attempts after a transient stage "
      "failure.\n"
      "# TYPE tsdm_stage_retries_total counter\n"
      "tsdm_stage_retries_total{stage=\"governance/clean\"} 0\n"
      "tsdm_stage_retries_total{stage=\"governance/impute\"} 0\n"
      "# HELP tsdm_stage_latency_seconds Per-attempt stage latency in "
      "seconds.\n"
      "# TYPE tsdm_stage_latency_seconds summary\n"
      "tsdm_stage_latency_seconds{stage=\"governance/clean\","
      "quantile=\"0.5\"} 0.002\n"
      "tsdm_stage_latency_seconds{stage=\"governance/clean\","
      "quantile=\"0.95\"} 0.002\n"
      "tsdm_stage_latency_seconds{stage=\"governance/clean\","
      "quantile=\"0.99\"} 0.002\n"
      "tsdm_stage_latency_seconds_sum{stage=\"governance/clean\"} 0.004\n"
      "tsdm_stage_latency_seconds_count{stage=\"governance/clean\"} 2\n"
      "tsdm_stage_latency_seconds{stage=\"governance/impute\","
      "quantile=\"0.5\"} 0.004\n"
      "tsdm_stage_latency_seconds{stage=\"governance/impute\","
      "quantile=\"0.95\"} 0.004\n"
      "tsdm_stage_latency_seconds{stage=\"governance/impute\","
      "quantile=\"0.99\"} 0.004\n"
      "tsdm_stage_latency_seconds_sum{stage=\"governance/impute\"} 0.004\n"
      "tsdm_stage_latency_seconds_count{stage=\"governance/impute\"} 1\n");
}

BatchReport MakeBatch() {
  BatchReport batch;
  batch.num_threads = 2;
  batch.wall_seconds = 0.5;
  batch.shards.resize(2);
  batch.shards[0].shard = 0;
  batch.shards[0].report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.002));
  batch.shards[1].shard = 1;
  batch.shards[1].report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.002));
  batch.shards[1].report.stages.push_back(
      MakeStage("governance/impute", 1, Status::Internal("disk on fire"),
                0.004, /*attempts=*/3));
  batch.metrics = MakeRegistry();
  return batch;
}

TEST(MetricsExporterTest, GoldenBatchJson) {
  // attempts_total = 1 (shard 0) + 1 + 3 (shard 1, impute retried) = 5.
  EXPECT_EQ(
      MetricsExporter::BatchToJson(MakeBatch()),
      "{\"schema_version\":1,\"batch\":{\"shards\":2,\"ok\":1,"
      "\"quarantined\":1,\"attempts_total\":5,\"threads\":2,"
      "\"wall_seconds\":0.5},\"stages\":{"
      "\"governance/clean\":{\"invocations\":2,\"failures\":0,\"retries\":0,"
      "\"latency\":{\"count\":2,\"mean_s\":0.002,\"p50_s\":0.002,"
      "\"p95_s\":0.002,\"p99_s\":0.002,\"min_s\":0.002,\"max_s\":0.002}},"
      "\"governance/impute\":{\"invocations\":1,\"failures\":1,\"retries\":0,"
      "\"latency\":{\"count\":1,\"mean_s\":0.004,\"p50_s\":0.004,"
      "\"p95_s\":0.004,\"p99_s\":0.004,\"min_s\":0.004,\"max_s\":0.004}}}}");
}

TEST(MetricsExporterTest, GoldenBatchPrometheusPreamble) {
  std::string text = MetricsExporter::BatchToPrometheus(MakeBatch());
  const std::string expected_preamble =
      "# HELP tsdm_batch_shards_total Shards in the last batch run.\n"
      "# TYPE tsdm_batch_shards_total gauge\n"
      "tsdm_batch_shards_total 2\n"
      "# HELP tsdm_batch_shards_quarantined Shards quarantined by a failing "
      "stage in the last batch run.\n"
      "# TYPE tsdm_batch_shards_quarantined gauge\n"
      "tsdm_batch_shards_quarantined 1\n"
      "# HELP tsdm_batch_attempts_total Stage attempts across all shards "
      "including retries (retry pressure).\n"
      "# TYPE tsdm_batch_attempts_total counter\n"
      "tsdm_batch_attempts_total 5\n"
      "# HELP tsdm_batch_threads Worker threads used by the last batch run.\n"
      "# TYPE tsdm_batch_threads gauge\n"
      "tsdm_batch_threads 2\n"
      "# HELP tsdm_batch_wall_seconds Wall-clock seconds of the last batch "
      "run.\n"
      "# TYPE tsdm_batch_wall_seconds gauge\n"
      "tsdm_batch_wall_seconds 0.5\n";
  EXPECT_EQ(text.substr(0, expected_preamble.size()), expected_preamble);
  // The per-stage families follow, pinned by GoldenRegistryPrometheus.
  EXPECT_EQ(text.substr(expected_preamble.size()),
            MetricsExporter::RegistryToPrometheus(MakeBatch().metrics));
}

TEST(MetricsExporterTest, GoldenStreamJsonAndPrometheusBeforeTicks) {
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>();
  ASSERT_TRUE(pipeline.Reset(2).ok());
  EXPECT_EQ(
      MetricsExporter::StreamToJson(pipeline),
      "{\"schema_version\":1,\"stream\":{\"ticks\":0,"
      "\"tick_latency\":{\"count\":0,\"mean_s\":0,\"p50_s\":0,\"p95_s\":0,"
      "\"p99_s\":0,\"min_s\":0,\"max_s\":0}},\"stages\":{"
      "\"stream/stats\":{\"invocations\":0,\"failures\":0,\"retries\":0,"
      "\"latency\":{\"count\":0,\"mean_s\":0,\"p50_s\":0,\"p95_s\":0,"
      "\"p99_s\":0,\"min_s\":0,\"max_s\":0}}}}");
  EXPECT_EQ(
      MetricsExporter::StreamToPrometheus(pipeline),
      "# HELP tsdm_stream_ticks_total Ticks fully processed by the "
      "pipeline.\n"
      "# TYPE tsdm_stream_ticks_total counter\n"
      "tsdm_stream_ticks_total 0\n"
      "# HELP tsdm_stream_tick_latency_seconds End-to-end per-tick latency "
      "in seconds.\n"
      "# TYPE tsdm_stream_tick_latency_seconds summary\n"
      "tsdm_stream_tick_latency_seconds{quantile=\"0.5\"} 0\n"
      "tsdm_stream_tick_latency_seconds{quantile=\"0.95\"} 0\n"
      "tsdm_stream_tick_latency_seconds{quantile=\"0.99\"} 0\n"
      "tsdm_stream_tick_latency_seconds_sum 0\n"
      "tsdm_stream_tick_latency_seconds_count 0\n"
      "# HELP tsdm_stage_invocations_total Stage attempts including "
      "retries.\n"
      "# TYPE tsdm_stage_invocations_total counter\n"
      "tsdm_stage_invocations_total{stage=\"stream/stats\"} 0\n"
      "# HELP tsdm_stage_failures_total Stage attempts returning non-OK.\n"
      "# TYPE tsdm_stage_failures_total counter\n"
      "tsdm_stage_failures_total{stage=\"stream/stats\"} 0\n"
      "# HELP tsdm_stage_retries_total Re-attempts after a transient stage "
      "failure.\n"
      "# TYPE tsdm_stage_retries_total counter\n"
      "tsdm_stage_retries_total{stage=\"stream/stats\"} 0\n"
      "# HELP tsdm_stage_latency_seconds Per-attempt stage latency in "
      "seconds.\n"
      "# TYPE tsdm_stage_latency_seconds summary\n"
      "tsdm_stage_latency_seconds{stage=\"stream/stats\",quantile=\"0.5\"} "
      "0\n"
      "tsdm_stage_latency_seconds{stage=\"stream/stats\",quantile=\"0.95\"} "
      "0\n"
      "tsdm_stage_latency_seconds{stage=\"stream/stats\",quantile=\"0.99\"} "
      "0\n"
      "tsdm_stage_latency_seconds_sum{stage=\"stream/stats\"} 0\n"
      "tsdm_stage_latency_seconds_count{stage=\"stream/stats\"} 0\n");
}

TEST(MetricsExporterTest, StreamJsonTracksProcessedTicks) {
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>();
  ASSERT_TRUE(pipeline.Reset(2).ok());
  for (int i = 0; i < 3; ++i) {
    Tick tick;
    tick.sensor = i % 2;
    tick.timestamp = i;
    tick.value = 1.5 * i;
    ASSERT_TRUE(pipeline.ProcessTick(tick).ok());
  }
  std::string json = MetricsExporter::StreamToJson(pipeline);
  EXPECT_NE(json.find("\"ticks\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stream/stats\":{\"invocations\":3"),
            std::string::npos)
      << json;
}

TEST(MetricsExporterTest, ServeExportCarriesStageAttribution) {
  ServeStatsSnapshot snap;
  snap.completed = 2;
  snap.e2e_latency.Add(0.010);
  snap.e2e_latency.Add(0.012);
  snap.stage_queue.Add(0.001);
  snap.stage_queue.Add(0.001);
  snap.stage_batch.Add(0.0005);
  snap.stage_batch.Add(0.0005);
  snap.stage_cache.Add(0.003);
  snap.stage_cache.Add(0.004);
  snap.stage_exec.Add(0.0055);
  snap.stage_exec.Add(0.0065);

  std::string json = MetricsExporter::ServeToJson(snap);
  EXPECT_NE(json.find("\"stage_latency\":{\"queue\":"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"slowest_stage\":\"exec\""), std::string::npos)
      << json;

  std::string prom = MetricsExporter::ServeToPrometheus(snap);
  for (const char* stage : {"queue", "batch", "cache", "exec"}) {
    EXPECT_NE(
        prom.find("tsdm_serve_stage_latency_seconds_count{stage=\"" +
                  std::string(stage) + "\"} 2"),
        std::string::npos)
        << stage;
  }
}

TEST(MetricsExporterTest, TracePrometheusExportsDroppedSpans) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetCapacity(1 << 16);
  recorder.Clear();
  std::string prom = MetricsExporter::TraceToPrometheus(recorder);
  EXPECT_NE(prom.find("# TYPE tsdm_trace_dropped_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("tsdm_trace_dropped_total 0\n"), std::string::npos)
      << prom;

  // Overflow a tiny ring: the self-metric must report the loss, so a
  // scraper can tell an incomplete trace from a quiet one.
  recorder.SetCapacity(8);
  recorder.Enable();
  for (int i = 0; i < 40; ++i) {
    TraceSpan span("overflow");
  }
  recorder.Disable();
  recorder.FlushCurrentThread();
  prom = MetricsExporter::TraceToPrometheus(recorder);
  EXPECT_NE(prom.find("tsdm_trace_dropped_total 32\n"), std::string::npos)
      << prom;
  recorder.SetCapacity(1 << 16);
  recorder.Clear();
}

TEST(JsonHelpersTest, EscapeAndNumberEdgeCases) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string("x\x01y")), "x\\u0001y");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(1250.0), "1250");
  // NaN/inf are not valid JSON; the exporter guarantees NaN-free output.
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
  EXPECT_EQ(JsonNumber(INFINITY), "0");
  EXPECT_EQ(JsonNumber(-INFINITY), "0");
}

// --- BENCH_<name>.json schema --------------------------------------------

TEST(BenchReporterTest, GoldenBenchJsonSchema) {
  tsdm_bench::BenchReporter reporter("demo");
  reporter.set_git_rev("deadbeef");
  reporter.set_threads(8);
  reporter.Metric("ops_per_s", 1250.0);
  reporter.Metric("p50_us", 3.5);
  reporter.Info("mode", "smoke");
  EXPECT_EQ(reporter.ToJson(),
            "{\"schema_version\":1,\"name\":\"demo\","
            "\"git_rev\":\"deadbeef\",\"threads\":8,"
            "\"metrics\":{\"ops_per_s\":1250,\"p50_us\":3.5},"
            "\"info\":{\"mode\":\"smoke\"}}");
}

TEST(BenchReporterTest, MetricOverwritesAndKeepsInsertionOrder) {
  tsdm_bench::BenchReporter reporter("demo");
  reporter.set_git_rev("deadbeef");
  reporter.set_threads(1);
  reporter.Metric("b_per_s", 1.0);
  reporter.Metric("a_per_s", 2.0);
  reporter.Metric("b_per_s", 3.0);  // overwrite in place, no reordering
  EXPECT_EQ(reporter.ToJson(),
            "{\"schema_version\":1,\"name\":\"demo\","
            "\"git_rev\":\"deadbeef\",\"threads\":1,"
            "\"metrics\":{\"b_per_s\":3,\"a_per_s\":2},\"info\":{}}");
}

TEST(BenchReporterTest, LatencyEmitsQuantileAndCountKeys) {
  tsdm_bench::BenchReporter reporter("demo");
  LatencyHistogram h;
  h.Add(0.004);
  reporter.Latency("tick", h);
  std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"tick_p50_us\":4000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tick_p95_us\":4000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tick_count\":1"), std::string::npos) << json;
}

TEST(BenchReporterTest, WriteLandsInBenchJsonDir) {
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  ASSERT_EQ(::setenv("TSDM_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  tsdm_bench::BenchReporter reporter("writer-check");
  reporter.set_git_rev("deadbeef");
  reporter.set_threads(2);
  reporter.Metric("ops_per_s", 10.0);
  ASSERT_TRUE(reporter.Write());
  ASSERT_EQ(::unsetenv("TSDM_BENCH_JSON_DIR"), 0);

  std::string path = dir + "/BENCH_writer-check.json";
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << path;
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), reporter.ToJson() + "\n");
}

}  // namespace
}  // namespace tsdm
