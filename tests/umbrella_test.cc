/// Verifies the umbrella header is self-contained and exposes the main
/// entry points of every paradigm box.

#include "src/tsdm.h"

#include <gtest/gtest.h>

namespace tsdm {
namespace {

TEST(UmbrellaTest, CoreTypesAreUsable) {
  // Data.
  TimeSeries ts = TimeSeries::FromValues({1.0, 2.0, 3.0});
  EXPECT_EQ(ts.NumSteps(), 3u);
  // Governance.
  Result<Histogram> h = Histogram::FromSamples({1.0, 2.0, 3.0}, 4);
  EXPECT_TRUE(h.ok());
  // Analytics.
  NaiveForecaster naive;
  EXPECT_TRUE(naive.Fit({1.0, 2.0}).ok());
  // Decision.
  RiskNeutralUtility utility;
  EXPECT_EQ(utility(5.0), -5.0);
  // Paradigm.
  Pipeline pipeline;
  EXPECT_EQ(pipeline.NumStages(), 0u);
}

}  // namespace
}  // namespace tsdm
