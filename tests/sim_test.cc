#include <cmath>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/sim/cloud_gen.h"
#include "src/sim/inject.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

TEST(TsGenTest, SeasonalSignalHasSeasonalAutocorrelation) {
  Rng rng(1);
  SeriesSpec spec = TrafficLikeSpec(24);
  spec.ar_coefficients.clear();  // isolate seasonality
  spec.ar_innovation_stddev = 0.0;
  spec.noise_stddev = 0.1;
  std::vector<double> v = GenerateSeries(spec, 24 * 20, &rng);
  EXPECT_GT(Autocorrelation(v, 24), 0.9);
}

TEST(TsGenTest, TrendShowsUp) {
  Rng rng(2);
  SeriesSpec spec;
  spec.trend_per_step = 0.5;
  spec.noise_stddev = 0.1;
  spec.ar_innovation_stddev = 0.0;
  std::vector<double> v = GenerateSeries(spec, 100, &rng);
  EXPECT_GT(v.back(), v.front() + 40.0);
}

TEST(TsGenTest, CorrelatedFieldStrengthControlsCorrelation) {
  Rng rng(3);
  CorrelatedFieldSpec strong;
  strong.spatial_strength = 0.95;
  CorrelatedFieldSpec weak = strong;
  weak.spatial_strength = 0.05;
  CorrelatedTimeSeries cts_strong = GenerateCorrelatedField(strong, 300, &rng);
  CorrelatedTimeSeries cts_weak = GenerateCorrelatedField(weak, 300, &rng);
  ASSERT_TRUE(cts_strong.Validate().ok());
  EXPECT_GT(cts_strong.MeanEdgeCorrelation(),
            cts_weak.MeanEdgeCorrelation() + 0.2);
}

TEST(InjectTest, McarHitsRequestedRate) {
  Rng rng(4);
  TimeSeries ts = TimeSeries::Regular(0, 1, 1000, 4);
  size_t removed = InjectMissingMcar(&ts, 0.3, &rng);
  EXPECT_EQ(removed, ts.CountMissing());
  EXPECT_NEAR(ts.MissingRate(), 0.3, 0.05);
}

TEST(InjectTest, BlocksCreateContiguousGaps) {
  Rng rng(5);
  TimeSeries ts = TimeSeries::Regular(0, 1, 500, 2);
  size_t removed = InjectMissingBlocks(&ts, 0.2, 20, &rng);
  EXPECT_GT(removed, 100u);
  EXPECT_NEAR(ts.MissingRate(), 0.2, 0.1);
}

TEST(InjectTest, SpikesAreDetectableAndLabeled) {
  Rng rng(6);
  TimeSeries ts = TimeSeries::Regular(0, 1, 400, 1);
  for (size_t t = 0; t < 400; ++t) ts.Set(t, 0, std::sin(t * 0.1));
  auto anomalies = InjectAnomalies(&ts, AnomalyKind::kSpike, 5, 8.0, &rng);
  EXPECT_EQ(anomalies.size(), 5u);
  std::vector<int> labels = AnomalyLabels(anomalies, 0, 400);
  int count = 0;
  for (int l : labels) count += l;
  EXPECT_GE(count, 1);
  EXPECT_LE(count, 5);
  // The spiked positions deviate strongly.
  for (const auto& a : anomalies) {
    EXPECT_GT(std::fabs(ts.At(a.start, 0)), 2.0);
  }
}

TEST(TrafficSimTest, RushHourIsMoreCongested) {
  Rng rng(7);
  GridNetworkSpec gspec;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSimulator sim(&net, TrafficSpec{});
  double rush = sim.CongestionLevel(8.0 * 3600);
  double night = sim.CongestionLevel(3.0 * 3600);
  EXPECT_GT(rush, 2.0 * night);
}

TEST(TrafficSimTest, TravelTimesExceedFreeFlow) {
  Rng rng(8);
  GridNetworkSpec gspec;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSimulator sim(&net, TrafficSpec{});
  std::vector<int> path = RandomPath(net, 5, 50, &rng);
  ASSERT_FALSE(path.empty());
  for (int trial = 0; trial < 20; ++trial) {
    double t = sim.SamplePathTime(path, 8.0 * 3600, &rng);
    EXPECT_GT(t, net.PathFreeFlowTime(path));
  }
}

TEST(TrafficSimTest, SharedSeverityCreatesPathVariance) {
  // With alpha=1 (fully shared), path time variance must exceed the
  // sum of independent per-edge variances sampled with alpha=0.
  Rng rng(9);
  GridNetworkSpec gspec;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSpec shared_spec;
  shared_spec.shared_fraction = 1.0;
  TrafficSpec indep_spec;
  indep_spec.shared_fraction = 0.0;
  TrafficSimulator shared_sim(&net, shared_spec);
  TrafficSimulator indep_sim(&net, indep_spec);
  std::vector<int> path = RandomPath(net, 8, 50, &rng);
  ASSERT_FALSE(path.empty());
  std::vector<double> shared_times, indep_times;
  for (int i = 0; i < 600; ++i) {
    shared_times.push_back(shared_sim.SamplePathTime(path, 8 * 3600, &rng));
    indep_times.push_back(indep_sim.SamplePathTime(path, 8 * 3600, &rng));
  }
  EXPECT_GT(Variance(shared_times), 1.5 * Variance(indep_times));
}

TEST(TrafficSimTest, EdgeSpeedSeriesShape) {
  Rng rng(10);
  GridNetworkSpec gspec;
  gspec.rows = 4;
  gspec.cols = 4;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  std::vector<int> edges = {0, 1, 2, 3, 4};
  CorrelatedTimeSeries cts =
      TrafficSimulator(&net, TrafficSpec{})
          .GenerateEdgeSpeedSeries(edges, 48, 1800, &rng);
  ASSERT_TRUE(cts.Validate().ok());
  EXPECT_EQ(cts.NumSensors(), 5u);
  EXPECT_EQ(cts.NumSteps(), 48u);
  // Speeds positive and below free flow.
  for (size_t t = 0; t < 48; ++t) {
    for (size_t s = 0; s < 5; ++s) {
      EXPECT_GT(cts.At(t, s), 0.0);
      EXPECT_LE(cts.At(t, s), net.edge(edges[s]).free_flow_speed + 1e-9);
    }
  }
}

TEST(TrajSimTest, DriveCoversPathAndEmitsGps) {
  Rng rng(11);
  GridNetworkSpec gspec;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSimulator sim(&net, TrafficSpec{});
  std::vector<int> path = RandomPath(net, 6, 50, &rng);
  ASSERT_FALSE(path.empty());
  GpsSpec gps;
  gps.dropout_probability = 0.0;
  SimulatedDrive drive = SimulateDrive(net, sim, path, 9 * 3600, gps, &rng);
  EXPECT_EQ(drive.edge_path, path);
  EXPECT_GT(drive.total_time, 0.0);
  EXPECT_EQ(drive.gps.NumPoints(), drive.gps_true_edges.size());
  EXPECT_GT(drive.gps.NumPoints(), 2u);
  EXPECT_TRUE(drive.gps.IsTimeOrdered());
}

TEST(TrajSimTest, DropoutReducesFixCount) {
  Rng rng(12);
  GridNetworkSpec gspec;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSimulator sim(&net, TrafficSpec{});
  std::vector<int> path = RandomPath(net, 8, 50, &rng);
  ASSERT_FALSE(path.empty());
  GpsSpec clean;
  clean.dropout_probability = 0.0;
  GpsSpec lossy;
  lossy.dropout_probability = 0.5;
  SimulatedDrive d1 = SimulateDrive(net, sim, path, 0, clean, &rng);
  SimulatedDrive d2 = SimulateDrive(net, sim, path, 0, lossy, &rng);
  EXPECT_LT(d2.gps.NumPoints(), d1.gps.NumPoints());
}

TEST(CloudGenTest, DemandNonNegativeWithDailyCycle) {
  Rng rng(13);
  CloudDemandSpec spec;
  spec.surges_per_day = 0.0;
  std::vector<double> d = GenerateCloudDemand(spec, spec.steps_per_day * 10,
                                              &rng);
  for (double v : d) EXPECT_GE(v, 0.0);
  EXPECT_GT(Autocorrelation(d, spec.steps_per_day), 0.7);
}

TEST(CloudGenTest, SurgesRaiseThePeak) {
  Rng rng(14);
  CloudDemandSpec calm;
  calm.surges_per_day = 0.0;
  calm.noise_stddev = 0.0;
  CloudDemandSpec surging = calm;
  surging.surges_per_day = 3.0;
  auto d_calm = GenerateCloudDemand(calm, calm.steps_per_day * 7, &rng);
  auto d_surge = GenerateCloudDemand(surging, calm.steps_per_day * 7, &rng);
  double max_calm = *std::max_element(d_calm.begin(), d_calm.end());
  double max_surge = *std::max_element(d_surge.begin(), d_surge.end());
  EXPECT_GT(max_surge, max_calm + 10.0);
}

}  // namespace
}  // namespace tsdm
