#include <cstdio>

#include <gtest/gtest.h>

#include "src/data/csv.h"
#include "src/data/window.h"

namespace tsdm {
namespace {

TEST(WindowTest, SupervisedLayout) {
  // Series 0..9, lags=3, horizon=2: first row features (0,1,2), target 4.
  std::vector<double> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  Result<SupervisedWindows> sw = MakeSupervised(v, 3, 2);
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw->features.rows(), 6u);
  EXPECT_EQ(sw->features.cols(), 3u);
  EXPECT_EQ(sw->features(0, 0), 0.0);
  EXPECT_EQ(sw->features(0, 2), 2.0);
  EXPECT_EQ(sw->targets[0], 4.0);
  EXPECT_EQ(sw->targets[5], 9.0);
}

TEST(WindowTest, TooShortSeriesFails) {
  EXPECT_FALSE(MakeSupervised({1.0, 2.0}, 3, 1).ok());
  EXPECT_FALSE(MakeSupervised({1.0, 2.0, 3.0}, 0, 1).ok());
  EXPECT_FALSE(MakeSupervised({1.0, 2.0, 3.0}, 1, 0).ok());
}

TEST(WindowTest, SlidingSubsequences) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  auto subs = SlidingSubsequences(v, 3, 1);
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[2][0], 3.0);
  auto strided = SlidingSubsequences(v, 2, 2);
  ASSERT_EQ(strided.size(), 2u);
  EXPECT_EQ(strided[1][0], 3.0);
  EXPECT_TRUE(SlidingSubsequences(v, 0, 1).empty());
}

TEST(WindowTest, TrainTestSplitFractions) {
  std::vector<double> v(100, 1.0);
  SeriesSplit s = TrainTestSplit(v, 0.8);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  SeriesSplit all = TrainTestSplit(v, 1.5);  // clamped
  EXPECT_EQ(all.train.size(), 100u);
}

TEST(CsvTest, RoundTripWithMissing) {
  TimeSeries ts = TimeSeries::Regular(100, 60, 4, 2);
  ts.Set(0, 0, 1.25);
  ts.Set(1, 1, -3.5);
  ts.Set(2, 0, kMissingValue);
  std::string path = ::testing::TempDir() + "/tsdm_csv_test.csv";
  ASSERT_TRUE(WriteTimeSeriesCsv(ts, path).ok());
  Result<TimeSeries> back = ReadTimeSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumSteps(), 4u);
  EXPECT_EQ(back->NumChannels(), 2u);
  EXPECT_EQ(back->Timestamp(3), 280);
  EXPECT_DOUBLE_EQ(back->At(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(back->At(1, 1), -3.5);
  EXPECT_TRUE(back->IsMissing(2, 0));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  Result<TimeSeries> r = ReadTimeSeriesCsv("/nonexistent/really/not.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tsdm
