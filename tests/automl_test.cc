#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/automl/search.h"
#include "src/analytics/forecast/metrics.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

std::vector<double> MakeSeries(int seed, int n = 24 * 12) {
  Rng rng(seed);
  return GenerateSeries(TrafficLikeSpec(24), n, &rng);
}

TEST(ConfigTest, ToStringCoversAllFamilies) {
  ForecastConfig c;
  for (auto family :
       {ForecastConfig::Family::kNaive, ForecastConfig::Family::kSeasonalNaive,
        ForecastConfig::Family::kAr, ForecastConfig::Family::kHoltWinters,
        ForecastConfig::Family::kRidgeDirect}) {
    c.family = family;
    EXPECT_FALSE(c.ToString().empty());
    EXPECT_NE(MakeForecaster(c, 12), nullptr);
  }
}

TEST(SearchSpaceTest, NonTrivialAndDiverse) {
  auto space = DefaultSearchSpace(24);
  EXPECT_GE(space.size(), 10u);
  bool has_hw = false, has_ar = false;
  for (const auto& c : space) {
    has_hw = has_hw || c.family == ForecastConfig::Family::kHoltWinters;
    has_ar = has_ar || c.family == ForecastConfig::Family::kAr;
  }
  EXPECT_TRUE(has_hw);
  EXPECT_TRUE(has_ar);
}

TEST(RollingOriginTest, ScoresAreFiniteForFittableConfigs) {
  std::vector<double> series = MakeSeries(1);
  ForecastConfig c;
  c.family = ForecastConfig::Family::kAr;
  c.ar_order = 4;
  double score = RollingOriginScore(c, series, 12, 3);
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_GT(score, 0.0);
}

TEST(RollingOriginTest, UnfittableConfigIsInfinity) {
  ForecastConfig c;
  c.family = ForecastConfig::Family::kHoltWinters;
  c.season = 24;
  std::vector<double> tiny = {1, 2, 3, 4, 5};
  EXPECT_TRUE(std::isinf(RollingOriginScore(c, tiny, 2, 2)));
}

TEST(SearchTest, SearchedConfigBeatsNaiveDefault) {
  std::vector<double> series = MakeSeries(2);
  auto space = DefaultSearchSpace(24);
  SearchOutcome outcome = SuccessiveHalving(space, series, 12, 4);
  ForecastConfig naive;
  naive.family = ForecastConfig::Family::kNaive;
  double naive_score = RollingOriginScore(naive, series, 12, 4);
  EXPECT_LT(outcome.best_score, naive_score);
}

TEST(SearchTest, HalvingCheaperThanExhaustiveAtSameQuality) {
  std::vector<double> series = MakeSeries(3);
  auto space = DefaultSearchSpace(24);
  SearchOutcome halving = SuccessiveHalving(space, series, 12, 4);
  // Exhaustive: every config at full fidelity.
  int exhaustive_evals = static_cast<int>(space.size()) * 4;
  EXPECT_LT(halving.evaluations, exhaustive_evals);
  // And the winner is close to the exhaustive winner.
  double best_full = 1e300;
  for (const auto& c : space) {
    best_full = std::min(best_full, RollingOriginScore(c, series, 12, 4));
  }
  EXPECT_LT(halving.best_score, best_full * 1.5 + 1e-9);
}

TEST(SearchTest, RandomSearchImprovesWithBudget) {
  std::vector<double> series = MakeSeries(4);
  auto space = DefaultSearchSpace(24);
  Rng rng_small(5), rng_large(5);
  SearchOutcome small = RandomSearch(space, series, 12, 4, 2, &rng_small);
  SearchOutcome large = RandomSearch(space, series, 12, 40, 2, &rng_large);
  EXPECT_LE(large.best_score, small.best_score + 1e-9);
}

TEST(AutoForecasterTest, EndToEnd) {
  std::vector<double> series = MakeSeries(6);
  std::vector<double> train(series.begin(), series.end() - 12);
  std::vector<double> actual(series.end() - 12, series.end());
  AutoForecaster::Options opts;
  opts.season_hint = 24;
  opts.horizon = 12;
  AutoForecaster auto_model(opts);
  ASSERT_TRUE(auto_model.Fit(train).ok());
  Result<std::vector<double>> fc = auto_model.Forecast(12);
  ASSERT_TRUE(fc.ok());
  // Must beat naive on this strongly seasonal series.
  NaiveForecaster naive;
  ASSERT_TRUE(naive.Fit(train).ok());
  EXPECT_LT(MeanAbsoluteError(actual, *fc),
            MeanAbsoluteError(actual, *naive.Forecast(12)) * 1.2);
  EXPECT_NE(auto_model.Name().find("auto["), std::string::npos);
}

TEST(AutoForecasterTest, FailsOnHopelessInput) {
  AutoForecaster model;
  EXPECT_FALSE(model.Fit({1.0}).ok());
}

}  // namespace
}  // namespace tsdm
