#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/road_gen.h"
#include "src/spatial/geometry.h"
#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {
namespace {

/// A 2x2 square with an expensive direct edge and a cheap two-hop detour.
RoadNetwork MakeDiamond() {
  RoadNetwork net;
  int a = net.AddNode(0, 0);
  int b = net.AddNode(100, 0);
  int c = net.AddNode(0, 100);
  int d = net.AddNode(100, 100);
  // Slow direct edge a->d, fast detours via b and c.
  net.AddEdge(a, d, 1.0, 141.4);   // ~141 s
  net.AddEdge(a, b, 10.0, 100.0);  // 10 s
  net.AddEdge(b, d, 10.0, 100.0);  // 10 s
  net.AddEdge(a, c, 5.0, 100.0);   // 20 s
  net.AddEdge(c, d, 5.0, 100.0);   // 20 s
  return net;
}

TEST(RoadNetworkTest, EdgeBookkeeping) {
  RoadNetwork net = MakeDiamond();
  EXPECT_EQ(net.NumNodes(), 4u);
  EXPECT_EQ(net.NumEdges(), 5u);
  EXPECT_EQ(net.OutEdges(0).size(), 3u);
  EXPECT_EQ(net.InEdges(3).size(), 3u);
  EXPECT_GE(net.FindEdge(0, 3), 0);
  EXPECT_EQ(net.FindEdge(3, 0), -1);
  EXPECT_NEAR(net.FreeFlowTime(net.FindEdge(0, 1)), 10.0, 1e-9);
}

TEST(RoadNetworkTest, RejectsBadEdges) {
  RoadNetwork net;
  net.AddNode(0, 0);
  EXPECT_FALSE(net.AddEdge(0, 5, 10.0).ok());
  net.AddNode(1, 1);
  EXPECT_FALSE(net.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(net.AddEdge(0, 1, -3.0).ok());
}

TEST(RoadNetworkTest, NodePathToEdgePath) {
  RoadNetwork net = MakeDiamond();
  Result<std::vector<int>> edges = net.NodePathToEdgePath({0, 1, 3});
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 2u);
  EXPECT_FALSE(net.NodePathToEdgePath({1, 0}).ok());
}

TEST(ShortestPathTest, PicksCheapestRoute) {
  RoadNetwork net = MakeDiamond();
  Result<Path> p = ShortestPath(net, 0, 3, FreeFlowTimeCost(net));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->cost, 20.0, 1e-9);  // via b
  ASSERT_EQ(p->nodes.size(), 3u);
  EXPECT_EQ(p->nodes[1], 1);
}

TEST(ShortestPathTest, UnreachableTargetIsNotFound) {
  RoadNetwork net;
  net.AddNode(0, 0);
  net.AddNode(1, 1);
  Result<Path> p = ShortestPath(net, 0, 1, FreeFlowTimeCost(net));
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotFound);
}

TEST(ShortestPathTest, TreeDistancesMatchPointQueries) {
  Rng rng(5);
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  auto cost = FreeFlowTimeCost(net);
  std::vector<double> dist = ShortestPathTree(net, 0, cost);
  for (int target : {3, 12, 24}) {
    Result<Path> p = ShortestPath(net, 0, target, cost);
    ASSERT_TRUE(p.ok());
    EXPECT_NEAR(p->cost, dist[target], 1e-9);
  }
}

TEST(ShortestPathTest, AStarMatchesDijkstra) {
  Rng rng(6);
  GridNetworkSpec spec;
  spec.rows = 6;
  spec.cols = 6;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  auto cost = FreeFlowTimeCost(net);
  for (int target : {7, 20, 35}) {
    Result<Path> d = ShortestPath(net, 0, target, cost);
    Result<Path> a = AStarPath(net, 0, target, cost, spec.arterial_speed);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(a.ok());
    EXPECT_NEAR(d->cost, a->cost, 1e-9);
  }
}

TEST(KShortestPathsTest, OrderedDistinctLoopless) {
  Rng rng(7);
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  spec.diagonal_probability = 0.3;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  Result<std::vector<Path>> paths =
      KShortestPaths(net, 0, 24, 6, FreeFlowTimeCost(net));
  ASSERT_TRUE(paths.ok());
  ASSERT_GE(paths->size(), 2u);
  std::set<std::vector<int>> seen;
  double prev_cost = 0.0;
  for (const Path& p : *paths) {
    EXPECT_GE(p.cost, prev_cost - 1e-9);  // sorted by cost
    prev_cost = p.cost;
    EXPECT_TRUE(seen.insert(p.nodes).second);  // distinct
    std::set<int> unique_nodes(p.nodes.begin(), p.nodes.end());
    EXPECT_EQ(unique_nodes.size(), p.nodes.size());  // loopless
    // Edges connect consecutively.
    for (size_t i = 0; i < p.edges.size(); ++i) {
      EXPECT_EQ(net.edge(p.edges[i]).from, p.nodes[i]);
      EXPECT_EQ(net.edge(p.edges[i]).to, p.nodes[i + 1]);
    }
  }
}

TEST(KShortestPathsTest, RejectsBadK) {
  RoadNetwork net = MakeDiamond();
  EXPECT_FALSE(KShortestPaths(net, 0, 3, 0, FreeFlowTimeCost(net)).ok());
}

TEST(GeometryTest, ProjectionOntoSegment) {
  SegmentProjection p =
      ProjectOntoSegment({5, 5}, {0, 0}, {10, 0});
  EXPECT_NEAR(p.closest.x, 5.0, 1e-9);
  EXPECT_NEAR(p.closest.y, 0.0, 1e-9);
  EXPECT_NEAR(p.distance, 5.0, 1e-9);
  EXPECT_NEAR(p.fraction, 0.5, 1e-9);
  // Beyond the endpoint: clamped.
  SegmentProjection q = ProjectOntoSegment({20, 0}, {0, 0}, {10, 0});
  EXPECT_NEAR(q.fraction, 1.0, 1e-9);
  EXPECT_NEAR(q.distance, 10.0, 1e-9);
}

TEST(GeometryTest, EdgesNearOrdersByDistance) {
  RoadNetwork net = MakeDiamond();
  std::vector<int> near = EdgesNear(net, {50, 1}, 30.0);
  ASSERT_FALSE(near.empty());
  // Closest edge should be a->b (y=0 segment).
  int ab = net.FindEdge(0, 1);
  EXPECT_EQ(near.front(), ab);
}

TEST(GridGenTest, GridConnectivityAndSize) {
  Rng rng(8);
  GridNetworkSpec spec;
  spec.rows = 4;
  spec.cols = 3;
  spec.diagonal_probability = 0.0;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  EXPECT_EQ(net.NumNodes(), 12u);
  // Lattice edges: 4*(3-1) horizontal + 3*(4-1) vertical, bidirectional.
  EXPECT_EQ(net.NumEdges(), 2u * (4 * 2 + 3 * 3));
  // Everything reachable from node 0.
  std::vector<double> dist = ShortestPathTree(net, 0, LengthCost(net));
  for (double d : dist) EXPECT_TRUE(std::isfinite(d));
}

}  // namespace
}  // namespace tsdm
