#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/classify/classifier.h"
#include "src/analytics/represent/encoder.h"
#include "src/common/rng.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

TEST(RandomKernelTest, DeterministicGivenSeed) {
  RandomKernelEncoder::Options opts;
  opts.num_kernels = 32;
  RandomKernelEncoder a(opts), b(opts);
  std::vector<double> series;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) series.push_back(rng.Normal());
  auto ea = a.Encode(series);
  auto eb = b.Encode(series);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(*ea, *eb);
  EXPECT_EQ(ea->size(), a.Dimension());
}

TEST(RandomKernelTest, DifferentSignalsSeparate) {
  RandomKernelEncoder enc;
  Rng rng(2);
  SeriesSpec seasonal;
  seasonal.seasonal = {{8, 4.0, 0.0}};
  seasonal.noise_stddev = 0.2;
  SeriesSpec flat;
  flat.noise_stddev = 0.2;
  auto e1 = enc.Encode(GenerateSeries(seasonal, 80, &rng));
  auto e2 = enc.Encode(GenerateSeries(flat, 80, &rng));
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  double dist = 0.0;
  for (size_t i = 0; i < e1->size(); ++i) {
    dist += std::fabs((*e1)[i] - (*e2)[i]);
  }
  EXPECT_GT(dist, 1.0);
}

TEST(RandomKernelTest, ShortSeriesGetNeutralFeatures) {
  RandomKernelEncoder enc;
  Result<std::vector<double>> e = enc.Encode({1.0, 2.0});
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), enc.Dimension());
  EXPECT_FALSE(enc.Encode({}).ok());
}

TEST(PcaEncoderTest, ProjectsOntoPrincipalDirections) {
  // Data varying along a single direction compresses losslessly to 1D.
  Rng rng(3);
  std::vector<double> base = {1.0, 2.0, -1.0, 0.5};
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) {
    double t = rng.Normal();
    std::vector<double> row(4);
    for (int j = 0; j < 4; ++j) row[j] = t * base[j];
    data.push_back(row);
  }
  PcaEncoder enc(1);
  ASSERT_TRUE(enc.Fit(data).ok());
  EXPECT_EQ(enc.Dimension(), 1u);
  // Reconstruction check via encoding two scaled versions.
  auto e1 = enc.Encode(data[0]);
  auto e2 = enc.Encode(data[1]);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  // Encodings should be proportional to the latent scale; verify via ratio
  // consistency with raw values.
  double raw_ratio = data[0][0] / (data[1][0] + 1e-12);
  double enc_ratio = (*e1)[0] / ((*e2)[0] + 1e-12);
  EXPECT_NEAR(raw_ratio, enc_ratio, 0.2 * std::fabs(raw_ratio) + 0.1);
}

TEST(PcaEncoderTest, Validation) {
  PcaEncoder enc(2);
  EXPECT_FALSE(enc.Fit({{1.0, 2.0}}).ok());           // too few
  EXPECT_FALSE(enc.Fit({{1.0}, {1.0, 2.0}}).ok());    // ragged
  ASSERT_TRUE(enc.Fit({{1.0, 2.0}, {2.0, 1.0}, {0.0, 0.0}}).ok());
  EXPECT_FALSE(enc.Encode({1.0}).ok());               // wrong length
}

TEST(EncoderDownstreamTest, KernelFeaturesSupportClassification) {
  // Representation -> logistic head, mirroring the pretrain-finetune story.
  Rng rng(4);
  RandomKernelEncoder::Options opts;
  opts.num_kernels = 64;
  RandomKernelEncoder enc(opts);
  auto make = [&](int n, int seed) {
    Rng local(seed);
    std::vector<std::pair<std::vector<double>, int>> out;
    for (int i = 0; i < n; ++i) {
      SeriesSpec s1;
      s1.seasonal = {{8, 4.0, 0.0}};
      s1.noise_stddev = 0.4;
      SeriesSpec s0;
      s0.noise_stddev = 0.4;
      out.push_back({*enc.Encode(GenerateSeries(s0, 64, &local)), 0});
      out.push_back({*enc.Encode(GenerateSeries(s1, 64, &local)), 1});
    }
    return out;
  };
  auto train = make(25, 5);
  auto test = make(10, 6);
  LogisticClassifier head;
  std::vector<std::vector<double>> feats;
  std::vector<std::vector<double>> targets;
  for (const auto& [f, label] : train) {
    feats.push_back(f);
    targets.push_back(label == 0 ? std::vector<double>{1.0, 0.0}
                                 : std::vector<double>{0.0, 1.0});
  }
  ASSERT_TRUE(head.FitSoft(feats, targets).ok());
  int hits = 0;
  for (const auto& [f, label] : test) {
    auto p = head.ProbaFromFeatures(f);
    ASSERT_TRUE(p.ok());
    int pred = (*p)[1] > (*p)[0] ? 1 : 0;
    hits += pred == label ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(hits) / test.size(), 0.8);
}

}  // namespace
}  // namespace tsdm
