#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/anomaly/detector.h"
#include "src/analytics/explain/explain.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

TEST(AttributionTest, TopScoresHitInjectedAnomalies) {
  Rng rng(1);
  SeriesSpec spec = TrafficLikeSpec(24);
  std::vector<double> train = GenerateSeries(spec, 600, &rng);
  TimeSeries test_ts = TimeSeries::Regular(0, 1, 600, 1);
  test_ts.SetChannel(0, GenerateSeries(spec, 600, &rng));
  auto injected =
      InjectAnomalies(&test_ts, AnomalyKind::kSpike, 10, 8.0, &rng);
  std::vector<int> labels = AnomalyLabels(injected, 0, 600);

  PcaReconstructionDetector detector(16, 3);
  ASSERT_TRUE(detector.Fit(train).ok());
  Result<std::vector<double>> scores = detector.Score(test_ts.Channel(0));
  ASSERT_TRUE(scores.ok());
  AttributionEval eval = EvaluatePointAttribution(*scores, labels, 10);
  EXPECT_GT(eval.hit_rate, 3.0 * eval.random_baseline);
}

TEST(AttributionTest, EmptyInputsAreSafe) {
  AttributionEval eval = EvaluatePointAttribution({}, {}, 5);
  EXPECT_EQ(eval.hit_rate, 0.0);
  EXPECT_EQ(eval.random_baseline, 0.0);
}

TEST(PermutationImportanceTest, IdentifiesTheRealFeature) {
  // y depends only on feature 0.
  Rng rng(2);
  Matrix x(200, 3);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    x(i, 2) = rng.Normal();
    y[i] = 4.0 * x(i, 0);
  }
  auto predict = [](const std::vector<double>& row) { return 4.0 * row[0]; };
  auto loss = [](double pred, double target) {
    return std::fabs(pred - target);
  };
  Rng perm_rng(3);
  std::vector<double> importance =
      PermutationImportance(x, y, predict, loss, &perm_rng);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 10.0 * std::fabs(importance[1]) + 0.1);
  EXPECT_GT(importance[0], 10.0 * std::fabs(importance[2]) + 0.1);
}

TEST(AssociationGraphTest, DetectsLeadLagStructure) {
  // Sensor 0 leads sensor 1 by exactly 3 steps.
  Rng rng(4);
  int n = 400;
  std::vector<double> lead;
  for (int i = 0; i < n; ++i) {
    lead.push_back(std::sin(i * 0.17) + rng.Normal(0.0, 0.05));
  }
  SensorGraph g;
  g.AddSensor(0, 0);
  g.AddSensor(1, 0);
  g.AddEdge(0, 1, 1.0);
  TimeSeries ts = TimeSeries::Regular(0, 1, n, 2);
  for (int t = 0; t < n; ++t) {
    ts.Set(t, 0, lead[t]);
    ts.Set(t, 1, t >= 3 ? lead[t - 3] : 0.0);
  }
  CorrelatedTimeSeries cts(g, ts);
  AssociationGraph graph = BuildAssociationGraph(cts, 6);
  EXPECT_GT(graph.weight(0, 1), 0.9);
  EXPECT_EQ(static_cast<int>(graph.lag(0, 1)), 3);
  auto top = TopAssociations(graph, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].leader, 0);
  EXPECT_EQ(top[0].follower, 1);
  EXPECT_EQ(top[0].lag, 3);
}

}  // namespace
}  // namespace tsdm
