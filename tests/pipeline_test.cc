#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

PipelineContext MakeContext(int seed) {
  Rng rng(seed);
  CorrelatedFieldSpec spec;
  spec.grid_rows = 3;
  spec.grid_cols = 3;
  PipelineContext ctx;
  ctx.data = GenerateCorrelatedField(spec, 300, &rng);
  InjectMissingMcar(&ctx.data.series(), 0.2, &rng);
  return ctx;
}

TEST(PipelineTest, FullParadigmRunsGreen) {
  PipelineContext ctx = MakeContext(1);
  RangeRule range{-1000.0, 1000.0};
  Pipeline pipeline;
  pipeline.Emplace<AssessQualityStage>(range)
      .Emplace<CleanStage>(range)
      .Emplace<ImputeStage>()
      .Emplace<ForecastStage>(4, 12);
  EXPECT_EQ(pipeline.NumStages(), 4u);
  PipelineReport report = pipeline.Run(&ctx);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.stages.size(), 4u);
  // Governance worked: data complete, metrics recorded.
  EXPECT_EQ(ctx.data.series().CountMissing(), 0u);
  EXPECT_GT(ctx.metrics["quality_missing_rate"], 0.1);
  EXPECT_GT(ctx.metrics["imputed_entries"], 0.0);
  EXPECT_EQ(ctx.metrics["forecast_sensors"], 9.0);
  // Forecast artifacts exist with the right horizon.
  ASSERT_TRUE(ctx.artifacts.count("forecast/0"));
  EXPECT_EQ(ctx.artifacts["forecast/0"].size(), 12u);
  EXPECT_FALSE(report.ToString().empty());
}

/// A stage that always fails, to verify short-circuiting.
class FailingStage : public PipelineStage {
 public:
  std::string Name() const override { return "test/failing"; }
  Status Run(PipelineContext*) override {
    return Status::Internal("intentional");
  }
};

TEST(PipelineTest, StopsAtFirstFailure) {
  PipelineContext ctx = MakeContext(2);
  RangeRule range{-1000.0, 1000.0};
  Pipeline pipeline;
  pipeline.Emplace<AssessQualityStage>(range)
      .Emplace<FailingStage>()
      .Emplace<ForecastStage>(4, 6);
  PipelineReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.stages.size(), 2u);  // third stage never ran
  EXPECT_FALSE(report.stages[1].status.ok());
  EXPECT_EQ(ctx.artifacts.count("forecast/0"), 0u);
}

TEST(PipelineTest, EmptyPipelineIsTriviallyOk) {
  PipelineContext ctx = MakeContext(3);
  Pipeline pipeline;
  PipelineReport report = pipeline.Run(&ctx);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.stages.empty());
}

}  // namespace
}  // namespace tsdm
