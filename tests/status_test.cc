#include "src/common/status.h"

#include <gtest/gtest.h>

namespace tsdm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status Fails() { return Status::Internal("boom"); }
Status PropagationHelper() {
  TSDM_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  Status s = PropagationHelper();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace tsdm
