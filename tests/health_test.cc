#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "src/common/rng.h"
#include "src/obs/health.h"
#include "src/obs/metrics_export.h"

namespace tsdm {
namespace {

// The self-monitor judged against synthetic operational histories: steady
// traffic must never alarm, injected incidents (queue-depth spike, cache
// hit-rate collapse, SLO burn) must be flagged and attributed.

/// A scripted server: the test drives its counters forward one sampling
/// interval at a time and the monitor watches it through the same Sampler
/// interface a real QueryServer exposes.
class SyntheticServer {
 public:
  HealthMonitor::Sampler AsSampler() {
    return [this] { return snap_; };
  }

  /// Advances one interval: `requests` answered at ~`latency_seconds`
  /// (10% jitter), a cache working at `hit_rate`, `depth` requests left in
  /// queue, and `shed` requests rejected at the door.
  void Advance(int requests, double latency_seconds, double hit_rate,
               size_t depth, int shed = 0) {
    snap_.submitted += static_cast<uint64_t>(requests + shed);
    snap_.admitted += static_cast<uint64_t>(requests);
    snap_.shed_capacity += static_cast<uint64_t>(shed);
    snap_.queue_depth = depth;
    for (int i = 0; i < requests; ++i) {
      const double l = latency_seconds * rng_.Uniform(0.9, 1.1);
      snap_.e2e_latency.Add(l);
      // Fixed stage mix: exec dominates, as in a compute-bound server.
      snap_.stage_queue.Add(l * 0.15);
      snap_.stage_batch.Add(l * 0.05);
      snap_.stage_cache.Add(l * 0.30);
      snap_.stage_exec.Add(l * 0.50);
      ++snap_.completed;
    }
    const int lookups = requests * 4;
    const int hits = static_cast<int>(lookups * hit_rate);
    snap_.cache_hits += static_cast<uint64_t>(hits);
    snap_.cache_misses += static_cast<uint64_t>(lookups - hits);
  }

  ServeStatsSnapshot& snap() { return snap_; }

 private:
  ServeStatsSnapshot snap_;
  Rng rng_{7};
};

HealthMonitor::Options TestOptions() {
  HealthMonitor::Options opts;
  opts.warmup_samples = 10;
  opts.slo_p95_objective_seconds = 0.05;
  opts.slo_error_budget = 0.05;
  return opts;
}

/// Steady traffic with realistic jitter: ~100 requests per interval at
/// ~10ms, 90% hit rate, small oscillating queue.
void SteadyRound(SyntheticServer* server, Rng* rng, int round) {
  server->Advance(90 + static_cast<int>(rng->Uniform(0.0, 20.0)),
                  /*latency_seconds=*/0.010, /*hit_rate=*/0.9,
                  /*depth=*/static_cast<size_t>(round % 4));
}

TEST(HealthMonitorTest, SteadyStateStaysHealthyWithZeroFalseAlarms) {
  SyntheticServer server;
  Rng rng(3);
  HealthMonitor monitor(server.AsSampler(), TestOptions());
  for (int round = 0; round < 80; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  HealthSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.state, HealthState::kHealthy);
  EXPECT_EQ(snap.anomalies_total, 0u);
  EXPECT_EQ(snap.samples, 80u);
  EXPECT_DOUBLE_EQ(snap.burn_rate, 0.0);
  // Attribution follows the scripted stage mix.
  EXPECT_EQ(snap.top_offender, "exec");
  EXPECT_NEAR(snap.top_offender_share, 0.5, 0.05);
  for (const MetricVerdict& v : snap.metrics) {
    EXPECT_FALSE(v.anomalous) << v.name;
    EXPECT_EQ(v.anomalies, 0u) << v.name;
  }
}

TEST(HealthMonitorTest, QueueDepthSpikeIsFlagged) {
  SyntheticServer server;
  Rng rng(4);
  HealthMonitor monitor(server.AsSampler(), TestOptions());
  for (int round = 0; round < 40; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  ASSERT_EQ(monitor.Snapshot().anomalies_total, 0u);

  // Incident: the queue blows up while a shed storm starts.
  server.Advance(100, 0.010, 0.9, /*depth=*/500, /*shed=*/400);
  monitor.SampleOnce();

  HealthSnapshot snap = monitor.Snapshot();
  EXPECT_NE(snap.state, HealthState::kHealthy);
  bool depth_flagged = false;
  bool shed_flagged = false;
  for (const MetricVerdict& v : snap.metrics) {
    if (v.name == "queue_depth") depth_flagged = v.anomalous;
    if (v.name == "shed_rate") shed_flagged = v.anomalous;
  }
  EXPECT_TRUE(depth_flagged);
  EXPECT_TRUE(shed_flagged);
}

TEST(HealthMonitorTest, CacheHitRateCollapseIsFlagged) {
  SyntheticServer server;
  Rng rng(5);
  HealthMonitor monitor(server.AsSampler(), TestOptions());
  for (int round = 0; round < 40; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  ASSERT_EQ(monitor.Snapshot().anomalies_total, 0u);

  // Incident: the cache goes cold (e.g. a snapshot swap cleared it) while
  // everything else stays normal.
  server.Advance(100, 0.010, /*hit_rate=*/0.05, /*depth=*/2);
  monitor.SampleOnce();

  HealthSnapshot snap = monitor.Snapshot();
  EXPECT_NE(snap.state, HealthState::kHealthy);
  for (const MetricVerdict& v : snap.metrics) {
    if (v.name == "cache_hit_rate") {
      EXPECT_TRUE(v.anomalous);
      EXPECT_NEAR(v.value, 0.05, 0.01);
    }
  }
}

TEST(HealthMonitorTest, SloBurnDrivesUnhealthy) {
  SyntheticServer server;
  Rng rng(6);
  HealthMonitor::Options opts = TestOptions();
  HealthMonitor monitor(server.AsSampler(), opts);
  for (int round = 0; round < 40; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  ASSERT_EQ(monitor.Snapshot().state, HealthState::kHealthy);

  // Incident: every request now takes 10x the 50ms objective — the whole
  // interval violates, burning 1/error_budget = 20x the budget.
  server.Advance(100, /*latency_seconds=*/0.5, 0.9, /*depth=*/3);
  monitor.SampleOnce();

  HealthSnapshot snap = monitor.Snapshot();
  EXPECT_EQ(snap.state, HealthState::kUnhealthy);
  EXPECT_NEAR(snap.violation_fraction, 1.0, 1e-9);
  EXPECT_GE(snap.burn_rate, opts.burn_unhealthy);
  // Latency mean jumped 50x too — the detector sees it.
  for (const MetricVerdict& v : snap.metrics) {
    if (v.name == "latency_mean") EXPECT_TRUE(v.anomalous);
  }

  // The transition ring recorded when the degradation started, with the
  // evidence of the moment.
  ASSERT_EQ(snap.transitions_total, 1u);
  ASSERT_EQ(snap.transitions.size(), 1u);
  const HealthTransition& t = snap.transitions[0];
  EXPECT_EQ(t.from, HealthState::kHealthy);
  EXPECT_EQ(t.to, HealthState::kUnhealthy);
  EXPECT_EQ(t.sample, 41u);
  EXPECT_GT(t.at_ns, 0u);
  EXPECT_GE(t.burn_rate, opts.burn_unhealthy);

  // Recovery lands in the same ring; the ring is bounded by
  // transition_history while the total keeps counting.
  for (int round = 0; round < 40; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  HealthSnapshot after = monitor.Snapshot();
  EXPECT_EQ(after.state, HealthState::kHealthy);
  EXPECT_GE(after.transitions_total, 2u);
  EXPECT_LE(after.transitions.size(), monitor.options().transition_history);
  EXPECT_EQ(after.transitions.back().to, HealthState::kHealthy);
}

TEST(HealthMonitorTest, WarmupNeverAlarmsEvenOnWildFirstSamples) {
  SyntheticServer server;
  HealthMonitor::Options opts = TestOptions();
  opts.warmup_samples = 12;
  HealthMonitor monitor(server.AsSampler(), opts);
  // Wildly different loads every round, all within warmup.
  for (int round = 0; round < 12; ++round) {
    server.Advance((round % 3) * 300 + 1, 0.001 * (1 + round * 7 % 13), 0.5,
                   static_cast<size_t>(round * 50));
    monitor.SampleOnce();
  }
  EXPECT_EQ(monitor.Snapshot().anomalies_total, 0u);
}

TEST(HealthMonitorTest, ExportsJsonAndPrometheus) {
  SyntheticServer server;
  Rng rng(8);
  HealthMonitor monitor(server.AsSampler(), TestOptions());
  for (int round = 0; round < 20; ++round) {
    SteadyRound(&server, &rng, round);
    monitor.SampleOnce();
  }
  HealthSnapshot snap = monitor.Snapshot();

  std::string json = MetricsExporter::HealthToJson(snap);
  EXPECT_NE(json.find("\"state\":\"healthy\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"top_offender\":\"exec\""), std::string::npos);
  // The transition ring rides in the JSON (empty here: never degraded).
  EXPECT_NE(json.find("\"transitions_total\":0"), std::string::npos);
  EXPECT_NE(json.find("\"transitions\":[]"), std::string::npos);

  std::string prom = MetricsExporter::HealthToPrometheus(snap);
  EXPECT_NE(prom.find("tsdm_health_state 0"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_health_samples_total 20"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_health_metric_value{metric=\"cache_hit_rate\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_health_slo_burn_rate"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_health_transitions_total 0"), std::string::npos);
}

TEST(HealthMonitorTest, BackgroundThreadSamplesAndSnapshotsConcurrently) {
  SyntheticServer scripted;
  // The sampler itself runs on the monitor thread; guard the scripted
  // state so the test's Advance calls race cleanly with it (a real
  // QueryServer::Stats has its own internal locking).
  std::mutex mu;
  HealthMonitor::Options opts = TestOptions();
  opts.sample_interval_seconds = 0.002;
  HealthMonitor monitor(
      [&] {
        std::unique_lock<std::mutex> lock(mu);
        return scripted.snap();
      },
      opts);
  ASSERT_TRUE(monitor.Start().ok());
  EXPECT_FALSE(monitor.Start().ok());  // double start rejected

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      HealthSnapshot snap = monitor.Snapshot();
      EXPECT_LE(static_cast<int>(snap.state), 2);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  Rng rng(9);
  for (int round = 0; round < 25; ++round) {
    {
      std::unique_lock<std::mutex> lock(mu);
      SteadyRound(&scripted, &rng, round);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true);
  reader.join();
  monitor.Stop();
  monitor.Stop();  // idempotent

  EXPECT_GT(monitor.Snapshot().samples, 5u);
}

}  // namespace
}  // namespace tsdm
