/// Tests for the extension modules: departure planning with arrival
/// windows, eco-routing emission criteria, cross-domain transfer, and the
/// forecasting leaderboard.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/analytics/benchmarking/leaderboard.h"
#include "src/analytics/represent/transfer.h"
#include "src/decision/multiobj/emissions.h"
#include "src/decision/multiobj/pareto.h"
#include "src/decision/routing/departure_planner.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

class DepartureFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(51);
    GridNetworkSpec gspec;
    gspec.rows = 5;
    gspec.cols = 5;
    net_ = GenerateGridNetwork(gspec, rng_.get());
    sim_ = std::make_unique<TrafficSimulator>(&net_, TrafficSpec{});
    model_ = std::make_unique<EdgeCentricModel>(
        static_cast<int>(net_.NumEdges()), 24);
    // Trips across the whole day so every slot has observations.
    for (int i = 0; i < 600; ++i) {
      std::vector<int> p = RandomPath(net_, 3, 20, rng_.get());
      if (p.empty()) continue;
      TripObservation trip;
      trip.edge_path = p;
      trip.depart_seconds = rng_->Uniform(0.0, 86400.0);
      trip.edge_times =
          sim_->SamplePathEdgeTimes(p, trip.depart_seconds, rng_.get());
      model_->AddTrip(trip);
    }
    ASSERT_TRUE(model_->Build(32).ok());
  }

  PathCostModel CostModel() {
    return [this](const std::vector<int>& edges, double depart) {
      return model_->PathCostDistribution(edges, depart);
    };
  }

  std::unique_ptr<Rng> rng_;
  RoadNetwork net_;
  std::unique_ptr<TrafficSimulator> sim_;
  std::unique_ptr<EdgeCentricModel> model_;
};

TEST_F(DepartureFixture, FindsHighProbabilityPlan) {
  DeparturePlanner::Options opts;
  opts.earliest_departure = 6 * 3600.0;
  opts.latest_departure = 12 * 3600.0;
  opts.departure_step = 1800.0;
  DeparturePlanner planner(&net_, CostModel(), opts);
  // A wide window somewhere mid-morning.
  Result<DeparturePlanner::Plan> plan =
      planner.BestPlan(0, 24, 9.5 * 3600.0, 11.0 * 3600.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->window_probability, 0.5);
  EXPECT_GE(plan->depart_seconds, opts.earliest_departure);
  EXPECT_LE(plan->depart_seconds, opts.latest_departure);
  EXPECT_FALSE(plan->route.edges.empty());
}

TEST_F(DepartureFixture, EarlierWindowMovesDepartureEarlier) {
  DeparturePlanner::Options opts;
  opts.earliest_departure = 5 * 3600.0;
  opts.latest_departure = 20 * 3600.0;
  opts.departure_step = 900.0;
  DeparturePlanner planner(&net_, CostModel(), opts);
  auto early = planner.BestPlan(0, 24, 7.0 * 3600.0, 8.0 * 3600.0);
  auto late = planner.BestPlan(0, 24, 17.0 * 3600.0, 18.0 * 3600.0);
  ASSERT_TRUE(early.ok());
  ASSERT_TRUE(late.ok());
  EXPECT_LT(early->depart_seconds, late->depart_seconds);
}

TEST_F(DepartureFixture, RejectsEmptyWindow) {
  DeparturePlanner planner(&net_, CostModel(), {});
  EXPECT_FALSE(planner.BestPlan(0, 24, 3600.0, 3600.0).ok());
}

TEST(EmissionModelTest, UShapedInSpeed) {
  EmissionModel model;
  double crawl = model.EmissionsFor(1000.0, 2.0);
  double optimal = model.EmissionsFor(1000.0, model.optimal_speed);
  double fast = model.EmissionsFor(1000.0, 33.0);
  EXPECT_GT(crawl, optimal);
  EXPECT_GT(fast, optimal);
  EXPECT_NEAR(optimal, model.base_grams_per_meter * 1000.0, 1e-9);
}

TEST(EmissionModelTest, EcoRoutingAddsSkylineDimension) {
  Rng rng(53);
  GridNetworkSpec gspec;
  gspec.rows = 5;
  gspec.cols = 5;
  gspec.diagonal_probability = 0.25;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  EmissionModel model;
  std::vector<EdgeCostFn> criteria = {FreeFlowTimeCost(net),
                                      EmissionCost(net, model)};
  Result<std::vector<SkylinePath>> skyline =
      SkylineRoutes(net, 0, 24, criteria, 24);
  ASSERT_TRUE(skyline.ok());
  ASSERT_GE(skyline->size(), 1u);
  // All mutually non-dominated.
  for (size_t i = 0; i < skyline->size(); ++i) {
    for (size_t j = 0; j < skyline->size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(Dominates((*skyline)[i].costs, (*skyline)[j].costs));
      }
    }
  }
}

std::vector<LabeledSeries> DomainData(int per_class, int seed,
                                      double noise) {
  Rng rng(seed);
  std::vector<LabeledSeries> out;
  for (int i = 0; i < per_class; ++i) {
    SeriesSpec flat;
    flat.level = 5.0;
    flat.noise_stddev = noise;
    out.push_back({GenerateSeries(flat, 64, &rng), 0});
    SeriesSpec seasonal = flat;
    seasonal.seasonal = {{8, 3.0, 0.0}};
    out.push_back({GenerateSeries(seasonal, 64, &rng), 1});
  }
  return out;
}

TEST(TransferTest, FewShotBeatsScratchAtLowLabels) {
  TransferEvaluator evaluator;
  // Source domain: clean signals. Target domain: noisier variant.
  ASSERT_TRUE(evaluator.FitSource(DomainData(40, 1, 0.5)).ok());
  auto target_few = DomainData(3, 2, 1.2);   // 6 labeled examples
  auto target_test = DomainData(25, 3, 1.2);

  Result<double> zero = evaluator.ZeroShotAccuracy(target_test);
  Result<double> few = evaluator.FewShotAccuracy(target_few, target_test);
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(few.ok());
  // Zero-shot transfers something; few-shot adapts further.
  EXPECT_GT(*zero, 0.6);
  EXPECT_GE(*few, *zero - 0.1);
}

TEST(TransferTest, RequiresFitSource) {
  TransferEvaluator evaluator;
  EXPECT_FALSE(evaluator.ZeroShotAccuracy(DomainData(2, 4, 1.0)).ok());
}

TEST(LeaderboardTest, RunsFullCrossProduct) {
  ForecastLeaderboard leaderboard;
  RegisterDefaultModels(&leaderboard);
  EXPECT_EQ(leaderboard.NumModels(), 8u);
  // Two quick datasets to keep the test fast.
  std::vector<BenchmarkDataset> datasets = StandardDatasets(9);
  datasets.resize(2);
  Result<std::vector<LeaderboardEntry>> entries =
      leaderboard.Run(datasets, {6}, 2);
  ASSERT_TRUE(entries.ok());
  EXPECT_GE(entries->size(), 10u);
  auto ranks = ForecastLeaderboard::AverageRanks(*entries);
  ASSERT_FALSE(ranks.empty());
  // Ranks ascending and within [1, num models].
  for (size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_GE(ranks[i].second, ranks[i - 1].second);
  }
  EXPECT_GE(ranks.front().second, 1.0);
  EXPECT_LE(ranks.back().second, 8.0);
}

TEST(LeaderboardTest, Validation) {
  ForecastLeaderboard empty;
  EXPECT_FALSE(empty.Run(StandardDatasets(), {6}, 2).ok());
  ForecastLeaderboard leaderboard;
  RegisterDefaultModels(&leaderboard);
  EXPECT_FALSE(leaderboard.Run({}, {6}, 2).ok());
}

TEST(StandardDatasetsTest, FiveDiverseSeries) {
  auto datasets = StandardDatasets();
  EXPECT_EQ(datasets.size(), 5u);
  for (const auto& d : datasets) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.series.size(), 100u);
    EXPECT_GE(d.season, 2);
  }
}

}  // namespace
}  // namespace tsdm
