#include "src/analytics/forecast/association_enhanced.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/forecast/forecaster.h"
#include "src/analytics/forecast/metrics.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

/// Field where a congestion wave sweeps across the grid (neighbors lead
/// each other by one step) — the structure the association discovery must
/// find and exploit.
CorrelatedTimeSeries PropagatingField(int n, int seed) {
  Rng rng(seed);
  CorrelatedFieldSpec spec;
  spec.grid_rows = 3;
  spec.grid_cols = 3;
  spec.spatial_strength = 0.9;
  spec.propagation_delay = 2;
  spec.base = TrafficLikeSpec(48);
  return GenerateCorrelatedField(spec, n, &rng);
}

TEST(AssociationEnhancedTest, Validation) {
  AssociationEnhancedForecaster model;
  CorrelatedTimeSeries tiny = PropagatingField(10, 1);
  EXPECT_FALSE(model.Fit(tiny).ok());
  EXPECT_FALSE(model.Forecast(3).ok());
}

TEST(AssociationEnhancedTest, DiscoversLeadersWithPositiveLags) {
  CorrelatedTimeSeries cts = PropagatingField(500, 2);
  AssociationEnhancedForecaster model;
  ASSERT_TRUE(model.Fit(cts).ok());
  // Downstream sensors (far from the wave source at cell 0,0) must have
  // discovered at least one leader, and all leader lags are >= 1.
  int with_leaders = 0;
  for (const auto& sensor_leaders : model.leaders()) {
    if (!sensor_leaders.empty()) ++with_leaders;
    for (const auto& leader : sensor_leaders) {
      EXPECT_GE(leader.lag, 1);
      EXPECT_GE(leader.weight, 0.3);
    }
  }
  EXPECT_GE(with_leaders, 4);
}

TEST(AssociationEnhancedTest, BeatsPlainArOnPropagatingField) {
  CorrelatedTimeSeries cts = PropagatingField(600, 3);
  size_t n = cts.NumSteps();
  const int kHorizon = 8;
  CorrelatedTimeSeries train(cts.graph(), cts.series().Slice(0, n - kHorizon));

  AssociationEnhancedForecaster enhanced;
  ASSERT_TRUE(enhanced.Fit(train).ok());
  auto fc = enhanced.Forecast(kHorizon);
  ASSERT_TRUE(fc.ok());

  double err_enhanced = 0.0, err_plain = 0.0;
  for (size_t s = 0; s < cts.NumSensors(); ++s) {
    std::vector<double> actual;
    for (size_t t = n - kHorizon; t < n; ++t) actual.push_back(cts.At(t, s));
    err_enhanced += MeanAbsoluteError(actual, (*fc)[s]);
    ArForecaster ar(6);
    ASSERT_TRUE(ar.Fit(train.SensorSeries(s)).ok());
    auto fc_ar = ar.Forecast(kHorizon);
    ASSERT_TRUE(fc_ar.ok());
    err_plain += MeanAbsoluteError(actual, *fc_ar);
  }
  EXPECT_LT(err_enhanced, err_plain);
}

TEST(AssociationEnhancedTest, ForecastShapeMatchesSensors) {
  CorrelatedTimeSeries cts = PropagatingField(400, 4);
  AssociationEnhancedForecaster model;
  ASSERT_TRUE(model.Fit(cts).ok());
  auto fc = model.Forecast(5);
  ASSERT_TRUE(fc.ok());
  ASSERT_EQ(fc->size(), cts.NumSensors());
  for (const auto& series : *fc) {
    EXPECT_EQ(series.size(), 5u);
    for (double v : series) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace tsdm
