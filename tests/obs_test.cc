#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/trace.h"

namespace tsdm {
namespace {

/// Every obs test runs against the one process-global recorder, so each
/// fixture leaves it disabled and empty for the next.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetCapacity(1 << 16);
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

// --- Minimal Chrome-trace JSON parser ------------------------------------
// Just enough JSON to round-trip what ToChromeTraceJson emits: one object
// with a "traceEvents" array of flat event objects (string/number values
// plus the optional one-key "args" object). Any syntax surprise fails the
// test via ADD_FAILURE.

struct ParsedEvent {
  std::string name;
  double ts = -1.0;
  double dur = -1.0;
  int64_t tid = -1;
  int64_t arg = TraceEvent::kNoArg;
  bool has_arg = false;
  // Request-tree linkage from the args object (0 = absent/null).
  uint64_t req = 0;
  uint64_t span = 0;
  uint64_t parent = 0;
};

class MiniParser {
 public:
  explicit MiniParser(const std::string& text) : s_(text) {}

  /// Parses the whole document; returns false on any syntax error.
  bool Parse(std::vector<ParsedEvent>* events) {
    if (!Consume('{')) return false;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      if (key == "traceEvents") {
        if (!ParseEvents(events)) return false;
      } else {
        std::string ignored;
        if (!ParseString(&ignored)) return false;  // displayTimeUnit
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return Consume('}') && PeekIsEnd();
  }

 private:
  bool ParseEvents(std::vector<ParsedEvent>* events) {
    if (!Consume('[')) return false;
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      ParsedEvent ev;
      if (!ParseEvent(&ev)) return false;
      events->push_back(ev);
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return Consume(']');
  }

  bool ParseEvent(ParsedEvent* ev) {
    if (!Consume('{')) return false;
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      if (key == "name" || key == "cat" || key == "ph") {
        std::string value;
        if (!ParseString(&value)) return false;
        if (key == "name") ev->name = value;
        if (key == "ph" && value != "X") return false;
      } else if (key == "args") {
        // args holds the optional integer tag plus the request-tree
        // linkage: any subset of {arg, req, span, parent}.
        if (!Consume('{')) return false;
        while (true) {
          std::string arg_key;
          double arg_value = 0.0;
          if (!ParseString(&arg_key) || !Consume(':') ||
              !ParseNumber(&arg_value)) {
            return false;
          }
          if (arg_key == "arg") {
            ev->arg = static_cast<int64_t>(arg_value);
            ev->has_arg = true;
          } else if (arg_key == "req") {
            ev->req = static_cast<uint64_t>(arg_value);
          } else if (arg_key == "span") {
            ev->span = static_cast<uint64_t>(arg_value);
          } else if (arg_key == "parent") {
            ev->parent = static_cast<uint64_t>(arg_value);
          } else {
            return false;
          }
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        if (!Consume('}')) return false;
      } else {
        double value = 0.0;
        if (!ParseNumber(&value)) return false;
        if (key == "ts") ev->ts = value;
        if (key == "dur") ev->dur = value;
        if (key == "tid") ev->tid = static_cast<int64_t>(value);
      }
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return Consume('}');
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      out->push_back(s_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseNumber(double* out) {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == '-' || s_[pos_] == '+' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool PeekIsEnd() const { return pos_ == s_.size(); }
  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// --- Span creation helpers -----------------------------------------------

/// Creates exactly `total` spans on the calling thread with a deterministic
/// mix of top-level spans and nested children (and grandchildren).
void SpawnSpans(int thread_idx, int total) {
  int made = 0;
  int step = 0;
  while (made < total) {
    TraceSpan outer("outer", thread_idx);
    ++made;
    int children = (step * 7 + thread_idx) % 4;
    for (int c = 0; c < children && made < total; ++c) {
      TraceSpan child("child", c);
      ++made;
      if (c == 0 && made < total) {
        TraceSpan grandchild("grandchild");
        ++made;
      }
    }
    ++step;
  }
}

/// True iff the two spans are properly nested or fully disjoint.
bool NestedOrDisjoint(const TraceEvent& a, const TraceEvent& b) {
  uint64_t a_end = a.start_ns + a.dur_ns;
  uint64_t b_end = b.start_ns + b.dur_ns;
  bool a_holds_b = a.start_ns <= b.start_ns && b_end <= a_end;
  bool b_holds_a = b.start_ns <= a.start_ns && a_end <= b_end;
  bool disjoint = a_end <= b.start_ns || b_end <= a.start_ns;
  return a_holds_b || b_holds_a || disjoint;
}

// --- Tests ---------------------------------------------------------------

TEST_F(TraceTest, DisabledRecorderCostsNoEvents) {
  TraceRecorder::Global().Disable();
  {
    TraceSpan span("ignored");
    TraceSpan nested("also-ignored", 7);
  }
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
}

TEST_F(TraceTest, SingleThreadSpansNestAndCount) {
  SpawnSpans(/*thread_idx=*/0, /*total=*/100);
  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 100u);
  EXPECT_EQ(TraceRecorder::Global().dropped(), 0u);
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = i + 1; j < events.size(); ++j) {
      ASSERT_TRUE(NestedOrDisjoint(events[i], events[j]))
          << "spans " << i << " and " << j << " interleave";
    }
  }
}

TEST_F(TraceTest, ThreadedSpansAreExactAndWellNestedPerThread) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] { SpawnSpans(t, kSpansPerThread); });
  }
  for (auto& t : threads) t.join();

  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(TraceRecorder::Global().dropped(), 0u);

  std::map<uint32_t, std::vector<TraceEvent>> by_tid;
  for (const auto& ev : events) by_tid[ev.tid].push_back(ev);
  ASSERT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
  for (const auto& [tid, spans] : by_tid) {
    EXPECT_EQ(spans.size(), static_cast<size_t>(kSpansPerThread))
        << "tid " << tid;
    for (size_t i = 0; i < spans.size(); ++i) {
      for (size_t j = i + 1; j < spans.size(); ++j) {
        ASSERT_TRUE(NestedOrDisjoint(spans[i], spans[j]))
            << "tid " << tid << " spans " << i << "," << j << " interleave";
      }
    }
  }
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] { SpawnSpans(t, kSpansPerThread); });
  }
  for (auto& t : threads) t.join();

  std::vector<TraceEvent> recorded = TraceRecorder::Global().Snapshot();
  std::string json = TraceRecorder::Global().ToChromeTraceJson();
  std::vector<ParsedEvent> parsed;
  ASSERT_TRUE(MiniParser(json).Parse(&parsed)) << json.substr(0, 200);
  ASSERT_EQ(parsed.size(), recorded.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, recorded[i].name);
    EXPECT_EQ(parsed[i].tid, static_cast<int64_t>(recorded[i].tid));
    // ts/dur are microseconds printed with ns precision (%.3f), so the
    // exact ns values survive the round trip.
    EXPECT_EQ(std::llround(parsed[i].ts * 1000.0),
              static_cast<long long>(recorded[i].start_ns));
    EXPECT_EQ(std::llround(parsed[i].dur * 1000.0),
              static_cast<long long>(recorded[i].dur_ns));
    EXPECT_EQ(parsed[i].has_arg, recorded[i].arg != TraceEvent::kNoArg);
    if (parsed[i].has_arg) {
      EXPECT_EQ(parsed[i].arg, recorded[i].arg);
    }
    // The request-tree linkage survives the export.
    EXPECT_EQ(parsed[i].span, recorded[i].span_id);
    EXPECT_EQ(parsed[i].req, recorded[i].request_id);
    EXPECT_EQ(parsed[i].parent, recorded[i].parent_span_id);
  }
}

TEST_F(TraceTest, JsonEscapesSpanNames) {
  {
    TraceSpan span("weird \"name\" with \\backslash");
  }
  std::string json = TraceRecorder::Global().ToChromeTraceJson();
  std::vector<ParsedEvent> parsed;
  ASSERT_TRUE(MiniParser(json).Parse(&parsed));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].name, "weird \"name\" with \\backslash");
}

TEST_F(TraceTest, RingOverflowDropsAndCounts) {
  TraceRecorder::Global().SetCapacity(64);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("overflow");
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(events.size(), 64u);
  EXPECT_EQ(TraceRecorder::Global().dropped(), 1000u - 64u);
  TraceRecorder::Global().SetCapacity(1 << 16);
}

TEST_F(TraceTest, ClearDiscardsRecordedSpans) {
  {
    TraceSpan span("before-clear");
  }
  TraceRecorder::Global().Clear();
  {
    TraceSpan span("after-clear");
  }
  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after-clear");
}

TEST_F(TraceTest, SpanStartedWhileEnabledRecordsAfterDisable) {
  {
    TraceSpan span("straddles-disable");
    TraceRecorder::Global().Disable();
  }
  EXPECT_EQ(TraceRecorder::Global().Snapshot().size(), 1u);
}

}  // namespace
}  // namespace tsdm
