#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/classify/classifier.h"
#include "src/analytics/classify/distill.h"
#include "src/common/rng.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

/// Three-class synthetic task: flat-noisy, seasonal, trending.
std::vector<LabeledSeries> MakeDataset(int per_class, int seed, int len = 64) {
  Rng rng(seed);
  std::vector<LabeledSeries> out;
  for (int i = 0; i < per_class; ++i) {
    {
      SeriesSpec s;
      s.level = 5.0;
      s.noise_stddev = 1.0;
      out.push_back({GenerateSeries(s, len, &rng), 0});
    }
    {
      SeriesSpec s;
      s.level = 5.0;
      s.seasonal = {{8, 4.0, 0.0}};
      s.noise_stddev = 0.5;
      out.push_back({GenerateSeries(s, len, &rng), 1});
    }
    {
      SeriesSpec s;
      s.level = 0.0;
      s.trend_per_step = 0.3;
      s.noise_stddev = 1.0;
      out.push_back({GenerateSeries(s, len, &rng), 2});
    }
  }
  return out;
}

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  std::vector<double> a = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(DtwDistance(a, a), 0.0);
}

TEST(DtwTest, HandlesTimeWarping) {
  // Same shape, different speeds: DTW distance much smaller than Euclidean
  // mismatch would suggest.
  std::vector<double> fast = {0, 1, 2, 3, 4, 5};
  std::vector<double> slow = {0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  EXPECT_LT(DtwDistance(fast, slow, -1), 1.0);
}

TEST(DtwTest, BandConstrainsWarping) {
  std::vector<double> a = {0, 0, 0, 0, 5, 0, 0, 0};
  std::vector<double> b = {5, 0, 0, 0, 0, 0, 0, 0};
  // Unconstrained warping can align the spikes; a tight band cannot.
  EXPECT_LT(DtwDistance(a, b, -1), DtwDistance(a, b, 1) + 1e-9);
}

TEST(FeatureTest, StableDimensionAndSensitivity) {
  std::vector<double> flat(50, 3.0);
  std::vector<double> trending;
  for (int i = 0; i < 50; ++i) trending.push_back(0.5 * i);
  auto f1 = ExtractStatFeatures(flat);
  auto f2 = ExtractStatFeatures(trending);
  EXPECT_EQ(f1.size(), StatFeatureCount());
  EXPECT_EQ(f2.size(), StatFeatureCount());
  EXPECT_NE(f1, f2);
  EXPECT_EQ(ExtractStatFeatures({}).size(), StatFeatureCount());
}

TEST(OneNnDtwTest, SeparatesClasses) {
  auto train = MakeDataset(8, 1);
  auto test = MakeDataset(4, 2);
  OneNnDtwClassifier model(8);
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.7);
  EXPECT_EQ(model.NumClasses(), 3u);
}

TEST(LogisticTest, LearnsSeparableClasses) {
  auto train = MakeDataset(20, 3);
  auto test = MakeDataset(8, 4);
  LogisticClassifier model;
  ASSERT_TRUE(model.Fit(train).ok());
  EXPECT_GT(Accuracy(model, test), 0.85);
  // Probabilities sum to one.
  Result<std::vector<double>> p = model.PredictProba(test[0].values);
  ASSERT_TRUE(p.ok());
  double sum = 0.0;
  for (double v : *p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(LogisticTest, EmptyTrainFails) {
  LogisticClassifier model;
  EXPECT_FALSE(model.Fit({}).ok());
  EXPECT_FALSE(model.Predict({1.0, 2.0}).ok());
}

TEST(EnsembleTest, AtLeastAsGoodAsSingleModel) {
  auto train = MakeDataset(20, 5);
  auto test = MakeDataset(10, 6);
  LogisticClassifier single;
  BaggedEnsembleClassifier ensemble;
  ASSERT_TRUE(single.Fit(train).ok());
  ASSERT_TRUE(ensemble.Fit(train).ok());
  EXPECT_GE(Accuracy(ensemble, test), Accuracy(single, test) - 0.1);
  EXPECT_GT(ensemble.NumParameters(), single.NumParameters());
}

TEST(DistillTest, StudentSmallerWithModestAccuracyLoss) {
  auto train = MakeDataset(25, 7);
  auto test = MakeDataset(10, 8);
  DistilledClassifier::Options opts;
  opts.teacher_members = 8;
  opts.quant_bits = 8;
  DistilledClassifier model(opts);
  ASSERT_TRUE(model.Fit(train).ok());
  double teacher_acc = Accuracy(model.teacher(), test);
  double student_acc = Accuracy(model, test);
  EXPECT_LT(model.StudentSizeBits(), model.TeacherSizeBits() / 10);
  EXPECT_GT(student_acc, teacher_acc - 0.15);
}

TEST(DistillTest, OneBitStudentDegrades) {
  auto train = MakeDataset(25, 9);
  auto test = MakeDataset(10, 10);
  DistilledClassifier::Options opts8;
  opts8.quant_bits = 8;
  DistilledClassifier::Options opts1;
  opts1.quant_bits = 1;
  DistilledClassifier m8(opts8), m1(opts1);
  ASSERT_TRUE(m8.Fit(train).ok());
  ASSERT_TRUE(m1.Fit(train).ok());
  EXPECT_GE(Accuracy(m8, test) + 1e-9, Accuracy(m1, test));
}

}  // namespace
}  // namespace tsdm
