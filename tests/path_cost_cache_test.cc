#include "src/serve/path_cost_cache.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {
namespace {

Histogram MakeHistogram(double center) {
  std::vector<double> samples = {center - 1.0, center, center + 1.0};
  auto h = Histogram::FromSamples(samples, 8);
  EXPECT_TRUE(h.ok());
  return *h;
}

// Two histograms produced by the same deterministic computation must agree
// bin for bin — no tolerance.
void ExpectBitwiseEqual(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.NumBins(), b.NumBins());
  EXPECT_EQ(a.lo(), b.lo());
  EXPECT_EQ(a.hi(), b.hi());
  EXPECT_EQ(a.TotalWeight(), b.TotalWeight());
  for (int i = 0; i < a.NumBins(); ++i) {
    EXPECT_EQ(a.BinMass(i), b.BinMass(i)) << "bin " << i;
  }
}

TEST(PathCostCacheTest, BucketDiscretization) {
  PathCostCache::Options opts;
  opts.bucket_seconds = 900;
  PathCostCache cache(opts);
  EXPECT_EQ(cache.BucketFor(0.0), 0);
  EXPECT_EQ(cache.BucketFor(899.9), 0);
  EXPECT_EQ(cache.BucketFor(900.0), 1);
  EXPECT_EQ(cache.BucketFor(8 * 3600.0), 32);
  // The representative time is the bucket midpoint — every query in the
  // bucket resolves to the same model evaluation.
  EXPECT_DOUBLE_EQ(cache.BucketTime(0), 450.0);
  EXPECT_DOUBLE_EQ(cache.BucketTime(cache.BucketFor(910.0)), 1350.0);
}

TEST(PathCostCacheTest, LruEvictionOrder) {
  PathCostCache::Options opts;
  opts.capacity = 3;
  opts.shards = 1;  // single shard so eviction order is global LRU order
  PathCostCache cache(opts);

  cache.Insert({1}, 0, MakeHistogram(10));
  cache.Insert({2}, 0, MakeHistogram(20));
  cache.Insert({3}, 0, MakeHistogram(30));

  // Touch {1} so {2} becomes the least recently used entry.
  Histogram out;
  EXPECT_TRUE(cache.Lookup({1}, 0, &out));

  cache.Insert({4}, 0, MakeHistogram(40));  // evicts exactly {2}

  EXPECT_FALSE(cache.Lookup({2}, 0, &out));
  EXPECT_TRUE(cache.Lookup({1}, 0, &out));
  EXPECT_TRUE(cache.Lookup({3}, 0, &out));
  EXPECT_TRUE(cache.Lookup({4}, 0, &out));

  PathCostCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.size, 3u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(PathCostCacheTest, SameEdgesDifferentBucketAreDistinct) {
  PathCostCache cache;
  cache.Insert({7, 8}, 0, MakeHistogram(5));
  Histogram out;
  EXPECT_FALSE(cache.Lookup({7, 8}, 1, &out));
  EXPECT_TRUE(cache.Lookup({7, 8}, 0, &out));
}

TEST(PathCostCacheTest, ShardDistribution) {
  PathCostCache::Options opts;
  opts.capacity = 4096;
  opts.shards = 8;
  PathCostCache cache(opts);

  for (int e = 0; e < 400; ++e) {
    cache.Insert({e}, 0, MakeHistogram(static_cast<double>(e)));
  }

  std::vector<size_t> sizes = cache.ShardSizes();
  ASSERT_EQ(sizes.size(), 8u);
  size_t total = std::accumulate(sizes.begin(), sizes.end(), size_t{0});
  EXPECT_EQ(total, 400u);
  // The FNV hash must actually spread keys: no shard may be empty or hold
  // the majority of 400 distinct keys.
  for (size_t s : sizes) {
    EXPECT_GT(s, 0u);
    EXPECT_LT(s, 200u);
  }
}

TEST(PathCostCacheTest, CountersAreExact) {
  PathCostCache::Options opts;
  opts.capacity = 2;
  opts.shards = 1;
  PathCostCache cache(opts);
  Histogram out;

  EXPECT_FALSE(cache.Lookup({1}, 0, &out));  // miss 1
  cache.Insert({1}, 0, MakeHistogram(1));
  EXPECT_TRUE(cache.Lookup({1}, 0, &out));   // hit 1
  EXPECT_TRUE(cache.Lookup({1}, 0, &out));   // hit 2
  cache.Insert({1}, 0, MakeHistogram(1));    // refresh: no eviction
  cache.Insert({2}, 0, MakeHistogram(2));
  cache.Insert({3}, 0, MakeHistogram(3));    // evicts {1}
  EXPECT_FALSE(cache.Lookup({1}, 0, &out));  // miss 2

  PathCostCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);

  cache.Clear();
  stats = cache.GetStats();
  EXPECT_EQ(stats.size, 0u);
}

// The PACE-style guarantee the serving layer leans on: caching changes the
// cost of a query, never its answer. A warm (cached) distribution must be
// bitwise-identical to a cold one computed by a fresh model.
TEST(PathCostCacheTest, CachedVersusFreshIsBitwiseIdentical) {
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  Rng rng(42);
  RoadNetwork net = GenerateGridNetwork(spec, &rng);

  // A concrete route to cost: the free-flow shortest path corner to corner.
  int source = GridNodeId(spec, 0, 0);
  int target = GridNodeId(spec, 4, 4);
  auto path = ShortestPath(net, source, target, FreeFlowTimeCost(net));
  ASSERT_TRUE(path.ok());
  ASSERT_GT(path->edges.size(), 4u);

  // Train an edge-centric model on simulated traversals of that path.
  TrafficSimulator sim(&net, TrafficSpec{});
  EdgeCentricModel model(static_cast<int>(net.NumEdges()));
  Rng trip_rng(7);
  for (int t = 0; t < 60; ++t) {
    TripObservation trip;
    trip.edge_path = path->edges;
    trip.depart_seconds = 8 * 3600.0;
    trip.edge_times =
        sim.SamplePathEdgeTimes(trip.edge_path, trip.depart_seconds, &trip_rng);
    model.AddTrip(trip);
  }
  ASSERT_TRUE(model.Build().ok());

  PathCostModel base = [&model](const std::vector<int>& edges, double depart) {
    return model.PathCostDistribution(edges, depart, 32);
  };

  PathCostCache cache_a;
  CachedPathCostModel warm_model(base, &cache_a);
  // Two different departures in the same 900s bucket must yield the same
  // answer (the model is evaluated at the bucket midpoint either way).
  Result<Histogram> cold = warm_model.Query(path->edges, 8 * 3600.0);
  ASSERT_TRUE(cold.ok());
  Result<Histogram> warm = warm_model.Query(path->edges, 8 * 3600.0 + 300.0);
  ASSERT_TRUE(warm.ok());
  ExpectBitwiseEqual(*cold, *warm);

  PathCostCache::Stats stats = cache_a.GetStats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  // A fresh cache + model pair computing everything cold must agree bin
  // for bin with the warm answer.
  PathCostCache cache_b;
  CachedPathCostModel fresh_model(base, &cache_b);
  Result<Histogram> fresh = fresh_model.Query(path->edges, 8 * 3600.0);
  ASSERT_TRUE(fresh.ok());
  ExpectBitwiseEqual(*fresh, *warm);
  EXPECT_EQ(cache_b.GetStats().hits, 0u);
}

TEST(PathCostCacheTest, CachedModelRejectsEmptyPath) {
  PathCostCache cache;
  CachedPathCostModel model(
      [](const std::vector<int>&, double) -> Result<Histogram> {
        return Histogram::PointMass(1.0);
      },
      &cache);
  EXPECT_FALSE(model.Query({}, 0.0).ok());
}

}  // namespace
}  // namespace tsdm
