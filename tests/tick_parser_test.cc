// Adversarial corpus for the incremental tick parser: arbitrary chunking,
// malformed lengths, corrupted CRCs, hostile sequencing, and a seeded
// random byte-flip sweep. The parser must never crash, must keep exact
// accepted/rejected accounting, and must report each rejection as a typed
// Status.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/ingest/crc32.h"
#include "src/ingest/tick_codec.h"
#include "src/ingest/tick_parser.h"

namespace tsdm {
namespace {

TickMsg Msg(uint32_t seq, uint32_t sensor, int64_t ts, double value) {
  TickMsg msg;
  msg.seq = seq;
  msg.sensor = sensor;
  msg.timestamp = ts;
  msg.value = value;
  return msg;
}

/// `n` well-formed frames, consecutive seqs, increasing timestamps.
std::vector<uint8_t> CleanFeed(size_t n, size_t num_sensors = 4,
                               uint32_t first_seq = 1) {
  std::vector<uint8_t> bytes;
  for (size_t i = 0; i < n; ++i) {
    EncodeTickFrame(Msg(first_seq + static_cast<uint32_t>(i),
                        static_cast<uint32_t>(i % num_sensors),
                        1000 + static_cast<int64_t>(i), 1.5 * i),
                    &bytes);
  }
  return bytes;
}

/// A frame with an arbitrary (possibly unsupported) payload length and a
/// *valid* CRC, to drive the bad-length path without tripping the CRC check.
std::vector<uint8_t> FrameWithLength(uint8_t len) {
  std::vector<uint8_t> f;
  f.push_back(kTickFrameMagic);
  f.push_back(len);
  for (uint8_t i = 0; i < len; ++i) f.push_back(i);
  uint32_t crc = Crc32(f.data(), f.size());
  f.push_back(static_cast<uint8_t>(crc));
  f.push_back(static_cast<uint8_t>(crc >> 8));
  f.push_back(static_cast<uint8_t>(crc >> 16));
  f.push_back(static_cast<uint8_t>(crc >> 24));
  return f;
}

TEST(TickParserTest, CleanFeedFullyAcceptedInOneShot) {
  std::vector<uint8_t> feed = CleanFeed(50);
  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 50u);
  ASSERT_EQ(out.size(), 50u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i + 1);
    EXPECT_EQ(out[i].timestamp, 1000 + static_cast<int64_t>(i));
    EXPECT_DOUBLE_EQ(out[i].value, 1.5 * i);
  }
  EXPECT_EQ(parser.stats().frames_accepted, 50u);
  EXPECT_EQ(parser.stats().RejectedTotal(), 0u);
  EXPECT_EQ(parser.stats().resync_bytes, 0u);
  EXPECT_EQ(parser.stats().bytes_consumed, feed.size());
  EXPECT_EQ(parser.PendingBytes(), 0u);
  EXPECT_TRUE(parser.last_error().ok());
}

TEST(TickParserTest, EveryChunkSizeYieldsTheSameTicks) {
  std::vector<uint8_t> feed = CleanFeed(20);
  // Deliver in chunks of every size from 1 byte up to a full frame plus
  // change: split points land on every possible intra-frame boundary.
  for (size_t chunk = 1; chunk <= kTickFrameSize + 3; ++chunk) {
    TickParser parser(4);
    std::vector<TickMsg> out;
    for (size_t pos = 0; pos < feed.size(); pos += chunk) {
      size_t n = std::min(chunk, feed.size() - pos);
      parser.Consume(feed.data() + pos, n, &out);
    }
    EXPECT_EQ(out.size(), 20u) << "chunk=" << chunk;
    EXPECT_EQ(parser.stats().frames_accepted, 20u) << "chunk=" << chunk;
    EXPECT_EQ(parser.stats().RejectedTotal(), 0u) << "chunk=" << chunk;
    EXPECT_EQ(parser.PendingBytes(), 0u) << "chunk=" << chunk;
  }
}

TEST(TickParserTest, ZeroLengthPayloadRejectedAndStreamResumes) {
  std::vector<uint8_t> feed = FrameWithLength(0);
  std::vector<uint8_t> tail = CleanFeed(2);
  feed.insert(feed.end(), tail.begin(), tail.end());

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 2u);
  EXPECT_EQ(parser.stats().rejected_bad_length, 1u);
  EXPECT_EQ(parser.stats().frames_accepted, 2u);
}

TEST(TickParserTest, UnsupportedLengthRejectedWithTypedError) {
  // CRC-valid frames of wrong lengths: a future format version. Rejected,
  // not misparsed, and the intact frame after each one is accepted.
  for (uint8_t len : {uint8_t{1}, uint8_t{10}, uint8_t{25}, uint8_t{255}}) {
    std::vector<uint8_t> feed = FrameWithLength(len);
    std::vector<uint8_t> tail = CleanFeed(1);
    feed.insert(feed.end(), tail.begin(), tail.end());

    TickParser parser(4);
    std::vector<TickMsg> out;
    parser.Consume(feed.data(), feed.size(), &out);
    EXPECT_EQ(parser.stats().rejected_bad_length, 1u) << int{len};
    EXPECT_EQ(parser.stats().frames_accepted, 1u) << int{len};
    EXPECT_EQ(parser.last_error().code(), StatusCode::kInvalidArgument)
        << int{len};
  }
}

TEST(TickParserTest, CrcCorruptionLosesOnlyTheCorruptFrame) {
  std::vector<uint8_t> feed = CleanFeed(3);
  feed[kTickFrameSize + 10] ^= 0x40;  // middle frame's payload

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(parser.stats().rejected_bad_crc, 1u);
  EXPECT_EQ(parser.last_error().code(), StatusCode::kDataLoss);
  // The lost frame was counted as a sequence gap, not silently absorbed.
  EXPECT_EQ(parser.stats().gaps_detected, 1u);
}

TEST(TickParserTest, DuplicateAndRegressedSequencesRejected) {
  std::vector<uint8_t> feed;
  EncodeTickFrame(Msg(5, 0, 1000, 1.0), &feed);
  EncodeTickFrame(Msg(5, 1, 1001, 2.0), &feed);  // duplicate
  EncodeTickFrame(Msg(3, 2, 1002, 3.0), &feed);  // regression
  EncodeTickFrame(Msg(6, 0, 1003, 4.0), &feed);  // next in sequence

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 2u);
  EXPECT_EQ(parser.stats().rejected_duplicate_seq, 2u);
  EXPECT_EQ(parser.last_error().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(parser.last_seq(), 6u);
}

TEST(TickParserTest, PerSensorTimestampRegressionRejected) {
  std::vector<uint8_t> feed;
  EncodeTickFrame(Msg(1, 0, 2000, 1.0), &feed);
  EncodeTickFrame(Msg(2, 1, 500, 2.0), &feed);   // other sensor: fine
  EncodeTickFrame(Msg(3, 0, 1999, 3.0), &feed);  // sensor 0 went backwards
  EncodeTickFrame(Msg(4, 0, 2000, 4.0), &feed);  // equal is allowed

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 3u);
  EXPECT_EQ(parser.stats().rejected_out_of_order, 1u);
  EXPECT_EQ(parser.last_error().code(), StatusCode::kFailedPrecondition);
}

TEST(TickParserTest, SensorIdOutOfRangeRejected) {
  std::vector<uint8_t> feed;
  EncodeTickFrame(Msg(1, 0, 1000, 1.0), &feed);
  EncodeTickFrame(Msg(2, 7, 1001, 2.0), &feed);  // fleet is 4 sensors

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 1u);
  EXPECT_EQ(parser.stats().rejected_bad_sensor, 1u);
  EXPECT_EQ(parser.last_error().code(), StatusCode::kOutOfRange);

  // With num_sensors = 0 the check is off (the WAL-replay configuration
  // validates sensors itself).
  TickParser open_parser(0);
  out.clear();
  EXPECT_EQ(open_parser.Consume(feed.data(), feed.size(), &out), 2u);
}

TEST(TickParserTest, ForwardSequenceGapsAcceptedButCounted) {
  std::vector<uint8_t> feed;
  EncodeTickFrame(Msg(1, 0, 1000, 1.0), &feed);
  EncodeTickFrame(Msg(2, 1, 1001, 2.0), &feed);
  EncodeTickFrame(Msg(5, 2, 1002, 3.0), &feed);   // 3, 4 lost upstream
  EncodeTickFrame(Msg(9, 3, 1003, 4.0), &feed);   // 6..8 lost upstream

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 4u);
  EXPECT_EQ(parser.stats().gaps_detected, 5u);
}

TEST(TickParserTest, PrimedSequenceRejectsReplayedPrefix) {
  std::vector<uint8_t> feed = CleanFeed(10);
  TickParser parser(4);
  parser.PrimeSequence(6);  // e.g. WAL replay recovered seqs 1..6
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 4u);
  EXPECT_EQ(out.front().seq, 7u);
  EXPECT_EQ(parser.stats().rejected_duplicate_seq, 6u);
}

TEST(TickParserTest, InterFrameGarbageIsResynced) {
  std::vector<uint8_t> feed;
  std::vector<uint8_t> frame1 = CleanFeed(1, 4, 1);
  std::vector<uint8_t> frame2 = CleanFeed(1, 4, 2);
  const uint8_t garbage[] = {0x00, 0xFF, 0x13, 0x37, 0xB8};
  feed.insert(feed.end(), garbage, garbage + sizeof(garbage));
  feed.insert(feed.end(), frame1.begin(), frame1.end());
  feed.insert(feed.end(), garbage, garbage + sizeof(garbage));
  feed.insert(feed.end(), frame2.begin(), frame2.end());

  TickParser parser(4);
  std::vector<TickMsg> out;
  EXPECT_EQ(parser.Consume(feed.data(), feed.size(), &out), 2u);
  EXPECT_EQ(parser.stats().resync_bytes, 2 * sizeof(garbage));
}

TEST(TickParserTest, HostileLengthPrefixCannotBloatPendingBuffer) {
  // A magic byte followed by length 255 claims a 261-byte frame that never
  // completes; the pending buffer must stay bounded by one claimed extent.
  TickParser parser(4);
  std::vector<TickMsg> out;
  const uint8_t bait[] = {kTickFrameMagic, 0xFF};
  parser.Consume(bait, sizeof(bait), &out);
  for (int i = 0; i < 100; ++i) {
    uint8_t junk[2] = {0x00, 0x00};
    parser.Consume(junk, sizeof(junk), &out);
    EXPECT_LE(parser.PendingBytes(), 2u + 255u + 4u);
  }
  EXPECT_TRUE(out.empty());
}

TEST(TickParserTest, SeededByteFlipSweepLosesExactlyOneFrame) {
  const size_t kFrames = 24;
  std::vector<uint8_t> clean = CleanFeed(kFrames);

  Rng rng(1234);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> feed = clean;
    size_t pos = static_cast<size_t>(
        rng.Int(0, static_cast<int>(feed.size()) - 1));
    uint8_t flip = static_cast<uint8_t>(rng.Int(1, 255));
    feed[pos] ^= flip;

    TickParser parser(4);
    std::vector<TickMsg> out;
    parser.Consume(feed.data(), feed.size(), &out);
    // A flipped length byte can leave the parser waiting for a claimed
    // extent that will never arrive, with intact frames queued behind it.
    // Flush with enough non-magic bytes to complete any claimed extent
    // (max 261): its CRC then fails and the queued frames parse.
    const std::vector<uint8_t> flush(2 + 255 + 4, 0x00);
    parser.Consume(flush.data(), flush.size(), &out);

    // CRC-32 detects every single-byte corruption, and resynchronization
    // skips at most one byte at a time, so exactly the frame containing
    // the flip is lost — its intact neighbors all survive.
    EXPECT_EQ(out.size(), kFrames - 1)
        << "trial=" << trial << " pos=" << pos << " flip=" << int{flip};
    EXPECT_EQ(parser.stats().frames_accepted, kFrames - 1);
    // The damage surfaced either as a typed rejection (CRC mismatch on the
    // real frame boundary) or — when the magic byte itself was hit — as
    // resynchronization debris. Never silently.
    EXPECT_TRUE(parser.stats().rejected_bad_crc > 0 ||
                parser.stats().resync_bytes > 0)
        << "trial=" << trial;
    const size_t damaged = pos / kTickFrameSize;
    for (size_t i = 0, j = 0; i < kFrames; ++i) {
      if (i == damaged) continue;
      EXPECT_EQ(out[j].seq, i + 1) << "trial=" << trial;
      ++j;
    }
    // Byte conservation: every consumed byte is accounted for exactly once.
    const TickParserStats& s = parser.stats();
    EXPECT_EQ(s.bytes_consumed,
              s.frames_accepted * kTickFrameSize +
                  (s.rejected_bad_sensor + s.rejected_duplicate_seq +
                   s.rejected_out_of_order) *
                      kTickFrameSize +
                  s.resync_bytes + parser.PendingBytes())
        << "trial=" << trial;
  }
}

TEST(TickParserTest, PureGarbageNeverCrashesOrEmits) {
  Rng rng(99);
  TickParser parser(4);
  std::vector<TickMsg> out;
  for (int chunk = 0; chunk < 50; ++chunk) {
    std::vector<uint8_t> junk(200);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Int(0, 255));
    parser.Consume(junk.data(), junk.size(), &out);
  }
  // Random bytes essentially cannot produce a valid CRC-framed tick; the
  // point is the parser stays bounded and alive.
  EXPECT_LE(parser.PendingBytes(), 2u + 255u + 4u);
  EXPECT_EQ(parser.stats().bytes_consumed, 50u * 200u);
}

}  // namespace
}  // namespace tsdm
