#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/decision/multiobj/pareto.h"
#include "src/decision/uncertain/dominance.h"
#include "src/decision/uncertain/utility.h"
#include "src/governance/uncertainty/histogram.h"

namespace tsdm {
namespace {

Histogram GaussianHist(double mean, double sd, int seed, int n = 4000) {
  Rng rng(seed);
  std::vector<double> samples;
  for (int i = 0; i < n; ++i) samples.push_back(rng.Normal(mean, sd));
  return *Histogram::FromSamples(samples, 48);
}

TEST(UtilityTest, RiskNeutralIsNegativeMean) {
  Histogram h = GaussianHist(100.0, 10.0, 1);
  RiskNeutralUtility u;
  EXPECT_NEAR(ExpectedUtility(h, u), -100.0, 1.0);
}

TEST(UtilityTest, RiskAversePrefersLowVariance) {
  // Same mean, different spread: the risk-averse agent prefers the tight
  // one, the risk-neutral agent is indifferent.
  Histogram tight = GaussianHist(100.0, 2.0, 2);
  Histogram wide = GaussianHist(100.0, 25.0, 3);
  ExponentialUtility averse(2.0, 100.0);
  EXPECT_GT(ExpectedUtility(tight, averse), ExpectedUtility(wide, averse));
  RiskNeutralUtility neutral;
  EXPECT_NEAR(ExpectedUtility(tight, neutral),
              ExpectedUtility(wide, neutral), 3.0);
}

TEST(UtilityTest, RiskLovingPrefersTheGamble) {
  Histogram tight = GaussianHist(100.0, 2.0, 4);
  Histogram wide = GaussianHist(100.0, 25.0, 5);
  ExponentialUtility loving(-2.0, 100.0);
  EXPECT_GT(ExpectedUtility(wide, loving), ExpectedUtility(tight, loving));
}

TEST(UtilityTest, DeadlineUtilityIsOnTimeProbability) {
  Histogram h = GaussianHist(100.0, 10.0, 6);
  DeadlineUtility u(100.0);
  EXPECT_NEAR(ExpectedUtility(h, u), 0.5, 0.05);
  DeadlineUtility generous(200.0);
  EXPECT_NEAR(ExpectedUtility(h, generous), 1.0, 1e-6);
}

TEST(UtilityTest, BestByExpectedUtilityPicksDominantOption) {
  std::vector<Histogram> options = {GaussianHist(120.0, 5.0, 7),
                                    GaussianHist(100.0, 5.0, 8),
                                    GaussianHist(140.0, 5.0, 9)};
  RiskNeutralUtility u;
  EXPECT_EQ(BestByExpectedUtility(options, u), 1);
  EXPECT_EQ(BestByExpectedUtility({}, u), -1);
}

TEST(DominanceTest, ClearlyBetterOptionPrunesWorse) {
  std::vector<Histogram> options = {GaussianHist(100.0, 5.0, 10),
                                    GaussianHist(160.0, 5.0, 11),
                                    GaussianHist(230.0, 5.0, 12)};
  std::vector<int> survivors = FsdNonDominated(options);
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0], 0);
  PruneStats stats = FsdPruneStats(options);
  EXPECT_EQ(stats.survivors, 1);
  EXPECT_NEAR(stats.pruned_fraction, 2.0 / 3.0, 1e-9);
}

TEST(DominanceTest, CrossingCdfsBothSurvive) {
  // Low-mean/high-variance vs high-mean/low-variance: CDFs cross.
  std::vector<Histogram> options = {GaussianHist(100.0, 30.0, 13),
                                    GaussianHist(110.0, 2.0, 14)};
  std::vector<int> survivors = FsdNonDominated(options);
  EXPECT_EQ(survivors.size(), 2u);
}

TEST(DominanceTest, PruningNeverRemovesAnyUtilityOptimum) {
  // Core guarantee of [51]-[53]: for every monotone utility, the best
  // option survives FSD pruning.
  std::vector<Histogram> options;
  Rng rng(15);
  for (int i = 0; i < 12; ++i) {
    options.push_back(
        GaussianHist(100.0 + rng.Uniform(-30, 60), rng.Uniform(2, 30),
                     20 + i));
  }
  std::vector<int> survivors = FsdNonDominated(options);
  std::vector<const UtilityFunction*> utilities;
  RiskNeutralUtility neutral;
  ExponentialUtility averse(3.0, 100.0);
  ExponentialUtility loving(-3.0, 100.0);
  DeadlineUtility deadline(110.0);
  utilities = {&neutral, &averse, &loving, &deadline};
  for (const UtilityFunction* u : utilities) {
    int best = BestByExpectedUtility(options, *u);
    double eu_full = ExpectedUtility(options[best], *u);
    double eu_survivors = -1e300;
    for (int s : survivors) {
      eu_survivors = std::max(eu_survivors, ExpectedUtility(options[s], *u));
    }
    EXPECT_GE(eu_survivors, eu_full - 1e-9 * std::fabs(eu_full) - 1e-12)
        << "utility " << u->Name() << " optimum pruned";
  }
}

TEST(ParetoTest, DominatesSemantics) {
  EXPECT_TRUE(Dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}));  // equal: no strict part
  EXPECT_FALSE(Dominates({1, 3}, {2, 2}));  // trade-off
  EXPECT_FALSE(Dominates({1}, {1, 2}));     // size mismatch
}

TEST(ParetoTest, FrontExcludesDominated) {
  std::vector<std::vector<double>> costs = {
      {1, 5}, {2, 2}, {5, 1}, {4, 4}, {6, 6}};
  std::vector<size_t> front = ParetoFront(costs);
  // {4,4} dominated by {2,2}; {6,6} dominated too.
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
  EXPECT_EQ(front[2], 2u);
}

TEST(ParetoTest, ScalarizedBestRespectsWeights) {
  std::vector<std::vector<double>> costs = {{1, 10}, {10, 1}};
  EXPECT_EQ(ScalarizedBest(costs, {1.0, 0.01}), 0);
  EXPECT_EQ(ScalarizedBest(costs, {0.01, 1.0}), 1);
  EXPECT_EQ(ScalarizedBest({}, {1.0}), -1);
}

TEST(ParetoTest, ScalarizedChoiceIsOnTheFront) {
  Rng rng(16);
  std::vector<std::vector<double>> costs;
  for (int i = 0; i < 50; ++i) {
    costs.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  std::vector<size_t> front = ParetoFront(costs);
  for (double w = 0.05; w < 1.0; w += 0.17) {
    int best = ScalarizedBest(costs, {w, 1.0 - w});
    bool on_front = false;
    for (size_t f : front) on_front = on_front || static_cast<int>(f) == best;
    EXPECT_TRUE(on_front);
  }
}

}  // namespace
}  // namespace tsdm
