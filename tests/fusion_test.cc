#include <cmath>

#include <gtest/gtest.h>

#include "src/governance/fusion/aligner.h"
#include "src/governance/fusion/map_matcher.h"
#include "src/governance/quality/quality.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"

namespace tsdm {
namespace {

double MatchAccuracy(const MapMatchResult& result,
                     const std::vector<int>& truth) {
  if (result.matched_edges.size() != truth.size() || truth.empty()) {
    return 0.0;
  }
  size_t hits = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (result.matched_edges[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / truth.size();
}

class MapMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(3);
    GridNetworkSpec spec;
    spec.rows = 6;
    spec.cols = 6;
    spec.spacing = 400.0;
    net_ = GenerateGridNetwork(spec, rng_.get());
    sim_ = std::make_unique<TrafficSimulator>(&net_, TrafficSpec{});
  }

  SimulatedDrive Drive(double noise, double dropout) {
    std::vector<int> path = RandomPath(net_, 8, 100, rng_.get());
    GpsSpec gps;
    gps.noise_stddev = noise;
    gps.dropout_probability = dropout;
    return SimulateDrive(net_, *sim_, path, 9 * 3600, gps, rng_.get());
  }

  std::unique_ptr<Rng> rng_;
  RoadNetwork net_;
  std::unique_ptr<TrafficSimulator> sim_;
};

TEST_F(MapMatcherTest, RecoversPathUnderModerateNoise) {
  SimulatedDrive drive = Drive(10.0, 0.0);
  HmmMapMatcher matcher(&net_);
  Result<MapMatchResult> result = matcher.Match(drive.gps);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(MatchAccuracy(*result, drive.gps_true_edges), 0.8);
}

TEST_F(MapMatcherTest, BeatsNearestEdgeUnderHighNoise) {
  double hmm_total = 0.0, nearest_total = 0.0;
  int trials = 5;
  for (int i = 0; i < trials; ++i) {
    SimulatedDrive drive = Drive(40.0, 0.05);
    HmmMapMatcher::Options opts;
    opts.search_radius = 120.0;
    opts.gps_stddev = 40.0;
    HmmMapMatcher matcher(&net_, opts);
    Result<MapMatchResult> hmm = matcher.Match(drive.gps);
    Result<MapMatchResult> nearest = NearestEdgeMatch(net_, drive.gps, 250.0);
    ASSERT_TRUE(hmm.ok());
    ASSERT_TRUE(nearest.ok());
    hmm_total += MatchAccuracy(*hmm, drive.gps_true_edges);
    nearest_total += MatchAccuracy(*nearest, drive.gps_true_edges);
  }
  EXPECT_GT(hmm_total, nearest_total);
}

TEST_F(MapMatcherTest, EmptyTrajectoryRejected) {
  HmmMapMatcher matcher(&net_);
  EXPECT_FALSE(matcher.Match(Trajectory()).ok());
  EXPECT_FALSE(NearestEdgeMatch(net_, Trajectory()).ok());
}

TEST_F(MapMatcherTest, EdgePathIsDeduplicated) {
  SimulatedDrive drive = Drive(5.0, 0.0);
  HmmMapMatcher matcher(&net_);
  Result<MapMatchResult> result = matcher.Match(drive.gps);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->edge_path.size(); ++i) {
    EXPECT_NE(result->edge_path[i], result->edge_path[i - 1]);
  }
}

TEST(AlignerTest, ResampleRegularizesIrregularSeries) {
  TimeSeries irregular;
  irregular.Append(0, {0.0});
  irregular.Append(7, {7.0});
  irregular.Append(13, {13.0});
  irregular.Append(30, {30.0});
  TimeGridAligner aligner;
  Result<TimeSeries> out = aligner.Resample(irregular, 0, 10, 4);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumSteps(), 4u);
  // Values are linear in time -> interpolation must be exact.
  EXPECT_NEAR(out->At(0, 0), 0.0, 1e-9);
  EXPECT_NEAR(out->At(1, 0), 10.0, 1e-9);
  EXPECT_NEAR(out->At(2, 0), 20.0, 1e-9);
  EXPECT_NEAR(out->At(3, 0), 30.0, 1e-9);
}

TEST(AlignerTest, GapBeyondMaxGapStaysMissing) {
  TimeSeries sparse;
  sparse.Append(0, {1.0});
  sparse.Append(100000, {2.0});
  TimeGridAligner::Options opts;
  opts.max_gap_seconds = 60;
  TimeGridAligner aligner(opts);
  Result<TimeSeries> out = aligner.Resample(sparse, 40000, 10, 3);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsMissing(0, 0));
}

TEST(AlignerTest, FuseConcatenatesChannelsOnCommonGrid) {
  TimeSeries a = TimeSeries::Regular(0, 10, 10, 1);
  for (size_t i = 0; i < 10; ++i) a.Set(i, 0, static_cast<double>(i));
  TimeSeries b = TimeSeries::Regular(20, 5, 10, 2);
  for (size_t i = 0; i < 10; ++i) {
    b.Set(i, 0, 100.0);
    b.Set(i, 1, 200.0);
  }
  TimeGridAligner aligner;
  Result<TimeSeries> fused = aligner.Fuse({a, b}, 10);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->NumChannels(), 3u);
  EXPECT_EQ(fused->Timestamp(0), 20);  // intersection starts at 20
  EXPECT_NEAR(fused->At(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(fused->At(0, 1), 100.0, 1e-9);
}

TEST(AlignerTest, NonOverlappingInputsFail) {
  TimeSeries a = TimeSeries::Regular(0, 10, 5, 1);
  TimeSeries b = TimeSeries::Regular(1000, 10, 5, 1);
  EXPECT_FALSE(TimeGridAligner().Fuse({a, b}, 10).ok());
  EXPECT_FALSE(TimeGridAligner().Fuse({}, 10).ok());
}

TEST(QualityTest, ReportCountsProblems) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 10, 2);
  for (size_t i = 0; i < 10; ++i) {
    ts.Set(i, 0, static_cast<double>(i));
    ts.Set(i, 1, 1.0);
  }
  ts.Set(3, 0, kMissingValue);
  ts.Set(4, 1, 1e9);  // out of range
  RangeRule range{-100.0, 100.0};
  QualityReport report = AssessQuality(ts, &range);
  EXPECT_EQ(report.num_steps, 10u);
  EXPECT_EQ(report.channels[0].missing, 1u);
  EXPECT_EQ(report.channels[1].out_of_range, 1u);
  EXPECT_TRUE(report.timestamps_sorted);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(QualityTest, CleanSeriesMarksOutliersMissing) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 100, 1);
  for (size_t i = 0; i < 100; ++i) ts.Set(i, 0, 10.0 + (i % 5));
  ts.Set(50, 0, 10000.0);  // out of range
  ts.Set(60, 0, 25.0);     // within range but a MAD outlier
  RangeRule range{0.0, 1000.0};
  size_t cleared = CleanSeries(&ts, range, 5.0);
  EXPECT_GE(cleared, 2u);
  EXPECT_TRUE(ts.IsMissing(50, 0));
  EXPECT_TRUE(ts.IsMissing(60, 0));
  EXPECT_FALSE(ts.IsMissing(0, 0));
}

}  // namespace
}  // namespace tsdm
