// The flight recorder judged in isolation: retroactive retention (keep iff
// over-SLO / shed / errored / head-sampled), per-tenant reservoir eviction,
// tombstoned late spans, duplicate-completion defense, dump-on-worsening —
// and a multi-threaded retain/evict/dump race (the TSan/ASan gate target).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/serve/request_queue.h"

namespace tsdm {
namespace {

/// Resets the global recorder around every test: the recorder is a process
/// singleton (like TraceRecorder), so tests must leave it disabled+empty.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().Disable();
    FlightRecorder::Global().Configure(FlightRecorder::Options{});
  }
  void TearDown() override {
    FlightRecorder::Global().Disable();
    FlightRecorder::Global().Configure(FlightRecorder::Options{});
    FlightRecorder::Global().SetStatsSource(nullptr);
  }

  static void Use(const FlightRecorder::Options& opts) {
    FlightRecorder::Global().Configure(opts);
    FlightRecorder::Global().Enable();
  }
};

/// A terminal answer with a scripted end-to-end latency (carried by the
/// queue/service split, as shed answers carry it in production).
RouteAnswer Answer(Status status, double e2e_seconds,
                   const std::string& tenant = "") {
  RouteAnswer a;
  a.status = std::move(status);
  a.queue_seconds = e2e_seconds / 2;
  a.service_seconds = e2e_seconds / 2;
  a.tenant_id = tenant;
  return a;
}

TraceEvent Span(uint64_t request_id, const std::string& name,
                uint64_t start_ns, uint64_t dur_ns) {
  TraceEvent ev;
  ev.name = name;
  ev.request_id = request_id;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.span_id = start_ns + 1;  // unique enough for a test
  return ev;
}

TEST_F(FlightRecorderTest, DisabledRecorderObservesNothing) {
  FlightRecorder::Global().Configure(FlightRecorder::Options{});
  ASSERT_FALSE(FlightRecorder::Enabled());
  FlightRecorder::MaybeRecordSpan(Span(1, "serve/exec", 10, 5));
  FlightRecorder::MaybeComplete(1, -1, Answer(Status::OK(), 1.0));
  FlightStatsSnapshot s = FlightRecorder::Global().Stats();
  EXPECT_EQ(s.observed, 0u);
  EXPECT_EQ(s.open_requests, 0u);
  EXPECT_EQ(s.retained_records, 0u);
}

TEST_F(FlightRecorderTest, RetroactiveRetentionKeepsOnlyRemarkableRequests) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 0.010;
  opts.head_sample_every = 0;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();

  // Fast OK: unremarkable — observed, then discarded.
  fr.OnComplete(0, -1, Answer(Status::OK(), 0.001));
  // Over-SLO OK: tail evidence.
  fr.OnComplete(0, 3, Answer(Status::OK(), 0.020));
  // Shed (admission-control code): failure evidence.
  fr.OnComplete(0, -1,
                Answer(Status::ResourceExhausted("queue full"), 0.0005));
  // Error (any other non-OK): failure evidence.
  fr.OnComplete(0, -1, Answer(Status::Internal("model exploded"), 0.002));

  FlightStatsSnapshot s = fr.Stats();
  EXPECT_EQ(s.observed, 4u);
  EXPECT_EQ(s.discarded, 1u);
  EXPECT_EQ(s.retained_slo, 1u);
  EXPECT_EQ(s.retained_shed, 1u);
  EXPECT_EQ(s.retained_error, 1u);
  EXPECT_EQ(s.retained_sample, 0u);
  EXPECT_EQ(s.retained_records, 3u);

  // Newest first; the retention metadata survives on each record.
  std::vector<FlightRecord> kept = fr.Retained(10);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].reason, FlightRetainReason::kError);
  EXPECT_EQ(kept[0].outcome, FlightOutcome::kFailed);
  EXPECT_EQ(kept[0].status_code, StatusCode::kInternal);
  EXPECT_EQ(kept[1].reason, FlightRetainReason::kShed);
  EXPECT_EQ(kept[1].outcome, FlightOutcome::kShed);
  EXPECT_EQ(kept[2].reason, FlightRetainReason::kSloBreach);
  EXPECT_EQ(kept[2].outcome, FlightOutcome::kCompleted);
  EXPECT_EQ(kept[2].shard, 3);
  EXPECT_NEAR(kept[2].e2e_seconds, 0.020, 1e-9);
  // Tenant normalizes like the serve tier's counters do.
  EXPECT_EQ(kept[0].tenant, "default");
  // Retention order is monotonic.
  EXPECT_GT(kept[0].seq, kept[1].seq);
  EXPECT_GT(kept[1].seq, kept[2].seq);
}

TEST_F(FlightRecorderTest, HeadSamplingKeepsOneInN) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 10.0;  // nothing breaches
  opts.head_sample_every = 4;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();
  for (int i = 0; i < 8; ++i) {
    fr.OnComplete(0, -1, Answer(Status::OK(), 0.001));
  }
  FlightStatsSnapshot s = fr.Stats();
  EXPECT_EQ(s.observed, 8u);
  EXPECT_EQ(s.retained_sample, 2u);
  EXPECT_EQ(s.discarded, 6u);
  for (const FlightRecord& rec : fr.Retained(10)) {
    EXPECT_EQ(rec.reason, FlightRetainReason::kHeadSample);
  }
}

TEST_F(FlightRecorderTest, SpansAccumulateIntoRetainedRecord) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 0.010;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();

  const uint64_t rid = 42;
  fr.OnSpan(Span(rid, "serve/queue_wait", 100, 50));
  fr.OnSpan(Span(rid, "serve/exec", 150, 80));
  EXPECT_EQ(fr.Stats().open_requests, 1u);

  fr.OnComplete(rid, 2, Answer(Status::OK(), 0.050));
  std::vector<FlightRecord> kept = fr.Retained(1);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].request_id, rid);
  EXPECT_EQ(kept[0].shard, 2);
  ASSERT_EQ(kept[0].spans.size(), 2u);
  EXPECT_TRUE(kept[0].complete);

  // A late span (the worker's exec span closes after the completion
  // callback) still lands on the retained record.
  fr.OnSpan(Span(rid, "serve/late", 300, 10));
  EXPECT_EQ(fr.Retained(1)[0].spans.size(), 3u);

  // The Chrome export carries the request linkage for the retained trace.
  std::string json = fr.ToChromeTraceJson(8);
  EXPECT_NE(json.find("\"req\":42"), std::string::npos);
  EXPECT_NE(json.find("serve/queue_wait"), std::string::npos);
}

TEST_F(FlightRecorderTest, DiscardedRequestIsTombstonedAgainstLateSpans) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 10.0;  // everything discards
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();

  const uint64_t rid = 7;
  fr.OnSpan(Span(rid, "serve/exec", 10, 5));
  fr.OnComplete(rid, -1, Answer(Status::OK(), 0.001));
  EXPECT_EQ(fr.Stats().discarded, 1u);
  EXPECT_EQ(fr.Stats().open_requests, 0u);

  // A late span must not resurrect the discarded record.
  fr.OnSpan(Span(rid, "serve/late", 30, 2));
  EXPECT_EQ(fr.Stats().open_requests, 0u);
  EXPECT_EQ(fr.Retained(10).size(), 0u);
}

TEST_F(FlightRecorderTest, PerRecordSpanCapCountsOverflow) {
  FlightRecorder::Options opts;
  opts.max_spans_per_record = 4;
  opts.slo_threshold_seconds = 0.0;  // retain everything
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();
  for (uint64_t i = 0; i < 6; ++i) {
    fr.OnSpan(Span(9, "serve/path_cost", 10 * (i + 1), 5));
  }
  fr.OnComplete(9, -1, Answer(Status::OK(), 0.001));
  std::vector<FlightRecord> kept = fr.Retained(1);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].spans.size(), 4u);
  EXPECT_EQ(kept[0].spans_dropped, 2u);
  EXPECT_EQ(fr.Stats().spans_captured, 4u);
  EXPECT_EQ(fr.Stats().spans_dropped, 2u);
}

TEST_F(FlightRecorderTest, DuplicateCompletionFirstWins) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 0.0;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();
  fr.OnSpan(Span(5, "serve/exec", 10, 5));
  fr.OnComplete(5, 1, Answer(Status::OK(), 0.001));
  fr.OnComplete(5, 2, Answer(Status::Internal("late duplicate"), 0.002));
  std::vector<FlightRecord> kept = fr.Retained(10);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].shard, 1);
  EXPECT_EQ(kept[0].status_code, StatusCode::kOk);
}

TEST_F(FlightRecorderTest, NoisyTenantCannotEvictAnotherTenantsReserve) {
  FlightRecorder::Options opts;
  opts.capacity = 6;
  opts.reserved_per_tenant = 2;
  opts.slo_threshold_seconds = 0.0;  // retain everything
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();

  auto count = [&](const std::string& tenant) {
    size_t n = 0;
    for (const FlightRecord& rec : fr.Retained(100)) {
      if (rec.tenant == tenant) ++n;
    }
    return n;
  };

  // "noisy" fills the whole ring, then "quiet" retains a handful.
  for (int i = 0; i < 6; ++i) {
    fr.OnComplete(0, -1, Answer(Status::OK(), 0.001, "noisy"));
  }
  for (int i = 0; i < 4; ++i) {
    fr.OnComplete(0, -1, Answer(Status::OK(), 0.001, "quiet"));
  }
  EXPECT_EQ(fr.Stats().retained_records, 6u);
  EXPECT_EQ(count("quiet"), 4u);

  // A sustained noisy flood displaces quiet only down to its reserve —
  // after that, noisy evicts its own records.
  for (int i = 0; i < 40; ++i) {
    fr.OnComplete(0, -1, Answer(Status::OK(), 0.001, "noisy"));
  }
  EXPECT_EQ(fr.Stats().retained_records, 6u);
  EXPECT_EQ(count("quiet"), opts.reserved_per_tenant);
  EXPECT_EQ(count("noisy"), opts.capacity - opts.reserved_per_tenant);
  EXPECT_EQ(fr.Stats().evicted,
            fr.Stats().RetainedTotal() - fr.Stats().retained_records);
}

TEST_F(FlightRecorderTest, DumpFreezesOnWorseningTransitionsOnly) {
  FlightRecorder::Options opts;
  opts.slo_threshold_seconds = 0.0;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();

  // Scripted stats source: the dump's delta section must report what
  // changed since the baseline captured by SetStatsSource.
  ServeStatsSnapshot live;
  live.submitted = 100;
  live.admitted = 90;
  live.completed = 80;
  fr.SetStatsSource([&live] { return live; });
  live.submitted = 160;
  live.admitted = 140;
  live.completed = 120;
  live.queue_depth = 12;

  fr.OnComplete(0, -1, Answer(Status::Internal("tail evidence"), 0.2));

  HealthTransition worse;
  worse.sample = 17;
  worse.from = HealthState::kHealthy;
  worse.to = HealthState::kDegraded;
  worse.top_offender = "exec";
  worse.burn_rate = 1.5;
  HealthSnapshot health;
  health.state = HealthState::kDegraded;
  fr.OnHealthTransition(worse, health);

  EXPECT_EQ(fr.Stats().dumps, 1u);
  std::string dump = fr.LatestDumpJson();
  EXPECT_NE(dump.find("\"kind\":\"flight_dump\""), std::string::npos);
  EXPECT_NE(dump.find("\"dump_seq\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"from\":\"healthy\""), std::string::npos);
  EXPECT_NE(dump.find("\"to\":\"degraded\""), std::string::npos);
  EXPECT_NE(dump.find("\"top_offender\":\"exec\""), std::string::npos);
  EXPECT_NE(dump.find("\"submitted\":60"), std::string::npos);  // delta
  EXPECT_NE(dump.find("\"retained_records\":1"), std::string::npos);
  EXPECT_NE(dump.find("tail evidence"), std::string::npos);

  // Recovery changes no evidence: no new dump.
  HealthTransition recover;
  recover.from = HealthState::kDegraded;
  recover.to = HealthState::kHealthy;
  fr.OnHealthTransition(recover, health);
  EXPECT_EQ(fr.Stats().dumps, 1u);

  // A further escalation freezes the next dump, with a delta measured from
  // the previous one.
  live.submitted = 200;
  HealthTransition escalate;
  escalate.from = HealthState::kDegraded;
  escalate.to = HealthState::kUnhealthy;
  fr.OnHealthTransition(escalate, health);
  EXPECT_EQ(fr.Stats().dumps, 2u);
  std::string second = fr.LatestDumpJson();
  EXPECT_NE(second.find("\"dump_seq\":2"), std::string::npos);
  EXPECT_NE(second.find("\"to\":\"unhealthy\""), std::string::npos);
  EXPECT_NE(second.find("\"submitted\":40"), std::string::npos);  // 200-160
}

// The race the sanitizer gates exist for: concurrent span recording and
// completions (retain + evict under ring pressure), a reader snapshotting
// retained traces and stats, and a dumper freezing black-box dumps — all
// against the same global recorder.
TEST_F(FlightRecorderTest, ConcurrentRetainEvictDumpIsRaceFree) {
  FlightRecorder::Options opts;
  opts.capacity = 32;
  opts.reserved_per_tenant = 4;
  opts.slo_threshold_seconds = 0.0;  // retain everything -> eviction churn
  opts.max_spans_per_record = 8;
  Use(opts);
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetStatsSource([] {
    ServeStatsSnapshot s;
    s.submitted = 1;
    return s;
  });

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 400;
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)fr.Retained(16);
      (void)fr.ToChromeTraceJson(8);
      (void)fr.Stats();
    }
  });
  std::thread dumper([&] {
    HealthTransition t;
    t.from = HealthState::kHealthy;
    t.to = HealthState::kDegraded;
    HealthSnapshot h;
    while (!stop.load(std::memory_order_relaxed)) {
      fr.OnHealthTransition(t, h);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const uint64_t rid = 1 + static_cast<uint64_t>(w) * kPerWriter + i;
        fr.OnSpan(Span(rid, "serve/exec", rid * 10, 5));
        fr.OnSpan(Span(rid, "serve/path_cost", rid * 10 + 1, 2));
        RouteAnswer a = Answer(
            i % 7 == 0 ? Status::ResourceExhausted("shed") : Status::OK(),
            0.001, "tenant-" + std::to_string(w % 3));
        fr.OnComplete(rid, w, a);
        // Late span after the completion decided the record's fate.
        fr.OnSpan(Span(rid, "serve/late", rid * 10 + 7, 1));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  dumper.join();

  FlightStatsSnapshot s = fr.Stats();
  constexpr uint64_t kTotal = static_cast<uint64_t>(kWriters) * kPerWriter;
  EXPECT_EQ(s.observed, kTotal);
  // slo threshold 0 retains every completion: the books must balance.
  EXPECT_EQ(s.RetainedTotal(), kTotal);
  EXPECT_EQ(s.discarded, 0u);
  EXPECT_EQ(s.retained_records, opts.capacity);
  EXPECT_EQ(s.evicted, kTotal - opts.capacity);
  EXPECT_GT(s.dumps, 0u);
  EXPECT_NE(fr.LatestDumpJson(), "");
  // Every retained record is complete and carries its span tree.
  for (const FlightRecord& rec : fr.Retained(opts.capacity)) {
    EXPECT_TRUE(rec.complete);
    EXPECT_GE(rec.spans.size(), 2u);
  }
}

}  // namespace
}  // namespace tsdm
