#include "src/data/time_series.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tsdm {
namespace {

TEST(TimeSeriesTest, RegularConstruction) {
  TimeSeries ts = TimeSeries::Regular(1000, 60, 5, 2);
  EXPECT_EQ(ts.NumSteps(), 5u);
  EXPECT_EQ(ts.NumChannels(), 2u);
  EXPECT_EQ(ts.Timestamp(0), 1000);
  EXPECT_EQ(ts.Timestamp(4), 1240);
  EXPECT_TRUE(ts.HasSortedTimestamps());
  EXPECT_EQ(ts.At(3, 1), 0.0);
}

TEST(TimeSeriesTest, FromValuesSingleChannel) {
  TimeSeries ts = TimeSeries::FromValues({1.5, 2.5, 3.5});
  EXPECT_EQ(ts.NumSteps(), 3u);
  EXPECT_EQ(ts.NumChannels(), 1u);
  EXPECT_EQ(ts.At(1, 0), 2.5);
  EXPECT_EQ(ts.Channel(0)[2], 3.5);
}

TEST(TimeSeriesTest, MissingValueAccounting) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 4, 2);
  EXPECT_EQ(ts.CountMissing(), 0u);
  ts.Set(1, 0, kMissingValue);
  ts.Set(2, 1, kMissingValue);
  EXPECT_TRUE(ts.IsMissing(1, 0));
  EXPECT_FALSE(ts.IsMissing(0, 0));
  EXPECT_EQ(ts.CountMissing(), 2u);
  EXPECT_DOUBLE_EQ(ts.MissingRate(), 0.25);
}

TEST(TimeSeriesTest, SetChannelValidatesSize) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 3, 1);
  EXPECT_FALSE(ts.SetChannel(0, {1.0}).ok());
  ASSERT_TRUE(ts.SetChannel(0, {1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(ts.At(2, 0), 3.0);
}

TEST(TimeSeriesTest, SliceCopiesRange) {
  TimeSeries ts = TimeSeries::Regular(0, 10, 6, 1);
  for (size_t i = 0; i < 6; ++i) ts.Set(i, 0, static_cast<double>(i));
  TimeSeries slice = ts.Slice(2, 5);
  EXPECT_EQ(slice.NumSteps(), 3u);
  EXPECT_EQ(slice.Timestamp(0), 20);
  EXPECT_EQ(slice.At(0, 0), 2.0);
  EXPECT_EQ(slice.At(2, 0), 4.0);
  // Out-of-range slice is empty.
  EXPECT_TRUE(ts.Slice(4, 3).empty());
  EXPECT_TRUE(ts.Slice(0, 100).empty());
}

TEST(TimeSeriesTest, AppendGrowsSeries) {
  TimeSeries ts;
  ASSERT_TRUE(ts.Append(10, {1.0, 2.0}).ok());
  ASSERT_TRUE(ts.Append(20, {3.0, 4.0}).ok());
  EXPECT_EQ(ts.NumSteps(), 2u);
  EXPECT_EQ(ts.NumChannels(), 2u);
  EXPECT_EQ(ts.At(1, 1), 4.0);
  // Wrong arity rejected.
  EXPECT_FALSE(ts.Append(30, {5.0}).ok());
}

TEST(TimeSeriesTest, ObservationVector) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 2, 3);
  ts.Set(1, 0, 7.0);
  ts.Set(1, 2, 9.0);
  std::vector<double> obs = ts.Observation(1);
  ASSERT_EQ(obs.size(), 3u);
  EXPECT_EQ(obs[0], 7.0);
  EXPECT_EQ(obs[2], 9.0);
}

TEST(TimeSeriesTest, UnsortedTimestampsDetected) {
  TimeSeries ts;
  ASSERT_TRUE(ts.Append(10, {1.0}).ok());
  ASSERT_TRUE(ts.Append(5, {2.0}).ok());
  EXPECT_FALSE(ts.HasSortedTimestamps());
}

}  // namespace
}  // namespace tsdm
