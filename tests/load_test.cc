#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/load/load_trace.h"
#include "src/load/replayer.h"
#include "src/load/scenario.h"
#include "src/obs/trace.h"
#include "src/serve/query_server.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

// --- ScenarioGenerator ---------------------------------------------------

TenantScenario BaseSpec() {
  TenantScenario spec;
  spec.tenant = "commuter";
  spec.shape = ScenarioShape::kDiurnalCommute;
  spec.base_rate_hz = 200.0;
  spec.peak_multiplier = 4.0;
  spec.duration_seconds = 4.0;
  spec.seed = 7;
  spec.num_nodes = 25;
  return spec;
}

bool SameQuery(const TimedQuery& a, const TimedQuery& b) {
  return a.at_seconds == b.at_seconds && a.tenant == b.tenant &&
         a.priority == b.priority && a.query.source == b.query.source &&
         a.query.target == b.query.target && a.query.k == b.query.k &&
         a.query.snapshot_id == b.query.snapshot_id &&
         a.query.depart_seconds == b.query.depart_seconds &&
         a.query.arrival_deadline_seconds == b.query.arrival_deadline_seconds;
}

TEST(ScenarioTest, DeterministicInSeed) {
  const TenantScenario spec = BaseSpec();
  Result<std::vector<TimedQuery>> a = GenerateScenario(spec);
  Result<std::vector<TimedQuery>> b = GenerateScenario(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a->empty());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_TRUE(SameQuery((*a)[i], (*b)[i])) << "diverged at " << i;
  }

  TenantScenario reseeded = spec;
  reseeded.seed = 8;
  Result<std::vector<TimedQuery>> c = GenerateScenario(reseeded);
  ASSERT_TRUE(c.ok());
  bool identical = c->size() == a->size();
  for (size_t i = 0; identical && i < a->size(); ++i) {
    identical = SameQuery((*a)[i], (*c)[i]);
  }
  EXPECT_FALSE(identical) << "different seeds produced the same stream";
}

TEST(ScenarioTest, StreamsAreSortedAndWellFormed) {
  for (ScenarioShape shape :
       {ScenarioShape::kDiurnalCommute, ScenarioShape::kRideHailSurge,
        ScenarioShape::kFlashCrowd, ScenarioShape::kSensorOutageStorm,
        ScenarioShape::kSlowDrift}) {
    TenantScenario spec = BaseSpec();
    spec.shape = shape;
    Result<std::vector<TimedQuery>> stream = GenerateScenario(spec);
    ASSERT_TRUE(stream.ok()) << ScenarioShapeName(shape);
    ASSERT_FALSE(stream->empty()) << ScenarioShapeName(shape);
    double prev = -1.0;
    for (const TimedQuery& q : *stream) {
      EXPECT_GE(q.at_seconds, prev);
      EXPECT_LT(q.at_seconds, spec.duration_seconds);
      EXPECT_GE(q.query.source, 0);
      EXPECT_LT(q.query.source, spec.num_nodes);
      EXPECT_GE(q.query.target, 0);
      EXPECT_LT(q.query.target, spec.num_nodes);
      EXPECT_NE(q.query.source, q.query.target);
      EXPECT_EQ(q.tenant, spec.tenant);
      prev = q.at_seconds;
    }
  }
}

TEST(ScenarioTest, ShapeIntensitiesMatchTheirStories) {
  TenantScenario spec = BaseSpec();
  const double base = spec.base_rate_hz;
  const double d = spec.duration_seconds;

  // Surge: flat until 60%, peak near 80%, back to base after 90%.
  spec.shape = ScenarioShape::kRideHailSurge;
  EXPECT_DOUBLE_EQ(ScenarioRateAt(spec, 0.3 * d), base);
  EXPECT_GT(ScenarioRateAt(spec, 0.8 * d), 3.0 * base);
  EXPECT_DOUBLE_EQ(ScenarioRateAt(spec, 0.95 * d), base);

  // Flash crowd: near-silent before the event, spike right after.
  spec.shape = ScenarioShape::kFlashCrowd;
  EXPECT_LT(ScenarioRateAt(spec, 0.4 * d), 0.1 * base);
  EXPECT_GT(ScenarioRateAt(spec, 0.51 * d), 2.0 * base);

  // Slow drift: monotone non-decreasing ramp.
  spec.shape = ScenarioShape::kSlowDrift;
  double prev = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double r = ScenarioRateAt(spec, d * i / 20.0);
    EXPECT_GE(r, prev);
    prev = r;
  }

  // Diurnal: both rush humps rise well above the mid-day lull.
  spec.shape = ScenarioShape::kDiurnalCommute;
  const double lull = ScenarioRateAt(spec, 0.5 * d);
  EXPECT_GT(ScenarioRateAt(spec, 0.25 * d), 2.0 * lull);
  EXPECT_GT(ScenarioRateAt(spec, 0.75 * d), 2.0 * lull);

  // Outage storm: burst phases sit at peak, quiet phases at base.
  spec.shape = ScenarioShape::kSensorOutageStorm;
  EXPECT_GT(ScenarioRateAt(spec, 0.05 * d), 3.0 * base);
  EXPECT_DOUBLE_EQ(ScenarioRateAt(spec, 0.15 * d), base);
}

TEST(ScenarioTest, MergeStreamsIsStableByTime) {
  TenantScenario a = BaseSpec();
  a.tenant = "a";
  TenantScenario b = BaseSpec();
  b.tenant = "b";
  b.seed = 99;
  Result<std::vector<TimedQuery>> sa = GenerateScenario(a);
  Result<std::vector<TimedQuery>> sb = GenerateScenario(b);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  std::vector<TimedQuery> merged = MergeStreams({*sa, *sb});
  EXPECT_EQ(merged.size(), sa->size() + sb->size());
  double prev = -1.0;
  size_t from_a = 0;
  for (const TimedQuery& q : merged) {
    EXPECT_GE(q.at_seconds, prev);
    prev = q.at_seconds;
    if (q.tenant == "a") ++from_a;
  }
  EXPECT_EQ(from_a, sa->size());
}

TEST(ScenarioTest, RejectsDegenerateSpecs) {
  TenantScenario spec = BaseSpec();
  spec.duration_seconds = 0.0;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = BaseSpec();
  spec.base_rate_hz = -1.0;
  EXPECT_FALSE(GenerateScenario(spec).ok());
  spec = BaseSpec();
  spec.num_nodes = 1;
  EXPECT_FALSE(GenerateScenario(spec).ok());
}

// --- Trace format --------------------------------------------------------

std::vector<TimedQuery> SmallTrace() {
  TenantScenario spec = BaseSpec();
  spec.base_rate_hz = 40.0;
  spec.duration_seconds = 1.0;
  spec.tenant = "premium";
  spec.priority = 2;
  Result<std::vector<TimedQuery>> stream = GenerateScenario(spec);
  EXPECT_TRUE(stream.ok());
  return *stream;
}

std::vector<uint8_t> EncodeAll(const std::vector<TimedQuery>& trace) {
  std::vector<uint8_t> bytes;
  for (const TimedQuery& q : trace) EncodeLoadTraceRecord(q, &bytes);
  return bytes;
}

TEST(LoadTraceTest, RoundTripsBitwiseUnderAnyChunking) {
  const std::vector<TimedQuery> trace = SmallTrace();
  ASSERT_FALSE(trace.empty());
  const std::vector<uint8_t> bytes = EncodeAll(trace);

  for (size_t chunk : {size_t{1}, size_t{3}, size_t{17}, bytes.size()}) {
    LoadTraceParser parser;
    std::vector<TimedQuery> decoded;
    for (size_t off = 0; off < bytes.size(); off += chunk) {
      const size_t n = std::min(chunk, bytes.size() - off);
      parser.Consume(bytes.data() + off, n, &decoded);
    }
    ASSERT_EQ(decoded.size(), trace.size()) << "chunk=" << chunk;
    for (size_t i = 0; i < trace.size(); ++i) {
      EXPECT_TRUE(SameQuery(trace[i], decoded[i]))
          << "chunk=" << chunk << " record=" << i;
    }
    EXPECT_EQ(parser.stats().records_accepted, trace.size());
    EXPECT_EQ(parser.stats().RejectedTotal(), 0u);
    EXPECT_EQ(parser.stats().resync_bytes, 0u);
    EXPECT_EQ(parser.PendingBytes(), 0u);
  }
}

TEST(LoadTraceTest, SingleCorruptByteIsContainedAndResyncsEachPosition) {
  // The WAL/wire corruption standard: flip every byte position in a
  // 3-record stream one at a time. The parser must never crash, never
  // emit a forged record, and never lose data *silently*: a flip either
  // costs exactly the record it lives in (CRC rejection + resync debris),
  // or — when it grows a length field — swallows the tail as one pending
  // over-long frame, which is truncation accounting, not loss. Feeding
  // more bytes past the bogus frame must always resynchronize.
  std::vector<TimedQuery> trace = SmallTrace();
  trace.resize(3);
  const std::vector<uint8_t> clean = EncodeAll(trace);
  TimedQuery sentinel = trace[0];
  sentinel.tenant = "sentinel";
  for (size_t flip = 0; flip < clean.size(); ++flip) {
    std::vector<uint8_t> bytes = clean;
    bytes[flip] ^= 0x5A;
    LoadTraceParser parser;
    std::vector<TimedQuery> decoded;
    parser.Consume(bytes.data(), bytes.size(), &decoded);
    EXPECT_LE(decoded.size(), trace.size()) << "flip at " << flip;
    if (decoded.size() < trace.size()) {
      // Lost records are detected (rejection / resync debris) or buffered
      // as an incomplete frame (pending) — never dropped without a trace.
      EXPECT_TRUE(parser.stats().RejectedTotal() > 0 ||
                  parser.stats().resync_bytes > 0 ||
                  parser.PendingBytes() > 0)
          << "flip at " << flip;
      if (parser.stats().RejectedTotal() > 0) {
        EXPECT_FALSE(parser.last_error().ok());
      }
    }
    // More than one record missing is only possible through the pending
    // over-long frame — a single corrupt byte never silently eats two.
    if (decoded.size() + 1 < trace.size()) {
      EXPECT_GT(parser.PendingBytes(), 0u) << "flip at " << flip;
    }
    // Whatever survived must be intact records, in order — no forgeries.
    size_t matched = 0;
    for (const TimedQuery& got : decoded) {
      while (matched < trace.size() && !SameQuery(trace[matched], got)) {
        ++matched;
      }
      ASSERT_LT(matched, trace.size())
          << "flip at " << flip << " produced a record not in the input";
      ++matched;
    }
    // Eventual resynchronization: pad past any bogus frame length, then
    // append one intact record — the parser must lock back on and decode
    // it no matter which byte was flipped.
    const std::vector<uint8_t> padding(kLoadTraceMaxPayload + 16, 0);
    std::vector<TimedQuery> after;
    parser.Consume(padding.data(), padding.size(), &after);
    std::vector<uint8_t> sentinel_bytes;
    EncodeLoadTraceRecord(sentinel, &sentinel_bytes);
    parser.Consume(sentinel_bytes.data(), sentinel_bytes.size(), &after);
    ASSERT_FALSE(after.empty()) << "flip at " << flip << " never resynced";
    EXPECT_TRUE(SameQuery(sentinel, after.back())) << "flip at " << flip;
  }
}

TEST(LoadTraceTest, GarbageBetweenRecordsIsSkipped) {
  std::vector<TimedQuery> trace = SmallTrace();
  trace.resize(2);
  std::vector<uint8_t> bytes;
  EncodeLoadTraceRecord(trace[0], &bytes);
  for (int i = 0; i < 64; ++i) bytes.push_back(0xEE);  // inter-record noise
  EncodeLoadTraceRecord(trace[1], &bytes);

  LoadTraceParser parser;
  std::vector<TimedQuery> decoded;
  parser.Consume(bytes.data(), bytes.size(), &decoded);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_TRUE(SameQuery(trace[0], decoded[0]));
  EXPECT_TRUE(SameQuery(trace[1], decoded[1]));
  EXPECT_EQ(parser.stats().resync_bytes, 64u);
}

TEST(LoadTraceTest, FileRoundTripAndHeaderValidation) {
  const std::vector<TimedQuery> trace = SmallTrace();
  const std::string path = ::testing::TempDir() + "/load_trace_test.tswt";
  ASSERT_TRUE(WriteTraceFile(path, trace).ok());

  LoadTraceParserStats stats;
  Result<std::vector<TimedQuery>> back = ReadTraceFile(path, &stats);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_TRUE(SameQuery(trace[i], (*back)[i]));
  }
  EXPECT_EQ(stats.RejectedTotal(), 0u);

  // A non-trace file is rejected by header, not parsed as garbage.
  const std::string bogus = ::testing::TempDir() + "/bogus.tswt";
  std::FILE* f = std::fopen(bogus.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a trace", f);
  std::fclose(f);
  EXPECT_FALSE(ReadTraceFile(bogus).ok());
}

// --- Recorder + replayer against a live server ---------------------------

struct LoadFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  LoadFixture() : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 5;
    spec.cols = 5;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(3);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }
};

std::vector<TimedQuery> ReplayTrace(int num_nodes) {
  TenantScenario premium = BaseSpec();
  premium.tenant = "premium";
  premium.priority = 2;
  premium.base_rate_hz = 60.0;
  premium.duration_seconds = 1.0;
  premium.num_nodes = num_nodes;
  premium.seed = 21;
  TenantScenario batch = premium;
  batch.tenant = "batch";
  batch.priority = 0;
  batch.seed = 22;
  Result<std::vector<TimedQuery>> sp = GenerateScenario(premium);
  Result<std::vector<TimedQuery>> sb = GenerateScenario(batch);
  EXPECT_TRUE(sp.ok());
  EXPECT_TRUE(sb.ok());
  return MergeStreams({*sp, *sb});
}

TEST(LoadTraceRecorderTest, RecordsLiveTrafficThroughTheObserver) {
  LoadFixture fx;
  LoadTraceRecorder recorder;
  QueryServer::Options opts;
  opts.initial_workers = 2;
  opts.autoscale_enabled = false;
  opts.submit_observer = recorder.Observer();
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<TimedQuery> trace = ReplayTrace(25);
  ASSERT_FALSE(trace.empty());
  TraceReplayer::Options ropts;
  ropts.speed = 0.0;  // as fast as possible
  ropts.queue_budget_seconds = 0.0;
  TraceReplayer replayer(ropts);
  Result<TraceReplayer::Report> report = replayer.Replay(trace, &server);
  ASSERT_TRUE(report.ok());
  server.Stop();

  // Every offered query was observed, tenants and priorities intact, and
  // timestamps rebased to the first observation in nondecreasing order.
  std::vector<TimedQuery> recorded = recorder.Snapshot();
  ASSERT_EQ(recorded.size(), trace.size());
  double prev = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(recorded[i].tenant, trace[i].tenant);
    EXPECT_EQ(recorded[i].priority, trace[i].priority);
    EXPECT_EQ(recorded[i].query.source, trace[i].query.source);
    EXPECT_EQ(recorded[i].query.target, trace[i].query.target);
    EXPECT_GE(recorded[i].at_seconds, prev);
    prev = recorded[i].at_seconds;
  }

  // Record -> write -> read -> the same offered load.
  const std::string path = ::testing::TempDir() + "/recorded.tswt";
  ASSERT_TRUE(recorder.WriteTo(path).ok());
  Result<std::vector<TimedQuery>> back = ReadTraceFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), recorded.size());
}

/// Decision fields of an answer, bitwise (doubles compared as bit
/// patterns). Timing fields are excluded — they are wall-clock, not
/// decisions.
std::string DecisionFingerprint(const RouteAnswer& a) {
  std::string fp;
  fp += std::to_string(static_cast<int>(a.status.code()));
  fp += "|" + a.tenant_id;
  fp += "|" + std::to_string(a.client_request_id);
  fp += "|" + std::to_string(a.num_candidates);
  uint64_t bits = 0;
  std::memcpy(&bits, &a.cost_mean_seconds, sizeof(bits));
  fp += "|" + std::to_string(bits);
  std::memcpy(&bits, &a.on_time_probability, sizeof(bits));
  fp += "|" + std::to_string(bits);
  fp += "|";
  for (int e : a.route.edges) fp += std::to_string(e) + ",";
  return fp;
}

TEST(TraceReplayerTest, ReplayingASeededScenarioIsBitwiseDeterministic) {
  LoadFixture fx;
  const std::vector<TimedQuery> trace = ReplayTrace(25);
  ASSERT_FALSE(trace.empty());

  auto run = [&fx, &trace]() {
    QueryServer::Options opts;
    opts.initial_workers = 3;
    opts.autoscale_enabled = false;
    opts.queue.capacity = trace.size() + 1;  // nothing sheds
    QueryServer server(&fx.net, fx.BaseModel(), opts);
    EXPECT_TRUE(server.Start().ok());
    TraceReplayer::Options ropts;
    ropts.speed = 0.0;
    ropts.queue_budget_seconds = 0.0;  // no expiry
    ropts.collect_answers = true;
    TraceReplayer replayer(ropts);
    Result<TraceReplayer::Report> report = replayer.Replay(trace, &server);
    EXPECT_TRUE(report.ok());
    server.Stop();
    return std::move(*report);
  };

  TraceReplayer::Report first = run();
  TraceReplayer::Report second = run();
  ASSERT_EQ(first.answers.size(), trace.size());
  ASSERT_EQ(second.answers.size(), trace.size());
  EXPECT_EQ(first.offered, first.accepted);  // capacity covered the trace
  EXPECT_EQ(first.rejected, 0u);
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(DecisionFingerprint(first.answers[i]),
              DecisionFingerprint(second.answers[i]))
        << "answer " << i << " diverged between runs";
  }
  // Per-tenant accounting covers the whole offered load.
  uint64_t tenant_total = 0;
  for (const auto& [tenant, outcome] : first.tenants) {
    tenant_total += outcome.offered;
    EXPECT_EQ(outcome.offered, outcome.accepted);
  }
  EXPECT_EQ(tenant_total, first.offered);
}

TEST(TraceReplayerTest, ForecastPolicyScalesUpBeforeTheSurgePeak) {
  LoadFixture fx;
  // A ride-hailing surge: flat base until 60% of the horizon, ramp to 5x
  // peaking at 80%. The Holt trend follows the ramp, so the controller
  // must resize the pool *before* the peak-rate arrival goes by.
  TenantScenario spec = BaseSpec();
  spec.tenant = "surge";
  spec.shape = ScenarioShape::kRideHailSurge;
  spec.base_rate_hz = 150.0;
  spec.peak_multiplier = 5.0;
  spec.duration_seconds = 3.0;
  spec.num_nodes = 25;
  spec.seed = 5;
  spec.k = 1;
  Result<std::vector<TimedQuery>> stream = GenerateScenario(spec);
  ASSERT_TRUE(stream.ok());

  LoadTraceRecorder recorder;
  QueryServer::Options opts;
  opts.initial_workers = 1;
  opts.autoscale_enabled = true;
  opts.autoscale_policy = QueryServer::AutoscalePolicyKind::kForecast;
  opts.autoscale_interval_seconds = 0.05;
  opts.autoscale.min_workers = 1;
  opts.autoscale.max_workers = 4;
  // Base-rate arrivals (150/s = 7.5 per 50 ms interval) fit one worker;
  // the ramp must force a resize.
  opts.autoscale.per_worker_capacity = 12.0;
  opts.queue.capacity = stream->size() + 1;
  opts.submit_observer = recorder.Observer();
  QueryServer server(&fx.net, fx.BaseModel(), opts);

  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
  ASSERT_TRUE(server.Start().ok());
  TraceReplayer::Options ropts;
  ropts.speed = 1.0;  // real time: pacing is the point of this test
  ropts.queue_budget_seconds = 30.0;
  TraceReplayer replayer(ropts);
  Result<TraceReplayer::Report> report = replayer.Replay(*stream, &server);
  ASSERT_TRUE(report.ok());
  server.Stop();
  TraceRecorder::Global().Disable();

  // Peak-arrival timestamp: the enqueue instant of the first offered
  // query at or past 80% of the horizon (the shape's peak).
  std::vector<TimedQuery> offered = recorder.Snapshot();
  ASSERT_EQ(offered.size(), stream->size());
  double peak_offset_s = -1.0;
  for (size_t i = 0; i < stream->size(); ++i) {
    if ((*stream)[i].at_seconds >= 0.8 * spec.duration_seconds) {
      peak_offset_s = offered[i].at_seconds;
      break;
    }
  }
  ASSERT_GT(peak_offset_s, 0.0) << "surge produced no peak arrivals";

  // Scale-up timestamp: the first serve/resize span growing the pool.
  // Recorder timestamps are offsets from its first observation while trace
  // spans are absolute, so rebase resizes against the first submit span.
  double first_scale_up_s = -1.0;
  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  uint64_t first_enqueue_ns = 0;
  for (const TraceEvent& ev : events) {
    if (ev.name == "serve/submit" &&
        (first_enqueue_ns == 0 || ev.start_ns < first_enqueue_ns)) {
      first_enqueue_ns = ev.start_ns;
    }
  }
  ASSERT_GT(first_enqueue_ns, 0u);
  for (const TraceEvent& ev : events) {
    if (ev.name == "serve/resize" && ev.arg > opts.initial_workers) {
      const double at =
          1e-9 * static_cast<double>(ev.start_ns - first_enqueue_ns);
      if (first_scale_up_s < 0.0 || at < first_scale_up_s) {
        first_scale_up_s = at;
      }
    }
  }
  ASSERT_GT(first_scale_up_s, 0.0) << "forecast policy never scaled up";
  EXPECT_LT(first_scale_up_s, peak_offset_s)
      << "pool grew only after the surge peak — pre-scaling failed";
  EXPECT_GT(server.Stats().scale_events, 0);
}

}  // namespace
}  // namespace tsdm
