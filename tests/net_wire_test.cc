// Hostile-input tests for the network front door's two protocols: the
// binary frame codec (round-trips, chunk-split invariance, and a seeded
// byte-flip sweep mirroring tick_parser_test's corpus pattern — the parser
// must never crash, must keep exact byte accounting, and a single flipped
// byte must cost at most one frame) and the incremental HTTP/1.1 parser
// (split-across-read headers, oversized request lines, pipelining, bad
// framing).

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/net/http.h"
#include "src/net/wire.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {
namespace {

RouteQuery SampleQuery(int i) {
  RouteQuery q;
  q.source = 3 + i;
  q.target = 17 + 2 * i;
  q.k = 4;
  q.snapshot_id = i;
  q.depart_seconds = 8 * 3600.0 + i;
  q.arrival_deadline_seconds = q.depart_seconds + 1500.0;
  return q;
}

/// `n` well-formed query frames with distinct ids.
std::vector<uint8_t> CleanFeed(size_t n) {
  std::vector<uint8_t> bytes;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint8_t> payload;
    EncodeRouteQueryPayload(SampleQuery(static_cast<int>(i)), &payload);
    EncodeNetFrame(100 + i, NetOpcode::kRouteQuery, payload.data(),
                   payload.size(), &bytes);
  }
  return bytes;
}

// --- Binary frame codec ---------------------------------------------------

TEST(NetWireTest, FrameRoundTripAllOpcodes) {
  std::vector<uint8_t> bytes;
  EncodeNetFrame(7, NetOpcode::kPing, nullptr, 0, &bytes);

  std::vector<uint8_t> query_payload;
  EncodeRouteQueryPayload(SampleQuery(1), &query_payload);
  ASSERT_EQ(query_payload.size(), kRouteQueryPayloadSize);
  EncodeNetFrame(8, NetOpcode::kRouteQuery, query_payload.data(),
                 query_payload.size(), &bytes);

  RouteAnswer answer;
  answer.status = Status::OK();
  answer.cost_mean_seconds = 123.5;
  answer.on_time_probability = 0.75;
  answer.num_candidates = 3;
  answer.route.edges = {4, 9, 2};
  std::vector<uint8_t> answer_payload;
  EncodeRouteAnswerPayload(answer, &answer_payload);
  EncodeNetFrame(9, NetOpcode::kRouteAnswer, answer_payload.data(),
                 answer_payload.size(), &bytes);

  std::vector<uint8_t> error_payload;
  EncodeErrorPayload(Status::ResourceExhausted("queue full"), &error_payload);
  EncodeNetFrame(10, NetOpcode::kError, error_payload.data(),
                 error_payload.size(), &bytes);

  FrameParser parser;
  std::vector<NetFrame> frames;
  parser.Consume(bytes.data(), bytes.size(), &frames);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(parser.stats().RejectedTotal(), 0u);
  EXPECT_EQ(parser.stats().resync_bytes, 0u);
  EXPECT_EQ(parser.PendingBytes(), 0u);

  EXPECT_EQ(frames[0].request_id, 7u);
  EXPECT_EQ(static_cast<NetOpcode>(frames[0].opcode), NetOpcode::kPing);
  EXPECT_TRUE(frames[0].payload.empty());

  RouteQuery q;
  ASSERT_TRUE(DecodeRouteQueryPayload(frames[1].payload.data(),
                                      frames[1].payload.size(), &q)
                  .ok());
  const RouteQuery want = SampleQuery(1);
  EXPECT_EQ(q.source, want.source);
  EXPECT_EQ(q.target, want.target);
  EXPECT_EQ(q.k, want.k);
  EXPECT_EQ(q.snapshot_id, want.snapshot_id);
  EXPECT_DOUBLE_EQ(q.depart_seconds, want.depart_seconds);
  EXPECT_DOUBLE_EQ(q.arrival_deadline_seconds, want.arrival_deadline_seconds);

  WireRouteAnswer wa;
  ASSERT_TRUE(DecodeRouteAnswerPayload(frames[2].payload.data(),
                                       frames[2].payload.size(), &wa)
                  .ok());
  EXPECT_EQ(wa.status_code, StatusCode::kOk);
  EXPECT_DOUBLE_EQ(wa.cost_mean_seconds, 123.5);
  EXPECT_DOUBLE_EQ(wa.on_time_probability, 0.75);
  EXPECT_EQ(wa.num_candidates, 3);
  EXPECT_EQ(wa.edges, (std::vector<uint32_t>{4, 9, 2}));

  const Status err = DecodeErrorPayload(frames[3].payload.data(),
                                        frames[3].payload.size());
  EXPECT_EQ(err.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(err.message(), "queue full");
}

TEST(NetWireTest, ChunkSplitInvariance) {
  const std::vector<uint8_t> feed = CleanFeed(12);

  FrameParser whole;
  std::vector<NetFrame> whole_frames;
  whole.Consume(feed.data(), feed.size(), &whole_frames);

  // Byte-at-a-time must produce byte-identical frames in order.
  FrameParser drip;
  std::vector<NetFrame> drip_frames;
  for (size_t i = 0; i < feed.size(); ++i) {
    drip.Consume(&feed[i], 1, &drip_frames);
  }
  ASSERT_EQ(whole_frames.size(), 12u);
  ASSERT_EQ(drip_frames.size(), whole_frames.size());
  for (size_t i = 0; i < whole_frames.size(); ++i) {
    EXPECT_EQ(drip_frames[i].request_id, whole_frames[i].request_id);
    EXPECT_EQ(drip_frames[i].opcode, whole_frames[i].opcode);
    EXPECT_EQ(drip_frames[i].payload, whole_frames[i].payload);
  }
  EXPECT_EQ(drip.stats().bytes_consumed, whole.stats().bytes_consumed);
  EXPECT_EQ(drip.PendingBytes(), 0u);
}

TEST(NetWireTest, RejectsBadLengthWithOneByteResync) {
  // A frame claiming a body smaller than the fixed request id + opcode
  // prefix is structurally impossible; it must be rejected by length, not
  // CRC, and the intact frame behind it must survive.
  std::vector<uint8_t> feed;
  feed.push_back(kNetFrameMagic);
  feed.push_back(4);  // body_len 4 < kNetBodyMinSize
  feed.push_back(0);
  feed.push_back(0);
  feed.push_back(0);
  EncodeNetFrame(42, NetOpcode::kPing, nullptr, 0, &feed);

  FrameParser parser;
  std::vector<NetFrame> frames;
  parser.Consume(feed.data(), feed.size(), &frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].request_id, 42u);
  EXPECT_GE(parser.stats().rejected_bad_length, 1u);
  EXPECT_EQ(parser.last_error().code(), StatusCode::kInvalidArgument);
}

TEST(NetWireTest, SeededByteFlipSweepLosesAtMostOneFrame) {
  const size_t kFrames = 16;
  const std::vector<uint8_t> clean = CleanFeed(kFrames);
  const size_t frame_size =
      kNetFrameOverhead + kNetBodyMinSize + kRouteQueryPayloadSize;
  ASSERT_EQ(clean.size(), kFrames * frame_size);

  Rng rng(4321);
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<uint8_t> feed = clean;
    const size_t pos = static_cast<size_t>(
        rng.Int(0, static_cast<int>(feed.size()) - 1));
    const uint8_t flip = static_cast<uint8_t>(rng.Int(1, 255));
    feed[pos] ^= flip;

    FrameParser parser;
    std::vector<NetFrame> frames;
    parser.Consume(feed.data(), feed.size(), &frames);
    // A flipped length byte can leave the parser waiting for a claimed
    // extent that never arrives, with intact frames queued behind it.
    // Flush with enough non-magic bytes to complete any claimable extent
    // (max body + framing); the claim then fails its CRC and the queued
    // frames parse.
    const std::vector<uint8_t> flush(kNetBodyMaxSize + kNetFrameOverhead, 0);
    parser.Consume(flush.data(), flush.size(), &frames);

    // CRC-32 detects every single-byte corruption and resynchronization
    // advances one byte at a time, so exactly the damaged frame is lost.
    EXPECT_EQ(frames.size(), kFrames - 1)
        << "trial=" << trial << " pos=" << pos << " flip=" << int{flip};
    EXPECT_EQ(parser.stats().frames_accepted, kFrames - 1);
    // The damage surfaced as a typed rejection or as resync debris, never
    // silently.
    EXPECT_TRUE(parser.stats().RejectedTotal() > 0 ||
                parser.stats().resync_bytes > 0)
        << "trial=" << trial;
    // Exact byte conservation: every consumed byte is inside an accepted
    // frame, counted as resync debris, or still pending.
    const uint64_t accepted_bytes =
        parser.stats().frames_accepted * frame_size;
    EXPECT_EQ(parser.stats().bytes_consumed,
              accepted_bytes + parser.stats().resync_bytes +
                  parser.PendingBytes())
        << "trial=" << trial << " pos=" << pos;
    // The intact neighbors all survive, ids preserved in order.
    const size_t damaged = pos / frame_size;
    size_t j = 0;
    for (size_t i = 0; i < kFrames; ++i) {
      if (i == damaged) continue;
      ASSERT_LT(j, frames.size());
      EXPECT_EQ(frames[j].request_id, 100 + i) << "trial=" << trial;
      ++j;
    }
  }
}

TEST(NetWireTest, GarbageStreamNeverAcceptsAndStaysBounded) {
  Rng rng(99);
  FrameParser parser;
  std::vector<NetFrame> frames;
  for (int i = 0; i < 200; ++i) {
    uint8_t junk[64];
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Int(0, 255));
    }
    parser.Consume(junk, sizeof(junk), &frames);
    // Pending is bounded by the largest claimable frame.
    EXPECT_LE(parser.PendingBytes(), kNetBodyMaxSize + kNetFrameOverhead);
  }
  // Random junk essentially never passes a CRC-32 (the seeded stream must
  // not); everything lands in resync/rejections/pending.
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(parser.stats().bytes_consumed,
            parser.stats().resync_bytes + parser.PendingBytes());
}

// --- HTTP parser ----------------------------------------------------------

TEST(NetHttpTest, ParsesRequestSplitAcrossReads) {
  const std::string raw =
      "POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
      "Content-Length: 13\r\n\r\n{\"source\": 1}";
  HttpParser parser;
  HttpRequest req;
  // Feed one byte at a time: every prefix must say kNeedMore, the full
  // request must parse exactly once.
  for (size_t i = 0; i + 1 < raw.size(); ++i) {
    parser.Feed(reinterpret_cast<const uint8_t*>(&raw[i]), 1);
    ASSERT_EQ(parser.Next(&req), HttpParser::Result::kNeedMore)
        << "after byte " << i;
  }
  parser.Feed(reinterpret_cast<const uint8_t*>(&raw[raw.size() - 1]), 1);
  ASSERT_EQ(parser.Next(&req), HttpParser::Result::kRequest);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/query");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.Header("content-type"), "application/json");
  EXPECT_EQ(req.body, "{\"source\": 1}");
  EXPECT_EQ(parser.Next(&req), HttpParser::Result::kNeedMore);
  EXPECT_EQ(parser.BufferedBytes(), 0u);
}

TEST(NetHttpTest, PipelinedSecondRequestParsesFromLeftoverBytes) {
  const std::string raw =
      "GET /health HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpParser parser;
  parser.Feed(reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
  HttpRequest first, second;
  ASSERT_EQ(parser.Next(&first), HttpParser::Result::kRequest);
  EXPECT_EQ(first.target, "/health");
  ASSERT_EQ(parser.Next(&second), HttpParser::Result::kRequest);
  EXPECT_EQ(second.target, "/metrics");
  EXPECT_EQ(parser.Next(&second), HttpParser::Result::kNeedMore);
}

TEST(NetHttpTest, OversizedRequestLineIsTooLarge) {
  HttpParser parser;
  const std::string line = "GET /" + std::string(8192, 'a');
  parser.Feed(reinterpret_cast<const uint8_t*>(line.data()), line.size());
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), HttpParser::Result::kTooLarge);
  // Terminal until Reset: more bytes do not resurrect the connection.
  parser.Feed(reinterpret_cast<const uint8_t*>("\r\n\r\n"), 4);
  EXPECT_EQ(parser.Next(&req), HttpParser::Result::kTooLarge);
  parser.Reset();
  const std::string ok = "GET / HTTP/1.1\r\n\r\n";
  parser.Feed(reinterpret_cast<const uint8_t*>(ok.data()), ok.size());
  EXPECT_EQ(parser.Next(&req), HttpParser::Result::kRequest);
}

TEST(NetHttpTest, MalformedRequestLineAndContentLengthAreBadRequests) {
  {
    HttpParser parser;
    const std::string raw = "NOSPACES\r\n\r\n";
    parser.Feed(reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
    HttpRequest req;
    EXPECT_EQ(parser.Next(&req), HttpParser::Result::kBadRequest);
  }
  {
    HttpParser parser;
    const std::string raw =
        "POST /query HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    parser.Feed(reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
    HttpRequest req;
    EXPECT_EQ(parser.Next(&req), HttpParser::Result::kBadRequest);
  }
}

TEST(NetHttpTest, OversizedBodyIsTooLarge) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  const std::string raw =
      "POST /query HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
  parser.Feed(reinterpret_cast<const uint8_t*>(raw.data()), raw.size());
  HttpRequest req;
  EXPECT_EQ(parser.Next(&req), HttpParser::Result::kTooLarge);
}

TEST(NetHttpTest, ExtractJsonNumberHandlesFlatBodies) {
  const std::string body =
      "{\"source\": 3, \"target\":17, \"depart_seconds\": 28800.5, "
      "\"k\": 4}";
  double v = 0;
  EXPECT_TRUE(ExtractJsonNumber(body, "source", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
  EXPECT_TRUE(ExtractJsonNumber(body, "target", &v));
  EXPECT_DOUBLE_EQ(v, 17.0);
  EXPECT_TRUE(ExtractJsonNumber(body, "depart_seconds", &v));
  EXPECT_DOUBLE_EQ(v, 28800.5);
  EXPECT_FALSE(ExtractJsonNumber(body, "missing", &v));
  EXPECT_FALSE(ExtractJsonNumber("{\"source\": \"three\"}", "source", &v));
}

TEST(NetHttpTest, SplitTargetSeparatesPathAndQuery) {
  std::string path, query;
  SplitTarget("/debug/traces?n=5", &path, &query);
  EXPECT_EQ(path, "/debug/traces");
  EXPECT_EQ(query, "n=5");
  SplitTarget("/metrics", &path, &query);
  EXPECT_EQ(path, "/metrics");
  EXPECT_EQ(query, "");
  // Only the first '?' splits; the rest belongs to the query string.
  SplitTarget("/a?b=1?c=2", &path, &query);
  EXPECT_EQ(path, "/a");
  EXPECT_EQ(query, "b=1?c=2");
  // A bare trailing '?' leaves an empty query, not a missing one.
  SplitTarget("/a?", &path, &query);
  EXPECT_EQ(path, "/a");
  EXPECT_EQ(query, "");
}

TEST(NetHttpTest, ParseQueryParamU64AcceptsOnlyCleanIntegers) {
  uint64_t v = 0;
  EXPECT_EQ(ParseQueryParamU64("n=5", "n", &v), QueryParamResult::kOk);
  EXPECT_EQ(v, 5u);
  EXPECT_EQ(ParseQueryParamU64("a=1&n=42&b=2", "n", &v),
            QueryParamResult::kOk);
  EXPECT_EQ(v, 42u);
  // First occurrence wins.
  EXPECT_EQ(ParseQueryParamU64("n=7&n=9", "n", &v), QueryParamResult::kOk);
  EXPECT_EQ(v, 7u);
  // The full uint64 range round-trips.
  EXPECT_EQ(ParseQueryParamU64("n=18446744073709551615", "n", &v),
            QueryParamResult::kOk);
  EXPECT_EQ(v, UINT64_MAX);

  // Absent: the key simply is not there (a prefix match is not a match).
  EXPECT_EQ(ParseQueryParamU64("", "n", &v), QueryParamResult::kAbsent);
  EXPECT_EQ(ParseQueryParamU64("m=3", "n", &v), QueryParamResult::kAbsent);
  EXPECT_EQ(ParseQueryParamU64("nn=3", "n", &v), QueryParamResult::kAbsent);

  // Every hostile shape is kBad — the typed-400 bucket.
  EXPECT_EQ(ParseQueryParamU64("n", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=abc", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=5x", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=-1", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=+1", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=1.5", "n", &v), QueryParamResult::kBad);
  EXPECT_EQ(ParseQueryParamU64("n=18446744073709551616", "n", &v),
            QueryParamResult::kBad);  // UINT64_MAX + 1 overflows
}

TEST(NetHttpTest, WriteHttpResponseFramesBody) {
  std::vector<uint8_t> out;
  WriteHttpResponse(200, "application/json", "{\"a\":1}", &out);
  const std::string text(out.begin(), out.end());
  EXPECT_EQ(text.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(text.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/json\r\n"),
            std::string::npos);
  const size_t body_at = text.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(text.substr(body_at + 4), "{\"a\":1}");
}

}  // namespace
}  // namespace tsdm
