#include <cmath>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/governance/uncertainty/gmm.h"
#include "src/governance/uncertainty/time_varying.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"

namespace tsdm {
namespace {

TEST(GmmTest, FitValidation) {
  EXPECT_FALSE(GaussianMixture::Fit({1.0}, 2).ok());
  EXPECT_FALSE(GaussianMixture::Fit({1.0, 2.0}, 0).ok());
}

TEST(GmmTest, RecoversTwoWellSeparatedModes) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) {
    samples.push_back(i % 2 == 0 ? rng.Normal(0.0, 1.0)
                                 : rng.Normal(20.0, 1.0));
  }
  Result<GaussianMixture> gmm = GaussianMixture::Fit(samples, 2);
  ASSERT_TRUE(gmm.ok());
  double lo_mean = std::min(gmm->component(0).mean, gmm->component(1).mean);
  double hi_mean = std::max(gmm->component(0).mean, gmm->component(1).mean);
  EXPECT_NEAR(lo_mean, 0.0, 0.5);
  EXPECT_NEAR(hi_mean, 20.0, 0.5);
  EXPECT_NEAR(gmm->component(0).weight + gmm->component(1).weight, 1.0,
              1e-9);
  EXPECT_NEAR(gmm->Mean(), 10.0, 0.5);
}

TEST(GmmTest, MixtureBeatsSingleGaussianOnBimodalData) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 1500; ++i) {
    samples.push_back(i % 2 == 0 ? rng.Normal(-5.0, 1.0)
                                 : rng.Normal(5.0, 1.0));
  }
  Result<GaussianMixture> g1 = GaussianMixture::Fit(samples, 1);
  Result<GaussianMixture> g2 = GaussianMixture::Fit(samples, 2);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_GT(g2->AverageLogLikelihood(samples),
            g1->AverageLogLikelihood(samples) + 0.3);
}

TEST(GmmTest, CdfMonotoneAndSamplingConsistent) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(rng.Normal(3.0, 2.0));
  Result<GaussianMixture> gmm = GaussianMixture::Fit(samples, 2);
  ASSERT_TRUE(gmm.ok());
  double prev = -1.0;
  for (double x = -5.0; x < 11.0; x += 0.5) {
    double c = gmm->Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  std::vector<double> drawn;
  for (int i = 0; i < 4000; ++i) drawn.push_back(gmm->Sample(&rng));
  EXPECT_NEAR(Mean(drawn), gmm->Mean(), 0.2);
}

TEST(TimeVaryingTest, SlotsPartitionTheDay) {
  TimeVaryingDistribution tvd(24);
  EXPECT_EQ(tvd.SlotFor(0.0), 0);
  EXPECT_EQ(tvd.SlotFor(3600.0 * 23.5), 23);
  EXPECT_EQ(tvd.SlotFor(86400.0 + 1800.0), 0);  // wraps
  EXPECT_EQ(tvd.SlotFor(-1800.0), 23);          // wraps negative
}

TEST(TimeVaryingTest, PerSlotDistributionsDiffer) {
  Rng rng(4);
  TimeVaryingDistribution tvd(24);
  // Morning slot (8h) slow, night slot (3h) fast.
  for (int i = 0; i < 500; ++i) {
    tvd.AddObservation(8.0 * 3600, rng.Normal(100.0, 5.0));
    tvd.AddObservation(3.0 * 3600, rng.Normal(40.0, 5.0));
  }
  ASSERT_TRUE(tvd.Build(32).ok());
  EXPECT_GT(tvd.DistributionAt(8.0 * 3600).Mean(), 90.0);
  EXPECT_LT(tvd.DistributionAt(3.0 * 3600).Mean(), 50.0);
  // An empty slot borrows the global distribution (between the two).
  double noon = tvd.DistributionAt(12.0 * 3600).Mean();
  EXPECT_GT(noon, 50.0);
  EXPECT_LT(noon, 90.0);
}

TEST(TimeVaryingTest, BuildWithoutDataFails) {
  TimeVaryingDistribution tvd(4);
  EXPECT_FALSE(tvd.Build().ok());
}

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(7);
    GridNetworkSpec gspec;
    gspec.rows = 6;
    gspec.cols = 6;
    net_ = GenerateGridNetwork(gspec, rng_.get());
    TrafficSpec tspec;
    tspec.shared_fraction = 0.7;  // strongly correlated congestion
    sim_ = std::make_unique<TrafficSimulator>(&net_, tspec);
    path_ = RandomPath(net_, 8, 100, rng_.get());
    ASSERT_FALSE(path_.empty());

    // Train both models on the same simulated trips over the whole network.
    edge_model_ = std::make_unique<EdgeCentricModel>(
        static_cast<int>(net_.NumEdges()), 24);
    path_model_ = std::make_unique<PathCentricModel>(24, 6);
    for (int i = 0; i < 400; ++i) {
      std::vector<int> p =
          i % 3 == 0 ? path_ : RandomPath(net_, 4, 20, rng_.get());
      if (p.empty()) continue;
      TripObservation trip;
      trip.edge_path = p;
      trip.depart_seconds = 8.0 * 3600;
      trip.edge_times =
          sim_->SamplePathEdgeTimes(p, trip.depart_seconds, rng_.get());
      edge_model_->AddTrip(trip);
      path_model_->AddTrip(trip);
    }
    ASSERT_TRUE(edge_model_->Build(32).ok());
    ASSERT_TRUE(path_model_->Build(32, 20).ok());
  }

  std::unique_ptr<Rng> rng_;
  RoadNetwork net_;
  std::unique_ptr<TrafficSimulator> sim_;
  std::vector<int> path_;
  std::unique_ptr<EdgeCentricModel> edge_model_;
  std::unique_ptr<PathCentricModel> path_model_;
};

TEST_F(CostModelTest, BothModelsEstimateTheMean) {
  // Ground truth by Monte Carlo.
  std::vector<double> truth;
  for (int i = 0; i < 2000; ++i) {
    truth.push_back(sim_->SamplePathTime(path_, 8.0 * 3600, rng_.get()));
  }
  Result<Histogram> e =
      edge_model_->PathCostDistribution(path_, 8.0 * 3600);
  Result<Histogram> p =
      path_model_->PathCostDistribution(path_, 8.0 * 3600);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(p.ok());
  double true_mean = Mean(truth);
  EXPECT_NEAR(e->Mean(), true_mean, 0.15 * true_mean);
  EXPECT_NEAR(p->Mean(), true_mean, 0.15 * true_mean);
}

TEST_F(CostModelTest, PathCentricCapturesMoreVariance) {
  // The edge-centric independence assumption underestimates the variance of
  // correlated path costs; the path-centric model gets closer to the truth.
  std::vector<double> truth;
  for (int i = 0; i < 3000; ++i) {
    truth.push_back(sim_->SamplePathTime(path_, 8.0 * 3600, rng_.get()));
  }
  double true_sd = Stdev(truth);
  Histogram e = *edge_model_->PathCostDistribution(path_, 8.0 * 3600);
  Histogram p = *path_model_->PathCostDistribution(path_, 8.0 * 3600);
  EXPECT_LT(e.Stdev(), true_sd);                 // underestimates
  EXPECT_GT(p.Stdev(), e.Stdev());               // path-centric is wider
  EXPECT_LT(std::fabs(p.Stdev() - true_sd),
            std::fabs(e.Stdev() - true_sd));     // and closer to truth
}

TEST_F(CostModelTest, PathCentricUsesFewerPieces) {
  int pieces = path_model_->CoverSize(path_);
  ASSERT_GT(pieces, 0);
  EXPECT_LT(pieces, static_cast<int>(path_.size()));
  EXPECT_GT(path_model_->NumLearnedSubpaths(), net_.NumEdges() / 4);
}

TEST_F(CostModelTest, UnknownEdgeIsNotFound) {
  EXPECT_FALSE(edge_model_->PathCostDistribution({-1}, 0.0).ok());
  EXPECT_EQ(
      edge_model_->EdgeDistribution(static_cast<int>(net_.NumEdges()) - 1,
                                    0.0)
              .ok() ||
          true,
      true);  // may or may not be observed; just must not crash
  PathCentricModel empty_model;
  EXPECT_FALSE(empty_model.PathCostDistribution({0}, 0.0).ok());
}

}  // namespace
}  // namespace tsdm
