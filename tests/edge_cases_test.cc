/// Failure-injection and degenerate-input tests: constant signals, empty
/// and near-empty inputs, extreme values, disconnected graphs. Robust
/// error handling on these inputs is what separates a library from a
/// research script.

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "src/analytics/anomaly/detector.h"
#include "src/analytics/automl/search.h"
#include "src/analytics/classify/classifier.h"
#include "src/analytics/forecast/decompose.h"
#include "src/analytics/forecast/forecaster.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/pipeline.h"
#include "src/decision/multiobj/pareto.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/governance/imputation/imputer.h"
#include "src/governance/uncertainty/gmm.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {
namespace {

// ---------- Constant signals ---------------------------------------------

TEST(ConstantSignalTest, ForecastersHandleConstantHistory) {
  std::vector<double> flat(200, 7.0);
  // Every forecaster must either fit & predict the constant, or fail
  // cleanly — never crash or return garbage.
  std::vector<std::unique_ptr<Forecaster>> models;
  models.push_back(std::make_unique<NaiveForecaster>());
  models.push_back(std::make_unique<SeasonalNaiveForecaster>(24));
  models.push_back(std::make_unique<ArForecaster>(4));
  models.push_back(std::make_unique<HoltWintersForecaster>(24));
  models.push_back(std::make_unique<RidgeDirectForecaster>(16, 6));
  models.push_back(std::make_unique<DecomposedForecaster>(24));
  for (const auto& model : models) {
    Status st = model->Fit(flat);
    if (!st.ok()) continue;
    Result<std::vector<double>> fc = model->Forecast(6);
    ASSERT_TRUE(fc.ok()) << model->Name();
    for (double v : *fc) {
      EXPECT_NEAR(v, 7.0, 0.5) << model->Name();
    }
  }
}

TEST(ConstantSignalTest, DetectorsScoreConstantDataWithoutBlowingUp) {
  std::vector<double> flat(300, 5.0);
  ZScoreDetector z;
  MadDetector mad;
  ASSERT_TRUE(z.Fit(flat).ok());
  ASSERT_TRUE(mad.Fit(flat).ok());
  for (AnomalyDetector* d : std::vector<AnomalyDetector*>{&z, &mad}) {
    Result<std::vector<double>> s = d->Score(flat);
    ASSERT_TRUE(s.ok());
    for (double v : *s) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(ConstantSignalTest, GmmFitsConstantSamples) {
  std::vector<double> flat(100, 3.0);
  Result<GaussianMixture> gmm = GaussianMixture::Fit(flat, 2);
  ASSERT_TRUE(gmm.ok());
  EXPECT_NEAR(gmm->Mean(), 3.0, 1e-6);
  EXPECT_TRUE(std::isfinite(gmm->Pdf(3.0)));
}

TEST(ConstantSignalTest, HistogramOfIdenticalSamples) {
  Result<Histogram> h = Histogram::FromSamples(std::vector<double>(50, 9.0),
                                               16);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->Mean(), 9.0, 0.5);
  EXPECT_EQ(h->Cdf(10.0), 1.0);
  EXPECT_EQ(h->Cdf(8.0), 0.0);
}

// ---------- Extreme values ------------------------------------------------

TEST(ExtremeValueTest, StatsSurviveHugeMagnitudes) {
  std::vector<double> v = {1e15, -1e15, 1e15, -1e15};
  EXPECT_TRUE(std::isfinite(Mean(v)));
  EXPECT_TRUE(std::isfinite(Stdev(v)));
  EXPECT_TRUE(std::isfinite(Median(v)));
}

TEST(ExtremeValueTest, ImputersHandleAllMissingChannel) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 50, 2);
  for (size_t t = 0; t < 50; ++t) {
    ts.Set(t, 0, static_cast<double>(t));
    ts.Set(t, 1, kMissingValue);  // channel 1 entirely missing
  }
  // Temporal imputers cannot invent data for an empty channel but must not
  // corrupt the good channel or crash.
  for (auto make :
       {+[]() -> Imputer* { return new LinearInterpolationImputer; },
        +[]() -> Imputer* { return new MeanImputer; },
        +[]() -> Imputer* { return new ArBackcastImputer(4); }}) {
    std::unique_ptr<Imputer> imputer(make());
    TimeSeries copy = ts;
    ASSERT_TRUE(imputer->Impute(&copy).ok()) << imputer->Name();
    for (size_t t = 0; t < 50; ++t) {
      EXPECT_EQ(copy.At(t, 0), static_cast<double>(t)) << imputer->Name();
    }
  }
  // Cross-channel kNN *can* reconstruct it from the correlated channel 0.
  TimeSeries knn_copy = ts;
  ASSERT_TRUE(KnnChannelImputer(1).Impute(&knn_copy).ok());
}

TEST(ExtremeValueTest, QuantileClampsOutOfRangeQ) {
  std::vector<double> v = {1, 2, 3};
  EXPECT_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_EQ(Quantile(v, 2.0), 3.0);
}

// ---------- Disconnected / degenerate graphs ------------------------------

TEST(DegenerateGraphTest, RoutingOnDisconnectedComponents) {
  RoadNetwork net;
  int a = net.AddNode(0, 0);
  int b = net.AddNode(1, 0);
  int c = net.AddNode(10, 10);  // isolated island
  int d = net.AddNode(11, 10);
  net.AddEdge(a, b, 10.0);
  net.AddEdge(c, d, 10.0);
  EXPECT_FALSE(ShortestPath(net, a, c, FreeFlowTimeCost(net)).ok());
  EXPECT_FALSE(KShortestPaths(net, a, c, 3, FreeFlowTimeCost(net)).ok());
  std::vector<double> dist = ShortestPathTree(net, a, LengthCost(net));
  EXPECT_FALSE(std::isfinite(dist[c]));
  Result<std::vector<SkylinePath>> skyline =
      SkylineRoutes(net, a, c, {FreeFlowTimeCost(net)});
  EXPECT_FALSE(skyline.ok());
  EXPECT_EQ(skyline.status().code(), StatusCode::kNotFound);
}

TEST(DegenerateGraphTest, SingleNodeNetwork) {
  RoadNetwork net;
  net.AddNode(0, 0);
  EXPECT_TRUE(net.OutEdges(0).empty());
  Result<Path> p = ShortestPath(net, 0, 0, FreeFlowTimeCost(net));
  // Source == target: the trivial empty path with zero cost.
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->cost, 0.0);
  EXPECT_TRUE(p->edges.empty());
}

TEST(DegenerateGraphTest, RouterWithAlwaysFailingCostModel) {
  Rng rng(1);
  RoadNetwork net;
  int a = net.AddNode(0, 0);
  int b = net.AddNode(100, 0);
  net.AddEdge(a, b, 10.0);
  StochasticRouter router(&net, [](const std::vector<int>&, double) {
    return Result<Histogram>(Status::NotFound("no data"));
  });
  Result<std::vector<RouteCandidate>> candidates =
      router.Candidates(a, b, 3, 0.0);
  EXPECT_FALSE(candidates.ok());
  EXPECT_EQ(candidates.status().code(), StatusCode::kNotFound);
}

// ---------- Tiny inputs ----------------------------------------------------

TEST(TinyInputTest, SearchOnVeryShortSeriesDoesNotCrash) {
  std::vector<double> tiny = {1.0, 2.0, 1.5, 2.5, 1.0, 2.0};
  auto space = DefaultSearchSpace(24);
  // Most configs cannot fit; scores must be inf rather than UB.
  for (const auto& cfg : space) {
    double score = RollingOriginScore(cfg, tiny, 2, 2);
    EXPECT_TRUE(score > 0.0 || std::isinf(score));
  }
}

TEST(TinyInputTest, ClassifierSingleExamplePerClass) {
  std::vector<LabeledSeries> train = {
      {{1, 1, 1, 1, 1, 1, 1, 1}, 0},
      {{9, 9, 9, 9, 9, 9, 9, 9}, 1},
  };
  LogisticClassifier model;
  ASSERT_TRUE(model.Fit(train).ok());
  Result<int> pred = model.Predict({1.2, 1.1, 0.9, 1.0, 1.0, 1.1, 0.9, 1.0});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(*pred, 0);
}

TEST(TinyInputTest, ParetoFrontOfSingletonAndEmpty) {
  EXPECT_TRUE(ParetoFront({}).empty());
  std::vector<size_t> front = ParetoFront({{1.0, 2.0}});
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0], 0u);
}

TEST(TinyInputTest, PipelineOnEmptyDataFailsGracefully) {
  PipelineContext ctx;  // default-constructed: zero sensors, zero steps
  Pipeline pipeline;
  pipeline.Emplace<ImputeStage>().Emplace<ForecastStage>(4, 6);
  PipelineReport report = pipeline.Run(&ctx);
  EXPECT_FALSE(report.ok());  // forecast stage reports no sensor forecast
  EXPECT_FALSE(report.ToString().empty());
}

// ---------- NaN resistance -------------------------------------------------

TEST(NanTest, QualityReportOnAllMissingSeries) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 10, 1);
  for (size_t t = 0; t < 10; ++t) ts.Set(t, 0, kMissingValue);
  RangeRule range{0.0, 1.0};
  QualityReport report = AssessQuality(ts, &range);
  EXPECT_EQ(report.channels[0].missing, 10u);
  EXPECT_DOUBLE_EQ(report.missing_rate, 1.0);
}

TEST(NanTest, CleanSeriesOnAllMissingIsNoOp) {
  TimeSeries ts = TimeSeries::Regular(0, 1, 10, 1);
  for (size_t t = 0; t < 10; ++t) ts.Set(t, 0, kMissingValue);
  RangeRule range{0.0, 1.0};
  EXPECT_EQ(CleanSeries(&ts, range), 0u);
}

}  // namespace
}  // namespace tsdm
