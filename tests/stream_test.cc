#include "src/stream/stream_buffer.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/anomaly/detector.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/core/stream_bridge.h"
#include "src/stream/stream_pipeline.h"
#include "src/stream/stream_stage.h"

namespace tsdm {
namespace {

// ---------------------------------------------------------------- buffer

TEST(StreamBufferTest, RingWraparoundRetainsNewest) {
  StreamBuffer buf(1, 4, DropPolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(buf.Push(0, i, static_cast<double>(i)));
  }
  EXPECT_EQ(buf.SensorFill(0), 4u);
  std::vector<double> values;
  std::vector<int64_t> timestamps;
  buf.SnapshotSensor(0, &values, &timestamps);
  ASSERT_EQ(values.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(values[i], 6.0 + i);  // the last four, in order
    EXPECT_EQ(timestamps[i], 6 + i);
  }
}

TEST(StreamBufferTest, DropNewestRejectsWhenFull) {
  StreamBuffer buf(1, 4, DropPolicy::kDropNewest);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(buf.Push(0, i, 1.0 + i));
  EXPECT_FALSE(buf.Push(0, 4, 5.0));  // rejected, ring keeps 1..4
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.accepted(), 4u);
  Tick t;
  ASSERT_TRUE(buf.Poll(&t));
  EXPECT_DOUBLE_EQ(t.value, 1.0);  // the oldest survived
}

TEST(StreamBufferTest, DropOldestEvictsOldestUnconsumed) {
  StreamBuffer buf(1, 4, DropPolicy::kDropOldest);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(buf.Push(0, i, 1.0 + i));
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.accepted(), 5u);
  EXPECT_EQ(buf.NumUnconsumed(), 4u);
  Tick t;
  ASSERT_TRUE(buf.Poll(&t));
  EXPECT_DOUBLE_EQ(t.value, 2.0);  // tick 1 was evicted
}

TEST(StreamBufferTest, PerSensorFifoAndRoundRobinAcrossSensors) {
  StreamBuffer buf(3, 8, DropPolicy::kDropOldest);
  for (int i = 0; i < 4; ++i) {
    for (size_t s = 0; s < 3; ++s) {
      ASSERT_TRUE(buf.Push(s, i, static_cast<double>(10 * s + i)));
    }
  }
  std::vector<int> next(3, 0);
  Tick t;
  size_t polled = 0;
  while (buf.Poll(&t)) {
    // Per-sensor order must be exactly FIFO regardless of interleaving.
    EXPECT_DOUBLE_EQ(t.value, 10.0 * t.sensor + next[t.sensor]);
    ++next[t.sensor];
    ++polled;
  }
  EXPECT_EQ(polled, 12u);
  for (int n : next) EXPECT_EQ(n, 4);
}

TEST(StreamBufferTest, SnapshotRetainsConsumedTicks) {
  StreamBuffer buf(1, 8, DropPolicy::kDropOldest);
  for (int i = 0; i < 5; ++i) buf.Push(0, i, 1.0 + i);
  Tick t;
  while (buf.Poll(&t)) {
  }
  EXPECT_EQ(buf.NumUnconsumed(), 0u);
  std::vector<double> values;
  buf.SnapshotSensor(0, &values);
  EXPECT_EQ(values.size(), 5u);  // retention survives consumption
}

TEST(StreamBufferTest, OutOfRangeSensorRejected) {
  StreamBuffer buf(2, 4);
  EXPECT_FALSE(buf.Push(2, 0, 1.0));
  EXPECT_EQ(buf.accepted(), 0u);
}

// Multi-producer ingestion with a concurrent consumer and snapshotter —
// the TSan target: every tick must be either polled or counted dropped.
TEST(StreamBufferTest, MultiProducerAccountingUnderConcurrency) {
  constexpr size_t kSensors = 8;
  constexpr int kProducers = 4;
  constexpr int kTicksPerProducer = 5000;
  StreamBuffer buf(kSensors, 64, DropPolicy::kDropOldest);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> polled{0};
  std::thread consumer([&] {
    Tick t;
    while (true) {
      if (buf.Poll(&t)) {
        polled.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        if (!buf.Poll(&t)) break;
        polled.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::thread snapshotter([&] {
    std::vector<double> values;
    while (!done.load(std::memory_order_acquire)) {
      for (size_t s = 0; s < kSensors; ++s) buf.SnapshotSensor(s, &values);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kTicksPerProducer; ++i) {
        buf.Push(static_cast<size_t>(i) % kSensors, i,
                 static_cast<double>(p * kTicksPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();
  snapshotter.join();

  uint64_t total = static_cast<uint64_t>(kProducers) * kTicksPerProducer;
  EXPECT_EQ(buf.accepted(), total);  // kDropOldest always admits
  EXPECT_EQ(polled.load() + buf.dropped(), total);
}

// -------------------------------------------------------------- pipeline

TEST(StreamPipelineTest, RequiresReset) {
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>();
  TickRecord rec;
  EXPECT_EQ(pipeline.ProcessTick(&rec).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pipeline.Reset(2).ok());
  EXPECT_TRUE(pipeline.ProcessTick(Tick{0, 0, 1.0}).ok());
}

TEST(StreamPipelineTest, MetricsCoverEveryStageAndTick) {
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>()
      .Emplace<OnlineAnomalyStage>()
      .Emplace<OnlineForecastStage>();
  ASSERT_TRUE(pipeline.Reset(2).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        pipeline.ProcessTick(Tick{static_cast<size_t>(i % 2), i, 0.5 * i})
            .ok());
  }
  EXPECT_EQ(pipeline.ticks_processed(), 100u);
  EXPECT_EQ(pipeline.tick_latency().count(), 100u);
  ASSERT_EQ(pipeline.metrics().stages().size(), 3u);
  for (const auto& [name, metrics] : pipeline.metrics().stages()) {
    EXPECT_EQ(metrics.invocations, 100u) << name;
    EXPECT_EQ(metrics.failures, 0u) << name;
    EXPECT_EQ(metrics.latency.count(), 100u) << name;
  }
}

TEST(StreamPipelineTest, StageFailureIsCountedAndReturned) {
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>();
  ASSERT_TRUE(pipeline.Reset(1).ok());
  EXPECT_EQ(pipeline.ProcessTick(Tick{5, 0, 1.0}).code(),
            StatusCode::kOutOfRange);
  const auto& stages = pipeline.metrics().stages();
  EXPECT_EQ(stages.at("stream/stats").failures, 1u);
  EXPECT_EQ(pipeline.ticks_processed(), 0u);
}

TEST(StreamPipelineTest, DrainProcessesEverythingBuffered) {
  StreamBuffer buf(4, 32);
  for (int i = 0; i < 20; ++i) {
    buf.Push(static_cast<size_t>(i) % 4, i, static_cast<double>(i));
  }
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>();
  ASSERT_TRUE(pipeline.Reset(4).ok());
  TickRecord rec;
  EXPECT_EQ(pipeline.Drain(&buf, &rec), 20u);
  EXPECT_EQ(buf.NumUnconsumed(), 0u);
}

// ------------------------------------------------- incremental == batch

std::vector<double> RandomWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = 10.0;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Normal(0.05, 1.0);
    v[i] = x;
  }
  return v;
}

TEST(StreamPropertyTest, WelfordMatchesBatchStats) {
  std::vector<double> data = RandomWalk(500, 11);
  WelfordStatsStage stage;
  ASSERT_TRUE(stage.Reset(1).ok());
  TickRecord rec;
  for (size_t i = 0; i < data.size(); ++i) {
    rec.tick = Tick{0, static_cast<int64_t>(i), data[i]};
    ASSERT_TRUE(stage.OnTick(&rec).ok());
    // The record carries stats over the prefix [0, i] — compare against
    // the batch equivalents on the same prefix.
    std::vector<double> prefix(data.begin(), data.begin() + i + 1);
    EXPECT_EQ(rec.stat_count, i + 1);
    EXPECT_NEAR(rec.mean, Mean(prefix), 1e-9 * (1.0 + std::fabs(rec.mean)));
    EXPECT_NEAR(rec.stdev, Stdev(prefix), 1e-8 * (1.0 + rec.stdev));
  }
}

TEST(StreamPropertyTest, OnlineZScoreMatchesBatchPrefixDetector) {
  std::vector<double> data = RandomWalk(300, 12);
  OnlineAnomalyStage stage(OnlineAnomalyStage::Mode::kZScore);
  ASSERT_TRUE(stage.Reset(1).ok());
  TickRecord rec;
  for (size_t i = 0; i < data.size(); ++i) {
    rec.tick = Tick{0, static_cast<int64_t>(i), data[i]};
    ASSERT_TRUE(stage.OnTick(&rec).ok());
    if (i < 2) continue;  // batch detector needs >= 2 training points
    // The streaming score of tick i is exactly the batch ZScoreDetector
    // fitted on the prefix [0, i) and applied to data[i].
    ZScoreDetector batch;
    std::vector<double> prefix(data.begin(), data.begin() + i);
    ASSERT_TRUE(batch.Fit(prefix).ok());
    Result<std::vector<double>> score =
        batch.Score(std::vector<double>{data[i]});
    ASSERT_TRUE(score.ok());
    EXPECT_NEAR(rec.anomaly_score, (*score)[0],
                1e-8 * (1.0 + rec.anomaly_score))
        << "tick " << i;
  }
}

TEST(StreamPropertyTest, HoltForecastMatchesBatchRecursion) {
  std::vector<double> data = RandomWalk(200, 13);
  const double alpha = 0.3, beta = 0.1;
  OnlineForecastStage stage(alpha, beta);
  ASSERT_TRUE(stage.Reset(1).ok());
  // Reference: the textbook Holt recursion unrolled over the prefix.
  double level = 0.0, trend = 0.0;
  TickRecord rec;
  for (size_t i = 0; i < data.size(); ++i) {
    rec.tick = Tick{0, static_cast<int64_t>(i), data[i]};
    ASSERT_TRUE(stage.OnTick(&rec).ok());
    if (i == 0) {
      level = data[0];
      trend = 0.0;
      EXPECT_TRUE(std::isnan(rec.forecast));
    } else {
      EXPECT_NEAR(rec.forecast, level + trend, 1e-12 * (1.0 + std::fabs(level)));
      EXPECT_NEAR(rec.forecast_error, data[i] - (level + trend),
                  1e-9);
      double new_level = alpha * data[i] + (1.0 - alpha) * (level + trend);
      trend = beta * (new_level - level) + (1.0 - beta) * trend;
      level = new_level;
    }
    EXPECT_NEAR(rec.forecast_next, level + trend,
                1e-12 * (1.0 + std::fabs(level)));
  }
  EXPECT_NEAR(stage.ForecastNext(0), level + trend,
              1e-12 * (1.0 + std::fabs(level)));
}

TEST(StreamPropertyTest, MadModeFlagsInjectedSpike) {
  OnlineAnomalyStage stage(OnlineAnomalyStage::Mode::kMad,
                           /*threshold=*/8.0);
  ASSERT_TRUE(stage.Reset(1).ok());
  Rng rng(14);
  TickRecord rec;
  bool spike_flagged = false;
  uint64_t warmup_alarms = 0;  // EW scale estimate may misfire early on
  for (int i = 0; i < 400; ++i) {
    double value = 50.0 + rng.Normal(0.0, 1.0);
    if (i == 350) value += 80.0;  // the fault
    rec.tick = Tick{0, i, value};
    ASSERT_TRUE(stage.OnTick(&rec).ok());
    if (i == 50) warmup_alarms = stage.alarms();
    if (i == 350) {
      spike_flagged = rec.is_anomaly;
    } else if (i > 50) {
      EXPECT_FALSE(rec.is_anomaly) << "false alarm at tick " << i;
    }
  }
  EXPECT_TRUE(spike_flagged);
  EXPECT_EQ(stage.alarms() - warmup_alarms, 1u);
}

// ---------------------------------------------------------------- bridge

/// Builds the standard three-stage analytics pipeline used by the durable
/// ingestion tier, so snapshot/restore is proven on the exact stage set the
/// WAL replay path depends on.
void BuildAnalyticsPipeline(StreamPipeline* pipeline) {
  pipeline->Emplace<WelfordStatsStage>();
  pipeline->Emplace<OnlineAnomalyStage>(OnlineAnomalyStage::Mode::kMad, 6.0,
                                        0.05);
  pipeline->Emplace<OnlineForecastStage>(0.3, 0.1);
}

TEST(StreamStateTest, SnapshotRestoreRoundTripIsBitwiseExact) {
  const size_t kSensors = 3;
  const size_t kWarmup = 120;  // ticks before the snapshot
  const size_t kAfter = 200;   // ticks replayed on both sides of the fork
  std::vector<double> data = RandomWalk(kWarmup + kAfter, 77);

  StreamPipeline original;
  BuildAnalyticsPipeline(&original);
  ASSERT_TRUE(original.Reset(kSensors).ok());

  TickRecord rec;
  for (size_t i = 0; i < kWarmup; ++i) {
    rec.tick = {i % kSensors, static_cast<int64_t>(i), data[i]};
    ASSERT_TRUE(original.ProcessTick(&rec).ok());
  }

  std::vector<uint8_t> state;
  ASSERT_TRUE(original.SaveState(&state).ok());

  // Restore into an identically-constructed pipeline that never saw the
  // warmup ticks.
  StreamPipeline restored;
  BuildAnalyticsPipeline(&restored);
  ASSERT_TRUE(restored.Reset(kSensors).ok());
  ASSERT_TRUE(restored.RestoreState(state.data(), state.size()).ok());
  EXPECT_EQ(restored.ticks_processed(), kWarmup);

  // Both must now produce bitwise-identical records for every future tick:
  // same anomaly scores and alarm bits, same forecasts — the contract WAL
  // replay recovery is built on.
  TickRecord rec_a, rec_b;
  for (size_t i = kWarmup; i < kWarmup + kAfter; ++i) {
    rec_a.tick = {i % kSensors, static_cast<int64_t>(i), data[i]};
    rec_b.tick = rec_a.tick;
    ASSERT_TRUE(original.ProcessTick(&rec_a).ok());
    ASSERT_TRUE(restored.ProcessTick(&rec_b).ok());
    EXPECT_EQ(rec_a.stat_count, rec_b.stat_count) << i;
    EXPECT_EQ(std::memcmp(&rec_a.mean, &rec_b.mean, sizeof(double)), 0) << i;
    EXPECT_EQ(std::memcmp(&rec_a.stdev, &rec_b.stdev, sizeof(double)), 0)
        << i;
    EXPECT_EQ(std::memcmp(&rec_a.anomaly_score, &rec_b.anomaly_score,
                          sizeof(double)),
              0)
        << i;
    EXPECT_EQ(rec_a.is_anomaly, rec_b.is_anomaly) << i;
    EXPECT_EQ(std::memcmp(&rec_a.forecast_next, &rec_b.forecast_next,
                          sizeof(double)),
              0)
        << i;
  }

  // And the end states serialize identically.
  std::vector<uint8_t> end_a, end_b;
  ASSERT_TRUE(original.SaveState(&end_a).ok());
  ASSERT_TRUE(restored.SaveState(&end_b).ok());
  ASSERT_EQ(end_a.size(), end_b.size());
  EXPECT_EQ(std::memcmp(end_a.data(), end_b.data(), end_a.size()), 0);
}

TEST(StreamStateTest, ZScoreModeRoundTripsToo) {
  std::vector<double> data = RandomWalk(150, 21);
  StreamPipeline a, b;
  a.Emplace<OnlineAnomalyStage>(OnlineAnomalyStage::Mode::kZScore, 4.0);
  b.Emplace<OnlineAnomalyStage>(OnlineAnomalyStage::Mode::kZScore, 4.0);
  ASSERT_TRUE(a.Reset(2).ok());
  ASSERT_TRUE(b.Reset(2).ok());
  TickRecord rec;
  for (size_t i = 0; i < 100; ++i) {
    rec.tick = {i % 2, static_cast<int64_t>(i), data[i]};
    ASSERT_TRUE(a.ProcessTick(&rec).ok());
  }
  std::vector<uint8_t> state;
  ASSERT_TRUE(a.SaveState(&state).ok());
  ASSERT_TRUE(b.RestoreState(state.data(), state.size()).ok());
  TickRecord rec_a, rec_b;
  for (size_t i = 100; i < 150; ++i) {
    rec_a.tick = {i % 2, static_cast<int64_t>(i), data[i]};
    rec_b.tick = rec_a.tick;
    ASSERT_TRUE(a.ProcessTick(&rec_a).ok());
    ASSERT_TRUE(b.ProcessTick(&rec_b).ok());
    EXPECT_EQ(std::memcmp(&rec_a.anomaly_score, &rec_b.anomaly_score,
                          sizeof(double)),
              0)
        << i;
  }
}

TEST(StreamStateTest, RestoreRejectsMismatchedPipelines) {
  StreamPipeline source;
  BuildAnalyticsPipeline(&source);
  ASSERT_TRUE(source.Reset(2).ok());
  TickRecord rec;
  rec.tick = {0, 1, 5.0};
  ASSERT_TRUE(source.ProcessTick(&rec).ok());
  std::vector<uint8_t> state;
  ASSERT_TRUE(source.SaveState(&state).ok());

  // Different stage set.
  StreamPipeline fewer;
  fewer.Emplace<WelfordStatsStage>();
  ASSERT_TRUE(fewer.Reset(2).ok());
  EXPECT_EQ(fewer.RestoreState(state.data(), state.size()).code(),
            StatusCode::kInvalidArgument);

  // Same stage count, different anomaly mode (stage name differs).
  StreamPipeline wrong_mode;
  wrong_mode.Emplace<WelfordStatsStage>();
  wrong_mode.Emplace<OnlineAnomalyStage>(OnlineAnomalyStage::Mode::kZScore);
  wrong_mode.Emplace<OnlineForecastStage>();
  ASSERT_TRUE(wrong_mode.Reset(2).ok());
  EXPECT_EQ(wrong_mode.RestoreState(state.data(), state.size()).code(),
            StatusCode::kInvalidArgument);

  // Truncated and trailing-garbage blobs.
  StreamPipeline target;
  BuildAnalyticsPipeline(&target);
  ASSERT_TRUE(target.Reset(2).ok());
  EXPECT_EQ(target.RestoreState(state.data(), state.size() / 2).code(),
            StatusCode::kInvalidArgument);
  std::vector<uint8_t> padded = state;
  padded.push_back(0xAA);
  EXPECT_EQ(target.RestoreState(padded.data(), padded.size()).code(),
            StatusCode::kInvalidArgument);

  // An undamaged blob still restores after the failed attempts.
  EXPECT_TRUE(target.RestoreState(state.data(), state.size()).ok());
  EXPECT_EQ(target.ticks_processed(), 1u);
}

TEST(StreamBridgeTest, SnapshotRightAlignsAndPadsMissing) {
  StreamBuffer buf(3, 8, DropPolicy::kDropOldest);
  for (int i = 0; i < 6; ++i) buf.Push(0, 100 + i, 1.0 + i);
  for (int i = 0; i < 3; ++i) buf.Push(1, 103 + i, 10.0 + i);
  // sensor 2 stays silent.
  SensorGraph graph(3);
  PipelineContext ctx;
  ASSERT_TRUE(SnapshotToContext(buf, graph, &ctx).ok());
  ASSERT_EQ(ctx.data.NumSteps(), 6u);
  ASSERT_EQ(ctx.data.NumSensors(), 3u);
  // Sensor 0 fills every step; sensor 1 occupies the last three.
  EXPECT_DOUBLE_EQ(ctx.data.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ctx.data.At(5, 0), 6.0);
  EXPECT_TRUE(ctx.data.series().IsMissing(2, 1));
  EXPECT_DOUBLE_EQ(ctx.data.At(3, 1), 10.0);
  EXPECT_DOUBLE_EQ(ctx.data.At(5, 1), 12.0);
  for (size_t t = 0; t < 6; ++t) {
    EXPECT_TRUE(ctx.data.series().IsMissing(t, 2));
  }
  EXPECT_DOUBLE_EQ(ctx.metrics["stream_snapshot_steps"], 6.0);
  EXPECT_DOUBLE_EQ(ctx.metrics["stream_snapshot_missing"], 9.0);
  // Timestamps come from the longest ring.
  EXPECT_EQ(ctx.data.series().Timestamp(0), 100);
  EXPECT_EQ(ctx.data.series().Timestamp(5), 105);
}

TEST(StreamBridgeTest, GraphMismatchRejected) {
  StreamBuffer buf(3, 8);
  SensorGraph graph(2);
  PipelineContext ctx;
  EXPECT_EQ(SnapshotToContext(buf, graph, &ctx).code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamBridgeTest, EmptyBufferYieldsEmptyContext) {
  StreamBuffer buf(2, 8);
  SensorGraph graph(2);
  PipelineContext ctx;
  ASSERT_TRUE(SnapshotToContext(buf, graph, &ctx).ok());
  EXPECT_EQ(ctx.data.NumSteps(), 0u);
}

TEST(StreamBridgeTest, SnapshotFeedsBatchPipeline) {
  constexpr size_t kSensors = 4;
  StreamBuffer buf(kSensors, 64, DropPolicy::kDropOldest);
  Rng rng(15);
  for (int i = 0; i < 64; ++i) {
    for (size_t s = 0; s < kSensors; ++s) {
      // Sensor 3 joins late: leading gap for the imputer to fill.
      if (s == 3 && i < 20) continue;
      buf.Push(s, i, 20.0 + std::sin(0.2 * i) + rng.Normal(0.0, 0.1));
    }
  }
  std::vector<SensorGraph::Sensor> positions;
  for (size_t s = 0; s < kSensors; ++s) {
    positions.push_back({static_cast<double>(s), 0.0});
  }
  SensorGraph graph = SensorGraph::KNearest(positions, 2, 1.0);
  PipelineContext ctx;
  ASSERT_TRUE(SnapshotToContext(buf, graph, &ctx).ok());
  EXPECT_GT(ctx.data.series().CountMissing(), 0u);

  Pipeline batch;
  batch.Emplace<ImputeStage>().Emplace<ForecastStage>(4, 8);
  PipelineReport report = batch.Run(&ctx);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(ctx.data.series().CountMissing(), 0u);
  EXPECT_EQ(ctx.artifacts.count("forecast/0"), 1u);
}

// The full streaming loop end to end: concurrent producers, one consumer
// pipeline, then a bridge snapshot — the integration surface the TSan gate
// exercises.
TEST(StreamIntegrationTest, ProducersPipelineAndSnapshotTogether) {
  constexpr size_t kSensors = 4;
  StreamBuffer buf(kSensors, 128, DropPolicy::kDropOldest);
  StreamPipeline pipeline;
  pipeline.Emplace<WelfordStatsStage>()
      .Emplace<OnlineAnomalyStage>()
      .Emplace<OnlineForecastStage>();
  ASSERT_TRUE(pipeline.Reset(kSensors).ok());

  std::atomic<bool> done{false};
  std::thread producer_a([&] {
    for (int i = 0; i < 2000; ++i) buf.Push(static_cast<size_t>(i) % 2, i, 1.0 * i);
  });
  std::thread producer_b([&] {
    for (int i = 0; i < 2000; ++i) {
      buf.Push(2 + static_cast<size_t>(i) % 2, i, 2.0 * i);
    }
  });
  size_t processed = 0;
  std::thread consumer([&] {
    TickRecord rec;
    while (true) {
      size_t n = pipeline.Drain(&buf, &rec);
      processed += n;
      if (n == 0) {
        if (done.load(std::memory_order_acquire)) {
          processed += pipeline.Drain(&buf, &rec);
          break;
        }
        std::this_thread::yield();
      }
    }
  });
  producer_a.join();
  producer_b.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(processed, pipeline.ticks_processed());
  EXPECT_EQ(processed + buf.dropped(), buf.accepted());

  SensorGraph graph(kSensors);
  PipelineContext ctx;
  ASSERT_TRUE(SnapshotToContext(buf, graph, &ctx).ok());
  EXPECT_EQ(ctx.data.NumSteps(), 128u);
}

}  // namespace
}  // namespace tsdm
