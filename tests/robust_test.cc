#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/forecast/metrics.h"
#include "src/analytics/robust/continual.h"
#include "src/analytics/robust/drift.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

TEST(PageHinkleyTest, DetectsMeanShift) {
  Rng rng(1);
  PageHinkleyDetector d(0.2, 15.0);
  bool detected = false;
  for (int i = 0; i < 300; ++i) {
    detected = d.Update(rng.Normal(0.0, 1.0)) || detected;
  }
  EXPECT_FALSE(detected);  // stable stream: no false alarm
  int latency = -1;
  for (int i = 0; i < 300; ++i) {
    if (d.Update(rng.Normal(5.0, 1.0))) {
      latency = i;
      break;
    }
  }
  EXPECT_GE(latency, 0);
  EXPECT_LT(latency, 100);
}

TEST(AdwinLiteTest, DetectsMeanShiftWithBoundedFalseAlarms) {
  Rng rng(2);
  AdwinLiteDetector d(200, 0.002);
  int false_alarms = 0;
  for (int i = 0; i < 1000; ++i) {
    if (d.Update(rng.Normal(0.0, 1.0))) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 3);
  d.Reset();
  for (int i = 0; i < 100; ++i) d.Update(rng.Normal(0.0, 1.0));
  bool detected = false;
  for (int i = 0; i < 200 && !detected; ++i) {
    detected = d.Update(rng.Normal(4.0, 1.0));
  }
  EXPECT_TRUE(detected);
}

/// Two-regime stream: regime A (seasonal level 20), regime B (level 60,
/// different dynamics).
std::vector<double> Regime(int which, int n, int seed) {
  Rng rng(seed);
  SeriesSpec spec;
  spec.level = which == 0 ? 20.0 : 60.0;
  spec.seasonal = {{16, which == 0 ? 5.0 : 2.0, 0.0}};
  spec.ar_coefficients = {0.4};
  spec.ar_innovation_stddev = 0.5;
  spec.noise_stddev = 0.3;
  return GenerateSeries(spec, n, &rng);
}

TEST(ContinualTest, ReplayRemembersOldRegime) {
  std::vector<double> regime_a = Regime(0, 600, 3);
  std::vector<double> regime_b = Regime(1, 600, 4);

  FineTuneForecaster finetune(8, 256);
  ReplayForecaster::Options ropts;
  ropts.replay_capacity = 1024;
  ReplayForecaster replay(ropts);

  // Stream regime A then regime B in chunks.
  for (int c = 0; c < 4; ++c) {
    std::vector<double> chunk(regime_a.begin() + c * 150,
                              regime_a.begin() + (c + 1) * 150);
    ASSERT_TRUE(finetune.ObserveChunk(chunk).ok());
    ASSERT_TRUE(replay.ObserveChunk(chunk).ok());
  }
  for (int c = 0; c < 4; ++c) {
    std::vector<double> chunk(regime_b.begin() + c * 150,
                              regime_b.begin() + (c + 1) * 150);
    ASSERT_TRUE(finetune.ObserveChunk(chunk).ok());
    ASSERT_TRUE(replay.ObserveChunk(chunk).ok());
  }

  // Probe forgetting: forecast regime-A-style continuation.
  std::vector<double> probe = Regime(0, 300, 5);
  std::vector<double> context(probe.begin(), probe.end() - 12);
  std::vector<double> actual(probe.end() - 12, probe.end());
  auto fc_ft = finetune.ForecastFrom(context, 12);
  auto fc_rp = replay.ForecastFrom(context, 12);
  ASSERT_TRUE(fc_ft.ok());
  ASSERT_TRUE(fc_rp.ok());
  double err_ft = MeanAbsoluteError(actual, *fc_ft);
  double err_rp = MeanAbsoluteError(actual, *fc_rp);
  EXPECT_LT(err_rp, err_ft * 1.05);  // replay no worse on old regime
}

TEST(ContinualTest, BothAdaptToCurrentRegime) {
  std::vector<double> regime_b = Regime(1, 900, 6);
  FineTuneForecaster finetune;
  ReplayForecaster replay;
  for (int c = 0; c < 6; ++c) {
    std::vector<double> chunk(regime_b.begin() + c * 150,
                              regime_b.begin() + (c + 1) * 150);
    ASSERT_TRUE(finetune.ObserveChunk(chunk).ok());
    ASSERT_TRUE(replay.ObserveChunk(chunk).ok());
  }
  auto fc_ft = finetune.Forecast(6);
  auto fc_rp = replay.Forecast(6);
  ASSERT_TRUE(fc_ft.ok());
  ASSERT_TRUE(fc_rp.ok());
  // Forecasts should be near the regime level, not wildly off.
  for (double v : *fc_ft) EXPECT_NEAR(v, 60.0, 20.0);
  for (double v : *fc_rp) EXPECT_NEAR(v, 60.0, 20.0);
}

TEST(MultiScaleTest, FitsAndWeightsSumToOne) {
  Rng rng(7);
  SeriesSpec spec = TrafficLikeSpec(24);
  std::vector<double> v = GenerateSeries(spec, 600, &rng);
  MultiScaleForecaster model({1, 2, 4}, 8);
  ASSERT_TRUE(model.Fit(v).ok());
  double sum = 0.0;
  for (double w : model.pathway_weights()) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  auto fc = model.Forecast(12);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ(fc->size(), 12u);
}

TEST(MultiScaleTest, CompetitiveWithSingleScale) {
  Rng rng(8);
  SeriesSpec spec = TrafficLikeSpec(24);
  std::vector<double> v = GenerateSeries(spec, 24 * 30, &rng);
  std::vector<double> train(v.begin(), v.end() - 24);
  std::vector<double> actual(v.end() - 24, v.end());
  MultiScaleForecaster multi({1, 2, 4}, 8);
  ArForecaster single(8);
  ASSERT_TRUE(multi.Fit(train).ok());
  ASSERT_TRUE(single.Fit(train).ok());
  double err_multi = MeanAbsoluteError(actual, *multi.Forecast(24));
  double err_single = MeanAbsoluteError(actual, *single.Forecast(24));
  EXPECT_LT(err_multi, err_single * 1.3);
}

TEST(MultiScaleTest, TooShortHistoryFails) {
  MultiScaleForecaster model;
  EXPECT_FALSE(model.Fit({1, 2, 3}).ok());
  EXPECT_FALSE(model.Forecast(3).ok());
}

}  // namespace
}  // namespace tsdm
