#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/obs/metrics_export.h"
#include "src/obs/trace.h"
#include "src/shard/shard_map.h"
#include "src/shard/shard_router.h"
#include "src/shard/shard_stats.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

// --- ShardMap conformance ------------------------------------------------

TEST(ShardMapTest, ClampsDegenerateOptions) {
  ShardMap::Options opts;
  opts.num_shards = 0;
  opts.vnodes = -3;
  ShardMap map(opts);
  EXPECT_EQ(map.num_shards(), 1);
  EXPECT_EQ(map.vnodes(), 1);
  EXPECT_EQ(map.OwnerOfBucket(12345), 0);
}

TEST(ShardMapTest, PlacementIsDeterministicAcrossInstances) {
  ShardMap::Options opts;
  opts.num_shards = 5;
  ShardMap a(opts);
  ShardMap b(opts);
  for (int64_t bucket = -500; bucket < 500; ++bucket) {
    EXPECT_EQ(a.OwnerOfBucket(bucket), b.OwnerOfBucket(bucket)) << bucket;
  }
  std::vector<int> edges;
  for (int e = 0; e < 64; ++e) {
    edges.push_back(e * 7);
    EXPECT_EQ(a.OwnerOfSubpath(edges), b.OwnerOfSubpath(edges));
  }
}

TEST(ShardMapTest, GenerationIsStampedButNeverMovesKeys) {
  ShardMap::Options g1;
  g1.num_shards = 4;
  g1.generation = 1;
  ShardMap::Options g9 = g1;
  g9.generation = 9;
  ShardMap a(g1);
  ShardMap b(g9);
  EXPECT_EQ(a.generation(), 1u);
  EXPECT_EQ(b.generation(), 9u);
  // The epoch names the placement; it must not change it.
  for (int64_t bucket = 0; bucket < 2000; ++bucket) {
    ASSERT_EQ(a.OwnerOfBucket(bucket), b.OwnerOfBucket(bucket));
  }
}

TEST(ShardMapTest, EveryKeyHasExactlyOneOwnerAndLoadIsBalanced) {
  const int kShards = 4;
  const int kKeys = 20000;
  ShardMap::Options opts;
  opts.num_shards = kShards;
  ShardMap map(opts);
  std::vector<int> counts(kShards, 0);
  for (int64_t bucket = 0; bucket < kKeys; ++bucket) {
    int owner = map.OwnerOfBucket(bucket);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, kShards);
    ++counts[owner];
  }
  // 32 vnodes/shard keeps the ring arcs reasonably even: every shard must
  // own a substantial share (the bound is loose on purpose — this guards
  // against a broken ring, not against hash-variance).
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kKeys / 10) << "shard " << s << " starved";
    EXPECT_LT(counts[s], kKeys / 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardMapTest, GrowthOnlyMovesKeysToTheNewShard) {
  // The consistent-hashing contract: going N -> N+1 shards, a key either
  // keeps its owner or moves to the NEW shard — pre-existing shards never
  // trade keys among themselves. This is what makes future resharding an
  // append-only hand-off.
  const int kKeys = 8000;
  for (int n = 1; n <= 7; ++n) {
    ShardMap::Options small;
    small.num_shards = n;
    ShardMap::Options big;
    big.num_shards = n + 1;
    ShardMap before(small);
    ShardMap after(big);
    int moved = 0;
    for (int64_t bucket = 0; bucket < kKeys; ++bucket) {
      const int was = before.OwnerOfBucket(bucket);
      const int now = after.OwnerOfBucket(bucket);
      if (was != now) {
        EXPECT_EQ(now, n) << "bucket " << bucket << " moved between "
                          << "pre-existing shards " << was << " -> " << now
                          << " when growing " << n << " -> " << n + 1;
        ++moved;
      }
    }
    // Expected churn is ~kKeys/(n+1); allow generous slack both ways.
    EXPECT_GT(moved, kKeys / (4 * (n + 1))) << n;
    EXPECT_LT(moved, (3 * kKeys) / (n + 1)) << n;
  }
}

TEST(ShardMapTest, SubpathHashIsOrderSensitive) {
  // A sub-path and its reverse are different cache keys and may live on
  // different shards; the hash must see order, not just membership.
  std::vector<int> forward{1, 2, 3, 4};
  std::vector<int> backward{4, 3, 2, 1};
  EXPECT_NE(ShardMap::HashSubpath(forward), ShardMap::HashSubpath(backward));
}

// --- Fleet stats / health aggregation ------------------------------------

TEST(ShardStatsTest, AggregateSumsCountersAndMergesHistograms) {
  ShardStatsSnapshot snap;
  ServeStatsSnapshot a;
  a.submitted = 10;
  a.completed = 8;
  a.cache_hits = 4;
  a.max_batch = 3;
  a.workers = 2;
  a.e2e_latency.Add(0.010);
  a.e2e_latency.Add(0.020);
  ServeStatsSnapshot b;
  b.submitted = 5;
  b.completed = 5;
  b.cache_hits = 1;
  b.max_batch = 7;
  b.workers = 2;
  b.e2e_latency.Add(0.030);
  snap.shards = {a, b};
  ServeStatsSnapshot total = snap.Aggregate();
  EXPECT_EQ(total.submitted, 15u);
  EXPECT_EQ(total.completed, 13u);
  EXPECT_EQ(total.cache_hits, 5u);
  EXPECT_EQ(total.max_batch, 7u);  // fleet max, not sum
  EXPECT_EQ(total.workers, 4);
  EXPECT_EQ(total.e2e_latency.count(), 3u);
}

TEST(ShardStatsTest, FleetHealthTakesWorstStateAndPrefixesMetrics) {
  HealthSnapshot healthy;
  healthy.state = HealthState::kHealthy;
  healthy.samples = 10;
  healthy.burn_rate = 0.1;
  MetricVerdict v;
  v.name = "queue_depth";
  v.anomalous = false;
  healthy.metrics.push_back(v);

  HealthSnapshot degraded;
  degraded.state = HealthState::kDegraded;
  degraded.samples = 12;
  degraded.burn_rate = 1.5;
  degraded.anomalies_total = 3;
  degraded.top_offender = "cache";
  degraded.top_offender_share = 0.7;
  v.name = "shed_rate";
  v.anomalous = true;
  degraded.metrics.push_back(v);

  HealthSnapshot fleet = AggregateFleetHealth({healthy, degraded});
  EXPECT_EQ(fleet.state, HealthState::kDegraded);
  EXPECT_EQ(fleet.samples, 22u);
  EXPECT_EQ(fleet.anomalies_total, 3u);
  EXPECT_DOUBLE_EQ(fleet.burn_rate, 1.5);
  EXPECT_EQ(fleet.top_offender, "s1/cache");
  ASSERT_EQ(fleet.metrics.size(), 2u);
  EXPECT_EQ(fleet.metrics[0].name, "s0/queue_depth");
  EXPECT_EQ(fleet.metrics[1].name, "s1/shed_rate");
}

// --- ShardRouter ---------------------------------------------------------

struct ShardFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  ShardFixture() : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 6;
    spec.cols = 6;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(3);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }

  ShardRouter::Options RouterOptions(int num_shards) const {
    ShardRouter::Options opts;
    opts.map.num_shards = num_shards;
    opts.server.autoscale_enabled = false;
    opts.server.initial_workers = 1;
    opts.region_cell_meters = 800.0;
    return opts;
  }

  /// A (source, target) pair whose region owners differ at this fleet
  /// size — guaranteed to scatter.
  std::pair<int, int> CrossShardPair(const ShardRouter& router) const {
    for (int a = 0; a < static_cast<int>(net.NumNodes()); ++a) {
      for (int b = 0; b < static_cast<int>(net.NumNodes()); ++b) {
        if (a != b && router.OwnerOfNode(a) != router.OwnerOfNode(b)) {
          return {a, b};
        }
      }
    }
    ADD_FAILURE() << "no cross-shard pair in fixture";
    return {0, 1};
  }

  /// A pair owned by one shard — guaranteed to forward.
  std::pair<int, int> SameShardPair(const ShardRouter& router) const {
    for (int a = 0; a < static_cast<int>(net.NumNodes()); ++a) {
      for (int b = 0; b < static_cast<int>(net.NumNodes()); ++b) {
        if (a != b && router.OwnerOfNode(a) == router.OwnerOfNode(b)) {
          return {a, b};
        }
      }
    }
    ADD_FAILURE() << "no same-shard pair in fixture";
    return {0, 1};
  }
};

RouteQuery MakeQuery(int source, int target, double depart = 8 * 3600.0) {
  RouteQuery q;
  q.source = source;
  q.target = target;
  q.k = 4;
  q.depart_seconds = depart;
  return q;
}

TEST(ShardRouterTest, RejectsWhenNotRunning) {
  ShardFixture fx;
  ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(2));
  Status st = router.Submit(MakeQuery(0, 5), [](const RouteAnswer&) {});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(ShardRouterTest, ForwardsSameOwnerAndScattersCrossOwner) {
  ShardFixture fx;
  ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(4));
  ASSERT_TRUE(router.Start().ok());
  auto same = fx.SameShardPair(router);
  auto cross = fx.CrossShardPair(router);

  std::atomic<int> answered{0};
  auto count_ok = [&answered](const RouteAnswer& answer) {
    EXPECT_TRUE(answer.status.ok()) << answer.status.ToString();
    answered.fetch_add(1);
  };
  ASSERT_TRUE(
      router.Submit(MakeQuery(same.first, same.second), count_ok).ok());
  ASSERT_TRUE(
      router.Submit(MakeQuery(cross.first, cross.second), count_ok).ok());
  router.WaitIdle();
  EXPECT_EQ(answered.load(), 2);

  ShardStatsSnapshot snap = router.ShardStats();
  EXPECT_EQ(snap.router.forwarded, 1u);
  EXPECT_EQ(snap.router.scattered, 1u);
  EXPECT_EQ(snap.router.merges, 1u);
  EXPECT_GE(snap.router.probes_sent, 1u);
  EXPECT_EQ(snap.router.partial_errors, 0u);
  // Per-shard attribution sums to the totals.
  uint64_t fwd_sum = 0, probe_sum = 0;
  for (uint64_t f : snap.router.forwarded_per_shard) fwd_sum += f;
  for (uint64_t p : snap.router.probes_per_shard) probe_sum += p;
  EXPECT_EQ(fwd_sum, snap.router.forwarded);
  EXPECT_EQ(probe_sum, snap.router.probes_sent);
  // The fleet aggregate sees the probe + forwarded traffic as completions.
  EXPECT_GE(router.Stats().completed, 2u);
  router.Stop();
}

TEST(ShardRouterTest, ScatterReplicatesBoundaryCacheEntries) {
  ShardFixture fx;
  ShardRouter::Options opts = fx.RouterOptions(4);
  opts.replicate_boundary = true;
  ShardRouter router(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(router.Start().ok());
  auto cross = fx.CrossShardPair(router);
  std::atomic<int> done{0};
  ASSERT_TRUE(router
                  .Submit(MakeQuery(cross.first, cross.second),
                          [&done](const RouteAnswer& answer) {
                            EXPECT_TRUE(answer.status.ok());
                            done.fetch_add(1);
                          })
                  .ok());
  router.WaitIdle();
  ASSERT_EQ(done.load(), 1);
  ShardStatsSnapshot snap = router.ShardStats();
  // A cold scatter computes at least one segment on a non-endpoint-owner
  // shard, so at least one entry crossed a boundary.
  EXPECT_GT(snap.router.replicated, 0u);
  router.Stop();
}

TEST(ShardRouterTest, StoppedShardYieldsTypedUnavailable) {
  ShardFixture fx;
  ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(2));
  ASSERT_TRUE(router.Start().ok());
  auto cross = fx.CrossShardPair(router);
  const int owner = router.OwnerOfNode(cross.second);
  ASSERT_TRUE(router.StopShard(owner).ok());
  EXPECT_TRUE(router.ShardStopped(owner));

  // Forward to the stopped owner: typed error at submit, callback unused.
  int fwd_source = -1, fwd_target = -1;
  for (int a = 0; a < static_cast<int>(fx.net.NumNodes()) && fwd_source < 0;
       ++a) {
    if (router.OwnerOfNode(a) != owner) continue;
    for (int b = 0; b < static_cast<int>(fx.net.NumNodes()); ++b) {
      if (a != b && router.OwnerOfNode(b) == owner) {
        fwd_source = a;
        fwd_target = b;
        break;
      }
    }
  }
  if (fwd_source >= 0) {
    Status fwd = router.Submit(MakeQuery(fwd_source, fwd_target),
                               [](const RouteAnswer&) { FAIL(); });
    EXPECT_EQ(fwd.code(), StatusCode::kUnavailable);
  }

  // Scatter across the stopped owner: admitted, answered with a typed
  // partial-result error — never a wrong answer.
  std::atomic<int> partial{0};
  ASSERT_TRUE(router
                  .Submit(MakeQuery(cross.first, cross.second),
                          [&partial](const RouteAnswer& answer) {
                            EXPECT_EQ(answer.status.code(),
                                      StatusCode::kUnavailable)
                                << answer.status.ToString();
                            partial.fetch_add(1);
                          })
                  .ok());
  router.WaitIdle();
  EXPECT_EQ(partial.load(), 1);
  ShardStatsSnapshot snap = router.ShardStats();
  EXPECT_GE(snap.router.partial_errors, 1u);
  EXPECT_GE(snap.router.probe_transport_failures, 1u);
  router.Stop();
}

TEST(ShardRouterTest, RegistersShardMetricsSource) {
  ShardFixture fx;
  ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(2));
  ASSERT_TRUE(router.Start().ok());
  std::string prom = MetricsExporter::ExportPrometheus();
  EXPECT_NE(prom.find("tsdm_shard_count 2"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_shard_routed_total{mode=\"forward\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_shard_map_generation"), std::string::npos);
  std::string json = MetricsExporter::ShardToJson(router.ShardStats());
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate\":"), std::string::npos);
  router.Stop();
  // Unregistered after Stop.
  EXPECT_EQ(MetricsExporter::ExportPrometheus().find("tsdm_shard_count"),
            std::string::npos);
}

TEST(ShardRouterTest, ScatterSpansLinkUnderSubmitRoot) {
  ShardFixture fx;
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
  {
    // Scoped: worker-side spans (the merge runs on the last-completing
    // probe's worker thread) flush when the shards' pools wind down at
    // destruction, before the snapshot below.
    ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(4));
    ASSERT_TRUE(router.Start().ok());
    auto cross = fx.CrossShardPair(router);

    std::atomic<int> done{0};
    ASSERT_TRUE(
        router
            .Submit(MakeQuery(cross.first, cross.second),
                    [&done](const RouteAnswer&) { done.fetch_add(1); })
            .ok());
    router.WaitIdle();
    ASSERT_EQ(done.load(), 1);
    router.Stop();
  }
  TraceRecorder::Global().Disable();

  std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  bool saw_submit = false, saw_scatter = false, saw_merge = false,
       saw_serve_submit = false;
  uint64_t request_id = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "shard/submit") {
      saw_submit = true;
      request_id = e.request_id;
    }
  }
  ASSERT_TRUE(saw_submit);
  for (const TraceEvent& e : events) {
    if (e.request_id != request_id) continue;
    if (e.name == "shard/scatter") saw_scatter = true;
    if (e.name == "shard/merge") saw_merge = true;
    if (e.name == "serve/submit") saw_serve_submit = true;
  }
  // The probes' serve/submit subtrees hang inside the same request tree as
  // the scatter + merge spans — one tree per routed query.
  EXPECT_TRUE(saw_scatter);
  EXPECT_TRUE(saw_merge);
  EXPECT_TRUE(saw_serve_submit);
}

TEST(ShardRouterTest, SocketServerFrontsRouterUnchanged) {
  // The shard tier behind the existing wire front door: SocketServer takes
  // any QueryService, so NetClient cannot tell a fleet from a node.
  ShardFixture fx;
  ShardRouter router(&fx.net, fx.BaseModel(), fx.RouterOptions(2));
  ASSERT_TRUE(router.Start().ok());
  QueryService* service = &router;
  EXPECT_FALSE(service->QueueFull());
  std::atomic<int> done{0};
  auto cross = fx.CrossShardPair(router);
  ASSERT_TRUE(service
                  ->Submit(MakeQuery(cross.first, cross.second),
                           [&done](const RouteAnswer& answer) {
                             EXPECT_TRUE(answer.status.ok());
                             done.fetch_add(1);
                           })
                  .ok());
  router.WaitIdle();
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(service->Stats().completed, 1u);
  router.Stop();
}

}  // namespace
}  // namespace tsdm
