#include "src/analytics/forecast/grid_forecast.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/sim/crowd_gen.h"

namespace tsdm {
namespace {

GridSequence MakeFlows(int days, int seed, double noise = 1.5) {
  Rng rng(seed);
  CrowdFlowSpec spec;
  spec.noise_stddev = noise;
  return GenerateCrowdFlow(spec, days * spec.intervals_per_day, &rng);
}

TEST(CrowdGenTest, FlowsNonNegativeWithDailyPeriod) {
  GridSequence flows = MakeFlows(6, 1);
  for (size_t t = 0; t < flows.NumFrames(); ++t) {
    for (size_t r = 0; r < flows.Height(); ++r) {
      for (size_t c = 0; c < flows.Width(); ++c) {
        EXPECT_GE(flows.At(t, r, c, 0), 0.0);
      }
    }
  }
  // Downtown cell peaks at midday, is quiet at 3am.
  CrowdFlowSpec spec;
  int midday = spec.intervals_per_day / 2;       // ~12:00
  int night = spec.intervals_per_day / 8;        // ~3:00
  double peak = flows.At(2 * spec.intervals_per_day + midday, 4, 4, 0);
  double quiet = flows.At(2 * spec.intervals_per_day + night, 4, 4, 0);
  EXPECT_GT(peak, quiet + 10.0);
}

TEST(GridForecastTest, Validation) {
  GridFlowForecaster model;
  GridSequence tiny(5, 4, 4, 1);
  EXPECT_FALSE(model.Fit(tiny).ok());
  EXPECT_FALSE(model.PredictNext(tiny).ok());
  EXPECT_FALSE(model.EvaluateMae(tiny, 2).ok());
}

TEST(GridForecastTest, PredictNextShapeAndFiniteness) {
  GridSequence flows = MakeFlows(5, 2);
  GridFlowForecaster model;
  ASSERT_TRUE(model.Fit(flows).ok());
  Result<Matrix> next = model.PredictNext(flows);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->rows(), flows.Height());
  EXPECT_EQ(next->cols(), flows.Width());
  for (size_t r = 0; r < next->rows(); ++r) {
    for (size_t c = 0; c < next->cols(); ++c) {
      EXPECT_TRUE(std::isfinite((*next)(r, c)));
      EXPECT_GE((*next)(r, c), 0.0);
    }
  }
}

TEST(GridForecastTest, BeatsPeriodPersistence) {
  GridSequence flows = MakeFlows(8, 3);
  CrowdFlowSpec spec;
  GridFlowForecaster model;
  ASSERT_TRUE(model.Fit(flows).ok());
  Result<double> model_mae =
      model.EvaluateMae(flows, 2 * spec.intervals_per_day);
  ASSERT_TRUE(model_mae.ok());
  double baseline = PeriodPersistenceMae(flows, spec.intervals_per_day,
                                         2 * spec.intervals_per_day);
  EXPECT_LT(*model_mae, baseline);
}

TEST(GridForecastTest, PeriodFeaturesHelpOnDailyData) {
  // Ablation: with-period model beats closeness-only (the ST-ResNet input
  // design claim [18],[19]).
  GridSequence flows = MakeFlows(8, 4);
  CrowdFlowSpec spec;
  GridFlowForecaster::Options with_period;
  GridFlowForecaster::Options closeness_only;
  closeness_only.period_days = 0;
  GridFlowForecaster full(with_period), close(closeness_only);
  ASSERT_TRUE(full.Fit(flows).ok());
  ASSERT_TRUE(close.Fit(flows).ok());
  Result<double> full_mae =
      full.EvaluateMae(flows, 2 * spec.intervals_per_day);
  Result<double> close_mae =
      close.EvaluateMae(flows, 2 * spec.intervals_per_day);
  ASSERT_TRUE(full_mae.ok());
  ASSERT_TRUE(close_mae.ok());
  EXPECT_LE(*full_mae, *close_mae * 1.02);
}

TEST(GridForecastTest, WeightsExposeFeatureGroups) {
  GridSequence flows = MakeFlows(6, 5);
  GridFlowForecaster::Options opts;
  GridFlowForecaster model(opts);
  ASSERT_TRUE(model.Fit(flows).ok());
  // 1 intercept + closeness + period + spatial context.
  EXPECT_EQ(model.weights().size(),
            1u + opts.closeness + opts.period_days + 1u);
}

}  // namespace
}  // namespace tsdm
