#include "src/common/stats.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace tsdm {
namespace {

TEST(StatsTest, MeanAndVarianceOfKnownData) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(Stdev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  std::vector<double> empty;
  EXPECT_EQ(Mean(empty), 0.0);
  EXPECT_EQ(Variance(empty), 0.0);
  EXPECT_EQ(Quantile(empty, 0.5), 0.0);
  EXPECT_EQ(Mad(empty), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median(v), 2.5);
}

TEST(StatsTest, MadIsRobustToOneOutlier) {
  std::vector<double> clean = {1, 2, 3, 4, 5, 6, 7};
  std::vector<double> dirty = clean;
  dirty.back() = 1000.0;
  EXPECT_NEAR(Mad(clean), Mad(dirty), 1.0);
  EXPECT_GT(Stdev(dirty), 10 * Stdev(clean));  // stdev is not robust
}

TEST(StatsTest, PerfectCorrelation) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationOfConstantIsZero) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(a, constant), 0.0);
}

TEST(StatsTest, AutocorrelationOfPeriodTwoSignal) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(Autocorrelation(v, 2), 1.0, 1e-9);
  EXPECT_NEAR(Autocorrelation(v, 1), -1.0, 1e-9);
  EXPECT_EQ(Autocorrelation(v, 200), 0.0);  // lag beyond length
}

TEST(StatsTest, FiniteValuesStripsNanAndInf) {
  double nan = std::numeric_limits<double>::quiet_NaN();
  double inf = std::numeric_limits<double>::infinity();
  std::vector<double> v = {1.0, nan, 2.0, inf, 3.0, -inf};
  std::vector<double> f = FiniteValues(v);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 1.0);
  EXPECT_EQ(f[2], 3.0);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  Rng rng(3);
  std::vector<double> v;
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(5.0, 2.0);
    v.push_back(x);
    online.Add(x);
  }
  EXPECT_NEAR(online.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(online.variance(), Variance(v), 1e-9);
  EXPECT_EQ(online.count(), 1000u);
  EXPECT_LE(online.min(), online.mean());
  EXPECT_GE(online.max(), online.mean());
}

TEST(OnlineStatsTest, SinglePointHasZeroVariance) {
  OnlineStats s;
  s.Add(7.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 7.0);
  EXPECT_EQ(s.min(), 7.0);
  EXPECT_EQ(s.max(), 7.0);
}

// Property sweep: quantile is monotone in q for random data.
class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Normal(0, 10));
  double prev = -1e300;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double x = Quantile(v, q);
    EXPECT_GE(x, prev);
    prev = x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tsdm
