/// The shard tier's centerpiece proof: a sharded fleet must be an
/// *implementation detail*, never a semantic change. Three properties,
/// each checked over 1000 seeded random route queries:
///
///   (a) sharded == single-node, bitwise, at every fleet size — the
///       decision fields of every answer (status, chosen route, cost
///       mean, on-time probability, candidate count) are EXACTLY the
///       single QueryServer's answers at 1, 2, 4, and 8 shards;
///   (b) the scatter merge is permutation-invariant — adversarially
///       reordering probe completions (ShardRouter::Options::
///       reorder_seed) cannot change any answer;
///   (c) a stopped shard yields typed partial-result errors
///       (kUnavailable), never a wrong answer.
///
/// The query workload is seeded (TSDM_SHARD_SEED, printed at startup) so
/// any failure replays exactly. Timing fields are excluded by design —
/// they measure the machine, not the decision.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <random>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/serve/query_server.h"
#include "src/shard/shard_router.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

constexpr int kNumQueries = 1000;
constexpr uint64_t kDefaultSeed = 0x51AB5EEDull;

uint64_t WorkloadSeed() {
  const char* env = std::getenv("TSDM_SHARD_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 0);
  }
  return kDefaultSeed;
}

/// The shared fixture: one network + trained model, a seeded query
/// workload, and a reference answer set from a plain single-node
/// QueryServer. Built once — every equivalence run compares against the
/// same reference.
class EquivalenceFixture {
 public:
  static EquivalenceFixture& Get() {
    static EquivalenceFixture* fx = new EquivalenceFixture();
    return *fx;
  }

  const RoadNetwork& net() const { return net_; }
  const std::vector<RouteQuery>& queries() const { return queries_; }
  const std::vector<RouteAnswer>& reference() const { return reference_; }
  uint64_t seed() const { return seed_; }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model_;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }

  /// Per-shard (and reference) server options: single worker, autoscale
  /// off, queue big enough that nothing sheds, no age-based expiry risk.
  QueryServer::Options ServerOptions() const {
    QueryServer::Options opts;
    opts.initial_workers = 1;
    opts.autoscale_enabled = false;
    opts.queue.capacity = 8192;
    return opts;
  }

  ShardRouter::Options RouterOptions(int num_shards) const {
    ShardRouter::Options opts;
    opts.map.num_shards = num_shards;
    opts.server = ServerOptions();
    // Small cells relative to the 500 m grid spacing: plenty of distinct
    // region buckets, so every fleet size gets a real cross-shard mix.
    opts.region_cell_meters = 800.0;
    return opts;
  }

  /// Drives `service` through the full workload; answers land by request
  /// index. A Submit-time rejection becomes the answer (that is what a
  /// caller observes), preserving one answer slot per query.
  std::vector<RouteAnswer> RunWorkload(QueryService* service) const {
    std::vector<RouteAnswer> answers(queries_.size());
    std::atomic<int> done{0};
    for (size_t i = 0; i < queries_.size(); ++i) {
      SubmitOptions submit;
      submit.queue_budget_seconds = 0.0;  // never expire under slow CI
      submit.client_request_id = static_cast<uint64_t>(i) + 1;
      RouteAnswer* slot = &answers[i];
      Status st = service->Submit(
          queries_[i],
          [slot, &done](const RouteAnswer& answer) {
            *slot = answer;
            done.fetch_add(1, std::memory_order_release);
          },
          submit);
      if (!st.ok()) {
        slot->status = st;
        done.fetch_add(1, std::memory_order_release);
      }
    }
    service->WaitIdle();
    while (done.load(std::memory_order_acquire) <
           static_cast<int>(queries_.size())) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return answers;
  }

 private:
  EquivalenceFixture() : seed_(WorkloadSeed()) {
    std::cerr << "[shard-equivalence] workload seed = " << seed_
              << "  (replay with TSDM_SHARD_SEED=" << seed_ << ")\n";
    GridNetworkSpec spec;
    spec.rows = 6;
    spec.cols = 6;
    Rng net_rng(3);
    net_ = GenerateGridNetwork(spec, &net_rng);

    model_ = EdgeCentricModel(static_cast<int>(net_.NumEdges()));
    TrafficSimulator sim(&net_, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net_.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model_.AddTrip(trip);
      }
    }
    Status built = model_.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();

    queries_ = MakeWorkload(seed_);
    reference_ = MakeReference();
  }

  std::vector<RouteQuery> MakeWorkload(uint64_t seed) const {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> node(0,
                                            static_cast<int>(net_.NumNodes()) -
                                                1);
    std::uniform_int_distribution<int> k_dist(1, 4);
    std::uniform_real_distribution<double> depart_hour(7.0, 9.0);
    std::uniform_real_distribution<double> slack(60.0, 1200.0);
    std::vector<RouteQuery> queries;
    queries.reserve(kNumQueries);
    for (int i = 0; i < kNumQueries; ++i) {
      RouteQuery q;
      q.source = node(rng);
      do {
        q.target = node(rng);
      } while (q.target == q.source);
      q.k = k_dist(rng);
      q.depart_seconds = 3600.0 * depart_hour(rng);
      // A third of the workload has an arrival deadline, exercising the
      // on-time-probability scoring rule; the rest minimizes mean cost.
      if (i % 3 == 0) {
        q.arrival_deadline_seconds = q.depart_seconds + slack(rng);
      }
      queries.push_back(q);
    }
    return queries;
  }

  std::vector<RouteAnswer> MakeReference() {
    QueryServer single(&net_, BaseModel(), ServerOptions());
    EXPECT_TRUE(single.Start().ok());
    std::vector<RouteAnswer> answers = RunWorkload(&single);
    single.Stop();
    return answers;
  }

  uint64_t seed_;
  RoadNetwork net_;
  EdgeCentricModel model_{0};
  std::vector<RouteQuery> queries_;
  std::vector<RouteAnswer> reference_;
};

/// Bitwise comparison of the DECISION fields. EXPECT_EQ on the doubles is
/// deliberate: the sharded path must run the exact same arithmetic in the
/// exact same order, so the bits must match — no tolerance.
void ExpectSameDecision(const RouteAnswer& got, const RouteAnswer& want,
                        size_t index, const RouteQuery& query,
                        uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "query #" << index << " (" << query.source << " -> "
               << query.target << ", k=" << query.k
               << ", depart=" << query.depart_seconds
               << ", deadline=" << query.arrival_deadline_seconds
               << ") seed=" << seed);
  ASSERT_EQ(got.status.code(), want.status.code())
      << "got: " << got.status.ToString()
      << "  want: " << want.status.ToString();
  EXPECT_EQ(got.status.message(), want.status.message());
  EXPECT_EQ(got.route.nodes, want.route.nodes);
  EXPECT_EQ(got.route.edges, want.route.edges);
  EXPECT_EQ(got.cost_mean_seconds, want.cost_mean_seconds);
  EXPECT_EQ(got.on_time_probability, want.on_time_probability);
  EXPECT_EQ(got.num_candidates, want.num_candidates);
}

// --- (a) sharded == single-node at every fleet size ----------------------

class ShardCountEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardCountEquivalenceTest, AnswersMatchSingleNodeBitwise) {
  EquivalenceFixture& fx = EquivalenceFixture::Get();
  const int num_shards = GetParam();
  ShardRouter router(&fx.net(), fx.BaseModel(),
                     fx.RouterOptions(num_shards));
  ASSERT_TRUE(router.Start().ok());
  std::vector<RouteAnswer> answers = fx.RunWorkload(&router);
  router.Stop();

  ASSERT_EQ(answers.size(), fx.reference().size());
  for (size_t i = 0; i < answers.size(); ++i) {
    ExpectSameDecision(answers[i], fx.reference()[i], i, fx.queries()[i],
                       fx.seed());
  }
  // The run must actually have exercised the scatter path (except at one
  // shard, where everything forwards).
  ShardStatsSnapshot snap = router.ShardStats();
  EXPECT_EQ(snap.router.forwarded + snap.router.scattered,
            static_cast<uint64_t>(kNumQueries));
  if (num_shards == 1) {
    EXPECT_EQ(snap.router.scattered, 0u);
  } else {
    EXPECT_GT(snap.router.scattered, 0u);
    EXPECT_GT(snap.router.forwarded, 0u) << "no same-owner traffic at "
                                         << num_shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(FleetSizes, ShardCountEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8));

// --- (b) merge is permutation-invariant ----------------------------------

class ReorderInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReorderInvarianceTest, AdversarialCompletionOrderCannotChangeAnswers) {
  EquivalenceFixture& fx = EquivalenceFixture::Get();
  ShardRouter::Options opts = fx.RouterOptions(4);
  // Buffer every probe completion, then apply them in a seeded shuffle
  // before merging — the answers must still be bitwise the reference.
  opts.reorder_seed = GetParam();
  ShardRouter router(&fx.net(), fx.BaseModel(), opts);
  ASSERT_TRUE(router.Start().ok());
  std::vector<RouteAnswer> answers = fx.RunWorkload(&router);
  router.Stop();

  ASSERT_EQ(answers.size(), fx.reference().size());
  for (size_t i = 0; i < answers.size(); ++i) {
    ExpectSameDecision(answers[i], fx.reference()[i], i, fx.queries()[i],
                       fx.seed());
  }
}

INSTANTIATE_TEST_SUITE_P(Shuffles, ReorderInvarianceTest,
                         ::testing::Values(0xDEADBEEFull, 42ull));

// --- (c) a stopped shard degrades typed, never wrong ---------------------

TEST(ShardFailureEquivalenceTest, StoppedShardIsTypedPartialNeverWrong) {
  EquivalenceFixture& fx = EquivalenceFixture::Get();
  ShardRouter router(&fx.net(), fx.BaseModel(), fx.RouterOptions(4));
  ASSERT_TRUE(router.Start().ok());
  ASSERT_TRUE(router.StopShard(2).ok());
  std::vector<RouteAnswer> answers = fx.RunWorkload(&router);
  router.Stop();

  ASSERT_EQ(answers.size(), fx.reference().size());
  int unavailable = 0;
  for (size_t i = 0; i < answers.size(); ++i) {
    if (answers[i].status.code() == StatusCode::kUnavailable) {
      // Typed partial-result error: the caller knows this answer is
      // missing, not wrong.
      ++unavailable;
      continue;
    }
    // Everything the degraded fleet DOES answer must still be exactly the
    // single-node answer.
    ExpectSameDecision(answers[i], fx.reference()[i], i, fx.queries()[i],
                       fx.seed());
  }
  // The workload is dense enough that shard 2 owned some of it — and the
  // rest of the fleet kept answering correctly around the hole.
  EXPECT_GT(unavailable, 0);
  EXPECT_LT(unavailable, kNumQueries);
}

}  // namespace
}  // namespace tsdm
