#include "src/common/series_view.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/analytics/anomaly/detector.h"
#include "src/common/rng.h"
#include "src/data/correlated_time_series.h"
#include "src/data/sensor_graph.h"
#include "src/data/time_series.h"
#include "src/governance/imputation/imputer.h"

namespace tsdm {
namespace {

TimeSeries MakeSeries(size_t steps, size_t channels, uint64_t seed) {
  TimeSeries ts = TimeSeries::Regular(0, 60, steps, channels);
  Rng rng(seed);
  for (size_t t = 0; t < steps; ++t) {
    for (size_t c = 0; c < channels; ++c) {
      ts.Set(t, c, rng.Normal(10.0 * static_cast<double>(c), 2.0));
    }
  }
  return ts;
}

TEST(SeriesViewTest, StridedChannelViewMatchesCopy) {
  TimeSeries ts = MakeSeries(50, 3, 1);
  for (size_t c = 0; c < ts.NumChannels(); ++c) {
    SeriesView view = ts.ChannelView(c);
    std::vector<double> copy = ts.Channel(c);
    ASSERT_EQ(view.size(), copy.size());
    EXPECT_EQ(view.stride(), ts.NumChannels());
    for (size_t i = 0; i < copy.size(); ++i) {
      EXPECT_DOUBLE_EQ(view[i], copy[i]);
    }
  }
}

TEST(SeriesViewTest, SensorViewMatchesSensorSeries) {
  SensorGraph graph(4);
  CorrelatedTimeSeries cts(graph, MakeSeries(30, 4, 2));
  for (size_t s = 0; s < 4; ++s) {
    SeriesView view = cts.SensorView(s);
    std::vector<double> copy = cts.SensorSeries(s);
    ASSERT_EQ(view.size(), copy.size());
    EXPECT_TRUE(std::equal(view.begin(), view.end(), copy.begin()));
  }
}

TEST(SeriesViewTest, SingleChannelViewIsContiguous) {
  TimeSeries ts = TimeSeries::FromValues({1.0, 2.0, 3.0});
  SeriesView view = ts.ChannelView(0);
  EXPECT_TRUE(view.contiguous());
  EXPECT_DOUBLE_EQ(view.front(), 1.0);
  EXPECT_DOUBLE_EQ(view.back(), 3.0);
}

TEST(SeriesViewTest, ImplicitVectorViewAndIteration) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  SeriesView view = v;
  EXPECT_EQ(view.size(), 4u);
  EXPECT_TRUE(view.contiguous());
  double sum = 0.0;
  for (double x : view) sum += x;
  EXPECT_DOUBLE_EQ(sum, 10.0);
  EXPECT_EQ(std::distance(view.begin(), view.end()), 4);
}

TEST(SeriesViewTest, SubviewClampsToRange) {
  std::vector<double> v = {0.0, 1.0, 2.0, 3.0, 4.0};
  SeriesView view(v);
  SeriesView mid = view.Subview(1, 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[2], 3.0);
  EXPECT_EQ(view.Subview(4, 100).size(), 1u);
  EXPECT_EQ(view.Subview(9, 2).size(), 0u);
}

TEST(SeriesViewTest, StridedSubviewAndToVector) {
  TimeSeries ts = MakeSeries(20, 2, 3);
  SeriesView view = ts.ChannelView(1);
  std::vector<double> tail = view.Subview(15, 5).ToVector();
  ASSERT_EQ(tail.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(tail[i], ts.At(15 + i, 1));
  }
}

TEST(SeriesViewTest, EmptyView) {
  SeriesView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_TRUE(view.ToVector().empty());
  EXPECT_EQ(view.begin(), view.end());
}

TEST(SeriesViewTest, SetIsVisibleThroughLiveView) {
  TimeSeries ts = MakeSeries(10, 2, 4);
  SeriesView view = ts.ChannelView(0);
  ts.Set(5, 0, 123.5);
  EXPECT_DOUBLE_EQ(view[5], 123.5);
}

TEST(SeriesViewDetectorTest, ScoresAgreeOnViewAndCopy) {
  TimeSeries ts = MakeSeries(200, 3, 5);
  std::vector<double> train = ts.Channel(1);

  ZScoreDetector zscore;
  MadDetector mad;
  PcaReconstructionDetector pca(16, 3);
  ASSERT_TRUE(zscore.Fit(train).ok());
  ASSERT_TRUE(mad.Fit(train).ok());
  ASSERT_TRUE(pca.Fit(train).ok());

  for (AnomalyDetector* d :
       std::initializer_list<AnomalyDetector*>{&zscore, &mad, &pca}) {
    Result<std::vector<double>> from_view = d->Score(ts.ChannelView(1));
    Result<std::vector<double>> from_copy = d->Score(ts.Channel(1));
    ASSERT_TRUE(from_view.ok()) << d->Name();
    ASSERT_TRUE(from_copy.ok()) << d->Name();
    ASSERT_EQ(from_view->size(), from_copy->size()) << d->Name();
    for (size_t i = 0; i < from_view->size(); ++i) {
      EXPECT_DOUBLE_EQ((*from_view)[i], (*from_copy)[i]) << d->Name();
    }
  }
}

TEST(SeriesViewDetectorTest, RobustWrapperScoresThroughViews) {
  TimeSeries ts = MakeSeries(150, 1, 6);
  RobustTrainingWrapper robust(std::make_unique<ZScoreDetector>());
  ASSERT_TRUE(robust.Fit(ts.Channel(0)).ok());
  Result<std::vector<double>> scores = robust.Score(ts.ChannelView(0));
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), ts.NumSteps());
}

TEST(SeriesViewImputerTest, ViewBackedImputersStillFillGaps) {
  TimeSeries ts = MakeSeries(60, 3, 7);
  // Punch holes: a leading gap, an interior block, a trailing gap.
  for (size_t t : {0ul, 1ul, 20ul, 21ul, 22ul, 58ul, 59ul}) {
    ts.Set(t, 1, kMissingValue);
  }
  ASSERT_GT(ts.CountMissing(), 0u);
  for (const Imputer* imputer :
       std::initializer_list<const Imputer*>{
           new MeanImputer(), new LocfImputer(),
           new LinearInterpolationImputer()}) {
    TimeSeries work = ts;
    ASSERT_TRUE(imputer->Impute(&work).ok()) << imputer->Name();
    EXPECT_EQ(work.CountMissing(), 0u) << imputer->Name();
    // Observed entries are untouched.
    for (size_t t = 0; t < ts.NumSteps(); ++t) {
      if (!ts.IsMissing(t, 1)) {
        EXPECT_DOUBLE_EQ(work.At(t, 1), ts.At(t, 1)) << imputer->Name();
      }
    }
    delete imputer;
  }
}

TEST(SeriesViewImputerTest, LinearInterpolationMatchesHandComputed) {
  TimeSeries ts = TimeSeries::FromValues({1.0, kMissingValue, 3.0});
  ASSERT_TRUE(LinearInterpolationImputer().Impute(&ts).ok());
  EXPECT_DOUBLE_EQ(ts.At(1, 0), 2.0);
}

}  // namespace
}  // namespace tsdm
