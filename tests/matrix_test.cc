#include "src/common/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace tsdm {
namespace {

TEST(MatrixTest, IdentityAndBasicOps) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix prod = a.MatMul(Matrix::Identity(2));
  EXPECT_EQ(prod(0, 0), 1.0);
  EXPECT_EQ(prod(1, 1), 4.0);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  Matrix back = t.Transpose();
  EXPECT_EQ(back(1, 2), 6.0);
}

TEST(MatrixTest, MatVecAndRowColAccess) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> v = {1.0, 1.0};
  std::vector<double> out = a.MatVec(v);
  EXPECT_EQ(out[0], 3.0);
  EXPECT_EQ(out[1], 7.0);
  EXPECT_EQ(a.Row(1)[0], 3.0);
  EXPECT_EQ(a.Col(1)[0], 2.0);
}

TEST(SolveTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveTest, SingularMatrixFails) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {1, 2});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInternal);
}

TEST(SolveTest, ShapeMismatchFails) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Result<std::vector<double>> x = SolveLinearSystem(a, {1});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(RidgeTest, RecoversLinearCoefficients) {
  // y = 3 x0 - 2 x1 with noiseless data -> ridge(0) recovers exactly.
  Rng rng(1);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 1);
  }
  Result<std::vector<double>> w = RidgeSolve(x, y, 1e-10);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 3.0, 1e-5);
  EXPECT_NEAR((*w)[1], -2.0, 1e-5);
}

TEST(RidgeTest, RegularizationShrinksWeights) {
  Rng rng(2);
  Matrix x(30, 2);
  std::vector<double> y(30);
  for (size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 5.0 * x(i, 0);
  }
  Result<std::vector<double>> small = RidgeSolve(x, y, 1e-8);
  Result<std::vector<double>> large = RidgeSolve(x, y, 100.0);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(std::fabs((*large)[0]), std::fabs((*small)[0]));
}

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig->eigenvalues[1], 1.0, 1e-9);
}

TEST(EigenTest, ReconstructsSymmetricMatrix) {
  Rng rng(7);
  size_t n = 5;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  // A = V diag(l) V^T.
  Matrix v = eig->eigenvectors;
  Matrix d(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) d(i, i) = eig->eigenvalues[i];
  Matrix reconstructed = v.MatMul(d).MatMul(v.Transpose());
  EXPECT_LT(reconstructed.Subtract(a).FrobeniusNorm(), 1e-6);
}

TEST(EigenTest, EigenvaluesSortedDescending) {
  Rng rng(9);
  size_t n = 6;
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng.Normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  Result<EigenDecomposition> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 1; i < n; ++i) {
    EXPECT_GE(eig->eigenvalues[i - 1], eig->eigenvalues[i]);
  }
}

TEST(VectorOpsTest, DotAndNorm) {
  EXPECT_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_NEAR(Norm2({3, 4}), 5.0, 1e-12);
}

}  // namespace
}  // namespace tsdm
