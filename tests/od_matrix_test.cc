#include "src/data/od_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace tsdm {
namespace {

TEST(OdMatrixTest, TripAccumulation) {
  OdMatrixSequence od(3, 4, 3600.0);
  od.AddTrip(0, 0, 1);
  od.AddTrip(0, 0, 1);
  od.AddTrip(1, 2, 0, 2.5);
  EXPECT_EQ(od.Count(0, 0, 1), 2.0);
  EXPECT_EQ(od.Count(1, 2, 0), 2.5);
  EXPECT_EQ(od.Count(0, 2, 0), 0.0);
  EXPECT_EQ(od.OutFlow(0, 0), 2.0);
  EXPECT_EQ(od.InFlow(0, 1), 2.0);
}

TEST(OdMatrixTest, IntervalLookup) {
  OdMatrixSequence od(2, 4, 3600.0, 1000.0);
  EXPECT_EQ(od.IntervalFor(999.0), -1);
  EXPECT_EQ(od.IntervalFor(1000.0), 0);
  EXPECT_EQ(od.IntervalFor(1000.0 + 3 * 3600.0 + 10), 3);
  EXPECT_EQ(od.IntervalFor(1000.0 + 5 * 3600.0), -1);
}

TEST(OdMatrixTest, AddTrajectoryBucketsOriginDestination) {
  OdMatrixSequence od(4, 2, 3600.0);
  // Regions: 2x2 grid of 100m cells.
  auto region_of = [](double x, double y) {
    int col = x < 100.0 ? 0 : 1;
    int row = y < 100.0 ? 0 : 1;
    return row * 2 + col;
  };
  Trajectory t({{10.0, 20.0, 20.0}, {600.0, 150.0, 150.0}});
  ASSERT_TRUE(od.AddTrajectory(t, region_of).ok());
  EXPECT_EQ(od.Count(0, 0, 3), 1.0);
  // Too-short trajectory rejected.
  Trajectory single({{0.0, 1.0, 1.0}});
  EXPECT_FALSE(od.AddTrajectory(single, region_of).ok());
}

TEST(OdCompletionTest, FillsMissingEntries) {
  Rng rng(5);
  int regions = 4, intervals = 24;
  OdMatrixSequence truth(regions, intervals, 3600.0);
  // Gravity-like ground truth with a diurnal profile.
  std::vector<double> attraction = {1.0, 2.0, 3.0, 1.5};
  for (int t = 0; t < intervals; ++t) {
    double level = 20.0 + 10.0 * std::sin(2.0 * M_PI * t / 24.0);
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) {
        truth.SetCount(t, o, d,
                       level * attraction[o] * attraction[d] / 10.0);
      }
    }
  }
  OdMatrixSequence corrupted = truth;
  int removed = 0;
  for (int t = 0; t < intervals; ++t) {
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) {
        if (rng.Bernoulli(0.3)) {
          corrupted.SetCount(
              t, o, d, std::numeric_limits<double>::quiet_NaN());
          ++removed;
        }
      }
    }
  }
  ASSERT_GT(removed, 0);
  OdCompletion completion;
  ASSERT_TRUE(completion.Complete(&corrupted).ok());
  // Everything filled, non-negative, and close to the truth.
  double err = 0.0;
  for (int t = 0; t < intervals; ++t) {
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) {
        double v = corrupted.Count(t, o, d);
        ASSERT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
        err += std::fabs(v - truth.Count(t, o, d));
      }
    }
  }
  double mean_truth = 0.0;
  for (int t = 0; t < intervals; ++t) {
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) mean_truth += truth.Count(t, o, d);
    }
  }
  // Average error well under the average magnitude.
  EXPECT_LT(err / removed, 0.25 * mean_truth /
                               (intervals * regions * regions));
}

TEST(OdCompletionTest, EmptyMatrixRejected) {
  OdMatrixSequence empty;
  EXPECT_FALSE(OdCompletion().Complete(&empty).ok());
}

}  // namespace
}  // namespace tsdm
