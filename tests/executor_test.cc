#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/histogram_ext.h"
#include "src/common/thread_pool.h"
#include "src/core/executor.h"
#include "src/core/pipeline.h"
#include "src/obs/metrics_export.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

// --- ThreadPool ----------------------------------------------------------

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumThreads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 51);
}

TEST(ThreadPoolTest, WorkerIdIsBoundedAndUnsetOffPool) {
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  ThreadPool pool(3);
  std::atomic<int> bad_ids{0};
  for (int i = 0; i < 60; ++i) {
    pool.Submit([&bad_ids] {
      int id = ThreadPool::CurrentWorkerId();
      if (id < 0 || id >= 3) bad_ids.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad_ids.load(), 0);
}

TEST(ThreadPoolTest, ResizeGrowsAndShrinks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.NumThreads(), 2);
  pool.Resize(6);
  EXPECT_EQ(pool.NumThreads(), 6);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);

  pool.Resize(1);
  EXPECT_EQ(pool.NumThreads(), 1);
  for (int i = 0; i < 100; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);

  // Resize clamps to at least one worker; a no-op resize is fine.
  pool.Resize(0);
  EXPECT_EQ(pool.NumThreads(), 1);
  pool.Resize(1);
  EXPECT_EQ(pool.NumThreads(), 1);
}

TEST(ThreadPoolTest, ResizeKeepsWorkerIdsDense) {
  ThreadPool pool(8);
  pool.Resize(3);
  std::atomic<int> bad_ids{0};
  for (int i = 0; i < 120; ++i) {
    pool.Submit([&bad_ids] {
      int id = ThreadPool::CurrentWorkerId();
      if (id < 0 || id >= 3) bad_ids.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad_ids.load(), 0);
}

TEST(ThreadPoolTest, SubmitDuringResizeLosesNoTasks) {
  // Producers hammer Submit while the control thread walks the pool size up
  // and down. Every submitted task must run exactly once; under TSan this
  // also shakes out data races between Resize and the worker loops.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<int> submitted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter, &submitted, &stop] {
      while (!stop.load()) {
        pool.Submit([&counter] { counter.fetch_add(1); });
        submitted.fetch_add(1);
      }
    });
  }
  const int sizes[] = {1, 7, 2, 5, 1, 8, 3};
  for (int n : sizes) {
    pool.Resize(n);
    EXPECT_EQ(pool.NumThreads(), n);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), submitted.load());
  EXPECT_GT(counter.load(), 0);
}

// --- LatencyHistogram / StageMetricsRegistry -----------------------------

TEST(LatencyHistogramTest, BasicStatsAndQuantiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.QuantileSeconds(0.5), 0.0);
  for (int i = 0; i < 90; ++i) h.Add(0.001);
  for (int i = 0; i < 10; ++i) h.Add(0.1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.001);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.1);
  EXPECT_NEAR(h.MeanSeconds(), 0.0109, 1e-9);
  // p50 lands in the 1ms bin, p95 in the 100ms bin; bins are ~21% wide.
  EXPECT_NEAR(h.QuantileSeconds(0.5), 0.001, 0.0005);
  EXPECT_NEAR(h.QuantileSeconds(0.95), 0.1, 0.05);
  EXPECT_LE(h.QuantileSeconds(0.5), h.QuantileSeconds(0.95));
}

TEST(LatencyHistogramTest, MergeMatchesCombinedAdds) {
  LatencyHistogram a, b, combined;
  for (double v : {0.002, 0.004, 0.008}) {
    a.Add(v);
    combined.Add(v);
  }
  for (double v : {0.5, 1.5}) {
    b.Add(v);
    combined.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.total_seconds(), combined.total_seconds());
  EXPECT_DOUBLE_EQ(a.MinSeconds(), combined.MinSeconds());
  EXPECT_DOUBLE_EQ(a.MaxSeconds(), combined.MaxSeconds());
  EXPECT_DOUBLE_EQ(a.QuantileSeconds(0.5), combined.QuantileSeconds(0.5));
}

TEST(StageMetricsRegistryTest, MergeAccumulatesPerStage) {
  StageMetricsRegistry a, b;
  a.ForStage("clean").invocations = 3;
  a.ForStage("clean").latency.Add(0.01);
  b.ForStage("clean").invocations = 2;
  b.ForStage("clean").failures = 1;
  b.ForStage("forecast").invocations = 5;
  a.Merge(b);
  EXPECT_EQ(a.ForStage("clean").invocations, 5u);
  EXPECT_EQ(a.ForStage("clean").failures, 1u);
  EXPECT_EQ(a.ForStage("forecast").invocations, 5u);
  EXPECT_NE(a.ToTable().find("clean"), std::string::npos);
}

// --- BatchExecutor -------------------------------------------------------

std::vector<PipelineContext> MakeShards(int num_shards, uint64_t base_seed) {
  std::vector<PipelineContext> shards(num_shards);
  CorrelatedFieldSpec spec;
  spec.grid_rows = 3;
  spec.grid_cols = 3;
  for (int i = 0; i < num_shards; ++i) {
    uint64_t seed = base_seed + static_cast<uint64_t>(i);
    shards[i].data = GenerateCorrelatedField(spec, 240, seed);
    Rng inject_rng(seed * 7919 + 1);
    InjectMissingMcar(&shards[i].data.series(), 0.15, &inject_rng);
  }
  return shards;
}

Pipeline MakeGovernanceForecastPipeline() {
  RangeRule range{-1000.0, 1000.0};
  Pipeline p;
  p.Emplace<AssessQualityStage>(range)
      .Emplace<CleanStage>(range)
      .Emplace<ImputeStage>()
      .Emplace<ForecastStage>(4, 8);
  return p;
}

TEST(BatchExecutorTest, DeterministicAcrossThreadCounts) {
  Pipeline pipeline = MakeGovernanceForecastPipeline();
  std::vector<PipelineContext> seq_shards = MakeShards(16, 100);
  std::vector<PipelineContext> par_shards = MakeShards(16, 100);

  ExecutorOptions seq_opts;
  seq_opts.num_threads = 1;
  BatchReport seq = BatchExecutor(seq_opts).Run(pipeline, &seq_shards);
  ExecutorOptions par_opts;
  par_opts.num_threads = 8;
  BatchReport par = BatchExecutor(par_opts).Run(pipeline, &par_shards);

  ASSERT_EQ(seq.shards.size(), 16u);
  ASSERT_EQ(par.shards.size(), 16u);
  EXPECT_EQ(seq.NumOk(), 16u);
  EXPECT_EQ(par.NumOk(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(par.shards[i].shard, i);
    ASSERT_EQ(seq.shards[i].report.stages.size(),
              par.shards[i].report.stages.size());
    for (size_t s = 0; s < seq.shards[i].report.stages.size(); ++s) {
      EXPECT_EQ(seq.shards[i].report.stages[s].status.code(),
                par.shards[i].report.stages[s].status.code());
    }
    // Shard work is single-threaded and seed-driven, so every context
    // metric and artifact must match bit-for-bit across thread counts.
    EXPECT_EQ(seq_shards[i].metrics, par_shards[i].metrics);
    EXPECT_EQ(seq_shards[i].artifacts, par_shards[i].artifacts);
  }
  // Aggregate invocation counts match too (timings of course differ).
  for (const auto& [name, m] : seq.metrics.stages()) {
    const auto& pm = par.metrics.stages();
    auto it = pm.find(name);
    ASSERT_NE(it, pm.end()) << name;
    EXPECT_EQ(m.invocations, it->second.invocations) << name;
    EXPECT_EQ(m.failures, it->second.failures) << name;
  }
}

/// Fails on shards whose context carries the poison marker.
class PoisonStage : public PipelineStage {
 public:
  std::string Name() const override { return "test/poison"; }
  Status Run(PipelineContext* context) override {
    if (context->notes.count("poison")) {
      return Status::Internal("poisoned shard");
    }
    return Status::OK();
  }
};

/// Records that the full pipeline reached its final stage.
class MarkerStage : public PipelineStage {
 public:
  std::string Name() const override { return "test/marker"; }
  Status Run(PipelineContext* context) override {
    context->metrics["reached_end"] = 1.0;
    return Status::OK();
  }
};

TEST(BatchExecutorTest, PoisonedShardIsQuarantinedOthersComplete) {
  Pipeline pipeline;
  pipeline.Emplace<PoisonStage>().Emplace<MarkerStage>();
  std::vector<PipelineContext> shards(16);
  shards[7].notes["poison"] = "1";

  ExecutorOptions opts;
  opts.num_threads = 4;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);

  EXPECT_EQ(report.NumOk(), 15u);
  EXPECT_EQ(report.NumQuarantined(), 1u);
  EXPECT_FALSE(report.AllOk());
  ASSERT_TRUE(report.shards[7].quarantined());
  // The quarantined shard preserves the failing stage's report...
  ASSERT_EQ(report.shards[7].report.stages.size(), 1u);
  EXPECT_EQ(report.shards[7].report.stages[0].index, 0u);
  EXPECT_EQ(report.shards[7].report.stages[0].status.code(),
            StatusCode::kInternal);
  // ...and never ran the rest of its pipeline.
  EXPECT_EQ(shards[7].metrics.count("reached_end"), 0u);
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i == 7) continue;
    EXPECT_FALSE(report.shards[i].quarantined()) << i;
    EXPECT_EQ(shards[i].metrics.at("reached_end"), 1.0) << i;
  }
  EXPECT_NE(report.ToString().find("quarantined shard 7"),
            std::string::npos);
}

/// Transient stage that fails until the per-shard attempt counter (kept in
/// the context, so it is thread-safe) reaches `succeed_on`.
class FlakyStage : public PipelineStage {
 public:
  explicit FlakyStage(int succeed_on) : succeed_on_(succeed_on) {}
  std::string Name() const override { return "test/flaky"; }
  bool Transient() const override { return true; }
  Status Run(PipelineContext* context) override {
    double attempt = ++context->metrics["flaky_attempts"];
    if (attempt < succeed_on_) {
      return Status::Internal("transient glitch");
    }
    return Status::OK();
  }

 private:
  int succeed_on_;
};

TEST(BatchExecutorTest, TransientStageSucceedsOnRetry) {
  Pipeline pipeline;
  pipeline.Emplace<FlakyStage>(2).Emplace<MarkerStage>();
  std::vector<PipelineContext> shards(8);

  ExecutorOptions opts;
  opts.num_threads = 4;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_seconds = 0.0;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);

  EXPECT_EQ(report.NumOk(), 8u);
  for (const auto& sr : report.shards) {
    EXPECT_EQ(sr.report.stages[0].attempts, 2);
    EXPECT_TRUE(sr.report.stages[0].status.ok());
  }
  const auto& flaky = report.metrics.stages().at("test/flaky");
  EXPECT_EQ(flaky.invocations, 16u);  // 2 attempts x 8 shards
  EXPECT_EQ(flaky.failures, 8u);
  EXPECT_EQ(flaky.retries, 8u);
}

TEST(BatchExecutorTest, AttemptsTotalSurfacesRetryPressure) {
  Pipeline pipeline;
  pipeline.Emplace<FlakyStage>(2).Emplace<MarkerStage>();
  std::vector<PipelineContext> shards(8);

  ExecutorOptions opts;
  opts.num_threads = 4;
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff_seconds = 0.0;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);

  ASSERT_EQ(report.NumOk(), 8u);
  // Each shard consumed 2 flaky attempts + 1 marker attempt.
  for (const auto& sr : report.shards) {
    EXPECT_EQ(sr.AttemptsTotal(), 3u) << sr.shard;
  }
  EXPECT_EQ(report.AttemptsTotal(), 24u);
  // The aggregate is derived from per-shard stage reports, so it must
  // agree with the independently accumulated invocation counters.
  uint64_t invocations = 0;
  for (const auto& [name, m] : report.metrics.stages()) {
    invocations += m.invocations;
  }
  EXPECT_EQ(report.AttemptsTotal(), invocations);
  // ...and it is what the Prometheus exporter surfaces.
  EXPECT_NE(MetricsExporter::BatchToPrometheus(report)
                .find("tsdm_batch_attempts_total 24\n"),
            std::string::npos);
}

TEST(BatchExecutorTest, RetriesExhaustedQuarantinesShard) {
  Pipeline pipeline;
  pipeline.Emplace<FlakyStage>(5);
  std::vector<PipelineContext> shards(2);

  ExecutorOptions opts;
  opts.num_threads = 2;
  opts.retry.max_attempts = 3;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);

  EXPECT_EQ(report.NumQuarantined(), 2u);
  for (const auto& sr : report.shards) {
    EXPECT_EQ(sr.report.stages[0].attempts, 3);
    EXPECT_FALSE(sr.report.stages[0].status.ok());
  }
}

TEST(BatchExecutorTest, NonTransientStageIsNeverRetried) {
  Pipeline pipeline;
  pipeline.Emplace<PoisonStage>();
  std::vector<PipelineContext> shards(1);
  shards[0].notes["poison"] = "1";

  ExecutorOptions opts;
  opts.retry.max_attempts = 5;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);
  EXPECT_EQ(report.shards[0].report.stages[0].attempts, 1);
  EXPECT_EQ(report.metrics.stages().at("test/poison").invocations, 1u);
}

TEST(BatchExecutorTest, OversubscriptionSmoke) {
  // 64 shards on 4 threads: every shard completes exactly once, in shard
  // order in the report, with the full stage chain recorded.
  Pipeline pipeline = MakeGovernanceForecastPipeline();
  std::vector<PipelineContext> shards = MakeShards(64, 900);
  ExecutorOptions opts;
  opts.num_threads = 4;
  BatchReport report = BatchExecutor(opts).Run(pipeline, &shards);

  ASSERT_EQ(report.shards.size(), 64u);
  EXPECT_EQ(report.NumOk(), 64u);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(report.shards[i].shard, i);
    EXPECT_EQ(report.shards[i].report.stages.size(), 4u);
    EXPECT_EQ(shards[i].data.series().CountMissing(), 0u) << i;
  }
  const auto& impute = report.metrics.stages().at("governance/impute");
  EXPECT_EQ(impute.invocations, 64u);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(BatchExecutorTest, EmptyBatchIsOk) {
  Pipeline pipeline = MakeGovernanceForecastPipeline();
  std::vector<PipelineContext> shards;
  BatchReport report = BatchExecutor().Run(pipeline, &shards);
  EXPECT_TRUE(report.AllOk());
  EXPECT_EQ(report.shards.size(), 0u);
  EXPECT_EQ(report.AttemptsTotal(), 0u);
}

}  // namespace
}  // namespace tsdm
