#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/correlated_time_series.h"
#include "src/data/grid_sequence.h"
#include "src/data/sensor_graph.h"
#include "src/data/trajectory.h"

namespace tsdm {
namespace {

TEST(SensorGraphTest, AddAndQueryEdges) {
  SensorGraph g;
  int a = g.AddSensor(0, 0);
  int b = g.AddSensor(1, 0);
  int c = g.AddSensor(0, 1);
  ASSERT_TRUE(g.AddEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.AddEdge(b, c, 0.25).ok());
  EXPECT_EQ(g.NumSensors(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Weight(a, b), 0.5);
  EXPECT_EQ(g.Weight(b, a), 0.5);  // undirected
  EXPECT_EQ(g.Weight(a, c), 0.0);
  EXPECT_TRUE(g.HasEdge(b, c));
}

TEST(SensorGraphTest, RejectsSelfLoopAndBadIds) {
  SensorGraph g;
  int a = g.AddSensor(0, 0);
  EXPECT_FALSE(g.AddEdge(a, a, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(a, 99, 1.0).ok());
}

TEST(SensorGraphTest, OverwritingEdgeKeepsCount) {
  SensorGraph g;
  int a = g.AddSensor(0, 0);
  int b = g.AddSensor(1, 1);
  ASSERT_TRUE(g.AddEdge(a, b, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(a, b, 2.0).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Weight(b, a), 2.0);
}

TEST(SensorGraphTest, TransitionMatrixRowsSumToOne) {
  std::vector<SensorGraph::Sensor> pos = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  SensorGraph g = SensorGraph::KNearest(pos, 2, 1.0);
  Matrix t = g.TransitionMatrix();
  for (size_t r = 0; r < t.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < t.cols(); ++c) sum += t(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SensorGraphTest, KNearestConnectsEveryone) {
  std::vector<SensorGraph::Sensor> pos;
  for (int i = 0; i < 10; ++i) pos.push_back({i * 1.0, 0.0});
  SensorGraph g = SensorGraph::KNearest(pos, 3, 2.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(g.Neighbors(i).size(), 3u);
  }
}

TEST(CorrelatedTimeSeriesTest, ValidateChecksShape) {
  SensorGraph g;
  g.AddSensor(0, 0);
  g.AddSensor(1, 0);
  CorrelatedTimeSeries bad(g, TimeSeries::Regular(0, 1, 5, 3));
  EXPECT_FALSE(bad.Validate().ok());
  CorrelatedTimeSeries good(g, TimeSeries::Regular(0, 1, 5, 2));
  EXPECT_TRUE(good.Validate().ok());
}

TEST(CorrelatedTimeSeriesTest, SensorCorrelationIgnoresMissing) {
  SensorGraph g;
  g.AddSensor(0, 0);
  g.AddSensor(1, 0);
  g.AddEdge(0, 1, 1.0);
  TimeSeries ts = TimeSeries::Regular(0, 1, 6, 2);
  for (int t = 0; t < 6; ++t) {
    ts.Set(t, 0, t);
    ts.Set(t, 1, 2.0 * t);
  }
  ts.Set(3, 1, kMissingValue);  // drop one pair
  CorrelatedTimeSeries cts(g, ts);
  EXPECT_NEAR(cts.SensorCorrelation(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(cts.MeanEdgeCorrelation(), 1.0, 1e-9);
}

TEST(TrajectoryTest, LengthDurationSpeed) {
  Trajectory t({{0, 0, 0}, {10, 30, 40}});
  EXPECT_DOUBLE_EQ(t.Duration(), 10.0);
  EXPECT_DOUBLE_EQ(t.Length(), 50.0);
  EXPECT_DOUBLE_EQ(t.AverageSpeed(), 5.0);
  EXPECT_TRUE(t.IsTimeOrdered());
}

TEST(TrajectoryTest, PositionInterpolation) {
  Trajectory t({{0, 0, 0}, {10, 100, 0}});
  TrajectoryPoint mid = t.PositionAt(5.0);
  EXPECT_NEAR(mid.x, 50.0, 1e-9);
  EXPECT_NEAR(mid.y, 0.0, 1e-9);
  // Clamped outside the range.
  EXPECT_EQ(t.PositionAt(-5.0).x, 0.0);
  EXPECT_EQ(t.PositionAt(99.0).x, 100.0);
}

TEST(TrajectoryTest, ResampleByTimeUniformSpacing) {
  Trajectory t({{0, 0, 0}, {9, 90, 0}});
  Trajectory r = t.ResampleByTime(3.0);
  ASSERT_EQ(r.NumPoints(), 4u);
  EXPECT_NEAR(r.point(1).x, 30.0, 1e-9);
  EXPECT_NEAR(r.point(3).x, 90.0, 1e-9);
}

TEST(GridSequenceTest, IndexingAndFrameSum) {
  GridSequence g(3, 2, 2, 1);
  g.Set(0, 0, 0, 0, 1.0);
  g.Set(0, 1, 1, 0, 2.0);
  g.Set(2, 0, 1, 0, 5.0);
  EXPECT_EQ(g.At(0, 0, 0, 0), 1.0);
  EXPECT_EQ(g.FrameSum(0, 0), 3.0);
  EXPECT_EQ(g.FrameSum(1, 0), 0.0);
  EXPECT_EQ(g.FrameSum(2, 0), 5.0);
}

TEST(GridSequenceTest, CellSeriesAndRows) {
  GridSequence g(4, 1, 1, 2);
  for (size_t t = 0; t < 4; ++t) {
    g.Set(t, 0, 0, 0, static_cast<double>(t));
    g.Set(t, 0, 0, 1, 10.0 + t);
  }
  std::vector<double> s = g.CellSeries(0, 0, 1);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[3], 13.0);
  auto rows = g.ToRows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[2][0], 2.0);
  EXPECT_EQ(rows[2][1], 12.0);
}

}  // namespace
}  // namespace tsdm
