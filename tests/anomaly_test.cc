#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/analytics/anomaly/detector.h"
#include "src/analytics/anomaly/evaluation.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

/// Clean series + spiked test copy + labels.
struct AnomalyFixture {
  std::vector<double> train;
  std::vector<double> test;
  std::vector<int> labels;
};

AnomalyFixture MakeFixture(int seed, double magnitude = 6.0,
                           int anomalies = 12) {
  Rng rng(seed);
  SeriesSpec spec = TrafficLikeSpec(24);
  AnomalyFixture fx;
  fx.train = GenerateSeries(spec, 600, &rng);
  TimeSeries test_ts = TimeSeries::Regular(0, 1, 600, 1);
  test_ts.SetChannel(0, GenerateSeries(spec, 600, &rng));
  auto injected = InjectAnomalies(&test_ts, AnomalyKind::kSpike, anomalies,
                                  magnitude, &rng);
  fx.test = test_ts.Channel(0);
  fx.labels = AnomalyLabels(injected, 0, 600);
  return fx;
}

TEST(EvalTest, RocAucProperties) {
  // Perfect separation -> 1; inverted -> 0; random-ish -> ~0.5.
  std::vector<double> scores = {0.9, 0.8, 0.1, 0.2};
  std::vector<int> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
  std::vector<int> inverted = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(scores, inverted), 0.0);
  std::vector<int> empty_class = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, empty_class), 0.5);
}

TEST(EvalTest, TiedScoresGetAverageRank) {
  std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  std::vector<int> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(EvalTest, PrecisionAtKAndBestF1) {
  std::vector<double> scores = {0.9, 0.8, 0.7, 0.1};
  std::vector<int> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 2), 0.5);
  EXPECT_GT(BestF1(scores, labels), 0.6);
  EXPECT_GT(AveragePrecision(scores, labels), 0.5);
}

TEST(ZScoreTest, FlagsObviousSpike) {
  ZScoreDetector d;
  std::vector<double> train(200, 5.0);
  for (size_t i = 0; i < train.size(); ++i) train[i] += 0.01 * (i % 7);
  ASSERT_TRUE(d.Fit(train).ok());
  std::vector<double> data = train;
  data[100] = 50.0;
  Result<std::vector<double>> s = d.Score(data);
  ASSERT_TRUE(s.ok());
  double max_score = 0.0;
  size_t argmax = 0;
  for (size_t i = 0; i < s->size(); ++i) {
    if ((*s)[i] > max_score) {
      max_score = (*s)[i];
      argmax = i;
    }
  }
  EXPECT_EQ(argmax, 100u);
}

TEST(DetectorContractTest, UnfittedDetectorsFail) {
  EXPECT_FALSE(ZScoreDetector().Score({1.0}).ok());
  EXPECT_FALSE(MadDetector().Score({1.0}).ok());
  EXPECT_FALSE(PcaReconstructionDetector().Score({1.0}).ok());
  EXPECT_FALSE(ReconstructionEnsembleDetector().Score({1.0}).ok());
}

// All detectors must reach decent AUC on clean training data.
class DetectorAucTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<AnomalyDetector> Make() const {
    std::string name = GetParam();
    if (name == "zscore") return std::make_unique<ZScoreDetector>();
    if (name == "mad") return std::make_unique<MadDetector>();
    if (name == "pca") {
      return std::make_unique<PcaReconstructionDetector>(16, 3);
    }
    return std::make_unique<ReconstructionEnsembleDetector>();
  }
};

TEST_P(DetectorAucTest, DetectsInjectedSpikes) {
  AnomalyFixture fx = MakeFixture(3);
  auto detector = Make();
  ASSERT_TRUE(detector->Fit(fx.train).ok());
  Result<std::vector<double>> scores = detector->Score(fx.test);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(RocAuc(*scores, fx.labels), 0.7) << detector->Name();
}

INSTANTIATE_TEST_SUITE_P(Detectors, DetectorAucTest,
                         ::testing::Values("zscore", "mad", "pca",
                                           "ensemble"));

TEST(EnsembleTest, BeatsOrMatchesWorstMember) {
  AnomalyFixture fx = MakeFixture(5);
  ReconstructionEnsembleDetector ensemble;
  ASSERT_TRUE(ensemble.Fit(fx.train).ok());
  Result<std::vector<double>> es = ensemble.Score(fx.test);
  ASSERT_TRUE(es.ok());
  double ensemble_auc = RocAuc(*es, fx.labels);
  double worst = 1.0;
  for (size_t m = 0; m < ensemble.NumMembers(); ++m) {
    Result<std::vector<double>> ms = ensemble.MemberScore(m, fx.test);
    if (!ms.ok()) continue;
    worst = std::min(worst, RocAuc(*ms, fx.labels));
  }
  EXPECT_GE(ensemble_auc, worst);
  EXPECT_GT(ensemble.NumMembers(), 4u);
}

TEST(RobustTrainingTest, SurvivesPollutedTrainingData) {
  Rng rng(7);
  AnomalyFixture fx = MakeFixture(7);
  // Pollute 10% of training points with huge spikes.
  std::vector<double> polluted = fx.train;
  for (size_t i = 0; i < polluted.size(); i += 10) {
    polluted[i] += rng.Bernoulli(0.5) ? 60.0 : -60.0;
  }
  ZScoreDetector naive;
  ASSERT_TRUE(naive.Fit(polluted).ok());
  RobustTrainingWrapper robust(std::make_unique<ZScoreDetector>(), 3.0, 5);
  ASSERT_TRUE(robust.Fit(polluted).ok());
  double auc_naive = RocAuc(*naive.Score(fx.test), fx.labels);
  double auc_robust = RocAuc(*robust.Score(fx.test), fx.labels);
  EXPECT_GE(auc_robust, auc_naive - 0.02);
  EXPECT_NE(robust.Name().find("robust["), std::string::npos);
}

TEST(RankNormalizeTest, MapsToUnitRange) {
  std::vector<double> scores = {5.0, 1.0, 3.0};
  std::vector<double> r = RankNormalize(scores);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_DOUBLE_EQ(r[2], 0.5);
  EXPECT_TRUE(RankNormalize({}).empty());
}

TEST(PcaDetectorTest, WindowErrorProfileShape) {
  AnomalyFixture fx = MakeFixture(9);
  PcaReconstructionDetector d(16, 3);
  ASSERT_TRUE(d.Fit(fx.train).ok());
  std::vector<double> window(fx.test.begin(), fx.test.begin() + 16);
  Result<std::vector<double>> profile = d.WindowErrorProfile(window);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->size(), 16u);
  EXPECT_FALSE(d.WindowErrorProfile({1.0, 2.0}).ok());
}

}  // namespace
}  // namespace tsdm
