#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/forecast/decompose.h"
#include "src/analytics/forecast/metrics.h"
#include "src/analytics/robust/adaptation.h"
#include "src/common/stats.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

std::vector<double> TrendSeasonal(int n, double slope, double amp,
                                  int period, double noise, int seed) {
  Rng rng(seed);
  SeriesSpec spec;
  spec.level = 10.0;
  spec.trend_per_step = slope;
  spec.seasonal = {{period, amp, 0.0}};
  spec.noise_stddev = noise;
  return GenerateSeries(spec, n, &rng);
}

TEST(DecomposeTest, Validation) {
  EXPECT_FALSE(DecomposeAdditive({1, 2, 3}, 1).ok());
  EXPECT_FALSE(DecomposeAdditive({1, 2, 3}, 4).ok());
}

TEST(DecomposeTest, ComponentsSumToSeries) {
  std::vector<double> v = TrendSeasonal(240, 0.05, 4.0, 12, 0.3, 1);
  Result<SeasonalDecomposition> d = DecomposeAdditive(v, 12);
  ASSERT_TRUE(d.ok());
  for (size_t t = 0; t < v.size(); ++t) {
    EXPECT_NEAR(d->trend[t] + d->seasonal[t] + d->remainder[t], v[t],
                1e-9);
  }
  // Seasonal profile sums to ~0 and repeats with the period.
  double profile_sum = 0.0;
  for (double s : d->seasonal_profile) profile_sum += s;
  EXPECT_NEAR(profile_sum, 0.0, 1e-9);
  EXPECT_NEAR(d->seasonal[0], d->seasonal[12], 1e-12);
}

TEST(DecomposeTest, RecoversPlantedStructure) {
  std::vector<double> v = TrendSeasonal(360, 0.1, 5.0, 12, 0.2, 2);
  Result<SeasonalDecomposition> d = DecomposeAdditive(v, 12);
  ASSERT_TRUE(d.ok());
  // Trend slope ~ 0.1 over the middle section.
  double slope = (d->trend[300] - d->trend[60]) / 240.0;
  EXPECT_NEAR(slope, 0.1, 0.02);
  // Seasonal amplitude ~ 5.
  double max_s = *std::max_element(d->seasonal_profile.begin(),
                                   d->seasonal_profile.end());
  EXPECT_NEAR(max_s, 5.0, 1.0);
  // Remainder is small relative to the seasonal signal.
  EXPECT_LT(Stdev(d->remainder), 1.0);
}

TEST(DecomposeTest, DeseasonalizeRemovesSeasonality) {
  std::vector<double> v = TrendSeasonal(360, 0.0, 5.0, 12, 0.2, 3);
  Result<std::vector<double>> flat = Deseasonalize(v, 12);
  ASSERT_TRUE(flat.ok());
  EXPECT_LT(std::fabs(Autocorrelation(*flat, 12)),
            std::fabs(Autocorrelation(v, 12)));
}

TEST(DecomposedForecasterTest, BeatsNaiveOnTrendSeasonalData) {
  std::vector<double> v = TrendSeasonal(360, 0.08, 5.0, 12, 0.4, 4);
  std::vector<double> train(v.begin(), v.end() - 24);
  std::vector<double> actual(v.end() - 24, v.end());
  DecomposedForecaster model(12);
  NaiveForecaster naive;
  ASSERT_TRUE(model.Fit(train).ok());
  ASSERT_TRUE(naive.Fit(train).ok());
  auto fc = model.Forecast(24);
  ASSERT_TRUE(fc.ok());
  EXPECT_LT(MeanAbsoluteError(actual, *fc),
            MeanAbsoluteError(actual, *naive.Forecast(24)));
}

TEST(DecomposedForecasterTest, ComponentsExplainTheForecast) {
  std::vector<double> v = TrendSeasonal(360, 0.08, 5.0, 12, 0.4, 5);
  DecomposedForecaster model(12);
  ASSERT_TRUE(model.Fit(v).ok());
  auto parts = model.ForecastComponents(6);
  auto total = model.Forecast(6);
  ASSERT_TRUE(parts.ok());
  ASSERT_TRUE(total.ok());
  for (int h = 0; h < 6; ++h) {
    EXPECT_NEAR(parts->trend[h] + parts->seasonal[h] + parts->remainder[h],
                (*total)[h], 1e-9);
  }
  // The trend component rises (slope was positive).
  EXPECT_GT(parts->trend[5], parts->trend[0]);
}

std::vector<double> Ar1Series(double phi, double level, int n, int seed) {
  Rng rng(seed);
  std::vector<double> v = {level};
  for (int i = 1; i < n; ++i) {
    v.push_back(level + phi * (v.back() - level) + rng.Normal(0.0, 0.5));
  }
  return v;
}

TEST(AdaptationTest, Validation) {
  AdaptationOptions opts;
  opts.order = 8;
  EXPECT_FALSE(FitAdaptedAr({}, {1, 2, 3}, opts).ok());
  AdaptedArModel unfitted;
  EXPECT_FALSE(unfitted.ForecastFrom({1, 2, 3}, 2).ok());
}

TEST(AdaptationTest, UsesSourceWhenDomainsMatch) {
  // Same dynamics, tiny target: the annealed weight should be > 0 and the
  // adapted model should beat target-only fitting.
  std::vector<double> source = Ar1Series(0.85, 10.0, 2000, 1);
  std::vector<double> target = Ar1Series(0.85, 10.0, 60, 2);
  std::vector<double> probe = Ar1Series(0.85, 10.0, 300, 3);
  std::vector<double> context(probe.begin(), probe.end() - 12);
  std::vector<double> actual(probe.end() - 12, probe.end());

  AdaptationOptions opts;
  opts.order = 6;
  Result<AdaptedArModel> adapted = FitAdaptedAr(source, target, opts);
  Result<AdaptedArModel> target_only = FitAdaptedAr({}, target, opts);
  ASSERT_TRUE(adapted.ok());
  ASSERT_TRUE(target_only.ok());
  auto fc_adapted = adapted->ForecastFrom(context, 12);
  auto fc_target = target_only->ForecastFrom(context, 12);
  ASSERT_TRUE(fc_adapted.ok());
  ASSERT_TRUE(fc_target.ok());
  EXPECT_LE(MeanAbsoluteError(actual, *fc_adapted),
            MeanAbsoluteError(actual, *fc_target) * 1.05);
}

TEST(AdaptationTest, RejectsMismatchedSource) {
  // Source with opposite dynamics: annealing should drive the source
  // weight to (near) zero rather than import the wrong behaviour.
  std::vector<double> source = Ar1Series(-0.8, 50.0, 2000, 4);
  std::vector<double> target = Ar1Series(0.85, 10.0, 120, 5);
  AdaptationOptions opts;
  opts.order = 4;
  Result<AdaptedArModel> adapted = FitAdaptedAr(source, target, opts);
  ASSERT_TRUE(adapted.ok());
  EXPECT_LE(adapted->source_weight, 0.2);
}

}  // namespace
}  // namespace tsdm
