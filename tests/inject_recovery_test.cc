#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/core/pipeline.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

// Round-trip tests for every injector in src/sim/inject.h: corrupt a clean
// field, run the governance stages (CleanStage + ImputeStage), and check
// (a) the recovered series is close to the clean ground truth and (b) the
// cleaned_entries / imputed_entries metrics match the injected counts.

constexpr int kSteps = 400;

CorrelatedTimeSeries CleanField(uint64_t seed) {
  CorrelatedFieldSpec spec;
  spec.grid_rows = 4;
  spec.grid_cols = 4;
  return GenerateCorrelatedField(spec, kSteps, seed);
}

/// Mean absolute error between recovered and truth over the entries that
/// were touched by injection (truth value differs or entry went missing).
double RecoveryMae(const CorrelatedTimeSeries& recovered,
                   const CorrelatedTimeSeries& corrupted,
                   const CorrelatedTimeSeries& truth) {
  double err = 0.0;
  size_t n = 0;
  for (size_t t = 0; t < truth.NumSteps(); ++t) {
    for (size_t s = 0; s < truth.NumSensors(); ++s) {
      bool touched = corrupted.series().IsMissing(t, s) ||
                     corrupted.At(t, s) != truth.At(t, s);
      if (!touched) continue;
      err += std::fabs(recovered.At(t, s) - truth.At(t, s));
      ++n;
    }
  }
  return n == 0 ? 0.0 : err / static_cast<double>(n);
}

/// Stdev of the clean field's values, the natural error scale.
double FieldStdev(const CorrelatedTimeSeries& truth) {
  return Stdev(truth.series().values());
}

/// Runs CleanStage(+mad rule) then ImputeStage over `ctx`.
PipelineReport RunGovernance(PipelineContext* ctx, double mad_threshold) {
  RangeRule range{-1000.0, 1000.0};
  Pipeline pipeline;
  pipeline.Emplace<CleanStage>(range, mad_threshold)
      .Emplace<ImputeStage>();
  return pipeline.Run(ctx);
}

TEST(InjectRecoveryTest, McarMissingRoundTrip) {
  CorrelatedTimeSeries truth = CleanField(11);
  PipelineContext ctx;
  ctx.data = truth;
  Rng rng(12);
  size_t removed = InjectMissingMcar(&ctx.data.series(), 0.2, &rng);
  ASSERT_GT(removed, 0u);
  CorrelatedTimeSeries corrupted = ctx.data;

  PipelineReport report = RunGovernance(&ctx, /*mad_threshold=*/0.0);
  ASSERT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(ctx.data.series().CountMissing(), 0u);
  // Nothing was out of range, so imputation repairs exactly the removals.
  EXPECT_EQ(ctx.metrics["cleaned_entries"], 0.0);
  EXPECT_EQ(ctx.metrics["imputed_entries"], static_cast<double>(removed));
  // Spatio-temporal imputation should land well under one stdev of error.
  EXPECT_LT(RecoveryMae(ctx.data, corrupted, truth),
            0.6 * FieldStdev(truth));
}

TEST(InjectRecoveryTest, BlockOutageRoundTrip) {
  CorrelatedTimeSeries truth = CleanField(21);
  PipelineContext ctx;
  ctx.data = truth;
  Rng rng(22);
  size_t removed =
      InjectMissingBlocks(&ctx.data.series(), 0.1, /*block_length=*/12, &rng);
  ASSERT_GT(removed, 0u);
  CorrelatedTimeSeries corrupted = ctx.data;

  PipelineReport report = RunGovernance(&ctx, /*mad_threshold=*/0.0);
  ASSERT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(ctx.data.series().CountMissing(), 0u);
  EXPECT_EQ(ctx.metrics["imputed_entries"], static_cast<double>(removed));
  // Contiguous outages are harder than MCAR (no temporal neighbors inside
  // the gap) but correlated sensors still bound the error.
  EXPECT_LT(RecoveryMae(ctx.data, corrupted, truth), FieldStdev(truth));
}

TEST(InjectRecoveryTest, SpikeRoundTrip) {
  CorrelatedTimeSeries truth = CleanField(31);
  PipelineContext ctx;
  ctx.data = truth;
  Rng rng(32);
  std::vector<InjectedAnomaly> anomalies = InjectAnomalies(
      &ctx.data.series(), AnomalyKind::kSpike, /*count=*/12,
      /*magnitude=*/12.0, &rng);
  CorrelatedTimeSeries corrupted = ctx.data;
  double corrupted_mae = RecoveryMae(corrupted, corrupted, truth);

  PipelineReport report = RunGovernance(&ctx, /*mad_threshold=*/5.0);
  ASSERT_TRUE(report.ok()) << report.ToString();
  // The MAD rule must catch (nearly) every 12-sigma spike; a handful of
  // clean points at the rule's boundary may be swept along.
  size_t injected = anomalies.size();
  EXPECT_GE(ctx.metrics["cleaned_entries"],
            0.9 * static_cast<double>(injected));
  EXPECT_LE(ctx.metrics["cleaned_entries"],
            static_cast<double>(injected) + 8.0);
  EXPECT_EQ(ctx.metrics["imputed_entries"], ctx.metrics["cleaned_entries"]);
  // Clean+impute must recover far better values at the spike positions
  // than leaving the spikes in place.
  EXPECT_LT(RecoveryMae(ctx.data, corrupted, truth), 0.25 * corrupted_mae);
}

TEST(InjectRecoveryTest, LevelShiftRoundTrip) {
  CorrelatedTimeSeries truth = CleanField(41);
  PipelineContext ctx;
  ctx.data = truth;
  Rng rng(42);
  std::vector<InjectedAnomaly> anomalies = InjectAnomalies(
      &ctx.data.series(), AnomalyKind::kLevelShift, /*count=*/6,
      /*magnitude=*/12.0, &rng);
  size_t injected_entries = 0;
  for (const auto& a : anomalies) injected_entries += a.length;
  CorrelatedTimeSeries corrupted = ctx.data;
  double corrupted_mae = RecoveryMae(corrupted, corrupted, truth);

  PipelineReport report = RunGovernance(&ctx, /*mad_threshold=*/5.0);
  ASSERT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(ctx.metrics["cleaned_entries"],
            0.9 * static_cast<double>(injected_entries));
  EXPECT_LE(ctx.metrics["cleaned_entries"],
            static_cast<double>(injected_entries) + 10.0);
  EXPECT_LT(RecoveryMae(ctx.data, corrupted, truth), 0.25 * corrupted_mae);
}

TEST(InjectRecoveryTest, NoiseBurstRoundTrip) {
  CorrelatedTimeSeries truth = CleanField(51);
  PipelineContext ctx;
  ctx.data = truth;
  Rng rng(52);
  std::vector<InjectedAnomaly> anomalies = InjectAnomalies(
      &ctx.data.series(), AnomalyKind::kNoiseBurst, /*count=*/6,
      /*magnitude=*/12.0, &rng);
  size_t injected_entries = 0;
  for (const auto& a : anomalies) injected_entries += a.length;
  CorrelatedTimeSeries corrupted = ctx.data;
  double corrupted_mae = RecoveryMae(corrupted, corrupted, truth);

  PipelineReport report = RunGovernance(&ctx, /*mad_threshold=*/5.0);
  ASSERT_TRUE(report.ok()) << report.ToString();
  // A noise burst adds N(0, 12 sigma) per entry: only deviations past the
  // MAD threshold are cleanable, so expect a substantial fraction (not
  // all) of the burst entries to be cleared.
  EXPECT_GE(ctx.metrics["cleaned_entries"],
            0.25 * static_cast<double>(injected_entries));
  EXPECT_LE(ctx.metrics["cleaned_entries"],
            static_cast<double>(injected_entries) + 10.0);
  // Residual in-threshold noise stays, but overall error at the injected
  // positions must drop clearly.
  EXPECT_LT(RecoveryMae(ctx.data, corrupted, truth), 0.6 * corrupted_mae);
}

}  // namespace
}  // namespace tsdm
