#include <cmath>

#include <gtest/gtest.h>

#include "src/decision/scaling/autoscaler.h"
#include "src/sim/cloud_gen.h"

namespace tsdm {
namespace {

TEST(ReactivePolicyTest, TracksRecentPeak) {
  ReactivePolicy policy(0.2, 3);
  Result<ScalingDecision> d = policy.Decide({10, 50, 40, 30}, 6);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->capacity, 50.0 * 1.2, 1e-9);
  EXPECT_FALSE(policy.Decide({}, 6).ok());
}

TEST(PredictivePolicyTest, FallsBackWithShortHistory) {
  PredictivePolicy policy;
  Result<ScalingDecision> d = policy.Decide({10, 20, 30}, 6);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->capacity, 30.0);
}

TEST(SimulateTest, ValidatesParameters) {
  ReactivePolicy policy;
  std::vector<double> demand(100, 10.0);
  EXPECT_FALSE(SimulateAutoscaling(demand, &policy, 0, 10).ok());
  EXPECT_FALSE(SimulateAutoscaling(demand, &policy, 6, 0).ok());
  EXPECT_FALSE(SimulateAutoscaling(demand, &policy, 6, 200).ok());
}

TEST(SimulateTest, ConstantDemandHasNoViolations) {
  ReactivePolicy policy(0.5, 6);
  std::vector<double> demand(200, 100.0);
  Result<AutoscaleOutcome> out = SimulateAutoscaling(demand, &policy, 6, 20);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->violation_rate, 0.0);
  EXPECT_NEAR(out->mean_capacity, 150.0, 1e-9);
}

TEST(AutoscaleE2ETest, PredictiveBeatsReactiveOnSurgingDemand) {
  Rng rng(41);
  CloudDemandSpec spec;
  spec.surges_per_day = 1.0;
  spec.daily_amplitude = 60.0;  // steep morning ramps defeat pure reaction
  int n = spec.steps_per_day * 21;  // three weeks
  std::vector<double> demand = GenerateCloudDemand(spec, n, &rng);
  int warmup = spec.steps_per_day * 7;
  int review = 12;  // two hours between scaling decisions

  ReactivePolicy reactive(0.15, 6);
  PredictivePolicy::Options popts;
  popts.season = spec.steps_per_day;
  popts.quantile = 0.90;
  PredictivePolicy predictive(popts);

  Result<AutoscaleOutcome> r =
      SimulateAutoscaling(demand, &reactive, review, warmup);
  Result<AutoscaleOutcome> p =
      SimulateAutoscaling(demand, &predictive, review, warmup);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(p.ok());
  // The paper-shaped claim: predictive cuts violations without an
  // overwhelming capacity increase (Pareto improvement direction).
  EXPECT_LT(p->violation_rate, r->violation_rate);
  EXPECT_LT(p->mean_capacity, r->mean_capacity * 1.5);
}

}  // namespace
}  // namespace tsdm
