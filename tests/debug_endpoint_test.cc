// End-to-end forensics surface: GET /debug/traces must serve the flight
// recorder's retained traces byte-compatibly with the TraceRecorder's own
// Chrome-trace exporter; GET /debug/flight must serve exactly one black-box
// dump per forced degradation; hostile query strings must answer typed 400s
// and never crash the front door.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/net/net_client.h"
#include "src/net/socket_server.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/serve/query_server.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

constexpr char kLoopback[] = "127.0.0.1";

/// Same trained-grid fixture as net_test.cc.
struct DebugFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  DebugFixture() : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 5;
    spec.cols = 5;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(3);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }

  RouteQuery Query(int i = 0) const {
    RouteQuery q;
    q.source = GridNodeId(spec, 0, 0);
    q.target = GridNodeId(spec, 4, (i % 2) ? 4 : 3);
    q.k = 3;
    q.depart_seconds = 8 * 3600.0;
    q.arrival_deadline_seconds = q.depart_seconds + 1200.0;
    return q;
  }
};

/// Both process-global recorders reset around each test.
class DebugEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetCapacity(1 << 16);
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
    FlightRecorder::Global().Disable();
    FlightRecorder::Global().Configure(FlightRecorder::Options{});
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
    FlightRecorder::Global().Disable();
    FlightRecorder::Global().Configure(FlightRecorder::Options{});
    FlightRecorder::Global().SetStatsSource(nullptr);
  }
};

// The tentpole acceptance: an over-SLO request served by a real QueryServer
// is retroactively retained, and GET /debug/traces serves it byte-identical
// to the TraceRecorder's direct Chrome-trace export — same events, same
// deterministic order, same serializer.
TEST_F(DebugEndpointTest, DebugTracesMatchesTraceRecorderExportByteForByte) {
  DebugFixture fx;
  FlightRecorder::Options fopts;
  fopts.slo_threshold_seconds = 1e-9;  // every request breaches: tail mode
  FlightRecorder::Global().Configure(fopts);
  FlightRecorder::Global().Enable();

  std::atomic<int> answered{0};
  {
    QueryServer::Options sopts;
    sopts.initial_workers = 1;
    sopts.autoscale_enabled = false;
    QueryServer serve(&fx.net, fx.BaseModel(), sopts);
    ASSERT_TRUE(serve.Start().ok());
    ASSERT_TRUE(serve
                    .Submit(fx.Query(0),
                            [&](const RouteAnswer& a) {
                              EXPECT_TRUE(a.status.ok());
                              answered.fetch_add(1);
                            })
                    .ok());
    serve.WaitIdle();
    // The server (and its worker threads, whose trace buffers flush into
    // the global ring on thread exit) destructs here, so the recorder-side
    // export below sees the full span set. The flight recorder needs no
    // such flush — its tap captures spans at close time.
  }
  ASSERT_EQ(answered.load(), 1);
  ASSERT_EQ(TraceRecorder::Global().dropped(), 0u);

  FlightStatsSnapshot fs = FlightRecorder::Global().Stats();
  EXPECT_EQ(fs.observed, 1u);
  EXPECT_EQ(fs.retained_slo, 1u);
  EXPECT_EQ(fs.retained_records, 1u);

  // The debug endpoints read the process-global recorders, so they work
  // even on a front door with no serve layer behind it.
  SocketServer server(nullptr);
  ASSERT_TRUE(server.Start().ok());
  NetClient::HttpResponse res;
  ASSERT_TRUE(NetClient::HttpGet(kLoopback, server.port(), "/debug/traces?n=8",
                                 &res)
                  .ok());
  EXPECT_EQ(res.status_code, 200);
  for (const auto& h : res.headers) {
    if (h.first == "content-type") EXPECT_EQ(h.second, "application/json");
  }

  // One request in flight, one request retained: the wire body, the flight
  // recorder's export, and the trace recorder's export restricted to
  // request-linked spans (the flight recorder ignores request-less spans
  // like the worker's batch span by design) are the same event set through
  // the same serializer — byte-identical documents.
  EXPECT_EQ(res.body, FlightRecorder::Global().ToChromeTraceJson(8));
  std::vector<TraceEvent> linked;
  for (const TraceEvent& ev : TraceRecorder::Global().Snapshot()) {
    if (ev.request_id != 0) linked.push_back(ev);
  }
  EXPECT_EQ(res.body, ChromeTraceJsonFromEvents(std::move(linked)));
  EXPECT_NE(res.body.find("serve/submit"), std::string::npos);
  EXPECT_NE(res.body.find("serve/exec"), std::string::npos);
  EXPECT_NE(res.body.find("\"req\":"), std::string::npos);

  // Default n: omitted query string serves up to 32 traces.
  NetClient::HttpResponse dflt;
  ASSERT_TRUE(
      NetClient::HttpGet(kLoopback, server.port(), "/debug/traces", &dflt)
          .ok());
  EXPECT_EQ(dflt.status_code, 200);
  EXPECT_EQ(dflt.body, res.body);

  NetStatsSnapshot ns = server.Stats();
  EXPECT_EQ(ns.http_debug_traces, 2u);
  server.Stop();
}

TEST_F(DebugEndpointTest, HostileQueryStringsAnswerTyped400AndNeverCrash) {
  DebugFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::pair<std::string, std::string>> bad = {
      {"/debug/traces?n=", "missing value"},
      {"/debug/traces?n", "missing value, no '='"},
      {"/debug/traces?n=abc", "non-numeric"},
      {"/debug/traces?n=5x", "trailing junk"},
      {"/debug/traces?n=-1", "negative"},
      {"/debug/traces?n=18446744073709551616", "uint64 overflow"},
      {"/debug/traces?n=0", "below range"},
      {"/debug/traces?n=99999", "above kMaxDebugTraces"},
      {"/debug/traces?" + std::string(300, 'a'), "oversized query string"},
  };
  for (const auto& [target, why] : bad) {
    SCOPED_TRACE(why);
    NetClient::HttpResponse res;
    ASSERT_TRUE(NetClient::HttpGet(kLoopback, server.port(), target, &res)
                    .ok());
    EXPECT_EQ(res.status_code, 400);
  }
  EXPECT_EQ(server.Stats().http_bad_request, bad.size());
  EXPECT_EQ(server.Stats().http_debug_traces, 0u);

  // Method and absence errors are typed too.
  NetClient::HttpResponse res;
  ASSERT_TRUE(NetClient::HttpPost(kLoopback, server.port(), "/debug/traces",
                                  "application/json", "{}", &res)
                  .ok());
  EXPECT_EQ(res.status_code, 405);
  ASSERT_TRUE(
      NetClient::HttpGet(kLoopback, server.port(), "/debug/flight", &res)
          .ok());
  EXPECT_EQ(res.status_code, 404);  // no dump frozen yet

  // A query string on a non-debug endpoint routes by path, not raw target.
  ASSERT_TRUE(
      NetClient::HttpGet(kLoopback, server.port(), "/metrics?x=1", &res).ok());
  EXPECT_EQ(res.status_code, 200);

  // The front door survived all of it.
  ASSERT_TRUE(NetClient::HttpGet(kLoopback, server.port(), "/health", &res)
                  .ok());
  EXPECT_EQ(res.status_code, 200);
  server.Stop();
  serve.Stop();
}

// A forced health degradation must freeze exactly one black-box dump —
// retrievable over the wire — and the transition ring must show when the
// degradation started.
TEST_F(DebugEndpointTest, ForcedDegradationFreezesExactlyOneDump) {
  FlightRecorder::Options fopts;
  fopts.slo_threshold_seconds = 0.0;  // retain everything
  FlightRecorder::Global().Configure(fopts);
  FlightRecorder::Global().Enable();
  FlightRecorder& fr = FlightRecorder::Global();

  // Scripted serve stats: steady, then an SLO-burning incident.
  ServeStatsSnapshot snap;
  Rng rng(3);
  auto advance = [&](int requests, double latency_seconds) {
    snap.submitted += static_cast<uint64_t>(requests);
    snap.admitted += static_cast<uint64_t>(requests);
    for (int i = 0; i < requests; ++i) {
      const double l = latency_seconds * rng.Uniform(0.9, 1.1);
      snap.e2e_latency.Add(l);
      snap.stage_queue.Add(l * 0.2);
      snap.stage_exec.Add(l * 0.8);
      ++snap.completed;
    }
    snap.cache_hits += static_cast<uint64_t>(requests * 4);
  };
  fr.SetStatsSource([&snap] { return snap; });

  // Tail evidence the dump should carry.
  RouteAnswer failed;
  failed.status = Status::Internal("incident evidence");
  failed.service_seconds = 0.3;
  fr.OnComplete(0, -1, failed);

  HealthMonitor::Options hopts;
  hopts.warmup_samples = 10;
  hopts.slo_p95_objective_seconds = 0.05;
  hopts.slo_error_budget = 0.05;
  HealthMonitor monitor([&snap] { return snap; }, hopts);
  for (int round = 0; round < 40; ++round) {
    advance(100, 0.010);
    monitor.SampleOnce();
  }
  ASSERT_EQ(monitor.Snapshot().state, HealthState::kHealthy);
  ASSERT_EQ(fr.Stats().dumps, 0u);

  // The incident: every request 10x over the objective, sustained. The
  // worsening transition fires once; staying unhealthy must not re-dump.
  for (int round = 0; round < 6; ++round) {
    advance(100, 0.5);
    monitor.SampleOnce();
  }
  HealthSnapshot unhealthy = monitor.Snapshot();
  EXPECT_NE(unhealthy.state, HealthState::kHealthy);
  EXPECT_EQ(fr.Stats().dumps, 1u);

  // The transition ring shows when the degradation started.
  ASSERT_EQ(unhealthy.transitions_total, 1u);
  ASSERT_EQ(unhealthy.transitions.size(), 1u);
  EXPECT_EQ(unhealthy.transitions[0].from, HealthState::kHealthy);
  EXPECT_EQ(unhealthy.transitions[0].to, unhealthy.state);
  EXPECT_EQ(unhealthy.transitions[0].sample, 41u);
  EXPECT_GT(unhealthy.transitions[0].burn_rate, 1.0);

  // The dump is the full artifact: trigger, health, serve delta, traces.
  std::string dump = fr.LatestDumpJson();
  EXPECT_NE(dump.find("\"kind\":\"flight_dump\""), std::string::npos);
  EXPECT_NE(dump.find("\"from\":\"healthy\""), std::string::npos);
  EXPECT_NE(dump.find("incident evidence"), std::string::npos);

  // Served over the wire, verbatim.
  DebugFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());
  NetClient::HttpResponse res;
  ASSERT_TRUE(
      NetClient::HttpGet(kLoopback, server.port(), "/debug/flight", &res)
          .ok());
  EXPECT_EQ(res.status_code, 200);
  EXPECT_EQ(res.body, dump);
  EXPECT_EQ(server.Stats().http_debug_flight, 1u);
  server.Stop();
  serve.Stop();

  // Recovery is a transition (ring + counter) but never a dump.
  for (int round = 0; round < 30; ++round) {
    advance(100, 0.010);
    monitor.SampleOnce();
  }
  HealthSnapshot recovered = monitor.Snapshot();
  EXPECT_EQ(recovered.state, HealthState::kHealthy);
  EXPECT_GE(recovered.transitions_total, 2u);
  EXPECT_EQ(recovered.transitions.back().to, HealthState::kHealthy);
  EXPECT_EQ(fr.Stats().dumps, 1u);
}

}  // namespace
}  // namespace tsdm
