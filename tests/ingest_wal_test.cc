// Crash-point matrix for the durable ingestion tier: at every kill site
// compiled into the WAL writer, the torn tail must be detected (CRC / framing
// / LSN continuity), replay must rebuild the exact pre-crash stream state,
// and resuming the feed must land bitwise on the state an uninterrupted run
// reaches — including the EW-MAD anomaly internals and the Holt forecast
// state, via StreamPipeline::SaveState blobs and bit-pattern forecast
// comparison.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/ingest/ingest_service.h"
#include "src/ingest/tick_codec.h"
#include "src/ingest/wal.h"

namespace tsdm {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/tsdm_ingest_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Deterministic feed: `n` ticks round-robin over `num_sensors`, strictly
/// increasing timestamps, consecutive sequence numbers from `first_seq`.
std::vector<uint8_t> BuildFeed(size_t n, size_t num_sensors,
                               uint32_t first_seq = 1, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<uint8_t> bytes;
  bytes.reserve(n * kTickFrameSize);
  for (size_t i = 0; i < n; ++i) {
    TickMsg msg;
    msg.seq = first_seq + static_cast<uint32_t>(i);
    msg.sensor = static_cast<uint32_t>(i % num_sensors);
    msg.timestamp = 1000 + static_cast<int64_t>(i) * 30;
    msg.value = rng.Normal(50.0, 10.0);
    EncodeTickFrame(msg, &bytes);
  }
  return bytes;
}

IngestOptions Options(const std::string& wal_dir, size_t num_sensors = 3) {
  IngestOptions options;
  options.num_sensors = num_sensors;
  options.wal_dir = wal_dir;
  options.sync_every_ticks = 8;
  options.buffer_capacity = 16;
  return options;
}

/// Everything state-bearing about a service, captured for bitwise diffing.
struct StateFingerprint {
  std::vector<uint8_t> pipeline_state;
  std::vector<uint64_t> forecast_bits;  // IEEE-754 bit patterns per sensor
  uint64_t alarms = 0;
  uint64_t ticks = 0;
  std::vector<std::vector<double>> buffer_values;
  std::vector<std::vector<int64_t>> buffer_timestamps;
};

StateFingerprint Fingerprint(IngestService* service) {
  StateFingerprint fp;
  EXPECT_TRUE(service->pipeline().SaveState(&fp.pipeline_state).ok());
  const size_t sensors = service->options().num_sensors;
  for (size_t s = 0; s < sensors; ++s) {
    double f = service->forecast_stage().ForecastNext(s);
    uint64_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    fp.forecast_bits.push_back(bits);
  }
  fp.alarms = service->anomaly_stage().alarms();
  fp.ticks = service->pipeline().ticks_processed();
  fp.buffer_values.resize(sensors);
  fp.buffer_timestamps.resize(sensors);
  for (size_t s = 0; s < sensors; ++s) {
    service->buffer().SnapshotSensor(s, &fp.buffer_values[s],
                                     &fp.buffer_timestamps[s]);
  }
  return fp;
}

void ExpectSameState(const StateFingerprint& got, const StateFingerprint& want,
                     const std::string& label) {
  EXPECT_EQ(got.ticks, want.ticks) << label;
  EXPECT_EQ(got.alarms, want.alarms) << label;
  ASSERT_EQ(got.pipeline_state.size(), want.pipeline_state.size()) << label;
  EXPECT_EQ(0, std::memcmp(got.pipeline_state.data(),
                           want.pipeline_state.data(),
                           want.pipeline_state.size()))
      << label << ": pipeline state blobs differ";
  EXPECT_EQ(got.forecast_bits, want.forecast_bits)
      << label << ": forecast bit patterns differ";
  EXPECT_EQ(got.buffer_values, want.buffer_values) << label;
  EXPECT_EQ(got.buffer_timestamps, want.buffer_timestamps) << label;
}

/// The uninterrupted run every crash scenario is measured against. WAL
/// disabled: durability must not perturb the analytics.
StateFingerprint ReferenceRun(const std::vector<uint8_t>& feed,
                              size_t num_sensors) {
  IngestService service(Options("", num_sensors));
  EXPECT_TRUE(service.Start().ok());
  auto applied = service.IngestBytes(feed.data(), feed.size());
  EXPECT_TRUE(applied.ok());
  return Fingerprint(&service);
}

// ---------------------------------------------------------------------------
// WAL unit coverage
// ---------------------------------------------------------------------------

TEST(WalWriterTest, RoundTripThroughScan) {
  const std::string dir = FreshDir("roundtrip");
  WalWriter writer(dir, WalOptions());
  ASSERT_TRUE(writer.Open().ok());
  for (uint32_t i = 0; i < 10; ++i) {
    std::vector<uint8_t> payload(12, static_cast<uint8_t>(i));
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(payload.data(),
                              static_cast<uint32_t>(payload.size()), &lsn)
                    .ok());
    EXPECT_EQ(lsn, i + 1);
  }
  ASSERT_TRUE(writer.Close().ok());

  WalScanReport report;
  uint64_t seen = 0;
  ASSERT_TRUE(WalReader::Scan(
                  dir,
                  [&](const WalRecord& record) {
                    EXPECT_EQ(record.lsn, seen + 1);
                    EXPECT_EQ(record.size, 12u);
                    EXPECT_EQ(record.payload[0],
                              static_cast<uint8_t>(seen));
                    ++seen;
                    return Status::OK();
                  },
                  &report)
                  .ok());
  EXPECT_EQ(report.records, 10u);
  EXPECT_EQ(report.torn_records, 0u);
  EXPECT_EQ(report.last_lsn, 10u);
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.next_segment_index, 2u);
}

TEST(WalReaderTest, MissingDirectoryIsAnEmptyLog) {
  WalScanReport report;
  ASSERT_TRUE(
      WalReader::Scan(FreshDir("missing"), nullptr, &report).ok());
  EXPECT_EQ(report.records, 0u);
  EXPECT_EQ(report.segments, 0u);
  EXPECT_EQ(report.next_segment_index, 1u);
}

TEST(WalWriterTest, RotationKeepsLsnContinuityAcrossSegments) {
  const std::string dir = FreshDir("rotate");
  WalOptions options;
  // Header 24 + record extent (16 + 24 + 4) = 68; three records per segment.
  options.segment_bytes = 24 + 3 * 44;
  WalWriter writer(dir, options);
  ASSERT_TRUE(writer.Open().ok());
  std::vector<uint8_t> payload(24, 0xAB);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.Append(payload.data(), 24).ok());
  }
  EXPECT_EQ(writer.stats().rotations, 6u);  // 20 records, 3 per segment
  ASSERT_TRUE(writer.Close().ok());

  WalScanReport report;
  ASSERT_TRUE(WalReader::Scan(dir, nullptr, &report).ok());
  EXPECT_EQ(report.records, 20u);
  EXPECT_EQ(report.torn_records, 0u);
  EXPECT_EQ(report.segments, 7u);
  EXPECT_EQ(report.last_lsn, 20u);
  EXPECT_EQ(report.next_segment_index, 8u);
}

TEST(WalReaderTest, CorruptedTailRecordIsDetectedBySkippedCrc) {
  const std::string dir = FreshDir("torn");
  {
    WalWriter writer(dir, WalOptions());
    ASSERT_TRUE(writer.Open().ok());
    std::vector<uint8_t> payload(24, 0x11);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append(payload.data(), 24).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  // Flip one payload byte of the last record (header 24 + 4 full records +
  // record header 16 puts us inside record 5's payload).
  const std::string path = dir + "/wal-00000001.seg";
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24 + 4 * 44 + 16 + 3, SEEK_SET);
  std::fputc(0xEE, f);
  std::fclose(f);

  WalScanReport report;
  ASSERT_TRUE(WalReader::Scan(dir, nullptr, &report).ok());
  EXPECT_EQ(report.records, 4u);
  EXPECT_EQ(report.torn_records, 1u);
  EXPECT_EQ(report.last_lsn, 4u);
}

// ---------------------------------------------------------------------------
// Crash-point matrix
// ---------------------------------------------------------------------------

struct CrashCase {
  CrashPoint point;
  uint64_t ordinal;    // 0-based Append at which the writer dies
  size_t segment_bytes;
};

/// Crash at `c`, recover, resume the feed, and demand bitwise equality with
/// the uninterrupted reference.
void RunCrashCase(const CrashCase& c, const std::vector<uint8_t>& feed,
                  size_t num_ticks, size_t num_sensors,
                  const StateFingerprint& reference) {
  const std::string label = std::string(CrashPointName(c.point)) +
                            "@ord" + std::to_string(c.ordinal) + "/seg" +
                            std::to_string(c.segment_bytes);
  const std::string dir = FreshDir("crash_" + label);

  IngestOptions options = Options(dir, num_sensors);
  options.wal.segment_bytes = c.segment_bytes;

  // Phase 1: ingest until the armed kill site fires.
  IngestService victim(options);
  ASSERT_TRUE(victim.Start().ok()) << label;
  victim.ArmCrash(c.point, c.ordinal);
  auto applied = victim.IngestBytes(feed.data(), feed.size());
  ASSERT_FALSE(applied.ok()) << label << ": crash point never fired";
  EXPECT_EQ(applied.status().code(), StatusCode::kInternal) << label;
  EXPECT_TRUE(victim.dead()) << label;
  // A dead service refuses everything, like the dead process it models.
  EXPECT_EQ(victim.IngestBytes(feed.data(), feed.size()).status().code(),
            StatusCode::kFailedPrecondition)
      << label;

  // Phase 2: restart over the same directory; replay rebuilds the state.
  IngestService revived(options);
  ASSERT_TRUE(revived.Start().ok()) << label;
  const RecoveryReport& recovery = revived.recovery();

  // Durability accounting per kill site: a record is on disk iff its full
  // frame landed before the kill. kBeforeSync lands the frame and only
  // skips the msync — a *process* crash keeps it (page cache), so replay
  // must see ordinal + 1 ticks. Every torn variant loses exactly the one
  // in-flight record.
  if (c.point == CrashPoint::kBeforeSync) {
    EXPECT_EQ(recovery.ticks_replayed, c.ordinal + 1) << label;
  } else {
    EXPECT_EQ(recovery.ticks_replayed, c.ordinal) << label;
  }
  switch (c.point) {
    case CrashPoint::kMidHeader:
    case CrashPoint::kAfterHeader:
    case CrashPoint::kMidPayload:
    case CrashPoint::kBeforeCrc:
    case CrashPoint::kMidCrc:
      EXPECT_GE(recovery.torn_records_skipped, 1u) << label;
      break;
    case CrashPoint::kBeforeRecord:
    case CrashPoint::kBeforeSync:
    case CrashPoint::kAfterRotate:
      EXPECT_EQ(recovery.torn_records_skipped, 0u) << label;
      break;
    case CrashPoint::kNone:
      break;
  }
  if (c.point == CrashPoint::kAfterRotate) {
    EXPECT_GE(recovery.segments_scanned, 2u) << label;
  }

  // Phase 3: the upstream feed resends from last_seq + 1 (frames are fixed
  // size, so the resume offset is just ticks_replayed frames in).
  const size_t resume = recovery.ticks_replayed * kTickFrameSize;
  auto resumed =
      revived.IngestBytes(feed.data() + resume, feed.size() - resume);
  ASSERT_TRUE(resumed.ok()) << label << ": " << resumed.status().message();
  EXPECT_EQ(*resumed, num_ticks - recovery.ticks_replayed) << label;

  StateFingerprint fp = Fingerprint(&revived);
  ExpectSameState(fp, reference, label);
}

TEST(IngestCrashMatrixTest, EveryKillSiteReplaysToBitwiseIdenticalState) {
  const size_t kTicks = 64;
  const size_t kSensors = 3;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);
  ASSERT_EQ(reference.ticks, kTicks);

  for (CrashPoint point : kAllCrashPoints) {
    for (uint64_t ordinal : {uint64_t{7}, uint64_t{20}}) {
      RunCrashCase({point, ordinal, WalOptions().segment_bytes}, feed, kTicks,
                   kSensors, reference);
    }
  }
}

TEST(IngestCrashMatrixTest, KillSitesUnderAggressiveRotation) {
  const size_t kTicks = 64;
  const size_t kSensors = 3;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);

  // Three 44-byte records per 156-byte segment: the armed append at ordinal
  // 13 sits mid-stream with rotations on both sides of it.
  for (CrashPoint point : kAllCrashPoints) {
    RunCrashCase({point, 13, 24 + 3 * 44}, feed, kTicks, kSensors, reference);
  }
}

TEST(IngestRecoveryTest, SurvivesRepeatedCrashRecoverCycles) {
  const size_t kTicks = 80;
  const size_t kSensors = 3;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);
  const std::string dir = FreshDir("cycles");
  IngestOptions options = Options(dir, kSensors);
  options.wal.segment_bytes = 24 + 3 * 44;  // rotation-rich

  // Crash 1: torn payload at ordinal 10.
  {
    IngestService s(options);
    ASSERT_TRUE(s.Start().ok());
    s.ArmCrash(CrashPoint::kMidPayload, 10);
    ASSERT_FALSE(s.IngestBytes(feed.data(), feed.size()).ok());
  }
  // Crash 2: recover (stepping over crash 1's debris), resume, die again
  // with a torn CRC — the armed ordinal counts this writer's appends.
  size_t resume = 0;
  {
    IngestService s(options);
    ASSERT_TRUE(s.Start().ok());
    EXPECT_EQ(s.recovery().ticks_replayed, 10u);
    resume = s.recovery().ticks_replayed * kTickFrameSize;
    s.ArmCrash(CrashPoint::kMidCrc, 15);
    ASSERT_FALSE(
        s.IngestBytes(feed.data() + resume, feed.size() - resume).ok());
  }
  // Final recovery: both tears skipped, LSN continuity walked across all
  // segments, and the finished run matches the never-crashed reference.
  {
    IngestService s(options);
    ASSERT_TRUE(s.Start().ok());
    EXPECT_EQ(s.recovery().ticks_replayed, 25u);  // 10 + 15
    EXPECT_GE(s.recovery().torn_records_skipped, 2u);
    resume = s.recovery().ticks_replayed * kTickFrameSize;
    auto applied =
        s.IngestBytes(feed.data() + resume, feed.size() - resume);
    ASSERT_TRUE(applied.ok());
    ExpectSameState(Fingerprint(&s), reference, "multi-cycle");
  }
}

TEST(IngestRecoveryTest, ReplayPrimesParserAgainstFullResend) {
  const size_t kTicks = 40;
  const size_t kSensors = 2;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);
  const std::string dir = FreshDir("resend");
  IngestOptions options = Options(dir, kSensors);

  {
    IngestService s(options);
    ASSERT_TRUE(s.Start().ok());
    s.ArmCrash(CrashPoint::kBeforeCrc, 25);
    ASSERT_FALSE(s.IngestBytes(feed.data(), feed.size()).ok());
  }
  // A naive upstream resends the whole feed. The replayed prefix must be
  // rejected as duplicates — double-applying it would corrupt the state.
  IngestService s(options);
  ASSERT_TRUE(s.Start().ok());
  ASSERT_EQ(s.recovery().ticks_replayed, 25u);
  auto applied = s.IngestBytes(feed.data(), feed.size());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, kTicks - 25);
  EXPECT_EQ(s.parser().stats().rejected_duplicate_seq, 25u);
  ExpectSameState(Fingerprint(&s), reference, "full-resend");
}

TEST(IngestRecoveryTest, CleanRestartReplaysEverythingAndContinues) {
  const size_t kTicks = 48;
  const size_t kSensors = 3;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);
  const std::string dir = FreshDir("clean_restart");
  IngestOptions options = Options(dir, kSensors);

  const size_t half = (kTicks / 2) * kTickFrameSize;
  {
    IngestService s(options);
    ASSERT_TRUE(s.Start().ok());
    ASSERT_TRUE(s.IngestBytes(feed.data(), half).ok());
    ASSERT_TRUE(s.Stop().ok());  // orderly shutdown, fully synced
  }
  IngestService s(options);
  ASSERT_TRUE(s.Start().ok());
  EXPECT_EQ(s.recovery().ticks_replayed, kTicks / 2);
  EXPECT_EQ(s.recovery().torn_records_skipped, 0u);
  auto applied = s.IngestBytes(feed.data() + half, feed.size() - half);
  ASSERT_TRUE(applied.ok());
  ExpectSameState(Fingerprint(&s), reference, "clean-restart");
}

TEST(IngestServiceTest, WalOffAndWalOnProduceIdenticalAnalytics) {
  const size_t kTicks = 60;
  const size_t kSensors = 4;
  std::vector<uint8_t> feed = BuildFeed(kTicks, kSensors);
  StateFingerprint reference = ReferenceRun(feed, kSensors);

  IngestService s(Options(FreshDir("wal_on"), kSensors));
  ASSERT_TRUE(s.Start().ok());
  auto applied = s.IngestBytes(feed.data(), feed.size());
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, kTicks);
  ExpectSameState(Fingerprint(&s), reference, "wal-on-vs-off");

  IngestStatsSnapshot stats = s.Stats();
  EXPECT_TRUE(stats.wal_enabled);
  EXPECT_EQ(stats.wal.records, kTicks);
  EXPECT_EQ(stats.parser.frames_accepted, kTicks);
  EXPECT_EQ(stats.ticks_processed, kTicks);
}

}  // namespace
}  // namespace tsdm
