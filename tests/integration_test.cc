/// End-to-end integration of the full Fig. 1 paradigm on the traffic
/// scenario from the paper's introduction: noisy multi-modal sensor data ->
/// governance (cleaning, map matching, imputation, uncertainty) ->
/// analytics (forecasting) -> decision (stochastic routing under a
/// deadline). Exercises the same flow the quickstart example demonstrates.

#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/forecast/forecaster.h"
#include "src/analytics/forecast/metrics.h"
#include "src/core/pipeline.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/decision/uncertain/dominance.h"
#include "src/decision/uncertain/utility.h"
#include "src/governance/fusion/map_matcher.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/sim/inject.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"

namespace tsdm {
namespace {

TEST(IntegrationTest, TrafficScenarioEndToEnd) {
  Rng rng(2025);

  // --- Substrate: city + ground-truth traffic --------------------------
  GridNetworkSpec gspec;
  gspec.rows = 6;
  gspec.cols = 6;
  gspec.diagonal_probability = 0.2;
  RoadNetwork net = GenerateGridNetwork(gspec, &rng);
  TrafficSimulator traffic(&net, TrafficSpec{});

  // --- Governance 1: map-match noisy GPS fleet into trips --------------
  HmmMapMatcher matcher(&net);
  EdgeCentricModel cost_model(static_cast<int>(net.NumEdges()), 24);
  int matched_trips = 0;
  for (int i = 0; i < 250; ++i) {
    std::vector<int> path = RandomPath(net, 4, 20, &rng);
    if (path.empty()) continue;
    GpsSpec gps;
    gps.noise_stddev = 12.0;
    SimulatedDrive drive = SimulateDrive(net, traffic, path, 8 * 3600, gps,
                                         &rng);
    if (drive.gps.NumPoints() < 3) continue;
    Result<MapMatchResult> match = matcher.Match(drive.gps);
    if (!match.ok()) continue;
    // Use the *matched* path with the realized per-edge times (as a loop
    // detector would attribute them).
    TripObservation trip;
    trip.edge_path = drive.edge_path;
    trip.depart_seconds = 8 * 3600;
    trip.edge_times = traffic.SamplePathEdgeTimes(path, 8 * 3600, &rng);
    cost_model.AddTrip(trip);
    ++matched_trips;
  }
  ASSERT_GT(matched_trips, 150);
  ASSERT_TRUE(cost_model.Build(32).ok());

  // --- Governance 2: sensor series quality + imputation ----------------
  std::vector<int> sensor_edges;
  for (int e = 0; e < 12; ++e) sensor_edges.push_back(e);
  PipelineContext ctx;
  ctx.data = traffic.GenerateEdgeSpeedSeries(sensor_edges, 288, 300, &rng);
  InjectMissingMcar(&ctx.data.series(), 0.15, &rng);
  RangeRule range{0.0, 50.0};
  Pipeline pipeline;
  pipeline.Emplace<AssessQualityStage>(range)
      .Emplace<CleanStage>(range)
      .Emplace<ImputeStage>()
      .Emplace<ForecastStage>(6, 12);
  PipelineReport report = pipeline.Run(&ctx);
  ASSERT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(ctx.data.series().CountMissing(), 0u);

  // --- Decision: stochastic routing under a deadline -------------------
  StochasticRouter router(
      &net, [&cost_model](const std::vector<int>& edges, double depart) {
        return cost_model.PathCostDistribution(edges, depart);
      });
  int source = 0, target = static_cast<int>(net.NumNodes()) - 1;
  Result<std::vector<RouteCandidate>> candidates =
      router.Candidates(source, target, 6, 8 * 3600);
  ASSERT_TRUE(candidates.ok());
  ASSERT_GE(candidates->size(), 2u);

  // FSD pruning keeps every utility's optimum.
  std::vector<Histogram> costs;
  for (const auto& c : *candidates) costs.push_back(c.cost);
  std::vector<int> survivors = FsdNonDominated(costs);
  ASSERT_FALSE(survivors.empty());
  RiskNeutralUtility neutral;
  ExponentialUtility averse(2.0, costs[0].Mean());
  for (const UtilityFunction* u :
       std::vector<const UtilityFunction*>{&neutral, &averse}) {
    int best = BestByExpectedUtility(costs, *u);
    double eu_full = ExpectedUtility(costs[best], *u);
    double eu_survivors = -1e300;
    for (int s : survivors) {
      eu_survivors = std::max(eu_survivors, ExpectedUtility(costs[s], *u));
    }
    EXPECT_GE(eu_survivors, eu_full - 1e-9 * std::fabs(eu_full) - 1e-12);
  }

  // The chosen route actually arrives on time most often under ground
  // truth (Monte Carlo check against the simulator).
  double deadline = costs[StochasticRouter::BestByOnTime(*candidates,
                                                         1e18)]
                        .Quantile(0.9);
  int chosen = StochasticRouter::BestByOnTime(*candidates, deadline);
  ASSERT_GE(chosen, 0);
  int on_time = 0;
  const int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    double t = traffic.SamplePathTime((*candidates)[chosen].path.edges,
                                      8 * 3600, &rng);
    if (t <= deadline) ++on_time;
  }
  EXPECT_GT(static_cast<double>(on_time) / kTrials, 0.5);
}

}  // namespace
}  // namespace tsdm
