/// Targeted tests for public APIs not yet exercised elsewhere.

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/sensor_graph.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/decision/uncertain/utility.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

TEST(HistogramTest, CdfOnGridMatchesPointwiseCdf) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Normal(5, 2));
  Histogram h = *Histogram::FromSamples(samples, 32);
  std::vector<double> grid = {-1.0, 3.0, 5.0, 7.0, 20.0};
  std::vector<double> values = h.CdfOnGrid(grid);
  ASSERT_EQ(values.size(), grid.size());
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], h.Cdf(grid[i]));
  }
}

TEST(SensorGraphTest, AdjacencyMatrixIsSymmetric) {
  SensorGraph g;
  for (int i = 0; i < 4; ++i) g.AddSensor(i, 0);
  g.AddEdge(0, 1, 0.5);
  g.AddEdge(1, 3, 2.0);
  Matrix a = g.AdjacencyMatrix();
  ASSERT_EQ(a.rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(a(r, c), a(c, r));
    }
  }
  EXPECT_DOUBLE_EQ(a(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(a(3, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 3), 0.0);
}

TEST(RoadNetworkTest, PathAggregatesMatchManualSums) {
  Rng rng(2);
  GridNetworkSpec spec;
  spec.rows = 3;
  spec.cols = 3;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  std::vector<int> path = {0, 1, 2};
  double length = 0.0, time = 0.0;
  for (int eid : path) {
    length += net.edge(eid).length;
    time += net.FreeFlowTime(eid);
  }
  EXPECT_DOUBLE_EQ(net.PathLength(path), length);
  EXPECT_DOUBLE_EQ(net.PathFreeFlowTime(path), time);
  EXPECT_EQ(net.PathLength({}), 0.0);
}

TEST(TrafficSimTest, MeanEdgeTimeMatchesMonteCarlo) {
  Rng rng(3);
  GridNetworkSpec spec;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  TrafficSimulator sim(&net, TrafficSpec{});
  double analytic = sim.MeanEdgeTime(0, 8 * 3600);
  double mc = 0.0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    mc += sim.SampleEdgeTime(0, 8 * 3600, &rng) / kTrials;
  }
  EXPECT_NEAR(mc, analytic, 0.05 * analytic);
}

TEST(RouterTest, BestSelectorsOnEmptyInput) {
  EXPECT_EQ(StochasticRouter::BestByOnTime({}, 100.0), -1);
  RiskNeutralUtility u;
  EXPECT_EQ(StochasticRouter::BestByUtility({}, u), -1);
}

TEST(UtilityTest, ExponentialUtilityIsMonotoneDecreasing) {
  for (double a : {-3.0, -0.5, 0.0, 0.5, 3.0}) {
    ExponentialUtility u(a, 100.0);
    double prev = u(0.0);
    for (double c = 10.0; c <= 300.0; c += 10.0) {
      double v = u(c);
      EXPECT_LT(v, prev) << "a=" << a << " c=" << c;
      prev = v;
    }
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(4);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
  // Degenerate all-zero weights fall back to the last index.
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(rng.Categorical(zeros), 1);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  std::vector<int> sample = rng.SampleWithoutReplacement(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

}  // namespace
}  // namespace tsdm
