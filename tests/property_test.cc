/// Cross-module property tests: randomized invariants checked over seed
/// sweeps (TEST_P). These guard the algebraic contracts the decision layer
/// relies on — distribution composition, shortest-path optimality
/// structure, pruning soundness, imputation idempotence.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/analytics/anomaly/detector.h"
#include "src/decision/uncertain/dominance.h"
#include "src/decision/uncertain/utility.h"
#include "src/governance/imputation/imputer.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/sim/inject.h"
#include "src/sim/road_gen.h"
#include "src/sim/ts_gen.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {
namespace {

class SeededTest : public ::testing::TestWithParam<int> {};

// ---------- Histogram algebra -------------------------------------------

TEST_P(SeededTest, ConvolutionMeanIsAdditive) {
  Rng rng(GetParam());
  std::vector<double> a, b;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(rng.Gamma(2.0, rng.Uniform(0.5, 2.0)));
    b.push_back(rng.Normal(rng.Uniform(-5, 5), rng.Uniform(0.5, 3.0)));
  }
  Histogram ha = *Histogram::FromSamples(a, 40);
  Histogram hb = *Histogram::FromSamples(b, 40);
  Histogram sum = ha.Convolve(hb, 80);
  EXPECT_NEAR(sum.Mean(), ha.Mean() + hb.Mean(),
              0.02 * (std::fabs(ha.Mean()) + std::fabs(hb.Mean()) + 1.0));
  // Variance additivity under independence.
  EXPECT_NEAR(sum.Variance(), ha.Variance() + hb.Variance(),
              0.08 * (ha.Variance() + hb.Variance()));
}

TEST_P(SeededTest, ConvolutionCommutes) {
  Rng rng(100 + GetParam());
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(rng.Uniform(0, 10));
    b.push_back(rng.Exponential(0.5));
  }
  Histogram ha = *Histogram::FromSamples(a, 32);
  Histogram hb = *Histogram::FromSamples(b, 32);
  Histogram ab = ha.Convolve(hb, 64);
  Histogram ba = hb.Convolve(ha, 64);
  EXPECT_NEAR(ab.Mean(), ba.Mean(), 1e-6);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(ab.Quantile(q), ba.Quantile(q),
                2.0 * ab.BinWidth() + 1e-9);
  }
}

TEST_P(SeededTest, ShiftTranslatesQuantiles) {
  Rng rng(200 + GetParam());
  std::vector<double> a;
  for (int i = 0; i < 1000; ++i) a.push_back(rng.Normal(3, 2));
  Histogram h = *Histogram::FromSamples(a, 32);
  double offset = rng.Uniform(-10, 10);
  Histogram shifted = h.Shifted(offset);
  for (double q : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(shifted.Quantile(q), h.Quantile(q) + offset, 1e-9);
  }
  EXPECT_NEAR(shifted.Mean(), h.Mean() + offset, 1e-9);
}

// ---------- Dominance / expected-utility soundness ----------------------

TEST_P(SeededTest, DominanceImpliesBetterExpectedUtility) {
  // For every monotone non-increasing utility, FSD dominance must imply a
  // weakly better expected utility — checked on random pairs.
  Rng rng(300 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    double mu_a = rng.Uniform(50, 150), mu_b = rng.Uniform(50, 150);
    double sd_a = rng.Uniform(2, 30), sd_b = rng.Uniform(2, 30);
    for (int i = 0; i < 2000; ++i) {
      a.push_back(mu_a + rng.Normal(0, sd_a));
      b.push_back(mu_b + rng.Normal(0, sd_b));
    }
    Histogram ha = *Histogram::FromSamples(a, 40);
    Histogram hb = *Histogram::FromSamples(b, 40);
    if (!ha.DominatesForMinimization(hb)) continue;
    RiskNeutralUtility neutral;
    ExponentialUtility averse(2.0, 100.0);
    ExponentialUtility loving(-2.0, 100.0);
    DeadlineUtility deadline(rng.Uniform(60, 160));
    for (const UtilityFunction* u :
         std::vector<const UtilityFunction*>{&neutral, &averse, &loving,
                                             &deadline}) {
      EXPECT_GE(ExpectedUtility(ha, *u) + 1e-9, ExpectedUtility(hb, *u))
          << "utility " << u->Name();
    }
  }
}

TEST_P(SeededTest, PruningInvariantUnderPermutation) {
  Rng rng(400 + GetParam());
  std::vector<Histogram> candidates;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> samples;
    double mu = rng.Uniform(80, 160), sd = rng.Uniform(3, 25);
    for (int s = 0; s < 1500; ++s) samples.push_back(mu + rng.Normal(0, sd));
    candidates.push_back(*Histogram::FromSamples(samples, 32));
  }
  std::vector<int> survivors = FsdNonDominated(candidates);
  // Permute and re-prune: the surviving *set* must be identical.
  std::vector<int> perm(candidates.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  rng.Shuffle(&perm);
  std::vector<Histogram> shuffled;
  for (int p : perm) shuffled.push_back(candidates[p]);
  std::vector<int> survivors_shuffled = FsdNonDominated(shuffled);
  std::set<int> original(survivors.begin(), survivors.end());
  std::set<int> mapped;
  for (int s : survivors_shuffled) mapped.insert(perm[s]);
  EXPECT_EQ(original, mapped);
}

// ---------- Shortest-path structure --------------------------------------

TEST_P(SeededTest, SubpathsOfShortestPathsAreShortest) {
  Rng rng(500 + GetParam());
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  spec.diagonal_probability = 0.3;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  auto cost = FreeFlowTimeCost(net);
  int source = rng.Index(static_cast<int>(net.NumNodes()));
  int target = rng.Index(static_cast<int>(net.NumNodes()));
  if (source == target) return;
  Result<Path> p = ShortestPath(net, source, target, cost);
  ASSERT_TRUE(p.ok());
  // Every prefix of the optimal path is an optimal path to its endpoint.
  double prefix_cost = 0.0;
  for (size_t i = 0; i < p->edges.size(); ++i) {
    prefix_cost += cost(p->edges[i]);
    int mid = p->nodes[i + 1];
    Result<Path> sub = ShortestPath(net, source, mid, cost);
    ASSERT_TRUE(sub.ok());
    EXPECT_NEAR(sub->cost, prefix_cost, 1e-9);
  }
}

TEST_P(SeededTest, TriangleInequalityOnTreeDistances) {
  Rng rng(600 + GetParam());
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 4;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  auto cost = LengthCost(net);
  int a = rng.Index(static_cast<int>(net.NumNodes()));
  int b = rng.Index(static_cast<int>(net.NumNodes()));
  std::vector<double> from_a = ShortestPathTree(net, a, cost);
  std::vector<double> from_b = ShortestPathTree(net, b, cost);
  for (size_t c = 0; c < net.NumNodes(); ++c) {
    if (!std::isfinite(from_a[c]) || !std::isfinite(from_a[b])) continue;
    EXPECT_LE(from_a[c], from_a[b] + from_b[c] + 1e-9);
  }
}

TEST_P(SeededTest, KspPrefixStability) {
  Rng rng(700 + GetParam());
  GridNetworkSpec spec;
  spec.rows = 5;
  spec.cols = 5;
  spec.diagonal_probability = 0.3;
  RoadNetwork net = GenerateGridNetwork(spec, &rng);
  auto cost = FreeFlowTimeCost(net);
  Result<std::vector<Path>> k3 = KShortestPaths(net, 0, 24, 3, cost);
  Result<std::vector<Path>> k6 = KShortestPaths(net, 0, 24, 6, cost);
  ASSERT_TRUE(k3.ok());
  ASSERT_TRUE(k6.ok());
  ASSERT_GE(k6->size(), k3->size());
  for (size_t i = 0; i < k3->size(); ++i) {
    EXPECT_EQ((*k3)[i].nodes, (*k6)[i].nodes);
  }
}

// ---------- Imputation contracts -----------------------------------------

TEST_P(SeededTest, ImputationIsIdempotent) {
  Rng rng(800 + GetParam());
  TimeSeries ts = TimeSeries::Regular(0, 60, 200, 3);
  for (size_t c = 0; c < 3; ++c) {
    ts.SetChannel(c, GenerateSeries(TrafficLikeSpec(24), 200, &rng));
  }
  InjectMissingMcar(&ts, 0.3, &rng);
  TimeSeries once = ts;
  ASSERT_TRUE(LinearInterpolationImputer().Impute(&once).ok());
  TimeSeries twice = once;
  ASSERT_TRUE(LinearInterpolationImputer().Impute(&twice).ok());
  EXPECT_EQ(once.values(), twice.values());
}

TEST_P(SeededTest, ImputedValuesStayWithinObservedRange) {
  Rng rng(900 + GetParam());
  TimeSeries ts = TimeSeries::Regular(0, 60, 300, 1);
  ts.SetChannel(0, GenerateSeries(TrafficLikeSpec(24), 300, &rng));
  double lo = 1e300, hi = -1e300;
  for (size_t t = 0; t < 300; ++t) {
    lo = std::min(lo, ts.At(t, 0));
    hi = std::max(hi, ts.At(t, 0));
  }
  InjectMissingBlocks(&ts, 0.4, 20, &rng);
  // Linear interpolation and LOCF are convex-combination methods: imputed
  // values must stay inside the observed envelope.
  for (auto make : {+[]() -> Imputer* { return new LinearInterpolationImputer; },
                    +[]() -> Imputer* { return new LocfImputer; }}) {
    std::unique_ptr<Imputer> imputer(make());
    TimeSeries repaired = ts;
    ASSERT_TRUE(imputer->Impute(&repaired).ok());
    for (size_t t = 0; t < 300; ++t) {
      EXPECT_GE(repaired.At(t, 0), lo - 1e-9) << imputer->Name();
      EXPECT_LE(repaired.At(t, 0), hi + 1e-9) << imputer->Name();
    }
  }
}

// ---------- Statistics invariants ----------------------------------------

TEST_P(SeededTest, RankNormalizePermutationEquivariant) {
  Rng rng(1000 + GetParam());
  std::vector<double> scores;
  for (int i = 0; i < 50; ++i) scores.push_back(rng.Normal());
  std::vector<double> ranks = RankNormalize(scores);
  // Applying the same permutation to inputs permutes outputs identically.
  std::vector<int> perm(scores.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  rng.Shuffle(&perm);
  std::vector<double> shuffled_scores(scores.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    shuffled_scores[i] = scores[perm[i]];
  }
  std::vector<double> shuffled_ranks = RankNormalize(shuffled_scores);
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_DOUBLE_EQ(shuffled_ranks[i], ranks[perm[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace tsdm
