#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/forecast/forecaster.h"
#include "src/analytics/forecast/metrics.h"
#include "src/analytics/forecast/var.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

std::vector<double> Seasonal(int n, int period, double noise, int seed) {
  Rng rng(seed);
  SeriesSpec spec;
  spec.level = 20.0;
  spec.seasonal = {{period, 5.0, 0.0}};
  spec.ar_coefficients = {};
  spec.ar_innovation_stddev = 0.0;
  spec.noise_stddev = noise;
  return GenerateSeries(spec, n, &rng);
}

TEST(NaiveTest, RepeatsLastValue) {
  NaiveForecaster f;
  ASSERT_TRUE(f.Fit({1.0, 2.0, 3.0}).ok());
  Result<std::vector<double>> fc = f.Forecast(3);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ((*fc)[0], 3.0);
  EXPECT_EQ((*fc)[2], 3.0);
  EXPECT_FALSE(NaiveForecaster().Forecast(1).ok());  // unfitted
  EXPECT_FALSE(f.Fit({}).ok());
}

TEST(SeasonalNaiveTest, RepeatsSeason) {
  SeasonalNaiveForecaster f(3);
  ASSERT_TRUE(f.Fit({1, 2, 3, 10, 20, 30}).ok());
  Result<std::vector<double>> fc = f.Forecast(5);
  ASSERT_TRUE(fc.ok());
  EXPECT_EQ((*fc)[0], 10.0);
  EXPECT_EQ((*fc)[1], 20.0);
  EXPECT_EQ((*fc)[3], 10.0);
  EXPECT_FALSE(SeasonalNaiveForecaster(10).Fit({1, 2}).ok());
}

TEST(ArTest, LearnsAr1Process) {
  // x_t = 0.8 x_{t-1} + eps: AR(1) coefficient should be near 0.8.
  Rng rng(1);
  std::vector<double> v = {0.0};
  for (int i = 1; i < 2000; ++i) {
    v.push_back(0.8 * v.back() + rng.Normal(0.0, 0.5));
  }
  ArForecaster f(1);
  ASSERT_TRUE(f.Fit(v).ok());
  ASSERT_EQ(f.coefficients().size(), 2u);
  EXPECT_NEAR(f.coefficients()[1], 0.8, 0.05);
  // Multi-step forecasts decay toward the mean (0).
  Result<std::vector<double>> fc = f.Forecast(50);
  ASSERT_TRUE(fc.ok());
  EXPECT_LT(std::fabs(fc->back()), std::fabs(fc->front()) + 0.5);
}

TEST(ArTest, IteratedForecastUsesOwnPredictions) {
  // Deterministic ramp: AR(2) can represent x_t = 2 x_{t-1} - x_{t-2}.
  std::vector<double> ramp;
  for (int i = 0; i < 100; ++i) ramp.push_back(i);
  ArForecaster f(2, 1e-8);
  ASSERT_TRUE(f.Fit(ramp).ok());
  Result<std::vector<double>> fc = f.Forecast(5);
  ASSERT_TRUE(fc.ok());
  for (int h = 0; h < 5; ++h) {
    EXPECT_NEAR((*fc)[h], 100.0 + h, 0.5);
  }
}

TEST(HoltWintersTest, ForecastsSeasonalPattern) {
  std::vector<double> v = Seasonal(24 * 8, 24, 0.2, 2);
  HoltWintersForecaster f(24);
  ASSERT_TRUE(f.Fit(v).ok());
  Result<std::vector<double>> fc = f.Forecast(24);
  ASSERT_TRUE(fc.ok());
  // Compare against the true next season.
  std::vector<double> truth = Seasonal(24 * 9, 24, 0.0, 2);
  std::vector<double> next(truth.end() - 24, truth.end());
  EXPECT_LT(MeanAbsoluteError(next, *fc), 1.5);
}

TEST(HoltWintersTest, RequiresThreeSeasons) {
  EXPECT_FALSE(HoltWintersForecaster(24).Fit(Seasonal(50, 24, 0.1, 3)).ok());
  EXPECT_FALSE(HoltWintersForecaster(1).Fit(Seasonal(100, 24, 0.1, 3)).ok());
}

TEST(RidgeDirectTest, BeatsNaiveOnSeasonalData) {
  std::vector<double> v = Seasonal(24 * 10, 24, 0.3, 4);
  std::vector<double> train(v.begin(), v.end() - 24);
  std::vector<double> test(v.end() - 24, v.end());
  RidgeDirectForecaster direct(48, 24);
  NaiveForecaster naive;
  ASSERT_TRUE(direct.Fit(train).ok());
  ASSERT_TRUE(naive.Fit(train).ok());
  auto fc_d = direct.Forecast(24);
  auto fc_n = naive.Forecast(24);
  ASSERT_TRUE(fc_d.ok());
  ASSERT_TRUE(fc_n.ok());
  EXPECT_LT(MeanAbsoluteError(test, *fc_d), MeanAbsoluteError(test, *fc_n));
}

TEST(BootstrapTest, DistributionCoversActuals) {
  Rng rng(5);
  std::vector<double> v = Seasonal(24 * 10, 24, 0.5, 6);
  std::vector<double> train(v.begin(), v.end() - 12);
  std::vector<double> actual(v.end() - 12, v.end());
  ArForecaster f(24);
  ASSERT_TRUE(f.Fit(train).ok());
  Result<std::vector<Histogram>> dist =
      BootstrapForecastDistribution(f, train, 12, 300, &rng);
  ASSERT_TRUE(dist.ok());
  ASSERT_EQ(dist->size(), 12u);
  double coverage = IntervalCoverage(*dist, actual, 0.05, 0.95);
  EXPECT_GE(coverage, 0.5);  // generous bound; intervals must be useful
}

TEST(MetricsTest, KnownValues) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> p = {2, 2, 5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(a, p), 1.0);
  EXPECT_NEAR(RootMeanSquaredError(a, p), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_GT(SymmetricMape(a, p), 0.0);
  EXPECT_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(MetricsTest, PinballLossAsymmetry) {
  // Under-prediction costs q, over-prediction costs 1-q.
  std::vector<double> actual = {10.0};
  EXPECT_NEAR(PinballLoss(actual, {8.0}, 0.9), 0.9 * 2.0, 1e-12);
  EXPECT_NEAR(PinballLoss(actual, {12.0}, 0.9), 0.1 * 2.0, 1e-12);
}

TEST(MetricsTest, CrpsSmallerForSharperForecast) {
  Rng rng(6);
  std::vector<double> tight, wide;
  for (int i = 0; i < 5000; ++i) {
    tight.push_back(rng.Normal(10.0, 0.5));
    wide.push_back(rng.Normal(10.0, 5.0));
  }
  Histogram ht = *Histogram::FromSamples(tight, 40);
  Histogram hw = *Histogram::FromSamples(wide, 40);
  EXPECT_LT(Crps(ht, 10.0), Crps(hw, 10.0));
  // But a badly wrong sharp forecast is punished.
  EXPECT_GT(Crps(ht, 30.0), Crps(hw, 30.0));
}

TEST(VarTest, CapturesCrossChannelDependence) {
  // Channel 1 follows channel 0 with one step delay.
  Rng rng(7);
  std::vector<double> x = {0.0};
  for (int i = 1; i < 800; ++i) {
    x.push_back(0.7 * x.back() + rng.Normal(0.0, 1.0));
  }
  std::vector<double> y(x.size(), 0.0);
  for (size_t i = 1; i < x.size(); ++i) y[i] = x[i - 1];
  VarForecaster var(2);
  ASSERT_TRUE(var.Fit({x, y}).ok());
  Result<std::vector<std::vector<double>>> fc = var.Forecast(1);
  ASSERT_TRUE(fc.ok());
  // y's forecast should be close to x's last value.
  EXPECT_NEAR((*fc)[1][0], x.back(), 1.0);
}

TEST(VarTest, InputValidation) {
  VarForecaster var(2);
  EXPECT_FALSE(var.Fit({}).ok());
  EXPECT_FALSE(var.Fit({{1, 2, 3}, {1, 2}}).ok());
  EXPECT_FALSE(var.Fit({{1, 2, 3}}).ok());  // too short
  EXPECT_FALSE(var.Forecast(2).ok());       // unfitted
}

TEST(GraphArTest, BeatsIndependentArOnCoupledSensors) {
  Rng rng(8);
  CorrelatedFieldSpec spec;
  spec.grid_rows = 3;
  spec.grid_cols = 3;
  spec.spatial_strength = 0.85;
  CorrelatedTimeSeries cts = GenerateCorrelatedField(spec, 500, &rng);
  size_t n = cts.NumSteps();
  size_t horizon = 12;

  // Train on prefix, test on the last `horizon` steps.
  CorrelatedTimeSeries train(cts.graph(),
                             cts.series().Slice(0, n - horizon));
  GraphRegularizedAr graph_ar(4, 2);
  ASSERT_TRUE(graph_ar.Fit(train).ok());
  auto fc = graph_ar.Forecast(static_cast<int>(horizon));
  ASSERT_TRUE(fc.ok());

  double err_graph = 0.0, err_indep = 0.0;
  for (size_t s = 0; s < cts.NumSensors(); ++s) {
    std::vector<double> actual;
    for (size_t t = n - horizon; t < n; ++t) actual.push_back(cts.At(t, s));
    err_graph += MeanAbsoluteError(actual, (*fc)[s]);
    ArForecaster ar(4);
    std::vector<double> hist = train.SensorSeries(s);
    ASSERT_TRUE(ar.Fit(hist).ok());
    auto fc_ar = ar.Forecast(static_cast<int>(horizon));
    ASSERT_TRUE(fc_ar.ok());
    err_indep += MeanAbsoluteError(actual, *fc_ar);
  }
  // Graph model should not be much worse; typically better.
  EXPECT_LT(err_graph, err_indep * 1.1);
}

}  // namespace
}  // namespace tsdm
