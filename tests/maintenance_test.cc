#include "src/decision/maintenance/maintenance.h"

#include <gtest/gtest.h>

#include "src/sim/degradation.h"

namespace tsdm {
namespace {

TEST(DegradationTest, HealthDecreasesMonotonically) {
  DegradationSpec spec;
  DegradationProcess process(spec, 1);
  double prev = process.true_health();
  for (int i = 0; i < 100; ++i) {
    process.Step();
    EXPECT_LE(process.true_health(), prev);
    prev = process.true_health();
  }
}

TEST(DegradationTest, EventuallyFailsAndRestores) {
  DegradationSpec spec;
  DegradationProcess process(spec, 2);
  int steps = 0;
  while (!process.failed() && steps < 100000) {
    process.Step();
    ++steps;
  }
  EXPECT_TRUE(process.failed());
  process.Restore();
  EXPECT_FALSE(process.failed());
  EXPECT_EQ(process.true_health(), spec.initial_health);
}

TEST(DegradationTest, RunToFailureTraceEndsNearThreshold) {
  DegradationSpec spec;
  std::vector<double> trace = RunToFailureTrace(spec, 3);
  ASSERT_GT(trace.size(), 50u);
  // Early readings near full health, late readings near the threshold.
  EXPECT_GT(trace.front(), spec.initial_health - 10.0);
  EXPECT_LT(trace.back(), spec.failure_threshold + 10.0);
}

TEST(PolicyTest, RunToFailureNeverMaintains) {
  RunToFailurePolicy policy;
  std::vector<double> readings(500, 1.0);
  EXPECT_FALSE(policy.ShouldMaintain(readings));
}

TEST(PolicyTest, ScheduledTriggersAtInterval) {
  ScheduledPolicy policy(10);
  EXPECT_FALSE(policy.ShouldMaintain(std::vector<double>(9, 50.0)));
  EXPECT_TRUE(policy.ShouldMaintain(std::vector<double>(10, 50.0)));
}

TEST(PolicyTest, ThresholdUsesSmoothedReading) {
  ConditionThresholdPolicy policy(30.0, 4);
  // One noisy dip below threshold is smoothed away.
  std::vector<double> readings = {50, 50, 50, 25, 50, 50, 50};
  EXPECT_FALSE(policy.ShouldMaintain(readings));
  std::vector<double> low = {50, 50, 28, 27, 29, 26};
  EXPECT_TRUE(policy.ShouldMaintain(low));
}

TEST(PredictivePolicyTest, RiskRisesAsHealthApproachesThreshold) {
  DegradationSpec spec;
  std::vector<double> trace = RunToFailureTrace(spec, 7);
  ASSERT_GT(trace.size(), 200u);
  PredictiveMaintenancePolicy::Options opts;
  opts.failure_threshold = spec.failure_threshold;
  PredictiveMaintenancePolicy policy(opts);
  std::vector<double> early(trace.begin(), trace.begin() + trace.size() / 3);
  std::vector<double> late(trace.begin(), trace.end() - 5);
  double risk_early = policy.FailureProbability(early);
  double risk_late = policy.FailureProbability(late);
  EXPECT_LT(risk_early, 0.3);
  EXPECT_GT(risk_late, risk_early);
}

TEST(SimulateMaintenanceTest, PredictiveBeatsExtremePolicies) {
  DegradationSpec spec;
  int machines = 8, steps = 3000, review = 24;
  RunToFailurePolicy rtf;
  ScheduledPolicy eager(150);  // maintains far too often
  PredictiveMaintenancePolicy::Options popts;
  popts.failure_threshold = spec.failure_threshold;
  popts.horizon = review;
  PredictiveMaintenancePolicy predictive(popts);

  MaintenanceOutcome o_rtf =
      SimulateMaintenance(spec, &rtf, machines, steps, review);
  MaintenanceOutcome o_eager =
      SimulateMaintenance(spec, &eager, machines, steps, review);
  MaintenanceOutcome o_pred =
      SimulateMaintenance(spec, &predictive, machines, steps, review);

  // Run-to-failure has the most breakdowns; predictive has few.
  EXPECT_GT(o_rtf.failures, o_pred.failures);
  // Predictive uses more of each unit's life than eager scheduling.
  EXPECT_GT(o_pred.mean_life_used, o_eager.mean_life_used);
  // And achieves the lowest total cost of the three.
  EXPECT_LT(o_pred.cost, o_rtf.cost);
  EXPECT_LT(o_pred.cost, o_eager.cost);
}

}  // namespace
}  // namespace tsdm
