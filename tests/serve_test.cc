#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/obs/metrics_export.h"
#include "src/obs/trace.h"
#include "src/serve/autoscale_controller.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/query_server.h"
#include "src/serve/request_queue.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

ServeRequest MakeRequest(uint64_t id, int snapshot = 0,
                         double budget_seconds = 0.25) {
  ServeRequest req;
  req.id = id;
  req.query.snapshot_id = snapshot;
  req.enqueue_ns = TraceRecorder::NowNs();
  req.queue_budget_seconds = budget_seconds;
  return req;
}

// --- RequestQueue --------------------------------------------------------

TEST(RequestQueueTest, AdmitsUntilCapacityThenSheds) {
  RequestQueue::Options opts;
  opts.capacity = 2;
  RequestQueue queue(opts);

  EXPECT_TRUE(queue.Push(MakeRequest(1)).ok());
  EXPECT_TRUE(queue.Push(MakeRequest(2)).ok());
  Status shed = queue.Push(MakeRequest(3));
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);

  RequestQueue::Stats stats = queue.GetStats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.shed_capacity, 1u);
  EXPECT_EQ(stats.depth, 2u);

  // Popping frees capacity again — depth stays bounded, never the backlog.
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(TraceRecorder::NowNs(), 10, &out), 2u);
  EXPECT_TRUE(queue.Push(MakeRequest(4)).ok());
}

TEST(RequestQueueTest, ShedsExpiredRequestsAtPop) {
  RequestQueue queue;
  std::atomic<int> shed_callbacks{0};

  ServeRequest stale = MakeRequest(1, 0, /*budget_seconds=*/0.001);
  stale.on_done = [&shed_callbacks](const RouteAnswer& answer) {
    EXPECT_EQ(answer.status.code(), StatusCode::kResourceExhausted);
    shed_callbacks.fetch_add(1);
  };
  ServeRequest live = MakeRequest(2, 0, /*budget_seconds=*/60.0);
  ASSERT_TRUE(queue.Push(std::move(stale)).ok());
  ASSERT_TRUE(queue.Push(std::move(live)).ok());

  // Pop "one second later": the stale request is shed, the live one
  // delivered.
  uint64_t later = TraceRecorder::NowNs() + 1000000000ull;
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(later, 10, &out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2u);
  EXPECT_EQ(shed_callbacks.load(), 1);
  EXPECT_EQ(queue.GetStats().shed_expired, 1u);
}

TEST(RequestQueueTest, ZeroBudgetMeansNoExpiry) {
  RequestQueue queue;
  ASSERT_TRUE(queue.Push(MakeRequest(1, 0, /*budget_seconds=*/0.0)).ok());
  uint64_t much_later = TraceRecorder::NowNs() + 3600ull * 1000000000ull;
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(much_later, 10, &out), 1u);
}

TEST(RequestQueueTest, CloseDrainsAndRejects) {
  RequestQueue queue;
  std::atomic<int> drained{0};
  for (uint64_t i = 0; i < 3; ++i) {
    ServeRequest req = MakeRequest(i);
    req.on_done = [&drained](const RouteAnswer& answer) {
      EXPECT_EQ(answer.status.code(), StatusCode::kFailedPrecondition);
      drained.fetch_add(1);
    };
    ASSERT_TRUE(queue.Push(std::move(req)).ok());
  }

  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(drained.load(), 3);

  Status rejected = queue.Push(MakeRequest(9));
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);

  RequestQueue::Stats stats = queue.GetStats();
  EXPECT_EQ(stats.shed_closed, 4u);  // 3 drained + 1 rejected
  EXPECT_EQ(stats.depth, 0u);
  queue.Close();  // idempotent
}

// --- MicroBatcher --------------------------------------------------------

TEST(MicroBatcherTest, DispatchesFullBatchPerSnapshot) {
  MicroBatcher::Options opts;
  opts.max_batch = 2;
  MicroBatcher batcher(opts);
  std::vector<std::vector<ServeRequest>> ready;

  batcher.Add(MakeRequest(1, /*snapshot=*/0), &ready);
  batcher.Add(MakeRequest(2, /*snapshot=*/1), &ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(batcher.pending(), 2u);

  // Snapshot 0 fills up; snapshot 1 keeps waiting — batches never mix
  // snapshots.
  batcher.Add(MakeRequest(3, /*snapshot=*/0), &ready);
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].size(), 2u);
  EXPECT_EQ(ready[0][0].query.snapshot_id, 0);
  EXPECT_EQ(ready[0][1].query.snapshot_id, 0);
  EXPECT_EQ(batcher.pending(), 1u);

  batcher.FlushAll(&ready);
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(ready[1][0].query.snapshot_id, 1);
  EXPECT_EQ(batcher.pending(), 0u);

  EXPECT_EQ(batcher.stats().batches, 2u);
  EXPECT_EQ(batcher.stats().batched_requests, 3u);
  EXPECT_EQ(batcher.stats().max_batch_seen, 2u);
}

TEST(MicroBatcherTest, FlushExpiredUsesOldestMember) {
  MicroBatcher::Options opts;
  opts.max_batch = 100;
  opts.max_wait_seconds = 0.002;
  MicroBatcher batcher(opts);
  std::vector<std::vector<ServeRequest>> ready;

  batcher.Add(MakeRequest(1), &ready);
  uint64_t now = TraceRecorder::NowNs();
  batcher.FlushExpired(now, &ready);
  EXPECT_TRUE(ready.empty());  // not old enough yet

  batcher.FlushExpired(now + 3000000ull, &ready);  // +3ms
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(MicroBatcherTest, FlushExpiredFiresAtExactDeadline) {
  // The age trigger is `now - oldest >= budget`: a batch whose age equals
  // the budget EXACTLY is flushed — the boundary belongs to the flush, so
  // a dispatcher polling on whole budget multiples never strands a batch
  // for an extra tick.
  MicroBatcher::Options opts;
  opts.max_batch = 100;
  opts.max_wait_seconds = 0.002;
  MicroBatcher batcher(opts);
  std::vector<std::vector<ServeRequest>> ready;

  const uint64_t t0 = 1000000000ull;  // controlled clock, no NowNs jitter
  ServeRequest req = MakeRequest(1);
  req.enqueue_ns = t0;
  batcher.Add(std::move(req), &ready);

  const uint64_t deadline = t0 + 2000000ull;  // t0 + max_wait exactly
  batcher.FlushExpired(deadline - 1, &ready);
  EXPECT_TRUE(ready.empty());  // one ns early: still batching
  EXPECT_EQ(batcher.pending(), 1u);

  batcher.FlushExpired(deadline, &ready);  // exact equality flushes
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(batcher.pending(), 0u);
}

TEST(MicroBatcherTest, SingleRequestBatchIsFlushedByAgeAlone) {
  // A lone request must never wait for company: with max_batch far away,
  // the age trigger alone dispatches a size-1 batch, and the batch
  // bookkeeping records it as a real (if minimal) batch.
  MicroBatcher::Options opts;
  opts.max_batch = 100;
  opts.max_wait_seconds = 0.001;
  MicroBatcher batcher(opts);
  std::vector<std::vector<ServeRequest>> ready;

  const uint64_t t0 = 5000000000ull;
  ServeRequest req = MakeRequest(7, /*snapshot=*/3);
  req.enqueue_ns = t0;
  batcher.Add(std::move(req), &ready);
  ASSERT_TRUE(ready.empty());

  batcher.FlushExpired(t0 + 1000000ull, &ready);
  ASSERT_EQ(ready.size(), 1u);
  ASSERT_EQ(ready[0].size(), 1u);
  EXPECT_EQ(ready[0][0].id, 7u);
  EXPECT_EQ(ready[0][0].query.snapshot_id, 3);
  EXPECT_EQ(batcher.pending(), 0u);
  EXPECT_EQ(batcher.stats().batches, 1u);
  EXPECT_EQ(batcher.stats().batched_requests, 1u);
  EXPECT_EQ(batcher.stats().max_batch_seen, 1u);
}

// --- AutoscaleController -------------------------------------------------

TEST(AutoscaleControllerTest, ClampsToWorkerBounds) {
  ThreadPool pool(2);
  AutoscaleController::Options opts;
  opts.min_workers = 1;
  opts.max_workers = 4;
  opts.per_worker_capacity = 10.0;
  AutoscaleController controller(&pool, nullptr, opts);

  // A demand burst far beyond max_workers * capacity clamps at the top.
  EXPECT_EQ(controller.OnInterval(1000.0), 4);
  EXPECT_EQ(pool.NumThreads(), 4);
  EXPECT_GE(controller.scale_events(), 1);

  // Sustained silence (past the reactive lookback) shrinks to the floor.
  int workers = 4;
  for (int i = 0; i < 10; ++i) workers = controller.OnInterval(0.0);
  EXPECT_EQ(workers, 1);
  EXPECT_EQ(pool.NumThreads(), 1);
  EXPECT_EQ(controller.history().size(), 11u);
}

TEST(AutoscaleControllerTest, ModerateDemandLandsBetweenBounds) {
  ThreadPool pool(1);
  AutoscaleController::Options opts;
  opts.min_workers = 1;
  opts.max_workers = 8;
  opts.per_worker_capacity = 10.0;
  AutoscaleController controller(&pool, nullptr, opts);
  // Reactive provisions recent peak + headroom: 30 req/interval at 10 per
  // worker needs ceil(30 * 1.15 / 10) = 4 workers.
  int workers = 0;
  for (int i = 0; i < 3; ++i) workers = controller.OnInterval(30.0);
  EXPECT_EQ(workers, 4);
}

// --- QueryServer end to end ----------------------------------------------

struct ServeFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  ServeFixture() : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    // Train the edge-centric model on every edge so any route has
    // coverage; one slot's observations are enough (empty slots borrow the
    // global distribution).
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 5;
    spec.cols = 5;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(3);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }
};

TEST(QueryServerTest, AnswersQueriesAndWarmsCaches) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.initial_workers = 2;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // double start rejected

  std::atomic<int> ok_answers{0};
  std::atomic<int> bad_answers{0};
  const int kQueries = 60;
  for (int i = 0; i < kQueries; ++i) {
    RouteQuery query;
    query.source = GridNodeId(fx.spec, 0, 0);
    query.target = GridNodeId(fx.spec, 4, (i % 2) ? 4 : 3);
    query.k = 3;
    query.depart_seconds = 8 * 3600.0;
    query.arrival_deadline_seconds = query.depart_seconds + 1200.0;
    QueryServer::SubmitOptions sopts;
    sopts.queue_budget_seconds = 30.0;
    sopts.client_request_id = static_cast<uint64_t>(i + 1);
    Status s = server.Submit(
        query,
        [&ok_answers, &bad_answers](const RouteAnswer& answer) {
          if (answer.status.ok()) {
            EXPECT_FALSE(answer.route.edges.empty());
            // SubmitOptions::client_request_id is echoed verbatim.
            EXPECT_GT(answer.client_request_id, 0u);
            EXPECT_GT(answer.cost_mean_seconds, 0.0);
            EXPECT_GE(answer.on_time_probability, 0.0);
            EXPECT_LE(answer.on_time_probability, 1.0);
            EXPECT_GT(answer.num_candidates, 0);
            ok_answers.fetch_add(1);
          } else {
            bad_answers.fetch_add(1);
          }
        },
        sopts);
    ASSERT_TRUE(s.ok());
  }
  server.WaitIdle();

  EXPECT_EQ(ok_answers.load(), kQueries);
  EXPECT_EQ(bad_answers.load(), 0);

  ServeStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.TotalShed(), 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, static_cast<uint64_t>(kQueries));
  // Only two OD pairs and one time bucket: almost everything after the
  // first queries is served from the sub-path cache.
  EXPECT_GT(stats.cache_hits, stats.cache_misses);
  EXPECT_GT(stats.CacheHitRate(), 0.5);
  EXPECT_EQ(stats.e2e_latency.count(), static_cast<uint64_t>(kQueries));

  server.Stop();
  // Submit after stop is rejected, not queued.
  Status rejected = server.Submit(RouteQuery{}, nullptr);
  EXPECT_EQ(rejected.code(), StatusCode::kFailedPrecondition);
}

TEST(QueryServerTest, UnreachableTargetFailsCleanly) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  RouteQuery query;
  query.source = GridNodeId(fx.spec, 0, 0);
  query.target = 100000;  // no such node
  QueryServer::SubmitOptions unreachable_opts;
  unreachable_opts.queue_budget_seconds = 30.0;
  ASSERT_TRUE(server
                  .Submit(query,
                          [&failures](const RouteAnswer& answer) {
                            EXPECT_FALSE(answer.status.ok());
                            failures.fetch_add(1);
                          },
                          unreachable_opts)
                  .ok());
  server.WaitIdle();
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(server.Stats().failed, 1u);
}

// Overload the server from several producers against a tiny queue: every
// admitted request must reach exactly one terminal state, the shed
// accounting must add up, and (under TSan) producers, dispatcher, workers
// and the autoscaler must not race.
TEST(QueryServerTest, MultiProducerOverloadShedsAndBalances) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.queue.capacity = 16;
  opts.batch.max_batch = 4;
  opts.initial_workers = 2;
  opts.autoscale_enabled = true;
  opts.autoscale.min_workers = 1;
  opts.autoscale.max_workers = 4;
  opts.autoscale_interval_seconds = 0.005;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<uint64_t> callbacks{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> shed_at_submit{0};
  const int kProducers = 4;
  const int kPerProducer = 300;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        RouteQuery query;
        query.source = GridNodeId(fx.spec, 0, p % 5);
        query.target = GridNodeId(fx.spec, 4, (p + i) % 5);
        query.k = 2;
        query.depart_seconds = 8 * 3600.0;
        QueryServer::SubmitOptions tight;
        tight.queue_budget_seconds = 0.05;
        Status s = server.Submit(
            query, [&callbacks](const RouteAnswer&) { callbacks.fetch_add(1); },
            tight);
        if (s.ok()) {
          accepted.fetch_add(1);
        } else {
          EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
          shed_at_submit.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.WaitIdle();
  server.Stop();

  ServeStatsSnapshot stats = server.Stats();
  const uint64_t total =
      static_cast<uint64_t>(kProducers) * static_cast<uint64_t>(kPerProducer);
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.admitted, accepted.load());
  EXPECT_EQ(stats.shed_capacity, shed_at_submit.load());
  // Exactly one callback per admitted request: served, expired, or drained.
  EXPECT_EQ(callbacks.load(), stats.admitted);
  EXPECT_EQ(stats.completed + stats.failed + stats.shed_expired +
                stats.shed_closed,
            stats.admitted);
  // Queue depth was bounded the whole time, so it ends bounded too.
  EXPECT_LE(stats.queue_depth, opts.queue.capacity);
  EXPECT_GE(stats.workers, 1);
  EXPECT_LE(stats.workers, 4);
}

TEST(QueryServerTest, ServeMetricsAppearInExports) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());
  std::atomic<int> done{0};
  RouteQuery query;
  query.source = GridNodeId(fx.spec, 0, 0);
  query.target = GridNodeId(fx.spec, 4, 4);
  QueryServer::SubmitOptions export_opts;
  export_opts.queue_budget_seconds = 30.0;
  ASSERT_TRUE(
      server.Submit(query, [&done](const RouteAnswer&) { done.fetch_add(1); },
                    export_opts)
          .ok());
  server.WaitIdle();
  ServeStatsSnapshot stats = server.Stats();

  std::string prom = MetricsExporter::ServeToPrometheus(stats);
  EXPECT_NE(prom.find("tsdm_serve_submitted_total 1"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_admitted_total 1"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_shed_total{reason=\"capacity\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_cache_lookups_total{outcome=\"hit\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_workers"), std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_latency_seconds_count"), std::string::npos);

  std::string json = MetricsExporter::ServeToJson(stats);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(json.find("\"serve\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_EQ(done.load(), 1);
}

// Regression (run under TSan by scripts/check.sh): Stats() must be safe to
// call from any thread at any point of the Stop() drain, and concurrent
// Stop() calls — owner + destructor + monitoring hooks — must collapse to
// one shutdown instead of a double join. Before the lifecycle lock,
// `started_` was a plain bool and two racing Stops both joined the
// dispatcher.
TEST(QueryServerTest, StatsDuringConcurrentStopIsSafe) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.autoscale_enabled = false;
  opts.queue.capacity = 64;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());

  // Keep the queue busy so Stop() has a real drain to race against.
  std::atomic<bool> submitting{true};
  std::thread producer([&] {
    QueryServer::SubmitOptions sopts;
    sopts.queue_budget_seconds = 0.01;
    int i = 0;
    while (submitting.load(std::memory_order_acquire)) {
      RouteQuery query;
      query.source = GridNodeId(fx.spec, 0, 0);
      query.target = GridNodeId(fx.spec, 4, (i++ % 2) ? 4 : 3);
      query.k = 2;
      query.depart_seconds = 8 * 3600.0;
      (void)server.Submit(query, nullptr, sopts);
    }
  });

  std::atomic<bool> hammering{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      // Mid-race snapshots are torn by design — Stats() reads each atomic
      // at a different instant, so cross-counter inequalities do not hold
      // while the producer races the readers. What does hold is that every
      // counter is monotone within one reader's view.
      ServeStatsSnapshot prev;
      while (hammering.load(std::memory_order_acquire)) {
        ServeStatsSnapshot snap = server.Stats();
        EXPECT_GE(snap.submitted, prev.submitted);
        EXPECT_GE(snap.admitted, prev.admitted);
        EXPECT_GE(snap.completed, prev.completed);
        EXPECT_GE(snap.failed, prev.failed);
        EXPECT_GE(snap.shed_expired, prev.shed_expired);
        EXPECT_GE(snap.shed_closed, prev.shed_closed);
        prev = snap;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Two threads race the shutdown while Stats() is being hammered.
  std::thread stopper_a([&] { server.Stop(); });
  std::thread stopper_b([&] { server.Stop(); });
  stopper_a.join();
  stopper_b.join();
  submitting.store(false, std::memory_order_release);
  producer.join();
  // Stats stays valid after shutdown too.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hammering.store(false, std::memory_order_release);
  for (auto& t : readers) t.join();

  ServeStatsSnapshot stats = server.Stats();
  // Every admitted request reached a terminal state (served, expired, or
  // drained at close — shed_closed additionally counts rejected post-close
  // submits, hence >=), and nothing terminal was fabricated.
  EXPECT_GE(stats.completed + stats.failed + stats.shed_expired +
                stats.shed_closed,
            stats.admitted);
  EXPECT_LE(stats.completed + stats.failed + stats.shed_expired,
            stats.admitted);
  // Idempotent after the race, and restartable.
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
}

// The deprecated pre-SubmitOptions 3-arg (trailing double) overload was
// removed after its one-release grace period; the 2-arg convenience now
// comes from the QueryService base and must default every option — in
// particular the 0.25 s queue budget and an unset client_request_id.
TEST(QueryServerTest, BaseSubmitConvenienceUsesDefaultOptions) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());
  std::atomic<int> done{0};
  std::atomic<uint64_t> echoed{1};
  RouteQuery query;
  query.source = GridNodeId(fx.spec, 0, 0);
  query.target = GridNodeId(fx.spec, 4, 4);
  // Through the base-class surface: what a shard-oblivious caller holding
  // only a QueryService* can express.
  QueryService& service = server;
  ASSERT_TRUE(service
                  .Submit(query,
                          [&](const RouteAnswer& answer) {
                            EXPECT_TRUE(answer.status.ok());
                            echoed.store(answer.client_request_id);
                            done.fetch_add(1);
                          })
                  .ok());
  server.WaitIdle();
  EXPECT_EQ(done.load(), 1);
  // The convenience surface has no client_request_id: it stays unset.
  EXPECT_EQ(echoed.load(), 0u);
  EXPECT_EQ(server.Stats().completed, 1u);
}

// --- Multi-tenant scheduling ---------------------------------------------

ServeRequest MakeTenantRequest(uint64_t id, const std::string& tenant,
                               int priority, double budget_seconds = 60.0) {
  ServeRequest req = MakeRequest(id, 0, budget_seconds);
  req.tenant = tenant;
  req.priority = priority;
  return req;
}

const RequestQueue::TenantStats* FindTenant(const RequestQueue::Stats& stats,
                                            const std::string& name) {
  for (const auto& [n, ts] : stats.tenants) {
    if (n == name) return &ts;
  }
  return nullptr;
}

const TenantServeStats* FindTenant(const ServeStatsSnapshot& snap,
                                   const std::string& name) {
  for (const TenantServeStats& t : snap.tenants) {
    if (t.tenant == name) return &t;
  }
  return nullptr;
}

TEST(RequestQueueTenantTest, DeficitRoundRobinTracksWeights) {
  RequestQueue::Options opts;
  opts.capacity = 1024;
  opts.drr_quantum = 8.0;
  opts.tenants["heavy"].weight = 3.0;
  opts.tenants["light"].weight = 1.0;
  RequestQueue queue(opts);

  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(queue.Push(MakeTenantRequest(i, "heavy", 0)).ok());
    ASSERT_TRUE(queue.Push(MakeTenantRequest(1000 + i, "light", 0)).ok());
  }

  // Drain a saturated prefix: while both tenants stay backlogged, the
  // dispatch ratio must track the 3:1 weight ratio, not the 1:1 arrival
  // ratio.
  const uint64_t now = TraceRecorder::NowNs();
  std::vector<ServeRequest> out;
  size_t popped_total = 0;
  while (popped_total < 160) {
    size_t n = queue.PopBatch(now, 32, &out);
    ASSERT_GT(n, 0u);
    popped_total += n;
  }

  RequestQueue::Stats stats = queue.GetStats();
  const RequestQueue::TenantStats* heavy = FindTenant(stats, "heavy");
  const RequestQueue::TenantStats* light = FindTenant(stats, "light");
  ASSERT_NE(heavy, nullptr);
  ASSERT_NE(light, nullptr);
  EXPECT_EQ(heavy->popped + light->popped, popped_total);
  ASSERT_GT(light->popped, 0u);
  const double ratio = static_cast<double>(heavy->popped) /
                       static_cast<double>(light->popped);
  EXPECT_GE(ratio, 2.5) << heavy->popped << ":" << light->popped;
  EXPECT_LE(ratio, 3.5) << heavy->popped << ":" << light->popped;
}

TEST(RequestQueueTenantTest, QuotaCapsOneTenantWithoutStarvingOthers) {
  RequestQueue::Options opts;
  opts.capacity = 64;
  opts.tenants["greedy"].quota = 4;
  RequestQueue queue(opts);

  int greedy_ok = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    if (queue.Push(MakeTenantRequest(i, "greedy", 0)).ok()) ++greedy_ok;
  }
  EXPECT_EQ(greedy_ok, 4);  // quota, not capacity, is the binding limit

  // Another tenant is untouched by the flooder's quota sheds.
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(MakeTenantRequest(100 + i, "polite", 0)).ok());
  }

  RequestQueue::Stats stats = queue.GetStats();
  const RequestQueue::TenantStats* greedy = FindTenant(stats, "greedy");
  const RequestQueue::TenantStats* polite = FindTenant(stats, "polite");
  ASSERT_NE(greedy, nullptr);
  ASSERT_NE(polite, nullptr);
  EXPECT_EQ(greedy->admitted, 4u);
  EXPECT_EQ(greedy->shed_capacity, 6u);
  EXPECT_EQ(greedy->depth, 4u);
  EXPECT_EQ(polite->admitted, 5u);
  EXPECT_EQ(polite->shed_capacity, 0u);
  EXPECT_EQ(stats.shed_capacity, 6u);
  EXPECT_EQ(stats.depth, 9u);
}

TEST(RequestQueueTenantTest, OverloadEvictsLowestClassNewestFirst) {
  RequestQueue::Options opts;
  opts.capacity = 3;
  RequestQueue queue(opts);

  std::vector<uint64_t> evicted;
  auto tracked = [&evicted](uint64_t id, int priority) {
    ServeRequest req = MakeTenantRequest(id, "", priority);
    req.on_done = [&evicted, id](const RouteAnswer& answer) {
      EXPECT_EQ(answer.status.code(), StatusCode::kResourceExhausted);
      // Satellite invariant: every typed shed carries the tenant id.
      EXPECT_EQ(answer.tenant_id, "default");
      evicted.push_back(id);
    };
    return req;
  };

  ASSERT_TRUE(queue.Push(tracked(1, 0)).ok());
  ASSERT_TRUE(queue.Push(tracked(2, 0)).ok());
  ASSERT_TRUE(queue.Push(tracked(3, 1)).ok());

  // Full queue, premium arrival: the newest request of the lowest occupied
  // class below it (id 2, class 0) is displaced — its callback fires with
  // a typed shed before Push returns.
  EXPECT_TRUE(queue.Push(tracked(10, 2)).ok());
  ASSERT_EQ(evicted, (std::vector<uint64_t>{2}));

  // Full queue, best-effort arrival: nothing below class 0 exists, so the
  // arrival itself is shed and nothing already queued is touched.
  EXPECT_EQ(queue.Push(tracked(11, 0)).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(evicted.size(), 1u);

  // Standard arrival displaces the remaining best-effort request (id 1),
  // not the equal-or-higher classes.
  EXPECT_TRUE(queue.Push(tracked(12, 1)).ok());
  ASSERT_EQ(evicted, (std::vector<uint64_t>{2, 1}));

  RequestQueue::Stats stats = queue.GetStats();
  EXPECT_EQ(stats.shed_evicted, 2u);
  EXPECT_EQ(stats.shed_capacity, 1u);
  EXPECT_EQ(stats.depth, 3u);

  // The survivors are exactly {3, 10, 12}, highest class first.
  std::vector<ServeRequest> out;
  EXPECT_EQ(queue.PopBatch(TraceRecorder::NowNs(), 10, &out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 10u);
}

// Regression for the shed-attribution invariant (property-tested here,
// relied on by the Prometheus export and the shard aggregation): after any
// mix of quota sheds, capacity sheds, evictions, expiries, and a close
// drain, every global counter equals the sum of the per-tenant counters.
TEST(RequestQueueTenantTest, PerTenantCountersSumToGlobals) {
  RequestQueue::Options opts;
  opts.capacity = 6;
  opts.tenants["a"].quota = 2;
  RequestQueue queue(opts);

  uint64_t id = 0;
  // Quota sheds for "a" (only 2 admitted).
  for (int i = 0; i < 5; ++i) (void)queue.Push(MakeTenantRequest(++id, "a", 0));
  // One doomed request whose budget expires before the pop below — shed
  // while the queue is still uncontended, so nothing can evict it first.
  (void)queue.Push(MakeTenantRequest(++id, "b", 0, /*budget_seconds=*/1e-9));
  std::vector<ServeRequest> out;
  queue.PopBatch(TraceRecorder::NowNs() + 1000000ull, 3, &out);

  // Refill to capacity, then overload: capacity sheds for same-class
  // arrivals, evictions for higher-class ones.
  for (int i = 0; i < 4; ++i) (void)queue.Push(MakeTenantRequest(++id, "b", 1));
  for (int i = 0; i < 4; ++i) (void)queue.Push(MakeTenantRequest(++id, "c", 0));
  for (int i = 0; i < 3; ++i) (void)queue.Push(MakeTenantRequest(++id, "c", 3));
  // Anonymous tenant lands under the reserved "default" name.
  (void)queue.Push(MakeTenantRequest(++id, "", 0));
  queue.Close();

  RequestQueue::Stats stats = queue.GetStats();
  RequestQueue::TenantStats sum;
  for (const auto& [name, ts] : stats.tenants) {
    EXPECT_FALSE(name.empty());  // "" was normalized to "default"
    sum.submitted += ts.submitted;
    sum.admitted += ts.admitted;
    sum.shed_capacity += ts.shed_capacity;
    sum.shed_expired += ts.shed_expired;
    sum.shed_closed += ts.shed_closed;
    sum.shed_evicted += ts.shed_evicted;
    sum.depth += ts.depth;
  }
  EXPECT_EQ(sum.submitted, stats.submitted);
  EXPECT_EQ(sum.admitted, stats.admitted);
  EXPECT_EQ(sum.shed_capacity, stats.shed_capacity);
  EXPECT_EQ(sum.shed_expired, stats.shed_expired);
  EXPECT_EQ(sum.shed_closed, stats.shed_closed);
  EXPECT_EQ(sum.shed_evicted, stats.shed_evicted);
  EXPECT_EQ(sum.depth, stats.depth);
  // The mix actually exercised every shed path.
  EXPECT_GT(stats.shed_capacity, 0u);
  EXPECT_GT(stats.shed_expired, 0u);
  EXPECT_GT(stats.shed_closed, 0u);
  EXPECT_GT(stats.shed_evicted, 0u);
  EXPECT_NE(FindTenant(stats, "default"), nullptr);
}

TEST(QueryServerTest, TenantBreakdownSumsToGlobalsAndExports) {
  ServeFixture fx;
  QueryServer::Options opts;
  opts.initial_workers = 2;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());

  auto submit = [&](const std::string& tenant, int priority, int count) {
    for (int i = 0; i < count; ++i) {
      RouteQuery query;
      query.source = GridNodeId(fx.spec, 0, i % 5);
      query.target = GridNodeId(fx.spec, 4, (i + 1) % 5);
      query.k = 2;
      query.depart_seconds = 8 * 3600.0;
      QueryServer::SubmitOptions sopts;
      sopts.queue_budget_seconds = 30.0;
      sopts.tenant_id = tenant;
      sopts.priority = priority;
      ASSERT_TRUE(server.Submit(query, nullptr, sopts).ok());
    }
  };
  submit("premium", 2, 20);
  submit("batch", 0, 20);
  submit("", 0, 10);  // anonymous -> "default"
  server.WaitIdle();

  ServeStatsSnapshot snap = server.Stats();
  ASSERT_EQ(snap.tenants.size(), 3u);
  // Sorted by tenant name.
  EXPECT_EQ(snap.tenants[0].tenant, "batch");
  EXPECT_EQ(snap.tenants[1].tenant, "default");
  EXPECT_EQ(snap.tenants[2].tenant, "premium");

  uint64_t submitted = 0, admitted = 0, completed = 0, failed = 0;
  uint64_t latency_count = 0;
  for (const TenantServeStats& t : snap.tenants) {
    submitted += t.submitted;
    admitted += t.admitted;
    completed += t.completed;
    failed += t.failed;
    latency_count += t.e2e_latency.count();
  }
  EXPECT_EQ(submitted, snap.submitted);
  EXPECT_EQ(admitted, snap.admitted);
  EXPECT_EQ(completed, snap.completed);
  EXPECT_EQ(failed, snap.failed);
  EXPECT_EQ(latency_count, snap.e2e_latency.count());
  EXPECT_EQ(FindTenant(snap, "premium")->completed, 20u);
  EXPECT_EQ(FindTenant(snap, "default")->completed, 10u);

  std::string prom = MetricsExporter::ServeToPrometheus(snap);
  EXPECT_NE(prom.find("tsdm_serve_tenant_submitted_total{tenant=\"premium\"} 20"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_tenant_completed_total{tenant=\"batch\"} 20"),
            std::string::npos);
  EXPECT_NE(
      prom.find("tsdm_serve_tenant_shed_total{tenant=\"default\",reason=\"evicted\"} 0"),
      std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_tenant_latency_seconds_count{tenant=\"premium\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tsdm_serve_shed_total{reason=\"evicted\"}"),
            std::string::npos);

  std::string json = MetricsExporter::ServeToJson(snap);
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"premium\""), std::string::npos);
  EXPECT_NE(json.find("\"shed_evicted\""), std::string::npos);

  server.Stop();
}

// --- AutoscaleController satellites --------------------------------------

TEST(AutoscaleControllerTest, ZeroArrivalIntervalsHoldTheFloorQuietly) {
  ThreadPool pool(3);
  AutoscaleController::Options opts;
  opts.min_workers = 2;
  opts.max_workers = 6;
  opts.per_worker_capacity = 10.0;
  AutoscaleController controller(&pool, nullptr, opts);

  // An idle server: every review interval observes zero arrivals. The
  // controller must neither crash nor thrash — one shrink to the floor,
  // then steady state.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(controller.OnInterval(0.0), 2);
  }
  EXPECT_EQ(pool.NumThreads(), 2);
  EXPECT_EQ(controller.scale_events(), 1);
  // Negative arrivals (clock skew artifacts) are clamped to zero demand.
  EXPECT_EQ(controller.OnInterval(-5.0), 2);
  EXPECT_EQ(controller.history().back(), 0.0);
}

TEST(AutoscaleControllerTest, HistoryIsBoundedByMaxHistory) {
  ThreadPool pool(1);
  AutoscaleController::Options opts;
  opts.max_history = 4;
  opts.per_worker_capacity = 10.0;
  AutoscaleController controller(&pool, nullptr, opts);
  for (int i = 1; i <= 10; ++i) {
    controller.OnInterval(static_cast<double>(i));
  }
  // Only the newest max_history samples survive, oldest evicted first.
  ASSERT_EQ(controller.history().size(), 4u);
  EXPECT_EQ(controller.history().front(), 7.0);
  EXPECT_EQ(controller.history().back(), 10.0);
}

TEST(AutoscaleControllerTest, ClampBoundariesAreExactAndQuiet) {
  ThreadPool pool(1);
  AutoscaleController::Options opts;
  opts.min_workers = 2;
  opts.max_workers = 4;
  opts.per_worker_capacity = 10.0;
  AutoscaleController controller(&pool, nullptr, opts);

  // Below the floor's demand: clamps *up* to min_workers, never below.
  EXPECT_EQ(controller.OnInterval(1.0), 2);
  // Far beyond the ceiling: clamps to max_workers exactly.
  EXPECT_EQ(controller.OnInterval(10000.0), 4);
  const int events_at_max = controller.scale_events();
  // Still beyond the ceiling: the clamped size is unchanged, so no resize
  // and no scale event — the controller does not thrash at the boundary.
  EXPECT_EQ(controller.OnInterval(20000.0), 4);
  EXPECT_EQ(controller.scale_events(), events_at_max);
}

// --- StreamForecastPolicy ------------------------------------------------

TEST(StreamForecastPolicyTest, RejectsEmptyHistoryAndIsIdempotent) {
  StreamForecastPolicy policy;
  EXPECT_FALSE(policy.Decide({}, 1).ok());

  std::vector<double> history = {10.0, 12.0, 14.0, 16.0};
  Result<ScalingDecision> first = policy.Decide(history, 1);
  ASSERT_TRUE(first.ok());
  // Same history again: the incremental absorber has nothing new to eat
  // and must return the identical capacity (no double counting).
  Result<ScalingDecision> second = policy.Decide(history, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->capacity, second->capacity);
}

TEST(StreamForecastPolicyTest, CapacityNeverDropsBelowHeadroomTimesLatest) {
  StreamForecastPolicy::Options popts;
  popts.headroom = 1.5;
  StreamForecastPolicy policy(popts);
  // Falling demand: the trend points down, but the latest-observation
  // floor keeps the fleet provisioned for what is actually arriving.
  std::vector<double> history;
  for (double v : {100.0, 80.0, 60.0, 40.0, 30.0}) {
    history.push_back(v);
    Result<ScalingDecision> d = policy.Decide(history, 1);
    ASSERT_TRUE(d.ok());
    EXPECT_GE(d->capacity, 1.5 * history.back() - 1e-9);
  }
}

TEST(StreamForecastPolicyTest, SurvivesTruncatedHistory) {
  StreamForecastPolicy policy;
  std::vector<double> history = {5.0, 10.0, 15.0, 20.0, 25.0};
  ASSERT_TRUE(policy.Decide(history, 1).ok());
  // A shrunk history (the controller's max_history eviction) must not trip
  // the incremental-absorption bookkeeping.
  history.assign({30.0, 35.0});
  Result<ScalingDecision> d = policy.Decide(history, 1);
  ASSERT_TRUE(d.ok());
  EXPECT_GE(d->capacity, history.back());
}

TEST(AutoscaleControllerTest, ForecastPolicyLeadsAReactiveOneOnARamp) {
  // The pre-scaling claim in miniature: on a steady linear ramp, the Holt
  // trend projects next interval's demand, so the forecast controller
  // requests capacity above the reactive controller's recent-peak view.
  ThreadPool reactive_pool(1);
  ThreadPool forecast_pool(1);
  AutoscaleController::Options opts;
  opts.min_workers = 1;
  opts.max_workers = 16;
  opts.per_worker_capacity = 10.0;
  AutoscaleController reactive(&reactive_pool, nullptr, opts);
  AutoscaleController forecast(
      &forecast_pool, std::make_unique<StreamForecastPolicy>(), opts);

  for (int i = 1; i <= 20; ++i) {
    const double demand = 10.0 * i;  // +10 per interval, forever upward
    reactive.OnInterval(demand);
    forecast.OnInterval(demand);
  }
  // Both saw the same history; the trend-follower provisions further ahead
  // of the latest observation than the peak-chaser on the rising edge.
  EXPECT_GT(forecast.last_capacity(), 200.0);  // above the latest demand
  EXPECT_GE(forecast_pool.NumThreads(), reactive_pool.NumThreads());
}

}  // namespace
}  // namespace tsdm
