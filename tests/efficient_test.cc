#include <cmath>

#include <gtest/gtest.h>

#include "src/analytics/classify/classifier.h"
#include "src/analytics/efficient/condense.h"
#include "src/analytics/efficient/quantize.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

TEST(QuantizeTest, RoundTripErrorBoundedByStepSize) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(rng.Normal(0.0, 3.0));
  for (int bits : {4, 8, 12}) {
    Result<QuantizedVector> q = QuantizeVector(v, bits);
    ASSERT_TRUE(q.ok());
    std::vector<double> back = DequantizeVector(*q);
    double max_err = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      max_err = std::max(max_err, std::fabs(v[i] - back[i]));
    }
    EXPECT_LE(max_err, q->scale * 0.5 + 1e-12) << "bits=" << bits;
  }
}

TEST(QuantizeTest, MoreBitsLessError) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Uniform(-1, 1));
  double prev_err = 1e300;
  for (int bits : {2, 4, 8}) {
    auto q = QuantizeVector(v, bits);
    ASSERT_TRUE(q.ok());
    auto back = DequantizeVector(*q);
    double err = 0.0;
    for (size_t i = 0; i < v.size(); ++i) err += std::fabs(v[i] - back[i]);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(QuantizeTest, Validation) {
  EXPECT_FALSE(QuantizeVector({}, 8).ok());
  EXPECT_FALSE(QuantizeVector({1.0}, 0).ok());
  EXPECT_FALSE(QuantizeVector({1.0}, 17).ok());
  // Constant vector is fine.
  Result<QuantizedVector> q = QuantizeVector({5.0, 5.0}, 8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(DequantizeVector(*q)[0], 5.0);
}

std::vector<LabeledSeries> TwoClassData(int per_class, int seed,
                                        double level_shift = 0.0) {
  Rng rng(seed);
  std::vector<LabeledSeries> out;
  for (int i = 0; i < per_class; ++i) {
    SeriesSpec a;
    a.level = 2.0 + level_shift;
    a.noise_stddev = 0.8;
    out.push_back({GenerateSeries(a, 48, &rng), 0});
    SeriesSpec b;
    b.level = 8.0 + level_shift;
    b.seasonal = {{8, 3.0, 0.0}};
    b.noise_stddev = 0.8;
    out.push_back({GenerateSeries(b, 48, &rng), 1});
  }
  return out;
}

TEST(QuantizedModelTest, MatchesDenseModelAt8Bits) {
  auto train = TwoClassData(30, 3);
  auto test = TwoClassData(15, 4);
  LogisticClassifier dense;
  ASSERT_TRUE(dense.Fit(train).ok());
  Result<QuantizedLogisticClassifier> quant =
      QuantizedLogisticClassifier::FromDense(dense, 8);
  ASSERT_TRUE(quant.ok());
  EXPECT_NEAR(Accuracy(*quant, test), Accuracy(dense, test), 0.08);
  EXPECT_GT(quant->SizeBits(), 0u);
  EXPECT_LT(quant->SizeBits(), dense.NumParameters() * 64);
}

TEST(QuantizedModelTest, FitIsUnimplemented) {
  QuantizedLogisticClassifier model;
  auto train = TwoClassData(2, 5);
  EXPECT_EQ(model.Fit(train).code(), StatusCode::kUnimplemented);
}

TEST(QCoreTest, CalibrationRecoversAccuracyUnderShift) {
  auto train = TwoClassData(40, 6);
  // Deployment distribution drifts: all levels shift up by 6.
  auto shifted_test = TwoClassData(25, 7, /*level_shift=*/6.0);
  LogisticClassifier dense;
  ASSERT_TRUE(dense.Fit(train).ok());
  auto quant_static = QuantizedLogisticClassifier::FromDense(dense, 8);
  auto quant_calibrated = QuantizedLogisticClassifier::FromDense(dense, 8);
  ASSERT_TRUE(quant_static.ok());
  ASSERT_TRUE(quant_calibrated.ok());
  // Calibrate on unlabeled shifted data.
  std::vector<std::vector<double>> recent;
  for (const auto& ex : shifted_test) recent.push_back(ex.values);
  quant_calibrated->Calibrate(recent, 1.0);
  double acc_static = Accuracy(*quant_static, shifted_test);
  double acc_calibrated = Accuracy(*quant_calibrated, shifted_test);
  EXPECT_GE(acc_calibrated, acc_static);
}

TEST(CondenseTest, SelectsRequestedCountWithoutDuplicates) {
  Rng rng(8);
  std::vector<std::vector<double>> feats;
  for (int i = 0; i < 60; ++i) {
    feats.push_back({rng.Normal(), rng.Normal(), rng.Normal()});
  }
  DatasetCondenser condenser;
  Result<std::vector<size_t>> sel = condenser.Select(feats, 12);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 12u);
  std::set<size_t> unique(sel->begin(), sel->end());
  EXPECT_EQ(unique.size(), 12u);
  EXPECT_FALSE(condenser.Select(feats, 0).ok());
  EXPECT_FALSE(condenser.Select(feats, 100).ok());
  EXPECT_FALSE(condenser.Select({}, 1).ok());
}

TEST(CondenseTest, PrototypesCoverTheDataBetterThanRandom) {
  // Facility location minimizes every point's distance to its nearest
  // prototype; random subsets leave larger coverage gaps.
  Rng rng(9);
  std::vector<std::vector<double>> feats;
  for (int i = 0; i < 200; ++i) {
    feats.push_back({rng.Normal(5.0, 2.0), rng.Gamma(2.0, 1.0)});
  }
  auto coverage = [&](const std::vector<size_t>& selected) {
    double total = 0.0;
    for (const auto& p : feats) {
      double best = 1e300;
      for (size_t s : selected) {
        double dx = p[0] - feats[s][0];
        double dy = p[1] - feats[s][1];
        best = std::min(best, dx * dx + dy * dy);
      }
      total += std::sqrt(best);
    }
    return total / feats.size();
  };
  DatasetCondenser condenser;
  auto sel = condenser.Select(feats, 20);
  ASSERT_TRUE(sel.ok());
  double condensed_coverage = coverage(*sel);
  double random_coverage = 0.0;
  const int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    random_coverage += coverage(RandomSubset(feats.size(), 20, &rng));
  }
  random_coverage /= kTrials;
  EXPECT_LT(condensed_coverage, random_coverage);
}

TEST(CondenseTest, ClassBalancedCoversAllClasses) {
  Rng rng(10);
  std::vector<std::vector<double>> feats;
  std::vector<int> labels;
  for (int i = 0; i < 90; ++i) {
    int cls = i % 3;
    feats.push_back({rng.Normal(cls * 5.0, 1.0)});
    labels.push_back(cls);
  }
  DatasetCondenser condenser;
  Result<std::vector<size_t>> sel = condenser.Select(feats, 9, &labels);
  ASSERT_TRUE(sel.ok());
  std::set<int> covered;
  for (size_t i : *sel) covered.insert(labels[i]);
  EXPECT_EQ(covered.size(), 3u);
}

TEST(CondenseTest, CondensedTrainingRetainsAccuracy) {
  auto full_train = TwoClassData(50, 11);
  auto test = TwoClassData(20, 12);
  // Features for condensation.
  std::vector<std::vector<double>> feats;
  std::vector<int> labels;
  for (const auto& ex : full_train) {
    feats.push_back(ExtractStatFeatures(ex.values));
    labels.push_back(ex.label);
  }
  DatasetCondenser condenser;
  size_t target = full_train.size() / 5;  // 20% condensation
  Result<std::vector<size_t>> sel = condenser.Select(feats, target, &labels);
  ASSERT_TRUE(sel.ok());
  std::vector<LabeledSeries> condensed;
  for (size_t i : *sel) condensed.push_back(full_train[i]);

  LogisticClassifier on_full, on_condensed;
  ASSERT_TRUE(on_full.Fit(full_train).ok());
  ASSERT_TRUE(on_condensed.Fit(condensed).ok());
  EXPECT_GE(Accuracy(on_condensed, test), Accuracy(on_full, test) - 0.12);
}

}  // namespace
}  // namespace tsdm
