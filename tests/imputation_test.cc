#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/analytics/forecast/metrics.h"
#include "src/governance/imputation/graph_completion.h"
#include "src/governance/imputation/imputer.h"
#include "src/governance/imputation/st_imputer.h"
#include "src/sim/inject.h"
#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

/// Ground-truth series with smooth structure, plus a corrupted copy.
struct ImputationFixture {
  TimeSeries truth;
  TimeSeries corrupted;
};

ImputationFixture MakeFixture(double missing_rate, int seed,
                              bool blocks = false) {
  Rng rng(seed);
  SeriesSpec spec = TrafficLikeSpec(24);
  ImputationFixture fx;
  fx.truth = TimeSeries::Regular(0, 300, 400, 3);
  for (size_t c = 0; c < 3; ++c) {
    fx.truth.SetChannel(c, GenerateSeries(spec, 400, &rng));
  }
  fx.corrupted = fx.truth;
  if (blocks) {
    InjectMissingBlocks(&fx.corrupted, missing_rate, 12, &rng);
  } else {
    InjectMissingMcar(&fx.corrupted, missing_rate, &rng);
  }
  return fx;
}

double ImputationError(const TimeSeries& truth, const TimeSeries& original,
                       const TimeSeries& imputed) {
  std::vector<double> t, p;
  for (size_t i = 0; i < truth.NumSteps(); ++i) {
    for (size_t c = 0; c < truth.NumChannels(); ++c) {
      if (original.IsMissing(i, c) && !imputed.IsMissing(i, c)) {
        t.push_back(truth.At(i, c));
        p.push_back(imputed.At(i, c));
      }
    }
  }
  return MeanAbsoluteError(t, p);
}

// Parameterized over all temporal imputers: fills everything, never
// touches observed entries, beats doing nothing.
class ImputerContractTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Imputer> Make() const {
    std::string name = GetParam();
    if (name == "mean") return std::make_unique<MeanImputer>();
    if (name == "locf") return std::make_unique<LocfImputer>();
    if (name == "linear") {
      return std::make_unique<LinearInterpolationImputer>();
    }
    if (name == "knn") return std::make_unique<KnnChannelImputer>(2);
    return std::make_unique<ArBackcastImputer>(4);
  }
};

TEST_P(ImputerContractTest, FillsAllAndPreservesObserved) {
  ImputationFixture fx = MakeFixture(0.3, 42);
  TimeSeries imputed = fx.corrupted;
  ASSERT_TRUE(Make()->Impute(&imputed).ok());
  EXPECT_EQ(imputed.CountMissing(), 0u);
  for (size_t i = 0; i < fx.truth.NumSteps(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      if (!fx.corrupted.IsMissing(i, c)) {
        EXPECT_EQ(imputed.At(i, c), fx.corrupted.At(i, c));
      }
    }
  }
}

TEST_P(ImputerContractTest, ErrorGrowsWithMissingRate) {
  TimeSeries truth;
  double err_low, err_high;
  {
    ImputationFixture fx = MakeFixture(0.1, 7);
    TimeSeries imputed = fx.corrupted;
    ASSERT_TRUE(Make()->Impute(&imputed).ok());
    err_low = ImputationError(fx.truth, fx.corrupted, imputed);
  }
  {
    ImputationFixture fx = MakeFixture(0.7, 7);
    TimeSeries imputed = fx.corrupted;
    ASSERT_TRUE(Make()->Impute(&imputed).ok());
    err_high = ImputationError(fx.truth, fx.corrupted, imputed);
  }
  EXPECT_GT(err_high, err_low * 0.9);  // allow slack for the mean imputer
}

INSTANTIATE_TEST_SUITE_P(AllImputers, ImputerContractTest,
                         ::testing::Values("mean", "locf", "linear", "knn",
                                           "ar"));

TEST(ImputerAccuracyTest, LinearBeatsMeanOnSmoothData) {
  ImputationFixture fx = MakeFixture(0.3, 11);
  TimeSeries by_mean = fx.corrupted;
  TimeSeries by_linear = fx.corrupted;
  ASSERT_TRUE(MeanImputer().Impute(&by_mean).ok());
  ASSERT_TRUE(LinearInterpolationImputer().Impute(&by_linear).ok());
  EXPECT_LT(ImputationError(fx.truth, fx.corrupted, by_linear),
            ImputationError(fx.truth, fx.corrupted, by_mean));
}

TEST(ImputerAccuracyTest, ArBackcastHelpsOnBlockGaps) {
  ImputationFixture fx = MakeFixture(0.25, 13, /*blocks=*/true);
  TimeSeries by_locf = fx.corrupted;
  TimeSeries by_ar = fx.corrupted;
  ASSERT_TRUE(LocfImputer().Impute(&by_locf).ok());
  ASSERT_TRUE(ArBackcastImputer(6).Impute(&by_ar).ok());
  EXPECT_LT(ImputationError(fx.truth, fx.corrupted, by_ar),
            ImputationError(fx.truth, fx.corrupted, by_locf) * 1.05);
}

TEST(GraphCompletionTest, CompletesSnapshotFromNeighbors) {
  SensorGraph g;
  for (int i = 0; i < 4; ++i) g.AddSensor(i, 0);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(2, 3, 1.0);
  std::vector<double> values = {10.0, kMissingValue, kMissingValue, 40.0};
  GraphCompletion completion;
  ASSERT_TRUE(completion.CompleteSnapshot(g, &values).ok());
  EXPECT_TRUE(std::isfinite(values[1]));
  EXPECT_TRUE(std::isfinite(values[2]));
  // Harmonic interpolation on a path: evenly spaced.
  EXPECT_NEAR(values[1], 20.0, 0.5);
  EXPECT_NEAR(values[2], 30.0, 0.5);
}

TEST(GraphCompletionTest, ShapeMismatchFails) {
  SensorGraph g;
  g.AddSensor(0, 0);
  std::vector<double> values = {1.0, 2.0};
  EXPECT_FALSE(GraphCompletion().CompleteSnapshot(g, &values).ok());
}

TEST(GraphCompletionTest, FullyMissingSnapshotReported) {
  SensorGraph g;
  g.AddSensor(0, 0);
  g.AddSensor(1, 0);
  g.AddEdge(0, 1, 1.0);
  std::vector<double> values = {kMissingValue, kMissingValue};
  EXPECT_FALSE(GraphCompletion().CompleteSnapshot(g, &values).ok());
}

TEST(StImputerTest, CompletesCorrelatedField) {
  Rng rng(17);
  CorrelatedFieldSpec spec;
  spec.spatial_strength = 0.8;
  CorrelatedTimeSeries truth = GenerateCorrelatedField(spec, 250, &rng);
  CorrelatedTimeSeries corrupted = truth;
  InjectMissingMcar(&corrupted.series(), 0.4, &rng);
  ASSERT_GT(corrupted.series().CountMissing(), 0u);
  SpatioTemporalImputer imputer;
  ASSERT_TRUE(imputer.Impute(&corrupted).ok());
  EXPECT_EQ(corrupted.series().CountMissing(), 0u);
}

TEST(StImputerTest, BeatsPureTemporalWhenSpatialSignalIsStrong) {
  Rng rng(19);
  CorrelatedFieldSpec spec;
  spec.spatial_strength = 0.9;
  spec.grid_rows = 5;
  spec.grid_cols = 5;
  CorrelatedTimeSeries truth = GenerateCorrelatedField(spec, 300, &rng);
  CorrelatedTimeSeries corrupted = truth;
  InjectMissingBlocks(&corrupted.series(), 0.35, 20, &rng);

  CorrelatedTimeSeries st = corrupted;
  ASSERT_TRUE(SpatioTemporalImputer().Impute(&st).ok());
  TimeSeries temporal = corrupted.series();
  ASSERT_TRUE(LinearInterpolationImputer().Impute(&temporal).ok());

  double err_st = ImputationError(truth.series(), corrupted.series(),
                                  st.series());
  TimeSeries temporal_ts = temporal;
  double err_temporal = ImputationError(truth.series(), corrupted.series(),
                                        temporal_ts);
  EXPECT_LT(err_st, err_temporal);
}

}  // namespace
}  // namespace tsdm
