#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "src/core/executor.h"
#include "src/core/pipeline.h"

namespace tsdm {
namespace {

// Golden tests: reports are the observability surface of the system, so
// their rendered formats are pinned exactly. Reports are constructed by
// hand with fixed timings to keep the strings deterministic.

StageReport MakeStage(const std::string& name, size_t index, Status status,
                      double seconds, int attempts = 1) {
  StageReport sr;
  sr.name = name;
  sr.index = index;
  sr.status = std::move(status);
  sr.seconds = seconds;
  sr.attempts = attempts;
  return sr;
}

TEST(PipelineReportTest, GoldenOkReport) {
  PipelineReport report;
  report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.25));
  report.stages.push_back(
      MakeStage("analytics/forecast", 1, Status::OK(), 0.005));
  EXPECT_EQ(report.ToString(),
            "Pipeline run: OK\n"
            "  [ok] #0 governance/clean (0.250s)\n"
            "  [ok] #1 analytics/forecast (0.005s)\n");
}

TEST(PipelineReportTest, GoldenFailedReportWithRetries) {
  PipelineReport report;
  report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.25));
  report.stages.push_back(MakeStage(
      "governance/impute", 1, Status::Internal("disk on fire"), 0.101, 3));
  EXPECT_EQ(report.ToString(),
            "Pipeline run: FAILED\n"
            "  [ok] #0 governance/clean (0.250s)\n"
            "  [FAIL] #1 governance/impute (0.101s, 3 attempts)"
            " - Internal: disk on fire\n");
}

TEST(PipelineReportTest, OkIsRecomputedFromStageStatuses) {
  PipelineReport report;
  EXPECT_TRUE(report.ok());  // empty => trivially ok
  report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.1));
  EXPECT_TRUE(report.ok());
  report.stages.push_back(
      MakeStage("governance/impute", 1, Status::Internal("boom"), 0.1));
  // ok() follows the recorded statuses; there is no settable flag to
  // drift out of sync.
  EXPECT_FALSE(report.ok());
  report.stages.pop_back();
  EXPECT_TRUE(report.ok());
}

TEST(BatchReportTest, GoldenBatchReport) {
  BatchReport batch;
  batch.num_threads = 2;
  batch.wall_seconds = 0.5;
  batch.shards.resize(2);
  batch.shards[0].shard = 0;
  batch.shards[0].report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.002));
  batch.shards[1].shard = 1;
  batch.shards[1].report.stages.push_back(
      MakeStage("governance/clean", 0, Status::OK(), 0.002));
  batch.shards[1].report.stages.push_back(MakeStage(
      "governance/impute", 1, Status::Internal("disk on fire"), 0.004));

  StageMetrics& clean = batch.metrics.ForStage("governance/clean");
  clean.invocations = 2;
  clean.latency.Add(0.002);
  clean.latency.Add(0.002);
  StageMetrics& impute = batch.metrics.ForStage("governance/impute");
  impute.invocations = 1;
  impute.failures = 1;
  impute.latency.Add(0.004);

  EXPECT_EQ(batch.NumOk(), 1u);
  EXPECT_EQ(batch.NumQuarantined(), 1u);
  // Single-valued latency histograms clamp quantiles to the exact
  // observation, so the whole table is deterministic.
  EXPECT_EQ(
      batch.ToString(),
      "BatchExecutor: 1/2 shards OK, 1 quarantined (threads=2,"
      " wall=0.500s)\n"
      "  quarantined shard 1: stage #1 governance/impute"
      " - Internal: disk on fire\n"
      "Per-stage latency:\n"
      "stage                          count  fail  retry    mean_ms"
      "     p50_ms     p95_ms     max_ms\n"
      "governance/clean                   2     0      0      2.000"
      "      2.000      2.000      2.000\n"
      "governance/impute                  1     1      0      4.000"
      "      4.000      4.000      4.000\n");
}

/// Fails after a measurable delay, to pin the elapsed-time recording.
class SlowFailingStage : public PipelineStage {
 public:
  std::string Name() const override { return "test/slow-failing"; }
  Status Run(PipelineContext*) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return Status::Internal("slow death");
  }
};

TEST(PipelineReportTest, FailingStageRecordsElapsedTimeAndIndex) {
  Pipeline pipeline;
  pipeline.Emplace<SlowFailingStage>();
  PipelineContext ctx;
  PipelineReport report = pipeline.Run(&ctx);
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_FALSE(report.stages[0].status.ok());
  EXPECT_EQ(report.stages[0].index, 0u);
  // The failing stage's true elapsed time is preserved, not left at 0.
  EXPECT_GE(report.stages[0].seconds, 0.015);
}

}  // namespace
}  // namespace tsdm
