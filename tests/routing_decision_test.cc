#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/decision/imitation/route_imitation.h"
#include "src/decision/multiobj/pareto.h"
#include "src/decision/personal/context_preference.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"
#include "src/sim/traj_sim.h"

namespace tsdm {
namespace {

class RoutingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(21);
    GridNetworkSpec spec;
    spec.rows = 6;
    spec.cols = 6;
    spec.diagonal_probability = 0.25;
    net_ = GenerateGridNetwork(spec, rng_.get());
    sim_ = std::make_unique<TrafficSimulator>(&net_, TrafficSpec{});
    model_ = std::make_unique<EdgeCentricModel>(
        static_cast<int>(net_.NumEdges()), 24);
    for (int i = 0; i < 600; ++i) {
      std::vector<int> p = RandomPath(net_, 3, 20, rng_.get());
      if (p.empty()) continue;
      TripObservation trip;
      trip.edge_path = p;
      trip.depart_seconds = 8.0 * 3600;
      trip.edge_times =
          sim_->SamplePathEdgeTimes(p, trip.depart_seconds, rng_.get());
      model_->AddTrip(trip);
    }
    ASSERT_TRUE(model_->Build(32).ok());
  }

  PathCostModel CostModel() {
    return [this](const std::vector<int>& edges, double depart) {
      return model_->PathCostDistribution(edges, depart);
    };
  }

  std::unique_ptr<Rng> rng_;
  RoadNetwork net_;
  std::unique_ptr<TrafficSimulator> sim_;
  std::unique_ptr<EdgeCentricModel> model_;
};

TEST_F(RoutingFixture, CandidatesHaveDistributions) {
  StochasticRouter router(&net_, CostModel());
  Result<std::vector<RouteCandidate>> candidates =
      router.Candidates(0, 35, 5, 8.0 * 3600);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GE(candidates->size(), 2u);
  for (const auto& c : *candidates) {
    EXPECT_FALSE(c.path.edges.empty());
    EXPECT_GT(c.cost.Mean(), 0.0);
  }
}

TEST_F(RoutingFixture, TightDeadlineCanChangeTheChoice) {
  StochasticRouter router(&net_, CostModel());
  Result<std::vector<RouteCandidate>> candidates =
      router.Candidates(0, 35, 6, 8.0 * 3600);
  ASSERT_TRUE(candidates.ok());
  // With an extremely generous deadline every route is on time; with the
  // minimal mean the fastest-expected route should win a neutral utility.
  int by_deadline = StochasticRouter::BestByOnTime(*candidates, 1e9);
  EXPECT_GE(by_deadline, 0);
  RiskNeutralUtility neutral;
  int by_utility = StochasticRouter::BestByUtility(*candidates, neutral);
  ASSERT_GE(by_utility, 0);
  double best_mean = (*candidates)[by_utility].cost.Mean();
  for (const auto& c : *candidates) {
    EXPECT_GE(c.cost.Mean(), best_mean - 1e-6);
  }
}

TEST_F(RoutingFixture, SkylineContainsScalarizedOptimum) {
  std::vector<EdgeCostFn> criteria = {FreeFlowTimeCost(net_),
                                      LengthCost(net_)};
  Result<std::vector<SkylinePath>> skyline =
      SkylineRoutes(net_, 0, 35, criteria, 24);
  ASSERT_TRUE(skyline.ok());
  ASSERT_GE(skyline->size(), 1u);
  // Every returned path's costs must be mutually non-dominated.
  for (size_t i = 0; i < skyline->size(); ++i) {
    for (size_t j = 0; j < skyline->size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates((*skyline)[i].costs, (*skyline)[j].costs));
    }
  }
  // Scalarized best among skyline equals scalarized best among K-shortest
  // candidates for time-heavy weights.
  std::vector<std::vector<double>> costs;
  for (const auto& sp : *skyline) costs.push_back(sp.costs);
  int best = ScalarizedBest(costs, {1.0, 0.001});
  ASSERT_GE(best, 0);
  Result<Path> sp_time = ShortestPath(net_, 0, 35, FreeFlowTimeCost(net_));
  ASSERT_TRUE(sp_time.ok());
  EXPECT_NEAR(costs[best][0], sp_time->cost, 1e-6);
}

TEST_F(RoutingFixture, SkylineValidatesInput) {
  EXPECT_FALSE(SkylineRoutes(net_, 0, 35, {}).ok());
  EXPECT_FALSE(
      SkylineRoutes(net_, -1, 35, {FreeFlowTimeCost(net_)}).ok());
}

TEST_F(RoutingFixture, ImitatorReproducesExpertDetours) {
  // Experts prefer a longer route along "green" edges; encode this by
  // generating expert paths under a cost that discounts arterials.
  auto expert_cost = [this](int eid) {
    const auto& e = net_.edge(eid);
    double t = net_.FreeFlowTime(eid);
    // Experts love high-speed edges even more than time-optimal.
    return e.free_flow_speed > 12.0 ? 0.5 * t : 1.5 * t;
  };
  RouteImitator imitator(&net_);
  std::vector<std::pair<int, int>> test_pairs;
  for (int i = 0; i < 80; ++i) {
    int s = rng_->Index(static_cast<int>(net_.NumNodes()));
    int t = rng_->Index(static_cast<int>(net_.NumNodes()));
    if (s == t) continue;
    Result<Path> p = ShortestPath(net_, s, t, expert_cost);
    if (!p.ok() || p->edges.size() < 3) continue;
    if (test_pairs.size() < 10) {
      test_pairs.push_back({s, t});
    }
    imitator.AddExpertPath(p->edges);
  }
  ASSERT_TRUE(imitator.Train().ok());

  double learned_overlap = 0.0, baseline_overlap = 0.0;
  int scored = 0;
  for (auto [s, t] : test_pairs) {
    Result<Path> expert = ShortestPath(net_, s, t, expert_cost);
    Result<Path> learned = imitator.Route(s, t);
    Result<Path> baseline =
        ShortestPath(net_, s, t, FreeFlowTimeCost(net_));
    if (!expert.ok() || !learned.ok() || !baseline.ok()) continue;
    learned_overlap +=
        RouteImitator::PathJaccard(learned->edges, expert->edges);
    baseline_overlap +=
        RouteImitator::PathJaccard(baseline->edges, expert->edges);
    ++scored;
  }
  ASSERT_GT(scored, 3);
  EXPECT_GE(learned_overlap, baseline_overlap);
}

TEST(ImitatorTest, TrainWithoutDataFails) {
  RoadNetwork net;
  net.AddNode(0, 0);
  net.AddNode(1, 1);
  net.AddEdge(0, 1, 10.0);
  RouteImitator imitator(&net);
  EXPECT_FALSE(imitator.Train().ok());
  EXPECT_FALSE(imitator.Route(0, 1).ok());
}

TEST(ImitatorTest, JaccardEdgeCases) {
  EXPECT_DOUBLE_EQ(RouteImitator::PathJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(RouteImitator::PathJaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(RouteImitator::PathJaccard({1}, {2}), 0.0);
}

TEST(PreferenceTest, ContextModelRecoversContextDependentWeights) {
  // Synthetic decision maker: weekday mornings minimize time (criterion 0),
  // weekends minimize scenic distance (criterion 1).
  Rng rng(31);
  ContextualPreferenceModel::Options copts;
  copts.num_criteria = 2;
  ContextualPreferenceModel contextual(copts);
  ContextualPreferenceModel::Options gopts;
  gopts.num_criteria = 2;
  gopts.contextual = false;
  ContextualPreferenceModel global(gopts);

  std::vector<ChoiceObservation> observations;
  for (int i = 0; i < 300; ++i) {
    ChoiceObservation obs;
    bool weekend = rng.Bernoulli(0.5);
    obs.context = DecisionContext::FromTime(
        weekend ? 12 * 3600 : 8 * 3600, weekend);
    for (int c = 0; c < 4; ++c) {
      obs.candidate_costs.push_back(
          {rng.Uniform(10, 100), rng.Uniform(10, 100)});
    }
    // True preference: weekday -> 0.9/0.1, weekend -> 0.1/0.9.
    std::vector<double> w =
        weekend ? std::vector<double>{0.1, 0.9}
                : std::vector<double>{0.9, 0.1};
    double best = 1e300;
    for (size_t c = 0; c < obs.candidate_costs.size(); ++c) {
      double v = w[0] * obs.candidate_costs[c][0] +
                 w[1] * obs.candidate_costs[c][1];
      if (v < best) {
        best = v;
        obs.chosen = static_cast<int>(c);
      }
    }
    observations.push_back(obs);
  }
  for (const auto& obs : observations) {
    contextual.AddObservation(obs);
    global.AddObservation(obs);
  }
  ASSERT_TRUE(contextual.Train().ok());
  ASSERT_TRUE(global.Train().ok());
  EXPECT_GT(contextual.TrainingAgreement(), global.TrainingAgreement());
  EXPECT_GT(contextual.TrainingAgreement(), 0.85);
}

TEST(PreferenceTest, UntrainedModelFails) {
  ContextualPreferenceModel model;
  EXPECT_FALSE(model.Train().ok());
  EXPECT_EQ(model.Choose(DecisionContext{}, {{1.0, 2.0}}), -1);
}

TEST(ContextTest, BucketsAreStable) {
  DecisionContext morning = DecisionContext::FromTime(8 * 3600, false);
  DecisionContext evening = DecisionContext::FromTime(20 * 3600, false);
  EXPECT_NE(morning.Index(), evening.Index());
  EXPECT_LT(morning.Index(), DecisionContext::kNumContexts);
  DecisionContext weekend = DecisionContext::FromTime(8 * 3600, true);
  EXPECT_NE(morning.Index(), weekend.Index());
}

}  // namespace
}  // namespace tsdm
