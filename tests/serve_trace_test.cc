#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/obs/trace.h"
#include "src/serve/query_server.h"
#include "src/serve/request_queue.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

// End-to-end request tracing: every admitted query must yield a linked,
// well-formed span tree, and the per-request stage attribution must
// telescope exactly to the end-to-end latency — under real multi-producer
// concurrency (this test runs in the TSan gate).

class ServeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetCapacity(1 << 16);
    TraceRecorder::Global().Clear();
    TraceRecorder::Global().Enable();
  }
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

struct ServeTraceFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  ServeTraceFixture()
      : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(17);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 6; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 4;
    spec.cols = 4;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(5);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }
};

/// The spans of one request, grouped from a trace snapshot by the "req"
/// linkage (request_id = ServeRequest::id + 1).
struct RequestSpans {
  std::vector<TraceEvent> submit;
  std::vector<TraceEvent> queue_wait;
  std::vector<TraceEvent> batch_wait;
  std::vector<TraceEvent> exec;
  std::vector<TraceEvent> path_cost;
  std::vector<TraceEvent> shed;
  std::vector<TraceEvent> other;
};

std::map<uint64_t, RequestSpans> GroupByRequest(
    const std::vector<TraceEvent>& events) {
  std::map<uint64_t, RequestSpans> by_req;
  for (const TraceEvent& ev : events) {
    if (ev.request_id == 0) continue;
    RequestSpans& slot = by_req[ev.request_id];
    if (ev.name == "serve/submit") {
      slot.submit.push_back(ev);
    } else if (ev.name == "serve/queue_wait") {
      slot.queue_wait.push_back(ev);
    } else if (ev.name == "serve/batch_wait") {
      slot.batch_wait.push_back(ev);
    } else if (ev.name == "serve/exec") {
      slot.exec.push_back(ev);
    } else if (ev.name == "serve/path_cost") {
      slot.path_cost.push_back(ev);
    } else if (ev.name == "serve/shed") {
      slot.shed.push_back(ev);
    } else {
      slot.other.push_back(ev);
    }
  }
  return by_req;
}

TEST_F(ServeTraceTest, EveryServedRequestYieldsOneLinkedSpanTree) {
  ServeTraceFixture fx;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;

  std::mutex answers_mu;
  std::vector<RouteAnswer> answers;
  {
    QueryServer::Options opts;
    opts.initial_workers = 3;
    opts.autoscale_enabled = false;
    QueryServer server(&fx.net, fx.BaseModel(), opts);
    ASSERT_TRUE(server.Start().ok());

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          RouteQuery query;
          query.source = GridNodeId(fx.spec, 0, p % fx.spec.cols);
          query.target = GridNodeId(fx.spec, fx.spec.rows - 1,
                                    (p + i) % fx.spec.cols);
          query.k = 2;
          query.depart_seconds = 8 * 3600.0;
          QueryServer::SubmitOptions sopts;
          sopts.queue_budget_seconds = 30.0;
          Status s = server.Submit(
              query,
              [&](const RouteAnswer& answer) {
                std::unique_lock<std::mutex> lock(answers_mu);
                answers.push_back(answer);
              },
              sopts);
          ASSERT_TRUE(s.ok());
        }
      });
    }
    for (auto& t : producers) t.join();
    server.WaitIdle();
    server.Stop();
    // Server (and its worker threads, whose trace buffers flush on thread
    // exit) destructs here, before the snapshot.
  }

  constexpr uint64_t kTotal = kProducers * kPerProducer;
  ASSERT_EQ(answers.size(), kTotal);
  EXPECT_EQ(TraceRecorder::Global().dropped(), 0u);

  std::map<uint64_t, RequestSpans> by_req =
      GroupByRequest(TraceRecorder::Global().Snapshot());
  ASSERT_EQ(by_req.size(), kTotal);

  for (const auto& [req_id, spans] : by_req) {
    SCOPED_TRACE("request " + std::to_string(req_id));
    // Exactly one span of each lifecycle stage, no terminal shed.
    ASSERT_EQ(spans.submit.size(), 1u);
    ASSERT_EQ(spans.queue_wait.size(), 1u);
    ASSERT_EQ(spans.batch_wait.size(), 1u);
    ASSERT_EQ(spans.exec.size(), 1u);
    EXPECT_GE(spans.path_cost.size(), 1u);
    EXPECT_TRUE(spans.shed.empty());

    // Linkage: submit is the root; the lifecycle spans attach under it;
    // path-cost spans attach under exec.
    const TraceEvent& submit = spans.submit[0];
    EXPECT_EQ(submit.parent_span_id, 0u);
    ASSERT_NE(submit.span_id, 0u);
    for (const TraceEvent* ev :
         {&spans.queue_wait[0], &spans.batch_wait[0], &spans.exec[0]}) {
      EXPECT_EQ(ev->parent_span_id, submit.span_id);
      EXPECT_EQ(ev->request_id, req_id);
    }
    for (const TraceEvent& pc : spans.path_cost) {
      EXPECT_EQ(pc.parent_span_id, spans.exec[0].span_id);
    }
    for (const TraceEvent& ev : spans.other) {
      // Route enumeration, when present, hangs under exec too.
      EXPECT_EQ(ev.name, "serve/enumerate_routes");
      EXPECT_EQ(ev.parent_span_id, spans.exec[0].span_id);
    }

    // Well-nested timeline: the stages tile the lifecycle left to right.
    // queue_wait ends exactly where batch_wait begins (same clock sample);
    // exec starts at or after batch_wait ends; path-cost spans sit inside
    // exec.
    const TraceEvent& qw = spans.queue_wait[0];
    const TraceEvent& bw = spans.batch_wait[0];
    const TraceEvent& ex = spans.exec[0];
    EXPECT_EQ(qw.start_ns + qw.dur_ns, bw.start_ns);
    EXPECT_LE(bw.start_ns + bw.dur_ns, ex.start_ns);
    for (const TraceEvent& pc : spans.path_cost) {
      EXPECT_GE(pc.start_ns, ex.start_ns);
      EXPECT_LE(pc.start_ns + pc.dur_ns, ex.start_ns + ex.dur_ns);
    }
    // Both submit and queue_wait start at admission.
    EXPECT_EQ(qw.start_ns >= submit.start_ns, true);
  }

  // Span ids are process-unique across the whole trace.
  std::vector<TraceEvent> all = TraceRecorder::Global().Snapshot();
  std::map<uint64_t, int> id_uses;
  for (const TraceEvent& ev : all) {
    if (ev.span_id != 0) ++id_uses[ev.span_id];
  }
  for (const auto& [id, uses] : id_uses) {
    EXPECT_EQ(uses, 1) << "span id " << id << " reused";
  }

  // The Chrome export carries the request linkage.
  std::string json = TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"req\":"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
}

TEST_F(ServeTraceTest, StageAttributionTelescopesToEndToEndLatency) {
  ServeTraceFixture fx;
  std::mutex answers_mu;
  std::vector<RouteAnswer> answers;
  constexpr int kQueries = 80;
  QueryServer server(&fx.net, fx.BaseModel(), [] {
    QueryServer::Options opts;
    opts.initial_workers = 2;
    opts.autoscale_enabled = false;
    return opts;
  }());
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < kQueries; ++i) {
    RouteQuery query;
    query.source = GridNodeId(fx.spec, 0, 0);
    query.target = GridNodeId(fx.spec, fx.spec.rows - 1, i % fx.spec.cols);
    query.k = 2;
    query.depart_seconds = 8 * 3600.0;
    QueryServer::SubmitOptions sopts;
    sopts.queue_budget_seconds = 30.0;
    ASSERT_TRUE(server
                    .Submit(query,
                            [&](const RouteAnswer& answer) {
                              std::unique_lock<std::mutex> lock(answers_mu);
                              answers.push_back(answer);
                            },
                            sopts)
                    .ok());
  }
  server.WaitIdle();

  ASSERT_EQ(answers.size(), static_cast<size_t>(kQueries));
  for (const RouteAnswer& answer : answers) {
    ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
    const StageBreakdown& st = answer.stages;
    // The four components are computed from the same clock samples, so
    // their telescoping sum IS the end-to-end latency — the only slack is
    // the double rounding of the seconds fields (sub-nanosecond).
    EXPECT_GT(st.TotalNs(), 0u);
    EXPECT_NEAR(1e-9 * static_cast<double>(st.TotalNs()),
                answer.queue_seconds + answer.service_seconds, 1e-9);
    EXPECT_EQ(st.TotalNs(),
              st.queue_ns + st.batch_ns + st.cache_ns + st.exec_ns);
  }

  // The per-stage histograms aggregate the same attribution: one sample
  // per answered request, and total stage time equals total e2e time.
  ServeStatsSnapshot stats = server.Stats();
  const uint64_t answered = stats.completed + stats.failed;
  EXPECT_EQ(stats.stage_queue.count(), answered);
  EXPECT_EQ(stats.stage_batch.count(), answered);
  EXPECT_EQ(stats.stage_cache.count(), answered);
  EXPECT_EQ(stats.stage_exec.count(), answered);
  const double stage_total =
      stats.stage_queue.total_seconds() + stats.stage_batch.total_seconds() +
      stats.stage_cache.total_seconds() + stats.stage_exec.total_seconds();
  EXPECT_NEAR(stage_total, stats.e2e_latency.total_seconds(),
              1e-6 * std::max(1.0, stats.e2e_latency.total_seconds()));
  EXPECT_NE(stats.SlowestStage(), std::string(""));
  server.Stop();
}

TEST_F(ServeTraceTest, ShedRequestsEmitTerminalShedSpanOnly) {
  ServeTraceFixture fx;
  std::atomic<int> shed_answers{0};
  std::vector<uint64_t> shed_queue_ns;
  std::mutex shed_mu;
  {
    QueryServer::Options opts;
    opts.initial_workers = 1;
    opts.autoscale_enabled = false;
    QueryServer server(&fx.net, fx.BaseModel(), opts);
    // Submit BEFORE Start with a microscopic queueing budget: by the time
    // the dispatcher first pops, every request has expired in queue and
    // must be shed with a terminal span, never executed.
    QueryServer::SubmitOptions tiny_budget;
    tiny_budget.queue_budget_seconds = 1e-6;
    for (int i = 0; i < 6; ++i) {
      RouteQuery query;
      query.source = GridNodeId(fx.spec, 0, 0);
      query.target = GridNodeId(fx.spec, fx.spec.rows - 1, 1);
      Status s = server.Submit(
          query,
          [&](const RouteAnswer& answer) {
            EXPECT_EQ(answer.status.code(), StatusCode::kResourceExhausted);
            // A shed request's whole life was queueing.
            EXPECT_EQ(answer.stages.batch_ns, 0u);
            EXPECT_EQ(answer.stages.cache_ns, 0u);
            EXPECT_EQ(answer.stages.exec_ns, 0u);
            std::unique_lock<std::mutex> lock(shed_mu);
            shed_queue_ns.push_back(answer.stages.queue_ns);
            shed_answers.fetch_add(1);
          },
          tiny_budget);
      ASSERT_TRUE(s.ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(server.Start().ok());
    server.WaitIdle();
    server.Stop();
  }

  EXPECT_EQ(shed_answers.load(), 6);
  for (uint64_t ns : shed_queue_ns) EXPECT_GT(ns, 0u);

  std::map<uint64_t, RequestSpans> by_req =
      GroupByRequest(TraceRecorder::Global().Snapshot());
  ASSERT_EQ(by_req.size(), 6u);
  for (const auto& [req_id, spans] : by_req) {
    SCOPED_TRACE("request " + std::to_string(req_id));
    // Root plus exactly one terminal shed span — and nothing downstream:
    // no queue_wait (the wait ended in a shed, not a dispatch), no batch,
    // no exec.
    ASSERT_EQ(spans.submit.size(), 1u);
    ASSERT_EQ(spans.shed.size(), 1u);
    EXPECT_TRUE(spans.queue_wait.empty());
    EXPECT_TRUE(spans.batch_wait.empty());
    EXPECT_TRUE(spans.exec.empty());
    EXPECT_TRUE(spans.path_cost.empty());
    const TraceEvent& shed = spans.shed[0];
    EXPECT_EQ(shed.parent_span_id, spans.submit[0].span_id);
    EXPECT_EQ(shed.arg,
              static_cast<int64_t>(StatusCode::kResourceExhausted));
  }
}

TEST_F(ServeTraceTest, CloseDrainedRequestsGetFailedPreconditionShedSpan) {
  RequestQueue queue;
  std::atomic<int> drained{0};
  for (uint64_t i = 0; i < 3; ++i) {
    ServeRequest req;
    req.id = i;
    req.enqueue_ns = TraceRecorder::NowNs();
    req.trace = TraceContext{i + 1, 0};
    req.on_done = [&drained](const RouteAnswer&) { drained.fetch_add(1); };
    ASSERT_TRUE(queue.Push(std::move(req)).ok());
  }
  queue.Close();
  EXPECT_EQ(drained.load(), 3);

  std::map<uint64_t, RequestSpans> by_req =
      GroupByRequest(TraceRecorder::Global().Snapshot());
  ASSERT_EQ(by_req.size(), 3u);
  for (const auto& [req_id, spans] : by_req) {
    ASSERT_EQ(spans.shed.size(), 1u);
    EXPECT_EQ(spans.shed[0].arg,
              static_cast<int64_t>(StatusCode::kFailedPrecondition));
  }
}

TEST_F(ServeTraceTest, DisabledTracingStillFillsAttribution) {
  TraceRecorder::Global().Disable();
  ServeTraceFixture fx;
  std::mutex answers_mu;
  std::vector<RouteAnswer> answers;
  QueryServer::Options opts;
  opts.initial_workers = 1;
  opts.autoscale_enabled = false;
  QueryServer server(&fx.net, fx.BaseModel(), opts);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 10; ++i) {
    RouteQuery query;
    query.source = GridNodeId(fx.spec, 0, 0);
    query.target = GridNodeId(fx.spec, fx.spec.rows - 1, 1);
    ASSERT_TRUE(server
                    .Submit(query,
                            [&](const RouteAnswer& answer) {
                              std::unique_lock<std::mutex> lock(answers_mu);
                              answers.push_back(answer);
                            })
                    .ok());
  }
  server.WaitIdle();
  server.Stop();

  // No spans recorded, but the breakdown (driven by its own clock samples,
  // not the trace ring) still telescopes.
  EXPECT_TRUE(TraceRecorder::Global().Snapshot().empty());
  ASSERT_EQ(answers.size(), 10u);
  for (const RouteAnswer& answer : answers) {
    EXPECT_GT(answer.stages.TotalNs(), 0u);
    EXPECT_NEAR(1e-9 * static_cast<double>(answer.stages.TotalNs()),
                answer.queue_seconds + answer.service_seconds, 1e-9);
  }
}

}  // namespace
}  // namespace tsdm
