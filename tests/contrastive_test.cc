#include "src/analytics/represent/contrastive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/sim/ts_gen.h"

namespace tsdm {
namespace {

/// Unlabeled corpus mixing two latent classes (flat-noisy vs seasonal).
std::vector<std::vector<double>> Corpus(int per_class, int seed,
                                        std::vector<int>* labels = nullptr) {
  Rng rng(seed);
  std::vector<std::vector<double>> out;
  for (int i = 0; i < per_class; ++i) {
    SeriesSpec flat;
    flat.level = 0.0;
    flat.noise_stddev = 1.0;
    out.push_back(GenerateSeries(flat, 64, &rng));
    if (labels) labels->push_back(0);
    SeriesSpec seasonal;
    seasonal.level = 0.0;
    seasonal.seasonal = {{8, 2.5, 0.0}};
    seasonal.noise_stddev = 0.5;
    out.push_back(GenerateSeries(seasonal, 64, &rng));
    if (labels) labels->push_back(1);
  }
  return out;
}

TEST(ContrastiveTest, Validation) {
  ContrastiveEncoder enc;
  EXPECT_FALSE(enc.Fit({{1.0, 2.0}}).ok());
  EXPECT_FALSE(enc.Encode({1.0, 2.0}).ok());  // unfitted
}

TEST(ContrastiveTest, EncodesToRequestedDimension) {
  ContrastiveEncoder::Options opts;
  opts.embedding_dim = 8;
  opts.epochs = 10;
  ContrastiveEncoder enc(opts);
  ASSERT_TRUE(enc.Fit(Corpus(10, 1)).ok());
  Result<std::vector<double>> e = enc.Encode(Corpus(1, 2)[0]);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), 8u);
  for (double v : *e) EXPECT_TRUE(std::isfinite(v));
  EXPECT_FALSE(enc.Encode({}).ok());
}

TEST(ContrastiveTest, ViewsOfSameSeriesEmbedCloserThanOthers) {
  ContrastiveEncoder enc;
  std::vector<std::vector<double>> corpus = Corpus(15, 3);
  ASSERT_TRUE(enc.Fit(corpus).ok());
  // For a sample of series: distance(anchor, itself jittered) should be
  // smaller than distance(anchor, a random other series) most of the time.
  Rng rng(4);
  int closer = 0, trials = 0;
  for (int t = 0; t < 30; ++t) {
    int a = rng.Index(static_cast<int>(corpus.size()));
    int b = rng.Index(static_cast<int>(corpus.size()));
    if (a == b) continue;
    std::vector<double> jittered = corpus[a];
    for (double& v : jittered) v += rng.Normal(0.0, 0.05);
    auto za = enc.Encode(corpus[a]);
    auto zj = enc.Encode(jittered);
    auto zb = enc.Encode(corpus[b]);
    ASSERT_TRUE(za.ok());
    ASSERT_TRUE(zj.ok());
    ASSERT_TRUE(zb.ok());
    double d_self = ContrastiveEncoder::EmbeddingDistance(*za, *zj);
    double d_other = ContrastiveEncoder::EmbeddingDistance(*za, *zb);
    if (d_self < d_other) ++closer;
    ++trials;
  }
  ASSERT_GT(trials, 10);
  EXPECT_GT(static_cast<double>(closer) / trials, 0.75);
}

TEST(ContrastiveTest, EmbeddingSeparatesLatentClasses) {
  // Train unsupervised; verify 1-NN in embedding space recovers the hidden
  // class labels far above chance — the downstream-transfer story.
  std::vector<int> labels;
  std::vector<std::vector<double>> corpus = Corpus(20, 5, &labels);
  ContrastiveEncoder enc;
  ASSERT_TRUE(enc.Fit(corpus).ok());
  std::vector<std::vector<double>> embeddings;
  for (const auto& s : corpus) {
    auto e = enc.Encode(s);
    ASSERT_TRUE(e.ok());
    embeddings.push_back(*e);
  }
  int hits = 0;
  for (size_t i = 0; i < embeddings.size(); ++i) {
    double best = 1e300;
    size_t nn = i;
    for (size_t j = 0; j < embeddings.size(); ++j) {
      if (i == j) continue;
      double d = ContrastiveEncoder::EmbeddingDistance(embeddings[i],
                                                       embeddings[j]);
      if (d < best) {
        best = d;
        nn = j;
      }
    }
    if (labels[nn] == labels[i]) ++hits;
  }
  double accuracy = static_cast<double>(hits) / embeddings.size();
  EXPECT_GT(accuracy, 0.8);
}

}  // namespace
}  // namespace tsdm
