// Loopback end-to-end tests for the network front door: binary protocol
// correctness (pipelining, request-id echo), HTTP endpoints (/metrics
// equivalence with the in-process export, /health, POST /query and its
// error statuses), typed socket-layer sheds that happen before payload
// deserialization, hostile-byte resynchronization on a live connection,
// trace-span linkage across net and serve, and concurrent clients (the
// TSan target).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/governance/uncertainty/travel_cost_models.h"
#include "src/net/net_client.h"
#include "src/net/socket_server.h"
#include "src/obs/metrics_export.h"
#include "src/obs/trace.h"
#include "src/serve/query_server.h"
#include "src/sim/road_gen.h"
#include "src/sim/traffic_sim.h"

namespace tsdm {
namespace {

constexpr char kLoopback[] = "127.0.0.1";

/// Same trained-grid fixture as serve_test.cc: a 5x5 grid with an
/// edge-centric cost model trained on every edge, so any route query
/// between grid nodes has coverage.
struct NetFixture {
  GridNetworkSpec spec;
  RoadNetwork net;
  EdgeCentricModel model;

  NetFixture() : spec(MakeSpec()), net(MakeNet(spec)), model(0) {
    model = EdgeCentricModel(static_cast<int>(net.NumEdges()));
    TrafficSimulator sim(&net, TrafficSpec{});
    Rng rng(11);
    for (int e = 0; e < static_cast<int>(net.NumEdges()); ++e) {
      for (int rep = 0; rep < 8; ++rep) {
        TripObservation trip;
        trip.edge_path = {e};
        trip.depart_seconds = 8 * 3600.0;
        trip.edge_times = {sim.SampleEdgeTime(e, trip.depart_seconds, &rng)};
        model.AddTrip(trip);
      }
    }
    Status built = model.Build();
    EXPECT_TRUE(built.ok()) << built.ToString();
  }

  static GridNetworkSpec MakeSpec() {
    GridNetworkSpec spec;
    spec.rows = 5;
    spec.cols = 5;
    return spec;
  }
  static RoadNetwork MakeNet(const GridNetworkSpec& spec) {
    Rng rng(3);
    return GenerateGridNetwork(spec, &rng);
  }

  PathCostModel BaseModel() const {
    const EdgeCentricModel* m = &model;
    return [m](const std::vector<int>& edges, double depart) {
      return m->PathCostDistribution(edges, depart, 32);
    };
  }

  RouteQuery Query(int i = 0) const {
    RouteQuery q;
    q.source = GridNodeId(spec, 0, 0);
    q.target = GridNodeId(spec, 4, (i % 2) ? 4 : 3);
    q.k = 3;
    q.depart_seconds = 8 * 3600.0;
    q.arrival_deadline_seconds = q.depart_seconds + 1200.0;
    return q;
  }
};

TEST(SocketServerTest, BinaryLoopbackAnswersQueriesAndPings) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());

  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // double start rejected
  ASSERT_GT(server.port(), 0);

  NetClient client;
  ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());

  const int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    WireRouteAnswer answer;
    Status s = client.Query(fx.Query(i), &answer);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(answer.status_code, StatusCode::kOk);
    EXPECT_FALSE(answer.edges.empty());
    EXPECT_GT(answer.cost_mean_seconds, 0.0);
    EXPECT_GE(answer.on_time_probability, 0.0);
    EXPECT_LE(answer.on_time_probability, 1.0);
    EXPECT_GT(answer.num_candidates, 0);
  }

  // The wire answer must agree with the same query served in-process.
  WireRouteAnswer wire;
  ASSERT_TRUE(client.Query(fx.Query(0), &wire).ok());
  RouteAnswer local;
  std::atomic<bool> done{false};
  ASSERT_TRUE(serve
                  .Submit(fx.Query(0),
                          [&](const RouteAnswer& a) {
                            local = a;
                            done.store(true);
                          })
                  .ok());
  serve.WaitIdle();
  ASSERT_TRUE(done.load());
  ASSERT_TRUE(local.status.ok());
  EXPECT_EQ(wire.edges.size(), local.route.edges.size());
  for (size_t i = 0; i < wire.edges.size(); ++i) {
    EXPECT_EQ(static_cast<int>(wire.edges[i]), local.route.edges[i]);
  }
  EXPECT_DOUBLE_EQ(wire.cost_mean_seconds, local.cost_mean_seconds);

  NetStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.pings, 1u);
  EXPECT_EQ(stats.queries_answered, static_cast<uint64_t>(kQueries) + 1);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_EQ(stats.frames.frames_accepted, static_cast<uint64_t>(kQueries) + 2);
  EXPECT_EQ(stats.frames.RejectedTotal(), 0u);
  EXPECT_EQ(stats.ShedTotal(), 0u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_active, 1u);
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(stats.wire_latency.count(), static_cast<uint64_t>(kQueries) + 1);

  client.Close();
  server.Stop();
  server.Stop();  // idempotent
  serve.Stop();
  EXPECT_EQ(server.Stats().connections_active, 0u);
}

TEST(SocketServerTest, PipelinedQueriesMatchAnswersById) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());

  // Fire a burst without reading, then collect: every request id must be
  // answered exactly once (order on the wire may interleave with serve
  // completion order).
  const int kBurst = 16;
  std::vector<uint64_t> sent;
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(fx.Query(i), &id).ok());
    sent.push_back(id);
  }
  std::vector<uint64_t> got;
  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    WireRouteAnswer answer;
    ASSERT_TRUE(client.ReceiveAnswer(&id, &answer).ok());
    EXPECT_EQ(answer.status_code, StatusCode::kOk);
    got.push_back(id);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, sent);  // ids were issued in increasing order

  client.Close();
  server.Stop();
  serve.Stop();
}

TEST(SocketServerTest, HttpMetricsMatchesInProcessExport) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());

  // Drive some traffic so the exported counters are non-trivial.
  NetClient client;
  ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  for (int i = 0; i < 5; ++i) {
    WireRouteAnswer answer;
    ASSERT_TRUE(client.Query(fx.Query(i), &answer).ok());
  }
  serve.WaitIdle();

  NetClient::HttpResponse res;
  ASSERT_TRUE(
      NetClient::HttpGet(kLoopback, server.port(), "/metrics", &res).ok());
  EXPECT_EQ(res.status_code, 200);
  bool typed = false;
  for (const auto& h : res.headers) {
    if (h.first == "content-type") {
      EXPECT_EQ(h.second, "text/plain; version=0.0.4");
      typed = true;
    }
  }
  EXPECT_TRUE(typed);

  // The scraped document is the source-registry aggregate: both live
  // subsystems present, in registration order.
  const size_t net_at = res.body.find("# SOURCE net\n");
  const size_t serve_at = res.body.find("# SOURCE serve\n");
  const size_t trace_at = res.body.find("# SOURCE trace\n");
  const size_t flight_at = res.body.find("# SOURCE flight\n");
  ASSERT_NE(net_at, std::string::npos);
  ASSERT_NE(serve_at, std::string::npos);
  ASSERT_NE(trace_at, std::string::npos);
  ASSERT_NE(flight_at, std::string::npos);
  EXPECT_LT(net_at, serve_at);
  EXPECT_LT(serve_at, trace_at);
  EXPECT_LT(trace_at, flight_at);
  EXPECT_NE(res.body.find("tsdm_trace_dropped_total"), std::string::npos);
  EXPECT_NE(res.body.find("tsdm_flight_observed_total"), std::string::npos);

  // Serve counters are quiescent (WaitIdle; the scrape itself does not
  // touch them), so the serve section must be byte-identical to the
  // in-process per-subsystem export — the registry adds routing, never
  // reformatting.
  const size_t serve_body = serve_at + std::string("# SOURCE serve\n").size();
  const std::string serve_section =
      res.body.substr(serve_body, trace_at - serve_body);
  EXPECT_EQ(serve_section, MetricsExporter::ServeToPrometheus(serve.Stats()));

  // Net counters move with the scrape itself (its own connection, bytes),
  // but the query/ping counters were frozen before the scrape: the scraped
  // lines must carry the exact pre-scrape values.
  const std::string net_section = res.body.substr(net_at, serve_at - net_at);
  EXPECT_NE(
      net_section.find("tsdm_net_queries_total{outcome=\"answered\"} 5\n"),
      std::string::npos);
  EXPECT_NE(net_section.find("tsdm_net_pings_total 1\n"), std::string::npos);
  EXPECT_NE(net_section.find("tsdm_net_sheds_total{reason=\"queue_full\"} 0\n"),
            std::string::npos);

  // The JSON aggregate carries the same sources.
  const std::string json = MetricsExporter::ExportJson();
  EXPECT_NE(json.find("\"sources\":{"), std::string::npos);
  EXPECT_NE(json.find("\"net\":{"), std::string::npos);
  EXPECT_NE(json.find("\"serve\":{"), std::string::npos);

  client.Close();
  server.Stop();
  serve.Stop();

  // Stop unregisters both sources: the aggregate no longer mentions them.
  const std::string after = MetricsExporter::ExportPrometheus();
  EXPECT_EQ(after.find("# SOURCE net\n"), std::string::npos);
  EXPECT_EQ(after.find("# SOURCE serve\n"), std::string::npos);
  EXPECT_EQ(after.find("# SOURCE trace\n"), std::string::npos);
  EXPECT_EQ(after.find("# SOURCE flight\n"), std::string::npos);
}

TEST(SocketServerTest, HttpHealthQueryAndErrorStatuses) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());

  SocketServer::Options nopts;
  nopts.health_source = [] {
    HealthSnapshot snap;
    snap.state = HealthState::kDegraded;
    snap.samples = 7;
    return snap;
  };
  SocketServer server(&serve, nopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  NetClient::HttpResponse res;
  ASSERT_TRUE(NetClient::HttpGet(kLoopback, port, "/health", &res).ok());
  EXPECT_EQ(res.status_code, 200);
  EXPECT_NE(res.body.find("\"state\":\"degraded\""), std::string::npos)
      << res.body;
  EXPECT_NE(res.body.find("\"samples\":7"), std::string::npos);

  const std::string body =
      "{\"source\": " + std::to_string(fx.Query(0).source) +
      ", \"target\": " + std::to_string(fx.Query(0).target) +
      ", \"k\": 3, \"depart_seconds\": 28800.0, "
      "\"arrival_deadline_seconds\": 30000.0, \"request_id\": 99}";
  ASSERT_TRUE(NetClient::HttpPost(kLoopback, port, "/query",
                                  "application/json", body, &res)
                  .ok());
  EXPECT_EQ(res.status_code, 200);
  EXPECT_NE(res.body.find("\"status\":\"ok\""), std::string::npos) << res.body;
  EXPECT_NE(res.body.find("\"request_id\":99"), std::string::npos);
  EXPECT_NE(res.body.find("\"route_edges\":["), std::string::npos);

  // Missing numeric source/target: 400, shed before any serve submit.
  ASSERT_TRUE(NetClient::HttpPost(kLoopback, port, "/query",
                                  "application/json", "{\"nope\": true}", &res)
                  .ok());
  EXPECT_EQ(res.status_code, 400);
  // Unknown path: 404.
  ASSERT_TRUE(NetClient::HttpGet(kLoopback, port, "/nothing", &res).ok());
  EXPECT_EQ(res.status_code, 404);
  // Wrong method on a known path: 405, both directions.
  ASSERT_TRUE(NetClient::HttpGet(kLoopback, port, "/query", &res).ok());
  EXPECT_EQ(res.status_code, 405);
  ASSERT_TRUE(NetClient::HttpPost(kLoopback, port, "/metrics", "text/plain",
                                  "x", &res)
                  .ok());
  EXPECT_EQ(res.status_code, 405);

  NetStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.http_health, 1u);
  EXPECT_EQ(stats.http_query, 1u);
  EXPECT_EQ(stats.http_bad_request, 1u);
  EXPECT_EQ(stats.http_not_found, 1u);
  EXPECT_EQ(stats.http_method_not_allowed, 2u);
  EXPECT_EQ(stats.HttpErrorsTotal(), 4u);

  server.Stop();
  serve.Stop();
}

TEST(SocketServerTest, TypedShedsHappenBeforePayloadDecode) {
  NetFixture fx;

  // queue_full: an unstarted QueryServer with capacity 1 and one queued
  // request makes QueueFull() deterministically true — the wire query is
  // answered with a typed ResourceExhausted error without decoding its
  // payload.
  {
    QueryServer::Options sopts;
    sopts.autoscale_enabled = false;
    sopts.queue.capacity = 1;
    QueryServer serve(&fx.net, fx.BaseModel(), sopts);
    std::atomic<int> drained{0};
    ASSERT_TRUE(serve
                    .Submit(fx.Query(0),
                            [&](const RouteAnswer&) { drained.fetch_add(1); })
                    .ok());
    ASSERT_TRUE(serve.QueueFull());

    SocketServer server(&serve);
    ASSERT_TRUE(server.Start().ok());
    NetClient client;
    ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());
    WireRouteAnswer answer;
    ASSERT_TRUE(client.Query(fx.Query(1), &answer).ok());
    EXPECT_EQ(answer.status_code, StatusCode::kResourceExhausted);

    NetStatsSnapshot stats = server.Stats();
    EXPECT_EQ(stats.shed_queue_full, 1u);
    EXPECT_EQ(stats.queries_failed, 1u);
    EXPECT_EQ(stats.queries_answered, 0u);

    // The HTTP arm probes the same way, before parsing the body.
    NetClient::HttpResponse res;
    ASSERT_TRUE(NetClient::HttpPost(kLoopback, server.port(), "/query",
                                    "application/json", "{\"source\": 1}",
                                    &res)
                    .ok());
    EXPECT_EQ(res.status_code, 503);
    EXPECT_EQ(server.Stats().shed_queue_full, 2u);

    client.Close();
    server.Stop();
    serve.Stop();  // drains the queued request
    EXPECT_EQ(drained.load(), 1);
  }

  // deadline: a frame whose last byte lands after the admission deadline
  // is shed before parse — the client has likely given up already.
  {
    QueryServer::Options sopts;
    sopts.autoscale_enabled = false;
    QueryServer serve(&fx.net, fx.BaseModel(), sopts);
    ASSERT_TRUE(serve.Start().ok());
    SocketServer::Options nopts;
    nopts.admission_deadline_seconds = 0.05;
    SocketServer server(&serve, nopts);
    ASSERT_TRUE(server.Start().ok());

    NetClient client;
    ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());
    std::vector<uint8_t> payload;
    EncodeRouteQueryPayload(fx.Query(0), &payload);
    std::vector<uint8_t> frame;
    EncodeNetFrame(1, NetOpcode::kRouteQuery, payload.data(), payload.size(),
                   &frame);
    ASSERT_TRUE(client.SendRaw(frame.data(), 10).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    ASSERT_TRUE(client.SendRaw(frame.data() + 10, frame.size() - 10).ok());

    uint64_t id = 0;
    WireRouteAnswer answer;
    ASSERT_TRUE(client.ReceiveAnswer(&id, &answer).ok());
    EXPECT_EQ(id, 1u);
    EXPECT_EQ(answer.status_code, StatusCode::kResourceExhausted);
    EXPECT_EQ(server.Stats().shed_deadline, 1u);

    // A prompt frame on the same connection is admitted normally.
    ASSERT_TRUE(client.Query(fx.Query(0), &answer).ok());
    EXPECT_EQ(answer.status_code, StatusCode::kOk);

    client.Close();
    server.Stop();
    serve.Stop();
  }

  // conn_cap: above max_connections new sockets are closed at accept.
  {
    QueryServer::Options sopts;
    sopts.autoscale_enabled = false;
    QueryServer serve(&fx.net, fx.BaseModel(), sopts);
    ASSERT_TRUE(serve.Start().ok());
    SocketServer::Options nopts;
    nopts.max_connections = 1;
    SocketServer server(&serve, nopts);
    ASSERT_TRUE(server.Start().ok());

    NetClient first;
    ASSERT_TRUE(first.Connect(kLoopback, server.port()).ok());
    ASSERT_TRUE(first.Ping().ok());  // registered with its loop

    NetClient second;
    ASSERT_TRUE(second.Connect(kLoopback, server.port()).ok());  // backlog
    // The server accepts and immediately closes it: the ping never gets an
    // answer, the client sees the connection drop.
    Status dropped = second.Ping();
    EXPECT_FALSE(dropped.ok());
    EXPECT_EQ(server.Stats().shed_conn_cap, 1u);
    EXPECT_EQ(server.Stats().connections_active, 1u);

    // Capacity frees when the first connection leaves.
    first.Close();
    NetClient third;
    ASSERT_TRUE(third.Connect(kLoopback, server.port()).ok());
    Status alive = Status::Internal("never pinged");
    for (int attempt = 0; attempt < 50; ++attempt) {
      alive = third.Ping();
      if (alive.ok()) break;
      third.Close();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ASSERT_TRUE(third.Connect(kLoopback, server.port()).ok());
    }
    EXPECT_TRUE(alive.ok()) << alive.ToString();

    third.Close();
    second.Close();
    server.Stop();
    serve.Stop();
  }
}

TEST(SocketServerTest, HostileBytesResyncAndBadOpcode) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer server(&serve);
  ASSERT_TRUE(server.Start().ok());

  NetClient client;
  ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());

  // A corrupted frame (payload byte flipped after CRC) is dropped server-
  // side; the connection survives and the next intact frame is answered.
  std::vector<uint8_t> payload;
  EncodeRouteQueryPayload(fx.Query(0), &payload);
  std::vector<uint8_t> corrupt;
  EncodeNetFrame(5, NetOpcode::kRouteQuery, payload.data(), payload.size(),
                 &corrupt);
  corrupt[20] ^= 0xFF;
  ASSERT_TRUE(client.SendRaw(corrupt.data(), corrupt.size()).ok());
  ASSERT_TRUE(client.Ping().ok());  // server resynced; nothing answered id 5

  // An intact frame with an unknown opcode gets a typed InvalidArgument
  // error, not a dropped connection.
  std::vector<uint8_t> unknown;
  EncodeNetFrame(6, static_cast<NetOpcode>(0x55), nullptr, 0, &unknown);
  ASSERT_TRUE(client.SendRaw(unknown.data(), unknown.size()).ok());
  NetFrame reply;
  ASSERT_TRUE(client.ReceiveFrame(&reply).ok());
  EXPECT_EQ(reply.request_id, 6u);
  EXPECT_EQ(static_cast<NetOpcode>(reply.opcode), NetOpcode::kError);
  EXPECT_EQ(DecodeErrorPayload(reply.payload.data(), reply.payload.size())
                .code(),
            StatusCode::kInvalidArgument);

  NetStatsSnapshot stats = server.Stats();
  EXPECT_TRUE(stats.frames.rejected_bad_crc > 0 ||
              stats.frames.resync_bytes > 0);
  EXPECT_EQ(stats.rejected_bad_opcode, 1u);
  EXPECT_EQ(stats.queries_answered, 0u);

  client.Close();
  server.Stop();
  serve.Stop();
}

TEST(SocketServerTest, TraceSpansLinkNetReadServeSubmitNetWrite) {
  TraceRecorder::Global().SetCapacity(1 << 16);
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();

  NetFixture fx;
  {
    QueryServer::Options sopts;
    sopts.autoscale_enabled = false;
    QueryServer serve(&fx.net, fx.BaseModel(), sopts);
    ASSERT_TRUE(serve.Start().ok());
    SocketServer server(&serve);
    ASSERT_TRUE(server.Start().ok());

    NetClient client;
    ASSERT_TRUE(client.Connect(kLoopback, server.port()).ok());
    WireRouteAnswer answer;
    ASSERT_TRUE(client.Query(fx.Query(0), &answer).ok());
    EXPECT_EQ(answer.status_code, StatusCode::kOk);

    client.Close();
    server.Stop();  // loop threads exit -> their span buffers flush
    serve.Stop();
  }

  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  // The wire request's id is namespaced with the high bit so it can never
  // collide with in-process request ids.
  const uint64_t kNetBit = 1ull << 63;
  uint64_t net_request_id = 0;
  uint64_t root_span = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "net/request") {
      EXPECT_GE(e.request_id, kNetBit);
      net_request_id = e.request_id;
      root_span = e.span_id;
    }
  }
  ASSERT_NE(net_request_id, 0u);
  ASSERT_NE(root_span, 0u);

  bool saw_read = false, saw_submit = false, saw_write = false;
  for (const TraceEvent& e : events) {
    if (e.request_id != net_request_id) continue;
    if (e.name == "net/read") {
      saw_read = true;
      EXPECT_EQ(e.parent_span_id, root_span);
    } else if (e.name == "serve/submit") {
      saw_submit = true;
      EXPECT_EQ(e.parent_span_id, root_span);
    } else if (e.name == "net/write") {
      saw_write = true;
      EXPECT_EQ(e.parent_span_id, root_span);
    }
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_submit);  // the serve subtree joined the wire trace tree
  EXPECT_TRUE(saw_write);

  TraceRecorder::Global().Disable();
  TraceRecorder::Global().Clear();
}

TEST(SocketServerTest, ConcurrentClientsAllAnswered) {
  NetFixture fx;
  QueryServer::Options sopts;
  sopts.autoscale_enabled = false;
  sopts.initial_workers = 2;
  QueryServer serve(&fx.net, fx.BaseModel(), sopts);
  ASSERT_TRUE(serve.Start().ok());
  SocketServer::Options nopts;
  nopts.event_loops = 2;
  SocketServer server(&serve, nopts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  const int kThreads = 4;
  const int kPerThread = 25;
  std::atomic<int> answered{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NetClient client;
      if (!client.Connect(kLoopback, port).ok()) {
        errors.fetch_add(kPerThread);
        return;
      }
      for (int i = 0; i < kPerThread; ++i) {
        WireRouteAnswer answer;
        Status s = client.Query(fx.Query(t * kPerThread + i), &answer);
        if (s.ok() && answer.status_code == StatusCode::kOk) {
          answered.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(errors.load(), 0);
  NetStatsSnapshot stats = server.Stats();
  EXPECT_EQ(stats.queries_answered,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.completions_dropped, 0u);

  server.Stop();
  serve.Stop();
}

TEST(NetClientTest, PipelinedAnswersMatchByIdUnderOutOfOrderDelivery) {
  // An in-test wire server that holds a pipelined burst and answers it in
  // REVERSE order, each answer carrying a cost derived from its query's
  // source node. The client must attribute every answer to the request id
  // that earned it — receive order is explicitly not submission order on
  // a pipelined connection (a shard fleet makes this the common case).
  constexpr int kBurst = 8;
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const uint16_t port = ntohs(addr.sin_port);

  std::thread server([listen_fd] {
    int conn = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    FrameParser parser;
    std::vector<NetFrame> frames;
    uint8_t buf[4096];
    while (frames.size() < kBurst) {
      ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      parser.Consume(buf, static_cast<size_t>(n), &frames);
    }
    ASSERT_EQ(frames.size(), static_cast<size_t>(kBurst));
    std::vector<uint8_t> out;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      RouteQuery q;
      ASSERT_TRUE(
          DecodeRouteQueryPayload(it->payload.data(), it->payload.size(), &q)
              .ok());
      RouteAnswer answer;
      answer.cost_mean_seconds = 1000.0 + q.source;  // provenance marker
      answer.on_time_probability = 0.5;
      answer.num_candidates = 1;
      std::vector<uint8_t> payload;
      EncodeRouteAnswerPayload(answer, &payload);
      EncodeNetFrame(it->request_id, NetOpcode::kRouteAnswer, payload.data(),
                     payload.size(), &out);
    }
    size_t off = 0;
    while (off < out.size()) {
      ssize_t n = ::write(conn, out.data() + off, out.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(conn);
  });

  NetClient client;
  ASSERT_TRUE(client.Connect(kLoopback, port).ok());
  std::vector<uint64_t> sent_ids;
  std::vector<int> sent_sources;
  for (int i = 0; i < kBurst; ++i) {
    RouteQuery q;
    q.source = 100 + i;  // distinct per request — the provenance key
    q.target = 1;
    uint64_t id = 0;
    ASSERT_TRUE(client.SendQuery(q, &id).ok());
    sent_ids.push_back(id);
    sent_sources.push_back(q.source);
  }

  for (int i = 0; i < kBurst; ++i) {
    uint64_t id = 0;
    WireRouteAnswer answer;
    Status st = client.ReceiveAnswer(&id, &answer);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // The server answered newest-first: the very first received answer
    // must carry the LAST request's id — out-of-order delivery really
    // happened on this connection.
    if (i == 0) {
      EXPECT_EQ(id, sent_ids.back());
    }
    auto pos = std::find(sent_ids.begin(), sent_ids.end(), id);
    ASSERT_NE(pos, sent_ids.end()) << "unknown request id " << id;
    size_t index = static_cast<size_t>(pos - sent_ids.begin());
    // Matching by id recovers exactly the answer this request earned.
    EXPECT_EQ(answer.status_code, StatusCode::kOk);
    EXPECT_EQ(answer.cost_mean_seconds, 1000.0 + sent_sources[index]);
    sent_ids[index] = 0;  // each id answered exactly once
  }
  for (uint64_t id : sent_ids) EXPECT_EQ(id, 0u);

  client.Close();
  server.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace tsdm
