#include "src/governance/uncertainty/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/histogram_ext.h"
#include "src/common/stats.h"
#include "src/obs/metrics_export.h"

namespace tsdm {
namespace {

TEST(HistogramTest, CreateValidation) {
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_TRUE(Histogram::Create(0.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::FromSamples({}, 10).ok());
}

TEST(HistogramTest, MeanVarianceApproximateSamples) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Normal(10.0, 2.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 64);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->Mean(), 10.0, 0.1);
  EXPECT_NEAR(h->Stdev(), 2.0, 0.1);
}

TEST(HistogramTest, CdfAndQuantileAreInverse) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.Uniform(0.0, 100.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 50);
  ASSERT_TRUE(h.ok());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double x = h->Quantile(q);
    EXPECT_NEAR(h->Cdf(x), q, 0.03);
  }
  EXPECT_EQ(h->Cdf(h->lo() - 1.0), 0.0);
  EXPECT_EQ(h->Cdf(h->hi() + 1.0), 1.0);
}

TEST(HistogramTest, PointMassBehaves) {
  Histogram p = Histogram::PointMass(5.0);
  EXPECT_NEAR(p.Mean(), 5.0, 1e-9);
  EXPECT_EQ(p.Variance(), 0.0);
  EXPECT_EQ(p.Cdf(4.0), 0.0);
  EXPECT_EQ(p.Cdf(6.0), 1.0);
}

TEST(HistogramTest, SamplesFollowDistribution) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Normal(0.0, 1.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 40);
  ASSERT_TRUE(h.ok());
  std::vector<double> drawn;
  for (int i = 0; i < 5000; ++i) drawn.push_back(h->Sample(&rng));
  EXPECT_NEAR(Mean(drawn), 0.0, 0.1);
  EXPECT_NEAR(Stdev(drawn), 1.0, 0.1);
}

TEST(HistogramTest, ConvolutionAddsMeansAndVariances) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng.Normal(5.0, 1.0));
    b.push_back(rng.Normal(7.0, 2.0));
  }
  Result<Histogram> ha = Histogram::FromSamples(a, 64);
  Result<Histogram> hb = Histogram::FromSamples(b, 64);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  Histogram sum = ha->Convolve(*hb, 96);
  EXPECT_NEAR(sum.Mean(), 12.0, 0.2);
  // Var = 1 + 4 under independence.
  EXPECT_NEAR(sum.Variance(), 5.0, 0.5);
}

TEST(HistogramTest, ShiftedMovesSupport) {
  Histogram p = Histogram::PointMass(3.0);
  Histogram q = p.Shifted(2.0);
  EXPECT_NEAR(q.Mean(), 5.0, 1e-9);
}

TEST(HistogramTest, DominanceForMinimization) {
  // A uniformly on [0,10] vs B uniformly on [5,15]: A dominates B.
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.Uniform(0.0, 10.0));
    b.push_back(rng.Uniform(5.0, 15.0));
  }
  Histogram ha = *Histogram::FromSamples(a, 32);
  Histogram hb = *Histogram::FromSamples(b, 32);
  EXPECT_TRUE(ha.DominatesForMinimization(hb));
  EXPECT_FALSE(hb.DominatesForMinimization(ha));
}

TEST(HistogramTest, OverlappingDistributionsDoNotDominate) {
  // A tight around 10 vs B wide around 10: neither dominates.
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.Normal(10.0, 0.5));
    b.push_back(rng.Normal(10.0, 3.0));
  }
  Histogram ha = *Histogram::FromSamples(a, 32);
  Histogram hb = *Histogram::FromSamples(b, 32);
  EXPECT_FALSE(ha.DominatesForMinimization(hb));
  EXPECT_FALSE(hb.DominatesForMinimization(ha));
}

// Property sweep over bin counts: total mass conserved, CDF monotone.
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, MassNormalizedAndCdfMonotone) {
  Rng rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Gamma(2.0, 3.0));
  Result<Histogram> h = Histogram::FromSamples(samples, GetParam() * 8);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (int b = 0; b < h->NumBins(); ++b) total += h->BinMass(b);
  EXPECT_NEAR(total, 1.0, 1e-9);
  double prev = -1.0;
  for (double x = h->lo(); x <= h->hi(); x += (h->hi() - h->lo()) / 37) {
    double c = h->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- LatencyHistogram edge cases -----------------------------------------
// The exporter serializes these values straight into JSON/Prometheus, so
// the empty and boundary cases must be finite (never NaN/inf) and sane.

TEST(LatencyHistogramEdgeTest, ZeroSamplesIsNanFreeEverywhere) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_seconds(), 0.0);
  EXPECT_EQ(h.MeanSeconds(), 0.0);
  EXPECT_EQ(h.MinSeconds(), 0.0);
  EXPECT_EQ(h.MaxSeconds(), 0.0);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    double v = h.QuantileSeconds(q);
    EXPECT_FALSE(std::isnan(v)) << q;
    EXPECT_EQ(v, 0.0) << q;
  }
  std::string json = MetricsExporter::LatencyToJson(h);
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_EQ(json,
            "{\"count\":0,\"mean_s\":0,\"p50_s\":0,\"p95_s\":0,\"p99_s\":0,"
            "\"min_s\":0,\"max_s\":0}");
}

TEST(LatencyHistogramEdgeTest, SingleSampleClampsEveryQuantileToIt) {
  LatencyHistogram h;
  h.Add(0.003);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.MeanSeconds(), 0.003);
  EXPECT_DOUBLE_EQ(h.MinSeconds(), 0.003);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 0.003);
  // Quantiles clamp to the observed [min, max], so with one sample every
  // quantile is exactly that sample — no bin-midpoint smearing.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.QuantileSeconds(q), 0.003) << q;
  }
}

TEST(LatencyHistogramEdgeTest, ValueBeyondLastBinKeepsExactExtremes) {
  LatencyHistogram h;
  h.Add(500.0);  // beyond kMaxSeconds = 100s: clamps into the last bin
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.MaxSeconds(), 500.0);  // exact max survives clamping
  EXPECT_DOUBLE_EQ(h.QuantileSeconds(0.99), 500.0);

  h.Add(0.5);
  // p50 comes from the 0.5s bin (~21% resolution); p99 from the overflow
  // bin, clamped into the observed range.
  EXPECT_NEAR(h.QuantileSeconds(0.5), 0.5, 0.15);
  double p99 = h.QuantileSeconds(0.99);
  EXPECT_GE(p99, LatencyHistogram::kMaxSeconds * 0.5);
  EXPECT_LE(p99, 500.0);
  EXPECT_FALSE(std::isnan(p99));
}

TEST(LatencyHistogramEdgeTest, NegativeAndSubMicrosecondValuesClampLow) {
  LatencyHistogram h;
  h.Add(-1.0);   // nonsense input clamps to 0
  h.Add(1e-9);   // below kMinSeconds lands in the first bin
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MinSeconds(), 0.0);
  double p50 = h.QuantileSeconds(0.5);
  EXPECT_FALSE(std::isnan(p50));
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, LatencyHistogram::kMinSeconds);
}

TEST(LatencyHistogramEdgeTest, MergeWithEmptyIsIdentityBothWays) {
  LatencyHistogram empty, loaded;
  loaded.Add(0.004);
  LatencyHistogram merged = loaded;
  merged.Merge(empty);  // no-op
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_DOUBLE_EQ(merged.MinSeconds(), 0.004);
  EXPECT_DOUBLE_EQ(merged.MaxSeconds(), 0.004);

  LatencyHistogram other;
  other.Merge(loaded);  // empty absorbs loaded: min must not stick at 0
  EXPECT_EQ(other.count(), 1u);
  EXPECT_DOUBLE_EQ(other.MinSeconds(), 0.004);
  EXPECT_DOUBLE_EQ(other.QuantileSeconds(0.5), 0.004);
}

}  // namespace
}  // namespace tsdm
