#include "src/governance/uncertainty/histogram.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace tsdm {
namespace {

TEST(HistogramTest, CreateValidation) {
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_TRUE(Histogram::Create(0.0, 1.0, 10).ok());
  EXPECT_FALSE(Histogram::FromSamples({}, 10).ok());
}

TEST(HistogramTest, MeanVarianceApproximateSamples) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.Normal(10.0, 2.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 64);
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(h->Mean(), 10.0, 0.1);
  EXPECT_NEAR(h->Stdev(), 2.0, 0.1);
}

TEST(HistogramTest, CdfAndQuantileAreInverse) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.Uniform(0.0, 100.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 50);
  ASSERT_TRUE(h.ok());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double x = h->Quantile(q);
    EXPECT_NEAR(h->Cdf(x), q, 0.03);
  }
  EXPECT_EQ(h->Cdf(h->lo() - 1.0), 0.0);
  EXPECT_EQ(h->Cdf(h->hi() + 1.0), 1.0);
}

TEST(HistogramTest, PointMassBehaves) {
  Histogram p = Histogram::PointMass(5.0);
  EXPECT_NEAR(p.Mean(), 5.0, 1e-9);
  EXPECT_EQ(p.Variance(), 0.0);
  EXPECT_EQ(p.Cdf(4.0), 0.0);
  EXPECT_EQ(p.Cdf(6.0), 1.0);
}

TEST(HistogramTest, SamplesFollowDistribution) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.Normal(0.0, 1.0));
  Result<Histogram> h = Histogram::FromSamples(samples, 40);
  ASSERT_TRUE(h.ok());
  std::vector<double> drawn;
  for (int i = 0; i < 5000; ++i) drawn.push_back(h->Sample(&rng));
  EXPECT_NEAR(Mean(drawn), 0.0, 0.1);
  EXPECT_NEAR(Stdev(drawn), 1.0, 0.1);
}

TEST(HistogramTest, ConvolutionAddsMeansAndVariances) {
  Rng rng(4);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(rng.Normal(5.0, 1.0));
    b.push_back(rng.Normal(7.0, 2.0));
  }
  Result<Histogram> ha = Histogram::FromSamples(a, 64);
  Result<Histogram> hb = Histogram::FromSamples(b, 64);
  ASSERT_TRUE(ha.ok());
  ASSERT_TRUE(hb.ok());
  Histogram sum = ha->Convolve(*hb, 96);
  EXPECT_NEAR(sum.Mean(), 12.0, 0.2);
  // Var = 1 + 4 under independence.
  EXPECT_NEAR(sum.Variance(), 5.0, 0.5);
}

TEST(HistogramTest, ShiftedMovesSupport) {
  Histogram p = Histogram::PointMass(3.0);
  Histogram q = p.Shifted(2.0);
  EXPECT_NEAR(q.Mean(), 5.0, 1e-9);
}

TEST(HistogramTest, DominanceForMinimization) {
  // A uniformly on [0,10] vs B uniformly on [5,15]: A dominates B.
  Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.Uniform(0.0, 10.0));
    b.push_back(rng.Uniform(5.0, 15.0));
  }
  Histogram ha = *Histogram::FromSamples(a, 32);
  Histogram hb = *Histogram::FromSamples(b, 32);
  EXPECT_TRUE(ha.DominatesForMinimization(hb));
  EXPECT_FALSE(hb.DominatesForMinimization(ha));
}

TEST(HistogramTest, OverlappingDistributionsDoNotDominate) {
  // A tight around 10 vs B wide around 10: neither dominates.
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 5000; ++i) {
    a.push_back(rng.Normal(10.0, 0.5));
    b.push_back(rng.Normal(10.0, 3.0));
  }
  Histogram ha = *Histogram::FromSamples(a, 32);
  Histogram hb = *Histogram::FromSamples(b, 32);
  EXPECT_FALSE(ha.DominatesForMinimization(hb));
  EXPECT_FALSE(hb.DominatesForMinimization(ha));
}

// Property sweep over bin counts: total mass conserved, CDF monotone.
class HistogramPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramPropertyTest, MassNormalizedAndCdfMonotone) {
  Rng rng(GetParam());
  std::vector<double> samples;
  for (int i = 0; i < 2000; ++i) samples.push_back(rng.Gamma(2.0, 3.0));
  Result<Histogram> h = Histogram::FromSamples(samples, GetParam() * 8);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (int b = 0; b < h->NumBins(); ++b) total += h->BinMass(b);
  EXPECT_NEAR(total, 1.0, 1e-9);
  double prev = -1.0;
  for (double x = h->lo(); x <= h->hi(); x += (h->hi() - h->lo()) / 37) {
    double c = h->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace tsdm
