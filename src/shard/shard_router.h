#ifndef TSDM_SHARD_SHARD_ROUTER_H_
#define TSDM_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/decision/routing/stochastic_router.h"
#include "src/obs/health.h"
#include "src/serve/query_server.h"
#include "src/serve/query_service.h"
#include "src/serve/route_cache.h"
#include "src/shard/shard_map.h"
#include "src/shard/shard_stats.h"
#include "src/spatial/road_network.h"

namespace tsdm {

/// Scatter-gather front door over N in-process QueryServer shards — the
/// capacity-scaling tier of the serving stack. Implements the same
/// QueryService surface a single QueryServer does, so the socket server
/// (and therefore NetClient) cannot tell one node from a fleet:
///
///   Submit --> owner(source region) == owner(target region)?
///     yes --> forward: pinned single-shard submit (shard stamped in
///             SubmitOptions, zero extra work on the answer path)
///     no  --> scatter: enumerate candidates (shared RouteCache), split
///             every candidate into PathCostCache-granularity segments,
///             probe each unique segment's cost distribution on the shard
///             that owns the sub-path, and merge: compose per candidate in
///             segment order, score with the shared ScoreCandidates rule.
///
/// Answer equivalence is structural, not coincidental: enumeration,
/// segment split, per-segment cost, composition, and scoring are the very
/// functions the single-node path runs (RouteCache,
/// CachedPathCostModel::{SplitSegments, SegmentCost, ComposeSegments},
/// ScoreCandidates), so a scattered answer is bitwise-identical to the
/// single-node answer for the same query — the property the equivalence
/// suite locks in across 1/2/4/8 shards. The merge keys every result by
/// segment *index*: no completion order, adversarial or otherwise, can
/// change the answer (permutation invariance by construction).
///
/// Failure semantics are typed, never silent: a probe lost to a stopped
/// or overloaded shard (transport failure — FailedPrecondition /
/// ResourceExhausted / Unavailable) turns the whole scatter answer into
/// Status::Unavailable, while a *model* error for a segment flows into
/// candidate scoring exactly as it would on a single node. A degraded
/// fleet returns partial-result errors; it never returns a wrong route.
///
/// Cache heat crosses shard boundaries on purpose: when a scatter probe
/// *missed* on its owner shard, the freshly computed entry is replicated
/// into the shards owning the query's source and target regions, so the
/// forwarded (single-shard) queries of adjacent buckets find the boundary
/// sub-paths warm.
///
/// Thread-safety mirrors QueryServer: Submit from any thread;
/// Start/Stop/StopShard/WaitIdle from the control thread; callbacks fire
/// exactly once, on shard worker threads (merges run on the thread that
/// completed the last probe).
class ShardRouter : public QueryService {
 public:
  struct Options {
    /// Ring shape. map.num_shards is the fleet size.
    ShardMap::Options map;
    /// Per-shard QueryServer configuration (every shard gets a copy, so
    /// cache capacity etc. are per shard — fleet capacity scales with N).
    QueryServer::Options server;
    /// Region grid cell size (meters) for RegionBucket: nodes whose cells
    /// match share a bucket, and a query whose source and target buckets
    /// have the same owner is forwarded instead of scattered.
    double region_cell_meters = 2000.0;
    /// Replicate boundary-segment cache entries (see class comment).
    bool replicate_boundary = true;
    /// Per-shard HealthMonitors + FleetHealth aggregation.
    bool health_enabled = false;
    HealthMonitor::Options health;
    /// Test hook — adversarial completion reordering: when nonzero, every
    /// scatter buffers its probe results and applies them in an order
    /// shuffled by this seed before merging, proving end-to-end that the
    /// merge is permutation-invariant. 0 (production) merges as results
    /// arrive.
    uint64_t reorder_seed = 0;
  };

  /// The network must outlive the router. `base_model` is copied into
  /// every shard and must be deterministic and thread-safe for reads —
  /// the same contract QueryServer already imposes, and the property that
  /// makes sharded answers reproducible.
  ShardRouter(const RoadNetwork* network, PathCostModel base_model,
              Options options);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Starts every shard (and health monitors when enabled), then
  /// registers the "shard" metrics source. FailedPrecondition if running.
  Status Start();

  /// Stops every shard and unregisters metrics. Idempotent.
  void Stop();

  /// Stops one member shard — the failure-injection entry (and the ops
  /// story for draining a member). Subsequent probes and forwards that
  /// land on it yield typed Unavailable answers. InvalidArgument on a bad
  /// index; idempotent per shard.
  Status StopShard(int shard);
  bool ShardStopped(int shard) const;

  using QueryService::Submit;
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done,
                const SubmitOptions& options) override;

  /// True when any member shard's admission queue is full — conservative,
  /// because a scatter may need every shard.
  bool QueueFull() const override;

  /// Fleet aggregate (ShardStats().Aggregate()).
  ServeStatsSnapshot Stats() const override;

  /// Blocks until every admitted request AND every in-flight scatter has
  /// reached a terminal state.
  void WaitIdle() const override;

  /// Router counters plus every member shard's snapshot.
  ShardStatsSnapshot ShardStats() const;

  /// Worst-of-fleet health view (empty snapshot when health is disabled).
  HealthSnapshot FleetHealth() const;

  const ShardMap& map() const { return map_; }
  int num_shards() const { return map_.num_shards(); }
  QueryServer& shard(int i) { return *shards_[static_cast<size_t>(i)]; }

  /// Region bucket of a node: its (x, y) grid cell at region_cell_meters,
  /// packed into one int64 — the unit of query ownership.
  int64_t RegionBucket(int node) const;
  /// OwnerOfBucket(RegionBucket(node)) — which shard owns a node's region.
  int OwnerOfNode(int node) const;

 private:
  struct ScatterState;

  void Scatter(RouteQuery query, std::function<void(const RouteAnswer&)> cb,
               const SubmitOptions& options, const TraceContext& root_ctx);
  void OnProbeDone(const std::shared_ptr<ScatterState>& state, size_t index,
                   const RouteAnswer& probe_answer);
  void ApplyProbe(const std::shared_ptr<ScatterState>& state, size_t index,
                  const RouteAnswer& probe_answer);
  void Merge(const std::shared_ptr<ScatterState>& state);

  const RoadNetwork* network_;
  Options options_;
  ShardMap map_;
  RouteCache routes_;
  std::vector<std::unique_ptr<QueryServer>> shards_;
  std::vector<std::unique_ptr<HealthMonitor>> health_;
  std::unique_ptr<std::atomic<bool>[]> shard_stopped_;

  // Router-tier counters (see ShardRouterStats). A plain mutex: every
  // path that touches these already paid a queue push or probe fan-out.
  mutable std::mutex stats_mu_;
  ShardRouterStats stats_;

  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> outstanding_scatters_{0};
  std::atomic<bool> running_{false};
  mutable std::mutex lifecycle_mu_;
  bool started_ = false;
};

}  // namespace tsdm

#endif  // TSDM_SHARD_SHARD_ROUTER_H_
