#include "src/shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_export.h"
#include "src/serve/path_cost_cache.h"

namespace tsdm {

namespace {

/// Probe failures that mean "the shard could not be reached / could not
/// accept work", as opposed to the model having no answer for a segment.
/// Transport failures poison the whole scatter into a typed Unavailable;
/// model errors flow into candidate scoring exactly like on a single node.
bool IsTransportFailure(StatusCode code) {
  return code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

struct SegmentHash {
  size_t operator()(const std::vector<int>& v) const {
    return static_cast<size_t>(ShardMap::HashSubpath(v));
  }
};

}  // namespace

/// One in-flight scatter. Each element of seg_costs/seg_from_cache/
/// seg_transport is written by exactly one probe completion and read only
/// by the merging thread after `remaining` hits zero (acq_rel), so the
/// state needs no lock on the production path; reorder_mu exists only for
/// the adversarial-reordering test hook.
struct ShardRouter::ScatterState {
  RouteQuery query;
  std::vector<Path> routes;
  std::vector<std::vector<int>> segments;  ///< unique, first-appearance order
  std::vector<std::vector<size_t>> route_segs;  ///< per candidate, route order
  int bucket = 0;
  int source_owner = 0;
  int target_owner = 0;

  std::vector<Result<Histogram>> seg_costs;
  std::vector<uint8_t> seg_from_cache;
  std::vector<int> seg_shard;
  std::vector<Status> seg_transport;
  std::atomic<size_t> remaining{0};

  SubmitOptions caller;
  std::function<void(const RouteAnswer&)> on_done;
  uint64_t submit_ns = 0;
  TraceContext scatter_ctx;

  // Adversarial-reordering hook (Options::reorder_seed != 0).
  std::mutex reorder_mu;
  std::vector<std::pair<size_t, RouteAnswer>> buffered;
};

ShardRouter::ShardRouter(const RoadNetwork* network, PathCostModel base_model,
                         Options options)
    : network_(network),
      options_(options),
      map_(options.map),
      routes_(network, options.server.route_cache_entries) {
  const int n = map_.num_shards();
  shard_stopped_.reset(new std::atomic<bool>[static_cast<size_t>(n)]);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shard_stopped_[i].store(false, std::memory_order_relaxed);
    shards_.push_back(
        std::make_unique<QueryServer>(network, base_model, options_.server));
  }
  if (options_.health_enabled) {
    health_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      QueryServer* srv = shards_[static_cast<size_t>(i)].get();
      health_.push_back(std::make_unique<HealthMonitor>(
          [srv] { return srv->Stats(); }, options_.health));
    }
  }
  stats_.num_shards = n;
  stats_.generation = map_.generation();
  stats_.forwarded_per_shard.assign(static_cast<size_t>(n), 0);
  stats_.probes_per_shard.assign(static_cast<size_t>(n), 0);
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    return Status::FailedPrecondition("ShardRouter: already started");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status st = shards_[i]->Start();
    if (!st.ok()) {
      for (size_t j = 0; j < i; ++j) shards_[j]->Stop();
      return st;
    }
  }
  for (auto& monitor : health_) {
    Status st = monitor->Start();
    if (!st.ok()) return st;
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  ShardRouter* self = this;
  MetricsExporter::RegisterSource(
      "shard",
      [self](const std::string& prefix) {
        return MetricsExporter::ShardToPrometheus(self->ShardStats(), prefix);
      },
      [self] { return MetricsExporter::ShardToJson(self->ShardStats()); });
  return Status::OK();
}

void ShardRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_) return;
    started_ = false;
  }
  MetricsExporter::UnregisterSource("shard");
  running_.store(false, std::memory_order_release);
  for (auto& monitor : health_) monitor->Stop();
  for (size_t i = 0; i < shards_.size(); ++i) {
    shard_stopped_[i].store(true, std::memory_order_release);
    shards_[i]->Stop();
  }
  // Scatters whose last probe was answered by a draining shard may still
  // be merging on that shard's worker; their callbacks must finish before
  // Stop returns (the exactly-once contract outlives member shutdown).
  while (outstanding_scatters_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

Status ShardRouter::StopShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("ShardRouter: no shard " +
                                   std::to_string(shard));
  }
  shard_stopped_[shard].store(true, std::memory_order_release);
  shards_[static_cast<size_t>(shard)]->Stop();
  return Status::OK();
}

bool ShardRouter::ShardStopped(int shard) const {
  if (shard < 0 || shard >= num_shards()) return false;
  return shard_stopped_[shard].load(std::memory_order_acquire);
}

int64_t ShardRouter::RegionBucket(int node) const {
  const RoadNetwork::Node& p = network_->node(node);
  const double cell = std::max(1e-9, options_.region_cell_meters);
  const int64_t cx = static_cast<int64_t>(std::floor(p.x / cell));
  const int64_t cy = static_cast<int64_t>(std::floor(p.y / cell));
  return (cx << 32) ^ (cy & 0xffffffffll);
}

int ShardRouter::OwnerOfNode(int node) const {
  return map_.OwnerOfBucket(RegionBucket(node));
}

Status ShardRouter::Submit(RouteQuery query,
                           std::function<void(const RouteAnswer&)> on_done,
                           const SubmitOptions& options) {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("ShardRouter: not running");
  }
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const TraceContext root = options.trace_parent.ForRequest()
                                ? options.trace_parent
                                : TraceContext{id + 1, 0};
  TraceSpan span("shard/submit", root, static_cast<int64_t>(id));
  const TraceContext ctx = span.ChildContext();

  // Queries whose endpoints are not network nodes cannot be placed by
  // region; forward them deterministically to shard 0, whose worker then
  // produces the same enumeration error a single node would.
  const bool placeable =
      query.source >= 0 &&
      query.source < static_cast<int>(network_->NumNodes()) &&
      query.target >= 0 && query.target < static_cast<int>(network_->NumNodes());
  const int source_owner = placeable ? OwnerOfNode(query.source) : 0;
  const int target_owner = placeable ? OwnerOfNode(query.target) : 0;

  if (source_owner == target_owner) {
    const int s = source_owner;
    if (shard_stopped_[s].load(std::memory_order_acquire)) {
      Status st = Status::Unavailable("shard: shard " + std::to_string(s) +
                                      " is stopped");
      // Rejected before any shard saw it: on_done is not retained, so this
      // synthesized answer is the request's only terminal record.
      if (FlightRecorder::Enabled()) {
        RouteAnswer dead;
        dead.status = st;
        dead.client_request_id = options.client_request_id;
        dead.tenant_id =
            options.tenant_id.empty() ? "default" : options.tenant_id;
        FlightRecorder::MaybeComplete(ctx.request_id, s, dead);
      }
      return st;
    }
    TraceSpan forward("shard/forward", ctx, s);
    SubmitOptions inner = options;
    inner.shard = s;
    inner.trace_parent = forward.ChildContext();
    Status st =
        shards_[static_cast<size_t>(s)]->Submit(std::move(query),
                                                std::move(on_done), inner);
    if (st.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.forwarded;
      ++stats_.forwarded_per_shard[static_cast<size_t>(s)];
    }
    return st;
  }

  SubmitOptions caller = options;
  caller.shard = -1;
  Scatter(std::move(query), std::move(on_done), caller, ctx);
  return Status::OK();
}

void ShardRouter::Scatter(RouteQuery query,
                          std::function<void(const RouteAnswer&)> cb,
                          const SubmitOptions& options,
                          const TraceContext& root_ctx) {
  outstanding_scatters_.fetch_add(1, std::memory_order_acq_rel);
  TraceSpan span("shard/scatter", root_ctx);
  const uint64_t submit_ns = TraceRecorder::NowNs();

  // Candidate enumeration through the same RouteCache code path a
  // QueryServer runs — the first of the shared stages that make the
  // scattered answer bitwise-equal to the single-node one.
  Result<std::vector<Path>> routes =
      routes_.Get(query.source, query.target, query.k, span.ChildContext());
  if (!routes.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.scattered;
      ++stats_.enumeration_failures;
    }
    RouteAnswer answer;
    answer.status = routes.status();
    answer.client_request_id = options.client_request_id;
    answer.tenant_id =
        options.tenant_id.empty() ? "default" : options.tenant_id;
    answer.service_seconds =
        1e-9 * static_cast<double>(TraceRecorder::NowNs() - submit_ns);
    FlightRecorder::MaybeComplete(root_ctx.request_id, -1, answer);
    cb(answer);
    outstanding_scatters_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  auto state = std::make_shared<ScatterState>();
  state->query = query;
  state->routes = std::move(*routes);
  state->bucket = shards_[0]->cache().BucketFor(query.depart_seconds);
  state->source_owner = OwnerOfNode(query.source);
  state->target_owner = OwnerOfNode(query.target);
  state->caller = options;
  state->on_done = std::move(cb);
  state->submit_ns = submit_ns;
  state->scatter_ctx = span.ChildContext();

  // Unique segments in first-appearance order; every candidate keeps its
  // segment-index sequence so the merge composes in route order no matter
  // when (or where) each segment's cost arrives.
  std::unordered_map<std::vector<int>, size_t, SegmentHash> seg_index;
  state->route_segs.resize(state->routes.size());
  for (size_t r = 0; r < state->routes.size(); ++r) {
    std::vector<std::vector<int>> segs = CachedPathCostModel::SplitSegments(
        state->routes[r].edges, options_.server.cost.segment_edges);
    state->route_segs[r].reserve(segs.size());
    for (auto& seg : segs) {
      auto it = seg_index.find(seg);
      if (it == seg_index.end()) {
        it = seg_index.emplace(seg, state->segments.size()).first;
        state->segments.push_back(std::move(seg));
      }
      state->route_segs[r].push_back(it->second);
    }
  }

  const size_t n = state->segments.size();
  state->seg_costs.assign(
      n, Result<Histogram>(Status::Internal("shard: probe not applied")));
  state->seg_from_cache.assign(n, 0);
  state->seg_shard.assign(n, 0);
  state->seg_transport.assign(n, Status::OK());
  state->remaining.store(n, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.scattered;
    stats_.probes_sent += n;
  }
  if (n == 0) {
    // Every candidate was an empty edge path; merge degenerates to the
    // same per-candidate InvalidArgument a single node produces.
    Merge(state);
    return;
  }

  for (size_t i = 0; i < n; ++i) {
    const int owner = map_.OwnerOfSubpath(state->segments[i]);
    state->seg_shard[i] = owner;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.probes_per_shard[static_cast<size_t>(owner)];
    }
    if (shard_stopped_[owner].load(std::memory_order_acquire)) {
      RouteAnswer dead;
      dead.status = Status::Unavailable("shard: shard " +
                                        std::to_string(owner) + " is stopped");
      OnProbeDone(state, i, dead);
      continue;
    }
    SubmitOptions probe_options;
    probe_options.queue_budget_seconds = options.queue_budget_seconds;
    probe_options.priority = options.priority;
    probe_options.tenant_id = options.tenant_id;
    probe_options.shard = owner;
    probe_options.trace_parent = state->scatter_ctx;
    auto self = this;
    Status st = shards_[static_cast<size_t>(owner)]->SubmitProbe(
        state->segments[i], state->bucket,
        [self, state, i](const RouteAnswer& pa) {
          self->OnProbeDone(state, i, pa);
        },
        probe_options);
    if (!st.ok()) {
      // Shed at the shard's front door: the callback was not retained, so
      // completing the probe here keeps the exactly-once contract.
      RouteAnswer shed;
      shed.status = st;
      OnProbeDone(state, i, shed);
    }
  }
}

void ShardRouter::OnProbeDone(const std::shared_ptr<ScatterState>& state,
                              size_t index, const RouteAnswer& probe_answer) {
  if (options_.reorder_seed != 0) {
    // Test hook: hold every completion, then apply them in a seeded
    // shuffle order. The merged answer must not change — permutation
    // invariance, exercised end to end.
    {
      std::lock_guard<std::mutex> lock(state->reorder_mu);
      state->buffered.emplace_back(index, probe_answer);
      if (state->buffered.size() < state->segments.size()) return;
    }
    std::mt19937_64 rng(options_.reorder_seed ^
                        (0x9e3779b97f4a7c15ull * state->segments.size()));
    std::shuffle(state->buffered.begin(), state->buffered.end(), rng);
    for (const auto& entry : state->buffered) {
      ApplyProbe(state, entry.first, entry.second);
    }
    Merge(state);
    return;
  }
  ApplyProbe(state, index, probe_answer);
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    Merge(state);
  }
}

void ShardRouter::ApplyProbe(const std::shared_ptr<ScatterState>& state,
                             size_t index, const RouteAnswer& probe_answer) {
  if (!probe_answer.status.ok()) {
    if (IsTransportFailure(probe_answer.status.code())) {
      state->seg_transport[index] = Status::Unavailable(
          "shard: segment " + std::to_string(index) + " probe on shard " +
          std::to_string(state->seg_shard[index]) + " failed: " +
          probe_answer.status.message());
    } else {
      // The model had no answer for this segment; the owning candidates
      // are skipped in scoring, exactly like on a single node.
      state->seg_costs[index] = probe_answer.status;
    }
    return;
  }
  state->seg_costs[index] = probe_answer.probe_cost;
  state->seg_from_cache[index] = probe_answer.probe_from_cache ? 1 : 0;
}

void ShardRouter::Merge(const std::shared_ptr<ScatterState>& state) {
  const uint64_t merge_start = TraceRecorder::NowNs();
  const size_t n = state->segments.size();
  RouteAnswer answer;
  answer.client_request_id = state->caller.client_request_id;
  // Same normalization the serve tier applies, so a scatter-merged answer
  // carries the tenant exactly like a forwarded one would.
  answer.tenant_id = state->caller.tenant_id.empty() ? "default"
                                                     : state->caller.tenant_id;

  size_t lost = 0;
  std::string first_loss;
  for (size_t i = 0; i < n; ++i) {
    if (!state->seg_transport[i].ok()) {
      if (lost == 0) first_loss = state->seg_transport[i].message();
      ++lost;
    }
  }

  if (lost > 0) {
    // Typed partial-result error: some probes never got a real answer, so
    // no candidate can be scored honestly. Never degrade silently.
    answer.status = Status::Unavailable(
        "shard: partial scatter result: " + std::to_string(lost) + " of " +
        std::to_string(n) + " segment probes unavailable (" + first_loss +
        ")");
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.merges;
    ++stats_.partial_errors;
    stats_.probe_transport_failures += lost;
  } else {
    const int result_bins = options_.server.cost.result_bins;
    std::vector<Result<Histogram>> costs;
    costs.reserve(state->routes.size());
    for (size_t r = 0; r < state->routes.size(); ++r) {
      const std::vector<size_t>& idxs = state->route_segs[r];
      if (idxs.empty()) {
        // The exact status a single node's CachedPathCostModel::Query
        // returns for an empty edge path.
        costs.emplace_back(
            Status::InvalidArgument("CachedPathCostModel: empty path"));
        continue;
      }
      Status bad = Status::OK();
      std::vector<Histogram> parts;
      parts.reserve(idxs.size());
      for (size_t idx : idxs) {
        const Result<Histogram>& rc = state->seg_costs[idx];
        if (!rc.ok()) {
          // First failing segment in route order — the status a lazy
          // single-node evaluation would have stopped at.
          bad = rc.status();
          break;
        }
        parts.push_back(rc.value());
      }
      if (!bad.ok()) {
        costs.emplace_back(bad);
      } else {
        costs.emplace_back(CachedPathCostModel::ComposeSegments(
            std::move(parts), result_bins));
      }
    }
    ScoreCandidates(state->query, state->routes, costs, &answer);

    size_t replicated = 0;
    if (options_.replicate_boundary) {
      // Boundary heat transfer: segments this scatter had to *compute*
      // are, by construction, sub-paths of routes crossing a shard
      // boundary. Copy them into the caches of the shards owning the
      // query's endpoint regions so their forwarded (single-shard)
      // traffic finds the boundary warm. Cache entries are the exact
      // histograms those shards would compute themselves, so replication
      // can never change an answer — only its cost.
      const int replicas[2] = {state->source_owner, state->target_owner};
      for (size_t i = 0; i < n; ++i) {
        if (!state->seg_costs[i].ok() || state->seg_from_cache[i]) continue;
        for (int t : replicas) {
          if (t == state->seg_shard[i]) continue;
          if (shard_stopped_[t].load(std::memory_order_acquire)) continue;
          shards_[static_cast<size_t>(t)]->cache().Insert(
              state->segments[i], state->bucket, state->seg_costs[i].value());
          ++replicated;
        }
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.merges;
    stats_.replicated += replicated;
  }

  answer.service_seconds =
      1e-9 * static_cast<double>(TraceRecorder::NowNs() - state->submit_ns);
  TraceRecorder::Global().RecordSpan("shard/merge", merge_start,
                                     TraceRecorder::NowNs(),
                                     state->scatter_ctx,
                                     static_cast<int64_t>(n));
  // The scatter's canonical flight-recorder completion: sub-probe serve
  // completions were skipped (they are sub-operations of this request), so
  // a retained cross-shard request shows its whole tree — scatter, per-
  // shard probes, merge — under one request id, completed exactly once.
  FlightRecorder::MaybeComplete(state->scatter_ctx.request_id, -1, answer);
  state->on_done(answer);
  outstanding_scatters_.fetch_sub(1, std::memory_order_acq_rel);
}

bool ShardRouter::QueueFull() const {
  for (const auto& shard : shards_) {
    if (shard->QueueFull()) return true;
  }
  return false;
}

ServeStatsSnapshot ShardRouter::Stats() const { return ShardStats().Aggregate(); }

void ShardRouter::WaitIdle() const {
  for (;;) {
    for (const auto& shard : shards_) shard->WaitIdle();
    if (outstanding_scatters_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

ShardStatsSnapshot ShardRouter::ShardStats() const {
  ShardStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snap.router = stats_;
  }
  snap.shards.reserve(shards_.size());
  for (const auto& shard : shards_) snap.shards.push_back(shard->Stats());
  return snap;
}

HealthSnapshot ShardRouter::FleetHealth() const {
  if (health_.empty()) return HealthSnapshot{};
  std::vector<HealthSnapshot> members;
  members.reserve(health_.size());
  for (const auto& monitor : health_) members.push_back(monitor->Snapshot());
  return AggregateFleetHealth(members);
}

}  // namespace tsdm
