#ifndef TSDM_SHARD_SHARD_MAP_H_
#define TSDM_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

namespace tsdm {

/// Deterministic consistent-hash partition of the serving key space across
/// N shards — the membership half of the scatter-gather tier (the routing
/// half is ShardRouter). Two key kinds share one ring:
///
///   * region buckets (int64, packed grid cells of network coordinates) —
///     decide which shard owns a query whose source and target fall in one
///     region, and
///   * sub-paths (edge-id sequences, the PathCostCache unit) — decide which
///     shard answers a scatter probe for that segment's cost distribution.
///
/// The ring holds `vnodes` points per shard at positions
/// SplitMix64(shard * P1 ^ vnode * P2); a key hashes to a point and is
/// owned by the first ring point clockwise from it. Positions depend only
/// on (shard, vnode) — never on N — which yields the consistent-hashing
/// contract the conformance suite locks in: growing N -> N+1 only inserts
/// the new shard's points, so every key either keeps its owner or moves to
/// shard N. No key ever migrates between two pre-existing shards.
///
/// `generation` names the epoch of this map. It does not affect placement;
/// routers stamp it into stats/metrics so a future resharding protocol
/// (hand-off between generations) can tell stale placements from current
/// ones. Immutable after construction, hence freely shared across threads.
class ShardMap {
 public:
  struct Options {
    int num_shards = 1;   ///< shards on the ring (clamped to >= 1)
    int vnodes = 32;      ///< ring points per shard (clamped to >= 1)
    uint64_t generation = 1;  ///< epoch of this placement
  };

  ShardMap() : ShardMap(Options()) {}
  explicit ShardMap(Options options);

  int num_shards() const { return options_.num_shards; }
  int vnodes() const { return options_.vnodes; }
  uint64_t generation() const { return options_.generation; }

  /// Owner shard of an already-hashed key (ring walk only).
  int OwnerOfHash(uint64_t hash) const;

  /// Owner shard of a region bucket (RegionBucket of a router).
  int OwnerOfBucket(int64_t bucket) const {
    return OwnerOfHash(Mix64(static_cast<uint64_t>(bucket)));
  }

  /// Owner shard of a sub-path (PathCostCache key granularity).
  int OwnerOfSubpath(const std::vector<int>& edges) const {
    return OwnerOfHash(HashSubpath(edges));
  }

  /// FNV-1a over the edge ids — the stable sub-path fingerprint. Matches
  /// the hashing spec documented in README so external tooling can predict
  /// placement.
  static uint64_t HashSubpath(const std::vector<int>& edges);

  /// SplitMix64 finalizer: the avalanche everything on the ring runs
  /// through.
  static uint64_t Mix64(uint64_t x);

 private:
  struct Point {
    uint64_t position = 0;
    int shard = 0;
  };

  Options options_;
  std::vector<Point> ring_;  ///< sorted by position
};

}  // namespace tsdm

#endif  // TSDM_SHARD_SHARD_MAP_H_
