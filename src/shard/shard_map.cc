#include "src/shard/shard_map.h"

#include <algorithm>

namespace tsdm {

namespace {

// Distinct odd multipliers keep shard and vnode contributions from
// cancelling before the finalizer avalanches them.
constexpr uint64_t kShardSalt = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kVnodeSalt = 0xbf58476d1ce4e5b9ull;

}  // namespace

uint64_t ShardMap::Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t ShardMap::HashSubpath(const std::vector<int>& edges) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (int e : edges) {
    h ^= static_cast<uint64_t>(e) + 1;
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return Mix64(h);
}

ShardMap::ShardMap(Options options) : options_(options) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.vnodes = std::max(1, options_.vnodes);
  ring_.reserve(static_cast<size_t>(options_.num_shards) *
                static_cast<size_t>(options_.vnodes));
  for (int s = 0; s < options_.num_shards; ++s) {
    for (int v = 0; v < options_.vnodes; ++v) {
      Point p;
      p.position = Mix64(static_cast<uint64_t>(s) * kShardSalt ^
                         static_cast<uint64_t>(v) * kVnodeSalt);
      p.shard = s;
      ring_.push_back(p);
    }
  }
  // Sort by position; break the (astronomically unlikely) position tie by
  // shard so the ring order — and therefore ownership — is fully
  // deterministic, never dependent on sort stability.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.position != b.position) return a.position < b.position;
    return a.shard < b.shard;
  });
}

int ShardMap::OwnerOfHash(uint64_t hash) const {
  // First ring point at or clockwise of the key; wrap to the first point.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const Point& p, uint64_t h) { return p.position < h; });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

}  // namespace tsdm
