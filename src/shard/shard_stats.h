#ifndef TSDM_SHARD_SHARD_STATS_H_
#define TSDM_SHARD_SHARD_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/health.h"
#include "src/serve/serve_stats.h"

namespace tsdm {

/// Routing-tier counters of one ShardRouter — what happened *above* the
/// per-shard QueryServers: how queries were routed, how scatters fared,
/// and how much cache heat crossed shard boundaries.
struct ShardRouterStats {
  int num_shards = 0;
  uint64_t generation = 0;  ///< ShardMap epoch the counters belong to

  uint64_t forwarded = 0;  ///< single-shard queries pinned to their owner
  uint64_t scattered = 0;  ///< cross-shard queries decomposed into probes
  uint64_t probes_sent = 0;           ///< segment cost probes issued
  uint64_t probe_transport_failures = 0;  ///< probes lost to a dead/full shard
  uint64_t merges = 0;            ///< scatter answers assembled
  uint64_t partial_errors = 0;    ///< scatters answered Unavailable (typed)
  uint64_t replicated = 0;        ///< boundary cache entries copied across
  uint64_t enumeration_failures = 0;  ///< scatters dead before probing

  /// Per-shard routing attribution (index = shard id): queries forwarded
  /// to / probes served by each shard, so imbalance is visible per fleet.
  std::vector<uint64_t> forwarded_per_shard;
  std::vector<uint64_t> probes_per_shard;
};

/// The full observable state of a sharded serving fleet: the router's own
/// counters plus every member shard's ServeStatsSnapshot.
struct ShardStatsSnapshot {
  ShardRouterStats router;
  std::vector<ServeStatsSnapshot> shards;

  /// Fleet-level serve view: counters summed, latency histograms merged
  /// bin-wise — the shape QueryService::Stats() promises a shard-oblivious
  /// caller (depths/sizes sum; workers sum; max_batch is the fleet max).
  ServeStatsSnapshot Aggregate() const {
    ServeStatsSnapshot total;
    for (const ServeStatsSnapshot& s : shards) {
      total.submitted += s.submitted;
      total.admitted += s.admitted;
      total.shed_capacity += s.shed_capacity;
      total.shed_expired += s.shed_expired;
      total.shed_closed += s.shed_closed;
      total.shed_evicted += s.shed_evicted;
      total.queue_depth += s.queue_depth;
      total.batches += s.batches;
      total.batched_requests += s.batched_requests;
      if (s.max_batch > total.max_batch) total.max_batch = s.max_batch;
      total.cache_hits += s.cache_hits;
      total.cache_misses += s.cache_misses;
      total.cache_evictions += s.cache_evictions;
      total.cache_size += s.cache_size;
      total.completed += s.completed;
      total.failed += s.failed;
      total.workers += s.workers;
      total.scale_events += s.scale_events;
      total.queue_latency.Merge(s.queue_latency);
      total.e2e_latency.Merge(s.e2e_latency);
      total.stage_queue.Merge(s.stage_queue);
      total.stage_batch.Merge(s.stage_batch);
      total.stage_cache.Merge(s.stage_cache);
      total.stage_exec.Merge(s.stage_exec);
      MergeTenantStats(&total.tenants, s.tenants);
    }
    return total;
  }
};

/// Collapses per-shard health verdicts into one fleet view: the state is
/// the worst member state, burn rate and offender share are the fleet
/// maxima (an SLO is burning wherever it burns fastest), anomaly and
/// sample counts sum, and each member's metric verdicts appear prefixed
/// "s<i>/" so a degraded fleet still says *which* shard and metric
/// tripped.
inline HealthSnapshot AggregateFleetHealth(
    const std::vector<HealthSnapshot>& members) {
  HealthSnapshot fleet;
  for (size_t i = 0; i < members.size(); ++i) {
    const HealthSnapshot& m = members[i];
    if (static_cast<int>(m.state) > static_cast<int>(fleet.state)) {
      fleet.state = m.state;
    }
    fleet.samples += m.samples;
    fleet.anomalies_total += m.anomalies_total;
    fleet.slo_objective_seconds = m.slo_objective_seconds;
    fleet.violation_fraction =
        std::max(fleet.violation_fraction, m.violation_fraction);
    if (m.burn_rate > fleet.burn_rate) fleet.burn_rate = m.burn_rate;
    if (m.top_offender_share > fleet.top_offender_share) {
      fleet.top_offender_share = m.top_offender_share;
      fleet.top_offender = "s" + std::to_string(i) + "/" + m.top_offender;
    }
    for (const MetricVerdict& v : m.metrics) {
      MetricVerdict prefixed = v;
      prefixed.name = "s" + std::to_string(i) + "/" + v.name;
      fleet.metrics.push_back(std::move(prefixed));
    }
  }
  return fleet;
}

}  // namespace tsdm

#endif  // TSDM_SHARD_SHARD_STATS_H_
