#include "src/serve/request_queue.h"

#include <chrono>
#include <utility>

#include "src/obs/trace.h"

namespace tsdm {

namespace {

/// Fires a request's callback with a shed/drain answer. The lock must NOT
/// be held: callbacks are user code.
void AnswerShed(const ServeRequest& req, Status status) {
  if (!req.on_done) return;
  RouteAnswer answer;
  answer.status = std::move(status);
  answer.queue_seconds =
      1e-9 * static_cast<double>(TraceRecorder::NowNs() - req.enqueue_ns);
  req.on_done(answer);
}

bool Expired(const ServeRequest& req, uint64_t now_ns) {
  if (req.queue_budget_seconds <= 0.0) return false;
  return static_cast<double>(now_ns - req.enqueue_ns) >
         req.queue_budget_seconds * 1e9;
}

}  // namespace

Status RequestQueue::Push(ServeRequest req) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (closed_) {
      ++stats_.shed_closed;
      return Status::FailedPrecondition("serve: queue closed");
    }
    if (queue_.size() >= options_.capacity) {
      ++stats_.shed_capacity;
      return Status::ResourceExhausted("serve: request queue at capacity");
    }
    queue_.push_back(std::move(req));
    ++stats_.admitted;
    stats_.depth = queue_.size();
  }
  available_.notify_one();
  return Status::OK();
}

size_t RequestQueue::PopBatch(uint64_t now_ns, size_t max_n,
                              std::vector<ServeRequest>* out) {
  std::vector<ServeRequest> expired;
  size_t delivered = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (delivered < max_n && !queue_.empty()) {
      ServeRequest req = std::move(queue_.front());
      queue_.pop_front();
      if (Expired(req, now_ns)) {
        ++stats_.shed_expired;
        expired.push_back(std::move(req));
        continue;
      }
      out->push_back(std::move(req));
      ++delivered;
    }
    stats_.depth = queue_.size();
  }
  for (const auto& req : expired) {
    AnswerShed(req, Status::ResourceExhausted(
                        "serve: queueing budget exceeded, request shed"));
  }
  return delivered;
}

bool RequestQueue::WaitForWork(double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                      [this] { return closed_ || !queue_.empty(); });
  return !queue_.empty();
}

void RequestQueue::Close() {
  std::deque<ServeRequest> drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    drained.swap(queue_);
    stats_.shed_closed += drained.size();
    stats_.depth = 0;
  }
  available_.notify_all();
  for (const auto& req : drained) {
    AnswerShed(req, Status::FailedPrecondition("serve: queue closed"));
  }
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return closed_;
}

RequestQueue::Stats RequestQueue::GetStats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tsdm
