#include "src/serve/request_queue.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace tsdm {

namespace {

/// Fires a request's callback with a shed/drain answer and closes the
/// request's trace tree with a terminal `serve/shed` span (arg = status
/// code, tenant attribute attached), so an admitted-then-shed request is
/// visible in the trace instead of just vanishing. The lock must NOT be
/// held: callbacks are user code.
void AnswerShed(const ServeRequest& req, Status status) {
  const uint64_t now_ns = TraceRecorder::NowNs();
  TraceRecorder::Global().RecordSpan("serve/shed", req.enqueue_ns, now_ns,
                                     req.trace,
                                     static_cast<int64_t>(status.code()),
                                     req.tenant);
  RouteAnswer answer;
  answer.status = std::move(status);
  answer.client_request_id = req.client_request_id;
  answer.tenant_id = req.tenant;
  answer.queue_seconds = 1e-9 * static_cast<double>(now_ns - req.enqueue_ns);
  answer.stages.queue_ns = now_ns >= req.enqueue_ns
                               ? now_ns - req.enqueue_ns
                               : 0;  // all of a shed request's time is queue
  // Flight-recorder completion: expired/drained/displaced requests are
  // exactly the tail evidence retroactive retention exists for. Probes are
  // excluded — their caller's completion is the shard router's merge.
  if (req.probe_edges.empty()) {
    FlightRecorder::MaybeComplete(req.trace.request_id, req.shard, answer);
  }
  if (req.on_done) req.on_done(answer);
}

bool Expired(const ServeRequest& req, uint64_t now_ns) {
  if (req.queue_budget_seconds <= 0.0) return false;
  return static_cast<double>(now_ns - req.enqueue_ns) >
         req.queue_budget_seconds * 1e9;
}

int ClampPriority(int priority) {
  return std::clamp(priority, 0, RequestQueue::kPriorityClasses - 1);
}

}  // namespace

RequestQueue::RequestQueue(Options options) : options_(std::move(options)) {
  options_.capacity = std::max<size_t>(1, options_.capacity);
  options_.drr_quantum = std::max(1e-6, options_.drr_quantum);
  options_.default_class.weight = std::max(1e-6, options_.default_class.weight);
  for (auto& [name, cls] : options_.tenants) {
    (void)name;
    cls.weight = std::max(1e-6, cls.weight);
  }
}

RequestQueue::Tenant* RequestQueue::TenantFor(const std::string& name) {
  auto it = tenant_index_.find(name);
  if (it != tenant_index_.end()) return tenants_[it->second].get();
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  auto cls = options_.tenants.find(name);
  tenant->cls =
      cls != options_.tenants.end() ? cls->second : options_.default_class;
  tenant_index_[name] = tenants_.size();
  tenants_.push_back(std::move(tenant));
  return tenants_.back().get();
}

ServeRequest RequestQueue::PopHighest(Tenant* t) {
  for (int c = kPriorityClasses - 1; c >= 0; --c) {
    if (t->buckets[c].empty()) continue;
    ServeRequest req = std::move(t->buckets[c].front());
    t->buckets[c].pop_front();
    --t->depth;
    --t->stats.depth;
    --class_depth_[c];
    --total_depth_;
    return req;
  }
  // Unreachable while the depth bookkeeping is consistent.
  return ServeRequest{};
}

Status RequestQueue::Push(ServeRequest req) {
  req.priority = ClampPriority(req.priority);
  // Unattributed requests belong to the reserved "default" tenant — every
  // request is owned by exactly one tenant, so per-tenant shed/admission
  // counters always sum to the globals.
  if (req.tenant.empty()) req.tenant = "default";
  ServeRequest victim;
  bool have_victim = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Tenant* tenant = TenantFor(req.tenant);
    ++stats_.submitted;
    ++tenant->stats.submitted;
    if (closed_) {
      ++stats_.shed_closed;
      ++tenant->stats.shed_closed;
      return Status::FailedPrecondition("serve: queue closed");
    }
    if (tenant->cls.quota > 0 && tenant->depth >= tenant->cls.quota) {
      ++stats_.shed_capacity;
      ++tenant->stats.shed_capacity;
      return Status::ResourceExhausted("serve: tenant '" + req.tenant +
                                       "' at quota");
    }
    if (total_depth_ >= options_.capacity) {
      // Overload: shed lowest priority first. If a strictly lower class
      // than the arrival has queued work, displace its newest request (the
      // one with the least sunk waiting time) from the deepest tenant —
      // the hog pays first. Otherwise the arrival itself is shed.
      int victim_class = -1;
      for (int c = 0; c < req.priority; ++c) {
        if (class_depth_[c] > 0) {
          victim_class = c;
          break;
        }
      }
      if (victim_class < 0) {
        ++stats_.shed_capacity;
        ++tenant->stats.shed_capacity;
        return Status::ResourceExhausted("serve: request queue at capacity");
      }
      Tenant* deepest = nullptr;
      for (auto& t : tenants_) {
        if (t->buckets[victim_class].empty()) continue;
        if (deepest == nullptr || t->depth > deepest->depth) deepest = t.get();
      }
      victim = std::move(deepest->buckets[victim_class].back());
      deepest->buckets[victim_class].pop_back();
      --deepest->depth;
      --deepest->stats.depth;
      --class_depth_[victim_class];
      --total_depth_;
      ++stats_.shed_evicted;
      ++deepest->stats.shed_evicted;
      have_victim = true;
    }
    const int cls = req.priority;
    tenant->buckets[cls].push_back(std::move(req));
    ++tenant->depth;
    ++tenant->stats.depth;
    ++class_depth_[cls];
    ++total_depth_;
    stats_.depth = total_depth_;
    ++stats_.admitted;
    ++tenant->stats.admitted;
  }
  available_.notify_one();
  if (have_victim) {
    AnswerShed(victim,
               Status::ResourceExhausted(
                   "serve: displaced by a higher-priority request"));
  }
  return Status::OK();
}

size_t RequestQueue::PopBatch(uint64_t now_ns, size_t max_n,
                              std::vector<ServeRequest>* out) {
  std::vector<ServeRequest> expired;
  size_t delivered = 0;
  const size_t first_new = out->size();
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Deficit round-robin: each sweep credits every backlogged tenant
    // quantum * weight and drains while its deficit covers unit-cost pops.
    // Sweeps repeat until the request budget or the backlog is exhausted —
    // deficits strictly grow for backlogged tenants each sweep, so the
    // loop always progresses.
    while (delivered < max_n && total_depth_ > 0) {
      const size_t n = tenants_.size();
      for (size_t i = 0; i < n && delivered < max_n && total_depth_ > 0;
           ++i) {
        Tenant& t = *tenants_[(rr_start_ + i) % n];
        if (t.depth == 0) {
          t.deficit = 0.0;
          continue;
        }
        t.deficit = std::min(t.deficit + options_.drr_quantum * t.cls.weight,
                             options_.drr_quantum * t.cls.weight +
                                 static_cast<double>(t.depth));
        while (t.deficit >= 1.0 && t.depth > 0 && delivered < max_n) {
          ServeRequest req = PopHighest(&t);
          if (Expired(req, now_ns)) {
            // Expiry consumes no deficit: the tenant should not lose its
            // turn to requests nobody will be answered for.
            ++stats_.shed_expired;
            ++t.stats.shed_expired;
            expired.push_back(std::move(req));
            continue;
          }
          t.deficit -= 1.0;
          ++t.stats.popped;
          req.dequeue_ns = now_ns;
          out->push_back(std::move(req));
          ++delivered;
        }
      }
      if (n > 0) rr_start_ = (rr_start_ + 1) % n;
    }
    stats_.depth = total_depth_;
  }
  // Each delivered request's queue wait is over: record it retrospectively
  // as a child of the request's submit span (outside the lock — span
  // recording may flush to the trace ring).
  for (size_t i = first_new; i < out->size(); ++i) {
    const ServeRequest& req = (*out)[i];
    TraceRecorder::Global().RecordSpan("serve/queue_wait", req.enqueue_ns,
                                       now_ns, req.trace,
                                       static_cast<int64_t>(req.id),
                                       req.tenant);
  }
  for (const auto& req : expired) {
    AnswerShed(req, Status::ResourceExhausted(
                        "serve: queueing budget exceeded, request shed"));
  }
  return delivered;
}

bool RequestQueue::WaitForWork(double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                      [this] { return closed_ || total_depth_ > 0; });
  return total_depth_ > 0;
}

void RequestQueue::Close() {
  std::vector<ServeRequest> drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    for (auto& t : tenants_) {
      for (int c = kPriorityClasses - 1; c >= 0; --c) {
        for (auto& req : t->buckets[c]) {
          ++stats_.shed_closed;
          ++t->stats.shed_closed;
          drained.push_back(std::move(req));
        }
        t->buckets[c].clear();
      }
      t->depth = 0;
      t->stats.depth = 0;
      t->deficit = 0.0;
    }
    class_depth_.fill(0);
    total_depth_ = 0;
    stats_.depth = 0;
  }
  available_.notify_all();
  for (const auto& req : drained) {
    AnswerShed(req, Status::FailedPrecondition("serve: queue closed"));
  }
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return closed_;
}

RequestQueue::Stats RequestQueue::GetStats() const {
  std::unique_lock<std::mutex> lock(mu_);
  Stats out = stats_;
  out.depth = total_depth_;
  out.tenants.reserve(tenant_index_.size());
  for (const auto& [name, slot] : tenant_index_) {
    out.tenants.emplace_back(name, tenants_[slot]->stats);
  }
  return out;
}

}  // namespace tsdm
