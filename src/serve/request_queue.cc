#include "src/serve/request_queue.h"

#include <chrono>
#include <utility>

#include "src/obs/trace.h"

namespace tsdm {

namespace {

/// Fires a request's callback with a shed/drain answer and closes the
/// request's trace tree with a terminal `serve/shed` span (arg = status
/// code), so an admitted-then-shed request is visible in the trace instead
/// of just vanishing. The lock must NOT be held: callbacks are user code.
void AnswerShed(const ServeRequest& req, Status status) {
  const uint64_t now_ns = TraceRecorder::NowNs();
  TraceRecorder::Global().RecordSpan("serve/shed", req.enqueue_ns, now_ns,
                                     req.trace,
                                     static_cast<int64_t>(status.code()));
  if (!req.on_done) return;
  RouteAnswer answer;
  answer.status = std::move(status);
  answer.client_request_id = req.client_request_id;
  answer.queue_seconds = 1e-9 * static_cast<double>(now_ns - req.enqueue_ns);
  answer.stages.queue_ns = now_ns >= req.enqueue_ns
                               ? now_ns - req.enqueue_ns
                               : 0;  // all of a shed request's time is queue
  req.on_done(answer);
}

bool Expired(const ServeRequest& req, uint64_t now_ns) {
  if (req.queue_budget_seconds <= 0.0) return false;
  return static_cast<double>(now_ns - req.enqueue_ns) >
         req.queue_budget_seconds * 1e9;
}

}  // namespace

Status RequestQueue::Push(ServeRequest req) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (closed_) {
      ++stats_.shed_closed;
      return Status::FailedPrecondition("serve: queue closed");
    }
    if (queue_.size() >= options_.capacity) {
      ++stats_.shed_capacity;
      return Status::ResourceExhausted("serve: request queue at capacity");
    }
    queue_.push_back(std::move(req));
    ++stats_.admitted;
    stats_.depth = queue_.size();
  }
  available_.notify_one();
  return Status::OK();
}

size_t RequestQueue::PopBatch(uint64_t now_ns, size_t max_n,
                              std::vector<ServeRequest>* out) {
  std::vector<ServeRequest> expired;
  size_t delivered = 0;
  const size_t first_new = out->size();
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (delivered < max_n && !queue_.empty()) {
      ServeRequest req = std::move(queue_.front());
      queue_.pop_front();
      if (Expired(req, now_ns)) {
        ++stats_.shed_expired;
        expired.push_back(std::move(req));
        continue;
      }
      req.dequeue_ns = now_ns;
      out->push_back(std::move(req));
      ++delivered;
    }
    stats_.depth = queue_.size();
  }
  // Each delivered request's queue wait is over: record it retrospectively
  // as a child of the request's submit span (outside the lock — span
  // recording may flush to the trace ring).
  for (size_t i = first_new; i < out->size(); ++i) {
    const ServeRequest& req = (*out)[i];
    TraceRecorder::Global().RecordSpan("serve/queue_wait", req.enqueue_ns,
                                       now_ns, req.trace,
                                       static_cast<int64_t>(req.id));
  }
  for (const auto& req : expired) {
    AnswerShed(req, Status::ResourceExhausted(
                        "serve: queueing budget exceeded, request shed"));
  }
  return delivered;
}

bool RequestQueue::WaitForWork(double timeout_seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  available_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                      [this] { return closed_ || !queue_.empty(); });
  return !queue_.empty();
}

void RequestQueue::Close() {
  std::deque<ServeRequest> drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    drained.swap(queue_);
    stats_.shed_closed += drained.size();
    stats_.depth = 0;
  }
  available_.notify_all();
  for (const auto& req : drained) {
    AnswerShed(req, Status::FailedPrecondition("serve: queue closed"));
  }
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> lock(mu_);
  return closed_;
}

RequestQueue::Stats RequestQueue::GetStats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tsdm
