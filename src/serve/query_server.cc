#include "src/serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

namespace {

std::unique_ptr<AutoscalePolicy> MakeAutoscalePolicy(
    const QueryServer::Options& options) {
  if (options.autoscale_policy == QueryServer::AutoscalePolicyKind::kForecast) {
    return std::make_unique<StreamForecastPolicy>(options.forecast);
  }
  // nullptr lets the controller fall back to its ReactivePolicy default.
  return nullptr;
}

}  // namespace

QueryServer::QueryServer(const RoadNetwork* network, PathCostModel base_model,
                         Options options)
    : network_(network),
      options_(options),
      cache_(options.cache),
      cost_model_(std::move(base_model), &cache_, options.cost),
      routes_(network, options.route_cache_entries),
      queue_(options.queue),
      pool_(std::max(1, options.initial_workers)),
      batcher_(options.batch),
      controller_(&pool_, MakeAutoscalePolicy(options), options.autoscale) {
  options_.route_cache_entries = std::max<size_t>(1, options_.route_cache_entries);
}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    return Status::FailedPrecondition("QueryServer: already started");
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  last_autoscale_ns_ = TraceRecorder::NowNs();
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  // Exactly one caller owns the shutdown: the lifecycle lock makes
  // concurrent Stops (owner thread + destructor, health hooks, the wire
  // front door) collapse to no-ops instead of a double join, and the
  // dispatcher handle moves out so the join itself runs unlocked —
  // Stats() and Submit() stay callable during the drain.
  std::thread dispatcher;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    // Closing first makes Submit reject new work and sheds whatever is
    // still queued; the dispatcher then flushes its pending batches to
    // the workers on its way out. Submit admits before Start too, so the
    // queue closes even when the server never started — the exactly-once
    // callback contract holds for those requests as well.
    queue_.Close();
    if (!started_) return;
    started_ = false;
    running_.store(false, std::memory_order_release);
    dispatcher = std::move(dispatcher_);
  }
  if (dispatcher.joinable()) dispatcher.join();
  pool_.Wait();
}

ServeRequest QueryServer::MakeRequest(
    RouteQuery query, std::function<void(const RouteAnswer&)> on_done,
    const SubmitOptions& options) {
  ServeRequest req;
  req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Root of this request's span tree; ids are 1-based because request_id 0
  // means "no request". Every later span — queue wait, batch wait, exec,
  // path-cost, shed — attaches under this root via req.trace. A caller
  // with its own root (the wire front door's `net/request`, the shard
  // router's `shard/scatter`) passes it as trace_parent and the submit
  // span becomes a child in that tree instead.
  const TraceContext root = options.trace_parent.ForRequest()
                                ? options.trace_parent
                                : TraceContext{req.id + 1, 0};
  TraceSpan span("serve/submit", root, static_cast<int64_t>(req.id));
  // Normalize here (not just in the queue) so the submit span, the shed
  // answer, and the worker-side accounting all see the same tenant name.
  req.tenant = options.tenant_id.empty() ? "default" : options.tenant_id;
  span.SetTenant(req.tenant);
  req.trace = span.ChildContext();
  req.query = query;
  req.enqueue_ns = TraceRecorder::NowNs();
  req.queue_budget_seconds = options.queue_budget_seconds;
  req.priority = options.priority;
  req.shard = options.shard;
  req.client_request_id = options.client_request_id;
  req.on_done = std::move(on_done);
  return req;
}

Status QueryServer::Submit(RouteQuery query,
                           std::function<void(const RouteAnswer&)> on_done,
                           const SubmitOptions& options) {
  ServeRequest req = MakeRequest(std::move(query), std::move(on_done), options);
  if (options_.submit_observer) {
    options_.submit_observer(req.query, options, req.enqueue_ns);
  }
  // A push-shed returns non-OK *without* invoking on_done, so its terminal
  // answer exists nowhere — synthesize one for the flight recorder. The
  // identity must be captured before the move into Push.
  uint64_t flight_rid = 0;
  uint64_t flight_client_id = 0;
  std::string flight_tenant;
  const bool flight = FlightRecorder::Enabled();
  if (flight) {
    flight_rid = req.trace.request_id;
    flight_client_id = req.client_request_id;
    flight_tenant = req.tenant;
  }
  Status st = queue_.Push(std::move(req));
  if (flight && !st.ok()) {
    RouteAnswer shed;
    shed.status = st;
    shed.client_request_id = flight_client_id;
    shed.tenant_id = std::move(flight_tenant);
    FlightRecorder::MaybeComplete(flight_rid, options.shard, shed);
  }
  return st;
}

Status QueryServer::SubmitProbe(std::vector<int> segment, int bucket,
                                std::function<void(const RouteAnswer&)> on_done,
                                const SubmitOptions& options) {
  if (segment.empty()) {
    return Status::InvalidArgument("serve: probe segment is empty");
  }
  ServeRequest req = MakeRequest(RouteQuery{}, std::move(on_done), options);
  req.probe_edges = std::move(segment);
  req.probe_bucket = bucket;
  return queue_.Push(std::move(req));
}

bool QueryServer::QueueFull() const {
  return queue_.GetStats().depth >= options_.queue.capacity;
}

void QueryServer::WaitIdle() const {
  for (;;) {
    RequestQueue::Stats qs = queue_.GetStats();
    // Every terminal fate of an *admitted* request: answered (completed /
    // failed), expired in queue, drained at close, or displaced by a
    // higher-priority arrival. Eviction must be counted — the victim was
    // admitted, so omitting shed_evicted would make this barrier hang.
    uint64_t terminal = completed_.load(std::memory_order_acquire) +
                        failed_.load(std::memory_order_acquire) +
                        qs.shed_expired + qs.shed_closed + qs.shed_evicted;
    if (terminal >= qs.admitted &&
        in_flight_batches_.load(std::memory_order_acquire) == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

ServeStatsSnapshot QueryServer::Stats() const {
  ServeStatsSnapshot snap;
  RequestQueue::Stats qs = queue_.GetStats();
  snap.submitted = qs.submitted;
  snap.admitted = qs.admitted;
  snap.shed_capacity = qs.shed_capacity;
  snap.shed_expired = qs.shed_expired;
  snap.shed_closed = qs.shed_closed;
  snap.shed_evicted = qs.shed_evicted;
  snap.queue_depth = qs.depth;
  // Per-tenant view: admission/shed accounting from the queue, completion
  // counts and latency from the worker side, matched by tenant name. The
  // queue's list is already sorted (it iterates a std::map), so feeding it
  // through MergeTenantStats keeps snap.tenants sorted too.
  {
    std::vector<TenantServeStats> queue_side;
    queue_side.reserve(qs.tenants.size());
    for (const auto& [name, ts] : qs.tenants) {
      TenantServeStats t;
      t.tenant = name;
      t.submitted = ts.submitted;
      t.admitted = ts.admitted;
      t.shed_capacity = ts.shed_capacity;
      t.shed_expired = ts.shed_expired;
      t.shed_closed = ts.shed_closed;
      t.shed_evicted = ts.shed_evicted;
      t.queue_depth = ts.depth;
      queue_side.push_back(std::move(t));
    }
    MergeTenantStats(&snap.tenants, queue_side);
    std::vector<TenantServeStats> worker_side;
    {
      std::unique_lock<std::mutex> lock(metrics_mu_);
      worker_side.reserve(tenant_metrics_.size());
      for (const auto& [name, tm] : tenant_metrics_) {
        TenantServeStats t;
        t.tenant = name;
        t.completed = tm.completed;
        t.failed = tm.failed;
        t.e2e_latency = tm.e2e_latency;
        worker_side.push_back(std::move(t));
      }
    }
    MergeTenantStats(&snap.tenants, worker_side);
  }
  {
    std::unique_lock<std::mutex> lock(control_mu_);
    snap.batches = batcher_.stats().batches;
    snap.batched_requests = batcher_.stats().batched_requests;
    snap.max_batch = batcher_.stats().max_batch_seen;
    snap.scale_events = controller_.scale_events();
  }
  PathCostCache::Stats cs = cache_.GetStats();
  snap.cache_hits = cs.hits;
  snap.cache_misses = cs.misses;
  snap.cache_evictions = cs.evictions;
  snap.cache_size = cs.size;
  snap.completed = completed_.load(std::memory_order_acquire);
  snap.failed = failed_.load(std::memory_order_acquire);
  snap.workers = pool_.NumThreads();
  {
    std::unique_lock<std::mutex> lock(metrics_mu_);
    snap.queue_latency = queue_latency_;
    snap.e2e_latency = e2e_latency_;
    snap.stage_queue = stage_queue_;
    snap.stage_batch = stage_batch_;
    snap.stage_cache = stage_cache_;
    snap.stage_exec = stage_exec_;
  }
  return snap;
}

void QueryServer::DispatcherLoop() {
  std::vector<ServeRequest> popped;
  std::vector<std::vector<ServeRequest>> ready;
  const size_t pop_chunk = std::max<size_t>(1, options_.batch.max_batch) * 4;

  while (running_.load(std::memory_order_acquire)) {
    popped.clear();
    ready.clear();
    uint64_t now = TraceRecorder::NowNs();
    if (WorkersSaturated()) {
      // Workers are fully buffered: leave the backlog in the weighted-fair
      // queue, where deadlines expire, quotas bind, and higher-priority
      // arrivals can still displace it. Batches whose linger expired are
      // flushed regardless (their requests are already popped), and the
      // autoscale loop keeps observing arrivals — saturation is exactly
      // when it has something to say.
      {
        std::unique_lock<std::mutex> lock(control_mu_);
        batcher_.FlushExpired(now, &ready);
      }
      DispatchReady(&ready);
      MaybeAutoscale(now);
      std::unique_lock<std::mutex> lock(batch_done_mu_);
      batch_done_cv_.wait_for(
          lock, std::chrono::duration<double>(options_.idle_poll_seconds),
          [this] {
            return !WorkersSaturated() ||
                   !running_.load(std::memory_order_acquire);
          });
      continue;
    }
    size_t n = queue_.PopBatch(now, pop_chunk, &popped);
    {
      std::unique_lock<std::mutex> lock(control_mu_);
      for (auto& req : popped) batcher_.Add(std::move(req), &ready);
      batcher_.FlushExpired(now, &ready);
    }
    DispatchReady(&ready);
    MaybeAutoscale(now);
    if (n == 0) queue_.WaitForWork(options_.idle_poll_seconds);
  }

  // Shutdown drain: the queue is closed (Stop closed it before clearing
  // running_), so one final pass moves everything still pending through
  // the workers.
  popped.clear();
  ready.clear();
  uint64_t now = TraceRecorder::NowNs();
  queue_.PopBatch(now, static_cast<size_t>(-1), &popped);
  {
    std::unique_lock<std::mutex> lock(control_mu_);
    for (auto& req : popped) batcher_.Add(std::move(req), &ready);
    batcher_.FlushAll(&ready);
  }
  DispatchReady(&ready);
}

bool QueryServer::WorkersSaturated() const {
  const int limit = options_.max_batches_per_worker;
  if (limit <= 0) return false;
  return in_flight_batches_.load(std::memory_order_acquire) >=
         limit * pool_.NumThreads();
}

void QueryServer::DispatchReady(
    std::vector<std::vector<ServeRequest>>* ready) {
  for (auto& batch : *ready) {
    in_flight_batches_.fetch_add(1, std::memory_order_acq_rel);
    auto shared =
        std::make_shared<std::vector<ServeRequest>>(std::move(batch));
    pool_.Submit([this, shared] {
      ServeBatch(shared.get());
      in_flight_batches_.fetch_sub(1, std::memory_order_acq_rel);
      batch_done_cv_.notify_one();
    });
  }
  ready->clear();
}

void QueryServer::ServeBatch(std::vector<ServeRequest>* batch) {
  // The batch span carries the MicroBatcher's batch id as its arg; each
  // member request's batch_wait span carries the same id, so the exported
  // trace links a batch to the requests it amortized.
  const int64_t batch_id =
      batch->empty() ? 0 : static_cast<int64_t>(batch->front().batch_id);
  TraceSpan span("serve/batch", batch_id);
  for (const ServeRequest& req : *batch) ServeOne(req);
}

void QueryServer::ServeOne(const ServeRequest& req) {
  const uint64_t start_ns = TraceRecorder::NowNs();
  // The batching stage — dequeue to worker pickup — has no RAII scope (it
  // spans the dispatcher and the pool hand-off), so record it
  // retrospectively now that it just ended.
  if (req.dequeue_ns != 0) {
    TraceRecorder::Global().RecordSpan("serve/batch_wait", req.dequeue_ns,
                                       start_ns, req.trace,
                                       static_cast<int64_t>(req.batch_id));
  }
  TraceSpan span("serve/exec", req.trace, static_cast<int64_t>(req.id));
  span.SetTenant(req.tenant);
  const TraceContext exec_ctx = span.ChildContext();
  RouteAnswer answer;
  answer.client_request_id = req.client_request_id;
  answer.tenant_id = req.tenant;
  answer.queue_seconds =
      1e-9 * static_cast<double>(start_ns - req.enqueue_ns);

  // Time spent inside the path-cost layer (cache + base model), sampled
  // with the same clock the stage breakdown uses.
  uint64_t cache_ns = 0;

  const RouteQuery& q = req.query;
  if (!req.probe_edges.empty()) {
    // Scatter probe: the shard router asked for one segment's cost
    // distribution, not a route decision. Same cache + base-model path a
    // local query's segment would take, so a probed segment is
    // bitwise-identical to a locally computed one.
    const uint64_t cost_start_ns = TraceRecorder::NowNs();
    bool from_cache = false;
    Result<Histogram> seg =
        cost_model_.SegmentCost(req.probe_edges, req.probe_bucket, &from_cache);
    cache_ns = TraceRecorder::NowNs() - cost_start_ns;
    if (seg.ok()) {
      answer.probe_cost = std::move(seg).value();
      answer.probe_from_cache = from_cache;
    } else {
      answer.status = seg.status();
    }
  } else {
    Result<std::vector<Path>> routes =
        routes_.Get(q.source, q.target, q.k, exec_ctx);
    if (!routes.ok()) {
      answer.status = routes.status();
    } else {
      // Attach cost distributions through the sub-path cache (one clocked
      // section for all candidates — scoring below is exec time), then
      // pick via the shared scoring rule: on-time probability when a
      // deadline is set, mean cost otherwise.
      std::vector<Result<Histogram>> costs;
      costs.reserve(routes->size());
      const uint64_t cost_start_ns = TraceRecorder::NowNs();
      for (const Path& route : *routes) {
        costs.push_back(
            cost_model_.Query(route.edges, q.depart_seconds, exec_ctx));
      }
      cache_ns = TraceRecorder::NowNs() - cost_start_ns;
      ScoreCandidates(q, *routes, costs, &answer);
    }
  }

  const uint64_t end_ns = TraceRecorder::NowNs();
  answer.service_seconds = 1e-9 * static_cast<double>(end_ns - start_ns);
  // Critical-path attribution. All four components derive from the same
  // clock samples, so they telescope: queue + batch + cache + exec ==
  // end_ns - enqueue_ns exactly. Requests constructed outside the queue
  // path (dequeue_ns unset) attribute their whole wait to batch.
  const uint64_t dequeue_ns =
      (req.dequeue_ns >= req.enqueue_ns && req.dequeue_ns <= start_ns &&
       req.dequeue_ns != 0)
          ? req.dequeue_ns
          : req.enqueue_ns;
  answer.stages.queue_ns = dequeue_ns - req.enqueue_ns;
  answer.stages.batch_ns = start_ns - dequeue_ns;
  answer.stages.cache_ns = cache_ns;
  answer.stages.exec_ns = (end_ns - start_ns) - cache_ns;
  if (answer.status.ok()) {
    completed_.fetch_add(1, std::memory_order_acq_rel);
  } else {
    failed_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lock(metrics_mu_);
    const double e2e = 1e-9 * static_cast<double>(end_ns - req.enqueue_ns);
    queue_latency_.Add(answer.queue_seconds);
    e2e_latency_.Add(e2e);
    stage_queue_.Add(1e-9 * static_cast<double>(answer.stages.queue_ns));
    stage_batch_.Add(1e-9 * static_cast<double>(answer.stages.batch_ns));
    stage_cache_.Add(1e-9 * static_cast<double>(answer.stages.cache_ns));
    stage_exec_.Add(1e-9 * static_cast<double>(answer.stages.exec_ns));
    TenantWorkerStats& tm =
        tenant_metrics_[req.tenant.empty() ? "default" : req.tenant];
    if (answer.status.ok()) {
      ++tm.completed;
    } else {
      ++tm.failed;
    }
    tm.e2e_latency.Add(e2e);
  }
  // Flight-recorder completion: the terminal answer of every served
  // request, with its stage breakdown. Scatter probes are excluded — a
  // probe is a sub-operation of its caller's request, whose canonical
  // completion is the shard router's merge.
  if (req.probe_edges.empty()) {
    FlightRecorder::MaybeComplete(req.trace.request_id, req.shard, answer);
  }
  if (req.on_done) req.on_done(answer);
}

void QueryServer::MaybeAutoscale(uint64_t now_ns) {
  if (!options_.autoscale_enabled) return;
  const double interval_ns = options_.autoscale_interval_seconds * 1e9;
  if (static_cast<double>(now_ns - last_autoscale_ns_) < interval_ns) return;
  last_autoscale_ns_ = now_ns;
  // Demand = everything submitted, shed included: admission control must
  // not hide overload from the forecaster, or shedding would lock the
  // pool at its current size forever.
  uint64_t submitted = queue_.GetStats().submitted;
  double arrivals = static_cast<double>(submitted - last_submitted_);
  last_submitted_ = submitted;
  std::unique_lock<std::mutex> lock(control_mu_);
  controller_.OnInterval(arrivals);
}

}  // namespace tsdm
