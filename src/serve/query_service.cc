#include "src/serve/query_service.h"

namespace tsdm {

void ScoreCandidates(const RouteQuery& query, const std::vector<Path>& routes,
                     const std::vector<Result<Histogram>>& costs,
                     RouteAnswer* answer) {
  int best = -1;
  double best_score = 0.0;
  for (size_t i = 0; i < costs.size(); ++i) {
    if (!costs[i].ok()) continue;  // model has no coverage for this path
    ++answer->num_candidates;
    double score = query.arrival_deadline_seconds > 0.0
                       ? costs[i].value().Cdf(query.arrival_deadline_seconds)
                       : -costs[i].value().Mean();
    if (best < 0 || score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  if (best < 0) {
    answer->status =
        Status::NotFound("serve: no candidate route has a cost distribution");
    return;
  }
  const Histogram& best_cost = costs[static_cast<size_t>(best)].value();
  answer->route = routes[static_cast<size_t>(best)];
  answer->cost_mean_seconds = best_cost.Mean();
  answer->on_time_probability =
      query.arrival_deadline_seconds > 0.0
          ? best_cost.Cdf(query.arrival_deadline_seconds)
          : 0.0;
}

}  // namespace tsdm
