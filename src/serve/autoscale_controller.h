#ifndef TSDM_SERVE_AUTOSCALE_CONTROLLER_H_
#define TSDM_SERVE_AUTOSCALE_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/decision/scaling/autoscaler.h"
#include "src/stream/stream_stage.h"

namespace tsdm {

/// Trend-following autoscale policy over the *live* arrival stream: wraps
/// the streaming Holt forecaster (OnlineForecastStage) and provisions for
/// its `horizon`-step-ahead projection, level + horizon * trend. While a
/// surge is still ramping the trend term projects past the latest
/// observation, so capacity moves *before* the peak arrives — the
/// pre-scaling behavior the replay bench asserts (scale-up timestamp <
/// peak-arrival timestamp). ReactivePolicy, by contrast, can only chase
/// the peak after it has been observed.
///
/// Incremental contract: each Decide call absorbs the history samples it
/// has not seen yet (the controller appends exactly one per review
/// interval), so repeated Decide calls cost O(1) — no refitting over the
/// whole history like PredictivePolicy.
class StreamForecastPolicy : public AutoscalePolicy {
 public:
  struct Options {
    double alpha = 0.4;     ///< level smoothing (higher = faster tracking)
    double beta = 0.2;      ///< trend smoothing
    double headroom = 1.1;  ///< multiplier on the projected demand
  };

  StreamForecastPolicy() : StreamForecastPolicy(Options()) {}
  explicit StreamForecastPolicy(Options options);

  std::string Name() const override { return "stream-forecast"; }
  Result<ScalingDecision> Decide(const std::vector<double>& demand_history,
                                 int horizon) override;

 private:
  Options options_;
  OnlineForecastStage forecaster_;
  size_t absorbed_ = 0;  ///< prefix of the history already fed to the stage
};

/// Closes the MagicScaler loop ([6]): the serve loop's *observed* arrival
/// rate becomes the demand history an AutoscalePolicy forecasts over, and
/// the resulting capacity decision becomes an actual ThreadPool::Resize —
/// the decision/scaling layer finally scales something real instead of a
/// simulated trace.
///
/// Units: demand is requests per review interval; one worker is assumed to
/// serve `per_worker_capacity` requests per interval, so workers =
/// ceil(capacity / per_worker_capacity), clamped to [min_workers,
/// max_workers].
///
/// Driven from a single control thread (the serve dispatcher) — the same
/// restriction ThreadPool::Resize carries.
class AutoscaleController {
 public:
  struct Options {
    int min_workers = 1;
    int max_workers = 8;
    /// Requests one worker handles per review interval; calibrate from a
    /// measured per-request service time.
    double per_worker_capacity = 100.0;
    /// Review intervals the policy forecasts over.
    int horizon = 1;
    /// Demand history retained (oldest dropped beyond this).
    size_t max_history = 4096;
  };

  /// The pool must outlive the controller. `policy` defaults to
  /// ReactivePolicy when null — PredictivePolicy needs seasons of history
  /// that a fresh server does not have yet.
  AutoscaleController(ThreadPool* pool, std::unique_ptr<AutoscalePolicy> policy)
      : AutoscaleController(pool, std::move(policy), Options()) {}
  AutoscaleController(ThreadPool* pool,
                      std::unique_ptr<AutoscalePolicy> policy,
                      Options options);

  /// Records the arrivals observed over the last review interval, asks the
  /// policy for the next capacity, and resizes the pool if the clamped
  /// worker count changed. Returns the pool's (possibly new) worker count.
  int OnInterval(double arrivals);

  int workers() const { return pool_->NumThreads(); }
  int scale_events() const { return scale_events_; }
  /// Last capacity the policy asked for (pre-clamping), for observability.
  double last_capacity() const { return last_capacity_; }
  const std::vector<double>& history() const { return history_; }
  const Options& options() const { return options_; }

 private:
  ThreadPool* pool_;
  std::unique_ptr<AutoscalePolicy> policy_;
  Options options_;
  std::vector<double> history_;
  double last_capacity_ = 0.0;
  int scale_events_ = 0;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_AUTOSCALE_CONTROLLER_H_
