#ifndef TSDM_SERVE_ROUTE_CACHE_H_
#define TSDM_SERVE_ROUTE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// Bounded LRU of candidate-route enumerations per (source, target, k) —
/// the K-shortest computation is departure-time independent, so one Yen
/// run is shareable across every query of an OD pair. Extracted from
/// QueryServer so the shard router enumerates candidates through the
/// *identical* code path (same KShortestPaths call, same free-flow edge
/// cost, same trace span) — a precondition for sharded answers being
/// bitwise-equal to single-node ones.
///
/// Thread-safe: one mutex guards the LRU; the enumeration itself runs
/// unlocked, and a racing duplicate insert refreshes instead of doubling.
class RouteCache {
 public:
  /// The network must outlive the cache. `entries` is clamped to >= 1.
  RouteCache(const RoadNetwork* network, size_t entries);

  RouteCache(const RouteCache&) = delete;
  RouteCache& operator=(const RouteCache&) = delete;

  /// Candidate routes for (source, target, k). An LRU miss runs Yen's
  /// algorithm under a `serve/enumerate_routes` span attached to `ctx` —
  /// warm requests skip enumeration entirely and emit nothing.
  Result<std::vector<Path>> Get(int source, int target, int k,
                                const TraceContext& ctx);

  size_t size() const;

 private:
  struct Key {
    int source = 0;
    int target = 0;
    int k = 0;
    bool operator==(const Key& o) const {
      return source == o.source && target == o.target && k == o.k;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = static_cast<uint64_t>(key.source) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<uint64_t>(key.target) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(key.k) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  const RoadNetwork* network_;
  size_t entries_;
  mutable std::mutex mu_;
  std::list<std::pair<Key, std::vector<Path>>> lru_;
  std::unordered_map<Key, std::list<std::pair<Key, std::vector<Path>>>::iterator,
                     KeyHash>
      index_;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_ROUTE_CACHE_H_
