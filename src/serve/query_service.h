#ifndef TSDM_SERVE_QUERY_SERVICE_H_
#define TSDM_SERVE_QUERY_SERVICE_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/obs/trace.h"
#include "src/serve/request_queue.h"
#include "src/serve/serve_stats.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// Per-request submission knobs — the one submit surface shared by every
/// serving front door (a single QueryServer, the sharded ShardRouter, and
/// the wire front door all construct the same struct). Lives at namespace
/// scope so routers and servers share it; `QueryServer::SubmitOptions`
/// remains a valid spelling via a member alias.
struct SubmitOptions {
  /// Max queueing time before the request is shed at pop; <= 0 = none.
  double queue_budget_seconds = 0.25;
  /// Scheduling class, clamped to [0, RequestQueue::kPriorityClasses).
  /// Higher is more important: under overload the queue sheds the lowest
  /// occupied class first, and a higher-priority arrival may displace a
  /// queued lower-priority request. 0 = best-effort.
  int priority = 0;
  /// Workload tenant this request is accounted to ("" = the reserved
  /// "default" tenant). Tenants get their own weighted-fair sub-queue,
  /// quota, shed counters, latency histogram, `tsdm_serve_tenant_*`
  /// metric families, and span attribute; the id is echoed on every
  /// terminal answer as RouteAnswer::tenant_id.
  std::string tenant_id;
  /// Caller-assigned correlation id, echoed verbatim in
  /// RouteAnswer::client_request_id (0 = unset).
  uint64_t client_request_id = 0;
  /// Shard the routing tier pinned this request to (-1 = not routed).
  /// Set by ShardRouter when it forwards or probes so per-shard
  /// attribution survives into the serve layer; direct callers leave it.
  int shard = -1;
  /// When set (ForRequest()), the request's `serve/submit` span attaches
  /// under this context instead of rooting a new trace tree — how the
  /// socket layer links `net/read -> serve/submit -> net/write` and the
  /// shard router links `shard/scatter -> serve/submit` into one tree.
  TraceContext trace_parent;
};

/// The abstract serving front door: what a network layer (or any other
/// client) needs from "something that answers route queries" — admission-
/// controlled submission, a cheap overload probe, aggregate stats, and a
/// drain barrier. QueryServer implements it directly; ShardRouter
/// implements it by routing over N QueryServers, which is what makes the
/// socket server (and therefore NetClient) shard-oblivious.
class QueryService {
 public:
  virtual ~QueryService() = default;

  /// Admission control: OK means `on_done` will be called exactly once;
  /// a shed returns ResourceExhausted (queue full) or FailedPrecondition
  /// (stopped) immediately and `on_done` is NOT retained.
  virtual Status Submit(RouteQuery query,
                        std::function<void(const RouteAnswer&)> on_done,
                        const SubmitOptions& options) = 0;
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done) {
    return Submit(std::move(query), std::move(on_done), SubmitOptions());
  }

  /// True when the admission path is at capacity — the cheap socket-layer
  /// probe for shedding a wire request before its payload is even decoded.
  virtual bool QueueFull() const = 0;

  /// One coherent stats snapshot. For a router this is the fleet
  /// aggregate: counters summed, latency histograms merged bin-wise.
  virtual ServeStatsSnapshot Stats() const = 0;

  /// Blocks until every admitted request has reached a terminal state.
  virtual void WaitIdle() const = 0;
};

/// The one candidate-scoring rule of the serving tier, shared by the
/// single-node worker path and the shard router's scatter merge so both
/// produce bitwise-identical decisions. Fills the decision fields of
/// *answer (status, route, cost_mean_seconds, on_time_probability,
/// num_candidates) from candidate routes and their cost results:
/// score = P(arrival <= deadline) when a deadline is set, -mean cost
/// otherwise; candidates without a cost distribution are skipped;
/// NotFound when none scored. Tie-break is stable — strict `>` scanning
/// in candidate order, so the lowest-indexed best candidate wins and
/// no completion/merge order can change the answer.
void ScoreCandidates(const RouteQuery& query, const std::vector<Path>& routes,
                     const std::vector<Result<Histogram>>& costs,
                     RouteAnswer* answer);

}  // namespace tsdm

#endif  // TSDM_SERVE_QUERY_SERVICE_H_
