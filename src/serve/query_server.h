#ifndef TSDM_SERVE_QUERY_SERVER_H_
#define TSDM_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/serve/autoscale_controller.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/path_cost_cache.h"
#include "src/serve/query_service.h"
#include "src/serve/request_queue.h"
#include "src/serve/route_cache.h"
#include "src/serve/serve_stats.h"
#include "src/spatial/road_network.h"

namespace tsdm {

/// The serving front door for routing queries — the piece that turns the
/// decision layer from a library into a system:
///
///   clients --Submit--> RequestQueue --dispatcher--> MicroBatcher
///        --batches--> ThreadPool workers --> answer callbacks
///
/// Workers answer each query from two layers of memoization: a bounded
/// LRU of candidate route enumerations per (source, target, k) — the
/// K-shortest computation is departure-time independent — and the shared
/// PathCostCache of sub-path cost distributions (PACE-style reuse, [4]).
/// A warm query therefore costs two lookups plus a few convolutions where
/// a cold one pays Yen's algorithm plus full cost recomposition.
///
/// The dispatcher doubles as the autoscale control loop: every review
/// interval it feeds the observed arrival count into the
/// AutoscaleController, which forecasts demand and resizes the worker
/// pool within [min_workers, max_workers].
///
/// Thread-safety: Submit is safe from any number of producer threads.
/// Start/Stop/WaitIdle are for the owning (control) thread. Callbacks run
/// on worker threads (served), the dispatcher (expired in queue), or the
/// Stop caller (drained at shutdown) — exactly once per admitted request.
class QueryServer : public QueryService {
 public:
  /// Which AutoscalePolicy the dispatcher's control loop runs. Options
  /// must stay copyable, so the server owns policy construction from this
  /// tag instead of holding a unique_ptr in Options.
  enum class AutoscalePolicyKind {
    kReactive,  ///< provision the recent peak + headroom (chases surges)
    kForecast,  ///< StreamForecastPolicy: Holt trend projection (pre-scales)
  };

  struct Options {
    RequestQueue::Options queue;
    MicroBatcher::Options batch;
    PathCostCache::Options cache;
    CachedPathCostModel::Options cost;
    AutoscaleController::Options autoscale;
    AutoscalePolicyKind autoscale_policy = AutoscalePolicyKind::kReactive;
    /// Knobs for autoscale_policy == kForecast; ignored otherwise.
    StreamForecastPolicy::Options forecast;
    int initial_workers = 2;
    bool autoscale_enabled = true;
    double autoscale_interval_seconds = 0.05;
    /// Dispatcher block time while idle; bounds shutdown latency.
    double idle_poll_seconds = 0.001;
    /// Backpressure bound: the dispatcher stops popping the admission
    /// queue while `max_batches_per_worker * workers` batches are already
    /// in flight. Under overload this keeps the backlog *in* the
    /// weighted-fair queue — where deadlines expire, quotas bind, and
    /// higher-priority arrivals can displace it — instead of silently
    /// spilling into the worker pool's unbounded FIFO, which would undo
    /// every scheduling decision exactly when scheduling matters. The
    /// default keeps a few batches of slack per worker so the dispatcher's
    /// wake-up latency never starves a worker between refills.
    /// <= 0 disables backpressure (pre-multi-tenant behavior).
    int max_batches_per_worker = 4;
    /// Candidate-route LRU entries ((source, target, k) keys).
    size_t route_cache_entries = 512;
    /// Called synchronously inside Submit for every route query, before
    /// admission control — the tap the workload LoadTraceRecorder hangs
    /// off to capture live traffic (sheds included, so a replay reproduces
    /// the offered load, not just the served part). Must be thread-safe;
    /// keep it cheap, it runs on the submitter's thread.
    std::function<void(const RouteQuery&, const SubmitOptions&,
                       uint64_t enqueue_ns)>
        submit_observer;
  };

  /// The shared submit surface lives at namespace scope (query_service.h)
  /// so routers and servers construct the same struct; this alias keeps
  /// the established `QueryServer::SubmitOptions` spelling valid.
  using SubmitOptions = tsdm::SubmitOptions;

  /// The network must outlive the server. `base_model` computes sub-path
  /// cost distributions (EdgeCentricModel / PathCentricModel adapter) and
  /// must be deterministic and thread-safe for reads.
  QueryServer(const RoadNetwork* network, PathCostModel base_model)
      : QueryServer(network, std::move(base_model), Options()) {}
  QueryServer(const RoadNetwork* network, PathCostModel base_model,
              Options options);
  ~QueryServer() override;

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Spawns the dispatcher. FailedPrecondition if already started.
  Status Start();

  /// Closes the queue (draining queued requests as shed), flushes pending
  /// batches through the workers, joins the dispatcher, and waits for
  /// in-flight work. Idempotent.
  void Stop();

  /// Admission control: OK means `on_done` will be called exactly once;
  /// a shed returns ResourceExhausted (queue full) or FailedPrecondition
  /// (stopped) immediately and `on_done` is NOT retained.
  using QueryService::Submit;
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done,
                const SubmitOptions& options) override;

  /// Submits a scatter probe: answer the cost distribution of exactly
  /// `segment` at departure-time bucket `bucket` (RouteAnswer::probe_cost /
  /// probe_from_cache), through the same cache + base-model path a local
  /// query would take. Probes ride the ordinary queue/batch/worker
  /// pipeline, so admission control and the exactly-once callback contract
  /// apply unchanged. This is the shard router's remote-segment primitive.
  Status SubmitProbe(std::vector<int> segment, int bucket,
                     std::function<void(const RouteAnswer&)> on_done,
                     const SubmitOptions& options);

  /// True when the admission queue is at capacity — the cheap socket-layer
  /// probe for shedding a wire request before its payload is even decoded.
  bool QueueFull() const override;

  /// Blocks until every admitted request has reached a terminal state
  /// (answered or shed) and no batch is in flight.
  void WaitIdle() const override;

  ServeStatsSnapshot Stats() const override;
  int workers() const { return pool_.NumThreads(); }
  PathCostCache& cache() { return cache_; }
  const PathCostCache& cache() const { return cache_; }
  const Options& options() const { return options_; }

 private:
  void DispatcherLoop();
  /// True while the in-flight batch count is at the backpressure bound.
  bool WorkersSaturated() const;
  void DispatchReady(std::vector<std::vector<ServeRequest>>* ready);
  void ServeBatch(std::vector<ServeRequest>* batch);
  void ServeOne(const ServeRequest& req);
  void MaybeAutoscale(uint64_t now_ns);

  /// Builds the queued request shared by Submit and SubmitProbe: assigns
  /// the id, roots (or adopts) the trace tree, and stamps admission state.
  ServeRequest MakeRequest(RouteQuery query,
                           std::function<void(const RouteAnswer&)> on_done,
                           const SubmitOptions& options);

  const RoadNetwork* network_;
  Options options_;

  PathCostCache cache_;
  CachedPathCostModel cost_model_;
  RouteCache routes_;
  RequestQueue queue_;
  ThreadPool pool_;

  // Dispatcher-owned state, guarded so Stats() can read it concurrently.
  mutable std::mutex control_mu_;
  MicroBatcher batcher_;
  AutoscaleController controller_;
  uint64_t last_autoscale_ns_ = 0;
  uint64_t last_submitted_ = 0;

  // Worker-side accounting.
  struct TenantWorkerStats {
    uint64_t completed = 0;
    uint64_t failed = 0;
    LatencyHistogram e2e_latency;
  };
  mutable std::mutex metrics_mu_;
  LatencyHistogram queue_latency_;
  LatencyHistogram e2e_latency_;
  LatencyHistogram stage_queue_;
  LatencyHistogram stage_batch_;
  LatencyHistogram stage_cache_;
  LatencyHistogram stage_exec_;
  std::map<std::string, TenantWorkerStats> tenant_metrics_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int> in_flight_batches_{0};

  // Wakes the dispatcher out of its backpressure wait when a batch
  // completes (paired with in_flight_batches_; the wait also times out at
  // idle_poll_seconds, so a missed notify only costs one poll interval).
  mutable std::mutex batch_done_mu_;
  std::condition_variable batch_done_cv_;

  // Start/Stop lifecycle. The mutex serializes concurrent Stops (owner +
  // destructor + monitoring hooks) so the dispatcher is joined exactly
  // once; `started_` is only touched under it.
  mutable std::mutex lifecycle_mu_;
  std::thread dispatcher_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_QUERY_SERVER_H_
