#ifndef TSDM_SERVE_QUERY_SERVER_H_
#define TSDM_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/decision/routing/stochastic_router.h"
#include "src/serve/autoscale_controller.h"
#include "src/serve/micro_batcher.h"
#include "src/serve/path_cost_cache.h"
#include "src/serve/request_queue.h"
#include "src/serve/serve_stats.h"
#include "src/spatial/road_network.h"

namespace tsdm {

/// The serving front door for routing queries — the piece that turns the
/// decision layer from a library into a system:
///
///   clients --Submit--> RequestQueue --dispatcher--> MicroBatcher
///        --batches--> ThreadPool workers --> answer callbacks
///
/// Workers answer each query from two layers of memoization: a bounded
/// LRU of candidate route enumerations per (source, target, k) — the
/// K-shortest computation is departure-time independent — and the shared
/// PathCostCache of sub-path cost distributions (PACE-style reuse, [4]).
/// A warm query therefore costs two lookups plus a few convolutions where
/// a cold one pays Yen's algorithm plus full cost recomposition.
///
/// The dispatcher doubles as the autoscale control loop: every review
/// interval it feeds the observed arrival count into the
/// AutoscaleController, which forecasts demand and resizes the worker
/// pool within [min_workers, max_workers].
///
/// Thread-safety: Submit is safe from any number of producer threads.
/// Start/Stop/WaitIdle are for the owning (control) thread. Callbacks run
/// on worker threads (served), the dispatcher (expired in queue), or the
/// Stop caller (drained at shutdown) — exactly once per admitted request.
class QueryServer {
 public:
  struct Options {
    RequestQueue::Options queue;
    MicroBatcher::Options batch;
    PathCostCache::Options cache;
    CachedPathCostModel::Options cost;
    AutoscaleController::Options autoscale;
    int initial_workers = 2;
    bool autoscale_enabled = true;
    double autoscale_interval_seconds = 0.05;
    /// Dispatcher block time while idle; bounds shutdown latency.
    double idle_poll_seconds = 0.001;
    /// Candidate-route LRU entries ((source, target, k) keys).
    size_t route_cache_entries = 512;
  };

  /// The network must outlive the server. `base_model` computes sub-path
  /// cost distributions (EdgeCentricModel / PathCentricModel adapter) and
  /// must be deterministic and thread-safe for reads.
  QueryServer(const RoadNetwork* network, PathCostModel base_model)
      : QueryServer(network, std::move(base_model), Options()) {}
  QueryServer(const RoadNetwork* network, PathCostModel base_model,
              Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Spawns the dispatcher. FailedPrecondition if already started.
  Status Start();

  /// Closes the queue (draining queued requests as shed), flushes pending
  /// batches through the workers, joins the dispatcher, and waits for
  /// in-flight work. Idempotent.
  void Stop();

  /// Per-request submission knobs — the one submit surface shared by every
  /// entry point (in-process callers and the wire front door construct the
  /// same struct).
  struct SubmitOptions {
    /// Max queueing time before the request is shed at pop; <= 0 = none.
    double queue_budget_seconds = 0.25;
    /// Scheduling class placeholder: recorded on the request but not yet
    /// acted on (weighted-fair queueing is a ROADMAP item). 0 = default.
    int priority = 0;
    /// Caller-assigned correlation id, echoed verbatim in
    /// RouteAnswer::client_request_id (0 = unset).
    uint64_t client_request_id = 0;
    /// When set (ForRequest()), the request's `serve/submit` span attaches
    /// under this context instead of rooting a new trace tree — how the
    /// socket layer links `net/read -> serve/submit -> net/write` into one
    /// tree per wire request.
    TraceContext trace_parent;
  };

  /// Admission control: OK means `on_done` will be called exactly once;
  /// a shed returns ResourceExhausted (queue full) or FailedPrecondition
  /// (stopped) immediately and `on_done` is NOT retained.
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done,
                const SubmitOptions& options);
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done) {
    return Submit(std::move(query), std::move(on_done), SubmitOptions());
  }

  /// Deprecated pre-SubmitOptions surface; delegates to the struct form.
  /// Kept for one release so out-of-tree callers migrate on their own
  /// schedule.
  [[deprecated("pass QueryServer::SubmitOptions instead")]]
  Status Submit(RouteQuery query,
                std::function<void(const RouteAnswer&)> on_done,
                double queue_budget_seconds);

  /// True when the admission queue is at capacity — the cheap socket-layer
  /// probe for shedding a wire request before its payload is even decoded.
  bool QueueFull() const;

  /// Blocks until every admitted request has reached a terminal state
  /// (answered or shed) and no batch is in flight.
  void WaitIdle() const;

  ServeStatsSnapshot Stats() const;
  int workers() const { return pool_.NumThreads(); }
  PathCostCache& cache() { return cache_; }
  const PathCostCache& cache() const { return cache_; }

 private:
  struct RouteKey {
    int source = 0;
    int target = 0;
    int k = 0;
    bool operator==(const RouteKey& o) const {
      return source == o.source && target == o.target && k == o.k;
    }
  };
  struct RouteKeyHash {
    size_t operator()(const RouteKey& key) const {
      uint64_t h = static_cast<uint64_t>(key.source) * 0x9e3779b97f4a7c15ull;
      h ^= static_cast<uint64_t>(key.target) + 0x9e3779b97f4a7c15ull +
           (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(key.k) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  void DispatcherLoop();
  void DispatchReady(std::vector<std::vector<ServeRequest>>* ready);
  void ServeBatch(std::vector<ServeRequest>* batch);
  void ServeOne(const ServeRequest& req);
  void MaybeAutoscale(uint64_t now_ns);

  /// Candidate routes for (source, target, k) — LRU-cached Yen enumeration
  /// under its own lock (departure-time independent, so shareable across
  /// every query of an OD pair). An LRU miss emits a
  /// `serve/enumerate_routes` span under `ctx`.
  Result<std::vector<Path>> CandidateRoutes(const RouteKey& key,
                                            const TraceContext& ctx);

  const RoadNetwork* network_;
  Options options_;

  PathCostCache cache_;
  CachedPathCostModel cost_model_;
  RequestQueue queue_;
  ThreadPool pool_;

  // Dispatcher-owned state, guarded so Stats() can read it concurrently.
  mutable std::mutex control_mu_;
  MicroBatcher batcher_;
  AutoscaleController controller_;
  uint64_t last_autoscale_ns_ = 0;
  uint64_t last_submitted_ = 0;

  // Candidate-route LRU.
  mutable std::mutex route_mu_;
  std::list<std::pair<RouteKey, std::vector<Path>>> route_lru_;
  std::unordered_map<RouteKey,
                     std::list<std::pair<RouteKey, std::vector<Path>>>::iterator,
                     RouteKeyHash>
      route_index_;

  // Worker-side accounting.
  mutable std::mutex metrics_mu_;
  LatencyHistogram queue_latency_;
  LatencyHistogram e2e_latency_;
  LatencyHistogram stage_queue_;
  LatencyHistogram stage_batch_;
  LatencyHistogram stage_cache_;
  LatencyHistogram stage_exec_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int> in_flight_batches_{0};

  // Start/Stop lifecycle. The mutex serializes concurrent Stops (owner +
  // destructor + monitoring hooks) so the dispatcher is joined exactly
  // once; `started_` is only touched under it.
  mutable std::mutex lifecycle_mu_;
  std::thread dispatcher_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_QUERY_SERVER_H_
