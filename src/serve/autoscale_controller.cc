#include "src/serve/autoscale_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/trace.h"

namespace tsdm {

StreamForecastPolicy::StreamForecastPolicy(Options options)
    : options_(options),
      forecaster_(std::clamp(options.alpha, 1e-3, 1.0),
                  std::clamp(options.beta, 1e-3, 1.0)) {
  options_.headroom = std::max(1.0, options_.headroom);
  // One "sensor": the aggregate arrival rate. Reset cannot fail for a
  // nonzero sensor count.
  (void)forecaster_.Reset(1);
}

Result<ScalingDecision> StreamForecastPolicy::Decide(
    const std::vector<double>& demand_history, int horizon) {
  if (demand_history.empty()) {
    return Status::InvalidArgument("stream-forecast: empty demand history");
  }
  // Absorb the unseen suffix. The controller normally appends one sample
  // per interval, but a truncated history (max_history eviction) restarts
  // absorbed_ bookkeeping from the shrunk length rather than replaying.
  if (absorbed_ > demand_history.size()) absorbed_ = demand_history.size() - 1;
  for (; absorbed_ < demand_history.size(); ++absorbed_) {
    TickRecord rec;
    rec.tick.sensor = 0;
    rec.tick.timestamp = static_cast<int64_t>(absorbed_);
    rec.tick.value = demand_history[absorbed_];
    (void)forecaster_.OnTick(&rec);
  }
  const double projected = forecaster_.ForecastAhead(0, std::max(1, horizon));
  const double latest = demand_history.back();
  // Provision for the worse of "what we just saw" and "where the trend is
  // heading" — the floor keeps a flat-but-high load provisioned while the
  // projection handles the rising edge.
  ScalingDecision decision;
  decision.capacity =
      options_.headroom * std::max(latest, std::isnan(projected) ? latest
                                                                 : projected);
  return decision;
}

AutoscaleController::AutoscaleController(
    ThreadPool* pool, std::unique_ptr<AutoscalePolicy> policy,
    Options options)
    : pool_(pool), policy_(std::move(policy)), options_(options) {
  if (policy_ == nullptr) policy_ = std::make_unique<ReactivePolicy>();
  options_.min_workers = std::max(1, options_.min_workers);
  options_.max_workers = std::max(options_.min_workers, options_.max_workers);
  options_.per_worker_capacity = std::max(1e-9, options_.per_worker_capacity);
}

int AutoscaleController::OnInterval(double arrivals) {
  history_.push_back(std::max(0.0, arrivals));
  if (history_.size() > options_.max_history) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<long>(history_.size() -
                                         options_.max_history));
  }
  Result<ScalingDecision> decision =
      policy_->Decide(history_, options_.horizon);
  // A policy that cannot decide yet (e.g. empty history edge cases) keeps
  // the current size — the serve loop must never die to a scaling hiccup.
  if (!decision.ok()) return pool_->NumThreads();
  last_capacity_ = decision->capacity;

  int wanted = static_cast<int>(
      std::ceil(decision->capacity / options_.per_worker_capacity));
  wanted = std::clamp(wanted, options_.min_workers, options_.max_workers);
  int current = pool_->NumThreads();
  if (wanted != current) {
    TraceSpan span("serve/resize", wanted);
    pool_->Resize(wanted);
    ++scale_events_;
  }
  return pool_->NumThreads();
}

}  // namespace tsdm
