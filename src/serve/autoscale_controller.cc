#include "src/serve/autoscale_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/obs/trace.h"

namespace tsdm {

AutoscaleController::AutoscaleController(
    ThreadPool* pool, std::unique_ptr<AutoscalePolicy> policy,
    Options options)
    : pool_(pool), policy_(std::move(policy)), options_(options) {
  if (policy_ == nullptr) policy_ = std::make_unique<ReactivePolicy>();
  options_.min_workers = std::max(1, options_.min_workers);
  options_.max_workers = std::max(options_.min_workers, options_.max_workers);
  options_.per_worker_capacity = std::max(1e-9, options_.per_worker_capacity);
}

int AutoscaleController::OnInterval(double arrivals) {
  history_.push_back(std::max(0.0, arrivals));
  if (history_.size() > options_.max_history) {
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<long>(history_.size() -
                                         options_.max_history));
  }
  Result<ScalingDecision> decision =
      policy_->Decide(history_, options_.horizon);
  // A policy that cannot decide yet (e.g. empty history edge cases) keeps
  // the current size — the serve loop must never die to a scaling hiccup.
  if (!decision.ok()) return pool_->NumThreads();
  last_capacity_ = decision->capacity;

  int wanted = static_cast<int>(
      std::ceil(decision->capacity / options_.per_worker_capacity));
  wanted = std::clamp(wanted, options_.min_workers, options_.max_workers);
  int current = pool_->NumThreads();
  if (wanted != current) {
    TraceSpan span("serve/resize", wanted);
    pool_->Resize(wanted);
    ++scale_events_;
  }
  return pool_->NumThreads();
}

}  // namespace tsdm
