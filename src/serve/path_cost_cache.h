#ifndef TSDM_SERVE_PATH_COST_CACHE_H_
#define TSDM_SERVE_PATH_COST_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/decision/routing/stochastic_router.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/obs/trace.h"

namespace tsdm {

/// Sharded LRU cache of sub-path travel-cost distributions, keyed on
/// (edge sub-path, departure-time bucket) — the serving-layer realization
/// of PACE's path-centric claim ([4]): route queries over a shared road
/// network overlap heavily, so memoizing *sub-path* distributions lets
/// repeated and merely overlapping queries reuse each other's work instead
/// of recomposing per-edge costs from scratch every time.
///
/// Sharding: a key hashes to one of `shards` independent LRU maps, each
/// behind its own mutex, so concurrent workers contend only when they
/// touch the same shard. Capacity is enforced per shard (capacity/shards
/// each); eviction is strict LRU within a shard. Hit/miss/eviction
/// counters are maintained under the shard locks and summed on read, so
/// they are exact, not sampled.
class PathCostCache {
 public:
  struct Options {
    size_t capacity = 4096;       ///< total entries across all shards
    int shards = 8;               ///< independent LRU shards (>= 1)
    double bucket_seconds = 900;  ///< departure-time discretization
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;  ///< resident entries
  };

  PathCostCache() : PathCostCache(Options()) {}
  explicit PathCostCache(Options options);

  /// The departure-time bucket a query at `depart_seconds` falls into.
  int BucketFor(double depart_seconds) const {
    return static_cast<int>(depart_seconds / options_.bucket_seconds);
  }
  /// The representative departure time all queries of `bucket` resolve to
  /// (its midpoint) — what the underlying model is actually asked, so a
  /// cached entry is bitwise-identical to a fresh computation for every
  /// query in the bucket.
  double BucketTime(int bucket) const {
    return (static_cast<double>(bucket) + 0.5) * options_.bucket_seconds;
  }

  /// Copies the cached distribution for (subpath, bucket) into *out and
  /// refreshes its recency. Counts a hit or a miss.
  bool Lookup(const std::vector<int>& subpath, int bucket, Histogram* out);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail when
  /// over budget.
  void Insert(const std::vector<int>& subpath, int bucket, Histogram dist);

  void Clear();

  Stats GetStats() const;
  /// Resident entries per shard — lets tests check the hash spreads keys.
  std::vector<size_t> ShardSizes() const;
  const Options& options() const { return options_; }

 private:
  struct Key {
    std::vector<int> edges;
    int bucket = 0;
    bool operator==(const Key& other) const {
      return bucket == other.bucket && edges == other.edges;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // FNV-1a over the edge ids and the bucket: cheap, deterministic,
      // and spreads consecutive ids well enough for shard selection.
      uint64_t h = 1469598103934665603ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
      };
      for (int e : k.edges) mix(static_cast<uint64_t>(e) + 1);
      mix(static_cast<uint64_t>(k.bucket) + 0x9e3779b9ull);
      return static_cast<size_t>(h);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The list owns the entries; the map
    /// indexes them.
    std::list<std::pair<Key, Histogram>> lru;
    std::unordered_map<Key, std::list<std::pair<Key, Histogram>>::iterator,
                       KeyHash>
        index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  size_t ShardIndex(const Key& key) const {
    return KeyHash{}(key) % shards_.size();
  }

  Options options_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

/// Wraps any PathCostModel with sub-path memoization through a
/// PathCostCache: a query path is split into consecutive segments of
/// `segment_edges` edges, each segment's distribution is served from the
/// cache (computed through the base model on miss), and the segment
/// distributions are convolved into the path answer. Departure times are
/// discretized to the cache's time bucket and the base model is always
/// evaluated at the bucket's representative time, so for a fixed bucket a
/// warm answer is bitwise-identical to a cold one — caching changes cost,
/// never the answer.
///
/// Thread-safe: the cache synchronizes itself and the base model is only
/// read; many serve workers share one instance.
class CachedPathCostModel {
 public:
  struct Options {
    int segment_edges = 4;  ///< sub-path granularity (>= 1)
    int result_bins = 64;   ///< bins of the convolved path answer
  };

  /// The cache must outlive the model. `base` must be deterministic for a
  /// fixed (path, depart) — true of the governance cost models.
  CachedPathCostModel(PathCostModel base, PathCostCache* cache)
      : CachedPathCostModel(std::move(base), cache, Options()) {}
  CachedPathCostModel(PathCostModel base, PathCostCache* cache,
                      Options options);

  /// Path cost distribution with sub-path reuse. When `ctx` belongs to a
  /// traced request, the lookup emits a `serve/path_cost` span under it
  /// whose arg is the number of segment *misses* (0 = answered entirely
  /// from cache), so cache effectiveness is visible per request.
  ///
  /// Query is exactly SplitSegments -> SegmentCost per segment ->
  /// ComposeSegments. The three steps are public so a distributed caller
  /// (the shard router) can run them with the segment costs computed on
  /// different shards and still produce a bitwise-identical answer — the
  /// equivalence suite leans on this decomposition.
  Result<Histogram> Query(const std::vector<int>& edge_path,
                          double depart_seconds,
                          const TraceContext& ctx = TraceContext{}) const;

  /// Splits `edge_path` into consecutive sub-paths of `segment_edges`
  /// edges (the final segment may be shorter). The split depends only on
  /// path length and granularity, so every tier that agrees on
  /// `segment_edges` produces the same segments — the unit of cache keys,
  /// shard ownership, and scatter probes alike.
  static std::vector<std::vector<int>> SplitSegments(
      const std::vector<int>& edge_path, int segment_edges);

  /// Cost distribution of one segment for a departure-time bucket: served
  /// from the cache when resident, computed through the base model at the
  /// bucket's representative time (and inserted) on a miss. Sets
  /// *from_cache accordingly when non-null.
  Result<Histogram> SegmentCost(const std::vector<int>& segment, int bucket,
                                bool* from_cache = nullptr) const;

  /// Folds segment distributions into the path answer, in segment order:
  /// the first segment seeds the total, every later one is convolved in at
  /// `result_bins` resolution. Keying compositions by segment *index*
  /// (never completion order) is what makes the shard router's merge
  /// permutation-invariant. Precondition: `segments` non-empty.
  static Histogram ComposeSegments(std::vector<Histogram> segments,
                                   int result_bins);

  /// Adapter so a StochasticRouter can use this as its PathCostModel.
  PathCostModel AsModel() const {
    return [this](const std::vector<int>& edges, double depart) {
      return Query(edges, depart);
    };
  }

  const Options& options() const { return options_; }

 private:
  PathCostModel base_;
  PathCostCache* cache_;
  Options options_;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_PATH_COST_CACHE_H_
