#ifndef TSDM_SERVE_MICRO_BATCHER_H_
#define TSDM_SERVE_MICRO_BATCHER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/serve/request_queue.h"

namespace tsdm {

/// Coalesces compatible queries into micro-batches so one ThreadPool task
/// amortizes its dispatch overhead (and its cache-warm working set) over
/// several requests. Compatibility means *same snapshot_id*: a batch is
/// answered against exactly one network/model snapshot, so coalescing never
/// mixes network states.
///
/// A group is dispatched when it reaches `max_batch` requests or when its
/// oldest member has waited `max_wait_seconds` — the classic size-or-age
/// trigger: full batches under load, bounded added latency when idle.
///
/// Not internally synchronized: owned and driven by the single dispatcher
/// thread of the serve loop (the queue in front of it is the concurrent
/// part).
class MicroBatcher {
 public:
  struct Options {
    size_t max_batch = 16;
    double max_wait_seconds = 0.002;
  };

  struct Stats {
    uint64_t batches = 0;           ///< batches dispatched
    uint64_t batched_requests = 0;  ///< requests across all batches
    size_t max_batch_seen = 0;      ///< largest dispatched batch
  };

  /// Every dispatched batch gets a dense 1-based id, stamped into each
  /// member's ServeRequest::batch_id — the worker-side batch trace span
  /// carries the same id, linking the batch span to its member requests'
  /// exec spans across the trace.

  MicroBatcher() : MicroBatcher(Options()) {}
  explicit MicroBatcher(Options options) : options_(options) {}

  /// Adds one request to its snapshot group; if the group reaches
  /// max_batch it is moved onto *ready.
  void Add(ServeRequest req, std::vector<std::vector<ServeRequest>>* ready);

  /// Moves every group whose oldest request has waited past
  /// max_wait_seconds (as of `now_ns`) onto *ready.
  void FlushExpired(uint64_t now_ns,
                    std::vector<std::vector<ServeRequest>>* ready);

  /// Moves every pending group onto *ready (shutdown / idle drain).
  void FlushAll(std::vector<std::vector<ServeRequest>>* ready);

  size_t pending() const;
  const Stats& stats() const { return stats_; }

 private:
  void Dispatch(std::vector<ServeRequest>&& batch,
                std::vector<std::vector<ServeRequest>>* ready);

  Options options_;
  std::map<int, std::vector<ServeRequest>> groups_;  // snapshot_id -> batch
  Stats stats_;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_MICRO_BATCHER_H_
