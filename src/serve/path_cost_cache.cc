#include "src/serve/path_cost_cache.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace tsdm {

PathCostCache::PathCostCache(Options options)
    : options_(options),
      shards_(static_cast<size_t>(std::max(1, options.shards))) {
  options_.shards = static_cast<int>(shards_.size());
  per_shard_capacity_ =
      std::max<size_t>(1, options_.capacity / shards_.size());
}

bool PathCostCache::Lookup(const std::vector<int>& subpath, int bucket,
                           Histogram* out) {
  Key key{subpath, bucket};
  Shard& shard = shards_[ShardIndex(key)];
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  return true;
}

void PathCostCache::Insert(const std::vector<int>& subpath, int bucket,
                           Histogram dist) {
  Key key{subpath, bucket};
  Shard& shard = shards_[ShardIndex(key)];
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(dist);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(dist));
  shard.index.emplace(std::move(key), shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void PathCostCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

PathCostCache::Stats PathCostCache::GetStats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.size += shard.lru.size();
  }
  return stats;
}

std::vector<size_t> PathCostCache::ShardSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard.mu);
    sizes.push_back(shard.lru.size());
  }
  return sizes;
}

CachedPathCostModel::CachedPathCostModel(PathCostModel base,
                                         PathCostCache* cache,
                                         Options options)
    : base_(std::move(base)), cache_(cache), options_(options) {
  options_.segment_edges = std::max(1, options_.segment_edges);
}

Result<Histogram> CachedPathCostModel::Query(const std::vector<int>& edge_path,
                                             double depart_seconds,
                                             const TraceContext& ctx) const {
  if (edge_path.empty()) {
    return Status::InvalidArgument("CachedPathCostModel: empty path");
  }
  // Recorded retrospectively at the end so the span's arg can carry the
  // miss count this query actually saw (a TraceSpan's arg is fixed at
  // construction).
  const uint64_t start_ns =
      TraceRecorder::Enabled() ? TraceRecorder::NowNs() : 0;
  int64_t misses = 0;
  auto record = [&] {
    if (start_ns != 0) {
      TraceRecorder::Global().RecordSpan(
          "serve/path_cost", start_ns, TraceRecorder::NowNs(), ctx, misses);
    }
  };
  const int bucket = cache_->BucketFor(depart_seconds);
  const size_t seg = static_cast<size_t>(options_.segment_edges);

  std::vector<Histogram> parts;
  parts.reserve((edge_path.size() + seg - 1) / seg);
  std::vector<int> piece;
  piece.reserve(seg);
  for (size_t start = 0; start < edge_path.size(); start += seg) {
    const size_t end = std::min(edge_path.size(), start + seg);
    piece.assign(edge_path.begin() + static_cast<long>(start),
                 edge_path.begin() + static_cast<long>(end));
    bool from_cache = false;
    Result<Histogram> piece_dist = SegmentCost(piece, bucket, &from_cache);
    if (!from_cache) ++misses;
    if (!piece_dist.ok()) {
      record();
      return piece_dist.status();
    }
    parts.push_back(std::move(piece_dist).value());
  }
  Histogram total = ComposeSegments(std::move(parts), options_.result_bins);
  record();
  return total;
}

std::vector<std::vector<int>> CachedPathCostModel::SplitSegments(
    const std::vector<int>& edge_path, int segment_edges) {
  const size_t seg = static_cast<size_t>(std::max(1, segment_edges));
  std::vector<std::vector<int>> segments;
  segments.reserve((edge_path.size() + seg - 1) / seg);
  for (size_t start = 0; start < edge_path.size(); start += seg) {
    const size_t end = std::min(edge_path.size(), start + seg);
    segments.emplace_back(edge_path.begin() + static_cast<long>(start),
                          edge_path.begin() + static_cast<long>(end));
  }
  return segments;
}

Result<Histogram> CachedPathCostModel::SegmentCost(
    const std::vector<int>& segment, int bucket, bool* from_cache) const {
  Histogram dist;
  if (cache_->Lookup(segment, bucket, &dist)) {
    if (from_cache != nullptr) *from_cache = true;
    return dist;
  }
  if (from_cache != nullptr) *from_cache = false;
  Result<Histogram> computed = base_(segment, cache_->BucketTime(bucket));
  if (!computed.ok()) return computed.status();
  Histogram d = std::move(computed).value();
  cache_->Insert(segment, bucket, d);
  return d;
}

Histogram CachedPathCostModel::ComposeSegments(std::vector<Histogram> segments,
                                               int result_bins) {
  Histogram total = std::move(segments.front());
  for (size_t i = 1; i < segments.size(); ++i) {
    total = total.Convolve(segments[i], result_bins);
  }
  return total;
}

}  // namespace tsdm
