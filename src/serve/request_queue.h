#ifndef TSDM_SERVE_REQUEST_QUEUE_H_
#define TSDM_SERVE_REQUEST_QUEUE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/obs/trace.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// One routing question a client asks the serving layer: "from source to
/// target, departing at depart_seconds, which of the k candidate routes
/// maximizes my chance of arriving by arrival_deadline_seconds?"
struct RouteQuery {
  int source = 0;
  int target = 0;
  int k = 4;                            ///< candidate routes to enumerate
  double depart_seconds = 0.0;          ///< time of day, seconds
  double arrival_deadline_seconds = 0;  ///< absolute arrival deadline
  /// Model/network snapshot generation the query was issued against. The
  /// micro-batcher only coalesces queries of the same snapshot — batching
  /// must never mix answers from different network states.
  int snapshot_id = 0;
};

/// Critical-path latency attribution of one answered request. The four
/// components partition the admission-to-answer interval exactly (they are
/// computed from the same clock samples, so the telescoping sum equals the
/// end-to-end latency to the nanosecond): where did *this* request's time
/// go — waiting in the queue, forming a batch / waiting for a worker,
/// inside the path-cost layer, or in route enumeration and scoring?
struct StageBreakdown {
  uint64_t queue_ns = 0;  ///< admission -> dequeued by the dispatcher
  uint64_t batch_ns = 0;  ///< dequeue -> a worker starts serving it
  uint64_t cache_ns = 0;  ///< inside CachedPathCostModel (cache + base model)
  uint64_t exec_ns = 0;   ///< remaining worker execution (routes, scoring)

  uint64_t TotalNs() const { return queue_ns + batch_ns + cache_ns + exec_ns; }
};

/// The serving layer's answer: the chosen route plus the decision-relevant
/// summary of its cost distribution and the request's lifecycle timings.
struct RouteAnswer {
  Status status;
  Path route;                       ///< chosen route (empty on failure)
  double cost_mean_seconds = 0.0;   ///< mean of the route's cost histogram
  double on_time_probability = 0.0; ///< P(arrival <= deadline)
  int num_candidates = 0;           ///< candidates actually scored
  double queue_seconds = 0.0;       ///< admission -> worker pickup
  double service_seconds = 0.0;     ///< worker pickup -> answer
  StageBreakdown stages;            ///< where the end-to-end time went
  /// SubmitOptions::client_request_id, echoed verbatim (0 if unset) — the
  /// correlation handle for callers multiplexing many requests, e.g. the
  /// wire front door matching answers back to connections.
  uint64_t client_request_id = 0;
  /// SubmitOptions::tenant_id, echoed on every terminal answer — served or
  /// shed — so a caller multiplexing tenants (and every shed counter) can
  /// attribute the outcome without a side table.
  std::string tenant_id;
  /// Scatter-probe reply (shard tier): the requested segment's cost
  /// distribution and whether the serving shard answered it from cache.
  /// Meaningful only when the request was a probe (ServeRequest::
  /// probe_edges non-empty); plain route answers leave them defaulted.
  Histogram probe_cost;
  bool probe_from_cache = false;
};

/// A queued request: the query plus its admission timestamp, queueing
/// budget, and completion callback. The callback is invoked exactly once —
/// on a worker thread for served requests, on the dispatcher thread for
/// requests shed after admission (expired in queue / drained at shutdown),
/// or on the displacing producer's thread for requests evicted by a
/// higher-priority arrival under overload.
struct ServeRequest {
  uint64_t id = 0;
  RouteQuery query;
  uint64_t enqueue_ns = 0;        ///< TraceRecorder::NowNs at admission
  uint64_t dequeue_ns = 0;        ///< set by PopBatch when the dispatcher pops
  uint64_t batch_id = 0;          ///< set by MicroBatcher at dispatch (0=none)
  double queue_budget_seconds = 0.25;  ///< max queueing time; <= 0 = none
  int priority = 0;               ///< scheduling class, clamped to [0, 3]
  int shard = -1;                 ///< SubmitOptions::shard (-1 = unsharded)
  std::string tenant;             ///< SubmitOptions::tenant_id ("" = default)
  uint64_t client_request_id = 0; ///< echoed into RouteAnswer
  /// Request-tree linkage: request_id identifies this request in the trace,
  /// parent_span_id is the submit (root) span every later span attaches to.
  TraceContext trace;
  /// Non-empty marks this request as a shard-router scatter probe: instead
  /// of enumerating routes, the worker answers the cost distribution of
  /// exactly this edge sub-path at `probe_bucket`, through the same cache +
  /// base-model path a local query would take. Probes ride the ordinary
  /// queue/batch/worker pipeline so admission control, the exactly-once
  /// callback contract, and stage accounting all apply unchanged.
  std::vector<int> probe_edges;
  int probe_bucket = 0;  ///< departure-time bucket of the probe
  std::function<void(const RouteAnswer&)> on_done;
};

/// Bounded, deadline-aware, *tenant-fair* request queue with admission
/// control — the serving front door. Requests carry a tenant id and a
/// priority class; internally the queue holds one sub-queue per tenant
/// (split into priority buckets) and PopBatch drains them by deficit
/// round-robin, so a tenant's share of dispatched work tracks its
/// configured weight regardless of how aggressively other tenants submit.
///
/// Admission control is three-layered and Push never blocks:
///  - per-tenant quota: a tenant may not occupy more than its quota of
///    slots, so one flooding tenant cannot monopolize the queue;
///  - global capacity: when the queue is full, an arriving request of a
///    *higher* priority class displaces the newest queued request of the
///    lowest occupied class (shed-lowest-priority-first) — the evicted
///    request's callback fires with a typed shed; otherwise the arrival
///    itself is shed with Status::ResourceExhausted;
///  - queueing budget: requests whose budget expires before a dispatcher
///    pops them are shed at pop time — admitting them to a worker would
///    only burn service capacity on an answer the client gave up on.
///
/// Every shed — capacity, quota, eviction, expiry, or close-drain — is
/// counted both globally and under the owning tenant, and the shed answer
/// carries the tenant id, so per-tenant shed accounting always sums to the
/// global counters (property-tested).
class RequestQueue {
 public:
  /// Priority classes are small ints, clamped to [0, kPriorityClasses).
  /// Convention: 0 = best-effort, 1 = standard, 2 = premium, 3 = system.
  static constexpr int kPriorityClasses = 4;

  /// Scheduling class of one tenant. Weight scales the tenant's share of
  /// PopBatch throughput under contention (deficit round-robin credit per
  /// round); quota caps its resident queue slots (0 = bounded only by the
  /// global capacity).
  struct TenantClass {
    double weight = 1.0;
    size_t quota = 0;
  };

  struct Options {
    size_t capacity = 1024;
    /// Pre-declared tenant classes; tenants not listed here get
    /// `default_class`. Tenants materialize lazily on first submit either
    /// way — the map only fixes weights/quotas.
    std::map<std::string, TenantClass> tenants;
    TenantClass default_class;
    /// Deficit round-robin credit granted per unit weight each round; the
    /// ratio of two tenants' (quantum * weight) is their dispatch ratio
    /// under saturation.
    double drr_quantum = 8.0;
  };

  /// Per-tenant view of the admission counters. depth is current resident
  /// requests; popped counts requests actually handed to the dispatcher —
  /// the number weighted-fairness tests assert ratios on.
  struct TenantStats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t shed_capacity = 0;  ///< rejected at Push: queue/quota full
    uint64_t shed_expired = 0;   ///< dropped at pop: queue budget exceeded
    uint64_t shed_closed = 0;    ///< rejected at Push or drained: closed
    uint64_t shed_evicted = 0;   ///< displaced by a higher-priority arrival
    uint64_t popped = 0;         ///< delivered to the dispatcher
    size_t depth = 0;
  };

  struct Stats {
    uint64_t submitted = 0;      ///< Push calls
    uint64_t admitted = 0;       ///< accepted into the queue
    uint64_t shed_capacity = 0;  ///< rejected at Push: queue or quota full
    uint64_t shed_expired = 0;   ///< dropped at pop: queue budget exceeded
    uint64_t shed_closed = 0;    ///< rejected at Push or drained: closed
    uint64_t shed_evicted = 0;   ///< displaced by higher-priority arrivals
    size_t depth = 0;            ///< current queue length (all tenants)
    /// Per-tenant breakdown, sorted by tenant name. Each global counter
    /// above equals the sum of the matching per-tenant counters.
    std::vector<std::pair<std::string, TenantStats>> tenants;
  };

  RequestQueue() : RequestQueue(Options()) {}
  explicit RequestQueue(Options options);

  /// Admits `req` or sheds it. OK means the request is queued and its
  /// callback will eventually fire; ResourceExhausted means queue-full or
  /// quota shed; FailedPrecondition means the queue is closed. The callback
  /// of a shed *arrival* is NOT invoked — the caller still owns it. A
  /// successful Push may displace an already-admitted lower-priority
  /// request, whose callback fires (once) with a typed shed before Push
  /// returns.
  Status Push(ServeRequest req);

  /// Pops up to `max_n` unexpired requests (as of `now_ns`) by deficit
  /// round-robin across tenants, appending to *out. Expired requests
  /// encountered on the way are shed: counted, and their callback fired
  /// with a ResourceExhausted answer. Returns the number of live requests
  /// delivered. Non-blocking.
  size_t PopBatch(uint64_t now_ns, size_t max_n, std::vector<ServeRequest>* out);

  /// Blocks until the queue has requests, closes, or `timeout_seconds`
  /// elapses; returns true when requests are available. Pops stay with
  /// PopBatch so every dequeue goes through the same expiry check.
  bool WaitForWork(double timeout_seconds) const;

  /// Closes the queue: subsequent Push calls are rejected and queued
  /// requests are drained, each callback fired with a FailedPrecondition
  /// answer (counted as shed_closed). Idempotent.
  void Close();

  bool closed() const;
  Stats GetStats() const;

 private:
  /// One tenant's scheduling state: priority-bucketed FIFO sub-queues plus
  /// the deficit counter the round-robin drains against.
  struct Tenant {
    std::string name;
    TenantClass cls;
    std::array<std::deque<ServeRequest>, kPriorityClasses> buckets;
    double deficit = 0.0;
    size_t depth = 0;
    TenantStats stats;
  };

  /// Finds or lazily creates the tenant record (lock held).
  Tenant* TenantFor(const std::string& name);
  /// Pops the front of `t`'s highest-priority non-empty bucket (lock held;
  /// depth bookkeeping included). Requires t->depth > 0.
  ServeRequest PopHighest(Tenant* t);

  Options options_;
  mutable std::mutex mu_;
  mutable std::condition_variable available_;
  /// Insertion order doubles as the round-robin visit order.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::map<std::string, size_t> tenant_index_;  ///< name -> tenants_ slot
  std::array<size_t, kPriorityClasses> class_depth_{};  ///< global per class
  size_t total_depth_ = 0;
  size_t rr_start_ = 0;  ///< rotating round-robin start position
  Stats stats_;          ///< global counters only; tenants assembled on read
  bool closed_ = false;
};

}  // namespace tsdm

#endif  // TSDM_SERVE_REQUEST_QUEUE_H_
