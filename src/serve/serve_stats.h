#ifndef TSDM_SERVE_SERVE_STATS_H_
#define TSDM_SERVE_SERVE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/histogram_ext.h"

namespace tsdm {

/// One tenant's slice of the serving counters: admission and shed
/// accounting from the weighted-fair queue plus worker-side completion
/// counts and the tenant's own end-to-end latency distribution — the
/// numbers per-tenant SLOs (premium p95) are checked against. Each global
/// counter in ServeStatsSnapshot equals the sum of the matching field
/// here across tenants (property-tested).
struct TenantServeStats {
  std::string tenant;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_capacity = 0;  ///< rejected at Push: queue or quota full
  uint64_t shed_expired = 0;   ///< dropped at pop: queue budget exceeded
  uint64_t shed_closed = 0;    ///< rejected at Push or drained: closed
  uint64_t shed_evicted = 0;   ///< displaced by a higher-priority arrival
  uint64_t completed = 0;      ///< answered OK
  uint64_t failed = 0;         ///< answered non-OK
  size_t queue_depth = 0;
  LatencyHistogram e2e_latency;  ///< admission -> answer, this tenant only

  uint64_t TotalShed() const {
    return shed_capacity + shed_expired + shed_closed + shed_evicted;
  }
};

/// Accumulates `from` into the tenant list `into`, matching entries by
/// tenant name (creating missing ones) — the merge rule the shard tier
/// uses to collapse per-shard tenant slices into one fleet view. Keeps
/// `into` sorted by tenant name.
inline void MergeTenantStats(std::vector<TenantServeStats>* into,
                             const std::vector<TenantServeStats>& from) {
  for (const TenantServeStats& t : from) {
    auto it = std::lower_bound(
        into->begin(), into->end(), t,
        [](const TenantServeStats& a, const TenantServeStats& b) {
          return a.tenant < b.tenant;
        });
    if (it == into->end() || it->tenant != t.tenant) {
      it = into->insert(it, TenantServeStats{});
      it->tenant = t.tenant;
    }
    it->submitted += t.submitted;
    it->admitted += t.admitted;
    it->shed_capacity += t.shed_capacity;
    it->shed_expired += t.shed_expired;
    it->shed_closed += t.shed_closed;
    it->shed_evicted += t.shed_evicted;
    it->completed += t.completed;
    it->failed += t.failed;
    it->queue_depth += t.queue_depth;
    it->e2e_latency.Merge(t.e2e_latency);
  }
}

/// One coherent snapshot of the serving layer's counters — the shape the
/// MetricsExporter serializes to JSON / Prometheus and the benches report.
/// Plain data so obs can depend on it without pulling in the server.
struct ServeStatsSnapshot {
  // Admission (RequestQueue).
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed_capacity = 0;  ///< rejected at the front door: queue full
  uint64_t shed_expired = 0;   ///< dropped after admission: waited too long
  uint64_t shed_closed = 0;    ///< rejected/drained at shutdown
  uint64_t shed_evicted = 0;   ///< displaced by higher-priority arrivals
  size_t queue_depth = 0;

  // Batching (MicroBatcher).
  uint64_t batches = 0;
  uint64_t batched_requests = 0;
  size_t max_batch = 0;

  // Sub-path cache (PathCostCache).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_size = 0;

  // Execution.
  uint64_t completed = 0;  ///< answered OK
  uint64_t failed = 0;     ///< answered non-OK by the router/model
  int workers = 0;         ///< current ThreadPool size
  int scale_events = 0;    ///< autoscaler resizes since start

  // Lifecycle latencies of *answered* requests.
  LatencyHistogram queue_latency;  ///< admission -> dispatch
  LatencyHistogram e2e_latency;    ///< admission -> answer

  // Critical-path attribution of answered requests: per-stage latency
  // distributions matching StageBreakdown. For each request the four
  // stage samples telescope to its e2e latency, so comparing the stages'
  // total_seconds() tells you which component the fleet's time went to.
  LatencyHistogram stage_queue;  ///< admission -> dequeue
  LatencyHistogram stage_batch;  ///< dequeue -> worker pickup
  LatencyHistogram stage_cache;  ///< inside the path-cost layer
  LatencyHistogram stage_exec;   ///< remaining worker execution

  /// Per-tenant breakdown, sorted by tenant name. Requests submitted
  /// without a tenant id land under the reserved name "default", so the
  /// per-tenant counters always sum to the globals.
  std::vector<TenantServeStats> tenants;

  uint64_t TotalShed() const {
    return shed_capacity + shed_expired + shed_closed + shed_evicted;
  }
  /// Shed fraction over everything submitted (0 when idle).
  double ShedRate() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(TotalShed()) /
                     static_cast<double>(submitted);
  }
  /// The stage that accumulated the most total time across answered
  /// requests — where the fleet's latency actually went. "" while nothing
  /// has been answered. The health monitor applies the same rule to
  /// *interval deltas* to attribute a degradation to its component.
  const char* SlowestStage() const {
    const char* names[4] = {"queue", "batch", "cache", "exec"};
    const double totals[4] = {
        stage_queue.total_seconds(), stage_batch.total_seconds(),
        stage_cache.total_seconds(), stage_exec.total_seconds()};
    int best = -1;
    for (int i = 0; i < 4; ++i) {
      if (totals[i] > 0.0 && (best < 0 || totals[i] > totals[best])) best = i;
    }
    return best < 0 ? "" : names[best];
  }

  /// Cache hit fraction over all lookups (0 before any lookup).
  double CacheHitRate() const {
    uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
};

}  // namespace tsdm

#endif  // TSDM_SERVE_SERVE_STATS_H_
