#include "src/serve/micro_batcher.h"

#include <algorithm>
#include <utility>

namespace tsdm {

void MicroBatcher::Add(ServeRequest req,
                       std::vector<std::vector<ServeRequest>>* ready) {
  std::vector<ServeRequest>& group = groups_[req.query.snapshot_id];
  if (group.empty()) group.reserve(options_.max_batch);
  group.push_back(std::move(req));
  if (group.size() >= options_.max_batch) {
    std::vector<ServeRequest> batch = std::move(group);
    groups_.erase(batch.front().query.snapshot_id);
    Dispatch(std::move(batch), ready);
  }
}

void MicroBatcher::FlushExpired(
    uint64_t now_ns, std::vector<std::vector<ServeRequest>>* ready) {
  const double budget_ns = options_.max_wait_seconds * 1e9;
  for (auto it = groups_.begin(); it != groups_.end();) {
    // The front request is the oldest: groups are append-only FIFO.
    const uint64_t oldest = it->second.front().enqueue_ns;
    if (static_cast<double>(now_ns - oldest) >= budget_ns) {
      std::vector<ServeRequest> batch = std::move(it->second);
      it = groups_.erase(it);
      Dispatch(std::move(batch), ready);
    } else {
      ++it;
    }
  }
}

void MicroBatcher::FlushAll(std::vector<std::vector<ServeRequest>>* ready) {
  for (auto& [snapshot, group] : groups_) {
    Dispatch(std::move(group), ready);
  }
  groups_.clear();
}

size_t MicroBatcher::pending() const {
  size_t n = 0;
  for (const auto& [snapshot, group] : groups_) n += group.size();
  return n;
}

void MicroBatcher::Dispatch(std::vector<ServeRequest>&& batch,
                            std::vector<std::vector<ServeRequest>>* ready) {
  if (batch.empty()) return;
  ++stats_.batches;
  stats_.batched_requests += batch.size();
  stats_.max_batch_seen = std::max(stats_.max_batch_seen, batch.size());
  for (ServeRequest& req : batch) req.batch_id = stats_.batches;
  ready->push_back(std::move(batch));
}

}  // namespace tsdm
