#include "src/serve/route_cache.h"

#include <algorithm>

namespace tsdm {

RouteCache::RouteCache(const RoadNetwork* network, size_t entries)
    : network_(network), entries_(std::max<size_t>(1, entries)) {}

Result<std::vector<Path>> RouteCache::Get(int source, int target, int k,
                                          const TraceContext& ctx) {
  const Key key{source, target, k};
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
  }
  // Only a route-LRU miss shows up in the trace: warm requests skip Yen's
  // algorithm entirely, and their exec span shrinking is the visible proof.
  TraceSpan span("serve/enumerate_routes", ctx);
  Result<std::vector<Path>> paths = KShortestPaths(
      *network_, source, target, k, FreeFlowTimeCost(*network_));
  if (!paths.ok()) return paths.status();
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A racing caller may have inserted the same key; refresh it instead
    // of duplicating.
    auto it = index_.find(key);
    if (it == index_.end()) {
      lru_.emplace_front(key, *paths);
      index_.emplace(key, lru_.begin());
      while (lru_.size() > entries_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return paths;
}

size_t RouteCache::size() const {
  std::unique_lock<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace tsdm
