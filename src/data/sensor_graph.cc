#include "src/data/sensor_graph.h"

#include <algorithm>
#include <cmath>

namespace tsdm {

int SensorGraph::AddSensor(double x, double y) {
  sensors_.push_back({x, y});
  adj_.resize(sensors_.size());
  return static_cast<int>(sensors_.size()) - 1;
}

Status SensorGraph::AddEdge(int a, int b, double weight) {
  if (a < 0 || b < 0 || a >= static_cast<int>(sensors_.size()) ||
      b >= static_cast<int>(sensors_.size())) {
    return Status::OutOfRange("AddEdge: sensor id out of range");
  }
  if (a == b) return Status::InvalidArgument("AddEdge: self loop");
  if (adj_.size() < sensors_.size()) adj_.resize(sensors_.size());
  auto set_or_add = [&](int from, int to) {
    for (auto& n : adj_[from]) {
      if (n.id == to) {
        n.weight = weight;
        return true;
      }
    }
    adj_[from].push_back({to, weight});
    return false;
  };
  bool existed = set_or_add(a, b);
  set_or_add(b, a);
  if (!existed) ++edge_count_;
  return Status::OK();
}

double SensorGraph::Weight(int a, int b) const {
  if (a < 0 || a >= static_cast<int>(adj_.size())) return 0.0;
  for (const auto& n : adj_[a]) {
    if (n.id == b) return n.weight;
  }
  return 0.0;
}

Matrix SensorGraph::AdjacencyMatrix() const {
  size_t n = NumSensors();
  Matrix m(n, n, 0.0);
  for (size_t a = 0; a < adj_.size(); ++a) {
    for (const auto& nb : adj_[a]) {
      m(a, nb.id) = nb.weight;
    }
  }
  return m;
}

Matrix SensorGraph::TransitionMatrix() const {
  Matrix m = AdjacencyMatrix();
  for (size_t r = 0; r < m.rows(); ++r) {
    double row_sum = 0.0;
    for (size_t c = 0; c < m.cols(); ++c) row_sum += m(r, c);
    if (row_sum > 0.0) {
      for (size_t c = 0; c < m.cols(); ++c) m(r, c) /= row_sum;
    }
  }
  return m;
}

SensorGraph SensorGraph::KNearest(const std::vector<Sensor>& positions, int k,
                                  double sigma) {
  SensorGraph g;
  for (const auto& p : positions) g.AddSensor(p.x, p.y);
  int n = static_cast<int>(positions.size());
  for (int i = 0; i < n; ++i) {
    std::vector<std::pair<double, int>> dist;
    dist.reserve(n - 1);
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      double dx = positions[i].x - positions[j].x;
      double dy = positions[i].y - positions[j].y;
      dist.push_back({std::sqrt(dx * dx + dy * dy), j});
    }
    std::sort(dist.begin(), dist.end());
    int limit = std::min<int>(k, static_cast<int>(dist.size()));
    for (int m = 0; m < limit; ++m) {
      double w = std::exp(-dist[m].first * dist[m].first /
                          (2.0 * sigma * sigma));
      g.AddEdge(i, dist[m].second, w);
    }
  }
  return g;
}

}  // namespace tsdm
