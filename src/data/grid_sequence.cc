#include "src/data/grid_sequence.h"

namespace tsdm {

double GridSequence::FrameSum(size_t t, size_t ch) const {
  double total = 0.0;
  for (size_t r = 0; r < height_; ++r) {
    for (size_t c = 0; c < width_; ++c) total += At(t, r, c, ch);
  }
  return total;
}

std::vector<double> GridSequence::CellSeries(size_t r, size_t c,
                                             size_t ch) const {
  std::vector<double> out(frames_);
  for (size_t t = 0; t < frames_; ++t) out[t] = At(t, r, c, ch);
  return out;
}

std::vector<std::vector<double>> GridSequence::ToRows() const {
  std::vector<std::vector<double>> rows(frames_);
  size_t frame_size = height_ * width_ * channels_;
  for (size_t t = 0; t < frames_; ++t) {
    rows[t].assign(data_.begin() + t * frame_size,
                   data_.begin() + (t + 1) * frame_size);
  }
  return rows;
}

}  // namespace tsdm
