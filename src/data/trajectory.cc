#include "src/data/trajectory.h"

#include <algorithm>

namespace tsdm {

double Trajectory::Duration() const {
  if (points_.size() < 2) return 0.0;
  return points_.back().t - points_.front().t;
}

double Trajectory::Length() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += EuclideanDistance(points_[i - 1].x, points_[i - 1].y,
                               points_[i].x, points_[i].y);
  }
  return total;
}

double Trajectory::AverageSpeed() const {
  double d = Duration();
  return d > 0.0 ? Length() / d : 0.0;
}

TrajectoryPoint Trajectory::PositionAt(double t) const {
  if (points_.empty()) return {};
  if (t <= points_.front().t) return points_.front();
  if (t >= points_.back().t) return points_.back();
  // Binary search for the segment containing t.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const TrajectoryPoint& p, double value) { return p.t < value; });
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  double span = hi.t - lo.t;
  double frac = span > 0.0 ? (t - lo.t) / span : 0.0;
  return {t, lo.x + frac * (hi.x - lo.x), lo.y + frac * (hi.y - lo.y)};
}

Trajectory Trajectory::ResampleByTime(double period_seconds) const {
  Trajectory out;
  if (points_.empty() || period_seconds <= 0.0) return out;
  for (double t = points_.front().t; t <= points_.back().t;
       t += period_seconds) {
    out.Append(PositionAt(t));
  }
  return out;
}

bool Trajectory::IsTimeOrdered() const {
  for (size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].t < points_[i - 1].t) return false;
  }
  return true;
}

}  // namespace tsdm
