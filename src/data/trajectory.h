#ifndef TSDM_DATA_TRAJECTORY_H_
#define TSDM_DATA_TRAJECTORY_H_

#include <cmath>
#include <vector>

namespace tsdm {

/// One GPS fix: position at a time (Definition 3 element).
struct TrajectoryPoint {
  double t = 0.0;  ///< seconds since epoch (or trace start)
  double x = 0.0;
  double y = 0.0;
};

/// A trajectory: a time-ordered sequence of (location, time) pairs capturing
/// a moving object (Definition 3).
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<TrajectoryPoint> points)
      : points_(std::move(points)) {}

  size_t NumPoints() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  const TrajectoryPoint& point(size_t i) const { return points_[i]; }
  const std::vector<TrajectoryPoint>& points() const { return points_; }

  void Append(const TrajectoryPoint& p) { points_.push_back(p); }

  /// Total elapsed time; 0 for fewer than 2 points.
  double Duration() const;
  /// Total Euclidean path length; 0 for fewer than 2 points.
  double Length() const;
  /// Average speed = Length / Duration; 0 when Duration is 0.
  double AverageSpeed() const;

  /// Linear-interpolated position at time t (clamped to the trace extent).
  TrajectoryPoint PositionAt(double t) const;

  /// Returns a copy resampled at a fixed period, starting at the first fix.
  Trajectory ResampleByTime(double period_seconds) const;

  /// True when point times are non-decreasing.
  bool IsTimeOrdered() const;

 private:
  std::vector<TrajectoryPoint> points_;
};

inline double EuclideanDistance(double ax, double ay, double bx, double by) {
  double dx = ax - bx, dy = ay - by;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tsdm

#endif  // TSDM_DATA_TRAJECTORY_H_
