#ifndef TSDM_DATA_TIME_SERIES_H_
#define TSDM_DATA_TIME_SERIES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/common/series_view.h"
#include "src/common/status.h"

namespace tsdm {

/// Sentinel for a missing observation. Stored as quiet NaN; use
/// TimeSeries::IsMissing rather than comparing against this value.
inline constexpr double kMissingValue =
    std::numeric_limits<double>::quiet_NaN();

/// A (possibly multivariate) time series: Definition 1 of the paper.
/// M timestamps, each carrying a C-dimensional observation vector.
/// Missing entries are represented as NaN.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Creates a series with the given timestamps and channel count, all
  /// values initialized to `fill` (default 0).
  TimeSeries(std::vector<int64_t> timestamps, size_t num_channels,
             double fill = 0.0);

  /// Creates a regularly sampled series: M steps starting at `start_time`
  /// with spacing `step_seconds`, C channels initialized to 0.
  static TimeSeries Regular(int64_t start_time, int64_t step_seconds,
                            size_t num_steps, size_t num_channels);

  /// Wraps a single channel of values with implicit timestamps 0,1,2,...
  static TimeSeries FromValues(const std::vector<double>& values);

  size_t NumSteps() const { return timestamps_.size(); }
  size_t NumChannels() const { return num_channels_; }
  bool empty() const { return timestamps_.empty(); }

  int64_t Timestamp(size_t i) const { return timestamps_[i]; }
  const std::vector<int64_t>& timestamps() const { return timestamps_; }

  double At(size_t step, size_t channel) const {
    return values_[step * num_channels_ + channel];
  }
  void Set(size_t step, size_t channel, double value) {
    values_[step * num_channels_ + channel] = value;
  }

  /// True when the entry is missing (NaN or infinite).
  bool IsMissing(size_t step, size_t channel) const;
  /// Number of missing entries across all channels.
  size_t CountMissing() const;
  /// Fraction of missing entries in [0,1]; 0 for an empty series.
  double MissingRate() const;

  /// Zero-copy strided view of channel c over the row-major storage. The
  /// view is invalidated by anything that reallocates or reshapes the
  /// series (Append, SetChannel growth, assignment, destruction); Set() on
  /// individual entries keeps it valid and visible through the view.
  SeriesView ChannelView(size_t c) const {
    return SeriesView(values_.data() + c, NumSteps(), num_channels_);
  }

  /// Copies channel c as a contiguous vector (thin wrapper over
  /// ChannelView; prefer the view on hot paths).
  std::vector<double> Channel(size_t c) const;
  /// Overwrites channel c; requires values.size() == NumSteps().
  Status SetChannel(size_t c, const std::vector<double>& values);
  /// Copies the observation vector at a step.
  std::vector<double> Observation(size_t step) const;

  /// Returns the sub-series covering steps [begin, end).
  TimeSeries Slice(size_t begin, size_t end) const;

  /// Appends one observation; requires obs.size() == NumChannels().
  Status Append(int64_t timestamp, const std::vector<double>& obs);

  /// Validates monotonically increasing timestamps.
  bool HasSortedTimestamps() const;

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

 private:
  std::vector<int64_t> timestamps_;
  size_t num_channels_ = 0;
  std::vector<double> values_;  // row-major: step * num_channels_ + channel
};

}  // namespace tsdm

#endif  // TSDM_DATA_TIME_SERIES_H_
