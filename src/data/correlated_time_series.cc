#include "src/data/correlated_time_series.h"

#include <cmath>

#include "src/common/stats.h"

namespace tsdm {

Status CorrelatedTimeSeries::Validate() const {
  if (series_.NumChannels() != graph_.NumSensors()) {
    return Status::FailedPrecondition(
        "CorrelatedTimeSeries: channel count != sensor count");
  }
  if (!series_.HasSortedTimestamps()) {
    return Status::FailedPrecondition(
        "CorrelatedTimeSeries: timestamps not strictly increasing");
  }
  return Status::OK();
}

double CorrelatedTimeSeries::SensorCorrelation(size_t a, size_t b) const {
  std::vector<double> va, vb;
  va.reserve(NumSteps());
  vb.reserve(NumSteps());
  for (size_t t = 0; t < NumSteps(); ++t) {
    double x = At(t, a), y = At(t, b);
    if (std::isfinite(x) && std::isfinite(y)) {
      va.push_back(x);
      vb.push_back(y);
    }
  }
  return PearsonCorrelation(va, vb);
}

double CorrelatedTimeSeries::MeanEdgeCorrelation() const {
  double total = 0.0;
  size_t count = 0;
  for (size_t a = 0; a < NumSensors(); ++a) {
    for (const auto& nb : graph_.Neighbors(static_cast<int>(a))) {
      if (nb.id <= static_cast<int>(a)) continue;  // each edge once
      total += SensorCorrelation(a, nb.id);
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace tsdm
