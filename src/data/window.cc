#include "src/data/window.h"

#include <algorithm>

namespace tsdm {

Result<SupervisedWindows> MakeSupervised(const std::vector<double>& values,
                                         int lags, int horizon) {
  if (lags < 1 || horizon < 1) {
    return Status::InvalidArgument("MakeSupervised: lags/horizon must be >=1");
  }
  int n = static_cast<int>(values.size());
  int num_rows = n - lags - horizon + 1;
  if (num_rows <= 0) {
    return Status::InvalidArgument("MakeSupervised: series too short");
  }
  SupervisedWindows out;
  out.features = Matrix(num_rows, lags);
  out.targets.resize(num_rows);
  for (int i = 0; i < num_rows; ++i) {
    for (int j = 0; j < lags; ++j) {
      out.features(i, j) = values[i + j];
    }
    out.targets[i] = values[i + lags + horizon - 1];
  }
  return out;
}

std::vector<std::vector<double>> SlidingSubsequences(
    const std::vector<double>& values, int window, int stride) {
  std::vector<std::vector<double>> out;
  if (window <= 0 || stride <= 0) return out;
  int n = static_cast<int>(values.size());
  for (int start = 0; start + window <= n; start += stride) {
    out.emplace_back(values.begin() + start, values.begin() + start + window);
  }
  return out;
}

SeriesSplit TrainTestSplit(const std::vector<double>& values,
                           double train_fraction) {
  SeriesSplit split;
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  size_t cut = static_cast<size_t>(values.size() * train_fraction);
  split.train.assign(values.begin(), values.begin() + cut);
  split.test.assign(values.begin() + cut, values.end());
  return split;
}

}  // namespace tsdm
