#include "src/data/time_series.h"

#include <cmath>
#include <numeric>

namespace tsdm {

TimeSeries::TimeSeries(std::vector<int64_t> timestamps, size_t num_channels,
                       double fill)
    : timestamps_(std::move(timestamps)),
      num_channels_(num_channels),
      values_(timestamps_.size() * num_channels, fill) {}

TimeSeries TimeSeries::Regular(int64_t start_time, int64_t step_seconds,
                               size_t num_steps, size_t num_channels) {
  std::vector<int64_t> ts(num_steps);
  for (size_t i = 0; i < num_steps; ++i) {
    ts[i] = start_time + static_cast<int64_t>(i) * step_seconds;
  }
  return TimeSeries(std::move(ts), num_channels);
}

TimeSeries TimeSeries::FromValues(const std::vector<double>& values) {
  TimeSeries ts = Regular(0, 1, values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) ts.Set(i, 0, values[i]);
  return ts;
}

bool TimeSeries::IsMissing(size_t step, size_t channel) const {
  return !std::isfinite(At(step, channel));
}

size_t TimeSeries::CountMissing() const {
  size_t count = 0;
  for (double v : values_) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

double TimeSeries::MissingRate() const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(CountMissing()) /
         static_cast<double>(values_.size());
}

std::vector<double> TimeSeries::Channel(size_t c) const {
  return ChannelView(c).ToVector();
}

Status TimeSeries::SetChannel(size_t c, const std::vector<double>& values) {
  if (values.size() != NumSteps()) {
    return Status::InvalidArgument("SetChannel: size mismatch");
  }
  for (size_t i = 0; i < NumSteps(); ++i) Set(i, c, values[i]);
  return Status::OK();
}

std::vector<double> TimeSeries::Observation(size_t step) const {
  std::vector<double> out(num_channels_);
  for (size_t c = 0; c < num_channels_; ++c) out[c] = At(step, c);
  return out;
}

TimeSeries TimeSeries::Slice(size_t begin, size_t end) const {
  if (begin > end || end > NumSteps()) return TimeSeries();
  TimeSeries out(std::vector<int64_t>(timestamps_.begin() + begin,
                                      timestamps_.begin() + end),
                 num_channels_);
  std::copy(values_.begin() + begin * num_channels_,
            values_.begin() + end * num_channels_, out.values_.begin());
  return out;
}

Status TimeSeries::Append(int64_t timestamp, const std::vector<double>& obs) {
  if (num_channels_ == 0) num_channels_ = obs.size();
  if (obs.size() != num_channels_) {
    return Status::InvalidArgument("Append: channel count mismatch");
  }
  timestamps_.push_back(timestamp);
  values_.insert(values_.end(), obs.begin(), obs.end());
  return Status::OK();
}

bool TimeSeries::HasSortedTimestamps() const {
  for (size_t i = 1; i < timestamps_.size(); ++i) {
    if (timestamps_[i] <= timestamps_[i - 1]) return false;
  }
  return true;
}

}  // namespace tsdm
