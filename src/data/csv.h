#ifndef TSDM_DATA_CSV_H_
#define TSDM_DATA_CSV_H_

#include <string>

#include "src/common/status.h"
#include "src/data/time_series.h"

namespace tsdm {

/// Writes a TimeSeries to CSV with a header row
/// `timestamp,c0,c1,...`; missing values are written as empty fields.
Status WriteTimeSeriesCsv(const TimeSeries& series, const std::string& path);

/// Reads a TimeSeries previously written by WriteTimeSeriesCsv (or any CSV
/// whose first column is an integer timestamp). Empty or non-numeric value
/// fields become missing entries.
Result<TimeSeries> ReadTimeSeriesCsv(const std::string& path);

}  // namespace tsdm

#endif  // TSDM_DATA_CSV_H_
