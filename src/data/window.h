#ifndef TSDM_DATA_WINDOW_H_
#define TSDM_DATA_WINDOW_H_

#include <vector>

#include "src/common/matrix.h"
#include "src/common/status.h"

namespace tsdm {

/// A supervised dataset carved from a series with sliding windows:
/// row i of `features` holds the `lags` most recent values (oldest first) and
/// `targets[i]` the value `horizon` steps ahead of the window end.
struct SupervisedWindows {
  Matrix features;
  std::vector<double> targets;
};

/// Builds lagged-feature / future-target pairs from a univariate sequence.
/// Requires lags >= 1, horizon >= 1 and a sequence long enough for at least
/// one window; fails with InvalidArgument otherwise.
Result<SupervisedWindows> MakeSupervised(const std::vector<double>& values,
                                         int lags, int horizon);

/// Extracts all length-`window` subsequences with the given stride.
std::vector<std::vector<double>> SlidingSubsequences(
    const std::vector<double>& values, int window, int stride);

/// Splits a sequence at floor(n * train_fraction) into train/test halves.
struct SeriesSplit {
  std::vector<double> train;
  std::vector<double> test;
};
SeriesSplit TrainTestSplit(const std::vector<double>& values,
                           double train_fraction);

}  // namespace tsdm

#endif  // TSDM_DATA_WINDOW_H_
