#ifndef TSDM_DATA_SENSOR_GRAPH_H_
#define TSDM_DATA_SENSOR_GRAPH_H_

#include <cstddef>
#include <vector>

#include "src/common/matrix.h"
#include "src/common/status.h"

namespace tsdm {

/// A weighted undirected graph over sensors, used to model the spatial
/// correlations of a correlated time series (Definition 2). Sensors carry
/// planar positions so distance-based weights can be derived.
class SensorGraph {
 public:
  struct Sensor {
    double x = 0.0;
    double y = 0.0;
  };

  SensorGraph() = default;
  explicit SensorGraph(size_t num_sensors) : sensors_(num_sensors) {}

  size_t NumSensors() const { return sensors_.size(); }
  size_t NumEdges() const { return edge_count_; }

  /// Adds a sensor at (x, y); returns its id.
  int AddSensor(double x, double y);
  const Sensor& sensor(int id) const { return sensors_[id]; }

  /// Adds (or overwrites) the undirected edge {a, b} with the given weight.
  Status AddEdge(int a, int b, double weight);

  /// Edge weight, or 0 if the edge does not exist.
  double Weight(int a, int b) const;
  bool HasEdge(int a, int b) const { return Weight(a, b) != 0.0; }

  /// Neighbor ids of `a` together with edge weights.
  struct Neighbor {
    int id;
    double weight;
  };
  const std::vector<Neighbor>& Neighbors(int a) const { return adj_[a]; }

  /// Dense adjacency matrix (symmetric).
  Matrix AdjacencyMatrix() const;

  /// Row-normalized adjacency (random-walk transition matrix). Isolated
  /// sensors get an all-zero row.
  Matrix TransitionMatrix() const;

  /// Builds a graph connecting each sensor to its k nearest neighbors with
  /// Gaussian-kernel weights exp(-d^2 / (2 sigma^2)).
  static SensorGraph KNearest(const std::vector<Sensor>& positions, int k,
                              double sigma);

 private:
  std::vector<Sensor> sensors_;
  std::vector<std::vector<Neighbor>> adj_;
  size_t edge_count_ = 0;
};

}  // namespace tsdm

#endif  // TSDM_DATA_SENSOR_GRAPH_H_
