#ifndef TSDM_DATA_CORRELATED_TIME_SERIES_H_
#define TSDM_DATA_CORRELATED_TIME_SERIES_H_

#include <vector>

#include "src/common/series_view.h"
#include "src/common/status.h"
#include "src/data/sensor_graph.h"
#include "src/data/time_series.h"

namespace tsdm {

/// A correlated time series (Definition 2): N time-aligned univariate series,
/// one per sensor, whose correlations are modeled by a sensor graph.
/// Internally stored as a single TimeSeries with one channel per sensor.
class CorrelatedTimeSeries {
 public:
  CorrelatedTimeSeries() = default;
  CorrelatedTimeSeries(SensorGraph graph, TimeSeries series)
      : graph_(std::move(graph)), series_(std::move(series)) {}

  size_t NumSensors() const { return graph_.NumSensors(); }
  size_t NumSteps() const { return series_.NumSteps(); }

  const SensorGraph& graph() const { return graph_; }
  SensorGraph& graph() { return graph_; }
  const TimeSeries& series() const { return series_; }
  TimeSeries& series() { return series_; }

  /// Value of sensor s at step t (may be NaN if missing).
  double At(size_t t, size_t s) const { return series_.At(t, s); }
  void Set(size_t t, size_t s, double v) { series_.Set(t, s, v); }

  /// Zero-copy view of one sensor's univariate series (see
  /// TimeSeries::ChannelView for invalidation rules).
  SeriesView SensorView(size_t s) const { return series_.ChannelView(s); }

  /// The univariate series of one sensor, copied (thin wrapper over
  /// SensorView; prefer the view on hot paths).
  std::vector<double> SensorSeries(size_t s) const {
    return series_.Channel(s);
  }

  /// Validates that the series channel count matches the sensor count.
  Status Validate() const;

  /// Pearson correlation between the (finite overlap of) two sensor series.
  double SensorCorrelation(size_t a, size_t b) const;

  /// Mean pairwise correlation over all graph edges; a summary of how
  /// strongly the spatial structure shows up in the data.
  double MeanEdgeCorrelation() const;

 private:
  SensorGraph graph_;
  TimeSeries series_;
};

}  // namespace tsdm

#endif  // TSDM_DATA_CORRELATED_TIME_SERIES_H_
