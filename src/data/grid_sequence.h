#ifndef TSDM_DATA_GRID_SEQUENCE_H_
#define TSDM_DATA_GRID_SEQUENCE_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace tsdm {

/// An image sequence (Definition 4): T frames, each an H x W grid of C
/// observed properties per cell — e.g. citywide crowd-flow heatmaps.
class GridSequence {
 public:
  GridSequence() = default;
  GridSequence(size_t num_frames, size_t height, size_t width,
               size_t num_channels, double fill = 0.0)
      : frames_(num_frames),
        height_(height),
        width_(width),
        channels_(num_channels),
        data_(num_frames * height * width * num_channels, fill) {}

  size_t NumFrames() const { return frames_; }
  size_t Height() const { return height_; }
  size_t Width() const { return width_; }
  size_t NumChannels() const { return channels_; }

  double At(size_t t, size_t r, size_t c, size_t ch) const {
    return data_[Index(t, r, c, ch)];
  }
  void Set(size_t t, size_t r, size_t c, size_t ch, double v) {
    data_[Index(t, r, c, ch)] = v;
  }

  /// Sum of one channel over a full frame (e.g. total inflow at time t).
  double FrameSum(size_t t, size_t ch) const;

  /// The per-frame time series of one cell/channel, length NumFrames().
  std::vector<double> CellSeries(size_t r, size_t c, size_t ch) const;

  /// Flattens every frame into a row; the result has NumFrames rows and
  /// H*W*C columns — convenient for matrix-based analytics.
  std::vector<std::vector<double>> ToRows() const;

 private:
  size_t Index(size_t t, size_t r, size_t c, size_t ch) const {
    return ((t * height_ + r) * width_ + c) * channels_ + ch;
  }

  size_t frames_ = 0;
  size_t height_ = 0;
  size_t width_ = 0;
  size_t channels_ = 0;
  std::vector<double> data_;
};

}  // namespace tsdm

#endif  // TSDM_DATA_GRID_SEQUENCE_H_
