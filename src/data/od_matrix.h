#ifndef TSDM_DATA_OD_MATRIX_H_
#define TSDM_DATA_OD_MATRIX_H_

#include <vector>

#include "src/common/status.h"
#include "src/data/grid_sequence.h"
#include "src/data/trajectory.h"

namespace tsdm {

/// A sequence of Origin-Destination matrices over a gridded city ([14]):
/// entry (o, d) of frame t counts trips departing region o for region d
/// during interval t. Stored as a GridSequence with one frame per
/// interval, height = width = number of regions, 1 channel.
class OdMatrixSequence {
 public:
  OdMatrixSequence() = default;

  /// `num_regions` city regions, `num_intervals` time slices of
  /// `interval_seconds` starting at `start_time`.
  OdMatrixSequence(int num_regions, int num_intervals,
                   double interval_seconds, double start_time = 0.0)
      : regions_(num_regions),
        interval_seconds_(interval_seconds),
        start_time_(start_time),
        grid_(num_intervals, num_regions, num_regions, 1) {}

  int NumRegions() const { return regions_; }
  size_t NumIntervals() const { return grid_.NumFrames(); }

  double Count(size_t t, int origin, int destination) const {
    return grid_.At(t, origin, destination, 0);
  }
  void SetCount(size_t t, int origin, int destination, double count) {
    grid_.Set(t, origin, destination, 0, count);
  }
  void AddTrip(size_t t, int origin, int destination, double weight = 1.0) {
    grid_.Set(t, origin, destination, 0,
              grid_.At(t, origin, destination, 0) + weight);
  }

  /// Interval index for an absolute time, or -1 outside the range.
  int IntervalFor(double time_seconds) const;

  /// Accumulates a trip into the matrix from a trajectory's first/last
  /// fixes, given a region classifier (x, y) -> region id.
  template <typename RegionFn>
  Status AddTrajectory(const Trajectory& trajectory, RegionFn region_of) {
    if (trajectory.NumPoints() < 2) {
      return Status::InvalidArgument("AddTrajectory: need >= 2 fixes");
    }
    const TrajectoryPoint& first = trajectory.point(0);
    const TrajectoryPoint& last =
        trajectory.point(trajectory.NumPoints() - 1);
    int t = IntervalFor(first.t);
    if (t < 0) return Status::OutOfRange("AddTrajectory: time outside range");
    int o = region_of(first.x, first.y);
    int d = region_of(last.x, last.y);
    if (o < 0 || d < 0 || o >= regions_ || d >= regions_) {
      return Status::OutOfRange("AddTrajectory: region outside grid");
    }
    AddTrip(static_cast<size_t>(t), o, d);
    return Status::OK();
  }

  /// The (o, d) series across intervals.
  std::vector<double> PairSeries(int origin, int destination) const {
    return grid_.CellSeries(origin, destination, 0);
  }

  /// Total trips departing `origin` in interval t (row marginal).
  double OutFlow(size_t t, int origin) const;
  /// Total trips arriving at `destination` in interval t (column marginal).
  double InFlow(size_t t, int destination) const;

  GridSequence& grid() { return grid_; }
  const GridSequence& grid() const { return grid_; }

 private:
  int regions_ = 0;
  double interval_seconds_ = 3600.0;
  double start_time_ = 0.0;
  GridSequence grid_;
};

/// Stochastic OD completion ([14]): repairs missing/unobserved OD entries
/// (marked NaN) by combining a temporal estimate (per-pair interpolation
/// across intervals) with a structural estimate (gravity-style rank-1
/// reconstruction from the row/column marginals of observed entries).
class OdCompletion {
 public:
  struct Options {
    double structural_weight = 0.5;  ///< blend of structural vs temporal
  };

  OdCompletion() = default;
  explicit OdCompletion(Options options) : options_(options) {}

  /// Fills every NaN entry of `matrix` in place.
  Status Complete(OdMatrixSequence* matrix) const;

 private:
  Options options_;
};

}  // namespace tsdm

#endif  // TSDM_DATA_OD_MATRIX_H_
