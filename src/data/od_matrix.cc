#include "src/data/od_matrix.h"

#include <cmath>

#include "src/common/stats.h"
#include "src/governance/imputation/imputer.h"

namespace tsdm {

int OdMatrixSequence::IntervalFor(double time_seconds) const {
  if (interval_seconds_ <= 0.0) return -1;
  double offset = time_seconds - start_time_;
  if (offset < 0.0) return -1;
  int t = static_cast<int>(offset / interval_seconds_);
  if (t >= static_cast<int>(NumIntervals())) return -1;
  return t;
}

double OdMatrixSequence::OutFlow(size_t t, int origin) const {
  double total = 0.0;
  for (int d = 0; d < regions_; ++d) {
    double v = Count(t, origin, d);
    if (std::isfinite(v)) total += v;
  }
  return total;
}

double OdMatrixSequence::InFlow(size_t t, int destination) const {
  double total = 0.0;
  for (int o = 0; o < regions_; ++o) {
    double v = Count(t, o, destination);
    if (std::isfinite(v)) total += v;
  }
  return total;
}

Status OdCompletion::Complete(OdMatrixSequence* matrix) const {
  int regions = matrix->NumRegions();
  size_t intervals = matrix->NumIntervals();
  if (regions == 0 || intervals == 0) {
    return Status::InvalidArgument("OdCompletion: empty matrix");
  }

  // Temporal estimate: linear interpolation of each pair's series.
  // Reuse the TimeSeries imputer by flattening pairs into channels.
  TimeSeries flat = TimeSeries::Regular(0, 1, intervals, regions * regions);
  for (int o = 0; o < regions; ++o) {
    for (int d = 0; d < regions; ++d) {
      std::vector<double> series = matrix->PairSeries(o, d);
      flat.SetChannel(o * regions + d, series);
    }
  }
  TimeSeries temporal = flat;
  TSDM_RETURN_IF_ERROR(LinearInterpolationImputer().Impute(&temporal));

  // Structural estimate per interval: gravity-style rank-1 model
  // est(o, d) = OutFlow(o) * InFlow(d) / total, computed from the observed
  // entries of that interval.
  for (size_t t = 0; t < intervals; ++t) {
    double total = 0.0;
    int observed = 0;
    std::vector<double> out_flow(regions, 0.0), in_flow(regions, 0.0);
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) {
        double v = matrix->Count(t, o, d);
        if (std::isfinite(v)) {
          total += v;
          out_flow[o] += v;
          in_flow[d] += v;
          ++observed;
        }
      }
    }
    // Marginals computed over only the observed entries are biased low by
    // the observed fraction p (under MCAR, row*col/total ~ p * true);
    // rescale by 1/p to debias the gravity estimate.
    double p = regions > 0 ? static_cast<double>(observed) /
                                 (static_cast<double>(regions) * regions)
                           : 0.0;
    for (int o = 0; o < regions; ++o) {
      for (int d = 0; d < regions; ++d) {
        double v = matrix->Count(t, o, d);
        if (std::isfinite(v)) continue;
        double structural =
            (total > 0.0 && p > 0.0)
                ? out_flow[o] * in_flow[d] / (total * p)
                : 0.0;
        double temporal_v = temporal.At(t, o * regions + d);
        double blended;
        if (std::isfinite(temporal_v)) {
          blended = options_.structural_weight * structural +
                    (1.0 - options_.structural_weight) * temporal_v;
        } else {
          blended = structural;
        }
        matrix->SetCount(t, o, d, std::max(0.0, blended));
      }
    }
  }
  return Status::OK();
}

}  // namespace tsdm
