#include "src/data/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace tsdm {

Status WriteTimeSeriesCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open file for writing: " + path);
  out << "timestamp";
  for (size_t c = 0; c < series.NumChannels(); ++c) out << ",c" << c;
  out << "\n";
  out.precision(12);
  for (size_t i = 0; i < series.NumSteps(); ++i) {
    out << series.Timestamp(i);
    for (size_t c = 0; c < series.NumChannels(); ++c) {
      out << ",";
      if (!series.IsMissing(i, c)) out << series.At(i, c);
    }
    out << "\n";
  }
  if (!out) return Status::Internal("write failure: " + path);
  return Status::OK();
}

Result<TimeSeries> ReadTimeSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV: " + path);
  }
  // Channel count from the header (fields after "timestamp").
  size_t channels = 0;
  for (char ch : line) {
    if (ch == ',') ++channels;
  }
  if (channels == 0) {
    return Status::InvalidArgument("CSV has no value columns: " + path);
  }

  TimeSeries series;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    if (!std::getline(ss, field, ',')) continue;
    int64_t timestamp = 0;
    try {
      timestamp = std::stoll(field);
    } catch (...) {
      return Status::InvalidArgument("bad timestamp field: " + field);
    }
    std::vector<double> obs(channels, kMissingValue);
    for (size_t c = 0; c < channels; ++c) {
      if (!std::getline(ss, field, ',')) break;
      if (field.empty()) continue;
      try {
        obs[c] = std::stod(field);
      } catch (...) {
        // Leave as missing.
      }
    }
    Status st = series.Append(timestamp, obs);
    if (!st.ok()) return st;
  }
  return series;
}

}  // namespace tsdm
