#include "src/decision/personal/context_preference.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsdm {

DecisionContext DecisionContext::FromTime(double time_of_day_seconds,
                                          bool weekend) {
  DecisionContext ctx;
  double hours = std::fmod(time_of_day_seconds / 3600.0, 24.0);
  if (hours < 0.0) hours += 24.0;
  ctx.hour_bucket = std::min(kHourBuckets - 1,
                             static_cast<int>(hours / (24.0 / kHourBuckets)));
  ctx.weekend = weekend;
  return ctx;
}

void ContextualPreferenceModel::AddObservation(
    ChoiceObservation observation) {
  observations_.push_back(std::move(observation));
  trained_ = false;
}

double ContextualPreferenceModel::Agreement(
    const std::vector<double>& weights,
    const std::vector<const ChoiceObservation*>& subset) const {
  if (subset.empty()) return 0.0;
  int hits = 0;
  for (const ChoiceObservation* obs : subset) {
    double best = std::numeric_limits<double>::infinity();
    int best_idx = -1;
    for (size_t i = 0; i < obs->candidate_costs.size(); ++i) {
      double value = 0.0;
      for (size_t j = 0;
           j < weights.size() && j < obs->candidate_costs[i].size(); ++j) {
        value += weights[j] * obs->candidate_costs[i][j];
      }
      if (value < best) {
        best = value;
        best_idx = static_cast<int>(i);
      }
    }
    if (best_idx == obs->chosen) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(subset.size());
}

Status ContextualPreferenceModel::Train() {
  if (observations_.empty()) {
    return Status::FailedPrecondition("preference model: no observations");
  }
  int num_groups = options_.contextual ? DecisionContext::kNumContexts : 1;
  weights_.assign(num_groups,
                  std::vector<double>(options_.num_criteria,
                                      1.0 / options_.num_criteria));

  // Group observations.
  std::vector<std::vector<const ChoiceObservation*>> groups(num_groups);
  for (const auto& obs : observations_) {
    int g = options_.contextual ? obs.context.Index() : 0;
    groups[g].push_back(&obs);
  }

  Rng rng(options_.seed);
  for (int g = 0; g < num_groups; ++g) {
    if (groups[g].empty()) continue;  // keep the uniform default
    double best_agreement = Agreement(weights_[g], groups[g]);
    for (int s = 0; s < options_.samples; ++s) {
      // Random point on the simplex via exponential spacing.
      std::vector<double> w(options_.num_criteria);
      double total = 0.0;
      for (double& x : w) {
        x = rng.Exponential(1.0);
        total += x;
      }
      for (double& x : w) x /= total;
      double agreement = Agreement(w, groups[g]);
      if (agreement > best_agreement) {
        best_agreement = agreement;
        weights_[g] = w;
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

const std::vector<double>& ContextualPreferenceModel::WeightsFor(
    const DecisionContext& context) const {
  int g = options_.contextual ? context.Index() : 0;
  return weights_[g];
}

int ContextualPreferenceModel::Choose(
    const DecisionContext& context,
    const std::vector<std::vector<double>>& candidates) const {
  if (candidates.empty() || !trained_) return -1;
  const std::vector<double>& w = WeightsFor(context);
  double best = std::numeric_limits<double>::infinity();
  int best_idx = -1;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double value = 0.0;
    for (size_t j = 0; j < w.size() && j < candidates[i].size(); ++j) {
      value += w[j] * candidates[i][j];
    }
    if (value < best) {
      best = value;
      best_idx = static_cast<int>(i);
    }
  }
  return best_idx;
}

double ContextualPreferenceModel::TrainingAgreement() const {
  if (!trained_ || observations_.empty()) return 0.0;
  int hits = 0;
  for (const auto& obs : observations_) {
    if (Choose(obs.context, obs.candidate_costs) == obs.chosen) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(observations_.size());
}

}  // namespace tsdm
