#ifndef TSDM_DECISION_PERSONAL_CONTEXT_PREFERENCE_H_
#define TSDM_DECISION_PERSONAL_CONTEXT_PREFERENCE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace tsdm {

/// A decision context ([29], [55]): time-of-day bucket x weekend flag.
/// Preferences over criteria (time, distance, fuel, ...) depend on it —
/// e.g. commuters weight time heavily on weekday mornings.
struct DecisionContext {
  int hour_bucket = 0;   ///< 0..num_hour_buckets-1
  bool weekend = false;

  static constexpr int kHourBuckets = 4;
  /// Flat context index in [0, kNumContexts).
  int Index() const { return hour_bucket * 2 + (weekend ? 1 : 0); }
  static constexpr int kNumContexts = kHourBuckets * 2;

  /// Buckets a time of day (seconds) and weekday flag.
  static DecisionContext FromTime(double time_of_day_seconds, bool weekend);
};

/// One observed choice: in `context`, among candidate cost vectors, the
/// decision maker picked `chosen`.
struct ChoiceObservation {
  DecisionContext context;
  std::vector<std::vector<double>> candidate_costs;
  int chosen = 0;
};

/// Learns per-context preference weights from observed choices by
/// maximizing choice agreement over random simplex samples — simple,
/// derivative-free, and adequate for low-dimensional preference vectors.
/// A `global` variant (single shared weight vector) serves as the
/// non-personalized baseline.
class ContextualPreferenceModel {
 public:
  struct Options {
    int num_criteria = 2;
    int samples = 400;     ///< random simplex points tried per context
    bool contextual = true;  ///< false = single global weight vector
    uint64_t seed = 29;
  };

  ContextualPreferenceModel() = default;
  explicit ContextualPreferenceModel(Options options) : options_(options) {}

  void AddObservation(ChoiceObservation observation);

  /// Fits weights; fails when no observations were added.
  Status Train();

  /// The learned weights for a context (global weights when contextual is
  /// off). Valid after Train().
  const std::vector<double>& WeightsFor(const DecisionContext& context) const;

  /// Chooses among candidates with the learned preference (scalarized
  /// argmin). Returns -1 for empty candidates.
  int Choose(const DecisionContext& context,
             const std::vector<std::vector<double>>& candidates) const;

  /// Fraction of training observations whose choice the model reproduces.
  double TrainingAgreement() const;

 private:
  /// Agreement of a weight vector on a subset of observations.
  double Agreement(const std::vector<double>& weights,
                   const std::vector<const ChoiceObservation*>& subset) const;

  Options options_;
  std::vector<ChoiceObservation> observations_;
  std::vector<std::vector<double>> weights_;  // per context (or 1 global)
  bool trained_ = false;
};

}  // namespace tsdm

#endif  // TSDM_DECISION_PERSONAL_CONTEXT_PREFERENCE_H_
