#ifndef TSDM_DECISION_MAINTENANCE_MAINTENANCE_H_
#define TSDM_DECISION_MAINTENANCE_MAINTENANCE_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/sim/degradation.h"

namespace tsdm {

/// Maintenance decision policies (§II-D predictive maintenance): each
/// review, given the recent health readings, decide whether to schedule
/// maintenance before the next review. Failures cost far more than
/// planned maintenance (unplanned downtime), while maintaining too early
/// wastes remaining useful life.
class MaintenancePolicy {
 public:
  virtual ~MaintenancePolicy() = default;
  virtual std::string Name() const = 0;
  /// True = maintain now. `readings` is the full observed health history
  /// since the last restoration.
  virtual bool ShouldMaintain(const std::vector<double>& readings) = 0;
};

/// Run-to-failure: never maintains proactively (repairs on failure only).
class RunToFailurePolicy : public MaintenancePolicy {
 public:
  std::string Name() const override { return "run-to-failure"; }
  bool ShouldMaintain(const std::vector<double>&) override { return false; }
};

/// Fixed-interval preventive maintenance, regardless of condition.
class ScheduledPolicy : public MaintenancePolicy {
 public:
  explicit ScheduledPolicy(int interval) : interval_(interval) {}
  std::string Name() const override;
  bool ShouldMaintain(const std::vector<double>& readings) override {
    return static_cast<int>(readings.size()) >= interval_;
  }

 private:
  int interval_;
};

/// Condition threshold: maintain when the smoothed reading drops below a
/// fixed health level.
class ConditionThresholdPolicy : public MaintenancePolicy {
 public:
  ConditionThresholdPolicy(double health_threshold, int smooth_window = 8)
      : threshold_(health_threshold), window_(smooth_window) {}
  std::string Name() const override;
  bool ShouldMaintain(const std::vector<double>& readings) override;

 private:
  double threshold_;
  int window_;
};

/// Predictive policy: fits a degradation trend to the recent readings,
/// bootstraps the distribution of health at the next review, and
/// maintains when P(health < failure_threshold before next review)
/// exceeds `risk_tolerance` — decision making under uncertainty applied
/// to maintenance.
class PredictiveMaintenancePolicy : public MaintenancePolicy {
 public:
  struct Options {
    double failure_threshold = 20.0;
    double risk_tolerance = 0.10;  ///< act when failure risk exceeds this
    int horizon = 24;              ///< steps until the next review
    int fit_window = 96;           ///< recent readings used for the trend
    int bootstrap_samples = 200;
    uint64_t seed = 37;
  };

  PredictiveMaintenancePolicy() : rng_(options_.seed) {}
  explicit PredictiveMaintenancePolicy(Options options)
      : options_(options), rng_(options.seed) {}

  std::string Name() const override;
  bool ShouldMaintain(const std::vector<double>& readings) override;

  /// Estimated failure probability within the horizon given readings
  /// (exposed for tests and calibration studies).
  double FailureProbability(const std::vector<double>& readings);

 private:
  Options options_;
  Rng rng_;
};

/// Outcome of replaying a policy on a fleet of simulated machines.
struct MaintenanceOutcome {
  int failures = 0;           ///< unplanned breakdowns
  int maintenances = 0;       ///< planned services
  double mean_life_used = 0.0;  ///< mean fraction of usable life consumed
                                ///< at service time (1 = serviced at the
                                ///< brink, higher utilization is better)
  double cost = 0.0;          ///< failures * failure_cost +
                              ///< maintenances * service_cost
};

/// Replays `policy` on `machines` independent units for `steps` steps with
/// a decision every `review_period` steps.
MaintenanceOutcome SimulateMaintenance(const DegradationSpec& spec,
                                       MaintenancePolicy* policy,
                                       int machines, int steps,
                                       int review_period,
                                       double failure_cost = 100.0,
                                       double service_cost = 10.0,
                                       uint64_t seed = 99);

}  // namespace tsdm

#endif  // TSDM_DECISION_MAINTENANCE_MAINTENANCE_H_
