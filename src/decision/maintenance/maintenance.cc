#include "src/decision/maintenance/maintenance.h"

#include <algorithm>
#include <cstdio>
#include <cmath>

#include "src/common/matrix.h"
#include "src/common/stats.h"

namespace tsdm {

std::string ScheduledPolicy::Name() const {
  return "scheduled(" + std::to_string(interval_) + ")";
}

std::string ConditionThresholdPolicy::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "threshold(%g)", threshold_);
  return buf;
}

bool ConditionThresholdPolicy::ShouldMaintain(
    const std::vector<double>& readings) {
  if (readings.empty()) return false;
  size_t window = std::min<size_t>(window_, readings.size());
  double smoothed = 0.0;
  for (size_t i = readings.size() - window; i < readings.size(); ++i) {
    smoothed += readings[i];
  }
  smoothed /= static_cast<double>(window);
  return smoothed <= threshold_;
}

std::string PredictiveMaintenancePolicy::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "predictive(r=%g)",
                options_.risk_tolerance);
  return buf;
}

double PredictiveMaintenancePolicy::FailureProbability(
    const std::vector<double>& readings) {
  if (readings.size() < 8) return 0.0;
  size_t window = std::min<size_t>(options_.fit_window, readings.size());
  std::vector<double> recent(readings.end() - window, readings.end());
  size_t n = recent.size();

  // Current health estimate: smoothed tail (sensor noise averaged out).
  size_t smooth = std::min<size_t>(8, n);
  double current = 0.0;
  for (size_t i = n - smooth; i < n; ++i) current += recent[i];
  current /= static_cast<double>(smooth);

  // Empirical per-step wear increments. They carry the trend, the noise,
  // *and* the occasional damage jumps — so bootstrapping cumulative sums
  // of sampled increments reproduces the real spread of future health,
  // which a trend-plus-residual model underestimates.
  std::vector<double> increments;
  increments.reserve(n - 1);
  for (size_t i = 1; i < n; ++i) {
    increments.push_back(recent[i] - recent[i - 1]);
  }
  if (increments.empty()) return 0.0;

  int failures = 0;
  for (int s = 0; s < options_.bootstrap_samples; ++s) {
    double health = current;
    bool fails = false;
    for (int h = 1; h <= options_.horizon && !fails; ++h) {
      health += increments[rng_.Index(static_cast<int>(increments.size()))];
      fails = health <= options_.failure_threshold;
    }
    if (fails) ++failures;
  }
  return static_cast<double>(failures) / options_.bootstrap_samples;
}

bool PredictiveMaintenancePolicy::ShouldMaintain(
    const std::vector<double>& readings) {
  return FailureProbability(readings) > options_.risk_tolerance;
}

MaintenanceOutcome SimulateMaintenance(const DegradationSpec& spec,
                                       MaintenancePolicy* policy,
                                       int machines, int steps,
                                       int review_period, double failure_cost,
                                       double service_cost, uint64_t seed) {
  MaintenanceOutcome outcome;
  double usable_life = spec.initial_health - spec.failure_threshold;
  std::vector<double> life_used_samples;
  for (int m = 0; m < machines; ++m) {
    DegradationProcess process(spec, seed + m);
    std::vector<double> readings;
    for (int t = 0; t < steps; ++t) {
      readings.push_back(process.Step());
      if (process.failed()) {
        ++outcome.failures;
        life_used_samples.push_back(1.0);
        process.Restore();
        readings.clear();
        continue;
      }
      if (t % review_period == review_period - 1 &&
          policy->ShouldMaintain(readings)) {
        ++outcome.maintenances;
        life_used_samples.push_back(
            (spec.initial_health - process.true_health()) / usable_life);
        process.Restore();
        readings.clear();
      }
    }
  }
  outcome.mean_life_used = Mean(life_used_samples);
  outcome.cost = outcome.failures * failure_cost +
                 outcome.maintenances * service_cost;
  return outcome;
}

}  // namespace tsdm
