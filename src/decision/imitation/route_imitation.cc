#include "src/decision/imitation/route_imitation.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace tsdm {

void RouteImitator::AddExpertPath(const std::vector<int>& edge_path) {
  for (int eid : edge_path) {
    if (eid >= 0 && eid < static_cast<int>(usage_.size())) {
      usage_[eid] += 1.0;
    }
  }
  trained_ = false;
}

Status RouteImitator::Train() {
  double total = 0.0;
  for (double u : usage_) total += u;
  if (total <= 0.0) {
    return Status::FailedPrecondition("RouteImitator: no expert paths");
  }
  max_log_usage_ = 0.0;
  for (double u : usage_) {
    max_log_usage_ = std::max(max_log_usage_, std::log1p(u));
  }
  if (max_log_usage_ <= 0.0) max_log_usage_ = 1.0;
  trained_ = true;
  return Status::OK();
}

EdgeCostFn RouteImitator::LearnedCost() const {
  // Capture by value what we need; the network pointer stays borrowed.
  const RoadNetwork* network = network_;
  std::vector<double> usage = usage_;
  double max_log = max_log_usage_;
  double max_discount = options_.max_discount;
  return [network, usage, max_log, max_discount](int eid) {
    double base = network->FreeFlowTime(eid);
    double normalized = std::log1p(usage[eid]) / max_log;  // in [0,1]
    return base * (1.0 - max_discount * normalized);
  };
}

Result<Path> RouteImitator::Route(int source, int target) const {
  if (!trained_) {
    return Status::FailedPrecondition("RouteImitator: call Train() first");
  }
  return ShortestPath(*network_, source, target, LearnedCost());
}

double RouteImitator::PathJaccard(const std::vector<int>& a,
                                  const std::vector<int>& b) {
  std::set<int> sa(a.begin(), a.end());
  std::set<int> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (int e : sa) inter += sb.count(e);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

}  // namespace tsdm
