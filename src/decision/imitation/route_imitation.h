#ifndef TSDM_DECISION_IMITATION_ROUTE_IMITATION_H_
#define TSDM_DECISION_IMITATION_ROUTE_IMITATION_H_

#include <vector>

#include "src/common/status.h"
#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// Learning-based decision making ([56]): learn to route like expert
/// drivers from their (sparse) trajectories. Edges frequently used by
/// experts get a cost discount proportional to log-usage, so the learned
/// cost surface reproduces expert detours that pure shortest-path routing
/// misses (e.g. avoiding chronically congested arterials).
class RouteImitator {
 public:
  struct Options {
    /// Maximal relative discount of a heavily used edge (0..1).
    double max_discount = 0.6;
  };

  /// The network must outlive the imitator.
  explicit RouteImitator(const RoadNetwork* network)
      : network_(network), usage_(network->NumEdges(), 0.0) {}
  RouteImitator(const RoadNetwork* network, Options options)
      : network_(network), options_(options),
        usage_(network->NumEdges(), 0.0) {}

  /// Adds one expert edge path (e.g. from map matching).
  void AddExpertPath(const std::vector<int>& edge_path);

  /// Finalizes the learned cost surface; fails without any expert path.
  Status Train();

  /// The learned edge cost function (valid after Train()).
  EdgeCostFn LearnedCost() const;

  /// Routes with the learned costs.
  Result<Path> Route(int source, int target) const;

  /// Edge-set overlap |A ∩ B| / |A ∪ B| of two paths.
  static double PathJaccard(const std::vector<int>& a,
                            const std::vector<int>& b);

 private:
  const RoadNetwork* network_;
  Options options_;
  std::vector<double> usage_;
  double max_log_usage_ = 0.0;
  bool trained_ = false;
};

}  // namespace tsdm

#endif  // TSDM_DECISION_IMITATION_ROUTE_IMITATION_H_
