#ifndef TSDM_DECISION_ROUTING_DEPARTURE_PLANNER_H_
#define TSDM_DECISION_ROUTING_DEPARTURE_PLANNER_H_

#include <vector>

#include "src/common/status.h"
#include "src/decision/routing/stochastic_router.h"

namespace tsdm {

/// Departure planning with arrival windows ([53]): given a desired arrival
/// window [window_start, window_end] and a time-varying stochastic cost
/// model, jointly choose the departure time and route that maximize the
/// probability of arriving inside the window — leaving *too early* is as
/// wrong as too late (e.g. refrigerated deliveries, appointments).
class DeparturePlanner {
 public:
  struct Options {
    double earliest_departure = 0.0;      ///< seconds of day
    double latest_departure = 86400.0;
    double departure_step = 900.0;        ///< candidate grid, seconds
    int route_candidates = 4;
  };

  struct Plan {
    double depart_seconds = 0.0;
    Path route;
    Histogram arrival;                    ///< arrival-time distribution
    double window_probability = 0.0;      ///< P(arrival inside window)
  };

  /// The network must outlive the planner.
  DeparturePlanner(const RoadNetwork* network, PathCostModel cost_model,
                   Options options)
      : network_(network),
        cost_model_(std::move(cost_model)),
        options_(options) {}

  /// Best (departure, route) for arriving within [window_start,
  /// window_end] (seconds of day). NotFound when no feasible plan exists.
  Result<Plan> BestPlan(int source, int target, double window_start,
                        double window_end) const;

 private:
  const RoadNetwork* network_;
  PathCostModel cost_model_;
  Options options_;
};

}  // namespace tsdm

#endif  // TSDM_DECISION_ROUTING_DEPARTURE_PLANNER_H_
