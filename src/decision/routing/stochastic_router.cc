#include "src/decision/routing/stochastic_router.h"

namespace tsdm {

Result<std::vector<RouteCandidate>> StochasticRouter::Candidates(
    int source, int target, int k, double depart_seconds) const {
  Result<std::vector<Path>> paths = KShortestPaths(
      *network_, source, target, k, FreeFlowTimeCost(*network_));
  if (!paths.ok()) return paths.status();

  std::vector<RouteCandidate> candidates;
  for (const Path& p : *paths) {
    Result<Histogram> cost = cost_model_(p.edges, depart_seconds);
    if (!cost.ok()) continue;  // model has no coverage for this path
    RouteCandidate c;
    c.path = p;
    c.cost = *cost;
    candidates.push_back(std::move(c));
  }
  if (candidates.empty()) {
    return Status::NotFound(
        "StochasticRouter: no candidate has a cost distribution");
  }
  return candidates;
}

int StochasticRouter::BestByOnTime(
    const std::vector<RouteCandidate>& candidates, double deadline_seconds) {
  int best = -1;
  double best_p = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double p = candidates[i].cost.Cdf(deadline_seconds);
    if (p > best_p) {
      best_p = p;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int StochasticRouter::BestByUtility(
    const std::vector<RouteCandidate>& candidates,
    const UtilityFunction& utility) {
  int best = -1;
  double best_value = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double value = ExpectedUtility(candidates[i].cost, utility);
    if (best < 0 || value > best_value) {
      best = static_cast<int>(i);
      best_value = value;
    }
  }
  return best;
}

}  // namespace tsdm
