#ifndef TSDM_DECISION_ROUTING_STOCHASTIC_ROUTER_H_
#define TSDM_DECISION_ROUTING_STOCHASTIC_ROUTER_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/decision/uncertain/utility.h"
#include "src/governance/uncertainty/histogram.h"
#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// A candidate route with its travel-time distribution under a cost model.
struct RouteCandidate {
  Path path;
  Histogram cost;
};

/// Maps an edge path + departure time to a travel-time distribution —
/// satisfied by EdgeCentricModel / PathCentricModel (governance layer).
using PathCostModel = std::function<Result<Histogram>(
    const std::vector<int>& edge_path, double depart_seconds)>;

/// Stochastic route selection (§II-D): enumerate K shortest candidate
/// paths by free-flow time, attach cost distributions from the model, then
/// decide under a utility function or deadline.
class StochasticRouter {
 public:
  /// The network must outlive the router.
  StochasticRouter(const RoadNetwork* network, PathCostModel cost_model)
      : network_(network), cost_model_(std::move(cost_model)) {}

  /// Enumerates up to k candidate routes with cost distributions.
  /// Candidates whose cost the model cannot estimate are skipped; fails if
  /// none can be estimated.
  Result<std::vector<RouteCandidate>> Candidates(int source, int target,
                                                 int k,
                                                 double depart_seconds) const;

  /// Index of the candidate maximizing on-time probability for a deadline.
  static int BestByOnTime(const std::vector<RouteCandidate>& candidates,
                          double deadline_seconds);

  /// Index of the candidate maximizing expected utility.
  static int BestByUtility(const std::vector<RouteCandidate>& candidates,
                           const UtilityFunction& utility);

 private:
  const RoadNetwork* network_;
  PathCostModel cost_model_;
};

}  // namespace tsdm

#endif  // TSDM_DECISION_ROUTING_STOCHASTIC_ROUTER_H_
