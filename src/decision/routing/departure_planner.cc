#include "src/decision/routing/departure_planner.h"

#include "src/spatial/shortest_path.h"

namespace tsdm {

Result<DeparturePlanner::Plan> DeparturePlanner::BestPlan(
    int source, int target, double window_start, double window_end) const {
  if (window_end <= window_start) {
    return Status::InvalidArgument("BestPlan: empty arrival window");
  }
  Result<std::vector<Path>> routes =
      KShortestPaths(*network_, source, target, options_.route_candidates,
                     FreeFlowTimeCost(*network_));
  if (!routes.ok()) return routes.status();

  Plan best;
  bool found = false;
  for (double depart = options_.earliest_departure;
       depart <= options_.latest_departure;
       depart += options_.departure_step) {
    // Departing after the window closes can never arrive inside it.
    if (depart > window_end) break;
    for (const Path& route : *routes) {
      Result<Histogram> cost = cost_model_(route.edges, depart);
      if (!cost.ok()) continue;
      Histogram arrival = cost->Shifted(depart);
      double p = arrival.Cdf(window_end) - arrival.Cdf(window_start);
      if (!found || p > best.window_probability) {
        found = true;
        best.depart_seconds = depart;
        best.route = route;
        best.arrival = arrival;
        best.window_probability = p;
      }
    }
  }
  if (!found) {
    return Status::NotFound("BestPlan: no candidate had a cost distribution");
  }
  return best;
}

}  // namespace tsdm
