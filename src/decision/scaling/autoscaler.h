#ifndef TSDM_DECISION_SCALING_AUTOSCALER_H_
#define TSDM_DECISION_SCALING_AUTOSCALER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analytics/forecast/forecaster.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace tsdm {

/// A capacity decision for the next review period.
struct ScalingDecision {
  double capacity = 0.0;
};

/// Interface for autoscaling policies (MagicScaler scenario [6]): given the
/// demand history up to now, pick the capacity to provision for the next
/// `horizon` steps.
class AutoscalePolicy {
 public:
  virtual ~AutoscalePolicy() = default;
  virtual std::string Name() const = 0;
  virtual Result<ScalingDecision> Decide(
      const std::vector<double>& demand_history, int horizon) = 0;
};

/// Reactive baseline: provisions the recent peak plus a fixed headroom —
/// what most production autoscalers do, and what surges defeat.
class ReactivePolicy : public AutoscalePolicy {
 public:
  ReactivePolicy(double headroom = 0.15, int lookback = 6)
      : headroom_(headroom), lookback_(lookback) {}
  std::string Name() const override { return "reactive"; }
  Result<ScalingDecision> Decide(const std::vector<double>& demand_history,
                                 int horizon) override;

 private:
  double headroom_;
  int lookback_;
};

/// Predictive, uncertainty-aware policy (MagicScaler analog): forecasts the
/// demand distribution over the horizon via residual bootstrap and
/// provisions the per-step `quantile` of the maximum — meeting the target
/// service level with minimal over-provisioning.
class PredictivePolicy : public AutoscalePolicy {
 public:
  struct Options {
    int season = 144;       ///< steps per day for the internal forecaster
    double quantile = 0.95; ///< service-level target
    int bootstrap_samples = 200;
    /// Safety floor: never provision below the most recent demand times
    /// this factor — keeps surge memory the pure forecast would drop.
    double recent_floor = 1.05;
    uint64_t seed = 31;
  };

  PredictivePolicy() : rng_(options_.seed) {}
  explicit PredictivePolicy(Options options)
      : options_(options), rng_(options.seed) {}

  std::string Name() const override;
  Result<ScalingDecision> Decide(const std::vector<double>& demand_history,
                                 int horizon) override;

 private:
  Options options_;
  Rng rng_;
};

/// Outcome of replaying a policy against a demand trace.
struct AutoscaleOutcome {
  double violation_rate = 0.0;   ///< fraction of steps with demand > capacity
  double mean_capacity = 0.0;    ///< provisioning cost proxy
  double mean_overprovision = 0.0;  ///< average (capacity - demand)+ per step
  int scale_events = 0;          ///< capacity changes
};

/// Replays `policy` over the demand trace: every `review_period` steps the
/// policy decides the capacity for the next period based on the history so
/// far. The first `warmup` steps are history-only.
Result<AutoscaleOutcome> SimulateAutoscaling(
    const std::vector<double>& demand, AutoscalePolicy* policy,
    int review_period, int warmup);

}  // namespace tsdm

#endif  // TSDM_DECISION_SCALING_AUTOSCALER_H_
