#include "src/decision/scaling/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace tsdm {

Result<ScalingDecision> ReactivePolicy::Decide(
    const std::vector<double>& demand_history, int horizon) {
  (void)horizon;
  if (demand_history.empty()) {
    return Status::InvalidArgument("reactive: empty history");
  }
  size_t lookback = std::min<size_t>(lookback_, demand_history.size());
  double peak = 0.0;
  for (size_t i = demand_history.size() - lookback;
       i < demand_history.size(); ++i) {
    peak = std::max(peak, demand_history[i]);
  }
  return ScalingDecision{peak * (1.0 + headroom_)};
}

std::string PredictivePolicy::Name() const {
  return "predictive(q=" + std::to_string(options_.quantile) + ")";
}

Result<ScalingDecision> PredictivePolicy::Decide(
    const std::vector<double>& demand_history, int horizon) {
  if (static_cast<int>(demand_history.size()) < 3 * options_.season) {
    // Not enough history for the seasonal model yet: reactive fallback.
    ReactivePolicy fallback;
    return fallback.Decide(demand_history, horizon);
  }
  HoltWintersForecaster model(options_.season);
  Status st = model.Fit(demand_history);
  if (!st.ok()) return st;
  Result<std::vector<Histogram>> dist = BootstrapForecastDistribution(
      model, demand_history, horizon, options_.bootstrap_samples, &rng_);
  if (!dist.ok()) {
    ReactivePolicy fallback;
    return fallback.Decide(demand_history, horizon);
  }
  double capacity = 0.0;
  for (const Histogram& h : *dist) {
    capacity = std::max(capacity, h.Quantile(options_.quantile));
  }
  // Surge memory: never dip below the demand observed right now.
  capacity = std::max(capacity, demand_history.back() * options_.recent_floor);
  return ScalingDecision{std::max(0.0, capacity)};
}

Result<AutoscaleOutcome> SimulateAutoscaling(
    const std::vector<double>& demand, AutoscalePolicy* policy,
    int review_period, int warmup) {
  int n = static_cast<int>(demand.size());
  if (review_period < 1 || warmup < 1 || warmup >= n) {
    return Status::InvalidArgument("SimulateAutoscaling: bad parameters");
  }
  AutoscaleOutcome outcome;
  double capacity = -1.0;
  int violations = 0, steps = 0;
  double capacity_sum = 0.0, over_sum = 0.0;

  for (int t = warmup; t < n; t += review_period) {
    std::vector<double> history(demand.begin(), demand.begin() + t);
    Result<ScalingDecision> decision =
        policy->Decide(history, review_period);
    if (!decision.ok()) return decision.status();
    if (capacity < 0.0 || std::fabs(decision->capacity - capacity) >
                              1e-9 * std::max(1.0, capacity)) {
      ++outcome.scale_events;
    }
    capacity = decision->capacity;
    for (int s = t; s < std::min(n, t + review_period); ++s) {
      ++steps;
      capacity_sum += capacity;
      if (demand[s] > capacity) {
        ++violations;
      } else {
        over_sum += capacity - demand[s];
      }
    }
  }
  if (steps == 0) {
    return Status::FailedPrecondition("SimulateAutoscaling: no scored steps");
  }
  outcome.violation_rate = static_cast<double>(violations) / steps;
  outcome.mean_capacity = capacity_sum / steps;
  outcome.mean_overprovision = over_sum / steps;
  return outcome;
}

}  // namespace tsdm
