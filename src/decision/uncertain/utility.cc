#include "src/decision/uncertain/utility.h"

#include <cmath>
#include <cstdio>

namespace tsdm {

std::string ExponentialUtility::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s(a=%g)",
                a_ > 0.0 ? "risk-averse" : "risk-loving", a_);
  return buf;
}

double ExponentialUtility::operator()(double cost) const {
  double c = cost / scale_;
  if (std::fabs(a_) < 1e-12) return -c;
  return (1.0 - std::exp(a_ * c)) / a_;
}

std::string DeadlineUtility::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "deadline(%g)", deadline_);
  return buf;
}

double ExpectedUtility(const Histogram& cost,
                       const UtilityFunction& utility) {
  double acc = 0.0;
  for (int b = 0; b < cost.NumBins(); ++b) {
    double mass = cost.BinMass(b);
    if (mass > 0.0) acc += mass * utility(cost.BinCenter(b));
  }
  return acc;
}

int BestByExpectedUtility(const std::vector<Histogram>& candidates,
                          const UtilityFunction& utility) {
  int best = -1;
  double best_value = 0.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double value = ExpectedUtility(candidates[i], utility);
    if (best < 0 || value > best_value) {
      best = static_cast<int>(i);
      best_value = value;
    }
  }
  return best;
}

}  // namespace tsdm
