#include "src/decision/uncertain/dominance.h"

namespace tsdm {

std::vector<int> FsdNonDominated(const std::vector<Histogram>& candidates) {
  std::vector<int> survivors;
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (i == j) continue;
      if (candidates[j].DominatesForMinimization(candidates[i])) {
        dominated = true;
      }
    }
    if (!dominated) survivors.push_back(static_cast<int>(i));
  }
  return survivors;
}

PruneStats FsdPruneStats(const std::vector<Histogram>& candidates) {
  PruneStats stats;
  stats.total = static_cast<int>(candidates.size());
  stats.survivors = static_cast<int>(FsdNonDominated(candidates).size());
  stats.pruned_fraction =
      stats.total > 0
          ? 1.0 - static_cast<double>(stats.survivors) / stats.total
          : 0.0;
  return stats;
}

}  // namespace tsdm
