#ifndef TSDM_DECISION_UNCERTAIN_UTILITY_H_
#define TSDM_DECISION_UNCERTAIN_UTILITY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/governance/uncertainty/histogram.h"

namespace tsdm {

/// A utility function over a *cost* outcome (e.g. travel time in seconds):
/// monotonically non-increasing in cost. Risk preferences (§II-D Decision
/// Making under Uncertainty) are encoded via curvature.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;
  virtual std::string Name() const = 0;
  virtual double operator()(double cost) const = 0;
};

/// u(c) = -c: the risk-neutral expected-cost minimizer.
class RiskNeutralUtility : public UtilityFunction {
 public:
  std::string Name() const override { return "risk-neutral"; }
  double operator()(double cost) const override { return -cost; }
};

/// CARA utility u(c) = (1 - exp(a c)) / a, decreasing in c.
/// a > 0: risk-averse (tail costs hurt disproportionately);
/// a < 0: risk-loving. `scale` normalizes costs before exponentiation so
/// the parameter is comparable across problems.
class ExponentialUtility : public UtilityFunction {
 public:
  ExponentialUtility(double a, double scale = 1.0) : a_(a), scale_(scale) {}
  std::string Name() const override;
  double operator()(double cost) const override;

 private:
  double a_;
  double scale_;
};

/// u(c) = 1 when c <= deadline else 0: expected utility is the on-time
/// arrival probability — the tutorial's canonical routing objective.
class DeadlineUtility : public UtilityFunction {
 public:
  explicit DeadlineUtility(double deadline) : deadline_(deadline) {}
  std::string Name() const override;
  double operator()(double cost) const override {
    return cost <= deadline_ ? 1.0 : 0.0;
  }

 private:
  double deadline_;
};

/// E[u(X)] under a histogram cost distribution.
double ExpectedUtility(const Histogram& cost, const UtilityFunction& utility);

/// Index of the candidate maximizing expected utility (-1 if empty).
int BestByExpectedUtility(const std::vector<Histogram>& candidates,
                          const UtilityFunction& utility);

}  // namespace tsdm

#endif  // TSDM_DECISION_UNCERTAIN_UTILITY_H_
