#ifndef TSDM_DECISION_UNCERTAIN_DOMINANCE_H_
#define TSDM_DECISION_UNCERTAIN_DOMINANCE_H_

#include <vector>

#include "src/governance/uncertainty/histogram.h"

namespace tsdm {

/// First-order stochastic dominance pruning for cost minimization
/// ([51]–[53]): candidate A dominates B when A's cost CDF lies (weakly)
/// above B's everywhere — every expected-utility maximizer with a
/// non-increasing utility then prefers A, so B can be discarded *before*
/// the (expensive) per-utility evaluation.

/// Indices of candidates not FSD-dominated by any other candidate,
/// in their original order.
std::vector<int> FsdNonDominated(const std::vector<Histogram>& candidates);

/// Pruning statistics for reporting.
struct PruneStats {
  int total = 0;
  int survivors = 0;
  double pruned_fraction = 0.0;
};
PruneStats FsdPruneStats(const std::vector<Histogram>& candidates);

}  // namespace tsdm

#endif  // TSDM_DECISION_UNCERTAIN_DOMINANCE_H_
