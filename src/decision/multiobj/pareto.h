#ifndef TSDM_DECISION_MULTIOBJ_PARETO_H_
#define TSDM_DECISION_MULTIOBJ_PARETO_H_

#include <vector>

#include "src/common/status.h"
#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// Multi-objective decision making (§II-D): Pareto optimality over cost
/// vectors (all criteria minimized) and preference-function scalarization.

/// True when a dominates b: a <= b in every criterion and a < b somewhere.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the Pareto-optimal (non-dominated) cost vectors.
std::vector<size_t> ParetoFront(
    const std::vector<std::vector<double>>& costs);

/// Index minimizing the weighted sum of criteria ([54]-style preference
/// function); weights need not be normalized. Returns -1 for empty input.
int ScalarizedBest(const std::vector<std::vector<double>>& costs,
                   const std::vector<double>& weights);

/// A path annotated with one cost per criterion.
struct SkylinePath {
  Path path;
  std::vector<double> costs;
};

/// Stochastic-skyline-style route search ([15]): multi-criteria
/// label-correcting search that keeps, per node, only labels not dominated
/// by another label at that node. Returns the Pareto set of paths from
/// source to target under the given edge-cost criteria. `max_labels` caps
/// per-node label lists to bound the exponential worst case.
Result<std::vector<SkylinePath>> SkylineRoutes(
    const RoadNetwork& network, int source, int target,
    const std::vector<EdgeCostFn>& criteria, int max_labels = 32);

}  // namespace tsdm

#endif  // TSDM_DECISION_MULTIOBJ_PARETO_H_
