#include "src/decision/multiobj/pareto.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace tsdm {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return false;
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

std::vector<size_t> ParetoFront(
    const std::vector<std::vector<double>>& costs) {
  std::vector<size_t> front;
  for (size_t i = 0; i < costs.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < costs.size() && !dominated; ++j) {
      if (i != j && Dominates(costs[j], costs[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

int ScalarizedBest(const std::vector<std::vector<double>>& costs,
                   const std::vector<double>& weights) {
  int best = -1;
  double best_value = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < costs.size(); ++i) {
    double value = 0.0;
    for (size_t j = 0; j < costs[i].size() && j < weights.size(); ++j) {
      value += weights[j] * costs[i][j];
    }
    if (value < best_value) {
      best_value = value;
      best = static_cast<int>(i);
    }
  }
  return best;
}

namespace {

struct Label {
  std::vector<double> costs;
  std::vector<int> edges;
  int node = -1;
};

/// Inserts `label` into `labels` unless dominated; removes labels it
/// dominates. Returns true if inserted.
bool InsertLabel(std::vector<Label>* labels, Label label, int max_labels) {
  for (const Label& existing : *labels) {
    if (Dominates(existing.costs, label.costs) ||
        existing.costs == label.costs) {
      return false;
    }
  }
  labels->erase(std::remove_if(labels->begin(), labels->end(),
                               [&](const Label& existing) {
                                 return Dominates(label.costs,
                                                  existing.costs);
                               }),
                labels->end());
  if (static_cast<int>(labels->size()) >= max_labels) {
    // Drop the label with the worst first-criterion value to stay bounded.
    auto worst = std::max_element(
        labels->begin(), labels->end(), [](const Label& a, const Label& b) {
          return a.costs[0] < b.costs[0];
        });
    if (worst->costs[0] <= label.costs[0]) return false;
    *worst = std::move(label);
    return true;
  }
  labels->push_back(std::move(label));
  return true;
}

}  // namespace

Result<std::vector<SkylinePath>> SkylineRoutes(
    const RoadNetwork& network, int source, int target,
    const std::vector<EdgeCostFn>& criteria, int max_labels) {
  if (criteria.empty()) {
    return Status::InvalidArgument("SkylineRoutes: no criteria");
  }
  if (source < 0 || target < 0 ||
      source >= static_cast<int>(network.NumNodes()) ||
      target >= static_cast<int>(network.NumNodes())) {
    return Status::OutOfRange("SkylineRoutes: node id out of range");
  }
  size_t m = criteria.size();
  std::vector<std::vector<Label>> labels(network.NumNodes());
  std::deque<Label> queue;
  Label start;
  start.costs.assign(m, 0.0);
  start.node = source;
  labels[source].push_back(start);
  queue.push_back(start);

  while (!queue.empty()) {
    Label current = std::move(queue.front());
    queue.pop_front();
    // Stale check: the label may have been pruned at its node.
    bool alive = false;
    for (const Label& l : labels[current.node]) {
      if (l.costs == current.costs && l.edges == current.edges) {
        alive = true;
        break;
      }
    }
    if (!alive) continue;
    if (current.node == target) continue;  // extend only non-terminal labels

    for (int eid : network.OutEdges(current.node)) {
      const auto& e = network.edge(eid);
      Label next;
      next.node = e.to;
      next.edges = current.edges;
      next.edges.push_back(eid);
      next.costs.resize(m);
      bool valid = true;
      for (size_t c = 0; c < m; ++c) {
        double delta = criteria[c](eid);
        if (delta < 0.0) valid = false;
        next.costs[c] = current.costs[c] + delta;
      }
      if (!valid) continue;
      // Loop avoidance: skip if the edge's head already appears.
      bool loops = false;
      int node_walk = source;
      for (int pe : current.edges) {
        node_walk = network.edge(pe).to;
        if (node_walk == e.to) {
          loops = true;
          break;
        }
      }
      if (e.to == source) loops = true;
      if (loops) continue;
      if (InsertLabel(&labels[e.to], next, max_labels)) {
        queue.push_back(std::move(next));
      }
    }
  }

  if (labels[target].empty()) {
    return Status::NotFound("SkylineRoutes: target unreachable");
  }
  std::vector<SkylinePath> out;
  for (const Label& l : labels[target]) {
    SkylinePath sp;
    sp.costs = l.costs;
    sp.path.edges = l.edges;
    sp.path.cost = l.costs[0];
    sp.path.nodes.push_back(source);
    for (int eid : l.edges) {
      sp.path.nodes.push_back(network.edge(eid).to);
    }
    out.push_back(std::move(sp));
  }
  return out;
}

}  // namespace tsdm
