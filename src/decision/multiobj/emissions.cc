#include "src/decision/multiobj/emissions.h"

#include <algorithm>
#include <cmath>

namespace tsdm {

double EmissionModel::EmissionsFor(double meters, double speed) const {
  double s = std::max(0.5, speed);
  double deviation = (s - optimal_speed) / optimal_speed;
  double factor = 1.0 + curvature * deviation * deviation;
  return base_grams_per_meter * factor * meters;
}

EdgeCostFn EmissionCost(const RoadNetwork& network,
                        const EmissionModel& model) {
  return [&network, model](int eid) {
    const auto& e = network.edge(eid);
    return model.EmissionsFor(e.length, e.free_flow_speed);
  };
}

}  // namespace tsdm
