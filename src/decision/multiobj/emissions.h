#ifndef TSDM_DECISION_MULTIOBJ_EMISSIONS_H_
#define TSDM_DECISION_MULTIOBJ_EMISSIONS_H_

#include "src/spatial/road_network.h"
#include "src/spatial/shortest_path.h"

namespace tsdm {

/// Eco-driving support (§II-D): a speed-dependent emission model so fuel /
/// CO2 can join travel time and distance as skyline criteria. Uses the
/// classic U-shaped emission-per-km curve: high at crawling speeds
/// (idling) and at high speeds (drag), minimal around `optimal_speed`.
struct EmissionModel {
  double base_grams_per_meter = 0.12;   ///< at the optimal speed
  double optimal_speed = 13.9;          ///< m/s (~50 km/h)
  /// Curvature of the U: extra emissions grow quadratically with the
  /// relative deviation from the optimal speed.
  double curvature = 1.8;

  /// Emissions in grams for traversing `meters` at `speed` (m/s).
  double EmissionsFor(double meters, double speed) const;
};

/// Edge cost function: grams of CO2 when driving the edge at its free-flow
/// speed — the third criterion for eco-routing skylines.
EdgeCostFn EmissionCost(const RoadNetwork& network,
                        const EmissionModel& model);

}  // namespace tsdm

#endif  // TSDM_DECISION_MULTIOBJ_EMISSIONS_H_
