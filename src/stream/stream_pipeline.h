#ifndef TSDM_STREAM_STREAM_PIPELINE_H_
#define TSDM_STREAM_STREAM_PIPELINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram_ext.h"
#include "src/common/status.h"
#include "src/stream/stream_buffer.h"
#include "src/stream/stream_stage.h"

namespace tsdm {

/// Drives an ordered list of StreamStages over ticks, one at a time — the
/// streaming twin of core's Pipeline. Per-stage latency/failure counters
/// land in the same StageMetricsRegistry/LatencyHistogram types the batch
/// executor reports through, so one metrics surface covers both paths.
///
/// Threading contract: producers push into a StreamBuffer concurrently;
/// exactly one consumer thread calls ProcessTick/Drain. Reset must happen
/// before ticks flow; the hot path (ProcessTick on sized stages) performs
/// no heap allocation — metric slots are resolved to raw pointers at Reset
/// and every histogram bin is preallocated.
class StreamPipeline {
 public:
  StreamPipeline& AddStage(std::unique_ptr<StreamStage> stage);

  /// Fluent in-place construction, mirroring Pipeline::Emplace.
  template <typename StageT, typename... Args>
  StreamPipeline& Emplace(Args&&... args) {
    return AddStage(std::make_unique<StageT>(std::forward<Args>(args)...));
  }

  size_t NumStages() const { return stages_.size(); }
  StreamStage& StageAt(size_t i) const { return *stages_[i]; }

  /// Sizes every stage for `num_sensors` and resolves metric slots. Must
  /// be called (once, or again to restart) before ProcessTick; clears all
  /// metrics.
  Status Reset(size_t num_sensors);

  /// Runs every stage over one tick record (rec->tick must be set; the
  /// other slots are reset here). Stops at the first failing stage — the
  /// failure is counted in that stage's metrics and returned.
  Status ProcessTick(TickRecord* rec);

  /// Convenience: wraps `tick` in a record and processes it.
  Status ProcessTick(const Tick& tick) {
    TickRecord rec;
    rec.tick = tick;
    return ProcessTick(&rec);
  }

  /// Polls `buffer` dry, processing every tick through the pipeline. *rec
  /// is reused as scratch and holds the last processed record. Returns the
  /// number of ticks processed; stops early on a stage failure.
  size_t Drain(StreamBuffer* buffer, TickRecord* rec);

  /// Serializes the pipeline's analytic state — every stage's per-sensor
  /// state plus the tick counter — into a versioned little-endian blob.
  /// Restoring the blob into a pipeline built from identically-configured
  /// stages (same types, order, and constructor parameters) reproduces
  /// subsequent ProcessTick outputs bitwise; the WAL replay recovery and
  /// snapshot/restore property tests assert exactly that. Metrics and
  /// latency histograms are observability, not state, and are not saved.
  Status SaveState(std::vector<uint8_t>* out) const;

  /// Inverse of SaveState. Requires the same stage list to have been added;
  /// runs Reset(num_sensors from the blob) and then restores each stage, so
  /// metrics restart from zero while the analytic state continues exactly
  /// where the snapshot left it.
  Status RestoreState(const uint8_t* data, size_t size);

  uint64_t ticks_processed() const { return ticks_; }
  /// End-to-end per-tick latency across all stages.
  const LatencyHistogram& tick_latency() const { return tick_latency_; }
  /// Per-stage latency/failure metrics (same table format as the batch
  /// executor's BatchReport).
  const StageMetricsRegistry& metrics() const { return registry_; }

 private:
  std::vector<std::unique_ptr<StreamStage>> stages_;
  std::vector<StageMetrics*> slots_;  // registry entries, fixed at Reset
  std::vector<std::string> names_;    // stable stage names for trace spans
  StageMetricsRegistry registry_;
  LatencyHistogram tick_latency_;
  uint64_t ticks_ = 0;
  size_t num_sensors_ = 0;
  bool ready_ = false;
};

}  // namespace tsdm

#endif  // TSDM_STREAM_STREAM_PIPELINE_H_
