#ifndef TSDM_STREAM_STREAM_BUFFER_H_
#define TSDM_STREAM_STREAM_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tsdm {

/// One observation arriving on the streaming serving path: sensor `sensor`
/// reported `value` at `timestamp`.
struct Tick {
  size_t sensor = 0;
  int64_t timestamp = 0;
  double value = 0.0;
};

/// What Push does when a sensor's ring already holds `capacity` unconsumed
/// ticks — the explicit backpressure contract of the ingest path.
enum class DropPolicy {
  /// Overwrite the oldest unconsumed tick (favor freshness; the consumer
  /// loses the tail of a burst it could not keep up with).
  kDropOldest,
  /// Reject the incoming tick (favor continuity; the producer's newest
  /// observation is lost instead).
  kDropNewest,
};

/// Fixed-capacity per-sensor tick rings: the ingest edge of the streaming
/// subsystem. Producers Push concurrently (one mutex per sensor, so
/// producers on different sensors do not contend); a consumer Polls ticks
/// out in per-sensor FIFO order and feeds them to a StreamPipeline.
///
/// Each ring doubles as a retention window: the most recent `capacity`
/// ticks of every sensor stay readable (SnapshotSensor) after consumption
/// until overwritten, which is what SnapshotToContext (src/core) uses to
/// hand a live stream to the batch Fig. 1 pipeline.
///
/// No allocation after construction: Push, Poll, and the drop bookkeeping
/// all run on preallocated storage.
class StreamBuffer {
 public:
  StreamBuffer(size_t num_sensors, size_t capacity,
               DropPolicy policy = DropPolicy::kDropOldest);

  size_t num_sensors() const { return rings_.size(); }
  size_t capacity() const { return capacity_; }
  DropPolicy policy() const { return policy_; }

  /// Ingests one tick (thread-safe). Returns false only when the tick was
  /// rejected (ring full under kDropNewest, or sensor out of range); under
  /// kDropOldest the push always lands but may evict an unconsumed tick
  /// (counted in dropped()).
  bool Push(const Tick& tick);
  bool Push(size_t sensor, int64_t timestamp, double value) {
    return Push(Tick{sensor, timestamp, value});
  }

  /// Pops the oldest unconsumed tick of some sensor, round-robin across
  /// sensors so no sensor starves. Per-sensor order is strict FIFO;
  /// cross-sensor order is approximate arrival order. Returns false when
  /// every ring is drained. Thread-safe (normally one consumer).
  bool Poll(Tick* out);

  /// Ticks admitted into a ring.
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Ticks lost to backpressure: evictions under kDropOldest, rejections
  /// under kDropNewest.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Ticks admitted but not yet polled, summed over sensors.
  size_t NumUnconsumed() const;

  /// Number of retained ticks of sensor s (<= capacity), consumed or not.
  size_t SensorFill(size_t s) const;

  /// Copies sensor s's retained window (oldest -> newest) into *values and
  /// optionally *timestamps. Vectors are resized to the fill; reusing the
  /// same vectors across calls avoids reallocation in steady state.
  void SnapshotSensor(size_t s, std::vector<double>* values,
                      std::vector<int64_t>* timestamps = nullptr) const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<int64_t> timestamps;
    std::vector<double> values;
    size_t head = 0;        // next write slot
    size_t fill = 0;        // retained ticks, <= capacity
    size_t unconsumed = 0;  // admitted but not yet polled, <= fill
  };

  std::vector<Ring> rings_;
  size_t capacity_;
  DropPolicy policy_;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<size_t> poll_cursor_{0};
};

}  // namespace tsdm

#endif  // TSDM_STREAM_STREAM_BUFFER_H_
