#include "src/stream/stream_pipeline.h"

#include <chrono>

#include "src/obs/trace.h"

namespace tsdm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StreamPipeline& StreamPipeline::AddStage(std::unique_ptr<StreamStage> stage) {
  stages_.push_back(std::move(stage));
  ready_ = false;  // the new stage needs a Reset before ticks flow
  return *this;
}

Status StreamPipeline::Reset(size_t num_sensors) {
  registry_ = StageMetricsRegistry();
  tick_latency_ = LatencyHistogram();
  slots_.clear();
  slots_.reserve(stages_.size());
  names_.clear();
  names_.reserve(stages_.size());
  ticks_ = 0;
  num_sensors_ = num_sensors;
  for (auto& stage : stages_) {
    TSDM_RETURN_IF_ERROR(stage->Reset(num_sensors));
    // Resolving the registry slot (and the stage name the trace spans
    // reference) here keeps the per-tick path free of map lookups and
    // string allocation while tracing is disabled.
    slots_.push_back(&registry_.ForStage(stage->Name()));
    names_.push_back(stage->Name());
  }
  ready_ = true;
  return Status::OK();
}

Status StreamPipeline::ProcessTick(TickRecord* rec) {
  if (!ready_) {
    return Status::FailedPrecondition(
        "StreamPipeline: Reset(num_sensors) must run before ticks");
  }
  // Reset the output slots, keeping the tick itself.
  Tick tick = rec->tick;
  *rec = TickRecord();
  rec->tick = tick;

  TraceSpan tick_span("stream/tick", static_cast<int64_t>(rec->tick.sensor));
  auto tick_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stages_.size(); ++i) {
    auto stage_start = std::chrono::steady_clock::now();
    Status status;
    {
      TraceSpan stage_span(names_[i]);
      status = stages_[i]->OnTick(rec);
    }
    StageMetrics* slot = slots_[i];
    slot->latency.Add(SecondsSince(stage_start));
    ++slot->invocations;
    if (!status.ok()) {
      ++slot->failures;
      tick_latency_.Add(SecondsSince(tick_start));
      return status;
    }
  }
  tick_latency_.Add(SecondsSince(tick_start));
  ++ticks_;
  return Status::OK();
}

size_t StreamPipeline::Drain(StreamBuffer* buffer, TickRecord* rec) {
  size_t processed = 0;
  while (buffer->Poll(&rec->tick)) {
    if (!ProcessTick(rec).ok()) break;
    ++processed;
  }
  return processed;
}

}  // namespace tsdm
