#include "src/stream/stream_pipeline.h"

#include <chrono>

#include "src/common/bytes.h"
#include "src/obs/trace.h"

namespace tsdm {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr uint32_t kStateMagic = 0x53505354;  // "TSPS"
constexpr uint32_t kStateVersion = 1;

}  // namespace

StreamPipeline& StreamPipeline::AddStage(std::unique_ptr<StreamStage> stage) {
  stages_.push_back(std::move(stage));
  ready_ = false;  // the new stage needs a Reset before ticks flow
  return *this;
}

Status StreamPipeline::Reset(size_t num_sensors) {
  registry_ = StageMetricsRegistry();
  tick_latency_ = LatencyHistogram();
  slots_.clear();
  slots_.reserve(stages_.size());
  names_.clear();
  names_.reserve(stages_.size());
  ticks_ = 0;
  num_sensors_ = num_sensors;
  for (auto& stage : stages_) {
    TSDM_RETURN_IF_ERROR(stage->Reset(num_sensors));
    // Resolving the registry slot (and the stage name the trace spans
    // reference) here keeps the per-tick path free of map lookups and
    // string allocation while tracing is disabled.
    slots_.push_back(&registry_.ForStage(stage->Name()));
    names_.push_back(stage->Name());
  }
  ready_ = true;
  return Status::OK();
}

Status StreamPipeline::ProcessTick(TickRecord* rec) {
  if (!ready_) {
    return Status::FailedPrecondition(
        "StreamPipeline: Reset(num_sensors) must run before ticks");
  }
  // Reset the output slots, keeping the tick itself.
  Tick tick = rec->tick;
  *rec = TickRecord();
  rec->tick = tick;

  TraceSpan tick_span("stream/tick", static_cast<int64_t>(rec->tick.sensor));
  auto tick_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < stages_.size(); ++i) {
    auto stage_start = std::chrono::steady_clock::now();
    Status status;
    {
      TraceSpan stage_span(names_[i]);
      status = stages_[i]->OnTick(rec);
    }
    StageMetrics* slot = slots_[i];
    slot->latency.Add(SecondsSince(stage_start));
    ++slot->invocations;
    if (!status.ok()) {
      ++slot->failures;
      tick_latency_.Add(SecondsSince(tick_start));
      return status;
    }
  }
  tick_latency_.Add(SecondsSince(tick_start));
  ++ticks_;
  return Status::OK();
}

size_t StreamPipeline::Drain(StreamBuffer* buffer, TickRecord* rec) {
  size_t processed = 0;
  while (buffer->Poll(&rec->tick)) {
    if (!ProcessTick(rec).ok()) break;
    ++processed;
  }
  return processed;
}

Status StreamPipeline::SaveState(std::vector<uint8_t>* out) const {
  if (!ready_) {
    return Status::FailedPrecondition(
        "StreamPipeline: Reset must run before SaveState");
  }
  PutU32(out, kStateMagic);
  PutU32(out, kStateVersion);
  PutU64(out, num_sensors_);
  PutU64(out, ticks_);
  PutU32(out, static_cast<uint32_t>(stages_.size()));
  std::vector<uint8_t> blob;
  for (size_t i = 0; i < stages_.size(); ++i) {
    const std::string& name = names_[i];
    PutU32(out, static_cast<uint32_t>(name.size()));
    out->insert(out->end(), name.begin(), name.end());
    blob.clear();
    TSDM_RETURN_IF_ERROR(stages_[i]->SaveState(&blob));
    PutU64(out, blob.size());
    out->insert(out->end(), blob.begin(), blob.end());
  }
  return Status::OK();
}

Status StreamPipeline::RestoreState(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  uint32_t magic = 0, version = 0, num_stages = 0;
  uint64_t num_sensors = 0, ticks = 0;
  if (!reader.ReadU32(&magic) || !reader.ReadU32(&version) ||
      !reader.ReadU64(&num_sensors) || !reader.ReadU64(&ticks) ||
      !reader.ReadU32(&num_stages)) {
    return Status::InvalidArgument("StreamPipeline: state blob truncated");
  }
  if (magic != kStateMagic) {
    return Status::InvalidArgument("StreamPipeline: bad state magic");
  }
  if (version != kStateVersion) {
    return Status::InvalidArgument("StreamPipeline: unsupported state version");
  }
  if (num_stages != stages_.size()) {
    return Status::InvalidArgument(
        "StreamPipeline: stage count mismatch — restore requires the same "
        "pipeline construction");
  }
  // Reset sizes every stage and resolves metric slots (and names_); the
  // per-stage restores below then overwrite the fresh analytic state.
  TSDM_RETURN_IF_ERROR(Reset(static_cast<size_t>(num_sensors)));
  for (size_t i = 0; i < stages_.size(); ++i) {
    uint32_t name_len = 0;
    if (!reader.ReadU32(&name_len)) {
      return Status::InvalidArgument("StreamPipeline: state blob truncated");
    }
    const uint8_t* name_bytes = reader.ReadSpan(name_len);
    if (name_bytes == nullptr) {
      return Status::InvalidArgument("StreamPipeline: state blob truncated");
    }
    std::string name(reinterpret_cast<const char*>(name_bytes), name_len);
    if (name != names_[i]) {
      return Status::InvalidArgument(
          "StreamPipeline: stage order mismatch — saved '" + name +
          "', pipeline has '" + names_[i] + "' at position " +
          std::to_string(i));
    }
    uint64_t blob_len = 0;
    if (!reader.ReadU64(&blob_len)) {
      return Status::InvalidArgument("StreamPipeline: state blob truncated");
    }
    const uint8_t* blob = reader.ReadSpan(static_cast<size_t>(blob_len));
    if (blob == nullptr && blob_len != 0) {
      return Status::InvalidArgument("StreamPipeline: state blob truncated");
    }
    TSDM_RETURN_IF_ERROR(
        stages_[i]->RestoreState(blob, static_cast<size_t>(blob_len)));
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("StreamPipeline: trailing state bytes");
  }
  ticks_ = ticks;
  return Status::OK();
}

}  // namespace tsdm
