#include "src/stream/stream_buffer.h"

namespace tsdm {

StreamBuffer::StreamBuffer(size_t num_sensors, size_t capacity,
                           DropPolicy policy)
    : rings_(num_sensors),
      capacity_(capacity == 0 ? 1 : capacity),
      policy_(policy) {
  for (Ring& ring : rings_) {
    ring.timestamps.resize(capacity_);
    ring.values.resize(capacity_);
  }
}

bool StreamBuffer::Push(const Tick& tick) {
  if (tick.sensor >= rings_.size()) return false;
  Ring& ring = rings_[tick.sensor];
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.unconsumed == capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (policy_ == DropPolicy::kDropNewest) return false;
    // kDropOldest: evict the oldest unconsumed tick; the slot it occupied
    // is reclaimed by the write below once head wraps onto it.
    --ring.unconsumed;
  }
  ring.timestamps[ring.head] = tick.timestamp;
  ring.values[ring.head] = tick.value;
  ring.head = (ring.head + 1) % capacity_;
  if (ring.fill < capacity_) ++ring.fill;
  ++ring.unconsumed;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool StreamBuffer::Poll(Tick* out) {
  size_t n = rings_.size();
  if (n == 0) return false;
  size_t start = poll_cursor_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    size_t s = (start + i) % n;
    Ring& ring = rings_[s];
    std::lock_guard<std::mutex> lock(ring.mu);
    if (ring.unconsumed == 0) continue;
    size_t idx = (ring.head + capacity_ - ring.unconsumed) % capacity_;
    out->sensor = s;
    out->timestamp = ring.timestamps[idx];
    out->value = ring.values[idx];
    --ring.unconsumed;
    poll_cursor_.store((s + 1) % n, std::memory_order_relaxed);
    return true;
  }
  return false;
}

size_t StreamBuffer::NumUnconsumed() const {
  size_t total = 0;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    total += ring.unconsumed;
  }
  return total;
}

size_t StreamBuffer::SensorFill(size_t s) const {
  if (s >= rings_.size()) return 0;
  std::lock_guard<std::mutex> lock(rings_[s].mu);
  return rings_[s].fill;
}

void StreamBuffer::SnapshotSensor(size_t s, std::vector<double>* values,
                                  std::vector<int64_t>* timestamps) const {
  values->clear();
  if (timestamps != nullptr) timestamps->clear();
  if (s >= rings_.size()) return;
  const Ring& ring = rings_[s];
  std::lock_guard<std::mutex> lock(ring.mu);
  values->reserve(ring.fill);
  if (timestamps != nullptr) timestamps->reserve(ring.fill);
  size_t oldest = (ring.head + capacity_ - ring.fill) % capacity_;
  for (size_t i = 0; i < ring.fill; ++i) {
    size_t idx = (oldest + i) % capacity_;
    values->push_back(ring.values[idx]);
    if (timestamps != nullptr) timestamps->push_back(ring.timestamps[idx]);
  }
}

}  // namespace tsdm
