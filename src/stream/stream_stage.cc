#include "src/stream/stream_stage.h"

#include <algorithm>
#include <cmath>

#include "src/common/bytes.h"

namespace tsdm {

namespace {

Status CheckSensor(size_t sensor, size_t num_sensors,
                   const char* stage_name) {
  if (sensor >= num_sensors) {
    return Status::OutOfRange(std::string(stage_name) +
                              ": sensor index out of range");
  }
  return Status::OK();
}

Status TruncatedState(const char* stage_name) {
  return Status::InvalidArgument(std::string(stage_name) +
                                 ": state blob truncated or mismatched");
}

void PutOnlineStats(std::vector<uint8_t>* out, const OnlineStats& stats) {
  OnlineStats::State s = stats.state();
  PutU64(out, s.n);
  PutF64(out, s.mean);
  PutF64(out, s.m2);
  PutF64(out, s.min);
  PutF64(out, s.max);
}

bool ReadOnlineStats(ByteReader* reader, OnlineStats* stats) {
  OnlineStats::State s;
  uint64_t n = 0;
  if (!reader->ReadU64(&n) || !reader->ReadF64(&s.mean) ||
      !reader->ReadF64(&s.m2) || !reader->ReadF64(&s.min) ||
      !reader->ReadF64(&s.max)) {
    return false;
  }
  s.n = static_cast<size_t>(n);
  stats->Restore(s);
  return true;
}

}  // namespace

Status WelfordStatsStage::Reset(size_t num_sensors) {
  stats_.assign(num_sensors, OnlineStats());
  return Status::OK();
}

Status WelfordStatsStage::OnTick(TickRecord* rec) {
  TSDM_RETURN_IF_ERROR(
      CheckSensor(rec->tick.sensor, stats_.size(), "stream/stats"));
  OnlineStats& st = stats_[rec->tick.sensor];
  st.Add(rec->tick.value);
  rec->stat_count = st.count();
  rec->mean = st.mean();
  rec->stdev = st.stdev();
  return Status::OK();
}

Status WelfordStatsStage::SaveState(std::vector<uint8_t>* out) const {
  PutU64(out, stats_.size());
  for (const OnlineStats& st : stats_) PutOnlineStats(out, st);
  return Status::OK();
}

Status WelfordStatsStage::RestoreState(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  uint64_t n = 0;
  if (!reader.ReadU64(&n)) return TruncatedState("stream/stats");
  stats_.assign(static_cast<size_t>(n), OnlineStats());
  for (OnlineStats& st : stats_) {
    if (!ReadOnlineStats(&reader, &st)) return TruncatedState("stream/stats");
  }
  if (!reader.Done()) return TruncatedState("stream/stats");
  return Status::OK();
}

Status OnlineAnomalyStage::Reset(size_t num_sensors) {
  alarms_ = 0;
  if (mode_ == Mode::kZScore) {
    stats_.assign(num_sensors, OnlineStats());
    robust_.clear();
  } else {
    robust_.assign(num_sensors, RobustState());
    stats_.clear();
  }
  return Status::OK();
}

Status OnlineAnomalyStage::OnTick(TickRecord* rec) {
  size_t num_sensors =
      mode_ == Mode::kZScore ? stats_.size() : robust_.size();
  TSDM_RETURN_IF_ERROR(
      CheckSensor(rec->tick.sensor, num_sensors, "stream/anomaly"));
  double x = rec->tick.value;
  double score = 0.0;
  if (mode_ == Mode::kZScore) {
    OnlineStats& st = stats_[rec->tick.sensor];
    // Score against the prefix (prequential), then absorb the tick.
    if (st.count() >= 2) {
      score = std::fabs(x - st.mean()) / std::max(1e-9, st.stdev());
    }
    st.Add(x);
  } else {
    RobustState& st = robust_[rec->tick.sensor];
    if (st.n == 0) {
      st.location = x;
    } else {
      double dev = std::fabs(x - st.location);
      if (st.n >= 2) {
        score = dev / std::max(1e-9, 1.4826 * st.scale);
      }
      // Exponentially weighted robust recursions; the location step is
      // clamped to the scale so a single wild tick cannot drag it far.
      double step = lambda_ * (x - st.location);
      if (st.scale > 0.0) {
        double cap = 3.0 * st.scale;
        if (step > cap) step = cap;
        if (step < -cap) step = -cap;
      }
      st.location += step;
      st.scale += lambda_ * (dev - st.scale);
    }
    ++st.n;
  }
  rec->anomaly_score = score;
  rec->is_anomaly = score > threshold_;
  if (rec->is_anomaly) ++alarms_;
  return Status::OK();
}

Status OnlineAnomalyStage::SaveState(std::vector<uint8_t>* out) const {
  PutU8(out, static_cast<uint8_t>(mode_));
  PutU64(out, alarms_);
  if (mode_ == Mode::kZScore) {
    PutU64(out, stats_.size());
    for (const OnlineStats& st : stats_) PutOnlineStats(out, st);
  } else {
    PutU64(out, robust_.size());
    for (const RobustState& st : robust_) {
      PutF64(out, st.location);
      PutF64(out, st.scale);
      PutU64(out, st.n);
    }
  }
  return Status::OK();
}

Status OnlineAnomalyStage::RestoreState(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  uint8_t mode = 0;
  uint64_t alarms = 0;
  uint64_t n = 0;
  if (!reader.ReadU8(&mode) || !reader.ReadU64(&alarms) ||
      !reader.ReadU64(&n)) {
    return TruncatedState("stream/anomaly");
  }
  if (mode != static_cast<uint8_t>(mode_)) {
    return Status::InvalidArgument(
        "stream/anomaly: state was saved by the other scoring mode");
  }
  alarms_ = alarms;
  if (mode_ == Mode::kZScore) {
    stats_.assign(static_cast<size_t>(n), OnlineStats());
    robust_.clear();
    for (OnlineStats& st : stats_) {
      if (!ReadOnlineStats(&reader, &st)) {
        return TruncatedState("stream/anomaly");
      }
    }
  } else {
    robust_.assign(static_cast<size_t>(n), RobustState());
    stats_.clear();
    for (RobustState& st : robust_) {
      if (!reader.ReadF64(&st.location) || !reader.ReadF64(&st.scale) ||
          !reader.ReadU64(&st.n)) {
        return TruncatedState("stream/anomaly");
      }
    }
  }
  if (!reader.Done()) return TruncatedState("stream/anomaly");
  return Status::OK();
}

Status OnlineForecastStage::Reset(size_t num_sensors) {
  state_.assign(num_sensors, HoltState());
  return Status::OK();
}

Status OnlineForecastStage::OnTick(TickRecord* rec) {
  TSDM_RETURN_IF_ERROR(
      CheckSensor(rec->tick.sensor, state_.size(), "stream/forecast-holt"));
  HoltState& st = state_[rec->tick.sensor];
  double x = rec->tick.value;
  if (st.n == 0) {
    st.level = x;
    st.trend = 0.0;
    rec->forecast = std::numeric_limits<double>::quiet_NaN();
    rec->forecast_error = std::numeric_limits<double>::quiet_NaN();
  } else {
    double f = st.level + st.trend;
    rec->forecast = f;
    rec->forecast_error = x - f;
    double new_level = alpha_ * x + (1.0 - alpha_) * (st.level + st.trend);
    st.trend = beta_ * (new_level - st.level) + (1.0 - beta_) * st.trend;
    st.level = new_level;
  }
  ++st.n;
  rec->forecast_next = st.level + st.trend;
  return Status::OK();
}

Status OnlineForecastStage::SaveState(std::vector<uint8_t>* out) const {
  PutU64(out, state_.size());
  for (const HoltState& st : state_) {
    PutF64(out, st.level);
    PutF64(out, st.trend);
    PutU64(out, st.n);
  }
  return Status::OK();
}

Status OnlineForecastStage::RestoreState(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  uint64_t n = 0;
  if (!reader.ReadU64(&n)) return TruncatedState("stream/forecast-holt");
  state_.assign(static_cast<size_t>(n), HoltState());
  for (HoltState& st : state_) {
    if (!reader.ReadF64(&st.level) || !reader.ReadF64(&st.trend) ||
        !reader.ReadU64(&st.n)) {
      return TruncatedState("stream/forecast-holt");
    }
  }
  if (!reader.Done()) return TruncatedState("stream/forecast-holt");
  return Status::OK();
}

double OnlineForecastStage::ForecastNext(size_t s) const {
  if (s >= state_.size() || state_[s].n == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return state_[s].level + state_[s].trend;
}

double OnlineForecastStage::ForecastAhead(size_t s, int h) const {
  if (s >= state_.size() || state_[s].n == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double steps = static_cast<double>(std::max(1, h));
  return state_[s].level + steps * state_[s].trend;
}

}  // namespace tsdm
