#ifndef TSDM_STREAM_STREAM_STAGE_H_
#define TSDM_STREAM_STREAM_STAGE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/stream/stream_buffer.h"

namespace tsdm {

/// The record of one tick flowing through a StreamPipeline — the streaming
/// analogue of PipelineContext, shrunk to a fixed POD so the hot path never
/// touches the heap. Stages fill in the slots they own; downstream stages
/// and the caller read them after ProcessTick returns.
struct TickRecord {
  Tick tick;

  // WelfordStatsStage: running per-sensor statistics including this tick.
  uint64_t stat_count = 0;
  double mean = 0.0;
  double stdev = 0.0;

  // OnlineAnomalyStage: prequential score of this tick against the state
  // *before* it (so an anomaly cannot mask itself), and the alarm bit.
  double anomaly_score = 0.0;
  bool is_anomaly = false;

  // OnlineForecastStage: the forecast this tick was compared against, its
  // error, and the one-step-ahead forecast after absorbing this tick.
  double forecast = std::numeric_limits<double>::quiet_NaN();
  double forecast_error = std::numeric_limits<double>::quiet_NaN();
  double forecast_next = std::numeric_limits<double>::quiet_NaN();
};

/// One incremental operator on the streaming path. Stages hold per-sensor
/// state sized once by Reset (the only place allocation is allowed);
/// OnTick must be allocation-free and is driven from a single consumer
/// thread, so it needs no internal synchronization.
class StreamStage {
 public:
  virtual ~StreamStage() = default;
  virtual std::string Name() const = 0;

  /// Sizes per-sensor state; called by StreamPipeline::Reset before any
  /// tick flows. May allocate.
  virtual Status Reset(size_t num_sensors) = 0;

  /// Absorbs one tick: updates the state of rec->tick.sensor and writes
  /// this stage's TickRecord slots. Must not allocate.
  virtual Status OnTick(TickRecord* rec) = 0;

  /// Appends this stage's exact state to *out as a little-endian blob.
  /// Restoring the blob into an identically-configured stage (same
  /// constructor parameters) must reproduce subsequent OnTick outputs
  /// bitwise — the contract the WAL replay and snapshot/restore property
  /// tests enforce. Stages that hold no state may keep the defaults
  /// (empty blob, restore accepts only emptiness).
  virtual Status SaveState(std::vector<uint8_t>* out) const {
    (void)out;
    return Status::OK();
  }

  /// Inverse of SaveState; replaces all per-sensor state. Returns
  /// InvalidArgument if the blob does not match this stage's layout.
  virtual Status RestoreState(const uint8_t* data, size_t size) {
    (void)data;
    if (size != 0) {
      return Status::InvalidArgument(Name() +
                                     ": unexpected state for stateless stage");
    }
    return Status::OK();
  }
};

/// Incremental per-sensor mean/variance via Welford's recurrence — the
/// streaming twin of batch Mean()/Stdev(), exact up to floating-point
/// rounding (the property tests assert the match).
class WelfordStatsStage : public StreamStage {
 public:
  std::string Name() const override { return "stream/stats"; }
  Status Reset(size_t num_sensors) override;
  Status OnTick(TickRecord* rec) override;
  Status SaveState(std::vector<uint8_t>* out) const override;
  Status RestoreState(const uint8_t* data, size_t size) override;

  /// Running statistics of one sensor (count/mean/stdev/min/max).
  const OnlineStats& SensorStats(size_t s) const { return stats_[s]; }

 private:
  std::vector<OnlineStats> stats_;
};

/// Online point-anomaly scoring. kZScore keeps per-sensor Welford state and
/// scores |x - mean| / stdev against the statistics of all *prior* ticks —
/// exactly the batch ZScoreDetector fitted on the prefix. kMad tracks a
/// robust location/scale pair with exponentially weighted recursions
/// (location steps toward the sample, scale tracks |x - location|, scaled
/// by 1.4826 as for a MAD), trading the batch MadDetector's exactness for
/// O(1) updates that resist level shifts and outlier pollution.
class OnlineAnomalyStage : public StreamStage {
 public:
  enum class Mode { kZScore, kMad };

  explicit OnlineAnomalyStage(Mode mode = Mode::kZScore,
                              double threshold = 4.0, double ew_lambda = 0.05)
      : mode_(mode), threshold_(threshold), lambda_(ew_lambda) {}

  std::string Name() const override {
    return mode_ == Mode::kZScore ? "stream/anomaly-zscore"
                                  : "stream/anomaly-mad";
  }
  Status Reset(size_t num_sensors) override;
  Status OnTick(TickRecord* rec) override;
  Status SaveState(std::vector<uint8_t>* out) const override;
  Status RestoreState(const uint8_t* data, size_t size) override;

  uint64_t alarms() const { return alarms_; }

 private:
  struct RobustState {
    double location = 0.0;
    double scale = 0.0;
    uint64_t n = 0;
  };

  Mode mode_;
  double threshold_;
  double lambda_;
  uint64_t alarms_ = 0;
  std::vector<OnlineStats> stats_;        // kZScore
  std::vector<RobustState> robust_;       // kMad
};

/// Online one-step forecaster: per-sensor Holt linear (level + trend)
/// exponential smoothing updated in O(1) per tick. Each tick is first
/// scored against the forecast made before it arrived (prequential error),
/// then absorbed into the state.
class OnlineForecastStage : public StreamStage {
 public:
  explicit OnlineForecastStage(double alpha = 0.3, double beta = 0.1)
      : alpha_(alpha), beta_(beta) {}

  std::string Name() const override { return "stream/forecast-holt"; }
  Status Reset(size_t num_sensors) override;
  Status OnTick(TickRecord* rec) override;
  Status SaveState(std::vector<uint8_t>* out) const override;
  Status RestoreState(const uint8_t* data, size_t size) override;

  /// One-step-ahead forecast for sensor s given everything seen so far;
  /// NaN before the sensor's first tick.
  double ForecastNext(size_t s) const;

  /// h-step-ahead forecast: the Holt linear extrapolation level + h *
  /// trend (ForecastAhead(s, 1) == ForecastNext(s)). NaN before the
  /// sensor's first tick; h < 1 is treated as 1. This is the projection
  /// the predictive autoscaler provisions against — the trend term is
  /// what lets capacity move *ahead* of a rising surge.
  double ForecastAhead(size_t s, int h) const;

 private:
  struct HoltState {
    double level = 0.0;
    double trend = 0.0;
    uint64_t n = 0;
  };

  double alpha_;
  double beta_;
  std::vector<HoltState> state_;
};

}  // namespace tsdm

#endif  // TSDM_STREAM_STREAM_STAGE_H_
