#include "src/obs/health.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace tsdm {

namespace {

constexpr const char* kMetricNames[HealthMonitor::kNumMetrics] = {
    "queue_depth", "arrival_rate", "shed_rate", "cache_hit_rate",
    "latency_mean"};

constexpr const char* kStageNames[4] = {"queue", "batch", "cache", "exec"};

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

const char* HealthMonitor::MetricName(size_t i) {
  return i < kNumMetrics ? kMetricNames[i] : "";
}

HealthMonitor::HealthMonitor(Sampler sampler, Options options)
    : options_(options),
      sampler_(std::move(sampler)),
      buffer_(kNumMetrics, std::max<size_t>(2, options.ring_capacity)) {
  options_.ring_capacity = buffer_.capacity();
  options_.degraded_anomalous_metrics =
      std::max(1, options_.degraded_anomalous_metrics);
  options_.unhealthy_anomalous_metrics = std::max(
      options_.degraded_anomalous_metrics, options_.unhealthy_anomalous_metrics);
  pipeline_.Emplace<OnlineAnomalyStage>(options_.mode,
                                        options_.anomaly_threshold,
                                        options_.ew_lambda);
  pipeline_.Reset(kNumMetrics);
  snapshot_.metrics.resize(kNumMetrics);
  for (size_t i = 0; i < kNumMetrics; ++i) {
    snapshot_.metrics[i].name = kMetricNames[i];
  }
  snapshot_.slo_objective_seconds = options_.slo_p95_objective_seconds;
}

HealthMonitor::~HealthMonitor() { Stop(); }

Status HealthMonitor::Start() {
  std::unique_lock<std::mutex> lock(run_mu_);
  if (running_) {
    return Status::FailedPrecondition("HealthMonitor: already running");
  }
  running_ = true;
  thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void HealthMonitor::Stop() {
  {
    std::unique_lock<std::mutex> lock(run_mu_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::RunLoop() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (running_) {
    wake_.wait_for(
        lock, std::chrono::duration<double>(options_.sample_interval_seconds),
        [this] { return !running_; });
    if (!running_) break;
    // Sample outside the lifecycle lock so Stop never waits on a sampler.
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

HealthState HealthMonitor::Judge(int hot_metrics, double burn) const {
  if (hot_metrics >= options_.unhealthy_anomalous_metrics ||
      burn >= options_.burn_unhealthy) {
    return HealthState::kUnhealthy;
  }
  if (hot_metrics >= options_.degraded_anomalous_metrics ||
      burn >= options_.burn_degraded) {
    return HealthState::kDegraded;
  }
  return HealthState::kHealthy;
}

void HealthMonitor::SampleOnce() {
  ServeStatsSnapshot now = sampler_();

  // Derive one observation per watched metric. Counters become interval
  // deltas (rates), ratio metrics become interval ratios carrying their
  // last value through empty intervals — a quiet interval is "nothing
  // changed", not "the hit rate collapsed to zero".
  double values[kNumMetrics] = {};
  values[0] = static_cast<double>(now.queue_depth);
  uint64_t interval_count = 0;
  if (have_prev_) {
    values[1] = static_cast<double>(now.submitted - prev_.submitted);
    values[2] = static_cast<double>(now.TotalShed() - prev_.TotalShed());
    const uint64_t d_lookups = (now.cache_hits + now.cache_misses) -
                               (prev_.cache_hits + prev_.cache_misses);
    last_hit_rate_ =
        d_lookups > 0
            ? static_cast<double>(now.cache_hits - prev_.cache_hits) /
                  static_cast<double>(d_lookups)
            : last_hit_rate_;
    interval_count = now.e2e_latency.count() - prev_.e2e_latency.count();
    last_latency_mean_ =
        interval_count > 0
            ? (now.e2e_latency.total_seconds() -
               prev_.e2e_latency.total_seconds()) /
                  static_cast<double>(interval_count)
            : last_latency_mean_;
  } else {
    values[1] = 0.0;
    values[2] = 0.0;
    last_hit_rate_ = now.CacheHitRate();
    last_latency_mean_ = now.e2e_latency.MeanSeconds();
    interval_count = now.e2e_latency.count();
  }
  values[3] = last_hit_rate_;
  values[4] = last_latency_mean_;

  // SLO burn over the interval: what fraction of this interval's answered
  // requests blew the latency objective, relative to the error budget.
  const double objective = options_.slo_p95_objective_seconds;
  const uint64_t d_above =
      now.e2e_latency.CountAbove(objective) -
      (have_prev_ ? prev_.e2e_latency.CountAbove(objective) : 0);
  const double violation =
      interval_count > 0
          ? static_cast<double>(d_above) / static_cast<double>(interval_count)
          : 0.0;
  const double burn =
      violation / std::max(1e-12, options_.slo_error_budget);

  // Critical-path attribution: which stage's total time grew the most
  // this interval — same rule as ServeStatsSnapshot::SlowestStage, applied
  // to deltas so it names the *current* bottleneck, not the historic one.
  const double stage_now[4] = {
      now.stage_queue.total_seconds(), now.stage_batch.total_seconds(),
      now.stage_cache.total_seconds(), now.stage_exec.total_seconds()};
  const double stage_prev[4] = {
      have_prev_ ? prev_.stage_queue.total_seconds() : 0.0,
      have_prev_ ? prev_.stage_batch.total_seconds() : 0.0,
      have_prev_ ? prev_.stage_cache.total_seconds() : 0.0,
      have_prev_ ? prev_.stage_exec.total_seconds() : 0.0};
  int offender = -1;
  double stage_sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double delta = std::max(0.0, stage_now[i] - stage_prev[i]);
    stage_sum += delta;
    if (delta > 0.0 &&
        (offender < 0 ||
         delta > stage_now[offender] - stage_prev[offender])) {
      offender = i;
    }
  }

  // Feed the observations through the streaming path exactly as sensor
  // ticks would flow: per-metric ring, then the anomaly pipeline.
  const bool alarms_armed = samples_ >= options_.warmup_samples;
  for (size_t i = 0; i < kNumMetrics; ++i) {
    buffer_.Push(i, static_cast<int64_t>(samples_), values[i]);
  }
  double scores[kNumMetrics] = {};
  bool anomalous[kNumMetrics] = {};
  Tick tick;
  TickRecord rec;
  while (buffer_.Poll(&tick)) {
    rec.tick = tick;
    if (!pipeline_.ProcessTick(&rec).ok()) continue;
    if (tick.sensor < kNumMetrics) {
      scores[tick.sensor] = rec.anomaly_score;
      anomalous[tick.sensor] = rec.is_anomaly && alarms_armed;
    }
  }

  int hot = 0;
  for (size_t i = 0; i < kNumMetrics; ++i) hot += anomalous[i] ? 1 : 0;

  // Transition bookkeeping happens under the snapshot lock, but the
  // notifications run unlocked: the flight recorder freezes a dump and the
  // embedder's hook is arbitrary user code — neither may hold mu_ while a
  // Snapshot() reader waits.
  bool transitioned = false;
  HealthTransition transition;
  HealthSnapshot at_transition;
  {
    std::unique_lock<std::mutex> lock(mu_);
    snapshot_.samples = samples_ + 1;
    for (size_t i = 0; i < kNumMetrics; ++i) {
      MetricVerdict& v = snapshot_.metrics[i];
      v.value = values[i];
      v.score = scores[i];
      v.anomalous = anomalous[i];
      if (anomalous[i]) {
        ++v.anomalies;
        ++snapshot_.anomalies_total;
      }
    }
    snapshot_.violation_fraction = violation;
    snapshot_.burn_rate = burn;
    snapshot_.top_offender = offender < 0 ? "" : kStageNames[offender];
    snapshot_.top_offender_share =
        offender < 0 || stage_sum <= 0.0
            ? 0.0
            : (stage_now[offender] - stage_prev[offender]) / stage_sum;
    const HealthState next = Judge(hot, burn);
    if (next != snapshot_.state) {
      transition.sample = samples_ + 1;
      transition.at_ns = TraceRecorder::NowNs();
      transition.from = snapshot_.state;
      transition.to = next;
      transition.top_offender = snapshot_.top_offender;
      transition.burn_rate = burn;
      snapshot_.transitions.push_back(transition);
      const size_t keep = std::max<size_t>(1, options_.transition_history);
      while (snapshot_.transitions.size() > keep) {
        snapshot_.transitions.erase(snapshot_.transitions.begin());
      }
      ++snapshot_.transitions_total;
      transitioned = true;
    }
    snapshot_.state = next;
    if (transitioned) at_transition = snapshot_;
  }

  prev_ = std::move(now);
  have_prev_ = true;
  ++samples_;

  if (transitioned) {
    FlightRecorder::Global().OnHealthTransition(transition, at_transition);
    if (options_.on_transition) {
      options_.on_transition(transition, at_transition);
    }
  }
}

HealthSnapshot HealthMonitor::Snapshot() const {
  std::unique_lock<std::mutex> lock(mu_);
  return snapshot_;
}

}  // namespace tsdm
