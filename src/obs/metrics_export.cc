#include "src/obs/metrics_export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace tsdm {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Appends one Prometheus family header.
void Family(std::ostringstream* os, const std::string& name,
            const char* type, const char* help) {
  *os << "# HELP " << name << " " << help << "\n";
  *os << "# TYPE " << name << " " << type << "\n";
}

/// {stage="<escaped>"} label set.
std::string StageLabel(const std::string& stage) {
  return "{stage=\"" + JsonEscape(stage) + "\"}";
}

void LatencySummary(std::ostringstream* os, const std::string& family,
                    const std::string& labels_no_brace,
                    const LatencyHistogram& h) {
  for (double q : {0.5, 0.95, 0.99}) {
    *os << family << "{" << labels_no_brace
        << (labels_no_brace.empty() ? "" : ",") << "quantile=\""
        << JsonNumber(q) << "\"} " << JsonNumber(h.QuantileSeconds(q))
        << "\n";
  }
  *os << family << "_sum"
      << (labels_no_brace.empty() ? "" : "{" + labels_no_brace + "}") << " "
      << JsonNumber(h.total_seconds()) << "\n";
  *os << family << "_count"
      << (labels_no_brace.empty() ? "" : "{" + labels_no_brace + "}") << " "
      << U64(h.count()) << "\n";
}

/// The per-stage body shared by every JSON flavor.
void StagesJson(std::ostringstream* os, const StageMetricsRegistry& registry) {
  *os << "\"stages\":{";
  bool first = true;
  for (const auto& [name, m] : registry.stages()) {
    if (!first) *os << ",";
    first = false;
    *os << "\"" << JsonEscape(name) << "\":{"
        << "\"invocations\":" << U64(m.invocations)
        << ",\"failures\":" << U64(m.failures)
        << ",\"retries\":" << U64(m.retries)
        << ",\"latency\":" << MetricsExporter::LatencyToJson(m.latency)
        << "}";
  }
  *os << "}";
}

/// The per-stage body shared by every Prometheus flavor.
void StagesPrometheus(std::ostringstream* os,
                      const StageMetricsRegistry& registry,
                      const std::string& prefix) {
  const std::string inv = prefix + "_stage_invocations_total";
  const std::string fail = prefix + "_stage_failures_total";
  const std::string retry = prefix + "_stage_retries_total";
  const std::string lat = prefix + "_stage_latency_seconds";

  Family(os, inv, "counter", "Stage attempts including retries.");
  for (const auto& [name, m] : registry.stages()) {
    *os << inv << StageLabel(name) << " " << U64(m.invocations) << "\n";
  }
  Family(os, fail, "counter", "Stage attempts returning non-OK.");
  for (const auto& [name, m] : registry.stages()) {
    *os << fail << StageLabel(name) << " " << U64(m.failures) << "\n";
  }
  Family(os, retry, "counter",
         "Re-attempts after a transient stage failure.");
  for (const auto& [name, m] : registry.stages()) {
    *os << retry << StageLabel(name) << " " << U64(m.retries) << "\n";
  }
  Family(os, lat, "summary", "Per-attempt stage latency in seconds.");
  for (const auto& [name, m] : registry.stages()) {
    LatencySummary(os, lat, "stage=\"" + JsonEscape(name) + "\"", m.latency);
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string MetricsExporter::LatencyToJson(const LatencyHistogram& h) {
  std::ostringstream os;
  os << "{\"count\":" << U64(h.count())
     << ",\"mean_s\":" << JsonNumber(h.MeanSeconds())
     << ",\"p50_s\":" << JsonNumber(h.QuantileSeconds(0.5))
     << ",\"p95_s\":" << JsonNumber(h.QuantileSeconds(0.95))
     << ",\"p99_s\":" << JsonNumber(h.QuantileSeconds(0.99))
     << ",\"min_s\":" << JsonNumber(h.MinSeconds())
     << ",\"max_s\":" << JsonNumber(h.MaxSeconds()) << "}";
  return os.str();
}

std::string MetricsExporter::RegistryToJson(
    const StageMetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",";
  StagesJson(&os, registry);
  os << "}";
  return os.str();
}

std::string MetricsExporter::RegistryToPrometheus(
    const StageMetricsRegistry& registry, const std::string& prefix) {
  std::ostringstream os;
  StagesPrometheus(&os, registry, prefix);
  return os.str();
}

std::string MetricsExporter::BatchToJson(const BatchReport& report) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"batch\":{"
     << "\"shards\":" << report.shards.size()
     << ",\"ok\":" << report.NumOk()
     << ",\"quarantined\":" << report.NumQuarantined()
     << ",\"attempts_total\":" << report.AttemptsTotal()
     << ",\"threads\":" << report.num_threads
     << ",\"wall_seconds\":" << JsonNumber(report.wall_seconds) << "},";
  StagesJson(&os, report.metrics);
  os << "}";
  return os.str();
}

std::string MetricsExporter::BatchToPrometheus(const BatchReport& report,
                                               const std::string& prefix) {
  std::ostringstream os;
  const std::string shards = prefix + "_batch_shards_total";
  Family(&os, shards, "gauge", "Shards in the last batch run.");
  os << shards << " " << report.shards.size() << "\n";
  const std::string quarantined = prefix + "_batch_shards_quarantined";
  Family(&os, quarantined, "gauge",
         "Shards quarantined by a failing stage in the last batch run.");
  os << quarantined << " " << report.NumQuarantined() << "\n";
  const std::string attempts = prefix + "_batch_attempts_total";
  Family(&os, attempts, "counter",
         "Stage attempts across all shards including retries "
         "(retry pressure).");
  os << attempts << " " << report.AttemptsTotal() << "\n";
  const std::string threads = prefix + "_batch_threads";
  Family(&os, threads, "gauge", "Worker threads used by the last batch run.");
  os << threads << " " << report.num_threads << "\n";
  const std::string wall = prefix + "_batch_wall_seconds";
  Family(&os, wall, "gauge", "Wall-clock seconds of the last batch run.");
  os << wall << " " << JsonNumber(report.wall_seconds) << "\n";
  StagesPrometheus(&os, report.metrics, prefix);
  return os.str();
}

std::string MetricsExporter::ServeToJson(const ServeStatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"serve\":{"
     << "\"submitted\":" << U64(s.submitted)
     << ",\"admitted\":" << U64(s.admitted)
     << ",\"shed_capacity\":" << U64(s.shed_capacity)
     << ",\"shed_expired\":" << U64(s.shed_expired)
     << ",\"shed_closed\":" << U64(s.shed_closed)
     << ",\"shed_evicted\":" << U64(s.shed_evicted)
     << ",\"shed_rate\":" << JsonNumber(s.ShedRate())
     << ",\"queue_depth\":" << s.queue_depth
     << ",\"batches\":" << U64(s.batches)
     << ",\"batched_requests\":" << U64(s.batched_requests)
     << ",\"max_batch\":" << s.max_batch
     << ",\"cache_hits\":" << U64(s.cache_hits)
     << ",\"cache_misses\":" << U64(s.cache_misses)
     << ",\"cache_evictions\":" << U64(s.cache_evictions)
     << ",\"cache_size\":" << s.cache_size
     << ",\"cache_hit_rate\":" << JsonNumber(s.CacheHitRate())
     << ",\"completed\":" << U64(s.completed)
     << ",\"failed\":" << U64(s.failed)
     << ",\"workers\":" << s.workers
     << ",\"scale_events\":" << s.scale_events
     << ",\"queue_latency\":" << LatencyToJson(s.queue_latency)
     << ",\"e2e_latency\":" << LatencyToJson(s.e2e_latency)
     << ",\"stage_latency\":{"
     << "\"queue\":" << LatencyToJson(s.stage_queue)
     << ",\"batch\":" << LatencyToJson(s.stage_batch)
     << ",\"cache\":" << LatencyToJson(s.stage_cache)
     << ",\"exec\":" << LatencyToJson(s.stage_exec) << "}"
     << ",\"slowest_stage\":\"" << JsonEscape(s.SlowestStage()) << "\""
     << ",\"tenants\":[";
  for (size_t i = 0; i < s.tenants.size(); ++i) {
    const TenantServeStats& t = s.tenants[i];
    if (i > 0) os << ",";
    os << "{\"tenant\":\"" << JsonEscape(t.tenant) << "\""
       << ",\"submitted\":" << U64(t.submitted)
       << ",\"admitted\":" << U64(t.admitted)
       << ",\"shed_capacity\":" << U64(t.shed_capacity)
       << ",\"shed_expired\":" << U64(t.shed_expired)
       << ",\"shed_closed\":" << U64(t.shed_closed)
       << ",\"shed_evicted\":" << U64(t.shed_evicted)
       << ",\"completed\":" << U64(t.completed)
       << ",\"failed\":" << U64(t.failed)
       << ",\"queue_depth\":" << t.queue_depth
       << ",\"e2e_latency\":" << LatencyToJson(t.e2e_latency) << "}";
  }
  os << "]}}";
  return os.str();
}

std::string MetricsExporter::ServeToPrometheus(const ServeStatsSnapshot& s,
                                               const std::string& prefix) {
  std::ostringstream os;
  const std::string submitted = prefix + "_serve_submitted_total";
  Family(&os, submitted, "counter", "Requests offered to the front door.");
  os << submitted << " " << U64(s.submitted) << "\n";
  const std::string admitted = prefix + "_serve_admitted_total";
  Family(&os, admitted, "counter", "Requests admitted past admission control.");
  os << admitted << " " << U64(s.admitted) << "\n";
  const std::string shed = prefix + "_serve_shed_total";
  Family(&os, shed, "counter",
         "Requests shed, by reason (capacity/deadline/closed/evicted).");
  os << shed << "{reason=\"capacity\"} " << U64(s.shed_capacity) << "\n";
  os << shed << "{reason=\"deadline\"} " << U64(s.shed_expired) << "\n";
  os << shed << "{reason=\"closed\"} " << U64(s.shed_closed) << "\n";
  os << shed << "{reason=\"evicted\"} " << U64(s.shed_evicted) << "\n";
  const std::string batched = prefix + "_serve_batched_requests_total";
  Family(&os, batched, "counter", "Requests dispatched inside micro-batches.");
  os << batched << " " << U64(s.batched_requests) << "\n";
  const std::string batches = prefix + "_serve_batches_total";
  Family(&os, batches, "counter", "Micro-batches dispatched to workers.");
  os << batches << " " << U64(s.batches) << "\n";
  const std::string cache = prefix + "_serve_cache_lookups_total";
  Family(&os, cache, "counter",
         "Sub-path cost cache lookups, by outcome (hit/miss).");
  os << cache << "{outcome=\"hit\"} " << U64(s.cache_hits) << "\n";
  os << cache << "{outcome=\"miss\"} " << U64(s.cache_misses) << "\n";
  const std::string evict = prefix + "_serve_cache_evictions_total";
  Family(&os, evict, "counter", "Sub-path cost cache LRU evictions.");
  os << evict << " " << U64(s.cache_evictions) << "\n";
  const std::string csize = prefix + "_serve_cache_entries";
  Family(&os, csize, "gauge", "Resident sub-path cost cache entries.");
  os << csize << " " << s.cache_size << "\n";
  const std::string completed = prefix + "_serve_completed_total";
  Family(&os, completed, "counter", "Requests answered OK.");
  os << completed << " " << U64(s.completed) << "\n";
  const std::string failed = prefix + "_serve_failed_total";
  Family(&os, failed, "counter", "Requests answered with an error.");
  os << failed << " " << U64(s.failed) << "\n";
  const std::string depth = prefix + "_serve_queue_depth";
  Family(&os, depth, "gauge", "Requests currently queued.");
  os << depth << " " << s.queue_depth << "\n";
  const std::string workers = prefix + "_serve_workers";
  Family(&os, workers, "gauge", "Current worker pool size.");
  os << workers << " " << s.workers << "\n";
  const std::string scales = prefix + "_serve_scale_events_total";
  Family(&os, scales, "counter", "Autoscaler pool resizes.");
  os << scales << " " << s.scale_events << "\n";
  const std::string qlat = prefix + "_serve_queue_latency_seconds";
  Family(&os, qlat, "summary", "Admission-to-dispatch latency in seconds.");
  LatencySummary(&os, qlat, "", s.queue_latency);
  const std::string elat = prefix + "_serve_latency_seconds";
  Family(&os, elat, "summary",
         "Admission-to-answer latency of answered requests in seconds.");
  LatencySummary(&os, elat, "", s.e2e_latency);
  const std::string slat = prefix + "_serve_stage_latency_seconds";
  Family(&os, slat, "summary",
         "Critical-path attribution: per-request time spent in each serving "
         "stage (the four stages partition the e2e latency exactly).");
  LatencySummary(&os, slat, "stage=\"queue\"", s.stage_queue);
  LatencySummary(&os, slat, "stage=\"batch\"", s.stage_batch);
  LatencySummary(&os, slat, "stage=\"cache\"", s.stage_cache);
  LatencySummary(&os, slat, "stage=\"exec\"", s.stage_exec);
  if (!s.tenants.empty()) {
    const auto tlabel = [](const TenantServeStats& t) {
      return "{tenant=\"" + JsonEscape(t.tenant) + "\"}";
    };
    const std::string tsub = prefix + "_serve_tenant_submitted_total";
    Family(&os, tsub, "counter", "Requests offered, by tenant.");
    for (const auto& t : s.tenants) {
      os << tsub << tlabel(t) << " " << U64(t.submitted) << "\n";
    }
    const std::string tadm = prefix + "_serve_tenant_admitted_total";
    Family(&os, tadm, "counter", "Requests admitted, by tenant.");
    for (const auto& t : s.tenants) {
      os << tadm << tlabel(t) << " " << U64(t.admitted) << "\n";
    }
    const std::string tshed = prefix + "_serve_tenant_shed_total";
    Family(&os, tshed, "counter",
           "Requests shed, by tenant and reason "
           "(capacity/deadline/closed/evicted). Summed over tenants each "
           "reason equals the matching global shed counter.");
    for (const auto& t : s.tenants) {
      const std::string name = "tenant=\"" + JsonEscape(t.tenant) + "\"";
      os << tshed << "{" << name << ",reason=\"capacity\"} "
         << U64(t.shed_capacity) << "\n";
      os << tshed << "{" << name << ",reason=\"deadline\"} "
         << U64(t.shed_expired) << "\n";
      os << tshed << "{" << name << ",reason=\"closed\"} "
         << U64(t.shed_closed) << "\n";
      os << tshed << "{" << name << ",reason=\"evicted\"} "
         << U64(t.shed_evicted) << "\n";
    }
    const std::string tdone = prefix + "_serve_tenant_completed_total";
    Family(&os, tdone, "counter", "Requests answered OK, by tenant.");
    for (const auto& t : s.tenants) {
      os << tdone << tlabel(t) << " " << U64(t.completed) << "\n";
    }
    const std::string tfail = prefix + "_serve_tenant_failed_total";
    Family(&os, tfail, "counter",
           "Requests answered with an error, by tenant.");
    for (const auto& t : s.tenants) {
      os << tfail << tlabel(t) << " " << U64(t.failed) << "\n";
    }
    const std::string tdepth = prefix + "_serve_tenant_queue_depth";
    Family(&os, tdepth, "gauge",
           "Requests currently queued in the tenant's weighted-fair "
           "sub-queue.");
    for (const auto& t : s.tenants) {
      os << tdepth << tlabel(t) << " " << t.queue_depth << "\n";
    }
    const std::string tlat = prefix + "_serve_tenant_latency_seconds";
    Family(&os, tlat, "summary",
           "Admission-to-answer latency by tenant — the series per-tenant "
           "SLOs (premium p95) alert on.");
    for (const auto& t : s.tenants) {
      LatencySummary(&os, tlat, "tenant=\"" + JsonEscape(t.tenant) + "\"",
                     t.e2e_latency);
    }
  }
  return os.str();
}

std::string MetricsExporter::ShardToJson(const ShardStatsSnapshot& s) {
  std::ostringstream os;
  const ShardRouterStats& r = s.router;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"shard\":{"
     << "\"num_shards\":" << r.num_shards
     << ",\"generation\":" << U64(r.generation)
     << ",\"forwarded\":" << U64(r.forwarded)
     << ",\"scattered\":" << U64(r.scattered)
     << ",\"probes_sent\":" << U64(r.probes_sent)
     << ",\"probe_transport_failures\":" << U64(r.probe_transport_failures)
     << ",\"merges\":" << U64(r.merges)
     << ",\"partial_errors\":" << U64(r.partial_errors)
     << ",\"replicated\":" << U64(r.replicated)
     << ",\"enumeration_failures\":" << U64(r.enumeration_failures)
     << ",\"per_shard\":[";
  for (size_t i = 0; i < s.shards.size(); ++i) {
    if (i > 0) os << ",";
    const uint64_t fwd = i < r.forwarded_per_shard.size()
                             ? r.forwarded_per_shard[i]
                             : 0;
    const uint64_t probes =
        i < r.probes_per_shard.size() ? r.probes_per_shard[i] : 0;
    os << "{\"forwarded\":" << U64(fwd) << ",\"probes\":" << U64(probes)
       << ",\"completed\":" << U64(s.shards[i].completed)
       << ",\"failed\":" << U64(s.shards[i].failed)
       << ",\"queue_depth\":" << s.shards[i].queue_depth
       << ",\"cache_hit_rate\":" << JsonNumber(s.shards[i].CacheHitRate())
       << "}";
  }
  os << "],\"aggregate\":" << ServeToJson(s.Aggregate()) << "}}";
  return os.str();
}

std::string MetricsExporter::ShardToPrometheus(const ShardStatsSnapshot& s,
                                               const std::string& prefix) {
  std::ostringstream os;
  const ShardRouterStats& r = s.router;
  const std::string shards = prefix + "_shard_count";
  Family(&os, shards, "gauge", "Member shards fronted by the router.");
  os << shards << " " << r.num_shards << "\n";
  const std::string generation = prefix + "_shard_map_generation";
  Family(&os, generation, "gauge",
         "ShardMap placement epoch the routing counters belong to.");
  os << generation << " " << U64(r.generation) << "\n";
  const std::string routed = prefix + "_shard_routed_total";
  Family(&os, routed, "counter",
         "Queries routed, by mode (forward = single-shard pinned, scatter = "
         "cross-shard probe fan-out).");
  os << routed << "{mode=\"forward\"} " << U64(r.forwarded) << "\n";
  os << routed << "{mode=\"scatter\"} " << U64(r.scattered) << "\n";
  const std::string probes = prefix + "_shard_probes_total";
  Family(&os, probes, "counter", "Segment cost probes issued by scatters.");
  os << probes << " " << U64(r.probes_sent) << "\n";
  const std::string lost = prefix + "_shard_probe_transport_failures_total";
  Family(&os, lost, "counter",
         "Probes lost to a stopped or overloaded shard (each one turns its "
         "scatter into a typed partial-result error).");
  os << lost << " " << U64(r.probe_transport_failures) << "\n";
  const std::string merges = prefix + "_shard_merges_total";
  Family(&os, merges, "counter", "Scatter answers assembled.");
  os << merges << " " << U64(r.merges) << "\n";
  const std::string partial = prefix + "_shard_partial_errors_total";
  Family(&os, partial, "counter",
         "Scatters answered Status::Unavailable because probes were lost — "
         "degraded capacity surfaces as typed errors, never wrong routes.");
  os << partial << " " << U64(r.partial_errors) << "\n";
  const std::string replicated = prefix + "_shard_cache_replications_total";
  Family(&os, replicated, "counter",
         "Boundary sub-path cache entries replicated into endpoint-owner "
         "shards.");
  os << replicated << " " << U64(r.replicated) << "\n";
  const std::string enumf = prefix + "_shard_enumeration_failures_total";
  Family(&os, enumf, "counter",
         "Scatters that died at candidate enumeration, before any probe.");
  os << enumf << " " << U64(r.enumeration_failures) << "\n";
  const std::string routed_by = prefix + "_shard_routed_by_shard_total";
  Family(&os, routed_by, "counter",
         "Per-shard routing attribution, by kind (forwarded queries / "
         "scatter probes served).");
  for (size_t i = 0; i < r.forwarded_per_shard.size(); ++i) {
    os << routed_by << "{shard=\"" << i << "\",kind=\"forward\"} "
       << U64(r.forwarded_per_shard[i]) << "\n";
  }
  for (size_t i = 0; i < r.probes_per_shard.size(); ++i) {
    os << routed_by << "{shard=\"" << i << "\",kind=\"probe\"} "
       << U64(r.probes_per_shard[i]) << "\n";
  }
  // Fleet-aggregate serve families: one coherent serve view of the whole
  // fleet, same families a single node exports.
  os << ServeToPrometheus(s.Aggregate(), prefix);
  return os.str();
}

std::string MetricsExporter::HealthToJson(const HealthSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"health\":{"
     << "\"state\":\"" << HealthStateName(s.state) << "\""
     << ",\"samples\":" << U64(s.samples)
     << ",\"anomalies_total\":" << U64(s.anomalies_total)
     << ",\"slo\":{"
     << "\"objective_seconds\":" << JsonNumber(s.slo_objective_seconds)
     << ",\"violation_fraction\":" << JsonNumber(s.violation_fraction)
     << ",\"burn_rate\":" << JsonNumber(s.burn_rate) << "}"
     << ",\"top_offender\":\"" << JsonEscape(s.top_offender) << "\""
     << ",\"top_offender_share\":" << JsonNumber(s.top_offender_share)
     << ",\"metrics\":{";
  bool first = true;
  for (const MetricVerdict& v : s.metrics) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(v.name) << "\":{"
       << "\"value\":" << JsonNumber(v.value)
       << ",\"score\":" << JsonNumber(v.score)
       << ",\"anomalous\":" << (v.anomalous ? "true" : "false")
       << ",\"anomalies\":" << U64(v.anomalies) << "}";
  }
  os << "}";
  // The transition ring: when the monitor's verdict changed, oldest first,
  // with the evidence of each moment — so /health answers *when* a
  // degradation started, not just what the state is now.
  os << ",\"transitions_total\":" << U64(s.transitions_total)
     << ",\"transitions\":[";
  first = true;
  for (const HealthTransition& t : s.transitions) {
    if (!first) os << ",";
    first = false;
    os << "{\"sample\":" << U64(t.sample) << ",\"at_ns\":" << U64(t.at_ns)
       << ",\"from\":\"" << HealthStateName(t.from) << "\""
       << ",\"to\":\"" << HealthStateName(t.to) << "\""
       << ",\"top_offender\":\"" << JsonEscape(t.top_offender) << "\""
       << ",\"burn_rate\":" << JsonNumber(t.burn_rate) << "}";
  }
  os << "]}}";
  return os.str();
}

std::string MetricsExporter::HealthToPrometheus(const HealthSnapshot& s,
                                                const std::string& prefix) {
  std::ostringstream os;
  const std::string state = prefix + "_health_state";
  Family(&os, state, "gauge",
         "Self-monitor verdict: 0 healthy, 1 degraded, 2 unhealthy.");
  os << state << " " << static_cast<int>(s.state) << "\n";
  const std::string samples = prefix + "_health_samples_total";
  Family(&os, samples, "counter", "Health sampling rounds completed.");
  os << samples << " " << U64(s.samples) << "\n";
  const std::string burn = prefix + "_health_slo_burn_rate";
  Family(&os, burn, "gauge",
         "Latency SLO burn over the last sampling interval "
         "(1 = spending exactly the error budget).");
  os << burn << " " << JsonNumber(s.burn_rate) << "\n";
  const std::string value = prefix + "_health_metric_value";
  Family(&os, value, "gauge", "Latest sampled value of each watched metric.");
  for (const MetricVerdict& v : s.metrics) {
    os << value << "{metric=\"" << JsonEscape(v.name) << "\"} "
       << JsonNumber(v.value) << "\n";
  }
  const std::string score = prefix + "_health_metric_score";
  Family(&os, score, "gauge",
         "Prequential anomaly score of each watched metric's latest sample.");
  for (const MetricVerdict& v : s.metrics) {
    os << score << "{metric=\"" << JsonEscape(v.name) << "\"} "
       << JsonNumber(v.score) << "\n";
  }
  const std::string anom = prefix + "_health_metric_anomalies_total";
  Family(&os, anom, "counter",
         "Post-warmup anomaly alarms per watched metric.");
  for (const MetricVerdict& v : s.metrics) {
    os << anom << "{metric=\"" << JsonEscape(v.name) << "\"} "
       << U64(v.anomalies) << "\n";
  }
  const std::string trans = prefix + "_health_transitions_total";
  Family(&os, trans, "counter",
         "Health-state transitions since Start (flapping shows up here "
         "even after the snapshot's transition ring trims).");
  os << trans << " " << U64(s.transitions_total) << "\n";
  return os.str();
}

std::string MetricsExporter::IngestToJson(const IngestStatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"ingest\":{"
     << "\"parser\":{"
     << "\"bytes_consumed\":" << U64(s.parser.bytes_consumed)
     << ",\"frames_accepted\":" << U64(s.parser.frames_accepted)
     << ",\"rejected\":{"
     << "\"bad_length\":" << U64(s.parser.rejected_bad_length)
     << ",\"bad_crc\":" << U64(s.parser.rejected_bad_crc)
     << ",\"bad_sensor\":" << U64(s.parser.rejected_bad_sensor)
     << ",\"duplicate_seq\":" << U64(s.parser.rejected_duplicate_seq)
     << ",\"out_of_order\":" << U64(s.parser.rejected_out_of_order) << "}"
     << ",\"resync_bytes\":" << U64(s.parser.resync_bytes)
     << ",\"gaps_detected\":" << U64(s.parser.gaps_detected) << "}"
     << ",\"wal\":{"
     << "\"enabled\":" << (s.wal_enabled ? "true" : "false")
     << ",\"records\":" << U64(s.wal.records)
     << ",\"payload_bytes\":" << U64(s.wal.payload_bytes)
     << ",\"appended_bytes\":" << U64(s.wal.appended_bytes)
     << ",\"segments_created\":" << U64(s.wal.segments_created)
     << ",\"rotations\":" << U64(s.wal.rotations)
     << ",\"syncs\":" << U64(s.wal.syncs) << "}"
     << ",\"recovery\":{"
     << "\"ticks_replayed\":" << U64(s.recovery.ticks_replayed)
     << ",\"torn_records_skipped\":" << U64(s.recovery.torn_records_skipped)
     << ",\"segments_scanned\":" << U64(s.recovery.segments_scanned)
     << ",\"bytes_scanned\":" << U64(s.recovery.bytes_scanned)
     << ",\"last_lsn\":" << U64(s.recovery.last_lsn)
     << ",\"seconds\":" << JsonNumber(s.recovery.seconds) << "}"
     << ",\"ticks_processed\":" << U64(s.ticks_processed)
     << ",\"anomaly_alarms\":" << U64(s.anomaly_alarms)
     << ",\"buffer_dropped\":" << U64(s.buffer_dropped) << "}}";
  return os.str();
}

std::string MetricsExporter::IngestToPrometheus(const IngestStatsSnapshot& s,
                                                const std::string& prefix) {
  std::ostringstream os;
  const std::string accepted = prefix + "_ingest_frames_accepted_total";
  Family(&os, accepted, "counter", "Tick frames accepted by the parser.");
  os << accepted << " " << U64(s.parser.frames_accepted) << "\n";
  const std::string rejected = prefix + "_ingest_frames_rejected_total";
  Family(&os, rejected, "counter", "Tick frames rejected, by reason.");
  os << rejected << "{reason=\"bad_length\"} "
     << U64(s.parser.rejected_bad_length) << "\n";
  os << rejected << "{reason=\"bad_crc\"} " << U64(s.parser.rejected_bad_crc)
     << "\n";
  os << rejected << "{reason=\"bad_sensor\"} "
     << U64(s.parser.rejected_bad_sensor) << "\n";
  os << rejected << "{reason=\"duplicate_seq\"} "
     << U64(s.parser.rejected_duplicate_seq) << "\n";
  os << rejected << "{reason=\"out_of_order\"} "
     << U64(s.parser.rejected_out_of_order) << "\n";
  const std::string bytes = prefix + "_ingest_bytes_consumed_total";
  Family(&os, bytes, "counter", "Feed bytes consumed by the parser.");
  os << bytes << " " << U64(s.parser.bytes_consumed) << "\n";
  const std::string resync = prefix + "_ingest_resync_bytes_total";
  Family(&os, resync, "counter",
         "Bytes skipped while hunting for a frame boundary (corruption "
         "debris).");
  os << resync << " " << U64(s.parser.resync_bytes) << "\n";
  const std::string gaps = prefix + "_ingest_seq_gaps_total";
  Family(&os, gaps, "counter",
         "Missing sequence numbers observed at accept time (upstream loss).");
  os << gaps << " " << U64(s.parser.gaps_detected) << "\n";
  const std::string wrec = prefix + "_ingest_wal_records_total";
  Family(&os, wrec, "counter", "Records appended to the WAL.");
  os << wrec << " " << U64(s.wal.records) << "\n";
  const std::string wbytes = prefix + "_ingest_wal_appended_bytes_total";
  Family(&os, wbytes, "counter",
         "Bytes appended to the WAL including record framing.");
  os << wbytes << " " << U64(s.wal.appended_bytes) << "\n";
  const std::string wrot = prefix + "_ingest_wal_rotations_total";
  Family(&os, wrot, "counter", "WAL segment rotations.");
  os << wrot << " " << U64(s.wal.rotations) << "\n";
  const std::string wsync = prefix + "_ingest_wal_syncs_total";
  Family(&os, wsync, "counter", "msync barriers issued on the WAL.");
  os << wsync << " " << U64(s.wal.syncs) << "\n";
  const std::string replayed = prefix + "_ingest_recovery_ticks_replayed";
  Family(&os, replayed, "gauge",
         "Ticks replayed from the WAL by the last Start().");
  os << replayed << " " << U64(s.recovery.ticks_replayed) << "\n";
  const std::string torn = prefix + "_ingest_recovery_torn_records";
  Family(&os, torn, "gauge",
         "Torn WAL records detected and skipped by the last Start().");
  os << torn << " " << U64(s.recovery.torn_records_skipped) << "\n";
  const std::string rsec = prefix + "_ingest_recovery_seconds";
  Family(&os, rsec, "gauge", "Wall-clock seconds of the last WAL replay.");
  os << rsec << " " << JsonNumber(s.recovery.seconds) << "\n";
  const std::string ticks = prefix + "_ingest_ticks_processed_total";
  Family(&os, ticks, "counter",
         "Ticks fully processed by the ingest pipeline (replay + live).");
  os << ticks << " " << U64(s.ticks_processed) << "\n";
  const std::string alarms = prefix + "_ingest_anomaly_alarms_total";
  Family(&os, alarms, "counter", "Anomaly alarms raised on the ingest path.");
  os << alarms << " " << U64(s.anomaly_alarms) << "\n";
  const std::string dropped = prefix + "_ingest_buffer_dropped_total";
  Family(&os, dropped, "counter",
         "Ticks evicted from the retention buffer by its drop policy.");
  os << dropped << " " << U64(s.buffer_dropped) << "\n";
  return os.str();
}

std::string MetricsExporter::TraceToPrometheus(const TraceRecorder& recorder,
                                               const std::string& prefix) {
  std::ostringstream os;
  const std::string dropped = prefix + "_trace_dropped_total";
  Family(&os, dropped, "counter",
         "Trace spans lost to ring overflow since the last Clear; nonzero "
         "means the exported trace is incomplete (raise SetCapacity).");
  os << dropped << " " << U64(recorder.DroppedSpans()) << "\n";
  return os.str();
}

std::string MetricsExporter::TraceToJson(const TraceRecorder& recorder) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"trace\":{"
     << "\"enabled\":" << (TraceRecorder::Enabled() ? "true" : "false")
     << ",\"dropped\":" << U64(recorder.DroppedSpans()) << "}}";
  return os.str();
}

std::string MetricsExporter::FlightToJson(const FlightStatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"flight\":{"
     << "\"enabled\":" << (s.enabled ? "true" : "false")
     << ",\"observed\":" << U64(s.observed)
     << ",\"retained\":{"
     << "\"slo_breach\":" << U64(s.retained_slo)
     << ",\"shed\":" << U64(s.retained_shed)
     << ",\"error\":" << U64(s.retained_error)
     << ",\"head_sample\":" << U64(s.retained_sample)
     << ",\"total\":" << U64(s.RetainedTotal()) << "}"
     << ",\"discarded\":" << U64(s.discarded)
     << ",\"evicted\":" << U64(s.evicted)
     << ",\"open_overflow\":" << U64(s.open_overflow)
     << ",\"spans_captured\":" << U64(s.spans_captured)
     << ",\"spans_dropped\":" << U64(s.spans_dropped)
     << ",\"open_requests\":" << U64(s.open_requests)
     << ",\"retained_records\":" << U64(s.retained_records)
     << ",\"dumps\":" << U64(s.dumps) << "}}";
  return os.str();
}

std::string MetricsExporter::FlightToPrometheus(const FlightStatsSnapshot& s,
                                                const std::string& prefix) {
  std::ostringstream os;
  const std::string enabled = prefix + "_flight_enabled";
  Family(&os, enabled, "gauge", "Flight recorder enabled (1) or not (0).");
  os << enabled << " " << (s.enabled ? 1 : 0) << "\n";
  const std::string observed = prefix + "_flight_observed_total";
  Family(&os, observed, "counter",
         "Request completions observed by the flight recorder.");
  os << observed << " " << U64(s.observed) << "\n";
  const std::string retained = prefix + "_flight_retained_total";
  Family(&os, retained, "counter",
         "Completed requests retained by the retroactive tail policy, by "
         "reason.");
  os << retained << "{reason=\"slo_breach\"} " << U64(s.retained_slo) << "\n";
  os << retained << "{reason=\"shed\"} " << U64(s.retained_shed) << "\n";
  os << retained << "{reason=\"error\"} " << U64(s.retained_error) << "\n";
  os << retained << "{reason=\"head_sample\"} " << U64(s.retained_sample)
     << "\n";
  const std::string discarded = prefix + "_flight_discarded_total";
  Family(&os, discarded, "counter",
         "Completions judged unremarkable; their records were dropped.");
  os << discarded << " " << U64(s.discarded) << "\n";
  const std::string evicted = prefix + "_flight_evicted_total";
  Family(&os, evicted, "counter",
         "Retained records displaced from the ring by the per-tenant "
         "reservoir policy.");
  os << evicted << " " << U64(s.evicted) << "\n";
  const std::string overflow = prefix + "_flight_open_overflow_total";
  Family(&os, overflow, "counter",
         "Spans dropped because the open-request table was at capacity.");
  os << overflow << " " << U64(s.open_overflow) << "\n";
  const std::string spans = prefix + "_flight_spans_total";
  Family(&os, spans, "counter",
         "Spans offered to open records, by fate (over-cap spans are "
         "counted per record too).");
  os << spans << "{fate=\"captured\"} " << U64(s.spans_captured) << "\n";
  os << spans << "{fate=\"dropped\"} " << U64(s.spans_dropped) << "\n";
  const std::string open = prefix + "_flight_open_requests";
  Family(&os, open, "gauge",
         "Records live in the open table (in-flight + retained).");
  os << open << " " << U64(s.open_requests) << "\n";
  const std::string ring = prefix + "_flight_retained_records";
  Family(&os, ring, "gauge", "Records currently in the retained ring.");
  os << ring << " " << U64(s.retained_records) << "\n";
  const std::string dumps = prefix + "_flight_dumps_total";
  Family(&os, dumps, "counter",
         "Black-box dumps frozen on worsening health transitions.");
  os << dumps << " " << U64(s.dumps) << "\n";
  return os.str();
}

std::string MetricsExporter::NetToJson(const NetStatsSnapshot& s) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"net\":{"
     << "\"connections\":{"
     << "\"accepted\":" << U64(s.connections_accepted)
     << ",\"closed\":" << U64(s.connections_closed)
     << ",\"active\":" << s.connections_active << "}"
     << ",\"sheds\":{"
     << "\"conn_cap\":" << U64(s.shed_conn_cap)
     << ",\"queue_full\":" << U64(s.shed_queue_full)
     << ",\"deadline\":" << U64(s.shed_deadline)
     << ",\"total\":" << U64(s.ShedTotal()) << "}"
     << ",\"frames\":{"
     << "\"bytes_consumed\":" << U64(s.frames.bytes_consumed)
     << ",\"accepted\":" << U64(s.frames.frames_accepted)
     << ",\"rejected\":{"
     << "\"bad_length\":" << U64(s.frames.rejected_bad_length)
     << ",\"bad_crc\":" << U64(s.frames.rejected_bad_crc)
     << ",\"bad_opcode\":" << U64(s.rejected_bad_opcode) << "}"
     << ",\"resync_bytes\":" << U64(s.frames.resync_bytes) << "}"
     << ",\"queries_answered\":" << U64(s.queries_answered)
     << ",\"queries_failed\":" << U64(s.queries_failed)
     << ",\"pings\":" << U64(s.pings)
     << ",\"http\":{"
     << "\"metrics\":" << U64(s.http_metrics)
     << ",\"health\":" << U64(s.http_health)
     << ",\"query\":" << U64(s.http_query)
     << ",\"debug_traces\":" << U64(s.http_debug_traces)
     << ",\"debug_flight\":" << U64(s.http_debug_flight)
     << ",\"bad_request\":" << U64(s.http_bad_request)
     << ",\"not_found\":" << U64(s.http_not_found)
     << ",\"method_not_allowed\":" << U64(s.http_method_not_allowed)
     << ",\"too_large\":" << U64(s.http_too_large)
     << ",\"errors_total\":" << U64(s.HttpErrorsTotal()) << "}"
     << ",\"completions_dropped\":" << U64(s.completions_dropped)
     << ",\"bytes_read\":" << U64(s.bytes_read)
     << ",\"bytes_written\":" << U64(s.bytes_written)
     << ",\"wire_latency\":" << LatencyToJson(s.wire_latency) << "}}";
  return os.str();
}

std::string MetricsExporter::NetToPrometheus(const NetStatsSnapshot& s,
                                             const std::string& prefix) {
  std::ostringstream os;
  const std::string conns = prefix + "_net_connections_total";
  Family(&os, conns, "counter", "Connections accepted since start.");
  os << conns << " " << U64(s.connections_accepted) << "\n";
  const std::string active = prefix + "_net_connections_active";
  Family(&os, active, "gauge", "Currently open connections.");
  os << active << " " << s.connections_active << "\n";
  const std::string sheds = prefix + "_net_sheds_total";
  Family(&os, sheds, "counter",
         "Wire requests shed by socket-layer admission control BEFORE "
         "payload deserialization, by reason.");
  os << sheds << "{reason=\"conn_cap\"} " << U64(s.shed_conn_cap) << "\n";
  os << sheds << "{reason=\"queue_full\"} " << U64(s.shed_queue_full) << "\n";
  os << sheds << "{reason=\"deadline\"} " << U64(s.shed_deadline) << "\n";
  const std::string faccept = prefix + "_net_frames_accepted_total";
  Family(&os, faccept, "counter", "Binary frames accepted by the parser.");
  os << faccept << " " << U64(s.frames.frames_accepted) << "\n";
  const std::string frej = prefix + "_net_frames_rejected_total";
  Family(&os, frej, "counter", "Binary frames rejected, by reason.");
  os << frej << "{reason=\"bad_length\"} " << U64(s.frames.rejected_bad_length)
     << "\n";
  os << frej << "{reason=\"bad_crc\"} " << U64(s.frames.rejected_bad_crc)
     << "\n";
  os << frej << "{reason=\"bad_opcode\"} " << U64(s.rejected_bad_opcode)
     << "\n";
  const std::string resync = prefix + "_net_resync_bytes_total";
  Family(&os, resync, "counter",
         "Bytes skipped hunting for a frame boundary (corruption debris).");
  os << resync << " " << U64(s.frames.resync_bytes) << "\n";
  const std::string queries = prefix + "_net_queries_total";
  Family(&os, queries, "counter",
         "Binary route queries completed, by outcome.");
  os << queries << "{outcome=\"answered\"} " << U64(s.queries_answered)
     << "\n";
  os << queries << "{outcome=\"failed\"} " << U64(s.queries_failed) << "\n";
  const std::string pings = prefix + "_net_pings_total";
  Family(&os, pings, "counter", "Ping frames answered.");
  os << pings << " " << U64(s.pings) << "\n";
  const std::string http = prefix + "_net_http_requests_total";
  Family(&os, http, "counter", "HTTP requests served OK, by endpoint.");
  os << http << "{endpoint=\"metrics\"} " << U64(s.http_metrics) << "\n";
  os << http << "{endpoint=\"health\"} " << U64(s.http_health) << "\n";
  os << http << "{endpoint=\"query\"} " << U64(s.http_query) << "\n";
  os << http << "{endpoint=\"debug_traces\"} " << U64(s.http_debug_traces)
     << "\n";
  os << http << "{endpoint=\"debug_flight\"} " << U64(s.http_debug_flight)
     << "\n";
  const std::string herr = prefix + "_net_http_errors_total";
  Family(&os, herr, "counter", "HTTP error responses, by status class.");
  os << herr << "{status=\"400\"} " << U64(s.http_bad_request) << "\n";
  os << herr << "{status=\"404\"} " << U64(s.http_not_found) << "\n";
  os << herr << "{status=\"405\"} " << U64(s.http_method_not_allowed) << "\n";
  os << herr << "{status=\"431\"} " << U64(s.http_too_large) << "\n";
  const std::string dropped = prefix + "_net_completions_dropped_total";
  Family(&os, dropped, "counter",
         "Serve answers whose connection closed before the response was "
         "written.");
  os << dropped << " " << U64(s.completions_dropped) << "\n";
  const std::string bytes = prefix + "_net_bytes_total";
  Family(&os, bytes, "counter", "Socket bytes moved, by direction.");
  os << bytes << "{direction=\"read\"} " << U64(s.bytes_read) << "\n";
  os << bytes << "{direction=\"written\"} " << U64(s.bytes_written) << "\n";
  const std::string lat = prefix + "_net_request_latency_seconds";
  Family(&os, lat, "summary",
         "Wire-level binary request latency in seconds (first byte read to "
         "response handed to the kernel).");
  LatencySummary(&os, lat, "", s.wire_latency);
  return os.str();
}

namespace {

/// The process-wide metrics source registry behind ExportPrometheus /
/// ExportJson. Registration order is preserved so the aggregate documents
/// are deterministic.
struct SourceEntry {
  std::string name;
  MetricsExporter::PrometheusSourceFn prometheus;
  MetricsExporter::JsonSourceFn json;
};

struct SourceRegistry {
  std::mutex mu;
  std::vector<SourceEntry> entries;
};

SourceRegistry& Sources() {
  static SourceRegistry* registry = new SourceRegistry();
  return *registry;
}

}  // namespace

void MetricsExporter::RegisterSource(const std::string& name,
                                     PrometheusSourceFn prometheus,
                                     JsonSourceFn json) {
  SourceRegistry& reg = Sources();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (SourceEntry& entry : reg.entries) {
    if (entry.name == name) {
      entry.prometheus = std::move(prometheus);
      entry.json = std::move(json);
      return;
    }
  }
  reg.entries.push_back({name, std::move(prometheus), std::move(json)});
}

void MetricsExporter::UnregisterSource(const std::string& name) {
  SourceRegistry& reg = Sources();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto it = reg.entries.begin(); it != reg.entries.end(); ++it) {
    if (it->name == name) {
      reg.entries.erase(it);
      return;
    }
  }
}

std::string MetricsExporter::ExportPrometheus(const std::string& prefix) {
  // Snapshot the closures under the lock, run them outside it: a source's
  // snapshot function may itself take subsystem locks, and holding the
  // registry lock across user code invites ordering cycles.
  std::vector<SourceEntry> entries;
  {
    SourceRegistry& reg = Sources();
    std::lock_guard<std::mutex> lock(reg.mu);
    entries = reg.entries;
  }
  std::ostringstream os;
  for (const SourceEntry& entry : entries) {
    os << "# SOURCE " << entry.name << "\n";
    if (entry.prometheus) os << entry.prometheus(prefix);
  }
  return os.str();
}

std::string MetricsExporter::ExportJson() {
  std::vector<SourceEntry> entries;
  {
    SourceRegistry& reg = Sources();
    std::lock_guard<std::mutex> lock(reg.mu);
    entries = reg.entries;
  }
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"sources\":{";
  bool first = true;
  for (const SourceEntry& entry : entries) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(entry.name) << "\":";
    os << (entry.json ? entry.json() : std::string("null"));
  }
  os << "}}";
  return os.str();
}

std::string MetricsExporter::StreamToJson(const StreamPipeline& pipeline) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kSchemaVersion << ",\"stream\":{"
     << "\"ticks\":" << pipeline.ticks_processed()
     << ",\"tick_latency\":" << LatencyToJson(pipeline.tick_latency())
     << "},";
  StagesJson(&os, pipeline.metrics());
  os << "}";
  return os.str();
}

std::string MetricsExporter::StreamToPrometheus(const StreamPipeline& pipeline,
                                                const std::string& prefix) {
  std::ostringstream os;
  const std::string ticks = prefix + "_stream_ticks_total";
  Family(&os, ticks, "counter", "Ticks fully processed by the pipeline.");
  os << ticks << " " << pipeline.ticks_processed() << "\n";
  const std::string lat = prefix + "_stream_tick_latency_seconds";
  Family(&os, lat, "summary", "End-to-end per-tick latency in seconds.");
  LatencySummary(&os, lat, "", pipeline.tick_latency());
  StagesPrometheus(&os, pipeline.metrics(), prefix);
  return os.str();
}

}  // namespace tsdm
