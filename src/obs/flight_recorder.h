#ifndef TSDM_OBS_FLIGHT_RECORDER_H_
#define TSDM_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/serve/request_queue.h"
#include "src/serve/serve_stats.h"

namespace tsdm {

/// Terminal fate of a completed request, as the flight recorder sees it.
enum class FlightOutcome {
  kCompleted = 0,  ///< answered with Status::OK
  kShed = 1,       ///< typed admission/overload shed (capacity, expiry, ...)
  kFailed = 2,     ///< answered non-OK for any other reason (model error, ...)
};

/// Why a completed request's trace was retained. The policy is retroactive
/// ("tail-based"): the decision is made at completion time, when the
/// outcome and the end-to-end latency are known — not at the head, when
/// they are not.
enum class FlightRetainReason {
  kSloBreach = 0,   ///< e2e latency >= Options::slo_threshold_seconds
  kShed = 1,        ///< the request was shed
  kError = 2,       ///< the request failed
  kHeadSample = 3,  ///< 1-in-N head sample (baseline for comparison)
};

const char* FlightOutcomeName(FlightOutcome outcome);
const char* FlightRetainReasonName(FlightRetainReason reason);

/// One completed request's black-box record: the linked span tree captured
/// while the request was in flight, plus the terminal answer's outcome,
/// latency attribution, and tenant/shard ownership.
struct FlightRecord {
  uint64_t request_id = 0;  ///< trace request id (0 = tracing was disabled)
  uint64_t seq = 0;         ///< global retention order (monotonic)
  std::string tenant;
  int shard = -1;  ///< SubmitOptions::shard of the serving shard (-1 = none)
  FlightOutcome outcome = FlightOutcome::kCompleted;
  FlightRetainReason reason = FlightRetainReason::kHeadSample;
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  double e2e_seconds = 0.0;
  StageBreakdown stages;
  uint64_t client_request_id = 0;
  uint64_t completed_ns = 0;  ///< TraceRecorder::NowNs at completion
  uint64_t spans_dropped = 0;  ///< spans lost to max_spans_per_record
  bool complete = false;       ///< OnComplete has been applied
  /// Every span recorded under this request id, in arrival order. Late
  /// spans (a worker's exec span closes after the completion callback
  /// fires) keep appending while the record sits in the retained ring.
  std::vector<TraceEvent> spans;

  /// Which open-table shard owns the record's span vector (internal;
  /// SIZE_MAX for records synthesized at completion with no spans).
  size_t open_shard = SIZE_MAX;
};

/// One coherent snapshot of the recorder's self-metrics — the shape
/// MetricsExporter::FlightTo* serializes (tsdm_flight_* families).
struct FlightStatsSnapshot {
  bool enabled = false;
  uint64_t observed = 0;         ///< completions seen
  uint64_t retained_slo = 0;     ///< retained: SLO breach
  uint64_t retained_shed = 0;    ///< retained: shed
  uint64_t retained_error = 0;   ///< retained: error
  uint64_t retained_sample = 0;  ///< retained: 1-in-N head sample
  /// Completions that retained nothing. Derived (observed minus every
  /// retained-reason counter) rather than counted, so the discard hot path
  /// pays one atomic bump, not two; duplicate completions land here.
  uint64_t discarded = 0;
  uint64_t evicted = 0;          ///< retained then displaced from the ring
  uint64_t open_overflow = 0;    ///< spans dropped: open table at capacity
  uint64_t spans_captured = 0;
  uint64_t spans_dropped = 0;  ///< spans over max_spans_per_record
  uint64_t dumps = 0;          ///< black-box dumps frozen
  size_t open_requests = 0;    ///< in-flight + retained records in the table
  size_t retained_records = 0;

  uint64_t RetainedTotal() const {
    return retained_slo + retained_shed + retained_error + retained_sample;
  }
};

/// Always-on tail-latency forensics: a bounded, lock-cheap ring of
/// *completed request records* with retroactive retention.
///
/// While a request is in flight its spans cost the recorder *nothing*:
/// they sit in the TraceRecorder's own thread buffers, and the tap on the
/// span hot path is a few relaxed loads and a branch. When the request
/// completes (QueryServer's worker, the queue's shed paths, or the shard
/// router's merge call OnComplete with the terminal RouteAnswer), the
/// retention policy decides retroactively:
///
///   keep iff  e2e >= slo_threshold_seconds   (tail evidence)
///         or  the request was shed/errored   (failure evidence)
///         or  it hit the 1-in-N head sample  (baseline for comparison)
///
/// A discard — the healthy high-throughput case — costs two relaxed
/// counter bumps, no lock. Only a *retained* completion pays: its spans
/// are swept out of the TraceRecorder (CollectRequest reads every
/// thread's unflushed buffer plus the global ring) into a record in a
/// sharded open table, which then accepts late spans (the root span
/// closes right after the completion callback) for a short window before
/// the table entry is tombstoned. So the requests an operator will
/// actually ask about ("show me the last 50 over-SLO requests") are here,
/// whole span tree included, even though nobody knew to sample them at
/// the head — while the other 1023-in-1024 pay nanoseconds. The sweep
/// sees spans the TraceRecorder has not flushed yet; only a ring that
/// already overflowed (tsdm_trace_dropped_total) can cost a retained
/// record spans.
///
/// The retained ring is bounded (Options::capacity) with *per-tenant
/// reservoir slots*: when full, the victim is the oldest record of a
/// tenant holding more than Options::reserved_per_tenant slots — a noisy
/// tenant's flood evicts its own records first and can never push another
/// tenant below its reserve.
///
/// On every HealthMonitor transition *into* Degraded/Unhealthy the
/// recorder freezes a "black-box dump": one JSON artifact with the
/// trigger, the health picture, a serve-stats snapshot plus its delta
/// since the previous dump, and every retained trace — retrievable over
/// the wire via GET /debug/flight (latest dump) and GET /debug/traces?n=K
/// (Chrome-trace JSON of the K most recent retained traces, byte-identical
/// per event to TraceRecorder::ToChromeTraceJson).
///
/// Thread-safety: every method is safe from any thread. Configure/Clear
/// are for quiesced moments (no completions in flight); enabling costs one
/// relaxed atomic load per recorded span and per completion when disabled.
class FlightRecorder {
 public:
  struct Options {
    /// Retained ring capacity (completed records kept).
    size_t capacity = 256;
    /// Ring slots a tenant is guaranteed against eviction by *other*
    /// tenants' retention pressure.
    size_t reserved_per_tenant = 8;
    /// Span cap per record; over-cap spans are counted, not kept.
    size_t max_spans_per_record = 96;
    /// Bound on concurrently open (in-flight + retained) records across
    /// the table; spans for new requests beyond it are dropped + counted.
    size_t max_open_requests = 4096;
    /// Retain any request whose end-to-end latency reaches this.
    double slo_threshold_seconds = 0.050;
    /// Head-sample one completion in N as a healthy baseline (0 = none).
    uint64_t head_sample_every = 0;
  };

  /// The process-global recorder the TraceRecorder tap and the serve-tier
  /// completion hooks report to. Never destroyed (same rationale as
  /// TraceRecorder::Global: hooks may fire during shutdown).
  static FlightRecorder& Global();

  /// Replaces the options and clears all state. Call while disabled.
  void Configure(const Options& options);
  Options GetOptions() const;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every open record, retained record, dump, and counter.
  void Clear();

  /// TraceRecorder::Record tap. The common case — no request retained
  /// recently, no manually staged records — is a few relaxed loads and a
  /// branch: spans stay in the TraceRecorder's own buffers and are only
  /// collected (CollectRequest) if their request retains. The table path
  /// runs solely inside the short late-span window after a retention, to
  /// catch spans that close after their request's completion callback.
  static void MaybeRecordSpan(const TraceEvent& ev) {
    if (!Enabled() || ev.request_id == 0) return;
    // tap_armed_ mirrors (pending_open_ != 0 || span_gate_ != 0) as a
    // single *static* flag, so the common case — no staged records, no
    // late-span window — is one relaxed load with no Global() guard and
    // no gate reads. The flag is read-mostly (written only around
    // retentions and staging), so the load stays in shared cache state.
    if (tap_armed_.load(std::memory_order_relaxed) == 0) return;
    Global().OnLateSpan(ev);
  }

  /// Completion-hook guard, mirroring MaybeRecordSpan.
  static void MaybeComplete(uint64_t request_id, int shard,
                            const RouteAnswer& answer) {
    if (Enabled()) Global().OnComplete(request_id, shard, answer);
  }

  /// Appends a closed span to the request's open record, creating it on
  /// first span. This is the *manual staging* path (tests, embedders
  /// recording spans without a TraceRecorder); the production pipeline
  /// stages nothing per span — OnComplete collects a retained request's
  /// spans from the TraceRecorder instead.
  void OnSpan(const TraceEvent& ev);

  /// Applies the terminal answer to the request's record and runs the
  /// retention policy. `request_id` is the trace request id (0 when
  /// tracing is disabled — the record is then outcome-only, no span tree);
  /// `shard` is the serving shard (-1 = unsharded / router-level).
  void OnComplete(uint64_t request_id, int shard, const RouteAnswer& answer);

  /// Copies the `n` most recent retained records, newest first.
  std::vector<FlightRecord> Retained(size_t n) const;

  /// Chrome trace-event JSON of the `n` most recent retained traces. Each
  /// event is serialized by the exact same code path as
  /// TraceRecorder::ToChromeTraceJson (byte-identical per event), so every
  /// downstream trace viewer/tool works unchanged — this is what
  /// GET /debug/traces?n=K returns.
  std::string ToChromeTraceJson(size_t n) const;

  /// Source of the serve-stats snapshot embedded in black-box dumps
  /// (QueryServer::Stats / ShardRouter::Stats). Also captures the delta
  /// baseline: the first dump's delta is measured from this call.
  void SetStatsSource(std::function<ServeStatsSnapshot()> source);

  /// HealthMonitor notification. Freezes a black-box dump iff the
  /// transition worsens into Degraded or Unhealthy (to > from) — a
  /// recovery transition changes no evidence, so it only shows up in the
  /// health transition ring, not as a dump.
  void OnHealthTransition(const HealthTransition& transition,
                          const HealthSnapshot& health);

  /// The latest black-box dump artifact ("" when none has been frozen).
  std::string LatestDumpJson() const;

  FlightStatsSnapshot Stats() const;

 private:
  /// Sharded open-record table: spans hash to a shard by request id, so
  /// concurrent workers closing spans for different requests take
  /// different locks.
  struct OpenShard {
    mutable std::mutex mu;
    /// request id -> record; a nullptr value is a tombstone marking a
    /// recently discarded/evicted request, so its late spans (the exec
    /// span closes after the completion callback) are dropped instead of
    /// resurrecting a half-empty record.
    std::unordered_map<uint64_t, std::shared_ptr<FlightRecord>> records;
    std::deque<uint64_t> tombstones;  ///< FIFO of tombstoned ids
  };

  static constexpr size_t kOpenShards = 16;
  static constexpr size_t kTombstoneWindow = 128;
  /// How many completions after a retention the table keeps accepting late
  /// spans for it. Late spans (the root span closes right after the
  /// completion callback, on the same thread) arrive within one or two
  /// completions; the window is generous so they always land, yet short
  /// enough that the span hot path returns to its loads-only fast path.
  static constexpr uint64_t kLateSpanWindow = 64;
  /// Ring of the most recently retained request ids, read lock-free by the
  /// span tap while the late-span window is open: a span whose request is
  /// not in the ring bails with a handful of relaxed loads instead of
  /// paying a shard lock + table lookup. Sized past the number of
  /// retentions that can plausibly share one window in production (window
  /// 64 completions, retention ~1-in-SLO-breach).
  static constexpr size_t kRecentRetained = 8;

  FlightRecorder() = default;

  OpenShard& ShardFor(uint64_t request_id) {
    return shards_[request_id % kOpenShards];
  }
  /// Append-only tap body for spans closing inside the late-span window:
  /// lands on an existing table record, never creates one.
  void OnLateSpan(const TraceEvent& ev);
  /// Pulls the request's spans out of the TraceRecorder (buffers + ring)
  /// and merges them into `rec` under its shard lock, deduping by span id
  /// and honoring max_spans_per_record. Runs once per retention.
  void MergeTraceSpans(const std::shared_ptr<FlightRecord>& rec);
  /// Tracks `rec` as open for late spans and tombstones retentions older
  /// than kLateSpanWindow, so the table stays bounded and the tap's fast
  /// path re-closes.
  void AgeLateOpen(uint64_t request_id, uint64_t observed_at);
  /// Replaces the entry with a tombstone, bounding the tombstone FIFO
  /// (shard lock held).
  static void TombstoneLocked(OpenShard* sh, uint64_t request_id);
  /// Recomputes tap_armed_ from pending_open_/span_gate_. Called after
  /// every mutation of either; the recompute-then-recheck shape keeps the
  /// flag conservative under races (a disarm racing a concurrent retention
  /// re-arms), at worst costing a handful of best-effort late spans.
  void RearmTap();
  /// Inserts `rec` into the retained ring and evicts per the reservoir
  /// policy; evicted records are tombstoned out of the open table.
  void RetainRecord(const std::shared_ptr<FlightRecord>& rec);
  void BuildDump(const HealthTransition& transition,
                 const HealthSnapshot& health);

  // Hot-path knobs mirrored into atomics so OnSpan/OnComplete read them
  // without taking options_mu_ (Configure may race a draining pipeline).
  std::atomic<uint64_t> slo_threshold_ns_{50u * 1000u * 1000u};
  std::atomic<uint64_t> head_sample_every_{0};
  /// every-1 when head_sample_every is a power of two (the sampling test
  /// becomes a mask instead of a 64-bit division), ~0 otherwise.
  std::atomic<uint64_t> head_sample_mask_{~0ull};
  std::atomic<size_t> max_spans_per_record_{96};
  std::atomic<size_t> max_open_requests_{4096};
  std::atomic<size_t> capacity_{256};
  std::atomic<size_t> reserved_per_tenant_{8};

  mutable std::mutex options_mu_;
  Options options_;

  OpenShard shards_[kOpenShards];

  /// Span-tap gate block, isolated on its own cache line: MaybeRecordSpan
  /// reads both gates on every closed span, so they must not share a line
  /// with the per-completion counters below — a span reading a line the
  /// completion path just wrote would cache-miss on every span.
  ///
  /// pending_open_: records staged via OnSpan that have not completed yet.
  /// Zero in the production pipeline (which stages nothing per span) — the
  /// completion fast path skips the table entirely while this is zero.
  alignas(64) std::atomic<size_t> pending_open_{0};
  /// Nonzero while the late-span window is open: set to
  /// observed + kLateSpanWindow on each retention, CAS-closed back to 0 by
  /// the first completion at/past that mark. Written only around
  /// retentions (rare), so span-tap reads stay in shared cache state.
  std::atomic<uint64_t> span_gate_{0};
  /// Most recently retained request ids (round-robin), written only at
  /// retention. OnLateSpan consults this before touching any lock.
  std::atomic<uint64_t> recent_retained_[kRecentRetained] = {};
  std::atomic<size_t> recent_idx_{0};
  /// FIFO of (request_id, observed_ at retention) for open retained
  /// records, drained by AgeLateOpen. Lock order: late_mu_ -> shard mu.
  std::mutex late_mu_;
  std::deque<std::pair<uint64_t, uint64_t>> late_open_;

  mutable std::mutex ring_mu_;
  std::deque<std::shared_ptr<FlightRecord>> retained_;  ///< oldest first
  std::map<std::string, size_t> tenant_counts_;
  /// Atomic (not ring_mu_-guarded): the seq is stamped in OnComplete while
  /// the record's owning shard lock is held, before ring insertion.
  std::atomic<uint64_t> next_seq_{0};

  mutable std::mutex dump_mu_;
  std::function<ServeStatsSnapshot()> stats_source_;
  ServeStatsSnapshot last_dump_stats_;
  std::string latest_dump_json_;

  /// The one per-completion counter, on its own cache line so the span
  /// tap's gate reads never touch it. There is no discarded counter — the
  /// snapshot derives discards from observed minus the retained reasons —
  /// so an unremarkable completion pays exactly one atomic bump.
  alignas(64) std::atomic<uint64_t> observed_{0};
  std::atomic<uint64_t> retained_slo_{0};
  std::atomic<uint64_t> retained_shed_{0};
  std::atomic<uint64_t> retained_error_{0};
  std::atomic<uint64_t> retained_sample_{0};
  std::atomic<uint64_t> evicted_{0};
  std::atomic<uint64_t> open_overflow_{0};
  std::atomic<uint64_t> spans_captured_{0};
  std::atomic<uint64_t> spans_dropped_{0};
  std::atomic<uint64_t> dumps_{0};

  static std::atomic<bool> enabled_;
  /// 1 iff pending_open_ != 0 || span_gate_ != 0 (maintained by RearmTap).
  /// Static so the span tap reads it without the Global() accessor's
  /// magic-static guard — the tap is the only per-span cost when nothing
  /// was recently retained, and it must stay a load and a branch.
  static std::atomic<uint32_t> tap_armed_;
};

}  // namespace tsdm

#endif  // TSDM_OBS_FLIGHT_RECORDER_H_
