#ifndef TSDM_OBS_TRACE_H_
#define TSDM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tsdm {

/// One closed span: a named interval on one thread, optionally tagged with
/// a small integer argument (shard index, attempt number, sensor id, ...).
struct TraceEvent {
  static constexpr int64_t kNoArg = INT64_MIN;

  std::string name;
  uint64_t start_ns = 0;  ///< steady-clock ns since the recorder's origin
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  ///< recorder-assigned dense thread index
  int64_t arg = kNoArg;
};

/// Process-wide trace sink. Threads accumulate closed spans into private
/// thread-local buffers (no synchronization on the hot path); buffers are
/// batch-flushed into a bounded global ring under a mutex when they fill,
/// when a thread exits, or on Snapshot/FlushCurrentThread. The ring never
/// grows past its capacity — overflow drops the newest events and counts
/// them, so tracing a long run has bounded memory.
///
/// Recording is off by default. When disabled, a TraceSpan costs one
/// relaxed atomic load and a branch — cheap enough to leave the
/// instrumentation permanently compiled into serving hot paths (bench_stream
/// demonstrates the disabled overhead stays under 2% of a tick).
class TraceRecorder {
 public:
  /// The process-global recorder every TraceSpan reports to. Never
  /// destroyed, so thread-local buffer destructors may flush at any point
  /// of shutdown.
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and raises the ring capacity to
  /// `max_events`. Call while no traced spans are in flight.
  void SetCapacity(size_t max_events);

  /// Discards every recorded event (ring + the calling thread's buffer).
  /// Buffers still held by *other* live threads are invalidated via a
  /// generation bump: their stale events are discarded on their next flush
  /// instead of leaking into the new trace.
  void Clear();

  /// Flushes the calling thread's buffer into the ring.
  void FlushCurrentThread();

  /// Flushes the calling thread, then returns a copy of the ring sorted by
  /// (start_ns, tid). Events buffered by other still-live threads are not
  /// visible until those threads flush or exit.
  std::vector<TraceEvent> Snapshot();

  /// Events lost to ring overflow since the last Clear.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Chrome trace-event JSON ("catapult" format): load the returned string
  /// from chrome://tracing or https://ui.perfetto.dev. One complete ("X")
  /// event per span, ts/dur in microseconds.
  std::string ToChromeTraceJson();

  /// Called by ~TraceSpan; public so the thread-buffer machinery can reach
  /// it, not part of the user API.
  void Record(std::string name, uint64_t start_ns, uint64_t end_ns,
              int64_t arg);

  /// Monotonic ns since the process-wide trace origin.
  static uint64_t NowNs();

 private:
  friend struct ThreadTraceBuffer;

  void FlushBuffer(std::vector<TraceEvent>* events, uint64_t generation);

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 1 << 16;
  uint64_t generation_ = 0;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{0};

  static std::atomic<bool> enabled_;
};

/// RAII span: names the enclosing scope in the trace. Construction samples
/// the clock only when the recorder is enabled; destruction hands the
/// closed span to the calling thread's buffer. Spans on one thread nest
/// with scope structure, which the exported trace preserves exactly.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, int64_t arg = TraceEvent::kNoArg) {
    if (TraceRecorder::Enabled()) {
      name_ = name;
      arg_ = arg;
      active_ = true;
      start_ns_ = TraceRecorder::NowNs();
    }
  }

  ~TraceSpan() {
    if (active_) {
      TraceRecorder::Global().Record(std::move(name_), start_ns_,
                                     TraceRecorder::NowNs(), arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  uint64_t start_ns_ = 0;
  int64_t arg_ = TraceEvent::kNoArg;
  bool active_ = false;
};

}  // namespace tsdm

#endif  // TSDM_OBS_TRACE_H_
