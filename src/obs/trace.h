#ifndef TSDM_OBS_TRACE_H_
#define TSDM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsdm {

struct ThreadTraceBuffer;

/// Links a span into a per-request trace tree. A request acquires a
/// context at its root span (request_id identifies the request across
/// threads, parent_span_id the span a child should attach under); the
/// context travels with the request — through queues, batchers, and
/// worker hand-offs — so spans recorded on different threads at different
/// times still assemble into one tree per request.
///
/// Zero is the null value for both fields: request_id 0 marks a span that
/// belongs to no request, parent_span_id 0 marks a root.
struct TraceContext {
  uint64_t request_id = 0;
  uint64_t parent_span_id = 0;

  bool ForRequest() const { return request_id != 0; }
};

/// One closed span: a named interval on one thread, optionally tagged with
/// a small integer argument (shard index, attempt number, sensor id, ...)
/// and linked into a request tree via (request_id, span_id, parent_span_id).
struct TraceEvent {
  static constexpr int64_t kNoArg = INT64_MIN;

  std::string name;
  uint64_t start_ns = 0;  ///< steady-clock ns since the recorder's origin
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  ///< recorder-assigned dense thread index
  int64_t arg = kNoArg;
  uint64_t span_id = 0;         ///< process-unique (0 for unlinked spans)
  uint64_t parent_span_id = 0;  ///< 0 = root
  uint64_t request_id = 0;      ///< 0 = not part of a request
  /// Workload tenant the span's request belongs to ("" = unattributed).
  /// Exported as an "args" attribute so a Chrome-trace view can be
  /// filtered per tenant — the tracing arm of multi-tenant attribution.
  std::string tenant;
};

/// Total deterministic export order: (start_ns, tid, dur_ns desc — parents
/// before children, span_id). The span-id tiebreak makes the order unique,
/// so two exports of the same event set serialize identically.
bool ChromeTraceEventBefore(const TraceEvent& a, const TraceEvent& b);

/// Serializes one closed span as a Chrome trace-event object ("X" phase,
/// ts/dur in microseconds, request/span/parent linkage under "args"),
/// appending to *out. THE single source of event-formatting truth: the
/// TraceRecorder export and the flight recorder's /debug/traces export
/// both call this, which is what makes their events byte-identical.
void AppendChromeTraceEvent(const TraceEvent& ev, std::string* out);

/// Sorts `events` into export order and wraps them in the Chrome
/// trace-event envelope ("catapult" JSON; load from chrome://tracing or
/// https://ui.perfetto.dev).
std::string ChromeTraceJsonFromEvents(std::vector<TraceEvent> events);

/// Process-wide trace sink. Threads accumulate closed spans into private
/// thread-local buffers (one uncontended per-buffer mutex hold on the hot
/// path — contended only while a CollectRequest sweep is reading); buffers
/// are batch-flushed into a bounded global ring under a mutex when they fill,
/// when a thread exits, or on Snapshot/FlushCurrentThread. The ring never
/// grows past its capacity — overflow drops the newest events and counts
/// them (DroppedSpans, exported as `tsdm_trace_dropped_total`), so tracing
/// a long run has bounded memory. Size the ring to the run with
/// SetCapacity before enabling.
///
/// Recording is off by default. When disabled, a TraceSpan costs one
/// relaxed atomic load and a branch — cheap enough to leave the
/// instrumentation permanently compiled into serving hot paths (bench_stream
/// demonstrates the disabled overhead stays under 2% of a tick).
class TraceRecorder {
 public:
  /// The process-global recorder every TraceSpan reports to. Never
  /// destroyed, so thread-local buffer destructors may flush at any point
  /// of shutdown.
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all recorded events and raises the ring capacity to
  /// `max_events`. Call while no traced spans are in flight.
  void SetCapacity(size_t max_events);

  /// Discards every recorded event (ring + the calling thread's buffer).
  /// Buffers still held by *other* live threads are invalidated via a
  /// generation bump: their stale events are discarded on their next flush
  /// instead of leaking into the new trace.
  void Clear();

  /// Flushes the calling thread's buffer into the ring.
  void FlushCurrentThread();

  /// Flushes the calling thread, then returns a copy of the ring sorted by
  /// (start_ns, tid). Events buffered by other still-live threads are not
  /// visible until those threads flush or exit.
  std::vector<TraceEvent> Snapshot();

  /// Copies every buffered event linked to `request_id` — from *all* live
  /// threads' buffers (under their per-buffer locks) and from the global
  /// ring — without flushing anything. This is the flight recorder's
  /// retention sweep: it runs once per *retained* request, off the span
  /// hot path, and sees spans other threads have not flushed yet. An event
  /// flushed mid-sweep can be returned twice (buffer copy + ring copy);
  /// callers dedup by span id.
  ///
  /// `min_start_ns` bounds the ring scan: batches flushed before it cannot
  /// contain a span that *started* at/after it (spans close before they
  /// flush), so the scan skips straight to the first batch flushed at or
  /// after `min_start_ns`. Pass the request's start time (minus slack);
  /// 0 scans the whole ring.
  std::vector<TraceEvent> CollectRequest(uint64_t request_id,
                                         uint64_t min_start_ns = 0);

  /// Events lost to ring overflow since the last Clear.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Self-metric alias for the Prometheus export (`tsdm_trace_dropped_total`):
  /// a nonzero value means the ring (SetCapacity) is undersized for the run
  /// and the trace is incomplete.
  uint64_t DroppedSpans() const { return dropped(); }

  /// Allocates a process-unique span id (never 0). Used by TraceSpan and by
  /// retrospective RecordSpan calls.
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ("catapult" format): load the returned string
  /// from chrome://tracing or https://ui.perfetto.dev. One complete ("X")
  /// event per span, ts/dur in microseconds; request/span/parent ids are
  /// emitted under "args" so the per-request tree survives the export.
  std::string ToChromeTraceJson();

  /// Called by ~TraceSpan; public so the thread-buffer machinery can reach
  /// it, not part of the user API.
  void Record(std::string name, uint64_t start_ns, uint64_t end_ns,
              int64_t arg, uint64_t span_id = 0, uint64_t parent_span_id = 0,
              uint64_t request_id = 0, std::string tenant = {});

  /// Records a retrospective span — an interval that already elapsed, e.g.
  /// the queue wait between a request's admission and its dequeue, where no
  /// RAII scope existed. Returns the allocated span id (0 when recording is
  /// disabled, in which case nothing is recorded). `tenant` attaches the
  /// multi-tenant attribute ("" = none).
  uint64_t RecordSpan(std::string_view name, uint64_t start_ns,
                      uint64_t end_ns, const TraceContext& ctx,
                      int64_t arg = TraceEvent::kNoArg,
                      std::string_view tenant = {});

  /// Monotonic ns since the process-wide trace origin.
  static uint64_t NowNs();

 private:
  friend struct ThreadTraceBuffer;

  void FlushBuffer(std::vector<TraceEvent>* events, uint64_t generation);
  void RegisterBuffer(ThreadTraceBuffer* buffer);
  void DeregisterBuffer(ThreadTraceBuffer* buffer);

  /// Live thread buffers, so CollectRequest can sweep events other threads
  /// have not flushed. Lock order: registry_mu_ -> buffer mu; and a buffer
  /// mu may be held when taking mu_ (flush) — never the reverse.
  std::mutex registry_mu_;
  std::vector<ThreadTraceBuffer*> buffers_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  /// Flush watermarks: (ring size after the flush, flush time). Lets
  /// CollectRequest binary-search for the first batch that could contain a
  /// span starting at/after a given time instead of scanning the ring.
  std::vector<std::pair<size_t, uint64_t>> ring_batches_;
  size_t capacity_ = 1 << 16;
  uint64_t generation_ = 0;
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint32_t> next_tid_{0};
  std::atomic<uint64_t> next_span_id_{1};

  static std::atomic<bool> enabled_;
};

/// RAII span: names the enclosing scope in the trace. Construction samples
/// the clock only when the recorder is enabled; destruction hands the
/// closed span to the calling thread's buffer. Spans on one thread nest
/// with scope structure, which the exported trace preserves exactly; spans
/// constructed with a TraceContext additionally link into that request's
/// tree, and ChildContext() extends the tree across threads.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, int64_t arg = TraceEvent::kNoArg)
      : TraceSpan(name, TraceContext{}, arg) {}

  TraceSpan(std::string_view name, const TraceContext& ctx,
            int64_t arg = TraceEvent::kNoArg) {
    if (TraceRecorder::Enabled()) {
      name_ = name;
      arg_ = arg;
      active_ = true;
      request_id_ = ctx.request_id;
      parent_span_id_ = ctx.parent_span_id;
      span_id_ = TraceRecorder::Global().NextSpanId();
      start_ns_ = TraceRecorder::NowNs();
    }
  }

  ~TraceSpan() {
    if (active_) {
      TraceRecorder::Global().Record(std::move(name_), start_ns_,
                                     TraceRecorder::NowNs(), arg_, span_id_,
                                     parent_span_id_, request_id_,
                                     std::move(tenant_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches the multi-tenant attribute to this span (no-op while the
  /// recorder is disabled). Call once, before the scope closes.
  void SetTenant(std::string_view tenant) {
    if (active_) tenant_ = tenant;
  }

  /// Context for spans that should hang under this one (same request, this
  /// span as parent). Null when recording was disabled at construction —
  /// children then record nothing either, so the tree stays consistent.
  TraceContext ChildContext() const {
    return TraceContext{request_id_, span_id_};
  }

 private:
  std::string name_;
  std::string tenant_;
  uint64_t start_ns_ = 0;
  int64_t arg_ = TraceEvent::kNoArg;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t request_id_ = 0;
  bool active_ = false;
};

}  // namespace tsdm

#endif  // TSDM_OBS_TRACE_H_
