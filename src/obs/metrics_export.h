#ifndef TSDM_OBS_METRICS_EXPORT_H_
#define TSDM_OBS_METRICS_EXPORT_H_

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/histogram_ext.h"
#include "src/core/executor.h"
#include "src/ingest/ingest_service.h"
#include "src/net/net_stats.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/serve/serve_stats.h"
#include "src/shard/shard_stats.h"
#include "src/stream/stream_pipeline.h"

namespace tsdm {

/// Escapes `s` for embedding inside a JSON (or Prometheus label) string
/// literal: backslash, double quote, and control characters.
std::string JsonEscape(const std::string& s);

/// Deterministic number formatting shared by every exporter ("%.9g");
/// NaN and infinities are mapped to 0 so no serialized document ever
/// carries a non-numeric token.
std::string JsonNumber(double v);

/// Serializes the metrics the executor and stream layers already collect
/// (StageMetricsRegistry / LatencyHistogram) into the two formats a
/// monitoring stack consumes: a schema-versioned JSON document and the
/// Prometheus text exposition format (counters plus a latency summary with
/// p50/p95/p99). This is the "self-monitoring" surface of the Fig. 1 loop:
/// the same numbers that drive autoscaling decisions are exported for
/// humans and scrapers without touching the hot paths that produce them.
class MetricsExporter {
 public:
  static constexpr int kSchemaVersion = 1;

  /// {"schema_version":1,"stages":{"<name>":{"invocations":..,"failures":..,
  ///  "retries":..,"latency":{...}}}}
  static std::string RegistryToJson(const StageMetricsRegistry& registry);

  /// One counter family per StageMetrics field plus a latency summary, all
  /// labeled {stage="<name>"} under `prefix` (default "tsdm").
  static std::string RegistryToPrometheus(const StageMetricsRegistry& registry,
                                          const std::string& prefix = "tsdm");

  /// Registry export extended with batch-level gauges: shard totals,
  /// quarantine count, attempts_total (retry pressure), threads, wall time.
  static std::string BatchToJson(const BatchReport& report);
  static std::string BatchToPrometheus(const BatchReport& report,
                                       const std::string& prefix = "tsdm");

  /// Registry export extended with the stream path's tick counter and
  /// end-to-end tick latency summary.
  static std::string StreamToJson(const StreamPipeline& pipeline);
  static std::string StreamToPrometheus(const StreamPipeline& pipeline,
                                        const std::string& prefix = "tsdm");

  /// Serving-layer snapshot: admission/shedding/batching counters, the
  /// sub-path cache's hit/miss/eviction counts, worker gauge, the request
  /// lifecycle latency summaries, and the critical-path stage attribution
  /// (`<prefix>_serve_stage_latency_seconds{stage="queue|batch|cache|exec"}`
  /// in Prometheus, "stage_latency" in JSON).
  static std::string ServeToJson(const ServeStatsSnapshot& snapshot);
  static std::string ServeToPrometheus(const ServeStatsSnapshot& snapshot,
                                       const std::string& prefix = "tsdm");

  /// HealthMonitor picture: overall state (gauge, 0=healthy 1=degraded
  /// 2=unhealthy), per-metric verdicts with anomaly scores, SLO burn rate,
  /// and the top-offender stage attribution.
  static std::string HealthToJson(const HealthSnapshot& snapshot);
  static std::string HealthToPrometheus(const HealthSnapshot& snapshot,
                                        const std::string& prefix = "tsdm");

  /// Durable-ingestion snapshot: parser accept/reject counters by reason
  /// (`<prefix>_ingest_frames_rejected_total{reason=...}`), sequence gaps
  /// and resync bytes, WAL append/rotation/sync counters, and the last
  /// recovery's replay figures (ticks replayed, torn records skipped,
  /// replay seconds).
  static std::string IngestToJson(const IngestStatsSnapshot& snapshot);
  static std::string IngestToPrometheus(const IngestStatsSnapshot& snapshot,
                                        const std::string& prefix = "tsdm");

  /// TraceRecorder self-metrics: `<prefix>_trace_dropped_total` counts
  /// spans lost to ring overflow — nonzero means the exported trace is
  /// incomplete and SetCapacity should be raised.
  static std::string TraceToPrometheus(const TraceRecorder& recorder,
                                       const std::string& prefix = "tsdm");
  /// JSON twin of TraceToPrometheus, for the "trace" source's ExportJson
  /// entry: {"schema_version":1,"trace":{"enabled":..,"dropped":..}}.
  static std::string TraceToJson(const TraceRecorder& recorder);

  /// Flight-recorder self-metrics (`tsdm_flight_*`): completions observed,
  /// retained by reason (`{reason="slo_breach|shed|error|head_sample"}`),
  /// discarded/evicted counts, span capture/drop counters, open-table and
  /// retained-ring gauges, and black-box dumps frozen.
  static std::string FlightToJson(const FlightStatsSnapshot& snapshot);
  static std::string FlightToPrometheus(const FlightStatsSnapshot& snapshot,
                                        const std::string& prefix = "tsdm");

  /// Socket front-door snapshot: connection gauges, the typed shed
  /// counters (`<prefix>_net_sheds_total{reason=...}` — each shed happened
  /// BEFORE payload deserialization), frame accept/reject/resync counters
  /// mirroring the ingest parser's families, per-endpoint HTTP counters,
  /// byte counters by direction, and the wire-level request latency
  /// summary.
  static std::string NetToJson(const NetStatsSnapshot& snapshot);
  static std::string NetToPrometheus(const NetStatsSnapshot& snapshot,
                                     const std::string& prefix = "tsdm");

  /// Sharded-fleet snapshot: routing counters (`<prefix>_shard_routed_total
  /// {mode="forward|scatter"}`, probe/merge/replication/partial-error
  /// counters), the map generation and shard-count gauges, per-shard
  /// routing attribution (`{shard="<i>"}` labels), and the fleet-aggregate
  /// serve families (the per-shard ServeStatsSnapshots collapsed through
  /// ShardStatsSnapshot::Aggregate, emitted via ServeTo*).
  static std::string ShardToJson(const ShardStatsSnapshot& snapshot);
  static std::string ShardToPrometheus(const ShardStatsSnapshot& snapshot,
                                       const std::string& prefix = "tsdm");

  /// {"count":..,"mean_s":..,"p50_s":..,"p95_s":..,"p99_s":..,"min_s":..,
  ///  "max_s":..} — NaN-free for any histogram state, including empty.
  static std::string LatencyToJson(const LatencyHistogram& h);

  // --- Registration-based aggregate export ------------------------------
  //
  // Each live subsystem registers one snapshot closure pair at startup
  // (and unregisters at shutdown); ExportPrometheus/ExportJson then serve
  // the whole process as ONE document. This is what GET /metrics returns:
  // the concatenation, in registration order, of every source's existing
  // per-subsystem export — the per-subsystem methods above stay the
  // single source of formatting truth and become the closures' bodies.

  /// Produces this source's Prometheus text under the given family prefix.
  using PrometheusSourceFn = std::function<std::string(const std::string&)>;
  /// Produces this source's JSON document (a complete JSON object).
  using JsonSourceFn = std::function<std::string()>;

  /// Registers (or replaces, by name) a metrics source. Closures are
  /// invoked on the exporting thread and must be internally synchronized,
  /// like the Stats()/snapshot methods they wrap.
  static void RegisterSource(const std::string& name,
                             PrometheusSourceFn prometheus, JsonSourceFn json);
  /// Removes a source; unknown names are a no-op. Call before the
  /// underlying subsystem is destroyed — closures dangle otherwise.
  static void UnregisterSource(const std::string& name);

  /// Concatenates every registered source's Prometheus text in
  /// registration order, separated by `# SOURCE <name>` comment lines.
  static std::string ExportPrometheus(const std::string& prefix = "tsdm");

  /// {"schema_version":1,"sources":{"<name>":<source json>,...}} in
  /// registration order.
  static std::string ExportJson();
};

}  // namespace tsdm

#endif  // TSDM_OBS_METRICS_EXPORT_H_
