#ifndef TSDM_OBS_HEALTH_H_
#define TSDM_OBS_HEALTH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/serve_stats.h"
#include "src/stream/stream_buffer.h"
#include "src/stream/stream_pipeline.h"
#include "src/stream/stream_stage.h"

namespace tsdm {

/// Overall verdict of the self-monitor, ordered by severity.
enum class HealthState {
  kHealthy = 0,
  kDegraded = 1,   ///< at least one watched metric is anomalous
  kUnhealthy = 2,  ///< multiple metrics anomalous, or the SLO burn is severe
};

const char* HealthStateName(HealthState state);

/// One state change of the self-monitor: when it happened (sampling round
/// + trace-origin clock), what it went from/to, and the evidence of the
/// moment — the stage whose time grew the most and the SLO burn rate. A
/// bounded ring of these rides in every HealthSnapshot, so /health and the
/// flight recorder's black-box dump can show *when* a degradation started,
/// not just the current state.
struct HealthTransition {
  uint64_t sample = 0;  ///< sampling round the transition was judged on
  uint64_t at_ns = 0;   ///< TraceRecorder::NowNs at the transition
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::string top_offender;  ///< stage attribution at the transition
  double burn_rate = 0.0;    ///< SLO burn at the transition
};

/// Latest judgment of one watched operational metric.
struct MetricVerdict {
  std::string name;
  double value = 0.0;      ///< latest sampled value
  double score = 0.0;      ///< prequential anomaly score of that sample
  bool anomalous = false;  ///< latest sample flagged (post-warmup)
  uint64_t anomalies = 0;  ///< flagged samples since Start (post-warmup)
};

/// One coherent picture of the serving layer's health, as judged by the
/// repo's own streaming analytics.
struct HealthSnapshot {
  HealthState state = HealthState::kHealthy;
  uint64_t samples = 0;  ///< monitor sampling rounds so far
  std::vector<MetricVerdict> metrics;

  // SLO tracking over the most recent sampling interval.
  double slo_objective_seconds = 0.0;  ///< the latency objective watched
  double violation_fraction = 0.0;  ///< fraction of interval requests above it
  double burn_rate = 0.0;  ///< violation_fraction / error budget (1 = on budget)

  // Critical-path attribution: the stage whose total time grew the most
  // over the last interval — where a degradation is coming from.
  std::string top_offender;
  double top_offender_share = 0.0;  ///< its share of interval stage time

  uint64_t anomalies_total = 0;  ///< flagged samples across all metrics

  /// The most recent state transitions, oldest first, bounded by
  /// Options::transition_history. transitions_total keeps counting past
  /// the window, so "has anything flapped since?" survives the trim.
  std::vector<HealthTransition> transitions;
  uint64_t transitions_total = 0;
};

/// Watches a QueryServer (or anything that can produce ServeStatsSnapshots)
/// with tsdm's own time-series machinery — the observability layer eating
/// the analytics it serves. Every sampling round the monitor:
///
///   1. pulls a ServeStatsSnapshot from the injected sampler,
///   2. derives one value per watched metric (queue depth, arrival rate,
///      shed rate, cache hit rate, mean request latency — rates and means
///      are interval deltas, so each sample is one observation of "how is
///      the server doing *right now*"),
///   3. pushes each value into a per-metric StreamBuffer ring and runs the
///      ticks through a StreamPipeline with an OnlineAnomalyStage
///      (EW-MAD by default), exactly as sensor data would flow,
///   4. tracks the p95 latency SLO's burn rate from interval deltas of the
///      e2e histogram's CountAbove(objective), and attributes interval
///      stage time to the slowest component via the stage histograms.
///
/// Anomalous metrics and the burn rate combine into a HealthState:
/// Degraded when any watched metric trips (or the burn exceeds budget),
/// Unhealthy when several trip at once (or the burn is a multiple of
/// budget). The first `warmup_samples` rounds never alarm — the detector
/// is still learning what normal looks like.
///
/// Thread-safety: Start spawns one background sampling thread; Snapshot is
/// safe from any thread. SampleOnce is for deterministic tests and single-
/// threaded embedding (never call it while the background thread runs).
class HealthMonitor {
 public:
  struct Options {
    double sample_interval_seconds = 0.05;
    size_t ring_capacity = 256;  ///< retained samples per watched metric
    /// Anomaly detector: EW-MAD resists the level shifts a server's load
    /// curve goes through; kZScore is available for stationary workloads.
    OnlineAnomalyStage::Mode mode = OnlineAnomalyStage::Mode::kMad;
    double anomaly_threshold = 6.0;
    double ew_lambda = 0.05;
    /// Samples before any alarm may fire (detector warmup).
    uint64_t warmup_samples = 8;

    // SLO: at most `slo_error_budget` of requests may exceed the latency
    // objective; burn rate 1.0 means exactly spending that budget.
    double slo_p95_objective_seconds = 0.05;
    double slo_error_budget = 0.05;
    double burn_degraded = 1.0;   ///< burn >= this -> at least Degraded
    double burn_unhealthy = 2.0;  ///< burn >= this -> Unhealthy
    /// Anomalous-metric counts tripping each state.
    int degraded_anomalous_metrics = 1;
    int unhealthy_anomalous_metrics = 2;

    /// Transitions kept in HealthSnapshot::transitions (oldest trimmed).
    size_t transition_history = 16;
    /// Called (unlocked, on the sampling thread) after every state
    /// transition, with the transition and the snapshot that produced it.
    /// The flight recorder is notified regardless — this hook is for
    /// embedders (alerting, tests).
    std::function<void(const HealthTransition&, const HealthSnapshot&)>
        on_transition;
  };

  using Sampler = std::function<ServeStatsSnapshot()>;

  /// `sampler` is called once per round (from the background thread after
  /// Start) and must be safe to call concurrently with the serving path —
  /// QueryServer::Stats is. The monitor is constructed stopped.
  explicit HealthMonitor(Sampler sampler)
      : HealthMonitor(std::move(sampler), Options()) {}
  HealthMonitor(Sampler sampler, Options options);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Spawns the sampling thread. FailedPrecondition if already running.
  Status Start();

  /// Joins the sampling thread. Idempotent; the destructor calls it.
  void Stop();

  /// Runs one sampling round synchronously (test / manual-drive entry).
  void SampleOnce();

  /// Copies the latest health picture; safe from any thread.
  HealthSnapshot Snapshot() const;

  const Options& options() const { return options_; }

  /// The watched metrics, in verdict order.
  static constexpr size_t kNumMetrics = 5;
  static const char* MetricName(size_t i);

 private:
  void RunLoop();
  HealthState Judge(int hot_metrics, double burn) const;

  Options options_;
  Sampler sampler_;

  // Sampling state (touched only by the sampling thread / SampleOnce).
  StreamBuffer buffer_;
  StreamPipeline pipeline_;
  uint64_t samples_ = 0;
  bool have_prev_ = false;
  ServeStatsSnapshot prev_;
  double last_hit_rate_ = 0.0;
  double last_latency_mean_ = 0.0;

  // Published picture, guarded for concurrent Snapshot readers.
  mutable std::mutex mu_;
  HealthSnapshot snapshot_;

  // Background thread lifecycle.
  std::mutex run_mu_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
};

}  // namespace tsdm

#endif  // TSDM_OBS_HEALTH_H_
