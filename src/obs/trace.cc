#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace tsdm {

std::atomic<bool> TraceRecorder::enabled_{false};

namespace {

/// How many closed spans a thread accumulates before paying for the ring
/// mutex. Amortizes lock traffic to one acquisition per batch.
constexpr size_t kFlushBatch = 256;

std::chrono::steady_clock::time_point TraceOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

/// Per-thread span buffer; flushes to the global ring when full and from
/// its destructor at thread exit, so joined threads never lose events.
struct ThreadTraceBuffer {
  std::vector<TraceEvent> events;
  uint32_t tid;
  uint64_t generation = 0;

  ThreadTraceBuffer()
      : tid(TraceRecorder::Global().next_tid_.fetch_add(
            1, std::memory_order_relaxed)) {
    events.reserve(kFlushBatch);
  }

  ~ThreadTraceBuffer() {
    if (!events.empty()) {
      TraceRecorder::Global().FlushBuffer(&events, generation);
    }
  }
};

namespace {

ThreadTraceBuffer& CurrentBuffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Deliberately leaked: thread-local buffers flush from thread-exit
  // destructors, which may run after static destruction would have torn a
  // normal singleton down.
  static TraceRecorder* global = new TraceRecorder();
  return *global;
}

uint64_t TraceRecorder::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceOrigin())
          .count());
}

void TraceRecorder::SetCapacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
  ring_.clear();
  ring_.reserve(capacity_);
  ++generation_;
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  CurrentBuffer().events.clear();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ++generation_;
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::Record(std::string name, uint64_t start_ns,
                           uint64_t end_ns, int64_t arg) {
  ThreadTraceBuffer& buffer = CurrentBuffer();
  if (buffer.events.empty()) {
    // Tag the batch with the generation at its first event so a Clear
    // issued on another thread discards it wholesale on flush.
    std::lock_guard<std::mutex> lock(mu_);
    buffer.generation = generation_;
  }
  TraceEvent ev;
  ev.name = std::move(name);
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = buffer.tid;
  ev.arg = arg;
  buffer.events.push_back(std::move(ev));
  if (buffer.events.size() >= kFlushBatch) {
    FlushBuffer(&buffer.events, buffer.generation);
  }
}

void TraceRecorder::FlushBuffer(std::vector<TraceEvent>* events,
                                uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation == generation_) {
    for (auto& ev : *events) {
      if (ring_.size() < capacity_) {
        ring_.push_back(std::move(ev));
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  events->clear();
}

void TraceRecorder::FlushCurrentThread() {
  ThreadTraceBuffer& buffer = CurrentBuffer();
  if (!buffer.events.empty()) {
    FlushBuffer(&buffer.events, buffer.generation);
  }
}

std::vector<TraceEvent> TraceRecorder::Snapshot() {
  FlushCurrentThread();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.dur_ns > b.dur_ns;  // parents before children
            });
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() {
  std::vector<TraceEvent> events = Snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    for (char c : ev.name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    // ts/dur are microseconds with ns precision kept in the fraction.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"tsdm\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f",
                  ev.tid, static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0);
    out += buf;
    if (ev.arg != TraceEvent::kNoArg) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"arg\":%lld}",
                    static_cast<long long>(ev.arg));
      out += buf;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace tsdm
