#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "src/obs/flight_recorder.h"

namespace tsdm {

std::atomic<bool> TraceRecorder::enabled_{false};

namespace {

/// How many closed spans a thread accumulates before paying for the ring
/// mutex. Amortizes lock traffic to one acquisition per batch.
constexpr size_t kFlushBatch = 256;

std::chrono::steady_clock::time_point TraceOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

}  // namespace

/// Per-thread span buffer; flushes to the global ring when full and from
/// its destructor at thread exit, so joined threads never lose events.
/// Registered with the recorder so CollectRequest can sweep unflushed
/// events cross-thread; `mu` guards `events`/`generation` against that
/// sweep (uncontended for the owning thread otherwise).
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid;
  uint64_t generation = 0;

  ThreadTraceBuffer()
      : tid(TraceRecorder::Global().next_tid_.fetch_add(
            1, std::memory_order_relaxed)) {
    events.reserve(kFlushBatch);
    TraceRecorder::Global().RegisterBuffer(this);
  }

  ~ThreadTraceBuffer() {
    // Deregister first: once off the list, no sweep can take `mu` again.
    TraceRecorder::Global().DeregisterBuffer(this);
    std::vector<TraceEvent> rest;
    uint64_t gen;
    {
      std::lock_guard<std::mutex> lock(mu);
      rest.swap(events);
      gen = generation;
    }
    if (!rest.empty()) {
      TraceRecorder::Global().FlushBuffer(&rest, gen);
    }
  }
};

namespace {

ThreadTraceBuffer& CurrentBuffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Deliberately leaked: thread-local buffers flush from thread-exit
  // destructors, which may run after static destruction would have torn a
  // normal singleton down.
  static TraceRecorder* global = new TraceRecorder();
  return *global;
}

uint64_t TraceRecorder::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceOrigin())
          .count());
}

void TraceRecorder::SetCapacity(size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
  ring_.clear();
  ring_batches_.clear();
  ring_.reserve(capacity_);
  ++generation_;
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  {
    ThreadTraceBuffer& buffer = CurrentBuffer();
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.events.clear();
  }
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  ring_batches_.clear();
  ++generation_;
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::RegisterBuffer(ThreadTraceBuffer* buffer) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.push_back(buffer);
}

void TraceRecorder::DeregisterBuffer(ThreadTraceBuffer* buffer) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buffer),
                 buffers_.end());
}

void TraceRecorder::Record(std::string name, uint64_t start_ns,
                           uint64_t end_ns, int64_t arg, uint64_t span_id,
                           uint64_t parent_span_id, uint64_t request_id,
                           std::string tenant) {
  ThreadTraceBuffer& buffer = CurrentBuffer();
  TraceEvent ev;
  ev.name = std::move(name);
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = buffer.tid;
  ev.arg = arg;
  ev.span_id = span_id;
  ev.parent_span_id = parent_span_id;
  ev.request_id = request_id;
  ev.tenant = std::move(tenant);
  // Flight-recorder tap, outside every trace lock (the recorder's late-
  // span path takes its own locks, and its retention sweep takes ours).
  FlightRecorder::MaybeRecordSpan(ev);
  std::vector<TraceEvent> full;
  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    if (buffer.events.empty()) {
      // Tag the batch with the generation at its first event so a Clear
      // issued on another thread discards it wholesale on flush.
      std::lock_guard<std::mutex> glock(mu_);
      buffer.generation = generation_;
    }
    gen = buffer.generation;
    buffer.events.push_back(std::move(ev));
    if (buffer.events.size() >= kFlushBatch) full.swap(buffer.events);
  }
  if (!full.empty()) FlushBuffer(&full, gen);
}

uint64_t TraceRecorder::RecordSpan(std::string_view name, uint64_t start_ns,
                                   uint64_t end_ns, const TraceContext& ctx,
                                   int64_t arg, std::string_view tenant) {
  if (!Enabled()) return 0;
  uint64_t span_id = NextSpanId();
  Record(std::string(name), start_ns, end_ns, arg, span_id,
         ctx.parent_span_id, ctx.request_id, std::string(tenant));
  return span_id;
}

void TraceRecorder::FlushBuffer(std::vector<TraceEvent>* events,
                                uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation == generation_) {
    const size_t before = ring_.size();
    for (auto& ev : *events) {
      if (ring_.size() < capacity_) {
        ring_.push_back(std::move(ev));
      } else {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (ring_.size() > before) {
      ring_batches_.emplace_back(ring_.size(), NowNs());
    }
  }
  events->clear();
}

void TraceRecorder::FlushCurrentThread() {
  ThreadTraceBuffer& buffer = CurrentBuffer();
  std::vector<TraceEvent> pending;
  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    pending.swap(buffer.events);
    gen = buffer.generation;
  }
  if (!pending.empty()) {
    FlushBuffer(&pending, gen);
  }
}

std::vector<TraceEvent> TraceRecorder::CollectRequest(uint64_t request_id,
                                                      uint64_t min_start_ns) {
  std::vector<TraceEvent> out;
  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = generation_;
  }
  // Buffers before the ring: an event flushed between the two scans is
  // found in the ring; the reverse order could miss it entirely. The cost
  // of the chosen order is an occasional duplicate, which callers dedup.
  {
    std::lock_guard<std::mutex> rlock(registry_mu_);
    for (ThreadTraceBuffer* buffer : buffers_) {
      std::lock_guard<std::mutex> block(buffer->mu);
      if (!buffer->events.empty() && buffer->generation != gen) continue;
      for (const TraceEvent& ev : buffer->events) {
        if (ev.request_id == request_id) out.push_back(ev);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A batch flushed before min_start_ns closed all its events before
    // min_start_ns, so none of them *started* at/after it: skip to the
    // first batch that could match instead of scanning the whole ring.
    size_t begin = 0;
    if (min_start_ns > 0) {
      size_t lo = 0, hi = ring_batches_.size();
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (ring_batches_[mid].second < min_start_ns) {
          begin = ring_batches_[mid].first;
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
    }
    for (size_t i = begin; i < ring_.size(); ++i) {
      if (ring_[i].request_id == request_id) out.push_back(ring_[i]);
    }
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() {
  FlushCurrentThread();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = ring_;
  }
  std::sort(out.begin(), out.end(), ChromeTraceEventBefore);
  return out;
}

bool ChromeTraceEventBefore(const TraceEvent& a, const TraceEvent& b) {
  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;  // parents first
  return a.span_id < b.span_id;
}

void AppendChromeTraceEvent(const TraceEvent& ev, std::string* out) {
  char buf[128];
  *out += "{\"name\":\"";
  for (char c : ev.name) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  // ts/dur are microseconds with ns precision kept in the fraction.
  std::snprintf(buf, sizeof(buf),
                "\",\"cat\":\"tsdm\",\"ph\":\"X\",\"pid\":0,\"tid\":%u,"
                "\"ts\":%.3f,\"dur\":%.3f",
                ev.tid, static_cast<double>(ev.start_ns) / 1000.0,
                static_cast<double>(ev.dur_ns) / 1000.0);
  *out += buf;
  // args carries the integer tag plus the request-tree linkage; Chrome's
  // viewer shows them in the span detail pane and downstream tooling can
  // rebuild the per-request tree from (req, span, parent).
  bool has_args = ev.arg != TraceEvent::kNoArg || ev.span_id != 0 ||
                  !ev.tenant.empty();
  if (has_args) {
    *out += ",\"args\":{";
    bool first_arg = true;
    if (ev.arg != TraceEvent::kNoArg) {
      std::snprintf(buf, sizeof(buf), "\"arg\":%lld",
                    static_cast<long long>(ev.arg));
      *out += buf;
      first_arg = false;
    }
    if (!ev.tenant.empty()) {
      if (!first_arg) *out += ",";
      *out += "\"tenant\":\"";
      for (char c : ev.tenant) {
        if (c == '"' || c == '\\') *out += '\\';
        *out += c;
      }
      *out += "\"";
      first_arg = false;
    }
    if (ev.span_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    "%s\"req\":%llu,\"span\":%llu,\"parent\":%llu",
                    first_arg ? "" : ",",
                    static_cast<unsigned long long>(ev.request_id),
                    static_cast<unsigned long long>(ev.span_id),
                    static_cast<unsigned long long>(ev.parent_span_id));
      *out += buf;
    }
    *out += "}";
  }
  *out += "}";
}

std::string ChromeTraceJsonFromEvents(std::vector<TraceEvent> events) {
  std::sort(events.begin(), events.end(), ChromeTraceEventBefore);
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    AppendChromeTraceEvent(ev, &out);
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::ToChromeTraceJson() {
  return ChromeTraceJsonFromEvents(Snapshot());
}

}  // namespace tsdm
