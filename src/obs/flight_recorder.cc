#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/obs/metrics_export.h"

namespace tsdm {

std::atomic<bool> FlightRecorder::enabled_{false};
std::atomic<uint32_t> FlightRecorder::tap_armed_{0};

namespace {

/// The status codes the serve tier sheds with: queue/quota full or
/// displaced (ResourceExhausted), closed/draining (FailedPrecondition),
/// shard down / partial scatter (Unavailable). Same partition the shard
/// router's transport-failure rule uses.
bool IsShedCode(StatusCode code) {
  return code == StatusCode::kResourceExhausted ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kUnavailable;
}

std::string U64(uint64_t v) { return std::to_string(v); }

/// Fills a record's completion-side fields. For table-resident records the
/// caller holds the owning shard lock (the span vector may be appending
/// concurrently); standalone records have no concurrent writers.
void FillOutcome(FlightRecord* rec, uint64_t seq, int shard,
                 const RouteAnswer& answer, FlightOutcome outcome,
                 FlightRetainReason reason, double e2e_seconds) {
  rec->seq = seq;
  rec->tenant = answer.tenant_id.empty() ? "default" : answer.tenant_id;
  rec->shard = shard;
  rec->outcome = outcome;
  rec->reason = reason;
  rec->status_code = answer.status.code();
  rec->status_message = answer.status.message();
  rec->e2e_seconds = e2e_seconds;
  rec->stages = answer.stages;
  rec->client_request_id = answer.client_request_id;
  rec->completed_ns = TraceRecorder::NowNs();
  rec->complete = true;
}

void AppendRecordJson(const FlightRecord& rec, std::string* out) {
  *out += "{\"request_id\":" + U64(rec.request_id);
  *out += ",\"seq\":" + U64(rec.seq);
  *out += ",\"tenant\":\"" + JsonEscape(rec.tenant) + "\"";
  *out += ",\"shard\":" + std::to_string(rec.shard);
  *out += ",\"outcome\":\"";
  *out += FlightOutcomeName(rec.outcome);
  *out += "\",\"reason\":\"";
  *out += FlightRetainReasonName(rec.reason);
  *out += "\",\"status_code\":" +
          std::to_string(static_cast<int>(rec.status_code));
  *out += ",\"status_message\":\"" + JsonEscape(rec.status_message) + "\"";
  *out += ",\"e2e_seconds\":" + JsonNumber(rec.e2e_seconds);
  *out += ",\"stages\":{\"queue_ns\":" + U64(rec.stages.queue_ns) +
          ",\"batch_ns\":" + U64(rec.stages.batch_ns) +
          ",\"cache_ns\":" + U64(rec.stages.cache_ns) +
          ",\"exec_ns\":" + U64(rec.stages.exec_ns) + "}";
  *out += ",\"client_request_id\":" + U64(rec.client_request_id);
  *out += ",\"completed_ns\":" + U64(rec.completed_ns);
  *out += ",\"spans_dropped\":" + U64(rec.spans_dropped);
  *out += ",\"spans\":[";
  std::vector<TraceEvent> spans = rec.spans;
  std::sort(spans.begin(), spans.end(), ChromeTraceEventBefore);
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i) *out += ",";
    AppendChromeTraceEvent(spans[i], out);
  }
  *out += "]}";
}

}  // namespace

const char* FlightOutcomeName(FlightOutcome outcome) {
  switch (outcome) {
    case FlightOutcome::kCompleted:
      return "completed";
    case FlightOutcome::kShed:
      return "shed";
    case FlightOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* FlightRetainReasonName(FlightRetainReason reason) {
  switch (reason) {
    case FlightRetainReason::kSloBreach:
      return "slo_breach";
    case FlightRetainReason::kShed:
      return "shed";
    case FlightRetainReason::kError:
      return "error";
    case FlightRetainReason::kHeadSample:
      return "head_sample";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  // Deliberately leaked, like TraceRecorder::Global: the span tap and the
  // serve tier's completion hooks may fire from thread-exit paths after
  // static destruction would have torn a normal singleton down.
  static FlightRecorder* global = new FlightRecorder();
  return *global;
}

void FlightRecorder::Configure(const Options& options) {
  {
    std::lock_guard<std::mutex> lock(options_mu_);
    options_ = options;
  }
  const double slo = options.slo_threshold_seconds;
  // <= 0 means "retain every completion" (the comparison e2e >= 0 always
  // holds) — the deterministic-test and capture-everything mode.
  slo_threshold_ns_.store(
      slo <= 0.0 ? 0 : static_cast<uint64_t>(slo * 1e9),
      std::memory_order_relaxed);
  head_sample_every_.store(options.head_sample_every,
                           std::memory_order_relaxed);
  const uint64_t every = options.head_sample_every;
  head_sample_mask_.store(
      every > 0 && (every & (every - 1)) == 0 ? every - 1 : ~0ull,
      std::memory_order_relaxed);
  max_spans_per_record_.store(std::max<size_t>(1, options.max_spans_per_record),
                              std::memory_order_relaxed);
  max_open_requests_.store(
      std::max<size_t>(kOpenShards, options.max_open_requests),
      std::memory_order_relaxed);
  capacity_.store(std::max<size_t>(1, options.capacity),
                  std::memory_order_relaxed);
  reserved_per_tenant_.store(options.reserved_per_tenant,
                             std::memory_order_relaxed);
  Clear();
}

FlightRecorder::Options FlightRecorder::GetOptions() const {
  std::lock_guard<std::mutex> lock(options_mu_);
  return options_;
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i < kOpenShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].records.clear();
    shards_[i].tombstones.clear();
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    retained_.clear();
    tenant_counts_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    latest_dump_json_.clear();
    last_dump_stats_ = ServeStatsSnapshot{};
  }
  {
    std::lock_guard<std::mutex> lock(late_mu_);
    late_open_.clear();
  }
  pending_open_.store(0, std::memory_order_relaxed);
  span_gate_.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kRecentRetained; ++i) {
    recent_retained_[i].store(0, std::memory_order_relaxed);
  }
  recent_idx_.store(0, std::memory_order_relaxed);
  RearmTap();
  observed_.store(0, std::memory_order_relaxed);
  retained_slo_.store(0, std::memory_order_relaxed);
  retained_shed_.store(0, std::memory_order_relaxed);
  retained_error_.store(0, std::memory_order_relaxed);
  retained_sample_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
  open_overflow_.store(0, std::memory_order_relaxed);
  spans_captured_.store(0, std::memory_order_relaxed);
  spans_dropped_.store(0, std::memory_order_relaxed);
  dumps_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::RearmTap() {
  const bool armed = pending_open_.load(std::memory_order_relaxed) != 0 ||
                     span_gate_.load(std::memory_order_relaxed) != 0;
  tap_armed_.store(armed ? 1 : 0, std::memory_order_relaxed);
  // A disarm can race a concurrent retention's arm and land second; the
  // recheck narrows that window to nanoseconds. A lost arm costs only
  // best-effort late spans for one window — never a wrong record.
  if (!armed && (pending_open_.load(std::memory_order_relaxed) != 0 ||
                 span_gate_.load(std::memory_order_relaxed) != 0)) {
    tap_armed_.store(1, std::memory_order_relaxed);
  }
}

void FlightRecorder::TombstoneLocked(OpenShard* sh, uint64_t request_id) {
  auto it = sh->records.find(request_id);
  if (it != sh->records.end() && it->second != nullptr) {
    it->second = nullptr;
    sh->tombstones.push_back(request_id);
  }
  while (sh->tombstones.size() > kTombstoneWindow) {
    sh->records.erase(sh->tombstones.front());
    sh->tombstones.pop_front();
  }
}

void FlightRecorder::OnSpan(const TraceEvent& ev) {
  OpenShard& sh = ShardFor(ev.request_id);
  const size_t max_spans =
      max_spans_per_record_.load(std::memory_order_relaxed);
  const size_t shard_cap = std::max<size_t>(
      1, max_open_requests_.load(std::memory_order_relaxed) / kOpenShards);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.records.find(ev.request_id);
  if (it == sh.records.end()) {
    if (sh.records.size() - sh.tombstones.size() >= shard_cap) {
      open_overflow_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto rec = std::make_shared<FlightRecord>();
    rec->request_id = ev.request_id;
    rec->open_shard = ev.request_id % kOpenShards;
    it = sh.records.emplace(ev.request_id, std::move(rec)).first;
    pending_open_.fetch_add(1, std::memory_order_relaxed);
    RearmTap();
  }
  if (it->second == nullptr) return;  // tombstone: late span, record gone
  FlightRecord& rec = *it->second;
  if (rec.spans.size() >= max_spans) {
    ++rec.spans_dropped;
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rec.spans.push_back(ev);
  spans_captured_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::OnLateSpan(const TraceEvent& ev) {
  // Lock-free pre-filter: inside the late-span window the tap routes every
  // span here, but only spans of the few recently retained requests can
  // land — everything else bails on a handful of relaxed loads. Skipped
  // while records are manually staged (tests), whose ids are not listed.
  if (pending_open_.load(std::memory_order_relaxed) == 0) {
    bool recent = false;
    for (size_t i = 0; i < kRecentRetained; ++i) {
      if (recent_retained_[i].load(std::memory_order_relaxed) ==
          ev.request_id) {
        recent = true;
        break;
      }
    }
    if (!recent) return;
  }
  OpenShard& sh = ShardFor(ev.request_id);
  const size_t max_spans =
      max_spans_per_record_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.records.find(ev.request_id);
  // Append-only: spans for requests nobody retained (or staged) belong to
  // the TraceRecorder's buffers, not here.
  if (it == sh.records.end() || it->second == nullptr) return;
  FlightRecord& rec = *it->second;
  if (rec.spans.size() >= max_spans) {
    ++rec.spans_dropped;
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rec.spans.push_back(ev);
  spans_captured_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::OnComplete(uint64_t request_id, int shard,
                                const RouteAnswer& answer) {
  const uint64_t n = observed_.fetch_add(1, std::memory_order_relaxed);
  // Close the late-span window once enough completions have passed the
  // retention that opened it. CAS so a concurrent retention re-opening the
  // gate is never clobbered by a stale close.
  uint64_t gate = span_gate_.load(std::memory_order_relaxed);
  if (gate != 0 && n >= gate) {
    span_gate_.compare_exchange_strong(gate, 0, std::memory_order_relaxed);
    RearmTap();
  }
  const uint64_t slo_ns = slo_threshold_ns_.load(std::memory_order_relaxed);

  // End-to-end latency source: the telescoping stage breakdown when the
  // request was served (exact to the ns), the queue+service sum for sheds.
  // The SLO test stays in integer ns on the served path; doubles (and the
  // seconds-valued fallback) only enter for sheds with no stage clock.
  const uint64_t total_ns = answer.stages.TotalNs();

  FlightOutcome outcome = FlightOutcome::kCompleted;
  if (!answer.status.ok()) {
    outcome = IsShedCode(answer.status.code()) ? FlightOutcome::kShed
                                               : FlightOutcome::kFailed;
  }

  // Retroactive retention: the whole point of the flight recorder is that
  // this decision happens *after* the outcome is known.
  bool retain = true;
  FlightRetainReason reason = FlightRetainReason::kHeadSample;
  if (outcome == FlightOutcome::kShed) {
    reason = FlightRetainReason::kShed;
  } else if (outcome == FlightOutcome::kFailed) {
    reason = FlightRetainReason::kError;
  } else if (total_ns > 0 ? total_ns >= slo_ns
                          : answer.queue_seconds + answer.service_seconds >=
                                1e-9 * static_cast<double>(slo_ns)) {
    reason = FlightRetainReason::kSloBreach;
  } else {
    const uint64_t every = head_sample_every_.load(std::memory_order_relaxed);
    const uint64_t mask = head_sample_mask_.load(std::memory_order_relaxed);
    if (every > 0 && (mask != ~0ull ? (n & mask) == 0 : n % every == 0)) {
      reason = FlightRetainReason::kHeadSample;
    } else {
      retain = false;
    }
  }

  if (!retain) {
    // The production fast path: nothing is staged per span and nothing is
    // counted (the snapshot derives discards), so an unremarkable
    // completion has already paid its whole cost — the observed_ bump at
    // entry. The table walk runs only when OnSpan-staged records exist
    // (tests / manual staging), preserving fill-then-tombstone semantics.
    if (request_id != 0 &&
        pending_open_.load(std::memory_order_relaxed) != 0) {
      OpenShard& sh = ShardFor(request_id);
      std::lock_guard<std::mutex> lock(sh.mu);
      auto it = sh.records.find(request_id);
      if (it != sh.records.end() && it->second != nullptr) {
        if (it->second->complete) return;  // duplicate completion
        const double e2e_seconds =
            total_ns > 0 ? 1e-9 * static_cast<double>(total_ns)
                         : answer.queue_seconds + answer.service_seconds;
        FillOutcome(it->second.get(),
                    next_seq_.fetch_add(1, std::memory_order_relaxed), shard,
                    answer, outcome, reason, e2e_seconds);
        pending_open_.fetch_sub(1, std::memory_order_relaxed);
        TombstoneLocked(&sh, request_id);
        RearmTap();
      }
    }
    return;
  }
  const double e2e_seconds =
      total_ns > 0 ? 1e-9 * static_cast<double>(total_ns)
                   : answer.queue_seconds + answer.service_seconds;

  std::shared_ptr<FlightRecord> rec;
  bool in_table = false;
  if (request_id != 0) {
    OpenShard& sh = ShardFor(request_id);
    std::lock_guard<std::mutex> lock(sh.mu);
    auto it = sh.records.find(request_id);
    if (it != sh.records.end()) {
      if (it->second == nullptr) {
        // Tombstoned (evicted, or a late duplicate of a discarded
        // request): fall through to a standalone record.
      } else if (it->second->complete) {
        return;  // duplicate completion; first wins
      } else {
        rec = it->second;  // staged spans ride along
        pending_open_.fetch_sub(1, std::memory_order_relaxed);
        in_table = true;
      }
    } else {
      // Enter the table *at retention*: the entry exists to receive late
      // spans (the ones that close after this callback) for a short
      // window, not to stage per-span state for every request.
      rec = std::make_shared<FlightRecord>();
      rec->request_id = request_id;
      rec->open_shard = request_id % kOpenShards;
      sh.records.emplace(request_id, rec);
      in_table = true;
    }
    if (rec != nullptr) {
      FillOutcome(rec.get(), next_seq_.fetch_add(1, std::memory_order_relaxed),
                  shard, answer, outcome, reason, e2e_seconds);
    }
  }
  if (rec == nullptr) {
    // Request id 0 (tracing disabled) or a tombstoned id: keep an
    // outcome-only record — the tail evidence an operator needs most
    // survives even without the tree.
    rec = std::make_shared<FlightRecord>();
    rec->request_id = request_id;
    FillOutcome(rec.get(), next_seq_.fetch_add(1, std::memory_order_relaxed),
                shard, answer, outcome, reason, e2e_seconds);
  }
  if (in_table) {
    // Open the late-span window before sweeping, so a span racing this
    // completion lands via the table if the sweep misses it. The id goes
    // into the recent-retained ring first: once the gate opens, the tap
    // consults the ring, and a late span of *this* request must match.
    recent_retained_[recent_idx_.fetch_add(1, std::memory_order_relaxed) %
                     kRecentRetained]
        .store(request_id, std::memory_order_relaxed);
    span_gate_.store(n + kLateSpanWindow, std::memory_order_relaxed);
    RearmTap();
    MergeTraceSpans(rec);
    AgeLateOpen(request_id, n);
  }
  switch (reason) {
    case FlightRetainReason::kSloBreach:
      retained_slo_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlightRetainReason::kShed:
      retained_shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlightRetainReason::kError:
      retained_error_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlightRetainReason::kHeadSample:
      retained_sample_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  RetainRecord(rec);
}

void FlightRecorder::MergeTraceSpans(const std::shared_ptr<FlightRecord>& rec) {
  // The sweep reads the TraceRecorder's locks; the record's shard lock is
  // deliberately NOT held across it (lock-order hygiene with the tap).
  // Bound the ring scan: no span of this request can have started before
  // the request did, so skip batches flushed earlier than completion time
  // minus twice the e2e latency (clock-skew/stage-rounding headroom) and
  // 1 ms of slack.
  uint64_t min_start_ns = 0;
  if (rec->completed_ns > 0 && rec->e2e_seconds >= 0.0) {
    const uint64_t lookback =
        2 * static_cast<uint64_t>(rec->e2e_seconds * 1e9) + 1000000;
    if (rec->completed_ns > lookback) {
      min_start_ns = rec->completed_ns - lookback;
    }
  }
  std::vector<TraceEvent> collected =
      TraceRecorder::Global().CollectRequest(rec->request_id, min_start_ns);
  if (collected.empty()) return;
  const size_t max_spans =
      max_spans_per_record_.load(std::memory_order_relaxed);
  OpenShard& sh = shards_[rec->open_shard];
  std::lock_guard<std::mutex> lock(sh.mu);
  // Dedup by span id: the sweep can return a flush-raced event twice, and
  // a late span may have raced in through the table already.
  std::unordered_set<uint64_t> seen;
  seen.reserve(rec->spans.size() + collected.size());
  for (const TraceEvent& ev : rec->spans) seen.insert(ev.span_id);
  for (TraceEvent& ev : collected) {
    if (ev.span_id != 0 && !seen.insert(ev.span_id).second) continue;
    if (rec->spans.size() >= max_spans) {
      ++rec->spans_dropped;
      spans_dropped_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    rec->spans.push_back(std::move(ev));
    spans_captured_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FlightRecorder::AgeLateOpen(uint64_t request_id, uint64_t observed_at) {
  std::lock_guard<std::mutex> lock(late_mu_);
  late_open_.emplace_back(request_id, observed_at);
  while (!late_open_.empty() &&
         late_open_.front().second + kLateSpanWindow < observed_at) {
    const uint64_t old = late_open_.front().first;
    late_open_.pop_front();
    OpenShard& sh = ShardFor(old);
    std::lock_guard<std::mutex> slock(sh.mu);
    TombstoneLocked(&sh, old);
  }
}

void FlightRecorder::RetainRecord(const std::shared_ptr<FlightRecord>& rec) {
  const size_t cap = std::max<size_t>(1, capacity_.load(std::memory_order_relaxed));
  const size_t reserve = reserved_per_tenant_.load(std::memory_order_relaxed);
  std::vector<std::shared_ptr<FlightRecord>> victims;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    retained_.push_back(rec);
    ++tenant_counts_[rec->tenant];
    while (retained_.size() > cap) {
      // Reservoir eviction: the victim is the *oldest* record whose tenant
      // holds more than its reserve — or, failing that, the oldest record
      // of the inserting tenant itself (a flooding tenant displaces its
      // own evidence before touching anyone else's). Only when every
      // tenant sits at/below reserve (capacity < tenants * reserve) does
      // plain FIFO apply.
      size_t victim = 0;
      for (size_t i = 0; i < retained_.size(); ++i) {
        const auto& r = retained_[i];
        if (tenant_counts_[r->tenant] > reserve || r->tenant == rec->tenant) {
          victim = i;
          break;
        }
      }
      std::shared_ptr<FlightRecord> v = retained_[victim];
      retained_.erase(retained_.begin() + static_cast<long>(victim));
      auto tc = tenant_counts_.find(v->tenant);
      if (tc != tenant_counts_.end() && --tc->second == 0) {
        tenant_counts_.erase(tc);
      }
      victims.push_back(std::move(v));
    }
  }
  for (const auto& v : victims) {
    evicted_.fetch_add(1, std::memory_order_relaxed);
    if (v->open_shard < kOpenShards) {
      OpenShard& sh = shards_[v->open_shard];
      std::lock_guard<std::mutex> lock(sh.mu);
      TombstoneLocked(&sh, v->request_id);
    }
  }
}

std::vector<FlightRecord> FlightRecorder::Retained(size_t n) const {
  std::vector<std::shared_ptr<FlightRecord>> refs;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    const size_t take = std::min(n, retained_.size());
    refs.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      refs.push_back(retained_[retained_.size() - 1 - i]);  // newest first
    }
  }
  std::vector<FlightRecord> out;
  out.reserve(refs.size());
  for (const auto& r : refs) {
    if (r->open_shard < kOpenShards) {
      // Table-resident: late spans may still be appending under the shard
      // lock, so the copy takes it too.
      std::lock_guard<std::mutex> lock(shards_[r->open_shard].mu);
      out.push_back(*r);
    } else {
      out.push_back(*r);
    }
  }
  return out;
}

std::string FlightRecorder::ToChromeTraceJson(size_t n) const {
  std::vector<FlightRecord> records = Retained(n);
  std::vector<TraceEvent> events;
  size_t total = 0;
  for (const FlightRecord& rec : records) total += rec.spans.size();
  events.reserve(total);
  for (FlightRecord& rec : records) {
    for (TraceEvent& ev : rec.spans) events.push_back(std::move(ev));
  }
  return ChromeTraceJsonFromEvents(std::move(events));
}

void FlightRecorder::SetStatsSource(
    std::function<ServeStatsSnapshot()> source) {
  ServeStatsSnapshot baseline = source ? source() : ServeStatsSnapshot{};
  std::lock_guard<std::mutex> lock(dump_mu_);
  stats_source_ = std::move(source);
  // The first dump's delta is measured from here, not from process zero —
  // "what changed leading into the degradation", not "everything ever".
  last_dump_stats_ = std::move(baseline);
}

void FlightRecorder::OnHealthTransition(const HealthTransition& transition,
                                        const HealthSnapshot& health) {
  if (!Enabled()) return;
  // Dump only on worsening transitions into Degraded/Unhealthy: recovery
  // (and the Unhealthy -> Degraded step of one) changes no evidence, and
  // a single forced degradation must produce exactly one dump.
  if (static_cast<int>(transition.to) <= static_cast<int>(transition.from)) {
    return;
  }
  if (transition.to == HealthState::kHealthy) return;
  BuildDump(transition, health);
}

void FlightRecorder::BuildDump(const HealthTransition& transition,
                               const HealthSnapshot& health) {
  std::function<ServeStatsSnapshot()> src;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    src = stats_source_;
  }
  // The sampler is user code (QueryServer::Stats) — call it unlocked.
  ServeStatsSnapshot stats = src ? src() : ServeStatsSnapshot{};
  std::vector<FlightRecord> records =
      Retained(capacity_.load(std::memory_order_relaxed));
  const uint64_t dump_seq = dumps_.fetch_add(1, std::memory_order_relaxed) + 1;

  std::string out;
  out.reserve(records.size() * 1024 + 4096);
  out += "{\"schema_version\":1,\"kind\":\"flight_dump\"";
  out += ",\"dump_seq\":" + U64(dump_seq);
  out += ",\"trigger\":{\"sample\":" + U64(transition.sample);
  out += ",\"at_ns\":" + U64(transition.at_ns);
  out += ",\"from\":\"";
  out += HealthStateName(transition.from);
  out += "\",\"to\":\"";
  out += HealthStateName(transition.to);
  out += "\",\"top_offender\":\"" + JsonEscape(transition.top_offender) + "\"";
  out += ",\"burn_rate\":" + JsonNumber(transition.burn_rate) + "}";
  out += ",\"health\":" + MetricsExporter::HealthToJson(health);
  out += ",\"serve\":" + MetricsExporter::ServeToJson(stats);

  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    const ServeStatsSnapshot& prev = last_dump_stats_;
    auto delta = [](uint64_t now, uint64_t then) {
      return now >= then ? now - then : 0;
    };
    out += ",\"serve_delta\":{";
    out += "\"submitted\":" + U64(delta(stats.submitted, prev.submitted));
    out += ",\"admitted\":" + U64(delta(stats.admitted, prev.admitted));
    out += ",\"completed\":" + U64(delta(stats.completed, prev.completed));
    out += ",\"failed\":" + U64(delta(stats.failed, prev.failed));
    out += ",\"shed\":" + U64(delta(stats.TotalShed(), prev.TotalShed()));
    out += ",\"queue_depth\":" + U64(stats.queue_depth);
    out += ",\"tenants\":{";
    bool first = true;
    for (const TenantServeStats& t : stats.tenants) {
      const TenantServeStats* was = nullptr;
      for (const TenantServeStats& p : prev.tenants) {
        if (p.tenant == t.tenant) {
          was = &p;
          break;
        }
      }
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(t.tenant) + "\":{";
      out += "\"submitted\":" +
             U64(delta(t.submitted, was ? was->submitted : 0));
      out += ",\"shed\":" +
             U64(delta(t.TotalShed(), was ? was->TotalShed() : 0));
      out += ",\"completed\":" +
             U64(delta(t.completed, was ? was->completed : 0));
      out += ",\"queue_depth\":" + U64(t.queue_depth);
      out += "}";
    }
    out += "}}";
    out += ",\"retained_records\":" + U64(records.size());
    out += ",\"traces\":[";
    for (size_t i = 0; i < records.size(); ++i) {
      if (i) out += ",";
      AppendRecordJson(records[i], &out);
    }
    out += "]}";
    last_dump_stats_ = std::move(stats);
    latest_dump_json_ = std::move(out);
  }
}

std::string FlightRecorder::LatestDumpJson() const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  return latest_dump_json_;
}

FlightStatsSnapshot FlightRecorder::Stats() const {
  FlightStatsSnapshot s;
  s.enabled = Enabled();
  s.observed = observed_.load(std::memory_order_relaxed);
  s.retained_slo = retained_slo_.load(std::memory_order_relaxed);
  s.retained_shed = retained_shed_.load(std::memory_order_relaxed);
  s.retained_error = retained_error_.load(std::memory_order_relaxed);
  s.retained_sample = retained_sample_.load(std::memory_order_relaxed);
  // Derived, not counted: the discard path bumps only observed_.
  const uint64_t retained_total = s.retained_slo + s.retained_shed +
                                  s.retained_error + s.retained_sample;
  s.discarded = s.observed >= retained_total ? s.observed - retained_total : 0;
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.open_overflow = open_overflow_.load(std::memory_order_relaxed);
  s.spans_captured = spans_captured_.load(std::memory_order_relaxed);
  s.spans_dropped = spans_dropped_.load(std::memory_order_relaxed);
  s.dumps = dumps_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kOpenShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    s.open_requests +=
        shards_[i].records.size() - shards_[i].tombstones.size();
  }
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    s.retained_records = retained_.size();
  }
  return s;
}

}  // namespace tsdm
