#include "src/net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_export.h"
#include "src/obs/trace.h"

namespace tsdm {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// Wire request ids live in their own namespace (high bit set) so they can
/// never collide with in-process serve request ids in one trace.
constexpr uint64_t kNetRequestBit = 1ull << 63;

// GET /debug/traces: default and maximum trace count, and the bound on the
// query string an introspection endpoint will even look at — anything
// longer is hostile and answered with a typed 400 before parsing.
constexpr uint64_t kDefaultDebugTraces = 32;
constexpr uint64_t kMaxDebugTraces = 4096;
constexpr size_t kMaxDebugQueryBytes = 256;

Status Errno(const char* what) {
  return Status::Internal(std::string("net: ") + what + ": " +
                          strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// All per-connection state. Owned by exactly one event loop after
/// adoption; only that loop's thread touches it.
struct SocketServer::Connection {
  enum class Protocol { kUnknown, kBinary, kHttp };

  int fd = -1;
  uint64_t id = 0;
  int loop_index = 0;
  Protocol protocol = Protocol::kUnknown;

  FrameParser frames;
  HttpParser http;
  /// Pending outbound bytes; [out_off, out.size()) not yet written.
  std::vector<uint8_t> out;
  size_t out_off = 0;

  /// NowNs at the read event that began the currently-pending request
  /// bytes (frame deadline accounting); 0 = nothing pending.
  uint64_t request_start_ns = 0;
  /// Wire queries submitted to the serve layer, not yet answered.
  int in_flight = 0;
  /// Peer half-closed (or error): close once writes drain and in_flight
  /// reaches zero.
  bool want_close = false;
  /// Parser hit a terminal condition: close after the out buffer drains.
  bool close_after_write = false;
};

/// One epoll thread: its fd set, its wake channel, and its connections.
/// `inbox` is the only cross-thread surface; everything else is loop-local.
struct SocketServer::EventLoop {
  int index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;

  std::mutex inbox_mu;
  std::deque<Completion> inbox;
  /// Newly accepted fds awaiting adoption by this loop.
  std::deque<int> pending_fds;

  /// Loop-local: connection registry (adopted fds only).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  std::unordered_map<int, uint64_t> fd_to_conn;
};

SocketServer::SocketServer(QueryService* serve, Options options)
    : serve_(serve), options_(std::move(options)) {
  if (options_.event_loops < 1) options_.event_loops = 1;
  if (options_.max_connections < 1) options_.max_connections = 1;
}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Errno("bind");
  }
  if (listen(listen_fd_, 128) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_.store(ntohs(bound.sin_port), std::memory_order_release);
  }
  return Status::OK();
}

Status SocketServer::Start() {
  if (started_) return Status::FailedPrecondition("net: already started");
  TSDM_RETURN_IF_ERROR(Listen());

  router_ = std::make_shared<CompletionRouter>();
  router_->server = this;
  running_.store(true, std::memory_order_release);

  loops_.clear();
  for (int i = 0; i < options_.event_loops; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->event_fd < 0) {
      running_.store(false, std::memory_order_release);
      close(listen_fd_);
      listen_fd_ = -1;
      return Errno("epoll_create1/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->event_fd;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  // The listener lives in loop 0's fd set (level-triggered is fine for a
  // listen socket; AcceptReady still drains until EAGAIN).
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev);

  for (auto& loop : loops_) {
    const int index = loop->index;
    loop->thread = std::thread([this, index] { LoopMain(index); });
  }
  if (options_.register_metrics_sources) RegisterMetricsSources();
  started_ = true;
  return Status::OK();
}

void SocketServer::Stop() {
  if (!started_) return;
  started_ = false;

  // No new connections. The fd itself closes after the loops join — loop 0
  // may still be inside an accept burst, and closing under it would let
  // the fd number be reused mid-call.
  if (listen_fd_ >= 0) {
    epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
    shutdown(listen_fd_, SHUT_RDWR);
  }

  // Drain: wait (bounded) for in-flight wire requests to come back and for
  // their responses to reach the kernel, so well-behaved clients see every
  // answer before their socket dies.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (router_->in_flight.load(std::memory_order_acquire) == 0 &&
        unflushed_bytes_.load(std::memory_order_acquire) == 0) {
      bool inboxes_empty = true;
      for (auto& loop : loops_) {
        std::lock_guard<std::mutex> lock(loop->inbox_mu);
        if (!loop->inbox.empty()) inboxes_empty = false;
      }
      if (inboxes_empty) break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  // Late serve completions must not touch the loops we are about to join.
  {
    std::lock_guard<std::mutex> lock(router_->mu);
    router_->server = nullptr;
  }
  running_.store(false, std::memory_order_release);
  for (auto& loop : loops_) WakeLoop(loop.get());
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& loop : loops_) {
    // Loop threads closed their connections on exit; release the fds.
    size_t undelivered = 0;
    {
      std::lock_guard<std::mutex> lock(loop->inbox_mu);
      undelivered = loop->inbox.size();
      loop->inbox.clear();
      for (int fd : loop->pending_fds) close(fd);
      loop->pending_fds.clear();
    }
    router_->dropped.fetch_add(undelivered, std::memory_order_relaxed);
    if (loop->event_fd >= 0) close(loop->event_fd);
    if (loop->epoll_fd >= 0) close(loop->epoll_fd);
  }
  if (options_.register_metrics_sources) UnregisterMetricsSources();
}

void SocketServer::WakeLoop(EventLoop* loop) {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(loop->event_fd, &one, sizeof(one));
}

void SocketServer::PostCompletion(int loop_index, Completion item) {
  EventLoop* loop = loops_[static_cast<size_t>(loop_index)].get();
  {
    std::lock_guard<std::mutex> lock(loop->inbox_mu);
    loop->inbox.push_back(std::move(item));
  }
  WakeLoop(loop);
}

void SocketServer::LoopMain(int loop_index) {
  EventLoop* loop = loops_[static_cast<size_t>(loop_index)].get();
  std::vector<epoll_event> events(64);
  while (running_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(loop->epoll_fd, events.data(),
                             static_cast<int>(events.size()), 100);
    if (!running_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == loop->event_fd) {
        uint64_t drain = 0;
        while (read(loop->event_fd, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (loop->index == 0 && ev.data.fd == listen_fd_) {
        AcceptReady(loop);
        continue;
      }
      auto it = loop->fd_to_conn.find(ev.data.fd);
      if (it == loop->fd_to_conn.end()) continue;
      Connection* conn = loop->conns[it->second].get();
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(loop, conn);
        continue;
      }
      if (ev.events & EPOLLOUT) HandleWritable(loop, conn);
      // HandleWritable may close on fatal write error; re-check liveness.
      if (loop->fd_to_conn.count(ev.data.fd) == 0) continue;
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) HandleReadable(loop, conn);
    }

    // Adopt handed-off fds and apply posted completions.
    std::deque<Completion> inbox;
    std::deque<int> adopt;
    {
      std::lock_guard<std::mutex> lock(loop->inbox_mu);
      inbox.swap(loop->inbox);
      adopt.swap(loop->pending_fds);
    }
    for (int fd : adopt) {
      auto conn = std::make_unique<Connection>();
      conn->fd = fd;
      conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      conn->loop_index = loop->index;
      epoll_event cev{};
      cev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      cev.data.fd = fd;
      if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &cev) != 0) {
        close(fd);
        connections_closed_.fetch_add(1, std::memory_order_relaxed);
        connections_active_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      loop->fd_to_conn[fd] = conn->id;
      loop->conns[conn->id] = std::move(conn);
    }
    for (Completion& item : inbox) ApplyCompletion(loop, &item);
  }
  // Park: close every connection this loop still owns.
  std::vector<Connection*> remaining;
  remaining.reserve(loop->conns.size());
  for (auto& [id, conn] : loop->conns) remaining.push_back(conn.get());
  for (Connection* conn : remaining) CloseConnection(loop, conn);
}

void SocketServer::AcceptReady(EventLoop* loop) {
  (void)loop;
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // EMFILE etc. — try again on the next event
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_active_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      // Accept-time shed: over the cap the cheapest safe action is to
      // close before allocating any per-connection state.
      shed_conn_cap_.fetch_add(1, std::memory_order_relaxed);
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
      close(fd);
      continue;
    }
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetNonBlocking(fd);
    AdoptConnection(fd);
  }
}

void SocketServer::AdoptConnection(int fd) {
  const int target = next_loop_.fetch_add(1, std::memory_order_relaxed) %
                     options_.event_loops;
  EventLoop* loop = loops_[static_cast<size_t>(target)].get();
  {
    std::lock_guard<std::mutex> lock(loop->inbox_mu);
    loop->pending_fds.push_back(fd);
  }
  WakeLoop(loop);
}

void SocketServer::CloseConnection(EventLoop* loop, Connection* conn) {
  if (conn->out.size() > conn->out_off) {
    unflushed_bytes_.fetch_sub(conn->out.size() - conn->out_off,
                               std::memory_order_relaxed);
  }
  // Fold this connection's parser bookkeeping into the server totals (the
  // live deltas were already folded after each Consume; nothing to do) and
  // release the fd.
  epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  loop->fd_to_conn.erase(conn->fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
  loop->conns.erase(conn->id);  // frees conn
}

bool SocketServer::TryWrite(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                           conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      bytes_written_.fetch_add(static_cast<uint64_t>(n),
                               std::memory_order_relaxed);
      unflushed_bytes_.fetch_sub(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone
  }
  conn->out.clear();
  conn->out_off = 0;
  return true;
}

void SocketServer::MaybeClose(EventLoop* loop, Connection* conn) {
  const bool drained = conn->out_off >= conn->out.size();
  // close_after_write still waits for in-flight async answers (a POST
  // /query under Connection: close) — "after write" means after every
  // pending response is out, not just the synchronous ones.
  if (conn->close_after_write && drained && conn->in_flight == 0) {
    CloseConnection(loop, conn);
    return;
  }
  if (conn->want_close && drained && conn->in_flight == 0) {
    CloseConnection(loop, conn);
  }
}

void SocketServer::HandleWritable(EventLoop* loop, Connection* conn) {
  if (!TryWrite(conn)) {
    CloseConnection(loop, conn);
    return;
  }
  MaybeClose(loop, conn);
}

void SocketServer::HandleReadable(EventLoop* loop, Connection* conn) {
  uint8_t buf[kReadChunk];
  bool saw_eof = false;
  // Helpers below may close (and free) conn on fatal write errors; the
  // liveness re-checks must use the saved fd, never conn itself.
  const int fd = conn->fd;
  while (true) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_read_.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      if (conn->request_start_ns == 0) {
        conn->request_start_ns = TraceRecorder::NowNs();
      }
      if (conn->protocol == Connection::Protocol::kUnknown) {
        conn->protocol = (buf[0] == kNetFrameMagic)
                             ? Connection::Protocol::kBinary
                             : Connection::Protocol::kHttp;
      }
      if (conn->protocol == Connection::Protocol::kBinary) {
        std::vector<NetFrame> frames;
        const NetFrameStats before = conn->frames.stats();
        conn->frames.Consume(buf, static_cast<size_t>(n), &frames);
        const NetFrameStats& after = conn->frames.stats();
        frame_bytes_consumed_.fetch_add(
            after.bytes_consumed - before.bytes_consumed,
            std::memory_order_relaxed);
        frames_accepted_.fetch_add(
            after.frames_accepted - before.frames_accepted,
            std::memory_order_relaxed);
        frames_bad_length_.fetch_add(
            after.rejected_bad_length - before.rejected_bad_length,
            std::memory_order_relaxed);
        frames_bad_crc_.fetch_add(
            after.rejected_bad_crc - before.rejected_bad_crc,
            std::memory_order_relaxed);
        frame_resync_bytes_.fetch_add(
            after.resync_bytes - before.resync_bytes,
            std::memory_order_relaxed);
        if (!frames.empty()) ProcessBinaryFrames(loop, conn, &frames);
        if (loop->fd_to_conn.count(fd) == 0) return;  // closed
        if (conn->frames.PendingBytes() == 0) conn->request_start_ns = 0;
      } else {
        conn->http.Feed(buf, static_cast<size_t>(n));
        ProcessHttp(loop, conn);
        if (loop->fd_to_conn.count(fd) == 0) return;  // closed
        if (conn->http.BufferedBytes() == 0) conn->request_start_ns = 0;
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    saw_eof = true;  // fatal read error
    break;
  }
  if (!TryWrite(conn)) {
    CloseConnection(loop, conn);
    return;
  }
  if (saw_eof) conn->want_close = true;
  MaybeClose(loop, conn);
}

// --- Binary protocol ------------------------------------------------------

void SocketServer::ProcessBinaryFrames(EventLoop* loop, Connection* conn,
                                       std::vector<NetFrame>* frames) {
  for (const NetFrame& frame : *frames) {
    switch (static_cast<NetOpcode>(frame.opcode)) {
      case NetOpcode::kPing: {
        pings_.fetch_add(1, std::memory_order_relaxed);
        const size_t before = conn->out.size();
        EncodeNetFrame(frame.request_id, NetOpcode::kPong, nullptr, 0,
                       &conn->out);
        unflushed_bytes_.fetch_add(conn->out.size() - before,
                                   std::memory_order_relaxed);
        break;
      }
      case NetOpcode::kRouteQuery:
        SubmitWireQuery(conn, frame);
        break;
      default: {
        rejected_bad_opcode_.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> payload;
        EncodeErrorPayload(
            Status::InvalidArgument("net: unknown opcode"), &payload);
        const size_t before = conn->out.size();
        EncodeNetFrame(frame.request_id, NetOpcode::kError, payload.data(),
                       payload.size(), &conn->out);
        unflushed_bytes_.fetch_add(conn->out.size() - before,
                                   std::memory_order_relaxed);
        break;
      }
    }
  }
  if (!TryWrite(conn)) CloseConnection(loop, conn);
}

void SocketServer::SubmitWireQuery(Connection* conn, const NetFrame& frame) {
  const uint64_t now_ns = TraceRecorder::NowNs();
  const uint64_t start_ns =
      conn->request_start_ns != 0 ? conn->request_start_ns : now_ns;

  auto reject = [&](Status status, std::atomic<uint64_t>* counter) {
    if (counter) counter->fetch_add(1, std::memory_order_relaxed);
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    std::vector<uint8_t> payload;
    EncodeErrorPayload(status, &payload);
    const size_t before = conn->out.size();
    EncodeNetFrame(frame.request_id, NetOpcode::kError, payload.data(),
                   payload.size(), &conn->out);
    unflushed_bytes_.fetch_add(conn->out.size() - before,
                               std::memory_order_relaxed);
  };

  // Socket-layer admission control — all three checks run BEFORE the query
  // payload is deserialized, so a shed request costs framing only.
  if (serve_ == nullptr) {
    reject(Status::FailedPrecondition("net: no serve backend"), nullptr);
    return;
  }
  if (options_.admission_deadline_seconds > 0.0 &&
      static_cast<double>(now_ns - start_ns) * 1e-9 >
          options_.admission_deadline_seconds) {
    reject(Status::ResourceExhausted(
               "net: admission deadline exceeded before parse"),
           &shed_deadline_);
    return;
  }
  if (serve_->QueueFull()) {
    reject(Status::ResourceExhausted("net: serve queue full"),
           &shed_queue_full_);
    return;
  }

  RouteQuery query;
  int priority = 0;
  std::string tenant;
  Status parsed = DecodeRouteQueryPayload(
      frame.payload.data(), frame.payload.size(), &query, &priority, &tenant);
  if (!parsed.ok()) {
    reject(std::move(parsed), nullptr);
    return;
  }

  // Root the wire request's trace tree: net/request spans the whole wire
  // lifetime; net/read covers first byte -> frame complete; serve/submit
  // (and its subtree) attaches via SubmitOptions::trace_parent; net/write
  // closes the tree when the response goes out.
  uint64_t net_request_id = 0;
  uint64_t root_span_id = 0;
  if (TraceRecorder::Enabled()) {
    net_request_id =
        kNetRequestBit |
        next_net_request_.fetch_add(1, std::memory_order_relaxed);
    root_span_id = TraceRecorder::Global().NextSpanId();
    TraceRecorder::Global().RecordSpan(
        "net/read", start_ns, now_ns,
        TraceContext{net_request_id, root_span_id},
        static_cast<int64_t>(frame.request_id));
  }

  SubmitOptions submit;
  submit.queue_budget_seconds = options_.queue_budget_seconds;
  submit.priority = priority;
  submit.tenant_id = std::move(tenant);
  submit.client_request_id = frame.request_id;
  submit.trace_parent = TraceContext{net_request_id, root_span_id};

  std::shared_ptr<CompletionRouter> router = router_;
  const int loop_index = conn->loop_index;
  const uint64_t conn_id = conn->id;
  router->in_flight.fetch_add(1, std::memory_order_acq_rel);
  ++conn->in_flight;

  Status admitted = serve_->Submit(
      query,
      [router, loop_index, conn_id, start_ns, root_span_id,
       net_request_id](const RouteAnswer& answer) {
        // Serve-worker thread: encode here, ship bytes to the owning loop.
        Completion item;
        item.conn_id = conn_id;
        item.start_ns = start_ns;
        item.root_span_id = root_span_id;
        item.net_request_id = net_request_id;
        if (answer.status.ok()) {
          std::vector<uint8_t> payload;
          EncodeRouteAnswerPayload(answer, &payload);
          EncodeNetFrame(answer.client_request_id, NetOpcode::kRouteAnswer,
                         payload.data(), payload.size(), &item.bytes);
        } else {
          std::vector<uint8_t> payload;
          EncodeErrorPayload(answer.status, &payload);
          EncodeNetFrame(answer.client_request_id, NetOpcode::kError,
                         payload.data(), payload.size(), &item.bytes);
        }
        const bool ok = answer.status.ok();
        {
          std::lock_guard<std::mutex> lock(router->mu);
          if (router->server != nullptr) {
            if (ok) {
              router->server->queries_answered_.fetch_add(
                  1, std::memory_order_relaxed);
            } else {
              router->server->queries_failed_.fetch_add(
                  1, std::memory_order_relaxed);
            }
            router->server->PostCompletion(loop_index, std::move(item));
          } else {
            router->dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
        router->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      },
      submit);

  if (!admitted.ok()) {
    // Shed at the serve queue between the QueueFull probe and Push — the
    // callback was not retained, answer inline.
    router->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    --conn->in_flight;
    reject(std::move(admitted), &shed_queue_full_);
  }
}

void SocketServer::ApplyCompletion(EventLoop* loop, Completion* item) {
  auto it = loop->conns.find(item->conn_id);
  if (it == loop->conns.end()) {
    // The connection died while the answer was in flight.
    router_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Connection* conn = it->second.get();
  if (conn->in_flight > 0) --conn->in_flight;
  const uint64_t apply_ns = TraceRecorder::NowNs();
  conn->out.insert(conn->out.end(), item->bytes.begin(), item->bytes.end());
  unflushed_bytes_.fetch_add(item->bytes.size(), std::memory_order_relaxed);
  if (!TryWrite(conn)) {
    CloseConnection(loop, conn);
    return;
  }
  const uint64_t done_ns = TraceRecorder::NowNs();
  if (item->start_ns != 0) {
    std::lock_guard<std::mutex> lock(latency_mu_);
    wire_latency_.Add(1e-9 * static_cast<double>(done_ns - item->start_ns));
  }
  if (item->root_span_id != 0 && TraceRecorder::Enabled()) {
    TraceRecorder::Global().RecordSpan(
        "net/write", apply_ns, done_ns,
        TraceContext{item->net_request_id, item->root_span_id});
    // Close the root retrospectively now that the request's extent is
    // known; its span id was fixed up front so the children already point
    // at it.
    TraceRecorder::Global().Record("net/request", item->start_ns, done_ns,
                                  TraceEvent::kNoArg, item->root_span_id,
                                  /*parent_span_id=*/0, item->net_request_id);
  }
  MaybeClose(loop, conn);
}

// --- HTTP -----------------------------------------------------------------

void SocketServer::ProcessHttp(EventLoop* loop, Connection* conn) {
  while (true) {
    HttpRequest req;
    const HttpParser::Result r = conn->http.Next(&req);
    if (r == HttpParser::Result::kNeedMore) return;
    if (r == HttpParser::Result::kBadRequest) {
      http_bad_request_.fetch_add(1, std::memory_order_relaxed);
      const size_t before = conn->out.size();
      WriteHttpResponse(400, "text/plain", "bad request\n", &conn->out);
      unflushed_bytes_.fetch_add(conn->out.size() - before,
                                 std::memory_order_relaxed);
      conn->close_after_write = true;
      break;
    }
    if (r == HttpParser::Result::kTooLarge) {
      http_too_large_.fetch_add(1, std::memory_order_relaxed);
      const size_t before = conn->out.size();
      WriteHttpResponse(431, "text/plain", "request too large\n", &conn->out);
      unflushed_bytes_.fetch_add(conn->out.size() - before,
                                 std::memory_order_relaxed);
      conn->close_after_write = true;
      break;
    }
    ServeHttpRequest(conn, req);
    if (req.Header("connection") == "close") {
      conn->close_after_write = true;
      break;
    }
  }
  if (!TryWrite(conn)) {
    CloseConnection(loop, conn);
    return;
  }
  MaybeClose(loop, conn);
}

void SocketServer::ServeHttpRequest(Connection* conn, const HttpRequest& req) {
  auto respond = [&](int code, const std::string& type,
                     const std::string& body) {
    const size_t before = conn->out.size();
    WriteHttpResponse(code, type, body, &conn->out);
    unflushed_bytes_.fetch_add(conn->out.size() - before,
                               std::memory_order_relaxed);
  };

  // Endpoints route on the path; the query string (everything after '?')
  // only matters to the /debug endpoints and is bounded before parsing.
  std::string path, query;
  SplitTarget(req.target, &path, &query);

  if (path == "/metrics") {
    if (req.method != "GET") {
      http_method_not_allowed_.fetch_add(1, std::memory_order_relaxed);
      respond(405, "text/plain", "method not allowed\n");
      return;
    }
    http_metrics_.fetch_add(1, std::memory_order_relaxed);
    respond(200, "text/plain; version=0.0.4",
            MetricsExporter::ExportPrometheus());
    return;
  }
  if (path == "/health") {
    if (req.method != "GET") {
      http_method_not_allowed_.fetch_add(1, std::memory_order_relaxed);
      respond(405, "text/plain", "method not allowed\n");
      return;
    }
    http_health_.fetch_add(1, std::memory_order_relaxed);
    const HealthSnapshot snapshot =
        options_.health_source ? options_.health_source() : HealthSnapshot();
    respond(200, "application/json", MetricsExporter::HealthToJson(snapshot));
    return;
  }
  if (path == "/debug/traces") {
    if (req.method != "GET") {
      http_method_not_allowed_.fetch_add(1, std::memory_order_relaxed);
      respond(405, "text/plain", "method not allowed\n");
      return;
    }
    if (query.size() > kMaxDebugQueryBytes) {
      http_bad_request_.fetch_add(1, std::memory_order_relaxed);
      respond(400, "text/plain", "query string too long\n");
      return;
    }
    uint64_t n = kDefaultDebugTraces;
    switch (ParseQueryParamU64(query, "n", &n)) {
      case QueryParamResult::kBad:
        http_bad_request_.fetch_add(1, std::memory_order_relaxed);
        respond(400, "text/plain", "bad query parameter: n\n");
        return;
      case QueryParamResult::kOk:
        if (n == 0 || n > kMaxDebugTraces) {
          http_bad_request_.fetch_add(1, std::memory_order_relaxed);
          respond(400, "text/plain",
                  "bad query parameter: n must be in [1, " +
                      std::to_string(kMaxDebugTraces) + "]\n");
          return;
        }
        break;
      case QueryParamResult::kAbsent:
        break;
    }
    http_debug_traces_.fetch_add(1, std::memory_order_relaxed);
    respond(200, "application/json",
            FlightRecorder::Global().ToChromeTraceJson(
                static_cast<size_t>(n)));
    return;
  }
  if (path == "/debug/flight") {
    if (req.method != "GET") {
      http_method_not_allowed_.fetch_add(1, std::memory_order_relaxed);
      respond(405, "text/plain", "method not allowed\n");
      return;
    }
    std::string dump = FlightRecorder::Global().LatestDumpJson();
    if (dump.empty()) {
      http_not_found_.fetch_add(1, std::memory_order_relaxed);
      respond(404, "text/plain", "no flight dump\n");
      return;
    }
    http_debug_flight_.fetch_add(1, std::memory_order_relaxed);
    respond(200, "application/json", dump);
    return;
  }
  if (path == "/query") {
    if (req.method != "POST") {
      http_method_not_allowed_.fetch_add(1, std::memory_order_relaxed);
      respond(405, "text/plain", "method not allowed\n");
      return;
    }
    const Status submitted = SubmitHttpQuery(conn, req);
    if (!submitted.ok()) {
      const int code =
          submitted.code() == StatusCode::kInvalidArgument ? 400 : 503;
      if (code == 400) {
        http_bad_request_.fetch_add(1, std::memory_order_relaxed);
      }
      respond(code, "application/json",
              "{\"status\":\"error\",\"code\":" +
                  std::to_string(static_cast<int>(submitted.code())) +
                  ",\"message\":\"" + JsonEscape(submitted.message()) +
                  "\"}");
    }
    return;
  }
  http_not_found_.fetch_add(1, std::memory_order_relaxed);
  respond(404, "text/plain", "not found\n");
}

Status SocketServer::SubmitHttpQuery(Connection* conn,
                                     const HttpRequest& req) {
  if (serve_ == nullptr) {
    return Status::FailedPrecondition("net: no serve backend");
  }
  // Queue-full probe before the body is parsed — the HTTP arm of
  // shed-before-deserialize.
  if (serve_->QueueFull()) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("net: serve queue full");
  }
  double source = 0, target = 0;
  if (!ExtractJsonNumber(req.body, "source", &source) ||
      !ExtractJsonNumber(req.body, "target", &target)) {
    return Status::InvalidArgument(
        "net: body must be JSON with numeric source/target");
  }
  RouteQuery query;
  query.source = static_cast<int>(source);
  query.target = static_cast<int>(target);
  double v = 0;
  if (ExtractJsonNumber(req.body, "k", &v)) query.k = static_cast<int>(v);
  if (ExtractJsonNumber(req.body, "depart_seconds", &v)) {
    query.depart_seconds = v;
  }
  if (ExtractJsonNumber(req.body, "arrival_deadline_seconds", &v)) {
    query.arrival_deadline_seconds = v;
  }
  if (ExtractJsonNumber(req.body, "snapshot_id", &v)) {
    query.snapshot_id = static_cast<int>(v);
  }
  uint64_t client_request_id = 0;
  if (ExtractJsonNumber(req.body, "request_id", &v) && v >= 0) {
    client_request_id = static_cast<uint64_t>(v);
  }

  SubmitOptions submit;
  submit.queue_budget_seconds = options_.queue_budget_seconds;
  if (ExtractJsonNumber(req.body, "priority", &v)) {
    submit.priority = static_cast<int>(v);
  }
  ExtractJsonString(req.body, "tenant", &submit.tenant_id);
  submit.client_request_id = client_request_id;

  std::shared_ptr<CompletionRouter> router = router_;
  const int loop_index = conn->loop_index;
  const uint64_t conn_id = conn->id;
  const uint64_t start_ns =
      conn->request_start_ns != 0 ? conn->request_start_ns
                                  : TraceRecorder::NowNs();
  router->in_flight.fetch_add(1, std::memory_order_acq_rel);
  ++conn->in_flight;

  Status admitted = serve_->Submit(
      query,
      [router, loop_index, conn_id, start_ns](const RouteAnswer& answer) {
        std::ostringstream body;
        if (answer.status.ok()) {
          body << "{\"status\":\"ok\",\"code\":0"
               << ",\"cost_mean_seconds\":"
               << JsonNumber(answer.cost_mean_seconds)
               << ",\"on_time_probability\":"
               << JsonNumber(answer.on_time_probability)
               << ",\"num_candidates\":" << answer.num_candidates
               << ",\"request_id\":" << answer.client_request_id
               << ",\"route_edges\":[";
          for (size_t i = 0; i < answer.route.edges.size(); ++i) {
            if (i) body << ",";
            body << answer.route.edges[i];
          }
          body << "]}";
        } else {
          body << "{\"status\":\"error\",\"code\":"
               << static_cast<int>(answer.status.code()) << ",\"message\":\""
               << JsonEscape(answer.status.message()) << "\",\"request_id\":"
               << answer.client_request_id << "}";
        }
        Completion item;
        item.conn_id = conn_id;
        item.start_ns = start_ns;
        const int code = answer.status.ok() ? 200 : 503;
        WriteHttpResponse(code, "application/json", body.str(), &item.bytes);
        const bool ok = answer.status.ok();
        {
          std::lock_guard<std::mutex> lock(router->mu);
          if (router->server != nullptr) {
            if (ok) {
              router->server->http_query_.fetch_add(
                  1, std::memory_order_relaxed);
            }
            router->server->PostCompletion(loop_index, std::move(item));
          } else {
            router->dropped.fetch_add(1, std::memory_order_relaxed);
          }
        }
        router->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      },
      submit);

  if (!admitted.ok()) {
    router->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    --conn->in_flight;
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }
  return admitted;
}

// --- Stats / metrics ------------------------------------------------------

NetStatsSnapshot SocketServer::Stats() const {
  NetStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.shed_conn_cap = shed_conn_cap_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.frames.bytes_consumed =
      frame_bytes_consumed_.load(std::memory_order_relaxed);
  s.frames.frames_accepted = frames_accepted_.load(std::memory_order_relaxed);
  s.frames.rejected_bad_length =
      frames_bad_length_.load(std::memory_order_relaxed);
  s.frames.rejected_bad_crc = frames_bad_crc_.load(std::memory_order_relaxed);
  s.frames.resync_bytes = frame_resync_bytes_.load(std::memory_order_relaxed);
  s.rejected_bad_opcode = rejected_bad_opcode_.load(std::memory_order_relaxed);
  s.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.http_metrics = http_metrics_.load(std::memory_order_relaxed);
  s.http_health = http_health_.load(std::memory_order_relaxed);
  s.http_query = http_query_.load(std::memory_order_relaxed);
  s.http_debug_traces = http_debug_traces_.load(std::memory_order_relaxed);
  s.http_debug_flight = http_debug_flight_.load(std::memory_order_relaxed);
  s.http_bad_request = http_bad_request_.load(std::memory_order_relaxed);
  s.http_not_found = http_not_found_.load(std::memory_order_relaxed);
  s.http_method_not_allowed =
      http_method_not_allowed_.load(std::memory_order_relaxed);
  s.http_too_large = http_too_large_.load(std::memory_order_relaxed);
  s.completions_dropped =
      router_ ? router_->dropped.load(std::memory_order_relaxed) : 0;
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    s.wire_latency = wire_latency_;
  }
  return s;
}

void SocketServer::RegisterMetricsSources() {
  MetricsExporter::RegisterSource(
      "net",
      [this](const std::string& prefix) {
        return MetricsExporter::NetToPrometheus(Stats(), prefix);
      },
      [this] { return MetricsExporter::NetToJson(Stats()); });
  if (serve_ != nullptr) {
    QueryService* serve = serve_;
    MetricsExporter::RegisterSource(
        "serve",
        [serve](const std::string& prefix) {
          return MetricsExporter::ServeToPrometheus(serve->Stats(), prefix);
        },
        [serve] { return MetricsExporter::ServeToJson(serve->Stats()); });
  }
  // Observability self-metrics ride the same registry, so GET /metrics
  // carries tsdm_trace_dropped_total and the tsdm_flight_* families
  // whenever the front door is up. Both wrap process-global singletons —
  // no lifetime hazard, but unregistered symmetrically anyway.
  MetricsExporter::RegisterSource(
      "trace",
      [](const std::string& prefix) {
        return MetricsExporter::TraceToPrometheus(TraceRecorder::Global(),
                                                  prefix);
      },
      [] { return MetricsExporter::TraceToJson(TraceRecorder::Global()); });
  MetricsExporter::RegisterSource(
      "flight",
      [](const std::string& prefix) {
        return MetricsExporter::FlightToPrometheus(
            FlightRecorder::Global().Stats(), prefix);
      },
      [] {
        return MetricsExporter::FlightToJson(FlightRecorder::Global().Stats());
      });
}

void SocketServer::UnregisterMetricsSources() {
  MetricsExporter::UnregisterSource("net");
  if (serve_ != nullptr) MetricsExporter::UnregisterSource("serve");
  MetricsExporter::UnregisterSource("trace");
  MetricsExporter::UnregisterSource("flight");
}

}  // namespace tsdm
