#include "src/net/net_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tsdm {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("net client: ") + what + ": " +
                          strerror(errno));
}

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

}  // namespace

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
    next_request_id_ = other.next_request_id_;
    parser_ = std::move(other.parser_);
    pending_ = std::move(other.pending_);
  }
  return *this;
}

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::FailedPrecondition("net client: connected");
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("net client: bad IPv4 address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return Errno("connect");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

Status NetClient::SendRaw(const uint8_t* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  return WriteAll(fd_, data, size);
}

Status NetClient::ReceiveFrame(NetFrame* out) {
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  while (pending_.empty()) {
    uint8_t buf[16 * 1024];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser_.Consume(buf, static_cast<size_t>(n), &pending_);
      continue;
    }
    if (n == 0) {
      return Status::DataLoss("net client: connection closed by server");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  *out = std::move(pending_.front());
  pending_.erase(pending_.begin());
  return Status::OK();
}

Status NetClient::Ping() {
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> frame;
  EncodeNetFrame(id, NetOpcode::kPing, nullptr, 0, &frame);
  TSDM_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size()));
  NetFrame reply;
  TSDM_RETURN_IF_ERROR(ReceiveFrame(&reply));
  if (reply.request_id != id) {
    return Status::Internal("net client: ping answered with wrong id");
  }
  if (static_cast<NetOpcode>(reply.opcode) != NetOpcode::kPong) {
    return Status::Internal("net client: ping answered with wrong opcode");
  }
  return Status::OK();
}

Status NetClient::SendQuery(const RouteQuery& query, uint64_t* request_id) {
  return SendQuery(query, QueryOptions(), request_id);
}

Status NetClient::SendQuery(const RouteQuery& query,
                            const QueryOptions& options,
                            uint64_t* request_id) {
  if (fd_ < 0) return Status::FailedPrecondition("net client: not connected");
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  EncodeRouteQueryPayloadEx(query, options.priority, options.tenant_id,
                            &payload);
  std::vector<uint8_t> frame;
  EncodeNetFrame(id, NetOpcode::kRouteQuery, payload.data(), payload.size(),
                 &frame);
  TSDM_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size()));
  if (request_id != nullptr) *request_id = id;
  return Status::OK();
}

Status NetClient::ReceiveAnswer(uint64_t* request_id, WireRouteAnswer* out) {
  NetFrame reply;
  TSDM_RETURN_IF_ERROR(ReceiveFrame(&reply));
  if (request_id != nullptr) *request_id = reply.request_id;
  switch (static_cast<NetOpcode>(reply.opcode)) {
    case NetOpcode::kRouteAnswer:
      return DecodeRouteAnswerPayload(reply.payload.data(),
                                      reply.payload.size(), out);
    case NetOpcode::kError: {
      const Status rejected =
          DecodeErrorPayload(reply.payload.data(), reply.payload.size());
      *out = WireRouteAnswer();
      out->status_code = rejected.code();
      return Status::OK();
    }
    default:
      return Status::Internal("net client: unexpected answer opcode");
  }
}

Status NetClient::Query(const RouteQuery& query, WireRouteAnswer* out) {
  return Query(query, QueryOptions(), out);
}

Status NetClient::Query(const RouteQuery& query, const QueryOptions& options,
                        WireRouteAnswer* out) {
  uint64_t sent_id = 0;
  TSDM_RETURN_IF_ERROR(SendQuery(query, options, &sent_id));
  uint64_t got_id = 0;
  TSDM_RETURN_IF_ERROR(ReceiveAnswer(&got_id, out));
  if (got_id != sent_id) {
    return Status::Internal("net client: answer id mismatch");
  }
  return Status::OK();
}

// --- HTTP -----------------------------------------------------------------

Status NetClient::HttpExchange(const std::string& host, uint16_t port,
                               const std::string& request,
                               HttpResponse* out) {
  NetClient conn;
  TSDM_RETURN_IF_ERROR(conn.Connect(host, port));
  TSDM_RETURN_IF_ERROR(
      WriteAll(conn.fd_, reinterpret_cast<const uint8_t*>(request.data()),
               request.size()));
  // Connection: close — read to EOF, then split the response.
  std::string raw;
  while (true) {
    char buf[16 * 1024];
    const ssize_t n = recv(conn.fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    return Errno("recv");
  }
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::DataLoss("net client: truncated HTTP response");
  }
  const std::string head = raw.substr(0, head_end);
  out->body = raw.substr(head_end + 4);
  out->headers.clear();
  size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    if (first) {
      first = false;
      // "HTTP/1.1 200 OK"
      const size_t sp = line.find(' ');
      if (sp == std::string::npos) {
        return Status::DataLoss("net client: bad HTTP status line");
      }
      out->status_code = std::atoi(line.c_str() + sp + 1);
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::string name = line.substr(0, colon);
        std::transform(name.begin(), name.end(), name.begin(), [](char c) {
          return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        });
        size_t v = colon + 1;
        while (v < line.size() && line[v] == ' ') ++v;
        out->headers.emplace_back(std::move(name), line.substr(v));
      }
    }
    line_start = line_end + 2;
  }
  return Status::OK();
}

Status NetClient::HttpGet(const std::string& host, uint16_t port,
                          const std::string& target, HttpResponse* out) {
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  return HttpExchange(host, port, request, out);
}

Status NetClient::HttpPost(const std::string& host, uint16_t port,
                           const std::string& target,
                           const std::string& content_type,
                           const std::string& body, HttpResponse* out) {
  const std::string request =
      "POST " + target + " HTTP/1.1\r\nHost: " + host +
      "\r\nContent-Type: " + content_type +
      "\r\nContent-Length: " + std::to_string(body.size()) +
      "\r\nConnection: close\r\n\r\n" + body;
  return HttpExchange(host, port, request, out);
}

}  // namespace tsdm
