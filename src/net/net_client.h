#ifndef TSDM_NET_NET_CLIENT_H_
#define TSDM_NET_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/net/wire.h"

namespace tsdm {

/// Blocking client for the binary wire protocol — the counterpart tests,
/// benches, and examples use to talk to a SocketServer. One TCP connection
/// per client; requests may be pipelined (SendQuery repeatedly, then
/// ReceiveFrame/ReceiveAnswer to drain) or issued synchronously (Query,
/// Ping). Not thread-safe: one thread per client, like one connection per
/// event loop on the server side.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept { *this = std::move(other); }
  NetClient& operator=(NetClient&& other) noexcept;

  /// Connects to host:port (numeric IPv4, e.g. "127.0.0.1").
  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Round-trips a ping frame.
  Status Ping();

  /// Per-query scheduling fields carried in the extended kRouteQuery
  /// payload. Defaults encode the legacy 32-byte form, byte-identical to
  /// the pre-tenant protocol.
  struct QueryOptions {
    int priority = 0;        ///< scheduling class, see SubmitOptions
    std::string tenant_id;   ///< workload tenant ("" = "default")
  };

  /// Synchronous route query: sends one frame, blocks for its answer.
  /// Non-OK Status is a transport/protocol failure; an application-level
  /// rejection arrives as out->status_code != kOk.
  Status Query(const RouteQuery& query, WireRouteAnswer* out);
  Status Query(const RouteQuery& query, const QueryOptions& options,
               WireRouteAnswer* out);

  /// Pipelining surface: sends a query frame without waiting. The assigned
  /// request id comes back in *request_id for matching the answer.
  Status SendQuery(const RouteQuery& query, uint64_t* request_id);
  Status SendQuery(const RouteQuery& query, const QueryOptions& options,
                   uint64_t* request_id);

  /// Blocks for the next frame from the server (any opcode).
  Status ReceiveFrame(NetFrame* out);

  /// Blocks for the next answer frame and decodes it: a kRouteAnswer fills
  /// *out; a kError frame fills out->status_code (and returns OK — the
  /// transport worked, the request was rejected). *request_id gets the
  /// echoed id either way.
  Status ReceiveAnswer(uint64_t* request_id, WireRouteAnswer* out);

  /// Writes raw bytes to the socket — the hostile-input hook for protocol
  /// tests (corrupt frames, partial frames, garbage).
  Status SendRaw(const uint8_t* data, size_t size);

  /// One-shot HTTP/1.1 exchange against the same port (separate
  /// connection, Connection: close).
  struct HttpResponse {
    int status_code = 0;
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased
  };
  static Status HttpGet(const std::string& host, uint16_t port,
                        const std::string& target, HttpResponse* out);
  static Status HttpPost(const std::string& host, uint16_t port,
                         const std::string& target,
                         const std::string& content_type,
                         const std::string& body, HttpResponse* out);

 private:
  static Status HttpExchange(const std::string& host, uint16_t port,
                             const std::string& request, HttpResponse* out);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameParser parser_;
  std::vector<NetFrame> pending_;  ///< frames parsed ahead of consumption
};

}  // namespace tsdm

#endif  // TSDM_NET_NET_CLIENT_H_
