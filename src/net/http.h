#ifndef TSDM_NET_HTTP_H_
#define TSDM_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace tsdm {

/// One parsed HTTP/1.1 request: method, target, headers (names lowercased),
/// and the body (sized by Content-Length; chunked encoding is not
/// supported — the front door's endpoints never need it).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the first header named `name` (lowercase), or "" if absent.
  const std::string& Header(const std::string& name) const;
};

/// Incremental HTTP/1.1 request parser for the minimal front-door surface.
/// Bytes are fed chunk by chunk with arbitrary split points (headers may be
/// cut anywhere, including mid-token); complete requests come out one at a
/// time, so pipelined requests on one connection parse in order.
///
/// Hard limits bound hostile input: the request line, the header block, and
/// the body each have a cap, and exceeding one is a terminal parse error
/// (the connection should be answered with the matching status and closed).
///
/// Single-threaded: one parser per connection, driven by its event loop.
class HttpParser {
 public:
  struct Limits {
    size_t max_request_line = 4096;
    size_t max_header_bytes = 8192;
    size_t max_body_bytes = 64 * 1024;
  };

  enum class Result {
    kNeedMore,    ///< no complete request buffered yet
    kRequest,     ///< *out holds a complete request; call again for the next
    kBadRequest,  ///< malformed request line / headers / Content-Length (400)
    kTooLarge,    ///< a limit was exceeded (431 for headers, 413 for body)
  };

  HttpParser() : HttpParser(Limits()) {}
  explicit HttpParser(Limits limits) : limits_(limits) {}

  /// Appends `size` bytes to the connection buffer.
  void Feed(const uint8_t* data, size_t size);

  /// Tries to parse one complete request from the buffer. kRequest fills
  /// *out and consumes the request's bytes (leftover bytes stay buffered
  /// for the next — pipelined — request). kBadRequest / kTooLarge are
  /// terminal: the parser stays in the error state until Reset().
  Result Next(HttpRequest* out);

  /// Clears all buffered bytes and any error state.
  void Reset();

  size_t BufferedBytes() const { return buffer_.size(); }

 private:
  Limits limits_;
  std::string buffer_;
  Result error_ = Result::kNeedMore;  ///< sticky terminal error, if any
};

/// Serializes a minimal HTTP/1.1 response with Content-Length and
/// Connection: keep-alive, appending the bytes to *out.
void WriteHttpResponse(int status_code, const std::string& content_type,
                       const std::string& body, std::vector<uint8_t>* out);

/// Standard reason phrase for the handful of codes the front door emits.
const char* HttpReasonPhrase(int status_code);

/// Extracts a top-level numeric field from a flat JSON object, e.g.
/// ExtractJsonNumber("{\"source\": 3}", "source", &v). Good enough for the
/// POST /query body — nested objects and string escapes inside values are
/// out of scope by design. Returns false when the key is absent or its
/// value is not a number.
bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out);

/// String sibling of ExtractJsonNumber: extracts a top-level string field
/// ("tenant" in the POST /query body). Handles \" and \\ escapes inside
/// the value; same flat-object scope. Returns false when the key is absent
/// or its value is not a string.
bool ExtractJsonString(const std::string& json, const std::string& key,
                       std::string* out);

/// Splits a request target at the first '?' into the path and the query
/// string ("/debug/traces?n=5" -> path "/debug/traces", query "n=5"; no
/// '?' leaves query empty). The path is what endpoint routing matches on.
void SplitTarget(const std::string& target, std::string* path,
                 std::string* query);

/// Outcome of looking one key up in a URL query string. kBad covers every
/// hostile shape — missing value ("n"/"n="), non-numeric ("n=abc"),
/// trailing junk ("n=5x"), overflow — so an endpoint maps it straight to a
/// typed 400 instead of guessing.
enum class QueryParamResult {
  kOk,      ///< key present and parsed; *out is set
  kAbsent,  ///< key not in the query string (apply the endpoint default)
  kBad,     ///< key present but its value is not a valid uint64
};

/// Looks `key` up in a query string of the form "a=1&b=2" and parses its
/// value as an unsigned decimal integer. First occurrence wins. No
/// percent-decoding — the front door's parameters are plain integers.
QueryParamResult ParseQueryParamU64(const std::string& query,
                                    const std::string& key, uint64_t* out);

}  // namespace tsdm

#endif  // TSDM_NET_HTTP_H_
