#ifndef TSDM_NET_WIRE_H_
#define TSDM_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/serve/request_queue.h"

namespace tsdm {

/// Binary request/response frame — the compact length-prefixed format the
/// network front door speaks. Same framing discipline as the tick format
/// (src/ingest/tick_codec.h): a magic byte, an explicit length, and a
/// trailing CRC-32 that covers the header too, so a corrupted length byte
/// fails the checksum instead of silently reframing the stream. All
/// integers little-endian:
///
///   offset  size  field
///   0       1     magic 0xC9
///   1       4     u32 body length L (L = 9 + payload size, L in [9, 2^20])
///   5       8     u64 request id (client-assigned, echoed in the response)
///   13      1     u8 opcode
///   14      L-9   payload (opcode-specific, see below)
///   5+L     4     CRC-32 (IEEE) over bytes [0, 5+L)
///
/// Frame size on the wire = 9 + L. Request ids are an end-to-end
/// correlation handle: the server never interprets them beyond echoing
/// them, so clients may pipeline any number of requests on one connection
/// and match answers by id.
inline constexpr uint8_t kNetFrameMagic = 0xC9;
inline constexpr size_t kNetFrameHeaderSize = 14;  ///< magic..opcode
inline constexpr size_t kNetBodyMinSize = 9;       ///< request id + opcode
inline constexpr size_t kNetBodyMaxSize = 1 << 20;
inline constexpr size_t kNetFrameOverhead = 9;     ///< magic+len+crc wrap

/// Request opcodes (client -> server) occupy [0x01, 0x7E]; response opcodes
/// (server -> client) are the request opcode | 0x80. 0x7F is the typed
/// error response any request can receive instead of its success response.
enum class NetOpcode : uint8_t {
  kPing = 0x01,        ///< empty payload; answered by kPong
  kRouteQuery = 0x02,  ///< RouteQuery payload; answered by kRouteAnswer
  kError = 0x7F,       ///< u8 status code | UTF-8 message
  kPong = 0x81,        ///< empty payload
  kRouteAnswer = 0x82, ///< see EncodeRouteAnswerPayload
};

/// One parsed frame: the body fields with the framing stripped.
struct NetFrame {
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  std::vector<uint8_t> payload;
};

/// Exact bookkeeping of everything a FrameParser has seen, mirroring
/// TickParserStats: every byte is inside an accepted frame, inside a
/// rejected frame, skipped during resynchronization, or still pending.
struct NetFrameStats {
  uint64_t bytes_consumed = 0;
  uint64_t frames_accepted = 0;
  uint64_t rejected_bad_length = 0;  ///< body length outside [9, 2^20]
  uint64_t rejected_bad_crc = 0;     ///< CRC mismatch (corruption)
  /// Bytes skipped hunting for the next magic byte (garbage between frames
  /// and the debris of rejected frames).
  uint64_t resync_bytes = 0;

  uint64_t RejectedTotal() const {
    return rejected_bad_length + rejected_bad_crc;
  }
};

/// Incremental parser for the net frame format: bytes go in chunk by chunk
/// with arbitrary split points, validated NetFrames come out. Designed for
/// hostile input exactly like the tick parser — no byte sequence may crash
/// it or desynchronize it past the next intact frame. After any malformed
/// frame it resynchronizes by scanning forward one byte at a time for the
/// next magic byte, so a single flipped byte costs at most one frame.
///
/// Single-threaded: one parser per connection, driven by that connection's
/// event loop.
class FrameParser {
 public:
  /// Consumes `size` bytes, appending every accepted frame to *out (not
  /// cleared). Returns the number of frames appended. Partial trailing
  /// frames are buffered until the next call; the pending buffer is
  /// bounded by the maximum frame size.
  size_t Consume(const uint8_t* data, size_t size, std::vector<NetFrame>* out);

  const NetFrameStats& stats() const { return stats_; }

  /// The most recent rejection, as a typed Status (OK if nothing was ever
  /// rejected): InvalidArgument for framing, DataLoss for CRC corruption.
  const Status& last_error() const { return last_error_; }

  /// Bytes buffered waiting for the rest of a frame.
  size_t PendingBytes() const { return pending_.size(); }

 private:
  std::vector<uint8_t> pending_;
  NetFrameStats stats_;
  Status last_error_;
};

/// Appends the encoded frame (header, body, CRC) to *out.
void EncodeNetFrame(uint64_t request_id, NetOpcode opcode,
                    const uint8_t* payload, size_t payload_size,
                    std::vector<uint8_t>* out);

// --- Opcode payloads ------------------------------------------------------

/// kRouteQuery payload. Legacy form (32 bytes):
///   i32 source | i32 target | i32 k | i32 snapshot_id |
///   f64 depart_seconds | f64 arrival_deadline_seconds
/// Extended form (34 + tenant_len bytes) appends the scheduling fields:
///   ... | u8 priority | u8 tenant_len | tenant_len bytes of tenant id
/// Decoders accept both — a legacy frame means priority 0 and an empty
/// tenant (the reserved "default"), so old clients keep working against a
/// tenant-aware server and vice versa.
inline constexpr size_t kRouteQueryPayloadSize = 32;
inline constexpr size_t kRouteQueryMaxTenantLen = 255;
void EncodeRouteQueryPayload(const RouteQuery& query,
                             std::vector<uint8_t>* out);
/// Extended encoder: emits the legacy 32-byte form when priority == 0 and
/// the tenant is empty (so default-configured clients stay byte-identical
/// to the old protocol), the extended form otherwise. Tenants longer than
/// kRouteQueryMaxTenantLen are truncated.
void EncodeRouteQueryPayloadEx(const RouteQuery& query, int priority,
                               const std::string& tenant,
                               std::vector<uint8_t>* out);
/// Decodes either form. `priority` / `tenant` (when non-null) receive the
/// extended fields, or 0 / "" for a legacy frame.
Status DecodeRouteQueryPayload(const uint8_t* payload, size_t size,
                               RouteQuery* out, int* priority = nullptr,
                               std::string* tenant = nullptr);

/// kRouteAnswer payload:
///   u8 status code | f64 cost_mean_seconds | f64 on_time_probability |
///   i32 num_candidates | u32 edge count N | u32 edge id x N
/// A non-OK status carries zeroed summary fields and N = 0.
void EncodeRouteAnswerPayload(const RouteAnswer& answer,
                              std::vector<uint8_t>* out);

/// Client-side decoded answer: the wire image of RouteAnswer (the Path is
/// flattened to edge ids — the client does not hold the RoadNetwork).
struct WireRouteAnswer {
  StatusCode status_code = StatusCode::kOk;
  double cost_mean_seconds = 0.0;
  double on_time_probability = 0.0;
  int num_candidates = 0;
  std::vector<uint32_t> edges;
};
Status DecodeRouteAnswerPayload(const uint8_t* payload, size_t size,
                                WireRouteAnswer* out);

/// kError payload: u8 status code | UTF-8 message (rest of payload).
void EncodeErrorPayload(const Status& status, std::vector<uint8_t>* out);
Status DecodeErrorPayload(const uint8_t* payload, size_t size);

}  // namespace tsdm

#endif  // TSDM_NET_WIRE_H_
