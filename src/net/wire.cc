#include "src/net/wire.h"

#include <algorithm>
#include <cstring>

#include "src/common/bytes.h"
#include "src/ingest/crc32.h"

namespace tsdm {

namespace {

/// Body length field of a buffered frame start (requires >= 5 bytes).
uint32_t PeekBodyLen(const uint8_t* p) { return GetU32(p + 1); }

bool BodyLenValid(uint32_t len) {
  return len >= kNetBodyMinSize && len <= kNetBodyMaxSize;
}

}  // namespace

size_t FrameParser::Consume(const uint8_t* data, size_t size,
                            std::vector<NetFrame>* out) {
  stats_.bytes_consumed += size;
  pending_.insert(pending_.end(), data, data + size);

  size_t emitted = 0;
  size_t pos = 0;
  const size_t n = pending_.size();
  while (pos < n) {
    // Resynchronize: skip to the next candidate magic byte.
    if (pending_[pos] != kNetFrameMagic) {
      ++pos;
      ++stats_.resync_bytes;
      continue;
    }
    // Need magic + length to size the frame.
    if (n - pos < 5) break;
    const uint32_t body_len = PeekBodyLen(&pending_[pos]);
    if (!BodyLenValid(body_len)) {
      ++stats_.rejected_bad_length;
      last_error_ = Status::InvalidArgument(
          "net: frame body length " + std::to_string(body_len) +
          " outside [" + std::to_string(kNetBodyMinSize) + ", " +
          std::to_string(kNetBodyMaxSize) + "]");
      ++pos;  // one-byte resync: a bad frame costs at most itself
      ++stats_.resync_bytes;
      continue;
    }
    const size_t frame_size = kNetFrameOverhead + body_len;
    if (n - pos < frame_size) break;  // wait for the rest
    const uint8_t* frame = &pending_[pos];
    const uint32_t want = Crc32(frame, 5 + body_len);
    const uint32_t got = GetU32(frame + 5 + body_len);
    if (want != got) {
      ++stats_.rejected_bad_crc;
      last_error_ = Status::DataLoss("net: frame CRC mismatch");
      ++pos;
      ++stats_.resync_bytes;
      continue;
    }
    NetFrame parsed;
    parsed.request_id = GetU64(frame + 5);
    parsed.opcode = frame[13];
    parsed.payload.assign(frame + kNetFrameHeaderSize,
                          frame + 5 + body_len);
    out->push_back(std::move(parsed));
    ++stats_.frames_accepted;
    ++emitted;
    pos += frame_size;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(pos));
  return emitted;
}

void EncodeNetFrame(uint64_t request_id, NetOpcode opcode,
                    const uint8_t* payload, size_t payload_size,
                    std::vector<uint8_t>* out) {
  const size_t start = out->size();
  PutU8(out, kNetFrameMagic);
  PutU32(out, static_cast<uint32_t>(kNetBodyMinSize + payload_size));
  PutU64(out, request_id);
  PutU8(out, static_cast<uint8_t>(opcode));
  if (payload_size > 0) out->insert(out->end(), payload, payload + payload_size);
  const uint32_t crc = Crc32(out->data() + start, out->size() - start);
  PutU32(out, crc);
}

void EncodeRouteQueryPayload(const RouteQuery& query,
                             std::vector<uint8_t>* out) {
  PutU32(out, static_cast<uint32_t>(query.source));
  PutU32(out, static_cast<uint32_t>(query.target));
  PutU32(out, static_cast<uint32_t>(query.k));
  PutU32(out, static_cast<uint32_t>(query.snapshot_id));
  PutF64(out, query.depart_seconds);
  PutF64(out, query.arrival_deadline_seconds);
}

void EncodeRouteQueryPayloadEx(const RouteQuery& query, int priority,
                               const std::string& tenant,
                               std::vector<uint8_t>* out) {
  EncodeRouteQueryPayload(query, out);
  if (priority == 0 && tenant.empty()) return;  // legacy form, byte-identical
  const size_t tenant_len = std::min(tenant.size(), kRouteQueryMaxTenantLen);
  PutU8(out, static_cast<uint8_t>(std::clamp(priority, 0, 255)));
  PutU8(out, static_cast<uint8_t>(tenant_len));
  out->insert(out->end(), tenant.begin(),
              tenant.begin() + static_cast<long>(tenant_len));
}

Status DecodeRouteQueryPayload(const uint8_t* payload, size_t size,
                               RouteQuery* out, int* priority,
                               std::string* tenant) {
  if (priority != nullptr) *priority = 0;
  if (tenant != nullptr) tenant->clear();
  if (size < kRouteQueryPayloadSize) {
    return Status::InvalidArgument("net: route query payload is " +
                                   std::to_string(size) + " bytes, want >= " +
                                   std::to_string(kRouteQueryPayloadSize));
  }
  out->source = static_cast<int>(GetU32(payload));
  out->target = static_cast<int>(GetU32(payload + 4));
  out->k = static_cast<int>(GetU32(payload + 8));
  out->snapshot_id = static_cast<int>(GetU32(payload + 12));
  out->depart_seconds = GetF64(payload + 16);
  out->arrival_deadline_seconds = GetF64(payload + 24);
  if (size == kRouteQueryPayloadSize) return Status::OK();  // legacy form
  // Extended form: u8 priority | u8 tenant_len | tenant bytes, nothing
  // after — a trailing-length mismatch is a framing error, not padding.
  if (size < kRouteQueryPayloadSize + 2) {
    return Status::InvalidArgument(
        "net: truncated route query scheduling fields");
  }
  const uint8_t prio = payload[kRouteQueryPayloadSize];
  const size_t tenant_len = payload[kRouteQueryPayloadSize + 1];
  if (size != kRouteQueryPayloadSize + 2 + tenant_len) {
    return Status::InvalidArgument(
        "net: route query tenant length mismatch: payload " +
        std::to_string(size) + " bytes, tenant_len " +
        std::to_string(tenant_len));
  }
  if (priority != nullptr) *priority = prio;
  if (tenant != nullptr) {
    tenant->assign(
        reinterpret_cast<const char*>(payload + kRouteQueryPayloadSize + 2),
        tenant_len);
  }
  return Status::OK();
}

void EncodeRouteAnswerPayload(const RouteAnswer& answer,
                              std::vector<uint8_t>* out) {
  PutU8(out, static_cast<uint8_t>(answer.status.code()));
  if (!answer.status.ok()) {
    PutF64(out, 0.0);
    PutF64(out, 0.0);
    PutU32(out, 0);
    PutU32(out, 0);
    return;
  }
  PutF64(out, answer.cost_mean_seconds);
  PutF64(out, answer.on_time_probability);
  PutU32(out, static_cast<uint32_t>(answer.num_candidates));
  PutU32(out, static_cast<uint32_t>(answer.route.edges.size()));
  for (int edge : answer.route.edges) {
    PutU32(out, static_cast<uint32_t>(edge));
  }
}

Status DecodeRouteAnswerPayload(const uint8_t* payload, size_t size,
                                WireRouteAnswer* out) {
  ByteReader reader(payload, size);
  uint8_t code = 0;
  uint32_t candidates = 0;
  uint32_t edge_count = 0;
  if (!reader.ReadU8(&code) || !reader.ReadF64(&out->cost_mean_seconds) ||
      !reader.ReadF64(&out->on_time_probability) ||
      !reader.ReadU32(&candidates) || !reader.ReadU32(&edge_count)) {
    return Status::InvalidArgument("net: truncated route answer payload");
  }
  out->status_code = static_cast<StatusCode>(code);
  out->num_candidates = static_cast<int>(candidates);
  out->edges.clear();
  out->edges.reserve(edge_count);
  for (uint32_t i = 0; i < edge_count; ++i) {
    uint32_t edge = 0;
    if (!reader.ReadU32(&edge)) {
      return Status::InvalidArgument("net: truncated route answer edges");
    }
    out->edges.push_back(edge);
  }
  if (!reader.Done()) {
    return Status::InvalidArgument("net: trailing bytes after route answer");
  }
  return Status::OK();
}

void EncodeErrorPayload(const Status& status, std::vector<uint8_t>* out) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  const std::string& msg = status.message();
  // Bound the message so the error response always fits a frame body.
  const size_t n = std::min(msg.size(), kNetBodyMaxSize - kNetBodyMinSize - 1);
  out->insert(out->end(), msg.data(), msg.data() + n);
}

Status DecodeErrorPayload(const uint8_t* payload, size_t size) {
  if (size < 1) {
    return Status::InvalidArgument("net: empty error payload");
  }
  const StatusCode code = static_cast<StatusCode>(payload[0]);
  std::string msg(reinterpret_cast<const char*>(payload + 1), size - 1);
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
  }
  return Status::Internal("net: unknown wire status code " +
                          std::to_string(static_cast<int>(code)));
}

}  // namespace tsdm
