#ifndef TSDM_NET_SOCKET_SERVER_H_
#define TSDM_NET_SOCKET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/http.h"
#include "src/net/net_stats.h"
#include "src/net/wire.h"
#include "src/obs/health.h"
#include "src/serve/query_service.h"

namespace tsdm {

/// The network front door: an epoll-based non-blocking socket server that
/// exposes the serving layer to remote clients over one listening port
/// speaking two protocols, sniffed from the first byte of each connection:
///
///   0xC9 ........ the compact binary frame protocol (src/net/wire.h) —
///                 pipelined route queries and pings, answered
///                 asynchronously as the serve layer completes them;
///   anything else HTTP/1.1 — GET /metrics (Prometheus text via the
///                 MetricsExporter source registry), GET /health
///                 (HealthSnapshot JSON), POST /query (flat JSON route
///                 query).
///
/// Threading: one listener (owned by event loop 0, edge-triggered accept)
/// plus `event_loops` epoll threads; accepted connections are assigned
/// round-robin and then touched only by their owning loop, so per-
/// connection state (parsers, buffers) is single-threaded by construction.
/// Serve-layer answers arrive on worker threads; each completion is
/// encoded there and posted to the owning loop's inbox (mutex + eventfd
/// wake), which writes it out on the loop thread — the socket is never
/// written from two threads.
///
/// Admission control extends to the socket layer, and every shed happens
/// BEFORE the query payload is deserialized:
///   conn_cap    accept-time: at max_connections the new socket is closed;
///   queue_full  frame-time: QueryService::QueueFull() probe fails — a typed
///               kError(ResourceExhausted) frame answers the request id
///               without decoding its payload;
///   deadline    frame-time: the frame completed more than
///               admission_deadline_seconds after its first byte arrived —
///               the client has likely given up; same typed error answer.
/// Sheds are counted by reason and exported as tsdm_net_sheds_total.
///
/// Tracing: each binary route query roots a `net/request` span (request id
/// namespaced with the high bit: (1<<63) | counter) with children
/// `net/read` (first byte -> frame complete), the serve layer's own
/// `serve/submit` subtree (linked via SubmitOptions::trace_parent), and
/// `net/write` (completion applied -> bytes handed to the kernel).
class SocketServer {
 public:
  struct Options {
    /// TCP port to bind (loopback); 0 picks an ephemeral port, readable
    /// from port() after Start.
    uint16_t port = 0;
    /// Epoll event-loop threads. Loop 0 additionally owns the listener.
    int event_loops = 2;
    /// Accept-time connection cap; above it new sockets are closed
    /// immediately (shed_conn_cap).
    size_t max_connections = 256;
    /// Queue budget handed to SubmitOptions for wire queries.
    double queue_budget_seconds = 0.25;
    /// Frame-time admission deadline: a route-query frame whose last byte
    /// arrives more than this after its first byte is shed before its
    /// payload is decoded (<= 0 disables).
    double admission_deadline_seconds = 0.0;
    /// Snapshot for GET /health; when unset the endpoint serves a default
    /// (empty) HealthSnapshot.
    std::function<HealthSnapshot()> health_source;
    /// Register this server (and, when serve != nullptr, the serve layer)
    /// in the MetricsExporter source registry for the lifetime of
    /// Start..Stop, so GET /metrics serves the aggregate document.
    bool register_metrics_sources = true;
  };

  /// `serve` handles route queries and must outlive Stop(); nullptr makes
  /// query opcodes answer FailedPrecondition (metrics/health still work).
  /// Any QueryService works — a single QueryServer or a ShardRouter
  /// fronting a fleet — so wire clients are shard-oblivious by
  /// construction.
  explicit SocketServer(QueryService* serve) : SocketServer(serve, Options()) {}
  SocketServer(QueryService* serve, Options options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, spawns the event loops, and registers metrics
  /// sources. FailedPrecondition if already started; Internal on socket
  /// errors (the OS error is in the message).
  Status Start();

  /// Drains in-flight wire requests (bounded wait), parks the loops, joins
  /// them, closes every socket, and unregisters metrics sources.
  /// Idempotent.
  void Stop();

  /// The bound port (after Start); 0 before.
  uint16_t port() const { return port_; }

  NetStatsSnapshot Stats() const;

 private:
  struct Connection;
  struct EventLoop;
  /// An encoded response crossing from a serve worker (or another loop)
  /// back to the connection's owning loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> bytes;
    /// Wire-latency sample start (0 = do not record).
    uint64_t start_ns = 0;
    /// net/request root linkage (0 = untraced).
    uint64_t root_span_id = 0;
    uint64_t net_request_id = 0;
  };
  /// Outlives the server in serve-callback captures: completions arriving
  /// after Stop() drop here instead of touching freed loops.
  struct CompletionRouter {
    std::mutex mu;
    SocketServer* server = nullptr;  ///< null once the server stops
    std::atomic<int> in_flight{0};
    std::atomic<uint64_t> dropped{0};
  };

  Status Listen();
  void LoopMain(int loop_index);
  void AcceptReady(EventLoop* loop);
  void AdoptConnection(int fd);
  void HandleReadable(EventLoop* loop, Connection* conn);
  void HandleWritable(EventLoop* loop, Connection* conn);
  void CloseConnection(EventLoop* loop, Connection* conn);
  /// Flushes conn->out as far as the kernel accepts; false on fatal error.
  bool TryWrite(Connection* conn);
  void MaybeClose(EventLoop* loop, Connection* conn);

  void ProcessBinaryFrames(EventLoop* loop, Connection* conn,
                           std::vector<NetFrame>* frames);
  void ProcessHttp(EventLoop* loop, Connection* conn);
  void ServeHttpRequest(Connection* conn, const HttpRequest& req);
  /// Submits a wire route query; writes a typed error frame on rejection.
  void SubmitWireQuery(Connection* conn, const NetFrame& frame);
  Status SubmitHttpQuery(Connection* conn, const HttpRequest& req);

  void PostCompletion(int loop_index, Completion item);
  void ApplyCompletion(EventLoop* loop, Completion* item);
  void WakeLoop(EventLoop* loop);

  void RegisterMetricsSources();
  void UnregisterMetricsSources();

  QueryService* serve_;
  Options options_;

  int listen_fd_ = -1;
  std::atomic<uint16_t> port_{0};
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::shared_ptr<CompletionRouter> router_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint64_t> next_net_request_{1};
  std::atomic<int> next_loop_{0};

  // Counters (written by loop threads, read by Stats()).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<size_t> connections_active_{0};
  std::atomic<uint64_t> shed_conn_cap_{0};
  std::atomic<uint64_t> shed_queue_full_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> frame_bytes_consumed_{0};
  std::atomic<uint64_t> frames_accepted_{0};
  std::atomic<uint64_t> frames_bad_length_{0};
  std::atomic<uint64_t> frames_bad_crc_{0};
  std::atomic<uint64_t> frame_resync_bytes_{0};
  std::atomic<uint64_t> rejected_bad_opcode_{0};
  std::atomic<uint64_t> queries_answered_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> pings_{0};
  std::atomic<uint64_t> http_metrics_{0};
  std::atomic<uint64_t> http_health_{0};
  std::atomic<uint64_t> http_query_{0};
  std::atomic<uint64_t> http_debug_traces_{0};
  std::atomic<uint64_t> http_debug_flight_{0};
  std::atomic<uint64_t> http_bad_request_{0};
  std::atomic<uint64_t> http_not_found_{0};
  std::atomic<uint64_t> http_method_not_allowed_{0};
  std::atomic<uint64_t> http_too_large_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  /// Bytes appended to write buffers and not yet accepted by the kernel —
  /// Stop() waits for this to reach 0 (bounded) before parking the loops.
  std::atomic<uint64_t> unflushed_bytes_{0};

  mutable std::mutex latency_mu_;
  LatencyHistogram wire_latency_;
};

}  // namespace tsdm

#endif  // TSDM_NET_SOCKET_SERVER_H_
