#ifndef TSDM_NET_NET_STATS_H_
#define TSDM_NET_NET_STATS_H_

#include <cstdint>

#include "src/common/histogram_ext.h"
#include "src/net/wire.h"

namespace tsdm {

/// One coherent snapshot of the network front door's counters — the shape
/// MetricsExporter::NetTo* serializes (tsdm_net_* families). Plain data so
/// obs can depend on it without pulling in the socket server.
struct NetStatsSnapshot {
  // Connections.
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  size_t connections_active = 0;

  // Socket-layer admission control: overload shed *before* payload
  // deserialization, by reason. conn_cap closes the connection at accept;
  // queue_full and deadline answer a typed error frame without decoding
  // the query payload.
  uint64_t shed_conn_cap = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_deadline = 0;

  // Binary protocol (aggregated over all connections' FrameParsers).
  NetFrameStats frames;
  uint64_t rejected_bad_opcode = 0;  ///< intact frame, unknown opcode

  // Wire route queries that reached the serve layer.
  uint64_t queries_answered = 0;  ///< answered with kRouteAnswer (status OK)
  uint64_t queries_failed = 0;    ///< answered with kError (any reason)
  uint64_t pings = 0;

  // HTTP endpoint.
  uint64_t http_metrics = 0;             ///< GET /metrics served
  uint64_t http_health = 0;              ///< GET /health served
  uint64_t http_query = 0;               ///< POST /query served OK
  uint64_t http_debug_traces = 0;        ///< GET /debug/traces served
  uint64_t http_debug_flight = 0;        ///< GET /debug/flight served
  uint64_t http_bad_request = 0;         ///< 400
  uint64_t http_not_found = 0;           ///< 404
  uint64_t http_method_not_allowed = 0;  ///< 405
  uint64_t http_too_large = 0;           ///< 413/431

  // Responses whose connection vanished before the answer was ready.
  uint64_t completions_dropped = 0;

  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  /// Wire-level request latency: first byte of the request read ->
  /// response fully handed to the kernel, for binary route queries.
  LatencyHistogram wire_latency;

  uint64_t ShedTotal() const {
    return shed_conn_cap + shed_queue_full + shed_deadline;
  }
  uint64_t HttpErrorsTotal() const {
    return http_bad_request + http_not_found + http_method_not_allowed +
           http_too_large;
  }
};

}  // namespace tsdm

#endif  // TSDM_NET_NET_STATS_H_
