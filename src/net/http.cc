#include "src/net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace tsdm {

namespace {

const std::string kEmpty;

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool TokenValid(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c <= ' ' || c == 0x7f) return false;
  }
  return true;
}

}  // namespace

const std::string& HttpRequest::Header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return kEmpty;
}

void HttpParser::Feed(const uint8_t* data, size_t size) {
  buffer_.append(reinterpret_cast<const char*>(data), size);
}

HttpParser::Result HttpParser::Next(HttpRequest* out) {
  if (error_ != Result::kNeedMore) return error_;

  // Request line + header block end at the first blank line. Tolerate bare
  // LF line endings alongside CRLF (curl always sends CRLF; tests may not).
  const size_t head_end = buffer_.find("\r\n\r\n");
  const size_t head_end_lf = buffer_.find("\n\n");
  size_t head_len, sep_len;
  if (head_end != std::string::npos &&
      (head_end_lf == std::string::npos || head_end < head_end_lf)) {
    head_len = head_end;
    sep_len = 4;
  } else if (head_end_lf != std::string::npos) {
    head_len = head_end_lf;
    sep_len = 2;
  } else {
    // Incomplete head: enforce the limits on what is buffered so an
    // unbounded request line / header flood fails early, not at OOM.
    const size_t line_end = buffer_.find('\n');
    if (line_end == std::string::npos &&
        buffer_.size() > limits_.max_request_line) {
      return error_ = Result::kTooLarge;
    }
    if (buffer_.size() > limits_.max_request_line + limits_.max_header_bytes) {
      return error_ = Result::kTooLarge;
    }
    return Result::kNeedMore;
  }

  // Split the head into lines.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= head_len) {
    size_t eol = buffer_.find('\n', pos);
    if (eol == std::string::npos || eol > head_len) eol = head_len;
    std::string line = buffer_.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    pos = eol + 1;
  }
  if (lines.empty() || lines[0].empty()) return error_ = Result::kBadRequest;
  if (lines[0].size() > limits_.max_request_line) {
    return error_ = Result::kTooLarge;
  }
  if (head_len > limits_.max_request_line + limits_.max_header_bytes) {
    return error_ = Result::kTooLarge;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  HttpRequest req;
  {
    const std::string& line = lines[0];
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.rfind(' ');
    if (sp1 == std::string::npos || sp2 == sp1) {
      return error_ = Result::kBadRequest;
    }
    req.method = line.substr(0, sp1);
    req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.version = line.substr(sp2 + 1);
    if (!TokenValid(req.method) || !TokenValid(req.target) ||
        req.version.rfind("HTTP/", 0) != 0) {
      return error_ = Result::kBadRequest;
    }
  }

  // Headers: NAME ":" VALUE, names lowercased.
  size_t content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos || colon == 0) {
      return error_ = Result::kBadRequest;
    }
    std::string name = ToLower(Trim(lines[i].substr(0, colon)));
    std::string value = Trim(lines[i].substr(colon + 1));
    if (name == "content-length") {
      char* end = nullptr;
      unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return error_ = Result::kBadRequest;
      }
      if (v > limits_.max_body_bytes) return error_ = Result::kTooLarge;
      content_length = static_cast<size_t>(v);
    }
    req.headers.emplace_back(std::move(name), std::move(value));
  }

  const size_t body_start = head_len + sep_len;
  if (buffer_.size() - body_start < content_length) return Result::kNeedMore;
  req.body = buffer_.substr(body_start, content_length);

  // Consume this request; leftover bytes are the next pipelined request.
  buffer_.erase(0, body_start + content_length);
  *out = std::move(req);
  return Result::kRequest;
}

void HttpParser::Reset() {
  buffer_.clear();
  error_ = Result::kNeedMore;
}

const char* HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

void WriteHttpResponse(int status_code, const std::string& content_type,
                       const std::string& body, std::vector<uint8_t>* out) {
  std::string head = "HTTP/1.1 " + std::to_string(status_code) + " " +
                     HttpReasonPhrase(status_code) +
                     "\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: keep-alive\r\n\r\n";
  out->insert(out->end(), head.begin(), head.end());
  out->insert(out->end(), body.begin(), body.end());
}

bool ExtractJsonNumber(const std::string& json, const std::string& key,
                       double* out) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = json.find(quoted);
  if (pos == std::string::npos) return false;
  pos += quoted.size();
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t')) ++pos;
  if (pos >= json.size() || json[pos] != ':') return false;
  ++pos;
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t')) ++pos;
  char* end = nullptr;
  const double v = std::strtod(json.c_str() + pos, &end);
  if (end == json.c_str() + pos) return false;
  *out = v;
  return true;
}

bool ExtractJsonString(const std::string& json, const std::string& key,
                       std::string* out) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = json.find(quoted);
  if (pos == std::string::npos) return false;
  pos += quoted.size();
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t')) ++pos;
  if (pos >= json.size() || json[pos] != ':') return false;
  ++pos;
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\t')) ++pos;
  if (pos >= json.size() || json[pos] != '"') return false;
  ++pos;
  std::string value;
  while (pos < json.size() && json[pos] != '"') {
    if (json[pos] == '\\' && pos + 1 < json.size() &&
        (json[pos + 1] == '"' || json[pos + 1] == '\\')) {
      ++pos;  // unescape \" and \\ — the two escapes JsonEscape produces
    }
    value += json[pos];
    ++pos;
  }
  if (pos >= json.size()) return false;  // unterminated string
  *out = std::move(value);
  return true;
}

void SplitTarget(const std::string& target, std::string* path,
                 std::string* query) {
  const size_t q = target.find('?');
  if (q == std::string::npos) {
    *path = target;
    query->clear();
    return;
  }
  *path = target.substr(0, q);
  *query = target.substr(q + 1);
}

QueryParamResult ParseQueryParamU64(const std::string& query,
                                    const std::string& key, uint64_t* out) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    const std::string name = eq == std::string::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      // "n" (no '=') and "n=" (empty value) are both missing-value shapes.
      if (eq == std::string::npos || eq + 1 >= pair.size()) {
        return QueryParamResult::kBad;
      }
      uint64_t value = 0;
      for (size_t i = eq + 1; i < pair.size(); ++i) {
        const char c = pair[i];
        if (c < '0' || c > '9') return QueryParamResult::kBad;
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (value > (UINT64_MAX - digit) / 10) {
          return QueryParamResult::kBad;  // overflow
        }
        value = value * 10 + digit;
      }
      *out = value;
      return QueryParamResult::kOk;
    }
    pos = amp + 1;
  }
  return QueryParamResult::kAbsent;
}

}  // namespace tsdm
