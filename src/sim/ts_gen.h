#ifndef TSDM_SIM_TS_GEN_H_
#define TSDM_SIM_TS_GEN_H_

#include <vector>

#include "src/common/rng.h"
#include "src/data/correlated_time_series.h"
#include "src/data/time_series.h"

namespace tsdm {

/// One additive sinusoidal seasonal component.
struct SeasonalComponent {
  int period = 24;      ///< in steps
  double amplitude = 1.0;
  double phase = 0.0;   ///< radians
};

/// Specification for a synthetic univariate series:
///   y_t = level + trend*t + sum_k seasonal_k(t) + ar(t) + noise.
/// The AR part is driven by its own innovations so that spectra look like
/// real sensor data rather than pure sinusoids.
struct SeriesSpec {
  double level = 10.0;
  double trend_per_step = 0.0;
  std::vector<SeasonalComponent> seasonal;
  std::vector<double> ar_coefficients;  ///< e.g. {0.6, 0.2}
  double ar_innovation_stddev = 0.5;
  double noise_stddev = 0.2;
};

/// Generates `n` steps from the spec.
std::vector<double> GenerateSeries(const SeriesSpec& spec, int n, Rng* rng);

/// Convenience: a daily-seasonal traffic-like spec (period 24 by default).
SeriesSpec TrafficLikeSpec(int period = 24);

/// Specification for a correlated sensor field: sensors on a jittered grid,
/// values = shared latent field diffused over the k-NN graph + local AR
/// noise. `spatial_strength` in [0,1] controls how much of each sensor's
/// signal is the shared field (1 = fully shared, 0 = independent).
struct CorrelatedFieldSpec {
  int grid_rows = 4;
  int grid_cols = 4;
  double spacing = 100.0;
  int knn = 3;
  double spatial_strength = 0.7;
  /// Steps of delay per grid cell with which the shared field reaches a
  /// sensor (a congestion wave sweeping from cell (0,0)): sensor (r, c)
  /// observes shared[t - delay*(r+c)]. 0 = contemporaneous coupling.
  int propagation_delay = 0;
  SeriesSpec base;  ///< temporal structure of the shared latent field
};

/// Generates a correlated time series of grid_rows*grid_cols sensors over
/// `n` steps.
CorrelatedTimeSeries GenerateCorrelatedField(const CorrelatedFieldSpec& spec,
                                             int n, Rng* rng);

/// Seeded convenience overload: each shard of a batch can be generated
/// independently and reproducibly from `seed` (e.g. base_seed + shard),
/// without threading a shared Rng through parallel call sites.
CorrelatedTimeSeries GenerateCorrelatedField(const CorrelatedFieldSpec& spec,
                                             int n, uint64_t seed);

}  // namespace tsdm

#endif  // TSDM_SIM_TS_GEN_H_
