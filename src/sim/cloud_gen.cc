#include "src/sim/cloud_gen.h"

#include <algorithm>
#include <cmath>

namespace tsdm {

std::vector<double> GenerateCloudDemand(const CloudDemandSpec& spec, int n,
                                        Rng* rng) {
  std::vector<double> demand(n, 0.0);
  // Pre-draw surge events.
  double per_step_rate = spec.surges_per_day / spec.steps_per_day;
  std::vector<std::pair<int, double>> surges;  // (start step, height)
  for (int t = 0; t < n; ++t) {
    if (rng->Bernoulli(std::min(1.0, per_step_rate))) {
      surges.push_back({t, rng->Exponential(1.0 / spec.surge_magnitude)});
    }
  }
  int steps_per_week = spec.steps_per_day * 7;
  for (int t = 0; t < n; ++t) {
    double value = spec.base_demand + spec.trend_per_step * t;
    value += spec.daily_amplitude *
             std::sin(2.0 * M_PI * t / spec.steps_per_day - M_PI / 2.0);
    value += spec.weekly_amplitude *
             std::sin(2.0 * M_PI * t / steps_per_week);
    for (const auto& [start, height] : surges) {
      if (t >= start) {
        value += height * std::exp(-(t - start) / spec.surge_decay_steps);
      }
    }
    value += rng->Normal(0.0, spec.noise_stddev);
    demand[t] = std::max(0.0, value);
  }
  return demand;
}

}  // namespace tsdm
