#ifndef TSDM_SIM_TRAFFIC_SIM_H_
#define TSDM_SIM_TRAFFIC_SIM_H_

#include <vector>

#include "src/common/rng.h"
#include "src/data/correlated_time_series.h"
#include "src/spatial/road_network.h"

namespace tsdm {

/// Ground-truth generative traffic model over a road network.
///
/// Travel time on edge e for a trip departing at time t is
///   T_e = fft_e * (1 + c(t) * (alpha * S + (1 - alpha) * E_e))
/// where fft_e is the free-flow time, c(t) a deterministic time-of-day
/// congestion profile (rush-hour peaks), S a *trip-wide* Gamma severity
/// shared by all edges of the trip, and E_e an independent per-edge Gamma
/// severity. `alpha` (shared_fraction) controls how correlated edge times
/// are along a path — the phenomenon that separates the edge-centric and
/// path-centric uncertainty paradigms ([15] vs. [4]).
struct TrafficSpec {
  double base_congestion = 0.25;   ///< c(t) floor (off-peak)
  double peak_congestion = 1.25;   ///< c(t) at the center of a rush hour
  double morning_peak_hour = 8.0;
  double evening_peak_hour = 17.5;
  double peak_width_hours = 1.5;   ///< Gaussian width of each peak
  double shared_fraction = 0.6;    ///< alpha in [0,1]
  double gamma_shape = 2.0;        ///< severity distribution shape
  double gamma_scale = 0.5;        ///< severity distribution scale
};

class TrafficSimulator {
 public:
  /// The network must outlive the simulator.
  TrafficSimulator(const RoadNetwork* network, const TrafficSpec& spec)
      : network_(network), spec_(spec) {}

  const TrafficSpec& spec() const { return spec_; }

  /// Deterministic congestion level at a time of day (seconds since
  /// midnight; values outside [0, 86400) wrap).
  double CongestionLevel(double time_of_day_seconds) const;

  /// Samples the per-edge travel times of one trip along `edge_path`
  /// departing at `depart_seconds` (drawing one shared severity for the
  /// whole trip). The trip is assumed short relative to the congestion
  /// profile, so c(t) is evaluated once at departure.
  std::vector<double> SamplePathEdgeTimes(const std::vector<int>& edge_path,
                                          double depart_seconds,
                                          Rng* rng) const;

  /// Total trip time: sum of SamplePathEdgeTimes.
  double SamplePathTime(const std::vector<int>& edge_path,
                        double depart_seconds, Rng* rng) const;

  /// Samples the travel time of a single edge on an *independent* trip —
  /// the marginal distribution an edge-centric model trains on.
  double SampleEdgeTime(int edge_id, double depart_seconds, Rng* rng) const;

  /// Mean travel time of an edge at a departure time (analytic).
  double MeanEdgeTime(int edge_id, double depart_seconds) const;

  /// Generates speed observations (m/s) for loop-detector sensors placed on
  /// the given edges: one trip per step per edge, sampled every
  /// `step_seconds` starting at midnight. The sensor graph links edges that
  /// share a node.
  CorrelatedTimeSeries GenerateEdgeSpeedSeries(const std::vector<int>& edges,
                                               int num_steps, int step_seconds,
                                               Rng* rng) const;

 private:
  const RoadNetwork* network_;
  TrafficSpec spec_;
};

}  // namespace tsdm

#endif  // TSDM_SIM_TRAFFIC_SIM_H_
