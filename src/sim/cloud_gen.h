#ifndef TSDM_SIM_CLOUD_GEN_H_
#define TSDM_SIM_CLOUD_GEN_H_

#include <vector>

#include "src/common/rng.h"

namespace tsdm {

/// Synthetic cloud resource-demand generator (MagicScaler-style workload
/// [6]): diurnal + weekly seasonality, mild trend, Gaussian noise, and
/// Poisson-arriving surges with exponential decay — the "unexpected surges"
/// that make uncertainty-aware autoscaling pay off.
struct CloudDemandSpec {
  double base_demand = 100.0;      ///< requests/s scale
  double daily_amplitude = 40.0;
  double weekly_amplitude = 15.0;
  double trend_per_step = 0.0;
  double noise_stddev = 4.0;
  int steps_per_day = 144;         ///< 10-minute resolution
  double surges_per_day = 0.4;     ///< Poisson arrival rate
  double surge_magnitude = 90.0;   ///< mean surge height
  double surge_decay_steps = 10.0; ///< exponential decay constant
};

/// Generates `n` steps of demand (never negative).
std::vector<double> GenerateCloudDemand(const CloudDemandSpec& spec, int n,
                                        Rng* rng);

}  // namespace tsdm

#endif  // TSDM_SIM_CLOUD_GEN_H_
