#ifndef TSDM_SIM_INJECT_H_
#define TSDM_SIM_INJECT_H_

#include <vector>

#include "src/common/rng.h"
#include "src/data/time_series.h"

namespace tsdm {

/// Fault injectors: corrupt clean data in controlled ways so governance and
/// robustness components can be evaluated against known ground truth.

/// Removes entries completely at random at the given rate. Returns the
/// number of entries removed.
size_t InjectMissingMcar(TimeSeries* series, double rate, Rng* rng);

/// Removes contiguous blocks (sensor outages): blocks of `block_length`
/// steps are dropped per channel until roughly `rate` of entries are gone.
/// Returns the number of entries removed.
size_t InjectMissingBlocks(TimeSeries* series, double rate, int block_length,
                           Rng* rng);

/// Kinds of injected anomalies.
enum class AnomalyKind {
  kSpike,       ///< single-point additive outlier
  kLevelShift,  ///< sustained mean shift over a window
  kNoiseBurst,  ///< window of greatly inflated variance
};

/// Ground truth of one injected anomaly.
struct InjectedAnomaly {
  AnomalyKind kind;
  size_t channel;
  size_t start;
  size_t length;
  double magnitude;
};

/// Injects `count` anomalies of the given kind at random positions and
/// returns their ground truth. `magnitude` is expressed in multiples of the
/// channel's standard deviation.
std::vector<InjectedAnomaly> InjectAnomalies(TimeSeries* series,
                                             AnomalyKind kind, int count,
                                             double magnitude, Rng* rng);

/// Builds a per-step 0/1 label vector for one channel from injected ground
/// truth (1 = anomalous step).
std::vector<int> AnomalyLabels(const std::vector<InjectedAnomaly>& anomalies,
                               size_t channel, size_t num_steps);

}  // namespace tsdm

#endif  // TSDM_SIM_INJECT_H_
