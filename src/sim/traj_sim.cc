#include "src/sim/traj_sim.h"

#include <cmath>

#include "src/spatial/shortest_path.h"

namespace tsdm {

SimulatedDrive SimulateDrive(const RoadNetwork& network,
                             const TrafficSimulator& traffic,
                             const std::vector<int>& edge_path,
                             double depart_seconds, const GpsSpec& gps,
                             Rng* rng) {
  SimulatedDrive drive;
  drive.edge_path = edge_path;
  std::vector<double> edge_times =
      traffic.SamplePathEdgeTimes(edge_path, depart_seconds, rng);
  for (double t : edge_times) drive.total_time += t;

  // Exact position as a function of elapsed time: piecewise-linear along
  // each edge at that edge's constant realized speed.
  double elapsed = 0.0;
  double next_sample = 0.0;
  for (size_t i = 0; i < edge_path.size(); ++i) {
    const auto& e = network.edge(edge_path[i]);
    const auto& a = network.node(e.from);
    const auto& b = network.node(e.to);
    double edge_time = edge_times[i];
    while (next_sample <= elapsed + edge_time) {
      double frac = edge_time > 0.0 ? (next_sample - elapsed) / edge_time : 1.0;
      TrajectoryPoint p;
      p.t = depart_seconds + next_sample;
      p.x = a.x + frac * (b.x - a.x);
      p.y = a.y + frac * (b.y - a.y);
      drive.true_positions.Append(p);
      if (!rng->Bernoulli(gps.dropout_probability)) {
        TrajectoryPoint noisy = p;
        noisy.x += rng->Normal(0.0, gps.noise_stddev);
        noisy.y += rng->Normal(0.0, gps.noise_stddev);
        drive.gps.Append(noisy);
        drive.gps_true_edges.push_back(edge_path[i]);
      }
      next_sample += gps.sample_period;
    }
    elapsed += edge_time;
  }
  return drive;
}

std::vector<int> RandomPath(const RoadNetwork& network, int min_edges,
                            int attempts, Rng* rng) {
  int n = static_cast<int>(network.NumNodes());
  if (n < 2) return {};
  for (int i = 0; i < attempts; ++i) {
    int source = rng->Index(n);
    int target = rng->Index(n);
    if (source == target) continue;
    Result<Path> path =
        ShortestPath(network, source, target, FreeFlowTimeCost(network));
    if (path.ok() && static_cast<int>(path->edges.size()) >= min_edges) {
      return path->edges;
    }
  }
  return {};
}

}  // namespace tsdm
