#include "src/sim/road_gen.h"

namespace tsdm {

RoadNetwork GenerateGridNetwork(const GridNetworkSpec& spec, Rng* rng) {
  RoadNetwork net;
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      net.AddNode(c * spec.spacing + rng->Normal(0.0, spec.jitter),
                  r * spec.spacing + rng->Normal(0.0, spec.jitter));
    }
  }
  auto id = [&](int r, int c) { return r * spec.cols + c; };
  auto pick_speed = [&]() {
    return rng->Bernoulli(spec.arterial_fraction) ? spec.arterial_speed
                                                  : spec.local_speed;
  };
  auto add_bidirectional = [&](int a, int b) {
    double speed = pick_speed();
    net.AddEdge(a, b, speed);
    net.AddEdge(b, a, speed);
  };
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      if (c + 1 < spec.cols) add_bidirectional(id(r, c), id(r, c + 1));
      if (r + 1 < spec.rows) add_bidirectional(id(r, c), id(r + 1, c));
      if (r + 1 < spec.rows && c + 1 < spec.cols &&
          rng->Bernoulli(spec.diagonal_probability)) {
        add_bidirectional(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  return net;
}

int GridNodeId(const GridNetworkSpec& spec, int row, int col) {
  return row * spec.cols + col;
}

}  // namespace tsdm
