#ifndef TSDM_SIM_ROAD_GEN_H_
#define TSDM_SIM_ROAD_GEN_H_

#include "src/common/rng.h"
#include "src/spatial/road_network.h"

namespace tsdm {

/// Parameters for the synthetic grid road network used across the routing
/// experiments. Node (r, c) sits at (c*spacing, r*spacing) with small
/// positional jitter; every lattice neighbor pair is connected in both
/// directions. Speeds mix two road classes (arterial vs. local).
struct GridNetworkSpec {
  int rows = 8;
  int cols = 8;
  double spacing = 500.0;        ///< meters
  double jitter = 25.0;          ///< positional noise, meters
  double arterial_speed = 16.7;  ///< m/s (~60 km/h)
  double local_speed = 8.3;      ///< m/s (~30 km/h)
  double arterial_fraction = 0.3;
  /// Probability of adding a diagonal shortcut per cell, enriching the
  /// path diversity the skyline/K-shortest experiments need.
  double diagonal_probability = 0.15;
};

/// Generates the grid network.
RoadNetwork GenerateGridNetwork(const GridNetworkSpec& spec, Rng* rng);

/// Node id of lattice coordinate (row, col) in a generated grid network.
int GridNodeId(const GridNetworkSpec& spec, int row, int col);

}  // namespace tsdm

#endif  // TSDM_SIM_ROAD_GEN_H_
